// The §3.3 analytical launch-parameter model in action: how VS, BS, C, TL
// adapt to matrix shape and device limits — and what the occupancy
// calculator says about each choice.
#include <iostream>

#include "common/table.h"
#include "kernels/fused_dense.h"
#include "kernels/fused_sparse.h"
#include "la/generate.h"
#include "tuner/launch_params.h"
#include "vgpu/device.h"

#include "example_common.h"

using namespace fusedml;

static int run_example() {
  vgpu::Device device;
  const auto& spec = device.spec();
  std::cout << "device: " << spec.name << " (" << spec.num_sms << " SMs, "
            << spec.mem_bandwidth_gbs << " GB/s, "
            << spec.smem_per_sm_bytes / 1024 << " KB smem/SM)\n\n";

  std::cout << "--- sparse fused kernel (Eq. 4 / occupancy / Eq. 5) ---\n";
  Table st({"matrix", "nnz/row", "VS", "BS", "C", "grid", "aggregation",
            "occupancy"});
  struct Case { index_t m, n; double s; const char* note; };
  for (const auto& c : {Case{500000, 1000, 0.01, "paper Fig.6 shape"},
                        Case{500000, 200, 0.01, "short rows"},
                        Case{500000, 4096, 0.01, "wide"},
                        Case{150000, 298900, 9.4e-5, "KDD-like huge n"},
                        Case{10000, 100, 0.5, "dense-ish rows"}}) {
    const double mu = c.s * c.n;
    const auto p = tuner::sparse_launch_params(spec, c.m, c.n, mu);
    st.row()
        .add(std::to_string(c.m) + "x" + std::to_string(c.n) + " (" +
             c.note + ")")
        .add(mu, 1)
        .add(p.config.vector_size)
        .add(p.config.block_size)
        .add(p.config.coarsening)
        .add(p.config.grid_size)
        .add(p.shared_aggregation ? "shared" : "global")
        .add(p.occupancy.occupancy, 2);
  }
  std::cout << st << "\n";

  std::cout << "--- dense fused kernel (TL search / Eq. 6) ---\n";
  Table dt({"n", "TL", "VS", "BS", "regs/thread", "wasted warps",
            "occupancy"});
  for (index_t n : {28, 200, 512, 2048, 5000}) {
    const auto p = tuner::dense_launch_params(spec, 100000, n);
    dt.row()
        .add(static_cast<long long>(n))
        .add(p.config.thread_load)
        .add(p.config.vector_size)
        .add(p.config.block_size)
        .add(p.config.resources.regs_per_thread)
        .add(p.wasted_warps)
        .add(p.occupancy.occupancy, 2);
  }
  std::cout << dt
            << "\nNote the paper's worked example at n=200: the model lands "
               "on a TL whose VS*TL covers the row with no\nwasted warp "
               "loads (TL=7 -> VS=32 -> 224 >= 200), and the n<=32 special "
               "case (BS=1024, TL=1) for HIGGS-width data.\n";
  return 0;
}

int main(int argc, char** argv) {
  return fusedml::examples::example_main(argc, argv,
                                         [&] { return run_example(); });
}
