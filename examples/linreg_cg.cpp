// Linear regression with conjugate gradient (Listing 1 of the paper),
// trained on synthetic data through each backend, with the per-bucket time
// split that motivates kernel fusion.
#include <iostream>

#include "common/table.h"
#include "la/generate.h"
#include "la/vector_ops.h"
#include "ml/lr_cg.h"
#include "patterns/executor.h"
#include "vgpu/device.h"

#include "example_common.h"

using namespace fusedml;

static int run_example() {
  vgpu::Device device;
  const auto X = la::uniform_sparse(50000, 500, 0.02, 11);
  const auto labels = la::regression_labels(X, 11, 0.05);
  const auto w_true = la::regression_true_weights(500, 11);

  Table table({"backend", "iterations", "pattern (ms)", "BLAS-1 (ms)",
               "total (ms)", "weight error"});
  for (auto backend :
       {patterns::Backend::kFused, patterns::Backend::kCusparse,
        patterns::Backend::kBidmatGpu, patterns::Backend::kCpu}) {
    patterns::PatternExecutor exec(device, backend);
    ml::LrCgConfig cfg;
    cfg.eps = 1e-6;
    const auto r = ml::lr_cg(exec, X, labels, cfg);
    table.row()
        .add(to_string(backend))
        .add(r.stats.iterations)
        .add(r.stats.pattern_modeled_ms, 3)
        .add(r.stats.blas1_modeled_ms, 3)
        .add(r.stats.total_modeled_ms(), 3)
        .add(la::max_abs_diff(w_true, r.weights), 4);
  }
  std::cout << "Linear Regression CG (Listing 1) on 50k x 500 sparse data\n"
            << table
            << "\nEvery backend converges to the same weights; the fused "
               "backend spends the least modeled time because the\n"
               "q = X^T*(X*p) + eps*p update is ONE kernel instead of an "
               "operator-at-a-time chain.\n";
  return 0;
}

int main(int argc, char** argv) {
  return fusedml::examples::example_main(argc, argv,
                                         [&] { return run_example(); });
}
