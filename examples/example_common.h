// Shared top-level exception barrier for the examples: a fusedml::Error
// exits with one clean line on stderr and a non-zero status instead of
// std::terminate's abort + core dump.
#pragma once

#include <exception>
#include <iostream>

#include "common/error.h"

namespace fusedml::examples {

template <typename Run>
int guarded_main(Run&& run) {
  try {
    return run();
  } catch (const Error& e) {
    std::cerr << "error [" << to_string(e.code()) << "]: " << e.what()
              << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace fusedml::examples
