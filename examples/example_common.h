// Shared top-level scaffolding for the examples: an exception barrier (a
// fusedml::Error exits with one clean line on stderr and a non-zero status
// instead of std::terminate's abort + core dump) plus the standard
// observability flags (--log-level, --profile, --metrics) every example
// accepts.
#pragma once

#include <exception>
#include <iostream>

#include "common/cli.h"
#include "common/error.h"
#include "obs/profile_flags.h"
#include "sysml/expr.h"

namespace fusedml::examples {

/// Shared --plan flag vocabulary for the algorithm examples.
inline sysml::PlanMode parse_plan_mode(const std::string& name) {
  if (name == "unfused") return sysml::PlanMode::kUnfused;
  if (name == "hardcoded") return sysml::PlanMode::kHardcodedPass;
  FUSEDML_CHECK(name == "planner",
                "--plan must be one of: unfused, hardcoded, planner");
  return sysml::PlanMode::kPlanner;
}

template <typename Run>
int guarded_main(Run&& run) {
  try {
    const int rc = run();
    obs::flush_profile();
    return rc;
  } catch (const Error& e) {
    obs::flush_profile();
    std::cerr << "error [" << to_string(e.code()) << "]: " << e.what()
              << "\n";
    return 1;
  } catch (const std::exception& e) {
    obs::flush_profile();
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

/// Full example entry point: parses the standard observability flags,
/// honours --help, then runs the body under the exception barrier (which
/// flushes any armed --profile trace on success AND on error).
template <typename Run>
int example_main(int argc, char** argv, Run&& run) {
  return guarded_main([&]() -> int {
    Cli cli(argc, argv);
    obs::apply_standard_flags(cli);
    if (cli.help_requested()) {
      std::cout << cli.usage();
      return 0;
    }
    cli.finish();
    return run();
  });
}

}  // namespace fusedml::examples
