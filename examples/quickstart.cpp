// Quickstart: evaluate the paper's generic pattern
//     w = alpha * X^T * (v ⊙ (X * y)) + beta * z
// on the virtual GPU with the fused kernel, and compare against the
// operator-at-a-time baseline.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>

#include "common/table.h"
#include "la/generate.h"
#include "la/vector_ops.h"
#include "patterns/executor.h"
#include "vgpu/device.h"

#include "example_common.h"

using namespace fusedml;

static int run_example() {
  // A virtual GTX Titan (the paper's evaluation device).
  vgpu::Device device;

  // Synthetic sparse data: 50k x 1k at 1% density — the paper's §4.1 shape.
  const auto X = la::uniform_sparse(50000, 1000, 0.01, /*seed=*/7);
  const auto y = la::random_vector(1000, 1);
  const auto v = la::random_vector(50000, 2);
  const auto z = la::random_vector(1000, 3);

  std::cout << "X: " << X.rows() << " x " << X.cols() << ", " << X.nnz()
            << " non-zeros\n\n";

  // The fused kernel: ONE launch for the whole pattern.
  patterns::PatternExecutor fused(device, patterns::Backend::kFused);
  auto r1 = fused.pattern(0.5, X, v, y, 2.0, z);
  std::cout << "fused    : " << r1.kernel << "\n"
            << "  launches " << r1.launches << ", modeled "
            << format_ms(r1.modeled_ms) << ", load transactions "
            << r1.counters.total_load_transactions() << "\n";

  // The baseline: csrmv + ewise + csr2csc + csrmv + scal + axpy.
  patterns::PatternExecutor baseline(device, patterns::Backend::kCusparse);
  auto r2 = baseline.pattern(0.5, X, v, y, 2.0, z);
  std::cout << "baseline : " << r2.kernel << "\n"
            << "  launches " << r2.launches << ", modeled "
            << format_ms(r2.modeled_ms) << ", load transactions "
            << r2.counters.total_load_transactions() << "\n\n";

  // Identical results (up to floating-point reassociation)...
  std::cout << "max |fused - baseline| = "
            << la::max_abs_diff(r1.value, r2.value) << "\n";
  // ...and the reference oracle agrees too.
  const auto ref = la::reference::pattern(0.5, X, v, y, 2.0, z);
  std::cout << "max |fused - reference| = " << la::max_abs_diff(r1.value, ref)
            << "\n\n";

  std::cout << "speedup: " << format_speedup(r2.modeled_ms / r1.modeled_ms)
            << " from fusing " << r2.launches << " kernels into "
            << r1.launches << "\n";
  return 0;
}

int main(int argc, char** argv) {
  return fusedml::examples::example_main(argc, argv,
                                         [&] { return run_example(); });
}
