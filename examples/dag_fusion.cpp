// The compiler-side view: a declarative expression DAG for Equation 1 is
// rewritten by the fusion pass into a single fused-kernel node (§4.4's
// "transparently selects our fused GPU kernel"), and the §3.2 code
// generator emits the CUDA source a real system would hand to NVRTC.
#include <iostream>

#include "kernels/cuda_codegen.h"
#include "la/generate.h"
#include "la/vector_ops.h"
#include "ml/logreg.h"
#include "sysml/dag.h"
#include "sysml/fusion_planner.h"
#include "sysml/runtime.h"
#include "vgpu/device.h"

#include "example_common.h"

using namespace fusedml;

static int run_example(const sysml::PlannerOptions& popts) {
  vgpu::Device device;
  sysml::Runtime rt(device, {});
  rt.set_planner_options(popts);

  const auto X = la::uniform_sparse(30000, 400, 0.02, 51);
  const auto Xid = rt.add_sparse(X, "X");
  const auto y = rt.add_vector(la::random_vector(400, 1), "y");
  const auto v = rt.add_vector(la::random_vector(30000, 2), "v");
  const auto z = rt.add_vector(la::random_vector(400, 3), "z");

  // The declarative expression: w = 0.5 * X^T (v ⊙ (X*y)) + 2*z,
  // written as primitive operators the way a script compiler would.
  auto root = sysml::pattern_expression(
      0.5, sysml::input_matrix(Xid), sysml::input_vector(v),
      sysml::input_vector(y), 2.0, sysml::input_vector(z));

  std::cout << "unfused DAG: " << sysml::count_nodes(root) << " nodes\n";

  sysml::FusionReport report;
  root = sysml::fuse_patterns(root, &report);
  std::cout << "fusion pass: " << report.patterns_fused
            << " Equation-1 pattern(s) recognized; " << report.nodes_before
            << " -> " << report.nodes_after << " nodes; root is now ["
            << to_string(root->kind) << "]\n";

  const auto out = sysml::execute(rt, root);
  const auto w = rt.read_vector(out);
  std::cout << "executed through the runtime: " << rt.stats().gpu_ops
            << " GPU op(s), " << rt.stats().cpu_ops << " CPU op(s), "
            << "device kernel time "
            << rt.stats().gpu_kernel_ms << " ms\n";
  std::cout << "||w||_inf = "
            << la::max_abs_diff(w, std::vector<real>(w.size(), 0.0)) << "\n\n";

  // The cost-based planner generalizes the template pass: it also fuses
  // elementwise chains the Equation-1 matcher cannot see. Here, the logreg
  // residual sigmoid(-y ⊙ Xw) ⊙ -y plus the regularization axpy.
  const auto w0 = rt.add_vector(la::random_vector(400, 7), "w0");
  const auto ny = rt.add_vector(la::random_vector(30000, 8), "-y");
  const auto Xn = sysml::input_matrix(Xid);
  const auto nyn = sysml::input_vector(ny);
  const auto resid = sysml::ewise_mul(
      sysml::map(sysml::ewise_mul(nyn, sysml::mv(Xn, sysml::input_vector(w0))),
                 ml::stable_sigmoid, "sigmoid"),
      nyn);
  const auto grad = sysml::add(sysml::mvt(Xn, resid),
                               sysml::scale(0.01, sysml::input_vector(w0)));

  const auto plan = sysml::plan_fusion(rt, grad, rt.planner_options());
  std::cout << "planner on the logreg gradient DAG:\n" << plan.explain();
  rt.note_plan(plan.explain());
  sysml::execute(rt, plan.root);
  std::cout << "\nRuntime::explain():\n" << rt.explain() << "\n";

  // What the code generator would hand to NVRTC for the dense case.
  kernels::DenseKernelSpec spec{32, 16, 2};  // the paper's Listing-2 example
  std::cout << "generated CUDA kernel " << kernels::cuda_kernel_name(spec)
            << " (paper Listing 2 shape):\n\n"
            << kernels::generate_dense_fused_cuda(spec);
  return 0;
}

int main(int argc, char** argv) {
  return fusedml::examples::guarded_main([&]() -> int {
    Cli cli(argc, argv);
    const auto popts = sysml::planner_options_from_cli(cli);
    obs::apply_standard_flags(cli);
    if (cli.help_requested()) {
      std::cout << cli.usage();
      return 0;
    }
    cli.finish();
    return run_example(popts);
  });
}
