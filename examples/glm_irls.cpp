// A Poisson GLM fitted by Fisher scoring / IRLS as a declarative script:
// the Fisher information-vector product X^T * (W ⊙ (X * s)) is the full
// v-weighted Equation-1 instantiation (Table 1's GLM row), the link and
// variance functions become elementwise kMap chains, and --plan chooses
// between unfused interpretation, the hardcoded template pass, and the
// cost-based fusion planner.
#include <cmath>
#include <iostream>
#include <vector>

#include "common/rng.h"
#include "la/generate.h"
#include "la/vector_ops.h"
#include "ml/script_library.h"
#include "sysml/runtime.h"
#include "vgpu/device.h"

#include "example_common.h"

using namespace fusedml;

static int run_example(sysml::PlanMode plan,
                       const sysml::PlannerOptions& popts) {
  // Poisson counts from a known linear predictor (small weights keep
  // exp(eta) tame), so the fit quality is measurable against the truth.
  const auto X = la::uniform_sparse(8000, 40, 0.1, 67);
  auto w_true = la::regression_true_weights(X.cols(), 67);
  for (real& w : w_true) w *= 0.3;
  const auto eta_true = la::reference::spmv(X, w_true);
  Rng rng(67);
  std::vector<real> y(eta_true.size());
  for (usize i = 0; i < y.size(); ++i) {
    y[i] = static_cast<real>(rng.poisson(std::exp(eta_true[i])));
  }

  vgpu::Device device;
  sysml::Runtime rt(device, {.enable_gpu = true});
  rt.set_planner_options(popts);
  ml::GlmConfig cfg;
  cfg.family = ml::GlmFamily::kPoisson;
  const auto model = ml::run_glm_script(rt, X, y, plan, cfg);

  // Correlation between the fitted and true linear predictors.
  const auto eta_fit = la::reference::spmv(X, model.weights);
  real num = 0, da = 0, db = 0;
  for (usize i = 0; i < eta_true.size(); ++i) {
    num += eta_true[i] * eta_fit[i];
    da += eta_true[i] * eta_true[i];
    db += eta_fit[i] * eta_fit[i];
  }

  std::cout << "Poisson GLM (IRLS + CG) on 8k x 40 sparse data, plan mode: "
            << to_string(plan) << "\n"
            << "  IRLS iterations   : " << model.iterations << "\n"
            << "  kernel launches   : " << model.runtime_stats.kernel_launches
            << "\n"
            << "  fused groups      : " << model.fused_groups << "\n"
            << "  modeled time (ms) : " << model.end_to_end_ms << "\n"
            << "  corr(eta, eta*)   : " << num / std::sqrt(da * db + 1e-30)
            << "\n";

  if (plan == sysml::PlanMode::kPlanner) {
    std::cout << "\nRuntime::explain():\n" << rt.explain() << "\n";
  }
  return 0;
}

int main(int argc, char** argv) {
  return fusedml::examples::guarded_main([&]() -> int {
    Cli cli(argc, argv);
    const auto plan = cli.get_string("plan", "planner",
                                     "unfused | hardcoded | planner");
    const auto popts = sysml::planner_options_from_cli(cli);
    obs::apply_standard_flags(cli);
    if (cli.help_requested()) {
      std::cout << cli.usage();
      return 0;
    }
    cli.finish();
    return run_example(fusedml::examples::parse_plan_mode(plan), popts);
  });
}
