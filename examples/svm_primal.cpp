// Linear SVM trained in the primal (squared hinge, Newton + CG) as a
// declarative script: per Table 1 the Hessian-vector product is the
// X^T*(X*y) + b*z pattern on the support-vector submatrix, and --plan
// chooses whether the runtime interprets it unfused, applies the hardcoded
// Equation-1 template pass, or lets the cost-based planner fuse it.
#include <iostream>

#include "la/generate.h"
#include "la/vector_ops.h"
#include "ml/script_library.h"
#include "sysml/runtime.h"
#include "vgpu/device.h"

#include "example_common.h"

using namespace fusedml;

static int run_example(sysml::PlanMode plan) {
  const auto X = la::uniform_sparse(10000, 150, 0.08, 31);
  const auto y = la::classification_labels(X, 31, 0.1);

  vgpu::Device device;
  sysml::Runtime rt(device, {.enable_gpu = true});
  ml::SvmConfig cfg;
  cfg.C = 5.0;
  const auto model = ml::run_svm_script(rt, X, y, plan, cfg);

  const auto decision = la::reference::spmv(X, model.weights);
  int correct = 0;
  for (usize i = 0; i < decision.size(); ++i) {
    if ((decision[i] >= 0 ? 1.0 : -1.0) == y[i]) ++correct;
  }

  std::cout << "Primal SVM (squared hinge Newton) on 10k x 150 sparse data, "
            << "plan mode: " << to_string(plan) << "\n"
            << "  newton iterations : " << model.iterations << "\n"
            << "  kernel launches   : " << model.runtime_stats.kernel_launches
            << "\n"
            << "  fused groups      : " << model.fused_groups << "\n"
            << "  modeled time (ms) : " << model.end_to_end_ms << "\n"
            << "  training accuracy : "
            << 100.0 * correct / static_cast<double>(decision.size())
            << "%\n";

  if (plan == sysml::PlanMode::kPlanner) {
    std::cout << "\nRuntime::explain():\n" << rt.explain() << "\n";
  }
  return 0;
}

int main(int argc, char** argv) {
  return fusedml::examples::guarded_main([&]() -> int {
    Cli cli(argc, argv);
    const auto plan = cli.get_string("plan", "planner",
                                     "unfused | hardcoded | planner");
    obs::apply_standard_flags(cli);
    if (cli.help_requested()) {
      std::cout << cli.usage();
      return 0;
    }
    cli.finish();
    return run_example(fusedml::examples::parse_plan_mode(plan));
  });
}
