// Linear SVM trained in the primal (squared hinge, Newton + CG) — per
// Table 1 this algorithm uses the pattern instantiations WITHOUT the v
// weighting: a*X^T*y and X^T*(X*y) + b*z on the support-vector submatrix.
#include <iostream>

#include "la/generate.h"
#include "ml/svm.h"
#include "patterns/executor.h"
#include "patterns/pattern.h"
#include "vgpu/device.h"

#include "example_common.h"

using namespace fusedml;

static int run_example() {
  vgpu::Device device;
  patterns::PatternExecutor exec(device, patterns::Backend::kFused);

  const auto X = la::uniform_sparse(10000, 150, 0.08, 31);
  const auto y = la::classification_labels(X, 31, 0.1);

  ml::SvmConfig cfg;
  cfg.C = 5.0;
  const auto model = ml::svm_primal(exec, X, y, cfg);

  const auto decision = ml::svm_decision(exec, X, model.weights);
  int correct = 0;
  for (usize i = 0; i < decision.size(); ++i) {
    if ((decision[i] >= 0 ? 1.0 : -1.0) == y[i]) ++correct;
  }

  std::cout << "Primal SVM (squared hinge Newton) on 10k x 150 sparse data\n"
            << "  newton iterations : " << model.stats.iterations << "\n"
            << "  support vectors   : " << model.support_vectors << " / "
            << X.rows() << "\n"
            << "  final objective   : " << model.final_objective << "\n"
            << "  training accuracy : "
            << 100.0 * correct / static_cast<double>(decision.size()) << "%\n\n";

  std::cout << "pattern instantiations issued (compare Table 1's SVM "
               "column — no v-weighted forms):\n";
  for (const auto& [kind, count] : exec.usage()) {
    std::cout << "  " << to_string(kind) << " x" << count << "\n";
  }
  return 0;
}

int main(int argc, char** argv) {
  return fusedml::examples::example_main(argc, argv,
                                         [&] { return run_example(); });
}
