// Fault injection: train LR-CG on a virtual GPU that drops kernel
// launches, corrupts kernel outputs (ECC), and fails PCIe transfers at a
// seeded, deterministic rate — and show that the resilient executor still
// converges to bit-identical weights, paying only modeled retry time.
#include <iostream>

#include "common/resilience.h"
#include "common/table.h"
#include "la/generate.h"
#include "la/vector_ops.h"
#include "ml/lr_cg.h"
#include "patterns/executor.h"
#include "vgpu/device.h"
#include "vgpu/fault_injector.h"

#include "example_common.h"

using namespace fusedml;

namespace {

ml::LrCgResult train(vgpu::Device& device) {
  patterns::PatternExecutor exec(device, patterns::Backend::kFused);
  const auto X = la::uniform_sparse(20000, 400, 0.02, 7);
  const auto labels = la::regression_labels(X, 7, 0.05);
  ml::LrCgConfig cfg;
  cfg.eps = 1e-6;
  return ml::lr_cg(exec, X, labels, cfg);
}

}  // namespace

static int run_example() {
  // Fault-free oracle.
  vgpu::Device clean_device;
  const auto clean = train(clean_device);

  // Same workload on a device that faults ~5% of launches and 2% of
  // transfers. The schedule is fully determined by the seed.
  vgpu::FaultConfig cfg;
  cfg.seed = 0xFA17ULL;
  cfg.kernel_fault_rate = 0.03;
  cfg.ecc_fault_rate = 0.02;
  cfg.transfer_fault_rate = 0.02;
  vgpu::FaultInjector injector(cfg);
  vgpu::Device faulty_device;
  faulty_device.set_fault_injector(&injector);
  const auto faulty = train(faulty_device);

  Table table({"run", "iterations", "total (ms)", "faults", "retries",
               "max |w - w_clean|"});
  table.row()
      .add("fault-free")
      .add(clean.stats.iterations)
      .add(clean.stats.total_modeled_ms(), 3)
      .add(uint64_t{0})
      .add(uint64_t{0})
      .add(0.0, 6);
  table.row()
      .add("5% faults")
      .add(faulty.stats.iterations)
      .add(faulty.stats.total_modeled_ms(), 3)
      .add(faulty.stats.resilience.faults_seen)
      .add(faulty.stats.resilience.retries)
      .add(la::max_abs_diff(clean.weights, faulty.weights), 6);
  std::cout << "LR-CG on 20k x 400 sparse data, fused backend, with and "
               "without injected device faults\n"
            << table << "\n";

  RunReport report("fault_injection example");
  report.add("lr_cg (pattern + BLAS-1)", faulty.stats.resilience);
  report.print(std::cout);

  std::cout << "\nInjector saw " << injector.log().launches_seen
            << " launches and " << injector.log().transfers_seen
            << " transfers; every fault was retried to a bit-exact result — "
               "the overhead above is modeled retry + backoff time.\n";
  return 0;
}

int main(int argc, char** argv) {
  return fusedml::examples::example_main(argc, argv,
                                         [&] { return run_example(); });
}
