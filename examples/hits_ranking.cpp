// Hubs & Authorities on a synthetic web graph, expressed as a declarative
// script: the authority update a <- X^T * (X * a) lowers through the
// ExprBuilder/Program IR, and --plan picks how it runs — interpreted
// unfused, rewritten by the hardcoded Equation-1 template pass, or planned
// by the cost-based fusion planner (one fused kernel per iteration).
#include <algorithm>
#include <iostream>
#include <vector>

#include "common/rng.h"
#include "la/convert.h"
#include "la/coo_matrix.h"
#include "ml/script_library.h"
#include "sysml/runtime.h"
#include "vgpu/device.h"

#include "example_common.h"

using namespace fusedml;

static int run_example(sysml::PlanMode plan) {
  // A synthetic web: 2000 pages; pages 0-9 are "portals" that everyone
  // links to, plus random long-tail links.
  const index_t pages = 2000;
  Rng rng(41);
  la::CooMatrix coo(pages, pages);
  for (index_t i = 0; i < pages; ++i) {
    // Every page links to ~2 portals...
    for (int k = 0; k < 2; ++k) {
      coo.add(i, static_cast<index_t>(rng.uniform_index(10)), 1.0);
    }
    // ...and ~5 random pages.
    for (int k = 0; k < 5; ++k) {
      coo.add(i, static_cast<index_t>(rng.uniform_index(pages)), 1.0);
    }
  }
  coo.normalize();
  const auto X = la::coo_to_csr(coo);

  vgpu::Device device;
  sysml::Runtime rt(device, {.enable_gpu = true});
  const auto result = ml::run_hits_script(rt, X, plan);

  std::cout << "HITS on a " << pages << "-page synthetic web (" << X.nnz()
            << " links), plan mode: " << to_string(plan) << "\n"
            << "  power iterations  : " << result.iterations << "\n"
            << "  kernel launches   : " << result.runtime_stats.kernel_launches
            << "\n"
            << "  fused groups      : " << result.fused_groups << "\n"
            << "  modeled time (ms) : " << result.end_to_end_ms << "\n\n";

  std::vector<index_t> order(static_cast<usize>(pages));
  for (usize i = 0; i < order.size(); ++i) order[i] = static_cast<index_t>(i);
  std::sort(order.begin(), order.end(), [&](index_t a, index_t b) {
    return result.weights[static_cast<usize>(a)] >
           result.weights[static_cast<usize>(b)];
  });
  std::cout << "top authorities (the portals should dominate):\n";
  for (int i = 0; i < 10; ++i) {
    std::cout << "  page " << order[static_cast<usize>(i)] << "  score "
              << result.weights[static_cast<usize>(order[static_cast<usize>(i)])]
              << "\n";
  }

  if (plan == sysml::PlanMode::kPlanner) {
    std::cout << "\nRuntime::explain():\n" << rt.explain() << "\n";
  }
  return 0;
}

int main(int argc, char** argv) {
  return fusedml::examples::guarded_main([&]() -> int {
    Cli cli(argc, argv);
    const auto plan = cli.get_string("plan", "planner",
                                     "unfused | hardcoded | planner");
    obs::apply_standard_flags(cli);
    if (cli.help_requested()) {
      std::cout << cli.usage();
      return 0;
    }
    cli.finish();
    return run_example(fusedml::examples::parse_plan_mode(plan));
  });
}
