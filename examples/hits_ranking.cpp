// Hubs & Authorities on a synthetic web graph: the authority update
// a <- X^T * (X * a) is the X^T*(X*y) pattern instantiation, fused into a
// single kernel per iteration.
#include <algorithm>
#include <iostream>
#include <vector>

#include "common/rng.h"
#include "la/convert.h"
#include "la/coo_matrix.h"
#include "ml/hits.h"
#include "patterns/executor.h"
#include "vgpu/device.h"

#include "example_common.h"

using namespace fusedml;

static int run_example() {
  // A synthetic web: 2000 pages; pages 0-9 are "portals" that everyone
  // links to, plus random long-tail links.
  const index_t pages = 2000;
  Rng rng(41);
  la::CooMatrix coo(pages, pages);
  for (index_t i = 0; i < pages; ++i) {
    // Every page links to ~2 portals...
    for (int k = 0; k < 2; ++k) {
      coo.add(i, static_cast<index_t>(rng.uniform_index(10)), 1.0);
    }
    // ...and ~5 random pages.
    for (int k = 0; k < 5; ++k) {
      coo.add(i, static_cast<index_t>(rng.uniform_index(pages)), 1.0);
    }
  }
  coo.normalize();
  const auto X = la::coo_to_csr(coo);

  vgpu::Device device;
  patterns::PatternExecutor exec(device, patterns::Backend::kFused);
  const auto result = ml::hits(exec, X);

  std::cout << "HITS on a " << pages << "-page synthetic web ("
            << X.nnz() << " links), converged="
            << (result.converged ? "yes" : "no") << " after "
            << result.stats.iterations << " iterations\n\n";

  std::vector<index_t> order(static_cast<usize>(pages));
  for (usize i = 0; i < order.size(); ++i) order[i] = static_cast<index_t>(i);
  std::sort(order.begin(), order.end(), [&](index_t a, index_t b) {
    return result.authorities[static_cast<usize>(a)] >
           result.authorities[static_cast<usize>(b)];
  });
  std::cout << "top authorities (the portals should dominate):\n";
  for (int i = 0; i < 10; ++i) {
    std::cout << "  page " << order[static_cast<usize>(i)] << "  score "
              << result.authorities[static_cast<usize>(order[static_cast<usize>(i)])]
              << "\n";
  }
  return 0;
}

int main(int argc, char** argv) {
  return fusedml::examples::example_main(argc, argv,
                                         [&] { return run_example(); });
}
