// Silent-data-corruption recovery: train LR-CG on a virtual GPU whose
// kernels LIE — at a seeded rate a launch returns success while one element
// of its output has been flipped. No error is raised, so the retry/backoff
// machinery never engages on its own; only ABFT checksum verification
// (kernels/abft.h) can notice.
//
// Three runs of the same workload:
//   1. fault-free          — the oracle;
//   2. 5% silent, no ABFT  — reports ZERO faults while the corruption
//                            silently derails the solve (many times the
//                            iterations, no correctness guarantee);
//   3. 5% silent, full ABFT — every detection is recomputed; the result is
//                            bit-exact with the oracle, and the table shows
//                            what the verification + recompute bill costs
//                            in modeled milliseconds.
#include <iostream>

#include "common/resilience.h"
#include "common/table.h"
#include "kernels/op_registry.h"
#include "la/generate.h"
#include "la/vector_ops.h"
#include "ml/lr_cg.h"
#include "patterns/executor.h"
#include "vgpu/device.h"
#include "vgpu/fault_injector.h"

#include "example_common.h"

using namespace fusedml;

namespace {

ml::LrCgResult train(vgpu::Device& device, kernels::VerifyPolicy verify) {
  patterns::PatternExecutor exec(device, patterns::Backend::kFused);
  exec.registry().set_verify_policy(verify);
  const auto X = la::uniform_sparse(20000, 400, 0.02, 7);
  const auto labels = la::regression_labels(X, 7, 0.05);
  ml::LrCgConfig cfg;
  cfg.eps = 1e-6;
  // Tight tolerance => enough CG iterations (and launches) for the silent
  // rate to be visible in a deterministic, seeded way.
  cfg.tolerance = 1e-12;
  cfg.max_iterations = 200;
  return ml::lr_cg(exec, X, labels, cfg);
}

vgpu::FaultConfig silent_storm() {
  vgpu::FaultConfig cfg;
  cfg.seed = 0x51DCULL;
  cfg.silent_fault_rate = 0.05;
  return cfg;
}

}  // namespace

static int run_example() {
  using kernels::VerifyPolicy;

  // Fault-free oracle.
  vgpu::Device clean_device;
  const auto clean = train(clean_device, VerifyPolicy::kOff);

  // Undefended: same silent storm, verification off. Nothing throws,
  // nothing retries — the corruption just flows into the solve.
  vgpu::FaultInjector undefended_injector(silent_storm());
  vgpu::Device undefended_device;
  undefended_device.set_fault_injector(&undefended_injector);
  const auto undefended = train(undefended_device, VerifyPolicy::kOff);

  // Defended: identical storm (same seed, same schedule), full ABFT.
  vgpu::FaultInjector defended_injector(silent_storm());
  vgpu::Device defended_device;
  defended_device.set_fault_injector(&defended_injector);
  const auto defended = train(defended_device, VerifyPolicy::kFull);

  Table table({"run", "iterations", "total (ms)", "faults reported",
               "sdc detected", "verify (ms)", "max |w - w_clean|"});
  const auto row = [&](const char* name, const ml::LrCgResult& r) {
    table.row()
        .add(name)
        .add(r.stats.iterations)
        .add(r.stats.total_modeled_ms(), 3)
        .add(r.stats.resilience.faults_seen)
        .add(r.stats.resilience.sdc_detected)
        .add(r.stats.resilience.verify_ms, 3)
        .add(la::max_abs_diff(clean.weights, r.weights), 6);
  };
  row("fault-free", clean);
  row("5% silent, no ABFT", undefended);
  row("5% silent, full ABFT", defended);
  std::cout << "LR-CG on 20k x 400 sparse data under a silent-corruption "
               "storm, without and with ABFT verification\n"
            << table << "\n";

  RunReport report("sdc_recovery example");
  report.add("undefended", undefended.stats.resilience);
  report.add("full ABFT", defended.stats.resilience);
  report.print(std::cout);

  const double diff = la::max_abs_diff(clean.weights, defended.weights);
  std::cout << "\nThe undefended run reported "
            << undefended.stats.resilience.faults_seen
            << " faults while silent corruption derailed its solve ("
            << undefended.stats.iterations << " iterations vs "
            << clean.stats.iterations
            << " fault-free, with no correctness guarantee) — that is what "
               "\"silent\" means. The defended run detected "
            << defended.stats.resilience.sdc_detected
            << " corruptions, recomputed each, and matches the fault-free "
               "run exactly: same " << defended.stats.iterations
            << " iterations, bit-identical weights (max diff " << diff
            << ").\n";
  // The example doubles as a smoke test: the defense must actually close
  // the gap the undefended run opened.
  FUSEDML_CHECK(diff == 0.0 &&
                    defended.stats.iterations == clean.stats.iterations,
                "ABFT-defended run is not bit-exact with the oracle");
  return 0;
}

int main(int argc, char** argv) {
  return fusedml::examples::example_main(argc, argv,
                                         [&] { return run_example(); });
}
