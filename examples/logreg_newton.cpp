// Binary classification with trust-region Newton logistic regression —
// the algorithm whose Hessian-vector products exercise the FULL generic
// pattern (alpha * X^T * (v ⊙ (X*y)) + beta*z) in a single fused kernel.
#include <iostream>

#include "common/table.h"
#include "la/generate.h"
#include "ml/logreg.h"
#include "patterns/executor.h"
#include "patterns/pattern.h"
#include "vgpu/device.h"

#include "example_common.h"

using namespace fusedml;

static int run_example() {
  vgpu::Device device;
  patterns::PatternExecutor exec(device, patterns::Backend::kFused);

  const auto X = la::uniform_sparse(20000, 200, 0.05, 21);
  const auto y = la::classification_labels(X, 21, 0.2);

  ml::LogRegConfig cfg;
  cfg.lambda = 0.5;
  const auto model = ml::logreg_trust_region(exec, X, y, cfg);

  const auto probs = ml::logreg_predict(exec, X, model.weights);
  int correct = 0;
  for (usize i = 0; i < probs.size(); ++i) {
    if ((probs[i] >= 0.5 ? 1.0 : -1.0) == y[i]) ++correct;
  }

  std::cout << "Trust-region Newton logistic regression on 20k x 200 sparse "
               "data\n"
            << "  newton iterations : " << model.stats.iterations << "\n"
            << "  inner CG products : " << model.cg_iterations_total << "\n"
            << "  final objective   : " << model.final_objective << "\n"
            << "  gradient norm     : " << model.final_gradient_norm << "\n"
            << "  training accuracy : "
            << 100.0 * correct / static_cast<double>(probs.size()) << "%\n"
            << "  pattern time      : " << format_ms(model.stats.pattern_modeled_ms)
            << " over " << model.stats.launches << " launches\n\n";

  std::cout << "pattern instantiations this algorithm issued (Table 1 row):\n";
  for (const auto& [kind, count] : exec.usage()) {
    std::cout << "  " << to_string(kind) << " x" << count << "\n";
  }
  return 0;
}

int main(int argc, char** argv) {
  return fusedml::examples::example_main(argc, argv,
                                         [&] { return run_example(); });
}
