// The concurrent serving layer end to end: a pool of worker devices takes
// mixed-priority pattern and script requests through admission control,
// modeled deadlines, and per-backend circuit breakers — then a fault storm
// hits the pool mid-run and the breakers open, shed the GPU tiers, and
// recover once the storm clears. See docs/SERVING.md for the architecture.
#include <iostream>
#include <vector>

#include "common/cli.h"
#include "common/table.h"
#include "la/generate.h"
#include "serve/serve_flags.h"
#include "serve/server.h"
#include "vgpu/fault_injector.h"

#include "example_common.h"

using namespace fusedml;

namespace {

serve::ServeRequest pattern_request(serve::DatasetId dataset,
                                    const la::CsrMatrix& X, std::uint64_t seed,
                                    serve::Priority priority,
                                    double deadline_ms = 0.0) {
  serve::PatternEval eval;
  eval.dataset = dataset;
  eval.y = la::random_vector(X.cols(), seed);
  eval.v = la::random_vector(X.rows(), seed + 1);
  serve::ServeRequest req;
  req.work = std::move(eval);
  req.priority = priority;
  req.deadline_ms = deadline_ms;
  req.tag = seed;
  return req;
}

serve::ServeRequest script_request(serve::DatasetId dataset,
                                   const la::CsrMatrix& X, std::uint64_t seed,
                                   serve::ScriptKind kind) {
  serve::ScriptEval eval;
  eval.dataset = dataset;
  eval.kind = kind;
  eval.iterations = 3;
  eval.labels = la::regression_labels(X, seed, 0.05);
  serve::ServeRequest req;
  req.work = std::move(eval);
  req.priority = serve::Priority::kBatch;  // training rides the batch band
  req.tag = seed;
  return req;
}

}  // namespace

static int run_example(const serve::ServingFlags& flags) {
  serve::ServeOptions opts;
  opts.workers = 4;
  opts.queue_capacity = 32;
  opts.breaker.failure_threshold = 3;
  opts.breaker.cooldown_ms = 1.0;
  flags.apply_to(opts);

  serve::Server server(opts);
  const auto X = la::uniform_sparse(8000, 200, 0.02, 7);
  const auto dataset = server.add_dataset(X);
  server.start();

  std::cout << "pool: " << opts.workers << " workers, queue capacity "
            << opts.queue_capacity << "\n\n";

  // Phase 1 — clean mixed traffic: interactive pattern evaluations compete
  // with batch training scripts (the serving layer runs every algorithm in
  // the script library, so the batch band cycles through all nine kinds);
  // the queue pops the highest band first.
  std::vector<serve::ServeHandle> handles;
  for (std::uint64_t i = 0; i < 12; ++i) {
    handles.push_back(server.submit(pattern_request(
        dataset, X, 100 + i,
        i % 2 == 0 ? serve::Priority::kInteractive : serve::Priority::kNormal)));
    handles.push_back(server.submit(script_request(
        dataset, X, 200 + i, static_cast<serve::ScriptKind>(i % 9))));
  }
  usize clean_completed = 0;
  for (const auto& h : handles) {
    if (h.wait().kind == serve::OutcomeKind::kCompleted) ++clean_completed;
  }
  std::cout << "phase 1 (clean): " << clean_completed << "/" << handles.size()
            << " completed, modeled clock " << server.now_ms() << " ms\n";

  // Phase 2 — a fault storm drops every GPU kernel launch. Requests with
  // tight deadlines fail fast (the deadline clamps the retry budget);
  // the rest degrade to the CPU tier. The breaker board opens the fused
  // backend after three consecutive failures and skips it afterwards.
  vgpu::FaultConfig storm;
  storm.seed = 0xbad5eedULL;
  storm.kernel_fault_rate = 1.0;
  server.inject_faults(storm);

  handles.clear();
  for (std::uint64_t i = 0; i < 16; ++i) {
    const double deadline = i % 2 == 0 ? 0.01 : 0.0;  // half are doomed
    handles.push_back(server.submit(pattern_request(
        dataset, X, 300 + i, serve::Priority::kInteractive, deadline)));
  }
  for (const auto& h : handles) h.wait();
  const auto stormy = server.stats();
  std::cout << "phase 2 (storm): fused breaker "
            << to_string(server.breakers().state(kernels::Backend::kFused))
            << ", " << stormy.breaker_opens << " opens, "
            << stormy.breaker_skips << " skips, "
            << stormy.deadline_exceeded << " deadline-exceeded, "
            << stormy.resilience.fallbacks_to_cpu << " CPU fallbacks\n";

  // Phase 3 — the storm clears; after the cooldown a half-open probe
  // succeeds and the breaker re-closes.
  vgpu::FaultConfig calm;  // all-zero rates disarm the injectors
  server.inject_faults(calm);
  for (int i = 0; i < 2000; ++i) {
    server.submit(pattern_request(dataset, X, 500 + (std::uint64_t)i,
                                  serve::Priority::kNormal))
        .wait();
    if (server.breakers().state(kernels::Backend::kFused) ==
        serve::BreakerState::kClosed) {
      break;
    }
  }
  std::cout << "phase 3 (recovered): fused breaker "
            << to_string(server.breakers().state(kernels::Backend::kFused))
            << "\n\n";

  const auto final_stats = server.drain();
  Table table({"outcome", "count"});
  table.row().add("completed").add(final_stats.completed);
  table.row().add("rejected (queue full)").add(final_stats.rejected_queue_full);
  table.row().add("rejected (over capacity)")
      .add(final_stats.rejected_over_capacity);
  table.row().add("shed").add(final_stats.shed);
  table.row().add("deadline exceeded").add(final_stats.deadline_exceeded);
  table.row().add("cancelled").add(final_stats.cancelled);
  table.row().add("failed").add(final_stats.failed);
  std::cout << table << "\n";
  std::cout << "no request lost: " << final_stats.resolved() << "/"
            << final_stats.submitted << " resolved\n";
  flags.report(server, std::cout);
  return final_stats.resolved() == final_stats.submitted ? 0 : 1;
}

int main(int argc, char** argv) {
  return fusedml::examples::guarded_main([&]() -> int {
    Cli cli(argc, argv);
    obs::apply_standard_flags(cli);
    const serve::ServingFlags flags = serve::apply_serving_flags(cli);
    if (cli.help_requested()) {
      std::cout << cli.usage();
      return 0;
    }
    cli.finish();
    return run_example(flags);
  });
}
