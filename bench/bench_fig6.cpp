// Figure 6 reproduction — launch-parameter search space vs the analytical
// model (§4.3).
//
// The paper sweeps ~1,200 settings of (block size, rows-per-vector) for the
// fused sparse kernel on a 500k x 1k matrix with sparsity 0.01 (VS fixed at
// 8 by Eq. 4), plots 1/time, and reports that the model's pick is within 2%
// of the global optimum and inside the best 1% of all settings.
//
// Here each setting is priced by the same cost model the kernels use: the
// (config-independent) memory traffic is captured from one functional run,
// then each setting contributes its own occupancy, device utilization
// (too-coarse C leaves SMs idle), and inter-block atomic traffic (too-fine
// C multiplies the final aggregations).
#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "common/cli.h"
#include "common/table.h"
#include "kernels/fused_sparse.h"
#include "kernels/resource_profile.h"
#include "la/generate.h"
#include "tuner/autotune.h"
#include "vgpu/cost_model.h"
#include "vgpu/device.h"

using namespace fusedml;

static int run_bench(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto rows = static_cast<index_t>(
      cli.get_int("rows", 100000, "rows in X (paper: 500000)"));
  const auto n =
      static_cast<index_t>(cli.get_int("cols", 1000, "columns (paper: 1000)"));
  const double sparsity = cli.get_double("sparsity", 0.01, "nnz fraction");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42, ""));
  const bool dump_surface =
      cli.get_bool("dump-surface", false, "print every (BS,C) point");
  obs::apply_standard_flags(cli);
  bench::JsonReport json(cli, "fig6");
  if (bench::handle_help(cli)) return 0;
  cli.finish();

  bench::print_header("Figure 6",
                      "launch-parameter search space vs the Section 3.3 "
                      "analytical model (sparse fused kernel)");

  vgpu::Device dev;
  const auto X = la::uniform_sparse(rows, n, sparsity, seed);
  const auto y = la::random_vector(static_cast<usize>(n), seed + 1);
  const double mu = X.mean_nnz_per_row();

  // One functional run captures the config-independent traffic.
  const auto reference_run =
      kernels::fused_pattern_sparse(dev, 1, X, {}, y, 0, {});
  vgpu::MemCounters base = reference_run.counters;
  const auto model_params = kernels::fused_sparse_params(dev, X, {});
  const vgpu::CostModel& model = dev.cost_model();
  const auto& spec = dev.spec();

  const auto evaluate = [&](const tuner::SearchPoint& p) -> double {
    const usize smem = kernels::sparse_fused_smem_bytes(
        p.block_size, p.vector_size, n);
    const auto occ = vgpu::compute_occupancy(
        spec, p.block_size, {kernels::kSparseFusedRegsPerThread, smem});
    if (occ.blocks_per_sm == 0) return -1.0;  // infeasible setting

    vgpu::MemCounters c = base;
    // Inter-block aggregation scales with the number of blocks.
    c.atomic_global_ops =
        static_cast<std::uint64_t>(p.grid_size) * static_cast<usize>(n);
    c.atomic_global_targets = static_cast<std::uint64_t>(n);

    // Device utilization: launching fewer blocks than fit leaves SMs idle.
    auto eff = occ;
    const int resident = occ.blocks_per_sm * spec.num_sms;
    if (p.grid_size < resident) {
      eff.occupancy =
          occ.occupancy * static_cast<double>(p.grid_size) / resident;
    }
    return model.kernel_time(c, eff).total_ms;
  };

  const auto result = tuner::exhaustive_search(spec, rows, n, mu, evaluate);

  usize feasible = 0;
  for (const auto& p : result.points) {
    if (p.feasible) ++feasible;
  }

  Table table({"quantity", "measured", "paper"});
  table.row().add("settings explored").add(
      static_cast<long long>(result.points.size())).add("~1,200");
  table.row().add("feasible settings").add(static_cast<long long>(feasible))
      .add("-");
  table.row().add("VS (Eq. 4)").add(
      static_cast<long long>(model_params.config.vector_size)).add("8");
  table.row().add("model BS").add(
      static_cast<long long>(model_params.config.block_size)).add("640");
  table.row().add("model rows/vector (C)").add(
      static_cast<long long>(model_params.config.coarsening)).add("223");
  table.row().add("best time (ms)").add(result.best_ms, 4).add("-");
  table.row().add("model time (ms)").add(result.model_ms, 4).add("-");
  table.row().add("worst time (ms)").add(result.worst_ms, 4).add("-");
  table.row().add("model gap to optimum").add(
      bench::fmt(100.0 * result.model_gap_fraction(), 2) + "%").add("< 2%");
  table.row().add("model rank percentile").add(
      bench::fmt(100.0 * result.model_rank_fraction(), 2) + "%").add(
      "top 1%");
  std::cout << table;

  const auto& best = result.points[result.best_index];
  std::cout << "optimum at BS=" << best.block_size
            << " C=" << best.coarsening << " grid=" << best.grid_size
            << "; worst/best ratio "
            << bench::fmt(result.worst_ms / result.best_ms, 1) << "x\n";

  if (dump_surface) {
    Table surface({"BS", "C(RpV)", "grid", "1/ms"});
    for (const auto& p : result.points) {
      if (!p.feasible) continue;
      surface.row()
          .add(p.block_size)
          .add(p.coarsening)
          .add(p.grid_size)
          .add(1.0 / p.time_ms, 3);
    }
    std::cout << surface;
  }
  json.add("settings_explored", static_cast<double>(result.points.size()));
  json.add("model_gap_fraction", result.model_gap_fraction());
  json.add("model_rank_fraction", result.model_rank_fraction());
  json.add_table("fig6", table);
  json.write();
  return 0;
}

int main(int argc, char** argv) {
  return fusedml::bench::guarded_main([&] { return run_bench(argc, argv); });
}
