// Figure 5 reproduction — dense w = X^T * (X * y).
//
// Speedup of the fused dense kernel (Algorithm 3 + code generation) against
// cuBLAS (two gemv launches, bank-conflicted transposed tiles), a
// BIDMat-GPU-style two-pass gemv (padded conflict-free tiles), and
// BIDMat-CPU (MKL, 8 hyper-threads), on dense X with 500k rows and n up to
// 2K ("for [n] > 2K, the matrix does not fit in device memory anymore").
// The paper reports average speedups of 4.27x / 2.18x / 15.33x — dense
// gains are smaller than sparse because "most of the gain we achieve comes
// from loading X only once".
#include <iostream>

#include "bench_common.h"
#include "common/cli.h"
#include "common/stats.h"
#include "common/table.h"
#include "kernels/baselines.h"
#include "kernels/cpu_backend.h"
#include "kernels/fused_dense.h"
#include "la/generate.h"
#include "la/vector_ops.h"
#include "vgpu/device.h"

using namespace fusedml;

static int run_bench(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto rows = static_cast<index_t>(
      cli.get_int("rows", 20000, "rows in X (paper: 500000)"));
  const auto cols = bench::parse_cols(
      cli.get_string("cols", "64,128,256,512,1024,2048", "column sweep"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42, ""));
  obs::apply_standard_flags(cli);
  bench::JsonReport json(cli, "fig5");
  if (bench::handle_help(cli)) return 0;
  cli.finish();

  bench::print_header("Figure 5",
                      "dense X^T*(X*y): fused (codegen) vs cuBLAS / "
                      "BIDMat-GPU / BIDMat-CPU");
  bench::print_note("X: " + std::to_string(rows) +
                    " dense rows (paper: 500k). Modeled ms, virtual Titan.");

  Table table({"n", "fused (ms)", "TL", "VS", "vs cuBLAS", "vs BIDMat-GPU",
               "vs BIDMat-CPU"});
  std::vector<double> s_cublas, s_bidmat_gpu, s_bidmat_cpu;
  kernels::CpuBackend cpu;

  for (index_t n : cols) {
    vgpu::Device dev;
    const auto X = la::dense_random(rows, n, seed);
    const auto y = la::random_vector(static_cast<usize>(n), seed + 1);

    const auto fused = kernels::fused_pattern_dense(dev, 1, X, {}, y, 0, {});
    const auto params = kernels::fused_dense_params(dev, X, {});
    const auto cub = kernels::baseline_xtxy_dense(
        dev, X, y, kernels::DenseFlavor::kCublas);
    const auto bid = kernels::baseline_xtxy_dense(
        dev, X, y, kernels::DenseFlavor::kBidmat);
    const auto cpu_res = cpu.pattern(1, X, {}, y, 0, {});

    const auto ref = la::reference::pattern(1, X, {}, y, 0, {});
    if (la::max_abs_diff(ref, fused.value) > 1e-6 ||
        la::max_abs_diff(ref, cub.value) > 1e-6 ||
        la::max_abs_diff(ref, bid.value) > 1e-6) {
      std::cerr << "RESULT MISMATCH at n=" << n << "\n";
      return 1;
    }

    s_cublas.push_back(cub.modeled_ms / fused.modeled_ms);
    s_bidmat_gpu.push_back(bid.modeled_ms / fused.modeled_ms);
    s_bidmat_cpu.push_back(cpu_res.modeled_ms / fused.modeled_ms);

    table.row()
        .add(static_cast<long long>(n))
        .add(fused.modeled_ms, 3)
        .add(params.config.thread_load)
        .add(params.config.vector_size)
        .add(format_speedup(s_cublas.back()))
        .add(format_speedup(s_bidmat_gpu.back()))
        .add(format_speedup(s_bidmat_cpu.back()));
  }

  std::cout << table;
  std::cout << "geomean speedups — vs cuBLAS: "
            << format_speedup(geomean(s_cublas))
            << " (paper avg 4.27x), vs BIDMat-GPU: "
            << format_speedup(geomean(s_bidmat_gpu))
            << " (paper avg 2.18x), vs BIDMat-CPU: "
            << format_speedup(geomean(s_bidmat_cpu))
            << " (paper avg 15.33x)\n";
  json.add("geomean_vs_cublas", geomean(s_cublas));
  json.add("geomean_vs_bidmat_gpu", geomean(s_bidmat_gpu));
  json.add("geomean_vs_bidmat_cpu", geomean(s_bidmat_cpu));
  json.add_table("fig5", table);
  json.write();
  return 0;
}

int main(int argc, char** argv) {
  return fusedml::bench::guarded_main([&] { return run_bench(argc, argv); });
}
