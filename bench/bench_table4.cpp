// Table 4 reproduction — ultra-sparse KDD 2010: execution time (ms) of the
// proposed kernels vs cuBLAS/cuSPARSE for three pattern instantiations.
//
// The real set is 15,009,374 x 29,890,095 with 423,865,484 non-zeros; the
// KDD-like stand-in keeps its ~28 nnz/row, power-law columns, and the
// n >> shared-memory property that forces the fused kernel's global-memory
// aggregation variant (§3.1 large-n path). Paper numbers: 50.5 vs 5552.1,
// 78.3 vs 5683.1, 85.2 vs 5704.1 ms — a ~66x advantage on the full pattern.
#include <iostream>

#include "bench_common.h"
#include "common/cli.h"
#include "common/table.h"
#include "kernels/baselines.h"
#include "kernels/fused_sparse.h"
#include "la/generate.h"
#include "la/vector_ops.h"
#include "vgpu/device.h"

using namespace fusedml;

static int run_bench(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto scale = cli.get_double(
      "scale", 100.0, "dataset shrink factor vs the real KDD 2010");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42, ""));
  obs::apply_standard_flags(cli);
  bench::JsonReport json(cli, "table4");
  if (bench::handle_help(cli)) return 0;
  cli.finish();

  bench::print_header("Table 4",
                      "KDD-2010-like ultra-sparse set: proposed vs "
                      "cuBLAS/cuSPARSE (modeled ms)");

  const auto m = static_cast<index_t>(15009374 / scale);
  const auto n = static_cast<index_t>(29890095 / scale);
  vgpu::Device dev;
  const auto X = la::kdd_like(m, n, 28.0, 1.5, seed);
  bench::print_note("X: " + std::to_string(X.rows()) + " x " +
                    std::to_string(X.cols()) + ", nnz " +
                    std::to_string(X.nnz()) + " (1/" + bench::fmt(scale, 0) +
                    " of the real set; times scale ~linearly with size)");

  const auto ym = la::random_vector(static_cast<usize>(m), seed + 1);
  const auto yn = la::random_vector(static_cast<usize>(n), seed + 2);
  const auto v = la::random_vector(static_cast<usize>(m), seed + 3);
  const auto z = la::random_vector(static_cast<usize>(n), seed + 4);
  const real alpha = 0.5, beta = 1.5;

  Table table({"Pattern", "Proposed (ms)", "cuBLAS/cuSPARSE (ms)", "speedup",
               "aggregation", "paper (ms)"});

  {  // X^T * y
    const auto fused = kernels::fused_spmv_t(dev, X, ym);
    const auto base = kernels::baseline_xty_sparse(
        dev, X, ym, kernels::SparseTransposeStrategy::kExplicitTranspose);
    const auto params = kernels::fused_sparse_params(dev, X, {});
    table.row()
        .add("X^T*y")
        .add(fused.modeled_ms, 2)
        .add(base.modeled_ms, 2)
        .add(format_speedup(base.modeled_ms / fused.modeled_ms))
        .add(params.shared_aggregation ? "shared" : "global")
        .add("50.5 vs 5552.1");
  }
  {  // X^T * (X * y)
    const auto fused = kernels::fused_pattern_sparse(dev, 1, X, {}, yn, 0, {});
    const auto base = kernels::baseline_xtxy_sparse(
        dev, X, yn, kernels::SparseTransposeStrategy::kExplicitTranspose);
    if (la::max_abs_diff(fused.value, base.value) > 1e-6) {
      std::cerr << "RESULT MISMATCH on X^T*(X*y)\n";
      return 1;
    }
    table.row()
        .add("X^T*(X*y)")
        .add(fused.modeled_ms, 2)
        .add(base.modeled_ms, 2)
        .add(format_speedup(base.modeled_ms / fused.modeled_ms))
        .add("global")
        .add("78.3 vs 5683.1");
  }
  {  // full pattern
    const auto fused =
        kernels::fused_pattern_sparse(dev, alpha, X, v, yn, beta, z);
    const auto base = kernels::baseline_pattern_sparse(
        dev, alpha, X, v, yn, beta, z,
        kernels::SparseTransposeStrategy::kExplicitTranspose);
    if (la::max_abs_diff(fused.value, base.value) > 1e-6) {
      std::cerr << "RESULT MISMATCH on the full pattern\n";
      return 1;
    }
    table.row()
        .add("a*X^T*(v.(X*y))+b*z")
        .add(fused.modeled_ms, 2)
        .add(base.modeled_ms, 2)
        .add(format_speedup(base.modeled_ms / fused.modeled_ms))
        .add("global")
        .add("85.2 vs 5704.1 (66x)");
  }

  std::cout << table;
  bench::print_note(
      "with n in the tens of millions the partial w cannot live in shared "
      "memory, so the fused kernel scatters straight to global memory; the "
      "data is so sparse that atomic collisions on w are rare (§4.1).");
  json.add_table("table4", table);
  json.write();
  return 0;
}

int main(int argc, char** argv) {
  return fusedml::bench::guarded_main([&] { return run_bench(argc, argv); });
}
