// Operator-level microbenchmarks (google-benchmark).
//
// These time the *functional simulator* itself on the host — useful for
// tracking the library's own performance — and report the modeled device
// milliseconds of each kernel as a counter, so regressions in either the
// simulation speed or the cost model show up here.
#include <benchmark/benchmark.h>

#include "kernels/baselines.h"
#include "kernels/blas1.h"
#include "kernels/fused_dense.h"
#include "kernels/fused_sparse.h"
#include "kernels/spmv.h"
#include "kernels/spmv_transpose.h"
#include "la/generate.h"
#include "vgpu/device.h"

namespace {

using namespace fusedml;

struct SparseFixture {
  vgpu::Device dev;
  la::CsrMatrix X;
  std::vector<real> y_cols, y_rows;

  explicit SparseFixture(index_t m = 20000, index_t n = 512,
                         double sparsity = 0.01)
      : X(la::uniform_sparse(m, n, sparsity, 42)),
        y_cols(la::random_vector(static_cast<usize>(n), 1)),
        y_rows(la::random_vector(static_cast<usize>(m), 2)) {}
};

void BM_SpmvCsrVector(benchmark::State& state) {
  SparseFixture f;
  double modeled = 0;
  for (auto _ : state) {
    auto r = kernels::spmv_csr_vector(f.dev, f.X, f.y_cols);
    benchmark::DoNotOptimize(r.value.data());
    modeled = r.modeled_ms;
  }
  state.counters["modeled_ms"] = modeled;
}
BENCHMARK(BM_SpmvCsrVector);

void BM_FusedSpmvT(benchmark::State& state) {
  SparseFixture f;
  double modeled = 0;
  for (auto _ : state) {
    auto r = kernels::fused_spmv_t(f.dev, f.X, f.y_rows);
    benchmark::DoNotOptimize(r.value.data());
    modeled = r.modeled_ms;
  }
  state.counters["modeled_ms"] = modeled;
}
BENCHMARK(BM_FusedSpmvT);

void BM_FusedPatternSparse(benchmark::State& state) {
  SparseFixture f;
  double modeled = 0;
  for (auto _ : state) {
    auto r = kernels::fused_pattern_sparse(f.dev, 1, f.X, {}, f.y_cols, 0, {});
    benchmark::DoNotOptimize(r.value.data());
    modeled = r.modeled_ms;
  }
  state.counters["modeled_ms"] = modeled;
}
BENCHMARK(BM_FusedPatternSparse);

void BM_BaselinePatternSparse(benchmark::State& state) {
  SparseFixture f;
  double modeled = 0;
  for (auto _ : state) {
    auto r = kernels::baseline_xtxy_sparse(
        f.dev, f.X, f.y_cols,
        kernels::SparseTransposeStrategy::kExplicitTranspose);
    benchmark::DoNotOptimize(r.value.data());
    modeled = r.modeled_ms;
  }
  state.counters["modeled_ms"] = modeled;
}
BENCHMARK(BM_BaselinePatternSparse);

void BM_FusedPatternDense(benchmark::State& state) {
  vgpu::Device dev;
  const auto X = la::dense_random(5000, 256, 42);
  const auto y = la::random_vector(256, 1);
  double modeled = 0;
  for (auto _ : state) {
    auto r = kernels::fused_pattern_dense(dev, 1, X, {}, y, 0, {});
    benchmark::DoNotOptimize(r.value.data());
    modeled = r.modeled_ms;
  }
  state.counters["modeled_ms"] = modeled;
}
BENCHMARK(BM_FusedPatternDense);

void BM_DeviceCsr2Csc(benchmark::State& state) {
  SparseFixture f;
  for (auto _ : state) {
    auto r = kernels::device_csr2csc_cost(f.dev, f.X);
    benchmark::DoNotOptimize(r.modeled_ms);
  }
}
BENCHMARK(BM_DeviceCsr2Csc);

void BM_DevDot(benchmark::State& state) {
  vgpu::Device dev;
  const auto x = la::random_vector(static_cast<usize>(state.range(0)), 1);
  const auto y = la::random_vector(static_cast<usize>(state.range(0)), 2);
  for (auto _ : state) {
    auto r = kernels::dev_dot(dev, x, y);
    benchmark::DoNotOptimize(r.value[0]);
  }
}
BENCHMARK(BM_DevDot)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void BM_GenerateUniformSparse(benchmark::State& state) {
  for (auto _ : state) {
    auto X = la::uniform_sparse(10000, 500, 0.01, 42);
    benchmark::DoNotOptimize(X.nnz());
  }
}
BENCHMARK(BM_GenerateUniformSparse);

}  // namespace

BENCHMARK_MAIN();
