// Shared helpers for the paper-reproduction benches.
//
// Conventions every bench follows:
//  - prints a header naming the paper table/figure it regenerates;
//  - prints one ASCII table whose rows mirror the paper's series, with a
//    "paper" column quoting the numbers the paper reports where available;
//  - all timings are MODELED milliseconds from the virtual GPU's cost model
//    (GTX-Titan parameters) — see DESIGN.md §1 for why that is the honest
//    quantity on a GPU-less host;
//  - dataset sizes default to laptop scale, with --rows/--cols/--sparsity
//    flags to run the paper's full 500k-row configuration.
#pragma once

#include <exception>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/error.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/types.h"

namespace fusedml::bench {

/// Shared top-level exception barrier: every bench (and example) `main`
/// delegates here so a fusedml::Error exits with one clean line and a
/// non-zero status instead of std::terminate's abort + core dump.
template <typename Run>
int guarded_main(Run&& run) {
  try {
    return run();
  } catch (const Error& e) {
    std::cerr << "error [" << to_string(e.code()) << "]: " << e.what()
              << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

inline void print_header(const std::string& id, const std::string& what) {
  std::cout << "\n==================================================================\n"
            << id << " — " << what << "\n"
            << "==================================================================\n";
}

inline void print_note(const std::string& note) {
  std::cout << "note: " << note << "\n";
}

/// The paper's synthetic-sweep column counts (§4.1: "we vary the number of
/// columns from 200 to 4,096").
inline std::vector<index_t> paper_column_sweep() {
  return {200, 400, 800, 1024, 2048, 4096};
}

/// Parses "a,b,c" into a list of ints.
inline std::vector<index_t> parse_cols(const std::string& csv) {
  std::vector<index_t> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(static_cast<index_t>(std::stoll(item)));
  }
  return out;
}

/// Exit-with-usage helper shared by all benches.
inline bool handle_help(const Cli& cli) {
  if (cli.help_requested()) {
    std::cout << cli.usage();
    return true;
  }
  return false;
}

inline std::string fmt(double v, int precision = 2) {
  std::ostringstream os;
  os.precision(precision);
  os << std::fixed << v;
  return os.str();
}

}  // namespace fusedml::bench
