// Shared helpers for the paper-reproduction benches.
//
// Conventions every bench follows:
//  - prints a header naming the paper table/figure it regenerates;
//  - prints one ASCII table whose rows mirror the paper's series, with a
//    "paper" column quoting the numbers the paper reports where available;
//  - all timings are MODELED milliseconds from the virtual GPU's cost model
//    (GTX-Titan parameters) — see DESIGN.md §1 for why that is the honest
//    quantity on a GPU-less host;
//  - dataset sizes default to laptop scale, with --rows/--cols/--sparsity
//    flags to run the paper's full 500k-row configuration.
#pragma once

#include <exception>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/cli.h"
#include "common/error.h"
#include "common/json.h"
#include "common/resilience.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/types.h"
#include "obs/metrics.h"
#include "obs/profile_flags.h"

namespace fusedml::bench {

/// Shared top-level exception barrier: every bench (and example) `main`
/// delegates here so a fusedml::Error exits with one clean line and a
/// non-zero status instead of std::terminate's abort + core dump. If
/// --profile armed a trace, it is flushed to disk on BOTH paths, so a
/// crashed bench still leaves the trace of everything up to the fault.
template <typename Run>
int guarded_main(Run&& run) {
  try {
    const int rc = run();
    obs::flush_profile();
    return rc;
  } catch (const Error& e) {
    obs::flush_profile();
    std::cerr << "error [" << to_string(e.code()) << "]: " << e.what()
              << "\n";
    return 1;
  } catch (const std::exception& e) {
    obs::flush_profile();
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

/// Standardized machine-readable bench record (--json <out>): every bench
/// writes `{"bench": ..., "metrics": {...}, "notes": {...}, "tables": {name:
/// csv}}` so CI and downstream plotting consume one format. When --profile /
/// --metrics armed the metrics registry, its full dump rides along under
/// "obs_metrics".
class JsonReport {
 public:
  /// Declares the --json flag on `cli` (call before cli.finish()).
  JsonReport(Cli& cli, std::string bench_name)
      : bench_(std::move(bench_name)),
        path_(cli.get_string("json", "",
                             "write a machine-readable result record here")) {}

  JsonReport(const JsonReport&) = delete;
  JsonReport& operator=(const JsonReport&) = delete;
  ~JsonReport() { write(); }

  bool enabled() const { return !path_.empty(); }

  void add(const std::string& key, double value) {
    numbers_.emplace_back(key, value);
  }
  void add(const std::string& key, const std::string& value) {
    notes_.emplace_back(key, value);
  }
  void add_table(const std::string& name, const Table& t) {
    tables_.emplace_back(name, t.csv());
  }
  /// Standard silent-corruption-defense block (prefix allows several runs
  /// per bench): detections, rollbacks, and the verification bill.
  void add_resilience(const std::string& prefix, const ResilienceStats& s) {
    add(prefix + ".sdc_detected", static_cast<double>(s.sdc_detected));
    add(prefix + ".rollbacks", static_cast<double>(s.rollbacks));
    add(prefix + ".verify_launches", static_cast<double>(s.verify_launches));
    add(prefix + ".verify_overhead_ms", s.verify_ms);
    add(prefix + ".faults_seen", static_cast<double>(s.faults_seen));
    add(prefix + ".recoveries", static_cast<double>(s.recoveries));
  }

  /// Writes the record (idempotent; also called from the destructor).
  void write() {
    if (path_.empty() || written_) return;
    written_ = true;
    std::ofstream out(path_);
    if (!out) {
      std::cerr << "error: cannot open --json output file: " << path_ << "\n";
      return;
    }
    JsonWriter json(out);
    json.begin_object();
    json.member("bench", bench_);
    json.key("metrics").begin_object();
    for (const auto& [k, v] : numbers_) json.member(k, v);
    json.end_object();
    json.key("notes").begin_object();
    for (const auto& [k, v] : notes_) json.member(k, v);
    json.end_object();
    json.key("tables").begin_object();
    for (const auto& [k, v] : tables_) json.member(k, v);
    json.end_object();
    if (obs::metrics().enabled()) {
      json.key("obs_metrics");
      std::ostringstream ms;
      obs::metrics().write_json(ms);
      // write_json emits a complete JSON object; splice it in verbatim.
      std::string s = ms.str();
      while (!s.empty() && (s.back() == '\n' || s.back() == ' ')) s.pop_back();
      out << s;
    }
    json.end_object();
    out << "\n";
  }

 private:
  std::string bench_;
  std::string path_;
  bool written_ = false;
  std::vector<std::pair<std::string, double>> numbers_;
  std::vector<std::pair<std::string, std::string>> notes_;
  std::vector<std::pair<std::string, std::string>> tables_;
};

inline void print_header(const std::string& id, const std::string& what) {
  std::cout << "\n==================================================================\n"
            << id << " — " << what << "\n"
            << "==================================================================\n";
}

inline void print_note(const std::string& note) {
  std::cout << "note: " << note << "\n";
}

/// The paper's synthetic-sweep column counts (§4.1: "we vary the number of
/// columns from 200 to 4,096").
inline std::vector<index_t> paper_column_sweep() {
  return {200, 400, 800, 1024, 2048, 4096};
}

/// Parses "a,b,c" into a list of ints.
inline std::vector<index_t> parse_cols(const std::string& csv) {
  std::vector<index_t> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(static_cast<index_t>(std::stoll(item)));
  }
  return out;
}

/// Exit-with-usage helper shared by all benches.
inline bool handle_help(const Cli& cli) {
  if (cli.help_requested()) {
    std::cout << cli.usage();
    return true;
  }
  return false;
}

inline std::string fmt(double v, int precision = 2) {
  std::ostringstream os;
  os.precision(precision);
  os << std::fixed << v;
  return os.str();
}

}  // namespace fusedml::bench
