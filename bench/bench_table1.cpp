// Table 1 reproduction — which pattern instantiations appear in which ML
// algorithms.
//
// The paper's Table 1 is analytical; here it is *observed*: each of the
// five algorithms (LR, GLM, LogReg, SVM, HITS) is trained on a small
// synthetic problem through a usage-recording PatternExecutor, and the
// checkmarks are derived from the kinds of pattern evaluations the
// algorithm actually issued. The printed matrix should match the paper's.
#include <iostream>
#include <map>

#include "bench_common.h"
#include "common/cli.h"
#include "common/table.h"
#include "la/generate.h"
#include "ml/glm.h"
#include "ml/hits.h"
#include "ml/logreg.h"
#include "ml/lr_cg.h"
#include "ml/svm.h"
#include "patterns/executor.h"
#include "vgpu/device.h"

using namespace fusedml;
using patterns::PatternKind;

static int run_bench(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto rows =
      static_cast<index_t>(cli.get_int("rows", 2000, "training rows"));
  const auto cols =
      static_cast<index_t>(cli.get_int("cols", 50, "feature columns"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42, ""));
  obs::apply_standard_flags(cli);
  bench::JsonReport json(cli, "table1");
  if (bench::handle_help(cli)) return 0;
  cli.finish();

  bench::print_header("Table 1",
                      "pattern instantiations observed per ML algorithm");

  vgpu::Device dev;
  const auto X = la::uniform_sparse(rows, cols, 0.2, seed);
  std::map<std::string, std::map<PatternKind, std::uint64_t>> usage;

  {  // Linear Regression (Listing 1)
    patterns::PatternExecutor exec(dev, patterns::Backend::kFused);
    const auto y = la::regression_labels(X, seed, 0.05);
    ml::lr_cg(exec, X, y, {.max_iterations = 10});
    usage["LR"] = exec.usage();
  }
  {  // GLM (binomial, IRLS)
    patterns::PatternExecutor exec(dev, patterns::Backend::kFused);
    auto y = la::classification_labels(X, seed, 0.1);
    for (real& v : y) v = v > 0 ? 1.0 : 0.0;
    ml::glm_irls(exec, X, y,
                 {.family = ml::GlmFamily::kBinomial,
                  .max_irls_iterations = 5});
    usage["GLM"] = exec.usage();
  }
  {  // Logistic Regression (trust region)
    patterns::PatternExecutor exec(dev, patterns::Backend::kFused);
    const auto y = la::classification_labels(X, seed, 0.1);
    ml::logreg_trust_region(exec, X, y, {.max_newton_iterations = 5});
    usage["LogReg"] = exec.usage();
  }
  {  // SVM (primal Newton)
    patterns::PatternExecutor exec(dev, patterns::Backend::kFused);
    const auto y = la::classification_labels(X, seed, 0.1);
    ml::svm_primal(exec, X, y, {.max_newton_iterations = 5});
    usage["SVM"] = exec.usage();
  }
  {  // HITS
    patterns::PatternExecutor exec(dev, patterns::Backend::kFused);
    ml::hits(exec, X, {.max_iterations = 10});
    usage["HITS"] = exec.usage();
  }

  const char* algos[] = {"LR", "GLM", "LogReg", "SVM", "HITS"};
  Table table({"Pattern Instantiation", "LR", "GLM", "LogReg", "SVM", "HITS",
               "paper row"});
  for (const auto& row : patterns::table1()) {
    table.row().add(to_string(row.kind));
    for (const char* algo : algos) {
      const auto& u = usage[algo];
      const auto it = u.find(row.kind);
      table.add(it != u.end() && it->second > 0 ? "x" : "");
    }
    std::string paper;
    paper += row.lr ? "x" : "-";
    paper += row.glm ? "x" : "-";
    paper += row.logreg ? "x" : "-";
    paper += row.svm ? "x" : "-";
    paper += row.hits ? "x" : "-";
    table.add(paper);
  }
  std::cout << table;
  bench::print_note(
      "observed marks may be a subset of the paper's: an algorithm variant "
      "only issues the instantiations its update rule needs (e.g. Gaussian "
      "GLM skips the v-weighted form; our GLM folds the ridge z-term into "
      "the v-weighted call, surfacing it as the full pattern).");
  json.add_table("table1", table);
  json.write();
  return 0;
}

int main(int argc, char** argv) {
  return fusedml::bench::guarded_main([&] { return run_bench(argc, argv); });
}
