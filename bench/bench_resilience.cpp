// Resilience overhead — modeled cost of the retry/backoff machinery as a
// function of the injected fault rate.
//
// LR-CG (Listing 1) is trained through the fused backend on a device whose
// fault injector drops kernel launches, corrupts kernel outputs (ECC), and
// fails PCIe transfers at a swept per-event rate. Every run converges to
// weights bit-identical to the fault-free run (asserted below); the table
// shows what that resilience costs in modeled milliseconds.
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "common/cli.h"
#include "common/resilience.h"
#include "common/table.h"
#include "la/generate.h"
#include "la/vector_ops.h"
#include "ml/lr_cg.h"
#include "patterns/executor.h"
#include "vgpu/device.h"
#include "vgpu/fault_injector.h"

using namespace fusedml;

static int run_bench(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto rows =
      static_cast<index_t>(cli.get_int("rows", 20000, "training rows"));
  const auto cols =
      static_cast<index_t>(cli.get_int("cols", 400, "feature columns"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42, ""));
  obs::apply_standard_flags(cli);
  bench::JsonReport json(cli, "resilience");
  if (bench::handle_help(cli)) return 0;
  cli.finish();

  bench::print_header("Resilience",
                      "modeled overhead of retry + backoff vs fault rate");
  bench::print_note(
      "fault rate is per launch/transfer, split 3:1:1 across kernel-launch, "
      "ECC, and transfer faults; each run is checked bit-exact against the "
      "fault-free weights");

  const auto X = la::uniform_sparse(rows, cols, 0.02, seed);
  const auto labels = la::regression_labels(X, seed, 0.05);
  // Tight tolerance => more CG iterations => enough launches for the
  // injected-fault rates to be visible in the counters.
  const ml::LrCgConfig cfg{.max_iterations = 200, .eps = 1e-6,
                           .tolerance = 1e-12};

  const auto train = [&](vgpu::Device& dev,
                         kernels::VerifyPolicy verify =
                             kernels::VerifyPolicy::kOff) {
    patterns::PatternExecutor exec(dev, patterns::Backend::kFused);
    exec.registry().set_verify_policy(verify);
    return ml::lr_cg(exec, X, labels, cfg);
  };

  vgpu::Device clean_dev;
  const auto clean = train(clean_dev);
  const double base_ms = clean.stats.total_modeled_ms();

  RunReport report("bench_resilience");
  Table table({"fault rate", "total (ms)", "overhead", "faults", "retries",
               "fallbacks", "backoff (ms)", "bit-exact"});
  for (const double rate : {0.0, 0.01, 0.02, 0.05, 0.10}) {
    vgpu::FaultConfig fc;
    fc.seed = seed;
    fc.kernel_fault_rate = rate * 0.6;
    fc.ecc_fault_rate = rate * 0.2;
    fc.transfer_fault_rate = rate * 0.2;
    vgpu::FaultInjector injector(fc);
    vgpu::Device dev;
    dev.set_fault_injector(&injector);
    const auto r = train(dev);
    const auto& rs = r.stats.resilience;
    const double total_ms = r.stats.total_modeled_ms();
    const bool exact = la::max_abs_diff(clean.weights, r.weights) == 0.0 &&
                       r.stats.iterations == clean.stats.iterations;
    table.row()
        .add(bench::fmt(rate * 100, 1) + "%")
        .add(total_ms, 3)
        .add(bench::fmt((total_ms / base_ms - 1.0) * 100, 1) + "%")
        .add(rs.faults_seen)
        .add(rs.retries)
        .add(rs.fallbacks)
        .add(rs.backoff_ms, 3)
        .add(exact ? "yes" : "NO");
    report.add("rate " + bench::fmt(rate * 100, 1) + "%", rs);
  }
  std::cout << table << "\n";

  // Silent-corruption load level: outputs are perturbed WITHOUT any error
  // being raised — only ABFT verification (VerifyPolicy::kFull) catches
  // them. The bit-exact column is the whole point: every detection is
  // recomputed, so the converged weights match the fault-free run to the
  // last bit even while kernels lie at the swept rate.
  bench::print_note(
      "silent-corruption level: outputs perturbed with NO raised error; "
      "full ABFT verification detects + recomputes; bit-exactness gates");
  Table sdc_table({"silent rate", "total (ms)", "overhead", "sdc detected",
                   "verify launches", "verify (ms)", "bit-exact"});
  bool all_exact = true;
  ResilienceStats sdc_total;
  for (const double rate : {0.01, 0.02, 0.05}) {
    vgpu::FaultConfig fc;
    fc.seed = seed;
    fc.silent_fault_rate = rate;
    vgpu::FaultInjector injector(fc);
    vgpu::Device dev;
    dev.set_fault_injector(&injector);
    const auto r = train(dev, kernels::VerifyPolicy::kFull);
    const auto& rs = r.stats.resilience;
    const double total_ms = r.stats.total_modeled_ms();
    const bool exact = la::max_abs_diff(clean.weights, r.weights) == 0.0 &&
                       r.stats.iterations == clean.stats.iterations;
    all_exact = all_exact && exact;
    sdc_total += rs;
    sdc_table.row()
        .add(bench::fmt(rate * 100, 1) + "%")
        .add(total_ms, 3)
        .add(bench::fmt((total_ms / base_ms - 1.0) * 100, 1) + "%")
        .add(rs.sdc_detected)
        .add(rs.verify_launches)
        .add(rs.verify_ms, 3)
        .add(exact ? "yes" : "NO");
    report.add("silent " + bench::fmt(rate * 100, 1) + "%", rs);
  }
  std::cout << sdc_table << "\n";
  report.print(std::cout);
  FUSEDML_CHECK(all_exact,
                "silent-corruption defense regressed: a verified run is not "
                "bit-exact with the fault-free weights");
  json.add("clean_total_ms", base_ms);
  json.add_resilience("sdc", sdc_total);
  json.add_table("resilience", table);
  json.add_table("silent_corruption", sdc_table);
  json.write();
  return 0;
}

int main(int argc, char** argv) {
  return fusedml::bench::guarded_main([&] { return run_bench(argc, argv); });
}
