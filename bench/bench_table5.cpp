// Table 5 reproduction — end-to-end Linear Regression Conjugate Gradient:
// fused kernels vs a pure cuBLAS/cuSPARSE pipeline, INCLUDING host-to-device
// transfer time.
//
// Paper: 4.8x total speedup on HIGGS (dense, 32 iterations) and 9x on
// KDD 2010 (sparse, 100 iterations); the 939 ms KDD transfer amortizes over
// the iterations.
#include <iostream>

#include "bench_common.h"
#include "common/cli.h"
#include "common/table.h"
#include "la/generate.h"
#include "ml/lr_cg.h"
#include "patterns/executor.h"
#include "vgpu/device.h"

using namespace fusedml;

namespace {

struct EndToEnd {
  double compute_ms;
  double transfer_ms;
  double total() const { return compute_ms + transfer_ms; }
  int iterations;
};

template <typename Matrix>
EndToEnd run(vgpu::Device& dev, patterns::Backend backend, const Matrix& X,
             std::span<const real> y, int iterations, usize extra_bytes) {
  dev.reset_session();
  // Host-to-device: the matrix, labels, and workspace vectors. The
  // cuSPARSE pipeline additionally keeps X^T resident (extra_bytes).
  double transfer =
      dev.transfer_h2d_ms(X.bytes() + y.size() * sizeof(real) + extra_bytes);
  patterns::PatternExecutor exec(dev, backend);
  ml::LrCgConfig cfg;
  cfg.max_iterations = iterations;
  cfg.tolerance = 0;  // run the paper's exact iteration counts
  const auto r = ml::lr_cg(exec, X, y, cfg);
  return {r.stats.total_modeled_ms(), transfer, r.stats.iterations};
}

}  // namespace

static int run_bench(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto scale =
      cli.get_double("scale", 100.0, "dataset shrink factor vs KDD/HIGGS");
  const auto kdd_iters =
      static_cast<int>(cli.get_int("kdd-iterations", 100, "paper: 100"));
  const auto higgs_iters =
      static_cast<int>(cli.get_int("higgs-iterations", 32, "paper: 32"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42, ""));
  obs::apply_standard_flags(cli);
  bench::JsonReport json(cli, "table5");
  if (bench::handle_help(cli)) return 0;
  cli.finish();

  bench::print_header("Table 5",
                      "end-to-end LR-CG: ours-end2end vs cu-end2end "
                      "(modeled ms incl. PCIe transfers)");

  Table table({"Data set", "iters", "ours (ms)", "cu (ms)", "transfer (ms)",
               "Total Speedup", "paper"});

  {  // HIGGS-like (dense).
    const auto m = static_cast<index_t>(11000000 / scale);
    const auto X = la::higgs_like(m, 28, seed);
    const auto y = la::regression_labels(X, seed, 0.1);
    vgpu::Device dev;
    const auto ours =
        run(dev, patterns::Backend::kFused, X, y, higgs_iters, 0);
    const auto cu =
        run(dev, patterns::Backend::kCusparse, X, y, higgs_iters, 0);
    table.row()
        .add("HIGGS-like (1/" + bench::fmt(scale, 0) + ")")
        .add(higgs_iters)
        .add(ours.total(), 1)
        .add(cu.total(), 1)
        .add(ours.transfer_ms, 1)
        .add(format_speedup(cu.total() / ours.total()))
        .add("4.8x");
  }
  {  // KDD-like (ultra-sparse).
    const auto m = static_cast<index_t>(15009374 / scale);
    const auto n = static_cast<index_t>(29890095 / scale);
    const auto X = la::kdd_like(m, n, 28.0, 1.5, seed + 1);
    const auto y = la::regression_labels(X, seed + 1, 0.1);
    vgpu::Device dev;
    const auto ours = run(dev, patterns::Backend::kFused, X, y, kdd_iters, 0);
    // cuSPARSE keeps the explicit transpose resident too — but rebuilds it
    // per call inside the baseline, so no extra one-time bytes are charged.
    const auto cu =
        run(dev, patterns::Backend::kCusparse, X, y, kdd_iters, 0);
    table.row()
        .add("KDD-like (1/" + bench::fmt(scale, 0) + ")")
        .add(kdd_iters)
        .add(ours.total(), 1)
        .add(cu.total(), 1)
        .add(ours.transfer_ms, 1)
        .add(format_speedup(cu.total() / ours.total()))
        .add("9x");
  }

  std::cout << table;
  bench::print_note(
      "the paper's measured KDD transfer was 939 ms for the full ~5.3 GB "
      "set; at 1/100 scale the modeled transfer above is ~1/100 of that. "
      "Transfers amortize over the ML iterations, so end-to-end gains stay "
      "close to the kernel-level gains (Fig. 3/4) but below them.");
  json.add_table("table5", table);
  json.write();
  return 0;
}

int main(int argc, char** argv) {
  return fusedml::bench::guarded_main([&] { return run_bench(argc, argv); });
}
