// Table 2 reproduction — breakdown of single-threaded CPU compute time for
// Linear Regression Conjugate Gradient.
//
// The paper measured, on SystemML's CPU runtime, that the generic-pattern
// operations account for 82.9% (KDD 2010) and 99.4% (HIGGS) of
// single-thread compute time, with BLAS-1 taking most of the rest — the
// motivation for targeting the pattern with a fused GPU kernel. Here the
// same LR-CG script runs single-threaded on this host through the CPU
// backend, attributing *measured wall time* to pattern vs BLAS-1 buckets.
// Datasets are the scaled KDD-like / HIGGS-like stand-ins (see DESIGN.md).
#include <iostream>

#include "bench_common.h"
#include "common/cli.h"
#include "common/table.h"
#include "la/generate.h"
#include "ml/lr_cg.h"
#include "patterns/executor.h"
#include "vgpu/device.h"

using namespace fusedml;

static int run_bench(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto scale = cli.get_double(
      "scale", 100.0, "dataset shrink factor vs the real KDD/HIGGS");
  const auto iterations =
      static_cast<int>(cli.get_int("iterations", 20, "CG iterations"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42, ""));
  obs::apply_standard_flags(cli);
  bench::JsonReport json(cli, "table2");
  if (bench::handle_help(cli)) return 0;
  cli.finish();

  bench::print_header("Table 2",
                      "single-threaded CPU compute-time breakdown, LR-CG "
                      "(measured wall time on this host)");

  vgpu::Device dev;
  Table table({"Data set", "Pattern", "BLAS-1", "Total", "paper Pattern",
               "paper BLAS-1"});

  {  // KDD-like: ultra-sparse, huge n.
    const auto m = static_cast<index_t>(15009374 / scale);
    const auto n = static_cast<index_t>(29890095 / scale);
    const auto X = la::kdd_like(m, n, 28.0, 1.5, seed);
    const auto y = la::regression_labels(X, seed, 0.1);
    patterns::PatternExecutor exec(dev, patterns::Backend::kCpu,
                                   /*cpu_threads=*/1);
    ml::LrCgConfig cfg;
    cfg.max_iterations = iterations;
    cfg.tolerance = 0;  // pin the iteration count
    const auto r = ml::lr_cg(exec, X, y, cfg);
    table.row()
        .add("KDD-like (1/" + bench::fmt(scale, 0) + " scale)")
        .add(bench::fmt(r.stats.pattern_wall_percent(), 1) + "%")
        .add(bench::fmt(r.stats.blas1_wall_percent(), 1) + "%")
        .add(bench::fmt(r.stats.pattern_wall_percent() +
                            r.stats.blas1_wall_percent(), 1) + "%")
        .add("82.9%")
        .add("16.9%");
  }
  {  // HIGGS-like: dense, 28 columns.
    const auto m = static_cast<index_t>(11000000 / scale);
    const auto X = la::higgs_like(m, 28, seed + 1);
    const auto y = la::regression_labels(X, seed + 1, 0.1);
    patterns::PatternExecutor exec(dev, patterns::Backend::kCpu,
                                   /*cpu_threads=*/1);
    ml::LrCgConfig cfg;
    cfg.max_iterations = iterations;
    cfg.tolerance = 0;
    const auto r = ml::lr_cg(exec, X, y, cfg);
    table.row()
        .add("HIGGS-like (1/" + bench::fmt(scale, 0) + " scale)")
        .add(bench::fmt(r.stats.pattern_wall_percent(), 1) + "%")
        .add(bench::fmt(r.stats.blas1_wall_percent(), 1) + "%")
        .add(bench::fmt(r.stats.pattern_wall_percent() +
                            r.stats.blas1_wall_percent(), 1) + "%")
        .add("99.4%")
        .add("0.1%");
  }

  std::cout << table;
  bench::print_note(
      "paper Total column (99.8% / 99.5%) is pattern+BLAS-1 relative to the "
      "whole algorithm; our buckets cover exactly those two classes, so the "
      "split is what is comparable. KDD's BLAS-1 share is large because its "
      "n (columns) is huge relative to nnz; HIGGS's is negligible because "
      "n=28.");
  json.add_table("table2", table);
  json.write();
  return 0;
}

int main(int argc, char** argv) {
  return fusedml::bench::guarded_main([&] { return run_bench(argc, argv); });
}
