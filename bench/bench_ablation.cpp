// Ablation bench — isolates each design choice the paper argues for
// (DESIGN.md's ablation index):
//   1. hierarchical aggregation: shared-memory inter-vector staging vs
//      scattering straight to global atomics, across n (the §3.1 crossover);
//   2. temporal locality: second pass over each row served from cache vs
//      charged as cold loads (§3's "decreases the overhead ... by a factor
//      of up to 2");
//   3. texture binding of y (§4.1);
//   4. coarsening: the model's C vs C=1 (every vector one row => maximal
//      inter-block atomic traffic);
//   5. dense code generation: unrolled register kernel vs runtime-indexed
//      arrays that spill to local memory (§3.2);
//   6. explicit-transpose vs atomic-scatter baselines (the two ways a
//      library computes X^T*p).
#include <iostream>

#include "bench_common.h"
#include "common/cli.h"
#include "common/table.h"
#include "kernels/fused_dense.h"
#include "kernels/baselines.h"
#include "kernels/fused_sparse.h"
#include "kernels/spmv_transpose.h"
#include "la/generate.h"
#include "la/vector_ops.h"
#include "tuner/autotune.h"
#include "vgpu/device.h"

using namespace fusedml;

static int run_bench(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto rows = static_cast<index_t>(
      cli.get_int("rows", 50000, "rows for the sparse ablations"));
  const double sparsity = cli.get_double("sparsity", 0.01, "nnz fraction");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42, ""));
  obs::apply_standard_flags(cli);
  bench::JsonReport json(cli, "ablation");
  if (bench::handle_help(cli)) return 0;
  cli.finish();

  bench::print_header("Ablations", "each §3 design choice toggled in isolation");
  vgpu::Device dev;

  // --- 1. shared vs global aggregation across n ---------------------------
  {
    Table t({"n", "shared agg (ms)", "global agg (ms)", "shared wins by"});
    for (index_t n : {200, 1024, 4096, 6000}) {
      const auto X = la::uniform_sparse(rows, n, sparsity, seed);
      const auto y = la::random_vector(static_cast<usize>(n), seed + 1);
      kernels::FusedSparseOptions shared, global;
      shared.aggregation = tuner::Aggregation::kShared;
      global.aggregation = tuner::Aggregation::kGlobal;
      const auto s =
          kernels::fused_pattern_sparse(dev, 1, X, {}, y, 0, {}, shared);
      const auto g =
          kernels::fused_pattern_sparse(dev, 1, X, {}, y, 0, {}, global);
      t.row()
          .add(static_cast<long long>(n))
          .add(s.modeled_ms, 3)
          .add(g.modeled_ms, 3)
          .add(format_speedup(g.modeled_ms / s.modeled_ms));
    }
    std::cout << "\n[1] hierarchical aggregation (shared-memory partial w)\n"
              << t;
  }

  // --- 2. temporal locality of the second pass ----------------------------
  {
    Table t({"n", "cached 2nd pass (ms)", "cold 2nd pass (ms)", "benefit"});
    for (index_t n : {512, 2048}) {
      const auto X = la::uniform_sparse(rows, n, sparsity, seed);
      const auto y = la::random_vector(static_cast<usize>(n), seed + 1);
      kernels::FusedSparseOptions hot, cold;
      cold.cache_second_pass = false;
      const auto h =
          kernels::fused_pattern_sparse(dev, 1, X, {}, y, 0, {}, hot);
      const auto c =
          kernels::fused_pattern_sparse(dev, 1, X, {}, y, 0, {}, cold);
      t.row()
          .add(static_cast<long long>(n))
          .add(h.modeled_ms, 3)
          .add(c.modeled_ms, 3)
          .add(format_speedup(c.modeled_ms / h.modeled_ms));
    }
    std::cout << "\n[2] temporal locality (paper: up to 2x fewer loads)\n" << t;
  }

  // --- 3. texture binding of y ---------------------------------------------
  {
    Table t({"n", "texture y (ms)", "plain y (ms)", "benefit"});
    for (index_t n : {512, 2048}) {
      const auto X = la::uniform_sparse(rows, n, sparsity, seed);
      const auto y = la::random_vector(static_cast<usize>(n), seed + 1);
      kernels::FusedSparseOptions tex, plain;
      plain.texture_y = false;
      const auto a =
          kernels::fused_pattern_sparse(dev, 1, X, {}, y, 0, {}, tex);
      const auto b =
          kernels::fused_pattern_sparse(dev, 1, X, {}, y, 0, {}, plain);
      t.row()
          .add(static_cast<long long>(n))
          .add(a.modeled_ms, 3)
          .add(b.modeled_ms, 3)
          .add(format_speedup(b.modeled_ms / a.modeled_ms));
    }
    std::cout << "\n[3] binding y to the texture path (§4.1)\n" << t;
  }

  // --- 4. coarsening --------------------------------------------------------
  {
    Table t({"n", "model C (ms)", "C=1 (ms)", "coarsening wins by",
             "atomics model-C", "atomics C=1"});
    for (index_t n : {512, 2048}) {
      const auto X = la::uniform_sparse(rows, n, sparsity, seed);
      const auto y = la::random_vector(static_cast<usize>(n), seed + 1);
      kernels::FusedSparseOptions tuned, fine;
      fine.coarsening = 1;
      // C=1 needs a grid covering all rows with one row per vector.
      const auto params = kernels::fused_sparse_params(dev, X, {});
      const int nv = params.config.num_vectors_per_block();
      fine.grid_size = static_cast<int>((rows + nv - 1) / nv);
      const auto a =
          kernels::fused_pattern_sparse(dev, 1, X, {}, y, 0, {}, tuned);
      const auto b =
          kernels::fused_pattern_sparse(dev, 1, X, {}, y, 0, {}, fine);
      t.row()
          .add(static_cast<long long>(n))
          .add(a.modeled_ms, 3)
          .add(b.modeled_ms, 3)
          .add(format_speedup(b.modeled_ms / a.modeled_ms))
          .add(format_count(
              static_cast<double>(a.counters.atomic_global_ops)))
          .add(format_count(
              static_cast<double>(b.counters.atomic_global_ops)));
    }
    std::cout << "\n[4] coarsening (Eq. 5) vs one row per vector\n" << t;
  }

  // --- 5. dense code generation ---------------------------------------------
  {
    Table t({"n", "codegen (ms)", "runtime-indexed (ms)", "codegen wins by",
             "spill bytes"});
    for (index_t n : {128, 512}) {
      const auto X = la::dense_random(rows / 5, n, seed);
      const auto y = la::random_vector(static_cast<usize>(n), seed + 1);
      kernels::FusedDenseOptions gen, dyn;
      dyn.use_codegen = false;
      const auto a = kernels::fused_pattern_dense(dev, 1, X, {}, y, 0, {}, gen);
      const auto b = kernels::fused_pattern_dense(dev, 1, X, {}, y, 0, {}, dyn);
      t.row()
          .add(static_cast<long long>(n))
          .add(a.modeled_ms, 3)
          .add(b.modeled_ms, 3)
          .add(format_speedup(b.modeled_ms / a.modeled_ms))
          .add(format_count(
              static_cast<double>(b.counters.local_spill_bytes)));
    }
    std::cout << "\n[5] dense codegen (unrolled registers) vs register "
                 "spilling (§3.2)\n"
              << t;
  }

  // --- 5b. dense TL sweep vs the model (the §3.3 dense profiling) ------------
  {
    const auto X = la::dense_random(rows / 5, 512, seed);
    const auto y = la::random_vector(512, seed + 1);
    const auto eval = [&](const tuner::DenseSearchPoint& p) -> double {
      kernels::FusedDenseOptions o;
      o.thread_load = p.thread_load;
      o.block_size = p.block_size;
      o.vector_size = p.vector_size;
      return kernels::fused_pattern_dense(dev, 1, X, {}, y, 0, {}, o)
          .modeled_ms;
    };
    const auto r = tuner::dense_exhaustive_search(dev.spec(), rows / 5, 512,
                                                  eval);
    const auto& best = r.points[r.best_index];
    const auto& model = r.points[r.model_index];
    Table t({"quantity", "value"});
    t.row().add("feasible (TL,BS) settings").add(
        static_cast<long long>(r.points.size()));
    t.row().add("best").add("TL=" + std::to_string(best.thread_load) +
                            " BS=" + std::to_string(best.block_size) + " (" +
                            bench::fmt(r.best_ms, 3) + " ms)");
    t.row().add("model pick").add(
        "TL=" + std::to_string(model.thread_load) +
        " BS=" + std::to_string(model.block_size) + " (" +
        bench::fmt(r.model_ms, 3) + " ms)");
    t.row().add("model gap").add(
        bench::fmt(100.0 * r.model_gap_fraction(), 2) + "%");
    t.row().add("worst/best").add(format_speedup(r.worst_ms / r.best_ms));
    std::cout << "\n[5b] dense TL x BS sweep vs the analytical model\n" << t;
  }

  // --- 7. device sensitivity: the same kernels on a smaller GPU --------------
  {
    Table t({"device", "fused (ms)", "cuSPARSE-style (ms)", "speedup",
             "VS/BS/C picked"});
    const auto X = la::uniform_sparse(rows, 1024, sparsity, seed);
    const auto y = la::random_vector(1024, seed + 1);
    for (const auto& spec : {vgpu::gtx_titan(), vgpu::small_kepler()}) {
      vgpu::Device d(spec);
      const auto fused =
          kernels::fused_pattern_sparse(d, 1, X, {}, y, 0, {});
      const auto base = kernels::baseline_xtxy_sparse(
          d, X, y, kernels::SparseTransposeStrategy::kExplicitTranspose);
      const auto params = kernels::fused_sparse_params(d, X, {});
      t.row()
          .add(spec.name)
          .add(fused.modeled_ms, 3)
          .add(base.modeled_ms, 3)
          .add(format_speedup(base.modeled_ms / fused.modeled_ms))
          .add(std::to_string(params.config.vector_size) + "/" +
               std::to_string(params.config.block_size) + "/" +
               std::to_string(params.config.coarsening));
    }
    std::cout << "\n[7] device sensitivity: the tuner re-derives launch "
                 "parameters per device; the fused advantage persists\n"
              << t;
  }

  // --- 6. the two transposed-product baselines -------------------------------
  {
    Table t({"n", "explicit transpose (ms)", "atomic scatter (ms)",
             "scatter wins by"});
    for (index_t n : {512, 2048}) {
      const auto X = la::uniform_sparse(rows, n, sparsity, seed);
      const auto y = la::random_vector(static_cast<usize>(rows), seed + 1);
      const auto e =
          kernels::spmv_t_explicit_transpose(dev, X, y).combined();
      const auto a = kernels::spmv_t_atomic_scatter(dev, X, y);
      t.row()
          .add(static_cast<long long>(n))
          .add(e.modeled_ms, 3)
          .add(a.modeled_ms, 3)
          .add(format_speedup(e.modeled_ms / a.modeled_ms));
    }
    std::cout << "\n[6] baseline strategies for X^T*p (why BIDMat-GPU beats "
                 "cuSPARSE on sparse)\n"
              << t;
    json.add_table("ablation_6_baselines", t);
  }
  json.add("rows", static_cast<double>(rows));
  json.add("sparsity", sparsity);
  json.write();
  return 0;
}

int main(int argc, char** argv) {
  return fusedml::bench::guarded_main([&] { return run_bench(argc, argv); });
}
