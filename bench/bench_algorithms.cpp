// Whole-library algorithm sweep — every ScriptLibrary algorithm (lr-cg,
// logreg-gd, glm, svm, hits, als, kmeans, pagerank, minibatch-logreg) run
// through the declarative DAG path under all three plan modes: unfused
// interpretation, the paper's hardcoded Equation-1 template pass, and the
// cost-based fusion planner.
//
// Reported per (algorithm, mode): kernel launches (the quantity fusion
// minimizes), modeled milliseconds from the virtual GPU's cost model,
// bytes moved across the modeled PCIe bus (H2D + D2H), fusion groups
// chosen, and max |Δweights| vs the unfused interpreter.
//
// Exit status enforces the library-wide contract CI gates on:
//   - the planner matches the hardcoded pass bit-exactly on every
//     algorithm (it must subsume the paper's rewrite, never diverge);
//   - the planner needs STRICTLY fewer launches than unfused on the
//     algorithms with fusable elementwise chains (glm, svm, hits);
//   - it never needs more launches than unfused on any algorithm;
//   - plan-vs-actual launch drift is zero wherever a prediction was armed.
#include <cmath>
#include <span>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/cli.h"
#include "common/rng.h"
#include "common/table.h"
#include "la/generate.h"
#include "la/vector_ops.h"
#include "ml/script_library.h"
#include "sysml/runtime.h"
#include "vgpu/device.h"

using namespace fusedml;

namespace {

constexpr sysml::PlanMode kModes[] = {sysml::PlanMode::kUnfused,
                                      sysml::PlanMode::kHardcodedPass,
                                      sysml::PlanMode::kPlanner};

struct AlgoCase {
  ml::Algorithm algorithm;
  la::CsrMatrix X;
  std::vector<real> labels;
  int iterations;
  /// True when the algorithm's update contains an elementwise chain the
  /// hardcoded pass cannot touch, so the planner must strictly win.
  bool expect_planner_gain;
};

/// Poisson counts from a small-weight linear predictor (keeps exp(eta)
/// tame at bench scale).
std::vector<real> poisson_labels(const la::CsrMatrix& X, std::uint64_t seed) {
  auto w = la::regression_true_weights(X.cols(), seed);
  for (real& v : w) v *= 0.3;
  const auto eta = la::reference::spmv(X, w);
  Rng rng(seed);
  std::vector<real> y(eta.size());
  for (usize i = 0; i < y.size(); ++i) {
    y[i] = static_cast<real>(rng.poisson(std::exp(eta[i])));
  }
  return y;
}

std::vector<AlgoCase> build_cases(index_t rows, index_t cols) {
  std::vector<AlgoCase> cases;
  {
    auto X = la::uniform_sparse(rows, cols, 0.05, 11);
    auto y = la::regression_labels(X, 11, 0.1);
    cases.push_back({ml::Algorithm::kLrCg, std::move(X), std::move(y), 15,
                     /*expect_planner_gain=*/false});
  }
  {
    auto X = la::uniform_sparse(rows, cols, 0.05, 13);
    auto y = la::classification_labels(X, 13, 0.1);
    cases.push_back({ml::Algorithm::kLogregGd, std::move(X), std::move(y), 15,
                     /*expect_planner_gain=*/false});
  }
  {
    auto X = la::uniform_sparse(rows, cols, 0.05, 17);
    auto y = poisson_labels(X, 17);
    cases.push_back({ml::Algorithm::kGlm, std::move(X), std::move(y), 8,
                     /*expect_planner_gain=*/true});
  }
  {
    auto X = la::uniform_sparse(rows, cols, 0.05, 19);
    auto y = la::classification_labels(X, 19, 0.1);
    cases.push_back({ml::Algorithm::kSvm, std::move(X), std::move(y), 8,
                     /*expect_planner_gain=*/true});
  }
  {
    // HITS wants a square link matrix; labels are ignored by its runner.
    const index_t pages = rows / 4;
    auto X = la::uniform_sparse(pages, pages, 0.01, 23);
    cases.push_back({ml::Algorithm::kHits, std::move(X), {}, 20,
                     /*expect_planner_gain=*/true});
  }
  {
    // ALS holds four matrix leaves (R, R^T and both mask orientations), so
    // the ratings matrix is kept smaller. The Hessian-vector product is the
    // sddmm template — the planner must strictly win.
    auto X = la::uniform_sparse(rows / 4, cols, 0.05, 29);
    cases.push_back({ml::Algorithm::kAls, std::move(X), {}, 4,
                     /*expect_planner_gain=*/true});
  }
  {
    auto X = la::uniform_sparse(rows / 2, cols, 0.05, 31);
    cases.push_back({ml::Algorithm::kKmeans, std::move(X), {}, 4,
                     /*expect_planner_gain=*/true});
  }
  {
    const index_t pages = rows / 4;
    auto X = la::uniform_sparse(pages, pages, 0.01, 37);
    cases.push_back({ml::Algorithm::kPagerank, std::move(X), {}, 20,
                     /*expect_planner_gain=*/true});
  }
  {
    auto X = la::uniform_sparse(rows, cols, 0.05, 41);
    auto y = la::classification_labels(X, 41, 0.1);
    cases.push_back({ml::Algorithm::kMinibatchLogreg, std::move(X),
                     std::move(y), 12,
                     /*expect_planner_gain=*/true});
  }
  return cases;
}

double max_abs_diff(std::span<const real> a, std::span<const real> b) {
  double worst = 0;
  for (usize i = 0; i < a.size() && i < b.size(); ++i) {
    worst = std::max(worst, std::abs(static_cast<double>(a[i] - b[i])));
  }
  return worst;
}

bool bit_equal(std::span<const real> a, std::span<const real> b) {
  if (a.size() != b.size()) return false;
  for (usize i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

int run_bench(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto rows =
      static_cast<index_t>(cli.get_int("rows", 4000, "dataset rows"));
  const auto cols =
      static_cast<index_t>(cli.get_int("cols", 60, "dataset columns"));
  const auto popts = sysml::planner_options_from_cli(cli);
  obs::apply_standard_flags(cli);
  bench::JsonReport json(cli, "bench_algorithms");
  if (bench::handle_help(cli)) return 0;
  cli.finish();

  bench::print_header(
      "algorithm library sweep",
      "every ScriptLibrary algorithm x {unfused, hardcoded, planner}");

  Table table({"algorithm", "plan mode", "launches", "modeled ms",
               "bytes moved", "fused groups", "max|dw| vs unfused"});
  Table spot_table({"algorithm", "planner ms", "spot-verify ms", "overhead",
                    "verify launches", "drift"});

  bool ok = true;
  for (auto& c : build_cases(rows, cols)) {
    std::vector<sysml::ScriptResult> runs;
    std::vector<std::int64_t> drifts;
    for (const auto mode : kModes) {
      const ml::ScriptSpec* spec =
          ml::find_script(c.algorithm, /*dense=*/false, mode);
      if (spec == nullptr || !spec->run_sparse) {
        std::cerr << "missing library entry for " << to_string(c.algorithm)
                  << " / " << to_string(mode) << "\n";
        return 1;
      }
      vgpu::Device dev;
      sysml::Runtime rt(dev, {.enable_gpu = true, .gpu_cost_bias = 1e-4});
      rt.set_planner_options(popts);
      runs.push_back(spec->run_sparse(rt, c.X, c.labels, c.iterations));
      drifts.push_back(runs.back().plan_audit.has_prediction
                           ? runs.back().plan_audit.launch_drift()
                           : 0);
    }
    const auto& unfused = runs[0];
    const auto& hardcoded = runs[1];
    const auto& planner = runs[2];
    const std::string name = to_string(c.algorithm);

    for (usize i = 0; i < runs.size(); ++i) {
      const auto& r = runs[i];
      const auto bytes = r.memory_stats.h2d_bytes + r.memory_stats.d2h_bytes;
      table.row()
          .add(name)
          .add(to_string(kModes[i]))
          .add(static_cast<long long>(r.runtime_stats.kernel_launches))
          .add(r.runtime_stats.total_ms(), 3)
          .add(static_cast<long long>(bytes))
          .add(r.fused_groups)
          .add(max_abs_diff(unfused.weights, r.weights), 12);
      json.add(name + "_" + to_string(kModes[i]) + "_launches",
               static_cast<double>(r.runtime_stats.kernel_launches));
      json.add(name + "_" + to_string(kModes[i]) + "_modeled_ms",
               r.runtime_stats.total_ms());
      json.add(name + "_" + to_string(kModes[i]) + "_bytes_moved",
               static_cast<double>(bytes));
    }

    // Gate 1: the planner subsumes the paper's hardcoded rewrite — same
    // fusion decisions, bit-identical weights.
    if (!bit_equal(planner.weights, hardcoded.weights)) {
      std::cerr << "GATE FAILED: " << name
                << " planner diverges from the hardcoded pass\n";
      ok = false;
    }
    // Gate 2: strict launch win where an elementwise chain is fusable.
    if (c.expect_planner_gain &&
        planner.runtime_stats.kernel_launches >=
            unfused.runtime_stats.kernel_launches) {
      std::cerr << "GATE FAILED: " << name
                << " planner did not reduce launches (planner="
                << planner.runtime_stats.kernel_launches
                << " unfused=" << unfused.runtime_stats.kernel_launches
                << ")\n";
      ok = false;
    }
    // Gate 3: fusion never costs launches.
    if (planner.runtime_stats.kernel_launches >
        unfused.runtime_stats.kernel_launches) {
      std::cerr << "GATE FAILED: " << name
                << " planner needs MORE launches than unfused\n";
      ok = false;
    }
    // Gate 4: plan-vs-actual audit — zero launch drift wherever the
    // planner armed a prediction.
    for (usize i = 0; i < drifts.size(); ++i) {
      if (drifts[i] != 0) {
        std::cerr << "GATE FAILED: " << name << " / " << to_string(kModes[i])
                  << " plan audit drift = " << drifts[i] << "\n";
        ok = false;
      }
    }

    // Gate 5: spot ABFT verification is cheap enough to leave on — the
    // planner run with VerifyPolicy::kSpot stays within 10% modeled
    // overhead, its weights stay bit-exact (no false positives on a clean
    // device), and the plan audit still shows zero drift (verification
    // launches are excluded from plan-vs-actual accounting).
    {
      const ml::ScriptSpec* spec =
          ml::find_script(c.algorithm, /*dense=*/false, sysml::PlanMode::kPlanner);
      vgpu::Device dev;
      sysml::Runtime rt(dev, {.enable_gpu = true, .gpu_cost_bias = 1e-4});
      rt.set_planner_options(popts);
      rt.set_verify_policy(kernels::VerifyPolicy::kSpot);
      const auto spot = spec->run_sparse(rt, c.X, c.labels, c.iterations);
      const double base_ms = planner.runtime_stats.total_ms();
      const double spot_ms = spot.runtime_stats.total_ms();
      const double overhead = base_ms > 0 ? spot_ms / base_ms - 1.0 : 0.0;
      const std::int64_t spot_drift = spot.plan_audit.has_prediction
                                          ? spot.plan_audit.launch_drift()
                                          : 0;
      spot_table.row()
          .add(name)
          .add(base_ms, 3)
          .add(spot_ms, 3)
          .add(bench::fmt(overhead * 100, 2) + "%")
          .add(static_cast<long long>(spot.runtime_stats.verify_launches))
          .add(static_cast<long long>(spot_drift));
      json.add(name + "_spot_verify_overhead_pct", overhead * 100);
      json.add(name + "_spot_verify_launches",
               static_cast<double>(spot.runtime_stats.verify_launches));
      if (overhead > 0.10) {
        std::cerr << "GATE FAILED: " << name << " spot-verify overhead "
                  << bench::fmt(overhead * 100, 2) << "% exceeds 10%\n";
        ok = false;
      }
      if (!bit_equal(spot.weights, planner.weights)) {
        std::cerr << "GATE FAILED: " << name
                  << " spot-verify run is not bit-exact with the planner "
                     "run (false positive on a clean device?)\n";
        ok = false;
      }
      if (spot_drift != 0) {
        std::cerr << "GATE FAILED: " << name
                  << " spot-verify plan audit drift = " << spot_drift << "\n";
        ok = false;
      }
    }
  }

  std::cout << "\n" << table;
  std::cout << "\n" << spot_table;
  json.add("ok", ok ? 1.0 : 0.0);
  json.add_table("algorithms", table);
  json.add_table("spot_verify", spot_table);
  json.write();
  bench::print_note(
      "modeled milliseconds from the virtual GTX-Titan cost model; bytes "
      "moved = modeled H2D + D2H traffic. Exit status gates: planner == "
      "hardcoded bit-exact, strict launch win on glm/svm/hits and on all "
      "four new workloads (als/kmeans/pagerank/minibatch-logreg), zero "
      "plan-audit drift, spot ABFT verification <= 10% modeled overhead.");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  return fusedml::bench::guarded_main(
      [&]() -> int { return run_bench(argc, argv); });
}
