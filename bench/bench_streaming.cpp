// Extension bench — out-of-core streaming (§3's streaming design) and
// hybrid CPU+GPU execution (§5 future work).
//
// Streaming: X is larger than the configured device budget; panels are
// double-buffered over PCIe while the fused kernel runs. Reported:
// pipeline time with/without overlap and the in-core lower bound.
//
// Hybrid: the pattern's rows split between the fused GPU kernel and the
// CPU backend at the cost-model-balanced fraction.
#include <iostream>

#include "bench_common.h"
#include "common/cli.h"
#include "common/table.h"
#include "kernels/fused_sparse.h"
#include "kernels/hybrid.h"
#include "kernels/streaming.h"
#include "la/generate.h"
#include "la/vector_ops.h"
#include "vgpu/device.h"

using namespace fusedml;

static int run_bench(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto rows = static_cast<index_t>(
      cli.get_int("rows", 200000, "rows in X"));
  const auto n = static_cast<index_t>(cli.get_int("cols", 1000, "columns"));
  const double sparsity = cli.get_double("sparsity", 0.01, "nnz fraction");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42, ""));
  obs::apply_standard_flags(cli);
  bench::JsonReport json(cli, "streaming");
  if (bench::handle_help(cli)) return 0;
  cli.finish();

  bench::print_header("Extensions",
                      "out-of-core streaming + hybrid CPU/GPU execution");

  vgpu::Device dev;
  const auto X = la::uniform_sparse(rows, n, sparsity, seed);
  const auto y = la::random_vector(static_cast<usize>(n), seed + 1);
  const auto ref = la::reference::pattern(1, X, {}, y, 0, {});

  // --- Streaming -----------------------------------------------------------
  const auto in_core = kernels::fused_pattern_sparse(dev, 1, X, {}, y, 0, {});
  std::cout << "\n[streaming] X = " << (X.bytes() >> 20)
            << " MiB; in-core fused kernel: " << format_ms(in_core.modeled_ms)
            << "\n";
  Table st({"device budget", "panels", "kernel (ms)", "transfer (ms)",
            "pipeline overlap (ms)", "pipeline serial (ms)",
            "overhead vs in-core"});
  for (double budget_fraction : {0.6, 0.25, 0.1}) {
    kernels::StreamingOptions overlap;
    overlap.device_budget_bytes = static_cast<usize>(
        budget_fraction * X.bytes()) + (4u << 20);
    auto serial = overlap;
    serial.overlap_transfers = false;
    const auto a =
        kernels::streaming_pattern_sparse(dev, 1, X, {}, y, 0, {}, overlap);
    const auto b =
        kernels::streaming_pattern_sparse(dev, 1, X, {}, y, 0, {}, serial);
    if (la::max_abs_diff(ref, a.op.value) > 1e-6) {
      std::cerr << "STREAMING RESULT MISMATCH\n";
      return 1;
    }
    st.row()
        .add(bench::fmt(100 * budget_fraction, 0) + "% of X")
        .add(a.panels)
        .add(a.kernel_ms, 3)
        .add(a.transfer_ms, 3)
        .add(a.pipeline_ms, 3)
        .add(b.pipeline_ms, 3)
        .add(format_speedup(a.pipeline_ms / in_core.modeled_ms));
  }
  std::cout << st;
  bench::print_note(
      "double buffering hides the smaller of (copy, compute) per panel; "
      "out-of-core execution approaches PCIe-bandwidth-bound as the budget "
      "shrinks — the regime where §3 recommends the streaming design.");

  // --- Hybrid ---------------------------------------------------------------
  std::cout << "\n[hybrid] cost-model split of the same pattern\n";
  Table ht({"GPU fraction", "GPU (ms)", "CPU (ms)", "combine (ms)",
            "total (ms)"});
  for (double f : {1.0, 0.9, -1.0, 0.5, 0.0}) {
    kernels::HybridOptions opts;
    opts.gpu_fraction = f;
    const auto r = kernels::hybrid_pattern_sparse(dev, 1, X, {}, y, 0, {},
                                                  opts);
    if (la::max_abs_diff(ref, r.value) > 1e-6) {
      std::cerr << "HYBRID RESULT MISMATCH\n";
      return 1;
    }
    ht.row()
        .add(f < 0 ? "auto (" + bench::fmt(r.gpu_fraction, 3) + ")"
                   : bench::fmt(f, 2))
        .add(r.gpu_ms, 3)
        .add(r.cpu_ms, 3)
        .add(r.combine_ms, 3)
        .add(r.total_ms, 3);
  }
  std::cout << ht;
  bench::print_note(
      "the auto split hands the CPU just enough rows to finish alongside "
      "the GPU — the §5 future-work hybrid execution realized.");
  json.add("in_core_ms", in_core.modeled_ms);
  json.add_table("streaming", st);
  json.add_table("hybrid", ht);
  json.write();
  return 0;
}

int main(int argc, char** argv) {
  return fusedml::bench::guarded_main([&] { return run_bench(argc, argv); });
}
