// Figure 3 reproduction — sparse w = X^T * (X * y).
//
// Speedup of the fused kernel (Algorithm 2) against three alternatives, for
// X with 500k rows and sparsity 0.01, n in 200..4096:
//   - cuSPARSE-style:   csrmv + explicit csr2csc + csrmv,
//   - BIDMat-GPU-style: csrmv + atomic-scatter transposed product,
//   - BIDMat-CPU (MKL, 8 hyper-threads).
// The paper reports average speedups of 20.33x, 14.66x and 9.28x
// respectively.
#include <iostream>

#include "bench_common.h"
#include "common/cli.h"
#include "common/stats.h"
#include "common/table.h"
#include "kernels/baselines.h"
#include "kernels/cpu_backend.h"
#include "kernels/fused_sparse.h"
#include "la/generate.h"
#include "la/vector_ops.h"
#include "vgpu/device.h"

using namespace fusedml;

static int run_bench(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto rows = static_cast<index_t>(
      cli.get_int("rows", 100000, "rows in X (paper: 500000)"));
  const double sparsity = cli.get_double("sparsity", 0.01, "nnz fraction");
  const auto cols = bench::parse_cols(cli.get_string(
      "cols", "200,400,800,1024,2048,4096", "column sweep"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42, ""));
  obs::apply_standard_flags(cli);
  bench::JsonReport json(cli, "fig3");
  if (bench::handle_help(cli)) return 0;
  cli.finish();

  bench::print_header("Figure 3",
                      "sparse X^T*(X*y): fused vs cuSPARSE / BIDMat-GPU / "
                      "BIDMat-CPU");
  bench::print_note("X: " + std::to_string(rows) + " rows, sparsity " +
                    bench::fmt(sparsity, 3) + ". Modeled ms, virtual Titan.");

  Table table({"n", "fused (ms)", "vs cuSPARSE", "vs BIDMat-GPU",
               "vs BIDMat-CPU"});
  std::vector<double> s_cusparse, s_bidmat_gpu, s_bidmat_cpu;
  kernels::CpuBackend cpu;  // MKL-like, 8 hyper-threads

  for (index_t n : cols) {
    vgpu::Device dev;
    const auto X = la::uniform_sparse(rows, n, sparsity, seed);
    const auto y = la::random_vector(static_cast<usize>(n), seed + 1);

    const auto fused = kernels::fused_pattern_sparse(dev, 1, X, {}, y, 0, {});
    const auto cus = kernels::baseline_xtxy_sparse(
        dev, X, y, kernels::SparseTransposeStrategy::kExplicitTranspose);
    const auto bid = kernels::baseline_xtxy_sparse(
        dev, X, y, kernels::SparseTransposeStrategy::kAtomicScatter);
    const auto cpu_res = cpu.pattern(1, X, {}, y, 0, {});

    const auto ref = la::reference::pattern(1, X, {}, y, 0, {});
    if (la::max_abs_diff(ref, fused.value) > 1e-6 ||
        la::max_abs_diff(ref, cus.value) > 1e-6 ||
        la::max_abs_diff(ref, bid.value) > 1e-6) {
      std::cerr << "RESULT MISMATCH at n=" << n << "\n";
      return 1;
    }

    s_cusparse.push_back(cus.modeled_ms / fused.modeled_ms);
    s_bidmat_gpu.push_back(bid.modeled_ms / fused.modeled_ms);
    s_bidmat_cpu.push_back(cpu_res.modeled_ms / fused.modeled_ms);

    table.row()
        .add(static_cast<long long>(n))
        .add(fused.modeled_ms, 3)
        .add(format_speedup(s_cusparse.back()))
        .add(format_speedup(s_bidmat_gpu.back()))
        .add(format_speedup(s_bidmat_cpu.back()));
  }

  std::cout << table;
  std::cout << "geomean speedups — vs cuSPARSE: "
            << format_speedup(geomean(s_cusparse))
            << " (paper avg 20.33x), vs BIDMat-GPU: "
            << format_speedup(geomean(s_bidmat_gpu))
            << " (paper avg 14.66x), vs BIDMat-CPU: "
            << format_speedup(geomean(s_bidmat_cpu))
            << " (paper avg 9.28x)\n";
  json.add("geomean_vs_cusparse", geomean(s_cusparse));
  json.add("geomean_vs_bidmat_gpu", geomean(s_bidmat_gpu));
  json.add("geomean_vs_bidmat_cpu", geomean(s_bidmat_cpu));
  json.add_table("fig3", table);
  json.write();
  return 0;
}

int main(int argc, char** argv) {
  return fusedml::bench::guarded_main([&] { return run_bench(argc, argv); });
}
