// Figure 2 reproduction — sparse w = X^T * y.
//
// Top panel: speedup of the fused kernel (Algorithm 1) over the
// cuSPARSE-style baseline (explicit csr2csc + csrmv), for X with 500k rows,
// sparsity 0.01, n in 200..4096. The paper reports speedups up to 67x at
// small n, ~35x on average, with the gap driven by the baseline's extra
// load transactions (bottom panel, ~3.5x more loads on average) and its
// scattered transpose stores.
//
// Bottom panel: global load transactions of both kernels (log10 in the
// paper; raw counts here) plus the second x-axis: the number of ML
// iterations needed for an up-front explicit transpose to amortize against
// simply using the fused kernel every iteration.
#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "common/cli.h"
#include "common/stats.h"
#include "common/table.h"
#include "kernels/fused_sparse.h"
#include "kernels/spmv.h"
#include "kernels/spmv_transpose.h"
#include "la/generate.h"
#include "la/vector_ops.h"
#include "vgpu/device.h"

using namespace fusedml;

static int run_bench(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto rows = static_cast<index_t>(
      cli.get_int("rows", 100000, "rows in X (paper: 500000)"));
  const double sparsity = cli.get_double("sparsity", 0.01, "nnz fraction");
  const auto cols = bench::parse_cols(cli.get_string(
      "cols", "200,400,800,1024,2048,4096", "column sweep"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42, ""));
  obs::apply_standard_flags(cli);
  bench::JsonReport json(cli, "fig2");
  if (bench::handle_help(cli)) return 0;
  cli.finish();

  bench::print_header(
      "Figure 2", "sparse X^T*y: fused kernel vs cuSPARSE-style baseline");
  bench::print_note("X: " + std::to_string(rows) + " rows, sparsity " +
                    bench::fmt(sparsity, 3) +
                    " (paper: 500k rows, 0.01). Times are modeled ms on a "
                    "virtual GTX Titan.");

  Table table({"n", "fused (ms)", "baseline (ms)", "speedup",
               "fused loads", "baseline loads", "load ratio",
               "amortize iters"});
  std::vector<double> speedups, load_ratios;

  for (index_t n : cols) {
    vgpu::Device dev;
    const auto X = la::uniform_sparse(rows, n, sparsity, seed);
    const auto y = la::random_vector(static_cast<usize>(rows), seed + 1);

    const auto fused = kernels::fused_spmv_t(dev, X, y);
    const auto split = kernels::spmv_t_explicit_transpose(dev, X, y);
    const auto baseline = split.combined();

    // Sanity: identical results.
    const auto ref = la::reference::spmv_transposed(X, y);
    if (la::max_abs_diff(ref, fused.value) > 1e-6 ||
        la::max_abs_diff(ref, baseline.value) > 1e-6) {
      std::cerr << "RESULT MISMATCH at n=" << n << "\n";
      return 1;
    }

    const double speedup = baseline.modeled_ms / fused.modeled_ms;
    const double fused_loads =
        static_cast<double>(fused.counters.total_load_transactions());
    const double base_loads =
        static_cast<double>(baseline.counters.total_load_transactions());
    speedups.push_back(speedup);
    load_ratios.push_back(base_loads / fused_loads);

    // Amortization: transpose once (T ms), then every iteration costs the
    // plain csrmv on X^T (M ms) instead of the fused kernel (F ms). Pays
    // off after T / (F - M) iterations — or never, if F <= M.
    const double t = split.transpose.modeled_ms;
    const double mv = split.multiply.modeled_ms;
    const double gain = fused.modeled_ms - mv;
    const std::string amortize =
        gain > 1e-9 ? std::to_string(
                          static_cast<long long>(std::ceil(t / gain)))
                    : "never";

    table.row()
        .add(static_cast<long long>(n))
        .add(fused.modeled_ms, 3)
        .add(baseline.modeled_ms, 3)
        .add(format_speedup(speedup))
        .add(format_count(fused_loads))
        .add(format_count(base_loads))
        .add(base_loads / fused_loads, 2)
        .add(amortize);
  }

  std::cout << table;
  std::cout << "geomean speedup: " << format_speedup(geomean(speedups))
            << "   (paper: ~35x average, up to 67x at small n)\n";
  std::cout << "mean load ratio (baseline/fused): "
            << bench::fmt(mean(load_ratios)) << "x   (paper: ~3.5x)\n";
  json.add("geomean_speedup", geomean(speedups));
  json.add("mean_load_ratio", mean(load_ratios));
  json.add_table("fig2", table);
  json.write();
  return 0;
}

int main(int argc, char** argv) {
  return fusedml::bench::guarded_main([&] { return run_bench(argc, argv); });
}
