// Table 6 reproduction — GPU-enabled mini-SystemML vs its CPU version on
// LR-CG, with the full system overheads in the loop: the cost-model
// scheduler, the GPU memory manager (§4.4 tasks a-e), JNI heap-to-native
// copies, and sparse-row -> CSR conversion.
//
// Paper: total speedups of only 1.2x (HIGGS) / 1.9x (KDD) even though the
// fused kernel alone is 11.2x / 4.1x faster — the gap is the memory
// manager + data-transformation overhead, which this bench itemizes.
#include <iostream>

#include "bench_common.h"
#include "common/cli.h"
#include "common/table.h"
#include "la/generate.h"
#include "ml/script_library.h"
#include "sysml/runtime.h"
#include "vgpu/device.h"

using namespace fusedml;

namespace {

template <typename Matrix>
void run_row(Table& table, Table& detail, const std::string& name,
             const Matrix& X, std::span<const real> y, int iterations,
             const std::string& paper_total, const std::string& paper_fused) {
  ml::ScriptConfig cfg;
  cfg.max_iterations = iterations;
  cfg.tolerance = 0;

  vgpu::Device dev_gpu;
  sysml::Runtime gpu_rt(dev_gpu, {.enable_gpu = true});
  const auto gpu =
      ml::run_lr_cg_script(gpu_rt, X, y, sysml::PlanMode::kHardcodedPass, cfg);

  vgpu::Device dev_cpu;
  sysml::Runtime cpu_rt(dev_cpu, {.enable_gpu = false});
  const auto cpu =
      ml::run_lr_cg_script(cpu_rt, X, y, sysml::PlanMode::kHardcodedPass, cfg);

  const double total_speedup = cpu.end_to_end_ms / gpu.end_to_end_ms;
  const double fused_speedup =
      gpu.runtime_stats.pattern_gpu_ms > 0
          ? gpu.runtime_stats.pattern_cpu_equiv_ms /
                gpu.runtime_stats.pattern_gpu_ms
          : 0.0;

  table.row()
      .add(name)
      .add(format_speedup(total_speedup))
      .add(format_speedup(fused_speedup))
      .add(iterations)
      .add(paper_total)
      .add(paper_fused);

  detail.row()
      .add(name)
      .add(gpu.end_to_end_ms, 1)
      .add(gpu.runtime_stats.gpu_kernel_ms, 1)
      .add(gpu.runtime_stats.cpu_op_ms, 1)
      .add(gpu.runtime_stats.jni_ms, 1)
      .add(gpu.runtime_stats.transfer_ms, 1)
      .add(static_cast<long long>(gpu.memory_stats.h2d_transfers))
      .add(static_cast<long long>(gpu.memory_stats.evictions))
      .add(cpu.end_to_end_ms, 1);
}

}  // namespace

static int run_bench(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto scale =
      cli.get_double("scale", 100.0, "dataset shrink factor vs KDD/HIGGS");
  const auto kdd_iters =
      static_cast<int>(cli.get_int("kdd-iterations", 100, "paper: 100"));
  const auto higgs_iters =
      static_cast<int>(cli.get_int("higgs-iterations", 32, "paper: 32"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42, ""));
  obs::apply_standard_flags(cli);
  bench::JsonReport json(cli, "table6");
  if (bench::handle_help(cli)) return 0;
  cli.finish();

  bench::print_header("Table 6",
                      "mini-SystemML: GPU-enabled vs CPU runtime on LR-CG "
                      "(scheduler + memory manager + JNI in the loop)");

  Table table({"Data set", "Total Speedup", "Fused Kernel Speedup", "iters",
               "paper total", "paper fused"});
  Table detail({"Data set", "GPU total (ms)", "kernels", "cpu ops", "JNI",
                "PCIe", "H2D xfers", "evictions", "CPU total (ms)"});

  {
    const auto m = static_cast<index_t>(11000000 / scale);
    const auto X = la::higgs_like(m, 28, seed);
    const auto y = la::regression_labels(X, seed, 0.1);
    run_row(table, detail, "HIGGS-like (1/" + bench::fmt(scale, 0) + ")", X,
            y, higgs_iters, "1.2x", "11.2x");
  }
  {
    const auto m = static_cast<index_t>(15009374 / scale);
    const auto n = static_cast<index_t>(29890095 / scale);
    const auto X = la::kdd_like(m, n, 28.0, 1.5, seed + 1);
    const auto y = la::regression_labels(X, seed + 1, 0.1);
    run_row(table, detail, "KDD-like (1/" + bench::fmt(scale, 0) + ")", X, y,
            kdd_iters, "1.9x", "4.1x");
  }

  std::cout << table;
  std::cout << "\noverhead itemization (GPU-enabled run):\n" << detail;
  bench::print_note(
      "the signature of Table 6 is Fused-Kernel-Speedup >> Total-Speedup: "
      "kernel wins are diluted by JNI conversion, PCIe synchronization, and "
      "the BLAS-1 ops the scheduler keeps on the CPU — the paper's stated "
      "motivation for further memory-manager work.");
  json.add_table("table6", table);
  json.add_table("table6_detail", detail);
  json.write();
  return 0;
}

int main(int argc, char** argv) {
  return fusedml::bench::guarded_main([&] { return run_bench(argc, argv); });
}
