// Fusion-planner evaluation — the generalization of the paper's hardcoded
// Equation-1 rewrite into cost-based planning, measured end to end through
// the mini-SystemML runtime on two DAG scripts:
//
//   lr-cg:   q = (t(V) %*% (V %*% p)) + eps*p       (the Equation-1 shape)
//   logreg:  g = t(X) %*% (sigma(-y⊙(X%*%w))⊙-y) + lambda*w
//            (an elementwise chain the hardcoded pass cannot touch)
//
// Three plan modes per script: unfused interpretation, the hardcoded
// fuse_patterns() pass, and the cost-based planner. Reported per mode:
// kernel launches (the quantity fusion minimizes), modeled time, fusion
// groups chosen, and max |Δweights| vs the unfused run.
//
// Exit status enforces the planner's contract: never more launches or
// modeled time than the hardcoded pass, STRICTLY fewer launches than
// unfused on the elementwise-chain script, and results matching the
// unfused interpreter (bit-exact where only ewise fusion applies).
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "common/cli.h"
#include "common/table.h"
#include "la/generate.h"
#include "ml/script_library.h"
#include "sysml/runtime.h"
#include "vgpu/device.h"

using namespace fusedml;

namespace {

constexpr sysml::PlanMode kModes[] = {sysml::PlanMode::kUnfused,
                                      sysml::PlanMode::kHardcodedPass,
                                      sysml::PlanMode::kPlanner};

double max_abs_diff(std::span<const real> a, std::span<const real> b) {
  double worst = 0;
  for (usize i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(static_cast<double>(a[i] - b[i])));
  }
  return worst;
}

struct ModeRun {
  sysml::ScriptResult result;
};

/// Runs one script under each plan mode on a fresh device+runtime (tiny
/// gpu_cost_bias so the scheduler sends the work to the device even at
/// smoke-test sizes — launch counts are the point here).
template <typename Script>
bool run_script(Table& table, const std::string& name,
                const sysml::PlannerOptions& popts, Script&& script,
                bool expect_ewise_gain) {
  std::vector<ModeRun> runs;
  for (const auto mode : kModes) {
    vgpu::Device dev;
    sysml::Runtime rt(dev, {.enable_gpu = true, .gpu_cost_bias = 1e-4});
    rt.set_planner_options(popts);
    runs.push_back({script(rt, mode)});
  }
  const auto& unfused = runs[0].result;
  const auto& hardcoded = runs[1].result;
  const auto& planner = runs[2].result;

  for (usize i = 0; i < runs.size(); ++i) {
    const auto& r = runs[i].result;
    table.row()
        .add(name)
        .add(to_string(kModes[i]))
        .add(static_cast<long long>(r.runtime_stats.kernel_launches))
        .add(r.runtime_stats.total_ms(), 3)
        .add(static_cast<long long>(r.runtime_stats.gpu_ops))
        .add(static_cast<long long>(r.runtime_stats.cpu_ops))
        .add(r.fused_groups)
        .add(max_abs_diff(unfused.weights, r.weights), 12);
  }
  if (!planner.plan_explain.empty()) {
    std::cout << "\n" << name << " planner plan:\n"
              << planner.plan_explain << "\n";
  }

  bool ok = true;
  const auto fail = [&](const std::string& why) {
    std::cout << "REGRESSION [" << name << "]: " << why << "\n";
    ok = false;
  };
  // Plan-vs-actual audit: the planner predicted a launch count per DAG
  // execution; the interpreter counted what actually ran. Any drift means
  // the planner's model of the DAG diverged from the interpreter.
  if (planner.plan_audit.has_prediction) {
    std::cout << "\n" << name << " plan-vs-actual audit:\n";
    planner.plan_audit.print(std::cout);
    if (planner.plan_audit.launch_drift() != 0) {
      fail("plan-vs-actual launch drift is nonzero (" +
           std::to_string(planner.plan_audit.launch_drift()) + ")");
    }
  } else {
    fail("planner mode produced no plan-vs-actual prediction");
  }
  if (planner.runtime_stats.kernel_launches >
      hardcoded.runtime_stats.kernel_launches) {
    fail("planner issued more launches than the hardcoded pass");
  }
  if (planner.runtime_stats.total_ms() >
      hardcoded.runtime_stats.total_ms() * 1.001) {
    fail("planner modeled time exceeds the hardcoded pass");
  }
  if (expect_ewise_gain) {
    if (planner.runtime_stats.kernel_launches >=
        unfused.runtime_stats.kernel_launches) {
      fail("planner did not strictly reduce launches on the ewise chain");
    }
    if (max_abs_diff(unfused.weights, planner.weights) != 0.0) {
      fail("ewise-only plan is not bit-exact vs the unfused interpreter");
    }
  } else {
    if (max_abs_diff(hardcoded.weights, planner.weights) != 0.0) {
      fail("planner diverged from the hardcoded pass on Equation-1");
    }
    // Unfused-vs-fused differs only by the pattern kernel's reassociation.
    if (max_abs_diff(unfused.weights, planner.weights) > 1e-4) {
      fail("planner result too far from the unfused interpreter");
    }
  }
  return ok;
}

}  // namespace

static int run_bench(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto rows = static_cast<index_t>(cli.get_int("rows", 2000, ""));
  const auto cols = static_cast<index_t>(cli.get_int("cols", 400, ""));
  const auto sparsity = cli.get_double("sparsity", 0.01, "");
  const auto iters =
      static_cast<int>(cli.get_int("iterations", 10, "per script"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42, ""));
  const auto popts = sysml::planner_options_from_cli(cli);
  obs::apply_standard_flags(cli);
  bench::JsonReport json(cli, "fusion_planner");
  if (bench::handle_help(cli)) return 0;
  cli.finish();

  bench::print_header(
      "Fusion planner",
      "cost-based planner vs hardcoded Equation-1 pass vs unfused");

  const auto X = la::uniform_sparse(rows, cols, sparsity, seed);
  const auto y_reg = la::regression_labels(X, seed, 0.1);
  const auto y_cls = la::classification_labels(X, seed + 1, 0.1);

  Table table({"Script", "Plan mode", "launches", "modeled ms", "gpu ops",
               "cpu ops", "groups", "max|dw| vs unfused"});

  bool ok = run_script(
      table, "lr-cg", popts,
      [&](sysml::Runtime& rt, sysml::PlanMode mode) {
        ml::ScriptConfig cfg;
        cfg.max_iterations = iters;
        cfg.tolerance = 0;
        return ml::run_lr_cg_script(rt, X, y_reg, mode, cfg);
      },
      /*expect_ewise_gain=*/false);

  ok &= run_script(
      table, "logreg-gd", popts,
      [&](sysml::Runtime& rt, sysml::PlanMode mode) {
        ml::GdConfig cfg;
        cfg.iterations = iters;
        return ml::run_logreg_gd_script(rt, X, y_cls, mode, cfg);
      },
      /*expect_ewise_gain=*/true);

  // The four new workloads exercise the row-template and sddmm families.
  // None of them contain an Equation-1 site, so the expect_ewise_gain
  // contract applies: strictly fewer launches than unfused AND bit-exact.
  ok &= run_script(
      table, "als", popts,
      [&](sysml::Runtime& rt, sysml::PlanMode mode) {
        ml::AlsConfig cfg;
        cfg.max_outer = std::max(1, iters / 4);
        return ml::run_als_script(rt, X, mode, cfg);
      },
      /*expect_ewise_gain=*/true);

  ok &= run_script(
      table, "kmeans", popts,
      [&](sysml::Runtime& rt, sysml::PlanMode mode) {
        ml::KmeansConfig cfg;
        cfg.max_iterations = std::max(1, iters / 2);
        return ml::run_kmeans_script(rt, X, mode, cfg);
      },
      /*expect_ewise_gain=*/true);

  ok &= run_script(
      table, "pagerank", popts,
      [&](sysml::Runtime& rt, sysml::PlanMode mode) {
        ml::PagerankConfig cfg;
        cfg.max_iterations = iters;
        cfg.tolerance = 0;
        return ml::run_pagerank_script(rt, X, mode, cfg);
      },
      /*expect_ewise_gain=*/true);

  ok &= run_script(
      table, "minibatch-logreg", popts,
      [&](sysml::Runtime& rt, sysml::PlanMode mode) {
        ml::MinibatchConfig cfg;
        cfg.iterations = iters;
        return ml::run_minibatch_logreg_script(rt, X, y_cls, mode, cfg);
      },
      /*expect_ewise_gain=*/true);

  // The sparsity-exploitation gate: on ALS the planner must PICK the sddmm
  // template over the best disjoint-greedy alternative (row + ewise only),
  // and the whole-DAG exploration must beat that restricted plan in modeled
  // time — the candidate families overlap on the Hessian-vector product, so
  // this only holds if overlap resolution works.
  double sddmm_ms = 0.0, disjoint_ms = 0.0;
  bool sddmm_selected = false;
  for (const bool allow_sddmm : {true, false}) {
    vgpu::Device dev;
    sysml::Runtime rt(dev, {.enable_gpu = true, .gpu_cost_bias = 1e-4});
    auto po = popts;
    po.enable_sddmm_fusion = allow_sddmm;
    rt.set_planner_options(po);
    ml::AlsConfig cfg;
    cfg.max_outer = std::max(1, iters / 4);
    const auto r =
        ml::run_als_script(rt, X, sysml::PlanMode::kPlanner, cfg);
    if (allow_sddmm) {
      sddmm_ms = r.runtime_stats.total_ms();
      sddmm_selected = r.plan_explain.find("sddmm") != std::string::npos;
    } else {
      disjoint_ms = r.runtime_stats.total_ms();
    }
  }
  std::cout << "\nals sddmm-template gate: with sddmm " << sddmm_ms
            << " ms, best disjoint plan " << disjoint_ms << " ms\n";
  if (!sddmm_selected) {
    std::cout << "REGRESSION [als]: planner did not select the sddmm "
                 "template\n";
    ok = false;
  }
  if (sddmm_ms >= disjoint_ms) {
    std::cout << "REGRESSION [als]: sddmm plan does not beat the best "
                 "disjoint-greedy plan in modeled ms\n";
    ok = false;
  }

  std::cout << "\n" << table;
  bench::print_note(
      "the hardcoded pass only helps where the Equation-1 template matches "
      "(lr-cg); the planner also collapses the logreg sigmoid chain into one "
      "generated kernel, cutting launches the template pass cannot.");
  json.add("ok", ok ? 1.0 : 0.0);
  json.add_table("fusion_planner", table);
  json.write();
  if (!ok) {
    std::cout << "FAILED: planner regressed vs the contract above\n";
    return 1;
  }
  return 0;
}

int main(int argc, char** argv) {
  return fusedml::bench::guarded_main([&] { return run_bench(argc, argv); });
}
