// Serving-layer behavior under load — throughput and modeled latency
// percentiles for the concurrent request scheduler at three load levels:
//
//   light     capacity to spare: every request admitted and completed
//   overload  burst beyond the bounded queue: admission sheds batch work
//             and rejects the overflow instead of queueing unboundedly
//   storm     fault storm + tight deadlines: the retry budget fails doomed
//             requests fast and the circuit breakers gate the fused tier
//
// All latencies are MODELED milliseconds on the pool's modeled clock (queue
// wait + execution, as reported per request), so the distributions are
// reproducible run-to-run. See docs/SERVING.md.
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/cli.h"
#include "common/stats.h"
#include "common/table.h"
#include "la/generate.h"
#include "serve/serve_flags.h"
#include "serve/server.h"
#include "vgpu/fault_injector.h"

using namespace fusedml;

namespace {

struct LoadResult {
  serve::ServeStats stats;
  serve::ServerStatus status;  ///< per-class SLO snapshot at drain
  std::vector<double> latency;
  double wall_modeled_ms = 0.0;
};

serve::ServeRequest pattern_request(serve::DatasetId dataset,
                                    const la::CsrMatrix& X, std::uint64_t seed,
                                    serve::Priority priority,
                                    double deadline_ms) {
  serve::PatternEval eval;
  eval.dataset = dataset;
  eval.alpha = 1.0;
  eval.beta = 0.5;
  eval.y = la::random_vector(X.cols(), seed);
  eval.v = la::random_vector(X.rows(), seed + 1);
  eval.z = la::random_vector(X.cols(), seed + 2);
  serve::ServeRequest req;
  req.work = std::move(eval);
  req.priority = priority;
  req.deadline_ms = deadline_ms;
  req.tag = seed;
  return req;
}

serve::Priority mixed_priority(int i) {
  return static_cast<serve::Priority>(i % serve::kNumPriorities);
}

}  // namespace

static int run_bench(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto rows =
      static_cast<index_t>(cli.get_int("rows", 4000, "dataset rows"));
  const auto cols =
      static_cast<index_t>(cli.get_int("cols", 200, "dataset columns"));
  const int requests = cli.get_int("requests", 96, "requests per load level");
  const int workers = cli.get_int("workers", 4, "pool worker threads");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42, ""));
  obs::apply_standard_flags(cli);
  const serve::ServingFlags serving_flags = serve::apply_serving_flags(cli);
  bench::JsonReport json(cli, "serving");
  if (bench::handle_help(cli)) return 0;
  cli.finish();

  bench::print_header("Serving",
                      "admission control, deadlines, and breakers under load");
  bench::print_note(
      "latency is modeled ms (queue wait + execution) on the pool clock; "
      "'rejected' = queue-full + over-capacity + shed at admission");
  bench::print_note(
      "outcome counts are deterministic run-to-run; wait-time percentiles "
      "and breaker skips vary with host thread interleaving (this bench "
      "measures a genuinely concurrent pool, unlike the single-threaded "
      "paper benches)");

  const auto X = la::uniform_sparse(rows, cols, 0.02, seed);

  const auto run_level = [&](const std::string& name, serve::ServeOptions opts,
                             bool prestart_burst, double deadline_every_other,
                             const vgpu::FaultConfig* storm) {
    opts.workers = workers;
    serving_flags.apply_to(opts);
    serve::Server server(opts);
    const auto dataset = server.add_dataset(X);
    if (!prestart_burst) server.start();
    if (storm != nullptr) server.inject_faults(*storm);

    std::vector<serve::ServeHandle> handles;
    handles.reserve(static_cast<usize>(requests));
    for (int i = 0; i < requests; ++i) {
      // Tight deadlines on every other request when the level asks for
      // them; the rest may take as long as the pool needs.
      const double deadline =
          (deadline_every_other > 0.0 && i % 2 == 0) ? deadline_every_other
                                                     : 0.0;
      handles.push_back(server.submit(pattern_request(
          dataset, X, seed + static_cast<std::uint64_t>(i) * 7,
          mixed_priority(i), deadline)));
    }
    // A pre-start burst exercises admission deterministically: the bounded
    // queue fills, sheds, and rejects before any worker exists.
    if (prestart_burst) server.start();
    for (const auto& h : handles) h.wait();

    LoadResult r;
    r.stats = server.drain();
    r.status = server.status();
    r.latency = server.latency_samples();
    r.wall_modeled_ms = r.stats.modeled_now_ms;
    std::sort(r.latency.begin(), r.latency.end());
    // Surface whatever --slo-report / --flight-recorder asked for, per
    // load level (the bundle path gets a ".<level>" suffix so the three
    // levels don't clobber one another).
    serve::ServingFlags f = serving_flags;
    if (f.slo_report) std::cout << "--- " << name << " SLO report ---\n";
    if (!f.flight_recorder_path.empty() && f.flight_recorder_path != "-") {
      f.flight_recorder_path += "." + name;
    }
    f.report(server, std::cout);
    return r;
  };

  Table table({"load", "submitted", "completed", "rejected", "deadline",
               "brk opens", "brk skips", "p50 (ms)", "p95 (ms)", "p99 (ms)",
               "req/modeled-s"});
  const auto report = [&](const std::string& name, const LoadResult& r) {
    const std::uint64_t rejected = r.stats.rejected_queue_full +
                                   r.stats.rejected_over_capacity +
                                   r.stats.shed;
    const double throughput =
        r.wall_modeled_ms > 0.0
            ? static_cast<double>(r.stats.completed) / r.wall_modeled_ms * 1e3
            : 0.0;
    table.row()
        .add(name)
        .add(r.stats.submitted)
        .add(r.stats.completed)
        .add(rejected)
        .add(r.stats.deadline_exceeded)
        .add(r.stats.breaker_opens)
        .add(r.stats.breaker_skips)
        .add(percentile(r.latency, 50.0), 4)
        .add(percentile(r.latency, 95.0), 4)
        .add(percentile(r.latency, 99.0), 4)
        .add(throughput, 1);
    json.add(name + "_completed", static_cast<double>(r.stats.completed));
    json.add(name + "_rejected", static_cast<double>(rejected));
    json.add(name + "_deadline_exceeded",
             static_cast<double>(r.stats.deadline_exceeded));
    json.add(name + "_breaker_opens",
             static_cast<double>(r.stats.breaker_opens));
    json.add(name + "_p99_ms", percentile(r.latency, 99.0));
    // Per-priority-class SLO records — what the regression gate consumes.
    for (int c = 0; c < serve::kNumPriorities; ++c) {
      const serve::SloClassSnapshot& s = r.status.classes[c];
      const std::string prefix =
          name + "_" + to_string(static_cast<serve::Priority>(c));
      json.add(prefix + "_completed", static_cast<double>(s.completed));
      json.add(prefix + "_p50_ms", s.p50_ms);
      json.add(prefix + "_p95_ms", s.p95_ms);
      json.add(prefix + "_p99_ms", s.p99_ms);
      json.add(prefix + "_deadline_hit_ratio", s.deadline_hit_ratio());
    }
  };

  // Light: queue sized for the whole batch, clean devices, no deadlines.
  {
    serve::ServeOptions opts;
    opts.queue_capacity = static_cast<usize>(requests);
    report("light", run_level("light", opts, /*prestart_burst=*/false,
                              /*deadline_every_other=*/0.0, nullptr));
  }

  // Overload: the full batch bursts into a queue an eighth its size before
  // any worker runs — admission must shed and reject, never queue unboundedly.
  {
    serve::ServeOptions opts;
    opts.queue_capacity = static_cast<usize>(requests) / 8;
    report("overload", run_level("overload", opts, /*prestart_burst=*/true,
                                 /*deadline_every_other=*/0.0, nullptr));
  }

  // Storm: every fused/cusparse launch faults and half the requests carry a
  // deadline far below the cost of a full retry ladder. The budget clamp
  // fails those fast; the breaker board opens the GPU tiers and skips them.
  {
    serve::ServeOptions opts;
    opts.queue_capacity = static_cast<usize>(requests);
    opts.breaker.failure_threshold = 3;
    opts.breaker.cooldown_ms = 50.0;  // >> storm dispatch time: skips happen
    vgpu::FaultConfig storm;
    storm.seed = seed ^ 0xbad5eedULL;
    storm.kernel_fault_rate = 1.0;
    report("storm", run_level("storm", opts, /*prestart_burst=*/false,
                              /*deadline_every_other=*/0.01, &storm));
  }

  std::cout << table << "\n";
  json.add_table("serving", table);
  json.write();
  return 0;
}

int main(int argc, char** argv) {
  return fusedml::bench::guarded_main([&] { return run_bench(argc, argv); });
}
