// Tests for the cost-based fusion planner (sysml/fusion_planner.h): the
// generalization of the hardcoded Equation-1 rewrite into candidate
// enumeration + vgpu-cost-model scoring, plus the generated elementwise
// chain kernels and the DAG-building script entry points.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "la/generate.h"
#include "la/vector_ops.h"
#include "ml/logreg.h"
#include "sysml/dag.h"
#include "sysml/fusion_planner.h"
#include "ml/script_library.h"
#include "sysml/runtime.h"
#include "test_util.h"
#include "vgpu/device.h"

namespace fusedml {
namespace {

using test::expect_vectors_near;

real double_it(real t) { return t + t; }

struct PlannerFixture : ::testing::Test {
  vgpu::Device dev;
  sysml::Runtime rt{dev, {.enable_gpu = true, .gpu_cost_bias = 1e-4}};
  la::CsrMatrix X = la::uniform_sparse(800, 120, 0.05, 901);
  std::vector<real> y = la::random_vector(120, 1);
  std::vector<real> v = la::random_vector(800, 2);
  std::vector<real> z = la::random_vector(120, 3);
};

TEST_F(PlannerFixture, ChoosesEquation1LikeTheHardcodedPass) {
  const auto Xid = rt.add_sparse(X, "X");
  const auto root = sysml::pattern_expression(
      0.5, sysml::input_matrix(Xid),
      sysml::input_vector(rt.add_vector(v, "v")),
      sysml::input_vector(rt.add_vector(y, "y")), 2.0,
      sysml::input_vector(rt.add_vector(z, "z")));

  const auto plan = sysml::plan_fusion(rt, root);
  ASSERT_EQ(plan.groups.size(), 1u);
  EXPECT_EQ(plan.groups[0].kind, "equation1");
  EXPECT_EQ(plan.root->kind, sysml::OpKind::kFusedPattern);
  EXPECT_LT(plan.launches_planned, plan.launches_unfused);
  EXPECT_LE(plan.modeled_planned_ms, plan.modeled_unfused_ms);

  // Same runtime executes both DAGs: the plan must match the oracle and be
  // identical to what the hardcoded pass produces.
  const auto got_planned = rt.read_vector(sysml::execute(rt, plan.root));
  expect_vectors_near(la::reference::pattern(0.5, X, v, y, 2.0, z),
                      got_planned, 1e-8);
  auto hardcoded = sysml::fuse_patterns(root);
  const auto got_hardcoded = rt.read_vector(sysml::execute(rt, hardcoded));
  EXPECT_EQ(std::vector<real>(got_planned.begin(), got_planned.end()),
            std::vector<real>(got_hardcoded.begin(), got_hardcoded.end()));
}

TEST_F(PlannerFixture, InputDagIsLeftUntouched) {
  const auto root = sysml::pattern_expression(
      1.0, sysml::input_matrix(rt.add_sparse(X, "X")), nullptr,
      sysml::input_vector(rt.add_vector(y, "y")), 0, nullptr);
  const auto kind_before = root->kind;
  const int nodes_before = sysml::count_nodes(root);

  const auto plan = sysml::plan_fusion(rt, root);
  EXPECT_EQ(root->kind, kind_before);
  EXPECT_EQ(sysml::count_nodes(root), nodes_before);
  EXPECT_NE(plan.root.get(), root.get());
}

TEST_F(PlannerFixture, ElementwiseChainCollapsesToOneGeneratedKernel) {
  const usize n = 512;
  const auto a = la::random_vector(n, 10);
  const auto b = la::random_vector(n, 11);
  const auto c = la::random_vector(n, 12);
  const auto an = sysml::input_vector(rt.add_vector(a, "a"));
  const auto bn = sysml::input_vector(rt.add_vector(b, "b"));
  const auto cn = sysml::input_vector(rt.add_vector(c, "c"));
  // 2 * sigma(a + b ⊙ c): four elementwise operators, one kernel.
  const auto root = sysml::scale(
      2.0, sysml::map(sysml::add(an, sysml::ewise_mul(bn, cn)),
                      ml::stable_sigmoid, "sigmoid"));

  const auto plan = sysml::plan_fusion(rt, root);
  ASSERT_EQ(plan.groups.size(), 1u);
  EXPECT_EQ(plan.groups[0].kind, "ewise_chain");
  EXPECT_EQ(plan.groups[0].nodes_covered, 4);
  EXPECT_EQ(plan.root->kind, sysml::OpKind::kFusedEwise);
  EXPECT_EQ(plan.launches_unfused, 4u);
  EXPECT_EQ(plan.launches_planned, 1u);

  // Bit-exact vs the unfused interpreter: same per-element operation order.
  const auto unfused = rt.read_vector(sysml::execute(rt, root));
  const std::vector<real> want(unfused.begin(), unfused.end());
  const auto fused = rt.read_vector(sysml::execute(rt, plan.root));
  EXPECT_EQ(want, std::vector<real>(fused.begin(), fused.end()));
}

TEST_F(PlannerFixture, SharedIntermediateIsNeverAbsorbed) {
  // u = a + b feeds BOTH the map chain and the final add: u must
  // materialize, so it may sink one region but cannot vanish inside it.
  const usize n = 256;
  const auto a = la::random_vector(n, 20);
  const auto b = la::random_vector(n, 21);
  const auto an = sysml::input_vector(rt.add_vector(a, "a"));
  const auto bn = sysml::input_vector(rt.add_vector(b, "b"));
  const auto u = sysml::add(an, bn);
  const auto root =
      sysml::add(sysml::map(u, double_it, "double"), sysml::scale(3.0, u));

  const auto plan = sysml::plan_fusion(rt, root);
  const auto unfused = rt.read_vector(sysml::execute(rt, root));
  const std::vector<real> want(unfused.begin(), unfused.end());
  const auto fused = rt.read_vector(sysml::execute(rt, plan.root));
  EXPECT_EQ(want, std::vector<real>(fused.begin(), fused.end()));
  EXPECT_LE(plan.launches_planned, plan.launches_unfused);
}

TEST_F(PlannerFixture, MultiConsumerPatternRejectedButEwiseStillHelps) {
  // m = X*y consumed by the MvT AND by the epilogue: Equation-1 fusion
  // would recompute m while also reading it — the materialization analysis
  // must reject it. The scale+add epilogue is still a legal ewise fusion.
  const auto Xs = la::uniform_sparse(120, 120, 0.05, 905);
  const auto ys = la::random_vector(120, 4);
  const auto Xn = sysml::input_matrix(rt.add_sparse(Xs, "Xs"));
  const auto yn = sysml::input_vector(rt.add_vector(ys, "ys"));
  const auto m = sysml::mv(Xn, yn);
  const auto root = sysml::add(sysml::mvt(Xn, m), sysml::scale(2.0, m));

  const auto plan = sysml::plan_fusion(rt, root);
  EXPECT_GE(plan.rejected_multi_consumer, 1);
  for (const auto& g : plan.groups) EXPECT_NE(g.kind, "equation1");

  const auto got = rt.read_vector(sysml::execute(rt, plan.root));
  auto want = la::reference::pattern(1.0, Xs, {}, ys, 0, {});
  const auto m_ref = la::reference::spmv(Xs, ys);
  la::axpy(2.0, m_ref, want);
  expect_vectors_near(want, got, 1e-8);
}

TEST_F(PlannerFixture, MoreFusionNeverIncreasesModeledLaunches) {
  // Costing monotonicity over the planner's own knobs: none >= pattern-only
  // >= both, on a DAG offering both candidate families.
  const auto Xid = rt.add_sparse(X, "X");
  const auto wid = rt.add_vector(y, "w");
  const auto nyid = rt.add_vector(v, "ny");
  const auto Xn = sysml::input_matrix(Xid);
  const auto wn = sysml::input_vector(wid);
  const auto nyn = sysml::input_vector(nyid);
  const auto resid = sysml::ewise_mul(
      sysml::map(sysml::ewise_mul(nyn, sysml::mv(Xn, wn)),
                 ml::stable_sigmoid, "sigmoid"),
      nyn);
  const auto root =
      sysml::add(sysml::mvt(Xn, resid), sysml::scale(0.01, wn));

  const auto none = sysml::plan_fusion(
      rt, root,
      {.enable_pattern_fusion = false, .enable_ewise_fusion = false,
       .enable_row_fusion = false, .enable_sddmm_fusion = false});
  const auto pattern_only = sysml::plan_fusion(
      rt, root,
      {.enable_pattern_fusion = true, .enable_ewise_fusion = false,
       .enable_row_fusion = false, .enable_sddmm_fusion = false});
  const auto both = sysml::plan_fusion(
      rt, root, {.enable_pattern_fusion = true, .enable_ewise_fusion = true});

  EXPECT_EQ(none.launches_planned, none.launches_unfused);
  EXPECT_LE(pattern_only.launches_planned, none.launches_planned);
  EXPECT_LE(both.launches_planned, pattern_only.launches_planned);
  EXPECT_LT(both.launches_planned, none.launches_planned);
  EXPECT_LE(both.modeled_planned_ms, pattern_only.modeled_planned_ms);
  EXPECT_LE(pattern_only.modeled_planned_ms, none.modeled_planned_ms);
}

TEST_F(PlannerFixture, ExplainDescribesGroupsAndTotals) {
  const auto root = sysml::pattern_expression(
      1.0, sysml::input_matrix(rt.add_sparse(X, "X")), nullptr,
      sysml::input_vector(rt.add_vector(y, "y")), 0.5,
      sysml::input_vector(rt.add_vector(z, "z")));
  const auto plan = sysml::plan_fusion(rt, root);
  const auto text = plan.explain();
  EXPECT_NE(text.find("fusion plan: 1 group(s)"), std::string::npos) << text;
  EXPECT_NE(text.find("equation1"), std::string::npos);
  EXPECT_NE(text.find("totals: launches"), std::string::npos);

  rt.note_plan(text);
  sysml::execute(rt, plan.root);
  const auto full = rt.explain();
  EXPECT_NE(full.find("fusion plan"), std::string::npos) << full;
  EXPECT_NE(full.find("execution:"), std::string::npos) << full;
  EXPECT_NE(full.find("pattern"), std::string::npos);
}

// --- DAG-building scripts through every plan mode ---------------------------

TEST(PlannerScripts, LrCgPlannerMatchesHardcodedBitExact) {
  const auto X = la::uniform_sparse(2000, 300, 0.02, 41);
  const auto labels = la::regression_labels(X, 41, 0.1);
  ml::ScriptConfig cfg;
  cfg.max_iterations = 8;
  cfg.tolerance = 0;

  std::vector<sysml::ScriptResult> runs;
  for (const auto mode :
       {sysml::PlanMode::kUnfused, sysml::PlanMode::kHardcodedPass,
        sysml::PlanMode::kPlanner}) {
    vgpu::Device dev;
    sysml::Runtime rt(dev, {.enable_gpu = true, .gpu_cost_bias = 1e-4});
    runs.push_back(ml::run_lr_cg_script(rt, X, labels, mode, cfg));
  }
  const auto& unfused = runs[0];
  const auto& hardcoded = runs[1];
  const auto& planner = runs[2];

  EXPECT_EQ(hardcoded.fused_groups, 1);
  EXPECT_EQ(planner.fused_groups, 1);
  EXPECT_EQ(planner.weights, hardcoded.weights);  // identical plan chosen
  expect_vectors_near(unfused.weights, planner.weights, 1e-6);
  EXPECT_LT(planner.runtime_stats.kernel_launches,
            unfused.runtime_stats.kernel_launches);
  EXPECT_LE(planner.runtime_stats.kernel_launches,
            hardcoded.runtime_stats.kernel_launches);
  EXPECT_LE(planner.runtime_stats.total_ms(),
            hardcoded.runtime_stats.total_ms() * 1.0001);
}

TEST(PlannerScripts, LogregPlannerBeatsHardcodedPassBitExactly) {
  const auto X = la::uniform_sparse(2000, 300, 0.02, 43);
  const auto labels = la::classification_labels(X, 43, 0.1);
  ml::GdConfig cfg;
  cfg.iterations = 8;

  std::vector<sysml::ScriptResult> runs;
  for (const auto mode :
       {sysml::PlanMode::kUnfused, sysml::PlanMode::kHardcodedPass,
        sysml::PlanMode::kPlanner}) {
    vgpu::Device dev;
    sysml::Runtime rt(dev, {.enable_gpu = true, .gpu_cost_bias = 1e-4});
    runs.push_back(ml::run_logreg_gd_script(rt, X, labels, mode, cfg));
  }
  const auto& unfused = runs[0];
  const auto& hardcoded = runs[1];
  const auto& planner = runs[2];

  // No Equation-1 shape here: the template pass finds nothing...
  EXPECT_EQ(hardcoded.fused_groups, 0);
  EXPECT_EQ(hardcoded.runtime_stats.kernel_launches,
            unfused.runtime_stats.kernel_launches);
  // ...but the planner collapses the sigmoid chain and the +lambda*w
  // epilogue, strictly reducing launches, with bit-exact results.
  EXPECT_EQ(planner.fused_groups, 2);
  EXPECT_LT(planner.runtime_stats.kernel_launches,
            hardcoded.runtime_stats.kernel_launches);
  EXPECT_EQ(planner.weights, unfused.weights);
  EXPECT_FALSE(planner.plan_explain.empty());
  EXPECT_NE(planner.plan_explain.find("ewise_chain"), std::string::npos);
}

}  // namespace
}  // namespace fusedml
