// Cross-module integration tests: the paper's headline claims asserted
// end-to-end (fused wins, correct ordering of baselines, Table-2 style
// dominance, end-to-end consistency between the direct solvers and the
// mini-SystemML runtime).
#include <gtest/gtest.h>

#include "kernels/baselines.h"
#include "kernels/cpu_backend.h"
#include "kernels/fused_sparse.h"
#include "kernels/spmv_transpose.h"
#include "la/generate.h"
#include "la/vector_ops.h"
#include "ml/lr_cg.h"
#include "ml/logreg.h"
#include "patterns/executor.h"
#include "ml/script_library.h"
#include "sysml/runtime.h"
#include "test_util.h"

namespace fusedml {
namespace {

using test::expect_vectors_near;

// The figure-regime matrix used throughout (scaled paper shape).
struct FigureFixture : ::testing::Test {
  vgpu::Device dev;
  la::CsrMatrix X = la::uniform_sparse(50000, 1000, 0.01, 801);
  std::vector<real> y = la::random_vector(1000, 1);
};

TEST_F(FigureFixture, HeadlineOrderingFusedBidmatCusparse) {
  const auto fused =
      kernels::fused_pattern_sparse(dev, 1, X, {}, y, 0, {});
  const auto bidmat = kernels::baseline_xtxy_sparse(
      dev, X, y, kernels::SparseTransposeStrategy::kAtomicScatter);
  const auto cusparse = kernels::baseline_xtxy_sparse(
      dev, X, y, kernels::SparseTransposeStrategy::kExplicitTranspose);
  const kernels::CpuBackend cpu;
  const auto host = cpu.pattern(1, X, {}, y, 0, {});

  // Figure 3's ordering: fused < BIDMat-GPU < cuSPARSE, and the CPU in
  // between the GPU baselines' ballpark.
  EXPECT_LT(fused.modeled_ms, bidmat.modeled_ms);
  EXPECT_LT(bidmat.modeled_ms, cusparse.modeled_ms);
  EXPECT_GT(host.modeled_ms, fused.modeled_ms);

  // The factors land in the paper's band (single digits to tens).
  const double s_cusparse = cusparse.modeled_ms / fused.modeled_ms;
  EXPECT_GT(s_cusparse, 5.0);
  EXPECT_LT(s_cusparse, 120.0);
}

TEST_F(FigureFixture, FusedIsOneKernelBaselineIsMany) {
  const auto v = la::random_vector(50000, 2);
  const auto z = la::random_vector(1000, 3);
  const auto fused =
      kernels::fused_pattern_sparse(dev, 0.5, X, v, y, 2.0, z);
  const auto baseline = kernels::baseline_pattern_sparse(
      dev, 0.5, X, v, y, 2.0, z,
      kernels::SparseTransposeStrategy::kExplicitTranspose);
  EXPECT_EQ(fused.launches, 1u);
  EXPECT_GE(baseline.launches, 6u);
  expect_vectors_near(fused.value, baseline.value, 1e-7);
}

TEST_F(FigureFixture, LoadTransactionRatioInFig2Band) {
  const auto p = la::random_vector(50000, 4);
  const auto fused = kernels::fused_spmv_t(dev, X, p);
  const auto baseline =
      kernels::spmv_t_explicit_transpose(dev, X, p).combined();
  const double ratio =
      static_cast<double>(baseline.counters.total_load_transactions()) /
      static_cast<double>(fused.counters.total_load_transactions());
  // Paper: cuSPARSE performs ~3.5x more loads on average.
  EXPECT_GT(ratio, 2.0);
  EXPECT_LT(ratio, 8.0);
}

TEST(Integration, Table2PatternDominatesOnBothDataShapes) {
  vgpu::Device dev;
  for (bool dense : {false, true}) {
    patterns::PatternExecutor exec(dev, patterns::Backend::kCpu, 1);
    ml::LrCgConfig cfg;
    cfg.max_iterations = 5;
    cfg.tolerance = 0;
    ml::LrCgResult r;
    if (dense) {
      const auto X = la::higgs_like(30000, 28, 802);
      r = ml::lr_cg(exec, X, la::regression_labels(X, 802, 0.1), cfg);
    } else {
      const auto X = la::kdd_like(20000, 40000, 28.0, 1.5, 803);
      r = ml::lr_cg(exec, X, la::regression_labels(X, 803, 0.1), cfg);
    }
    EXPECT_GT(r.stats.pattern_wall_percent(), 50.0)
        << (dense ? "HIGGS-like" : "KDD-like");
  }
}

TEST(Integration, DirectSolverAndSysmlScriptAgreeEverywhere) {
  vgpu::Device dev;
  const auto X = la::uniform_sparse(3000, 120, 0.05, 804);
  const auto y = la::regression_labels(X, 804, 0.05);

  patterns::PatternExecutor fused(dev, patterns::Backend::kFused);
  ml::LrCgConfig cfg;
  cfg.max_iterations = 40;
  const auto direct = ml::lr_cg(fused, X, y, cfg);

  for (bool gpu : {true, false}) {
    sysml::Runtime rt(dev, {.enable_gpu = gpu});
    ml::ScriptConfig scfg;
    scfg.max_iterations = 40;
    const auto script =
        ml::run_lr_cg_script(rt, X, y, sysml::PlanMode::kHardcodedPass, scfg);
    expect_vectors_near(direct.weights, script.weights, 1e-6);
  }
}

TEST(Integration, EndToEndSpeedupSurvivesTransferCosts) {
  // Table 5's claim: including PCIe transfer, the fused pipeline still
  // wins end to end because the transfer amortizes over iterations.
  vgpu::Device dev;
  const auto X = la::uniform_sparse(40000, 500, 0.02, 805);
  const auto y = la::regression_labels(X, 805, 0.1);
  ml::LrCgConfig cfg;
  cfg.max_iterations = 30;
  cfg.tolerance = 0;

  const double transfer =
      dev.cost_model().transfer_ms(X.bytes() + y.size() * sizeof(real));
  patterns::PatternExecutor fused(dev, patterns::Backend::kFused);
  patterns::PatternExecutor base(dev, patterns::Backend::kCusparse);
  const auto rf = ml::lr_cg(fused, X, y, cfg);
  const auto rb = ml::lr_cg(base, X, y, cfg);
  const double ours = transfer + rf.stats.total_modeled_ms();
  const double cu = transfer + rb.stats.total_modeled_ms();
  EXPECT_GT(cu / ours, 2.0);
  expect_vectors_near(rf.weights, rb.weights, 1e-7);
}

TEST(Integration, LogRegFusedMatchesCpuBackendTraining) {
  vgpu::Device dev;
  const auto X = la::uniform_sparse(1500, 60, 0.1, 806);
  const auto y = la::classification_labels(X, 806, 0.1);
  ml::LogRegConfig cfg;
  cfg.max_newton_iterations = 8;
  patterns::PatternExecutor a(dev, patterns::Backend::kFused);
  patterns::PatternExecutor b(dev, patterns::Backend::kCpu);
  const auto ra = ml::logreg_trust_region(a, X, y, cfg);
  const auto rb = ml::logreg_trust_region(b, X, y, cfg);
  expect_vectors_near(ra.weights, rb.weights, 1e-6);
}

}  // namespace
}  // namespace fusedml
