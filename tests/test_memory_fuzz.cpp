// Randomized stress test of the GPU memory manager: thousands of random
// operations must never violate the §4.4 invariants — capacity respected,
// residency/dirty state consistent, every dirty eviction written back,
// transfer accounting monotone.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.h"
#include "sysml/memory_manager.h"
#include "vgpu/device.h"

namespace fusedml::sysml {
namespace {

std::string tensor_name(long long id) {
  std::string name = "t";
  name += std::to_string(id);
  return name;
}

class MemoryFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MemoryFuzz, InvariantsHoldUnderRandomOperations) {
  Rng rng(GetParam());
  vgpu::Device dev;
  const usize capacity = 24 * 1024;
  MemoryManager mm(dev, capacity);

  // Shadow model: what we believe the manager's state is.
  struct Shadow {
    usize bytes;
    bool registered = true;
  };
  std::map<TensorId, Shadow> shadow;
  TensorId next_id = 1;

  // Seed tensors.
  for (int i = 0; i < 8; ++i) {
    const usize bytes = 1024 + rng.uniform_index(12 * 1024);
    mm.register_tensor(next_id, bytes, tensor_name(next_id));
    shadow[next_id] = {bytes};
    ++next_id;
  }

  std::uint64_t last_h2d = 0, last_d2h = 0;
  for (int step = 0; step < 3000; ++step) {
    // Pick a live tensor.
    auto it = shadow.begin();
    std::advance(it, static_cast<long>(rng.uniform_index(shadow.size())));
    const TensorId id = it->first;

    switch (rng.uniform_index(8)) {
      case 0:
      case 1:
        mm.ensure_on_device(id);
        EXPECT_TRUE(mm.on_device(id));
        EXPECT_NE(mm.residency(id), Residency::kHostOnly);
        break;
      case 2:
        mm.ensure_on_host(id);
        EXPECT_NE(mm.residency(id), Residency::kDeviceDirty);
        break;
      case 3:
        if (mm.on_device(id)) {
          mm.mark_device_dirty(id);
          EXPECT_EQ(mm.residency(id), Residency::kDeviceDirty);
        }
        break;
      case 4:
        mm.mark_host_dirty(id);
        EXPECT_TRUE(mm.residency(id) == Residency::kHostDirty ||
                    mm.residency(id) == Residency::kHostOnly);
        break;
      case 5:
        mm.release(id);
        EXPECT_FALSE(mm.on_device(id));
        break;
      case 6:
        mm.allocate_on_device(id);
        EXPECT_EQ(mm.residency(id), Residency::kDeviceDirty);
        break;
      case 7:
        // Churn: replace a tensor with a fresh one.
        if (shadow.size() > 2) {
          mm.unregister(id);
          shadow.erase(id);
        }
        {
          const usize bytes = 1024 + rng.uniform_index(12 * 1024);
          mm.register_tensor(next_id, bytes,
                             tensor_name(next_id));
          shadow[next_id] = {bytes};
          ++next_id;
        }
        break;
    }

    // Global invariants after every operation.
    ASSERT_LE(mm.device_bytes_in_use(), mm.capacity()) << "step " << step;
    ASSERT_LE(mm.stats().peak_device_bytes, mm.capacity());
    // Transfer accounting only ever grows.
    ASSERT_GE(mm.stats().h2d_transfers, last_h2d);
    ASSERT_GE(mm.stats().d2h_transfers, last_d2h);
    last_h2d = mm.stats().h2d_transfers;
    last_d2h = mm.stats().d2h_transfers;
    // Sum of resident shadow tensors can never exceed capacity either.
    usize resident = 0;
    for (const auto& [tid, s] : shadow) {
      if (mm.on_device(tid)) resident += s.bytes;
    }
    ASSERT_EQ(resident, mm.device_bytes_in_use()) << "step " << step;
  }
  // The run must have exercised the interesting machinery.
  EXPECT_GT(mm.stats().h2d_transfers, 100u);
  EXPECT_GT(mm.stats().evictions, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MemoryFuzz,
                         ::testing::Values(101u, 202u, 303u, 404u));

TEST(MemoryFuzzDeterminism, SameSeedSameStats) {
  for (int run = 0; run < 2; ++run) {
    // The fuzz body above is deterministic per seed; spot-check by
    // replaying a small interaction trace twice.
    vgpu::Device dev;
    MemoryManager mm(dev, 8192);
    mm.register_tensor(1, 3000, "a");
    mm.register_tensor(2, 3000, "b");
    mm.register_tensor(3, 3000, "c");
    mm.ensure_on_device(1);
    mm.mark_device_dirty(1);
    mm.ensure_on_device(2);
    mm.ensure_on_device(3);  // evicts 1 (dirty -> write-back)
    static std::uint64_t first_h2d, first_d2h;
    if (run == 0) {
      first_h2d = mm.stats().h2d_transfers;
      first_d2h = mm.stats().d2h_transfers;
    } else {
      EXPECT_EQ(mm.stats().h2d_transfers, first_h2d);
      EXPECT_EQ(mm.stats().d2h_transfers, first_d2h);
    }
  }
}

}  // namespace
}  // namespace fusedml::sysml
