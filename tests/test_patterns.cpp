// Tests for the PatternExecutor facade: every backend produces identical
// values, pattern classification and usage recording work, and the fused
// backend wins on modeled time (the paper's core claim).
#include <gtest/gtest.h>

#include "common/error.h"
#include "la/generate.h"
#include "la/vector_ops.h"
#include "patterns/executor.h"
#include "patterns/pattern.h"
#include "test_util.h"

namespace fusedml::patterns {
namespace {

using la::random_vector;
using la::uniform_sparse;
using test::expect_vectors_near;

TEST(Pattern, Classification) {
  EXPECT_EQ(classify(true, false, false), PatternKind::kXty);
  EXPECT_EQ(classify(false, false, false), PatternKind::kXtXy);
  EXPECT_EQ(classify(false, true, false), PatternKind::kXtVXy);
  EXPECT_EQ(classify(false, false, true), PatternKind::kXtXyBz);
  EXPECT_EQ(classify(false, true, true), PatternKind::kFull);
}

TEST(Pattern, Table1MatchesPaper) {
  const auto rows = table1();
  ASSERT_EQ(rows.size(), 5u);
  // Spot-check the paper's marks: every algorithm uses a*X^T*y.
  EXPECT_TRUE(rows[0].lr && rows[0].glm && rows[0].logreg && rows[0].svm &&
              rows[0].hits);
  // The full pattern is LogReg-only.
  EXPECT_TRUE(rows[4].logreg);
  EXPECT_FALSE(rows[4].lr || rows[4].glm || rows[4].svm || rows[4].hits);
}

TEST(Pattern, ToStringDistinct) {
  EXPECT_NE(to_string(PatternKind::kXty), to_string(PatternKind::kFull));
  EXPECT_FALSE(to_string(Backend::kFused).empty());
}

class ExecutorBackends : public ::testing::TestWithParam<Backend> {
 protected:
  vgpu::Device dev;
};

TEST_P(ExecutorBackends, SparsePatternMatchesReference) {
  PatternExecutor exec(dev, GetParam());
  const auto X = uniform_sparse(400, 150, 0.05, 71);
  const auto y = random_vector(150, 1);
  const auto v = random_vector(400, 2);
  const auto z = random_vector(150, 3);
  const auto got = exec.pattern(1.5, X, v, y, -0.5, z);
  expect_vectors_near(la::reference::pattern(1.5, X, v, y, -0.5, z),
                      got.value);
  EXPECT_EQ(got.kind, PatternKind::kFull);
  EXPECT_FALSE(got.kernel.empty());
}

TEST_P(ExecutorBackends, SparseTransposedProductMatches) {
  PatternExecutor exec(dev, GetParam());
  const auto X = uniform_sparse(300, 100, 0.05, 72);
  const auto y = random_vector(300, 4);
  auto expect = la::reference::spmv_transposed(X, y);
  la::scal(-2.0, expect);
  expect_vectors_near(expect, exec.transposed_product(X, y, -2.0).value);
}

TEST_P(ExecutorBackends, DensePatternMatches) {
  PatternExecutor exec(dev, GetParam());
  const auto X = la::dense_random(200, 96, 73);
  const auto y = random_vector(96, 5);
  expect_vectors_near(la::reference::pattern(1, X, {}, y, 0, {}),
                      exec.xt_xy(X, y).value);
}

TEST_P(ExecutorBackends, ProductAndBlas1Match) {
  PatternExecutor exec(dev, GetParam());
  const auto X = uniform_sparse(120, 80, 0.1, 74);
  const auto y = random_vector(80, 6);
  expect_vectors_near(la::reference::spmv(X, y), exec.product(X, y).value);

  auto a = random_vector(500, 7);
  auto b = random_vector(500, 8);
  EXPECT_NEAR(exec.dot(a, b).value[0], la::dot(a, b), 1e-9);
  EXPECT_NEAR(exec.nrm2(a).value[0], la::nrm2(a), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, ExecutorBackends,
                         ::testing::Values(Backend::kFused,
                                           Backend::kCusparse,
                                           Backend::kBidmatGpu,
                                           Backend::kCpu),
                         [](const ::testing::TestParamInfo<Backend>& pinfo) {
                           switch (pinfo.param) {
                             case Backend::kFused: return "Fused";
                             case Backend::kCusparse: return "Cusparse";
                             case Backend::kBidmatGpu: return "BidmatGpu";
                             case Backend::kCpu: return "Cpu";
                           }
                           return "Unknown";
                         });

TEST(Executor, UsageHistogramRecordsKinds) {
  vgpu::Device dev;
  PatternExecutor exec(dev, Backend::kFused);
  const auto X = uniform_sparse(100, 50, 0.1, 75);
  const auto y = random_vector(50, 9);
  const auto ym = random_vector(100, 10);
  const auto v = random_vector(100, 11);
  exec.xt_xy(X, y);
  exec.xt_xy(X, y);
  exec.pattern(1, X, v, y, 0, {});
  exec.transposed_product(X, ym);
  const auto& usage = exec.usage();
  EXPECT_EQ(usage.at(PatternKind::kXtXy), 2u);
  EXPECT_EQ(usage.at(PatternKind::kXtVXy), 1u);
  EXPECT_EQ(usage.at(PatternKind::kXty), 1u);
  exec.reset_usage();
  EXPECT_TRUE(exec.usage().empty());
}

TEST(Executor, FusedBeatsBaselinesOnModeledTime) {
  vgpu::Device dev;
  const auto X = uniform_sparse(20000, 1000, 0.01, 76);
  const auto y = random_vector(1000, 12);
  PatternExecutor fused(dev, Backend::kFused);
  PatternExecutor cusparse(dev, Backend::kCusparse);
  PatternExecutor bidmat(dev, Backend::kBidmatGpu);
  const double t_fused = fused.xt_xy(X, y).modeled_ms;
  const double t_cusparse = cusparse.xt_xy(X, y).modeled_ms;
  const double t_bidmat = bidmat.xt_xy(X, y).modeled_ms;
  // The paper's ordering: fused < BIDMat-GPU < cuSPARSE (Fig. 3).
  EXPECT_LT(t_fused, t_bidmat);
  EXPECT_LT(t_bidmat, t_cusparse);
}

TEST(Executor, WideDenseFallsBackToTwoKernels) {
  vgpu::Device dev;
  PatternExecutor exec(dev, Backend::kFused);
  // n = 6000 exceeds 128 lanes x TL=40 = 5120: the §3.2 register limit.
  const auto X = la::dense_random(50, 6000, 78);
  const auto y = random_vector(6000, 14);
  const auto r = exec.xt_xy(X, y);
  EXPECT_NE(r.kernel.find("infeasible"), std::string::npos);
  EXPECT_GE(r.launches, 2u) << "falls back to two Level-2 kernels";
  expect_vectors_near(la::reference::pattern(1, X, {}, y, 0, {}), r.value);
  // Feasibility boundary itself.
  EXPECT_TRUE(kernels::dense_fused_feasible(dev.spec(), 5120));
  EXPECT_FALSE(kernels::dense_fused_feasible(dev.spec(), 5121));
}

TEST(Executor, SingleThreadCpuSlowerThanEightInModel) {
  vgpu::Device dev;
  PatternExecutor cpu8(dev, Backend::kCpu, 8);
  PatternExecutor cpu1(dev, Backend::kCpu, 1);
  const auto X = uniform_sparse(5000, 200, 0.05, 77);
  const auto y = random_vector(200, 13);
  // Bandwidth-bound sparse ops share memory bandwidth, but the flop-bound
  // component scales; at minimum 1-thread must not be faster.
  EXPECT_GE(cpu1.xt_xy(X, y).modeled_ms, cpu8.xt_xy(X, y).modeled_ms);
}

}  // namespace
}  // namespace fusedml::patterns
