// The serving layer's deterministic unit tests: admission-queue semantics,
// the breaker state machine (on a hand-cranked clock), exactly-once
// resolution, deadline outcomes, and graceful drain. The adversarial
// multi-threaded soak lives in test_chaos.cpp.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <utility>
#include <vector>

#include "la/generate.h"
#include "patterns/executor.h"
#include "serve/admission_queue.h"
#include "serve/circuit_breaker.h"
#include "serve/flight_recorder.h"
#include "serve/request_trace.h"
#include "serve/server.h"
#include "serve/slo.h"
#include "ml/script_library.h"

namespace fusedml::serve {
namespace {

using kernels::Backend;

PendingPtr make_pending(Priority priority) {
  auto p = std::make_shared<PendingRequest>();
  p->request.priority = priority;
  p->state = std::make_shared<RequestState>();
  return p;
}

// --- AdmissionQueue ---------------------------------------------------------

TEST(AdmissionQueue, AdmitsUpToCapacityThenRejectsEqualPriority) {
  AdmissionQueue q(2);
  PendingPtr victim;
  EXPECT_EQ(q.push(make_pending(Priority::kNormal), &victim),
            AdmissionQueue::Admit::kAdmitted);
  EXPECT_EQ(q.push(make_pending(Priority::kNormal), &victim),
            AdmissionQueue::Admit::kAdmitted);
  EXPECT_EQ(q.push(make_pending(Priority::kNormal), &victim),
            AdmissionQueue::Admit::kRejectedFull);
  EXPECT_EQ(q.depth(), 2u);
  EXPECT_EQ(q.high_water(), 2u);
}

TEST(AdmissionQueue, HigherPriorityShedsNewestOfLowestBand) {
  AdmissionQueue q(2);
  PendingPtr victim;
  auto batch_old = make_pending(Priority::kBatch);
  auto batch_new = make_pending(Priority::kBatch);
  ASSERT_EQ(q.push(batch_old, &victim), AdmissionQueue::Admit::kAdmitted);
  ASSERT_EQ(q.push(batch_new, &victim), AdmissionQueue::Admit::kAdmitted);
  EXPECT_EQ(q.push(make_pending(Priority::kInteractive), &victim),
            AdmissionQueue::Admit::kAdmittedAfterShed);
  ASSERT_NE(victim, nullptr);
  EXPECT_EQ(victim.get(), batch_new.get());  // newest of the lowest band
  EXPECT_EQ(q.depth(), 2u);                  // bounded: shed, not grown
  // A batch submit cannot shed another batch entry.
  EXPECT_EQ(q.push(make_pending(Priority::kBatch), &victim),
            AdmissionQueue::Admit::kRejectedFull);
}

TEST(AdmissionQueue, PopsHighestPriorityFirstFifoWithinBand) {
  AdmissionQueue q(8);
  PendingPtr victim;
  auto b1 = make_pending(Priority::kBatch);
  auto n1 = make_pending(Priority::kNormal);
  auto n2 = make_pending(Priority::kNormal);
  auto i1 = make_pending(Priority::kInteractive);
  q.push(b1, &victim);
  q.push(n1, &victim);
  q.push(n2, &victim);
  q.push(i1, &victim);
  EXPECT_EQ(q.pop_blocking().get(), i1.get());
  EXPECT_EQ(q.pop_blocking().get(), n1.get());
  EXPECT_EQ(q.pop_blocking().get(), n2.get());
  EXPECT_EQ(q.pop_blocking().get(), b1.get());
}

TEST(AdmissionQueue, CloseStopsAdmissionButDrainsQueuedEntries) {
  AdmissionQueue q(4);
  PendingPtr victim;
  auto p = make_pending(Priority::kNormal);
  q.push(p, &victim);
  q.close();
  EXPECT_EQ(q.push(make_pending(Priority::kInteractive), &victim),
            AdmissionQueue::Admit::kClosed);
  EXPECT_EQ(q.pop_blocking().get(), p.get());
  EXPECT_EQ(q.pop_blocking(), nullptr);  // closed and empty
}

// --- RequestState / ServeHandle --------------------------------------------

TEST(RequestState, ResolveIsExactlyOnce) {
  auto state = std::make_shared<RequestState>();
  ServeOutcome first;
  first.kind = OutcomeKind::kCompleted;
  EXPECT_TRUE(state->resolve(first));
  ServeOutcome second;
  second.kind = OutcomeKind::kFailed;
  EXPECT_FALSE(state->resolve(second));
  EXPECT_EQ(state->wait().kind, OutcomeKind::kCompleted);
  EXPECT_EQ(state->resolutions(), 1);
}

TEST(RequestState, CancelResolvesImmediatelyAndLosesToACompletedResult) {
  auto won = std::make_shared<RequestState>();
  ServeHandle cancelled(won);
  cancelled.cancel();
  EXPECT_EQ(cancelled.wait().kind, OutcomeKind::kCancelled);
  EXPECT_TRUE(won->cancel_requested());

  auto raced = std::make_shared<RequestState>();
  ServeOutcome done;
  done.kind = OutcomeKind::kCompleted;
  raced->resolve(done);
  ServeHandle late(raced);
  late.cancel();  // loses: outcome already delivered
  EXPECT_EQ(late.wait().kind, OutcomeKind::kCompleted);
  EXPECT_EQ(raced->resolutions(), 1);
}

// --- BreakerBoard on a hand-cranked clock ----------------------------------

TEST(BreakerBoard, OpensAfterThresholdAndSkipsWhileOpen) {
  double clock = 0.0;
  BreakerConfig cfg;
  cfg.failure_threshold = 3;
  cfg.cooldown_ms = 10.0;
  BreakerBoard board(cfg, [&] { return clock; });

  EXPECT_TRUE(board.allow(Backend::kFused));
  board.on_failure(Backend::kFused);
  board.on_failure(Backend::kFused);
  EXPECT_EQ(board.state(Backend::kFused), BreakerState::kClosed);
  board.on_failure(Backend::kFused);
  EXPECT_EQ(board.state(Backend::kFused), BreakerState::kOpen);
  EXPECT_FALSE(board.allow(Backend::kFused));
  EXPECT_FALSE(board.allow(Backend::kFused));
  EXPECT_EQ(board.stats(Backend::kFused).skips, 2u);
  // The CPU tier is terminal and must never be gated.
  EXPECT_TRUE(board.allow(Backend::kCpu));
  // Other tiers are independent.
  EXPECT_TRUE(board.allow(Backend::kCusparse));
}

TEST(BreakerBoard, HalfOpenProbeClosesOnSuccess) {
  double clock = 0.0;
  BreakerConfig cfg;
  cfg.failure_threshold = 1;
  cfg.cooldown_ms = 10.0;
  BreakerBoard board(cfg, [&] { return clock; });
  board.on_failure(Backend::kFused);
  ASSERT_EQ(board.state(Backend::kFused), BreakerState::kOpen);

  clock = 5.0;
  EXPECT_FALSE(board.allow(Backend::kFused));  // still cooling down
  clock = 10.0;
  EXPECT_TRUE(board.allow(Backend::kFused));   // the half-open probe
  EXPECT_EQ(board.state(Backend::kFused), BreakerState::kHalfOpen);
  EXPECT_FALSE(board.allow(Backend::kFused));  // only one probe at a time
  board.on_success(Backend::kFused);
  EXPECT_EQ(board.state(Backend::kFused), BreakerState::kClosed);
  EXPECT_TRUE(board.allow(Backend::kFused));
  EXPECT_EQ(board.stats(Backend::kFused).closes, 1u);
}

TEST(BreakerBoard, FailedProbeReopensAndReArmsCooldown) {
  double clock = 0.0;
  BreakerConfig cfg;
  cfg.failure_threshold = 1;
  cfg.cooldown_ms = 10.0;
  BreakerBoard board(cfg, [&] { return clock; });
  board.on_failure(Backend::kFused);
  clock = 10.0;
  ASSERT_TRUE(board.allow(Backend::kFused));
  board.on_failure(Backend::kFused);  // probe failed
  EXPECT_EQ(board.state(Backend::kFused), BreakerState::kOpen);
  EXPECT_EQ(board.stats(Backend::kFused).reopens, 1u);
  clock = 15.0;
  EXPECT_FALSE(board.allow(Backend::kFused));  // cooldown restarted at t=10
  clock = 20.0;
  EXPECT_TRUE(board.allow(Backend::kFused));
  EXPECT_EQ(board.total_opens(), 2u);  // initial open + reopen
}

TEST(BreakerBoard, DisabledBoardAlwaysAllows) {
  BreakerConfig cfg;
  cfg.enabled = false;
  cfg.failure_threshold = 1;
  BreakerBoard board(cfg, [] { return 0.0; });
  board.on_failure(Backend::kFused);
  board.on_failure(Backend::kFused);
  EXPECT_TRUE(board.allow(Backend::kFused));
}

// --- Server -----------------------------------------------------------------

ServeRequest pattern_request(DatasetId dataset, const la::CsrMatrix& X,
                             std::uint64_t seed,
                             Priority priority = Priority::kNormal) {
  PatternEval eval;
  eval.dataset = dataset;
  eval.y = la::random_vector(static_cast<usize>(X.cols()), seed);
  ServeRequest req;
  req.work = std::move(eval);
  req.priority = priority;
  return req;
}

TEST(Server, CompletedPatternIsBitExactAgainstAReferenceExecutor) {
  la::CsrMatrix X = la::uniform_sparse(96, 48, 0.1, 7);
  ServeOptions opts;
  opts.workers = 2;
  Server server(opts);
  const DatasetId id = server.add_dataset(X);
  server.start();
  std::vector<ServeHandle> handles;
  for (int i = 0; i < 6; ++i) {
    handles.push_back(server.submit(pattern_request(id, X, 100u + i)));
  }
  for (int i = 0; i < 6; ++i) {
    const ServeOutcome& o = handles[(usize)i].wait();
    ASSERT_EQ(o.kind, OutcomeKind::kCompleted);
    vgpu::Device ref_dev;
    patterns::PatternExecutor ref(ref_dev, o.backend_used);
    auto y = la::random_vector(static_cast<usize>(X.cols()), 100u + i);
    auto expect = ref.pattern(1, X, {}, y, 0, {});
    ASSERT_EQ(o.value.size(), expect.value.size());
    for (usize j = 0; j < o.value.size(); ++j) {
      EXPECT_EQ(o.value[j], expect.value[j]) << "element " << j;
    }
  }
  ServeStats stats = server.drain();
  EXPECT_EQ(stats.submitted, 6u);
  EXPECT_EQ(stats.completed, 6u);
  EXPECT_EQ(stats.resolved(), stats.submitted);
}

TEST(Server, ScriptRequestMatchesAReferenceRuntime) {
  la::CsrMatrix X = la::uniform_sparse(64, 24, 0.15, 11);
  auto labels = la::regression_labels(X, 12, 0.05);
  ServeOptions opts;
  opts.workers = 1;
  Server server(opts);
  const DatasetId id = server.add_dataset(X);

  ScriptEval eval;
  eval.dataset = id;
  eval.kind = ScriptKind::kLrCg;
  eval.iterations = 3;
  eval.labels = labels;
  ServeRequest req;
  req.work = eval;
  server.start();
  ServeHandle h = server.submit(std::move(req));
  const ServeOutcome& o = h.wait();
  ASSERT_EQ(o.kind, OutcomeKind::kCompleted);
  ASSERT_EQ(o.resilience.fallbacks, 0u);

  vgpu::Device ref_dev;
  sysml::RuntimeOptions ro;
  ro.device_capacity = server.pool().session_memory_bytes();
  sysml::Runtime rt(ref_dev, ro);
  ml::ScriptConfig cfg;
  cfg.max_iterations = 3;
  auto expect =
      ml::run_lr_cg_script(rt, X, labels, sysml::PlanMode::kPlanner, cfg);
  ASSERT_EQ(o.value.size(), expect.weights.size());
  for (usize j = 0; j < o.value.size(); ++j) {
    EXPECT_EQ(o.value[j], expect.weights[j]) << "weight " << j;
  }
  server.drain();
}

TEST(Server, PreStartAdmissionShedsAndRejectsDeterministically) {
  la::CsrMatrix X = la::uniform_sparse(32, 16, 0.2, 3);
  ServeOptions opts;
  opts.workers = 1;
  opts.queue_capacity = 2;
  Server server(opts);
  const DatasetId id = server.add_dataset(X);

  // Queue fills before workers exist, so admission is deterministic.
  auto b1 = server.submit(pattern_request(id, X, 1, Priority::kBatch));
  auto b2 = server.submit(pattern_request(id, X, 2, Priority::kBatch));
  auto b3 = server.submit(pattern_request(id, X, 3, Priority::kBatch));
  EXPECT_EQ(b3.wait().kind, OutcomeKind::kRejected);
  EXPECT_EQ(b3.wait().reject_reason, RejectReason::kQueueFull);

  auto hi = server.submit(pattern_request(id, X, 4, Priority::kInteractive));
  // b2 (newest batch entry) was shed to admit the interactive request.
  EXPECT_EQ(b2.wait().kind, OutcomeKind::kRejected);
  EXPECT_EQ(b2.wait().reject_reason, RejectReason::kShedding);

  server.start();
  EXPECT_EQ(b1.wait().kind, OutcomeKind::kCompleted);
  EXPECT_EQ(hi.wait().kind, OutcomeKind::kCompleted);
  ServeStats stats = server.drain();
  EXPECT_EQ(stats.submitted, 4u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.rejected_queue_full, 1u);
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.resolved(), stats.submitted);
  EXPECT_LE(stats.queue_high_water, opts.queue_capacity);
}

TEST(Server, OversizedWorkingSetIsRejectedOverCapacity) {
  la::CsrMatrix X = la::uniform_sparse(128, 64, 0.2, 5);
  ServeOptions opts;
  opts.workers = 2;
  opts.pool_memory_bytes = 2 * X.bytes();  // per-session slice < X
  Server server(opts);
  const DatasetId id = server.add_dataset(X);
  ServeHandle h = server.submit(pattern_request(id, X, 9));
  EXPECT_EQ(h.wait().kind, OutcomeKind::kRejected);
  EXPECT_EQ(h.wait().reject_reason, RejectReason::kOverCapacity);
  ServeStats stats = server.drain();
  EXPECT_EQ(stats.rejected_over_capacity, 1u);
  EXPECT_EQ(stats.resolved(), stats.submitted);
}

TEST(Server, QueuedDeadlineExpiresOnTheModeledClock) {
  la::CsrMatrix X = la::uniform_sparse(256, 96, 0.15, 21);
  ServeOptions opts;
  opts.workers = 1;
  Server server(opts);
  const DatasetId id = server.add_dataset(X);
  // First request (no deadline) advances the modeled clock; the second has
  // a deadline far below the first request's execution time, so it expires
  // while queued.
  auto big = server.submit(pattern_request(id, X, 31));
  ServeRequest tight = pattern_request(id, X, 32);
  tight.deadline_ms = 1e-6;
  auto doomed = server.submit(std::move(tight));
  server.start();
  EXPECT_EQ(big.wait().kind, OutcomeKind::kCompleted);
  const ServeOutcome& o = doomed.wait();
  EXPECT_EQ(o.kind, OutcomeKind::kDeadlineExceeded);
  EXPECT_TRUE(o.value.empty());
  ServeStats stats = server.drain();
  EXPECT_EQ(stats.deadline_exceeded, 1u);
  EXPECT_EQ(stats.resolved(), stats.submitted);
}

TEST(Server, DeadlineClampsRetryBudgetUnderPermanentFaults) {
  la::CsrMatrix X = la::uniform_sparse(64, 32, 0.2, 41);
  ServeOptions opts;
  opts.workers = 1;
  opts.faults.kernel_fault_rate = 1.0;  // every GPU launch fails
  opts.breaker.enabled = false;         // isolate the deadline path
  Server server(opts);
  const DatasetId id = server.add_dataset(X);
  ServeRequest req = pattern_request(id, X, 42);
  req.deadline_ms = 0.01;  // far below one full retry schedule's backoff
  server.start();
  ServeHandle h = server.submit(std::move(req));
  const ServeOutcome& o = h.wait();
  EXPECT_EQ(o.kind, OutcomeKind::kDeadlineExceeded);
  EXPECT_GT(o.resilience.faults_seen, 0u);
  ServeStats stats = server.drain();
  EXPECT_EQ(stats.deadline_exceeded, 1u);
}

TEST(Server, CancelledWhileQueuedNeverExecutes) {
  la::CsrMatrix X = la::uniform_sparse(32, 16, 0.2, 51);
  ServeOptions opts;
  opts.workers = 1;
  Server server(opts);
  const DatasetId id = server.add_dataset(X);
  ServeHandle h = server.submit(pattern_request(id, X, 52));
  h.cancel();
  EXPECT_EQ(h.wait().kind, OutcomeKind::kCancelled);
  server.start();
  ServeStats stats = server.drain();
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.completed, 0u);
  EXPECT_EQ(stats.resolved(), stats.submitted);
  EXPECT_EQ(h.state()->resolutions(), 1);
}

TEST(Server, DrainIsIdempotentAndRejectsLateSubmits) {
  la::CsrMatrix X = la::uniform_sparse(32, 16, 0.2, 61);
  ServeOptions opts;
  opts.workers = 2;
  Server server(opts);
  const DatasetId id = server.add_dataset(X);
  server.start();
  auto h = server.submit(pattern_request(id, X, 62));
  EXPECT_EQ(h.wait().kind, OutcomeKind::kCompleted);
  ServeStats first = server.drain();
  ServeStats second = server.drain();
  EXPECT_EQ(first.completed, second.completed);

  ServeHandle late = server.submit(pattern_request(id, X, 63));
  EXPECT_EQ(late.wait().kind, OutcomeKind::kRejected);
  EXPECT_EQ(late.wait().reject_reason, RejectReason::kQueueFull);
}

TEST(Server, DrainWithoutStartResolvesEverythingQueued) {
  la::CsrMatrix X = la::uniform_sparse(32, 16, 0.2, 71);
  ServeOptions opts;
  opts.workers = 1;
  Server server(opts);
  const DatasetId id = server.add_dataset(X);
  auto h1 = server.submit(pattern_request(id, X, 72));
  auto h2 = server.submit(pattern_request(id, X, 73));
  ServeStats stats = server.drain();
  EXPECT_EQ(h1.wait().kind, OutcomeKind::kRejected);
  EXPECT_EQ(h2.wait().kind, OutcomeKind::kRejected);
  EXPECT_EQ(stats.resolved(), stats.submitted);
}

TEST(Server, TagsRideThroughToOutcomes) {
  la::CsrMatrix X = la::uniform_sparse(32, 16, 0.2, 81);
  ServeOptions opts;
  opts.workers = 1;
  Server server(opts);
  const DatasetId id = server.add_dataset(X);
  ServeRequest req = pattern_request(id, X, 82);
  req.tag = 0xfeedULL;
  server.start();
  ServeHandle h = server.submit(std::move(req));
  EXPECT_EQ(h.wait().tag, 0xfeedULL);
  server.drain();
}

// --- SLO accounting ---------------------------------------------------------

ServeOutcome made_outcome(OutcomeKind kind, Priority priority, double queue_ms,
                          double modeled_ms, double deadline_ms = 0.0,
                          int worker = 0) {
  ServeOutcome o;
  o.kind = kind;
  o.priority = priority;
  o.queue_wait_ms = queue_ms;
  o.modeled_ms = modeled_ms;
  o.deadline_ms = deadline_ms;
  o.worker = worker;
  return o;
}

TEST(SloTracker, BucketsOutcomesByClassAndKind) {
  SloTracker slo;
  slo.record(made_outcome(OutcomeKind::kCompleted, Priority::kInteractive,
                          1.0, 3.0, /*deadline_ms=*/10.0));
  slo.record(made_outcome(OutcomeKind::kCompleted, Priority::kInteractive,
                          2.0, 9.0, /*deadline_ms=*/10.0));  // 11 > 10: miss
  slo.record(made_outcome(OutcomeKind::kDeadlineExceeded,
                          Priority::kInteractive, 5.0, 5.0,
                          /*deadline_ms=*/8.0));
  slo.record(made_outcome(OutcomeKind::kFailed, Priority::kBatch, 0.5, 2.0));
  ServeOutcome shed = made_outcome(OutcomeKind::kRejected, Priority::kBatch,
                                   0.0, 0.0, 0.0, /*worker=*/-1);
  shed.reject_reason = RejectReason::kShedding;
  slo.record(shed);
  ServeOutcome rej = made_outcome(OutcomeKind::kRejected, Priority::kNormal,
                                  0.0, 0.0, 0.0, /*worker=*/-1);
  rej.reject_reason = RejectReason::kQueueFull;
  slo.record(rej);

  const SloClassSnapshot hi = slo.snapshot(Priority::kInteractive);
  EXPECT_EQ(hi.completed, 2u);
  EXPECT_EQ(hi.deadline_exceeded, 1u);
  // All three interactive requests executed with a deadline; only the first
  // completed within it.
  EXPECT_EQ(hi.deadline_total, 3u);
  EXPECT_EQ(hi.deadline_hits, 1u);
  EXPECT_DOUBLE_EQ(hi.deadline_hit_ratio(), 1.0 / 3.0);
  EXPECT_EQ(hi.latency_count, 3u);
  EXPECT_DOUBLE_EQ(hi.max_ms, 11.0);
  EXPECT_DOUBLE_EQ(hi.queue_ms, 8.0);

  const SloClassSnapshot batch = slo.snapshot(Priority::kBatch);
  EXPECT_EQ(batch.failed, 1u);
  EXPECT_EQ(batch.shed, 1u);
  EXPECT_EQ(batch.rejected, 0u);
  // No deadline-carrying batch request: nothing missed, ratio is 1.
  EXPECT_DOUBLE_EQ(batch.deadline_hit_ratio(), 1.0);

  const SloClassSnapshot normal = slo.snapshot(Priority::kNormal);
  EXPECT_EQ(normal.rejected, 1u);
  EXPECT_EQ(normal.shed, 0u);
  EXPECT_EQ(normal.latency_count, 0u);  // never executed: no latency sample
}

TEST(SloTracker, DecomposesLatencyIntoBuckets) {
  SloTracker slo;
  ServeOutcome o = made_outcome(OutcomeKind::kCompleted, Priority::kNormal,
                                2.0, 10.0);
  o.resilience.verify_ms = 3.0;
  o.resilience.backoff_ms = 1.0;  // counted via overhead_ms()
  o.plan_host_ms = 0.25;
  slo.record(o);
  const SloClassSnapshot s = slo.snapshot(Priority::kNormal);
  EXPECT_DOUBLE_EQ(s.queue_ms, 2.0);
  EXPECT_DOUBLE_EQ(s.verify_ms, 3.0);
  EXPECT_DOUBLE_EQ(s.resilience_ms, o.resilience.overhead_ms());
  // exec = modeled - verify - resilience overhead; the four modeled buckets
  // sum back to the full latency the client saw.
  EXPECT_DOUBLE_EQ(s.exec_ms, 10.0 - 3.0 - o.resilience.overhead_ms());
  EXPECT_DOUBLE_EQ(s.queue_ms + s.exec_ms + s.verify_ms + s.resilience_ms,
                   12.0);
  EXPECT_DOUBLE_EQ(s.plan_host_ms, 0.25);
}

// --- Flight recorder --------------------------------------------------------

TEST(FlightRecorder, RingIsBoundedAndKeepsNewest) {
  FlightRecorder fr(/*capacity=*/4, /*max_incidents=*/2);
  for (std::uint64_t i = 0; i < 10; ++i) {
    FlightRecord rec;
    rec.tag = i;
    fr.record(rec);
  }
  EXPECT_EQ(fr.recorded(), 10u);
  const auto recent = fr.recent();
  ASSERT_EQ(recent.size(), 4u);  // bounded at capacity
  for (usize i = 0; i < recent.size(); ++i) {
    EXPECT_EQ(recent[i].tag, 6u + i) << "oldest-first order";
  }
}

TEST(FlightRecorder, IncidentBudgetCapturesFirstNButCountsAllFires) {
  FlightRecorder fr(/*capacity=*/4, /*max_incidents=*/2);
  FlightRecord rec;
  rec.tag = 7;
  fr.record(rec);
  EXPECT_TRUE(fr.fire(AnomalyKind::kDeadlineMiss, rec, 1.0));
  EXPECT_TRUE(fr.fire(AnomalyKind::kBreakerOpen, rec, 2.0));
  EXPECT_FALSE(fr.fire(AnomalyKind::kFailure, rec, 3.0));  // budget spent
  EXPECT_EQ(fr.fires(), 3u);
  const auto incidents = fr.incidents();
  ASSERT_EQ(incidents.size(), 2u);
  EXPECT_EQ(incidents[0].kind, AnomalyKind::kDeadlineMiss);
  EXPECT_EQ(incidents[0].trigger.tag, 7u);
  ASSERT_EQ(incidents[0].recent.size(), 1u);
  std::ostringstream os;
  fr.write_incidents_json(os);
  EXPECT_NE(os.str().find("\"deadline_miss\""), std::string::npos);
}

// --- Request tracing --------------------------------------------------------

TEST(Server, TracedRequestsCarryCompleteSpanTrees) {
  la::CsrMatrix X = la::uniform_sparse(64, 32, 0.15, 91);
  ServeOptions opts;
  opts.workers = 2;
  opts.request_tracing = true;
  Server server(opts);
  const DatasetId id = server.add_dataset(X);
  server.start();
  std::vector<ServeHandle> handles;
  for (int i = 0; i < 8; ++i) {
    ServeRequest req = pattern_request(
        id, X, 200u + i, static_cast<Priority>(i % kNumPriorities));
    req.tag = 900u + static_cast<std::uint64_t>(i);
    handles.push_back(server.submit(std::move(req)));
  }
  for (const ServeHandle& h : handles) {
    const ServeOutcome& o = h.wait();
    ASSERT_EQ(o.kind, OutcomeKind::kCompleted);
    ASSERT_NE(o.trace, nullptr);
    EXPECT_TRUE(o.trace->complete());
    EXPECT_EQ(o.trace->tag, o.tag);
    EXPECT_EQ(o.trace->kind, o.kind);
    EXPECT_EQ(o.trace->priority, o.priority);
    // THE oracle: the root span is sealed from the same numbers the client
    // reads, so the equality is bit-exact, not approximate.
    EXPECT_EQ(o.trace->root().dur_ms, o.queue_wait_ms + o.modeled_ms);
    std::ostringstream os;
    o.trace->write_json(os);
    EXPECT_NE(os.str().find("\"spans\""), std::string::npos);
  }
  server.drain();
}

TEST(Server, TracingOffLeavesOutcomesUntraced) {
  la::CsrMatrix X = la::uniform_sparse(32, 16, 0.2, 95);
  Server server;  // defaults: request_tracing = false
  const DatasetId id = server.add_dataset(X);
  server.start();
  ServeHandle h = server.submit(pattern_request(id, X, 96));
  EXPECT_EQ(h.wait().trace, nullptr);
  server.drain();
}

TEST(Server, CancelledBeforeStartStillSealsExactlyOneTree) {
  la::CsrMatrix X = la::uniform_sparse(32, 16, 0.2, 97);
  ServeOptions opts;
  opts.workers = 1;
  opts.request_tracing = true;
  Server server(opts);
  const DatasetId id = server.add_dataset(X);
  ServeHandle h = server.submit(pattern_request(id, X, 98));
  h.cancel();  // resolved on the client thread — no worker ever ran
  const ServeOutcome& o = h.wait();
  ASSERT_EQ(o.kind, OutcomeKind::kCancelled);
  ASSERT_NE(o.trace, nullptr);
  EXPECT_TRUE(o.trace->complete());
  EXPECT_EQ(o.trace->root().dur_ms, o.queue_wait_ms + o.modeled_ms);
  server.drain();
}

// Tracing is a pure observer: the same deterministic workload (one worker,
// queue filled before start) resolves to bit-identical modeled numbers with
// tracing+flight-recorder on and off.
TEST(Server, TracingEnabledIsBitIdenticalToDisabled) {
  la::CsrMatrix X = la::uniform_sparse(64, 32, 0.15, 99);
  const auto run = [&X](bool traced,
                        std::vector<std::pair<double, double>>& modeled) {
    ServeOptions opts;
    opts.workers = 1;
    opts.queue_capacity = 16;
    opts.request_tracing = traced;
    opts.flight_recorder = traced;
    Server server(opts);
    const DatasetId id = server.add_dataset(X);
    std::vector<ServeHandle> handles;
    for (int i = 0; i < 12; ++i) {
      handles.push_back(server.submit(pattern_request(
          id, X, 300u + i, static_cast<Priority>(i % kNumPriorities))));
    }
    server.start();
    for (const ServeHandle& h : handles) {
      const ServeOutcome& o = h.wait();
      if (traced) {
        ASSERT_NE(o.trace, nullptr);
        ASSERT_TRUE(o.trace->complete());
        ASSERT_EQ(o.trace->root().dur_ms, o.queue_wait_ms + o.modeled_ms);
      } else {
        ASSERT_EQ(o.trace, nullptr);
      }
      modeled.emplace_back(o.queue_wait_ms, o.modeled_ms);
    }
    server.drain();
  };
  std::vector<std::pair<double, double>> off;
  std::vector<std::pair<double, double>> on;
  ASSERT_NO_FATAL_FAILURE(run(false, off));
  ASSERT_NO_FATAL_FAILURE(run(true, on));
  ASSERT_EQ(off.size(), on.size());
  for (usize i = 0; i < off.size(); ++i) {
    EXPECT_EQ(off[i].first, on[i].first) << "queue_wait_ms, request " << i;
    EXPECT_EQ(off[i].second, on[i].second) << "modeled_ms, request " << i;
  }
}

// --- ServerStatus -----------------------------------------------------------

TEST(Server, StatusSnapshotsClassesAndSerializes) {
  la::CsrMatrix X = la::uniform_sparse(64, 32, 0.15, 101);
  ServeOptions opts;
  opts.workers = 1;
  opts.request_tracing = true;
  opts.flight_recorder = true;
  Server server(opts);
  const DatasetId id = server.add_dataset(X);
  server.start();
  std::vector<ServeHandle> handles;
  for (int i = 0; i < 9; ++i) {
    handles.push_back(server.submit(pattern_request(
        id, X, 400u + i, static_cast<Priority>(i % kNumPriorities))));
  }
  for (const ServeHandle& h : handles) h.wait();
  // One doomed deadline fires the recorder: 0 modeled ms of budget cannot
  // cover any dispatch.
  ServeRequest doomed = pattern_request(id, X, 444, Priority::kInteractive);
  doomed.deadline_ms = 1e-9;
  EXPECT_EQ(server.submit(std::move(doomed)).wait().kind,
            OutcomeKind::kDeadlineExceeded);
  server.drain();

  const ServerStatus status = server.status();
  std::uint64_t executed = 0;
  for (int c = 0; c < kNumPriorities; ++c) {
    executed += status.classes[c].latency_count;
  }
  EXPECT_EQ(status.totals.completed, 9u);
  EXPECT_GE(executed, 9u);
  EXPECT_EQ(status.flight_recorded, server.flight().recorded());
  EXPECT_GE(status.anomalies_fired, 1u);  // the deadline miss fired

  std::ostringstream json;
  status.write_json(json);
  EXPECT_NE(json.str().find("\"classes\""), std::string::npos);
  EXPECT_NE(json.str().find("\"interactive\""), std::string::npos);
  std::ostringstream text;
  status.print(text);
  EXPECT_NE(text.str().find("interactive"), std::string::npos);

  std::ostringstream bundle;
  server.write_incident_bundle(bundle);
  EXPECT_NE(bundle.str().find("\"incident_bundles\""), std::string::npos);
}

}  // namespace
}  // namespace fusedml::serve
