// The single-IR migration contract: every algorithm in the generated
// ScriptLibrary (ml/script_library.h) reproduces its pre-refactor legacy
// imperative solver TO THE LAST BIT when both run on the device path, the
// planner strictly reduces kernel launches where the old hand-wired code
// left fusion opportunities on the table (glm / svm / hits), plan-vs-actual
// audits show zero drift, and the per-shape plan cache amortizes planning
// across solver iterations.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/rng.h"
#include "la/convert.h"
#include "la/generate.h"
#include "la/vector_ops.h"
#include "ml/script_library.h"
#include "patterns/executor.h"
#include "sysml/runtime.h"
#include "test_util.h"
#include "vgpu/device.h"
#include "vgpu/fault_injector.h"

namespace fusedml {
namespace {

using ml::Algorithm;
using sysml::PlanMode;

// The legacy solvers drive PatternExecutor(kFused) directly, i.e. device
// kernels for everything they offload. gpu_cost_bias forces the runtime's
// scheduler onto the same venue at test scale, which is what makes EXPECT_EQ
// (not NEAR) the right assertion between the two stacks.
sysml::RuntimeOptions forced_gpu() {
  return {.enable_gpu = true, .gpu_cost_bias = 1e-4};
}

std::vector<real> poisson_labels(const la::CsrMatrix& X, std::uint64_t seed) {
  auto w_true = la::regression_true_weights(X.cols(), seed);
  for (real& w : w_true) w *= 0.3;  // keep exp(eta) tame
  const auto eta = la::reference::spmv(X, w_true);
  Rng rng(seed);
  std::vector<real> y(eta.size());
  for (usize i = 0; i < y.size(); ++i) {
    y[i] = static_cast<real>(rng.poisson(std::exp(eta[i])));
  }
  return y;
}

// --- Bit-exactness oracles: script (planner) vs legacy imperative -----------

TEST(ScriptOracle, LrCgBitMatchesLegacyImperativeCsr) {
  const auto X = la::uniform_sparse(1200, 80, 0.05, 601);
  const auto y = la::regression_labels(X, 601, 0.1);

  vgpu::Device legacy_dev;
  patterns::PatternExecutor exec(legacy_dev, patterns::Backend::kFused);
  ml::LrCgConfig lcfg;
  lcfg.max_iterations = 12;
  lcfg.tolerance = 0;
  const auto legacy = ml::lr_cg(exec, X, y, lcfg);

  vgpu::Device dev;
  sysml::Runtime rt(dev, forced_gpu());
  ml::ScriptConfig cfg;
  cfg.max_iterations = 12;
  cfg.tolerance = 0;
  const auto script = ml::run_lr_cg_script(rt, X, y, PlanMode::kPlanner, cfg);

  EXPECT_EQ(legacy.weights, script.weights);
  EXPECT_EQ(script.iterations, 12);
}

TEST(ScriptOracle, LrCgBitMatchesLegacyImperativeDense) {
  const auto Xs = la::uniform_sparse(600, 40, 0.2, 602);
  const auto X = la::csr_to_dense(Xs);
  const auto y = la::regression_labels(Xs, 602, 0.1);

  vgpu::Device legacy_dev;
  patterns::PatternExecutor exec(legacy_dev, patterns::Backend::kFused);
  ml::LrCgConfig lcfg;
  lcfg.max_iterations = 8;
  lcfg.tolerance = 0;
  const auto legacy = ml::lr_cg(exec, X, y, lcfg);

  vgpu::Device dev;
  sysml::Runtime rt(dev, forced_gpu());
  ml::ScriptConfig cfg;
  cfg.max_iterations = 8;
  cfg.tolerance = 0;
  const auto script = ml::run_lr_cg_script(rt, X, y, PlanMode::kPlanner, cfg);

  EXPECT_EQ(legacy.weights, script.weights);
}

TEST(ScriptOracle, GlmPoissonBitMatchesLegacyImperative) {
  const auto X = la::uniform_sparse(500, 14, 0.3, 603);
  const auto y = poisson_labels(X, 603);
  ml::GlmConfig cfg;
  cfg.family = ml::GlmFamily::kPoisson;
  cfg.max_irls_iterations = 6;

  vgpu::Device legacy_dev;
  patterns::PatternExecutor exec(legacy_dev, patterns::Backend::kFused);
  const auto legacy = ml::glm_irls(exec, X, y, cfg);

  vgpu::Device dev;
  sysml::Runtime rt(dev, forced_gpu());
  const auto script = ml::run_glm_script(rt, X, y, PlanMode::kPlanner, cfg);

  EXPECT_EQ(legacy.weights, script.weights);
}

TEST(ScriptOracle, GlmGaussianBitMatchesLegacyImperative) {
  const auto X = la::uniform_sparse(400, 16, 0.3, 604);
  const auto y = la::regression_labels(X, 604, 0.0);
  ml::GlmConfig cfg;
  cfg.family = ml::GlmFamily::kGaussian;
  cfg.max_irls_iterations = 4;

  vgpu::Device legacy_dev;
  patterns::PatternExecutor exec(legacy_dev, patterns::Backend::kFused);
  const auto legacy = ml::glm_irls(exec, X, y, cfg);

  vgpu::Device dev;
  sysml::Runtime rt(dev, forced_gpu());
  const auto script = ml::run_glm_script(rt, X, y, PlanMode::kPlanner, cfg);

  EXPECT_EQ(legacy.weights, script.weights);
}

TEST(ScriptOracle, SvmBitMatchesLegacyImperative) {
  const auto X = la::uniform_sparse(300, 20, 0.3, 605);
  const auto y = la::classification_labels(X, 605, 0.1);
  ml::SvmConfig cfg;
  cfg.max_newton_iterations = 5;

  vgpu::Device legacy_dev;
  patterns::PatternExecutor exec(legacy_dev, patterns::Backend::kFused);
  const auto legacy = ml::svm_primal(exec, X, y, cfg);

  vgpu::Device dev;
  sysml::Runtime rt(dev, forced_gpu());
  const auto script = ml::run_svm_script(rt, X, y, PlanMode::kPlanner, cfg);

  EXPECT_EQ(legacy.weights, script.weights);
}

TEST(ScriptOracle, HitsBitMatchesLegacyImperative) {
  const auto X = la::uniform_sparse(80, 60, 0.1, 606);
  ml::HitsConfig cfg;
  cfg.max_iterations = 10;
  cfg.tolerance = 0;

  vgpu::Device legacy_dev;
  patterns::PatternExecutor exec(legacy_dev, patterns::Backend::kFused);
  const auto legacy = ml::hits(exec, X, cfg);

  vgpu::Device dev;
  sysml::Runtime rt(dev, forced_gpu());
  const auto script = ml::run_hits_script(rt, X, PlanMode::kPlanner, cfg);

  EXPECT_EQ(legacy.authorities, script.weights);
}

// The logreg-gd script has no legacy imperative twin (the legacy logreg is
// the trust-region solver), so its oracle is the mode cross-check: the
// planner only fuses elementwise chains here, which are bit-equal to
// op-at-a-time evaluation by construction.
TEST(ScriptOracle, LogregGdAllModesBitEqual) {
  const auto X = la::uniform_sparse(800, 40, 0.05, 607);
  const auto y = la::classification_labels(X, 607, 0.1);
  ml::GdConfig cfg;
  cfg.iterations = 10;

  std::vector<std::vector<real>> weights;
  for (const auto mode : {PlanMode::kUnfused, PlanMode::kHardcodedPass,
                          PlanMode::kPlanner}) {
    vgpu::Device dev;
    sysml::Runtime rt(dev, forced_gpu());
    weights.push_back(ml::run_logreg_gd_script(rt, X, y, mode, cfg).weights);
  }
  EXPECT_EQ(weights[0], weights[1]);
  EXPECT_EQ(weights[0], weights[2]);
}

// --- Seeded fault storms leave every script bit-exact ------------------------

TEST(ScriptOracle, SeededFaultsBitExactAcrossAllAlgorithms) {
  const auto X = la::uniform_sparse(400, 24, 0.1, 608);
  const auto y_reg = la::regression_labels(X, 608, 0.1);
  const auto y_cls = la::classification_labels(X, 608, 0.1);

  vgpu::FaultConfig fc;
  fc.seed = 0xFA17ULL;
  fc.kernel_fault_rate = 0.05;
  fc.ecc_fault_rate = 0.03;
  fc.transfer_fault_rate = 0.05;

  for (const auto& spec : ml::script_library()) {
    if (spec.dense || spec.mode != PlanMode::kPlanner) continue;
    std::span<const real> labels =
        (spec.algorithm == Algorithm::kLogregGd ||
         spec.algorithm == Algorithm::kSvm)
            ? std::span<const real>(y_cls)
            : std::span<const real>(y_reg);

    vgpu::Device clean_dev;
    sysml::Runtime clean_rt(clean_dev, forced_gpu());
    const auto clean = spec.run_sparse(clean_rt, X, labels, 3);

    vgpu::FaultInjector inj(fc);
    vgpu::Device faulty_dev;
    faulty_dev.set_fault_injector(&inj);
    sysml::Runtime faulty_rt(faulty_dev, forced_gpu());
    const auto faulty = spec.run_sparse(faulty_rt, X, labels, 3);

    EXPECT_EQ(clean.weights, faulty.weights) << spec.name;
    if (faulty_rt.resilience().fallbacks != 0) {
      ADD_FAILURE() << spec.name << ": fell back off-device, venue changed";
    }
  }
}

// --- The planner strictly beats the unfused interpretation -------------------

TEST(ScriptModes, PlannerStrictlyReducesLaunchesForGlmSvmHits) {
  const auto X = la::uniform_sparse(500, 24, 0.1, 609);
  const auto y_reg = la::regression_labels(X, 609, 0.1);
  const auto y_cls = la::classification_labels(X, 609, 0.1);

  const struct {
    Algorithm algorithm;
    std::span<const real> labels;
  } cases[] = {{Algorithm::kGlm, y_reg},
               {Algorithm::kSvm, y_cls},
               {Algorithm::kHits, {}}};

  for (const auto& c : cases) {
    std::uint64_t launches[2] = {0, 0};
    std::vector<real> weights[2];
    const PlanMode modes[2] = {PlanMode::kUnfused, PlanMode::kPlanner};
    for (int i = 0; i < 2; ++i) {
      const auto* spec = ml::find_script(c.algorithm, false, modes[i]);
      ASSERT_NE(spec, nullptr);
      vgpu::Device dev;
      sysml::Runtime rt(dev, forced_gpu());
      const auto r = spec->run_sparse(rt, X, c.labels, 4);
      launches[i] = r.runtime_stats.kernel_launches;
      weights[i] = r.weights;
      if (modes[i] == PlanMode::kPlanner) {
        EXPECT_GT(r.fused_groups, 0) << spec->name;
        if (r.plan_audit.has_prediction) {
          EXPECT_EQ(r.plan_audit.launch_drift(), 0) << spec->name;
        }
      }
    }
    EXPECT_LT(launches[1], launches[0]) << to_string(c.algorithm);
    // The fused pattern kernel re-associates the X^T reduction, so unfused
    // vs planner is a numeric (not bitwise) comparison.
    ASSERT_EQ(weights[0].size(), weights[1].size());
    for (usize j = 0; j < weights[0].size(); ++j) {
      EXPECT_NEAR(weights[0][j], weights[1][j],
                  1e-4 * (1.0 + std::abs(weights[0][j])))
          << to_string(c.algorithm) << " weight " << j;
    }
  }
}

// The four new workloads exercise the planner's new template families.
// None of their DAGs contain an Equation-1 site, so the planner's rewrites
// (row template, sddmm, elementwise chains) are bit-preserving and the
// planner must match the unfused interpretation EXACTLY while strictly
// reducing launches.
TEST(ScriptModes, PlannerStrictlyReducesLaunchesForNewAlgorithms) {
  const auto X = la::uniform_sparse(300, 40, 0.08, 614);
  const auto y_cls = la::classification_labels(X, 614, 0.1);

  for (const auto alg : {Algorithm::kAls, Algorithm::kKmeans,
                         Algorithm::kPagerank, Algorithm::kMinibatchLogreg}) {
    std::span<const real> labels =
        alg == Algorithm::kMinibatchLogreg ? std::span<const real>(y_cls)
                                           : std::span<const real>{};
    std::uint64_t launches[2] = {0, 0};
    std::vector<real> weights[2];
    std::string plan_explain;
    const PlanMode modes[2] = {PlanMode::kUnfused, PlanMode::kPlanner};
    for (int i = 0; i < 2; ++i) {
      const auto* spec = ml::find_script(alg, false, modes[i]);
      ASSERT_NE(spec, nullptr);
      vgpu::Device dev;
      sysml::Runtime rt(dev, forced_gpu());
      const auto r = spec->run_sparse(rt, X, labels, 4);
      launches[i] = r.runtime_stats.kernel_launches;
      weights[i] = r.weights;
      if (modes[i] == PlanMode::kPlanner) {
        EXPECT_GT(r.fused_groups, 0) << spec->name;
        if (r.plan_audit.has_prediction) {
          EXPECT_EQ(r.plan_audit.launch_drift(), 0) << spec->name;
        }
        plan_explain = r.plan_explain;
      }
    }
    EXPECT_LT(launches[1], launches[0]) << to_string(alg);
    EXPECT_EQ(weights[0], weights[1]) << to_string(alg);
    if (alg == Algorithm::kAls) {
      // The Hessian-vector product must collapse into the
      // sparsity-exploiting fused kernel, not stay a disjoint chain.
      EXPECT_NE(plan_explain.find("sddmm"), std::string::npos)
          << plan_explain;
    }
  }
}

TEST(ScriptModes, PlannerMatchesHardcodedPassBitExactly) {
  // Both rewrites collapse exactly the Equation-1 template sites, and every
  // additional elementwise group the planner fuses is bit-preserving — so
  // the two prepared plans must agree to the last bit on every algorithm.
  const auto X = la::uniform_sparse(400, 20, 0.1, 610);
  const auto y_reg = la::regression_labels(X, 610, 0.1);
  const auto y_cls = la::classification_labels(X, 610, 0.1);

  for (const auto alg :
       {Algorithm::kLrCg, Algorithm::kLogregGd, Algorithm::kGlm,
        Algorithm::kSvm, Algorithm::kHits, Algorithm::kAls, Algorithm::kKmeans,
        Algorithm::kPagerank, Algorithm::kMinibatchLogreg}) {
    std::span<const real> labels =
        (alg == Algorithm::kLogregGd || alg == Algorithm::kSvm ||
         alg == Algorithm::kMinibatchLogreg)
            ? std::span<const real>(y_cls)
            : std::span<const real>(y_reg);
    std::vector<real> got[2];
    const PlanMode modes[2] = {PlanMode::kHardcodedPass, PlanMode::kPlanner};
    for (int i = 0; i < 2; ++i) {
      const auto* spec = ml::find_script(alg, false, modes[i]);
      ASSERT_NE(spec, nullptr);
      vgpu::Device dev;
      sysml::Runtime rt(dev, forced_gpu());
      got[i] = spec->run_sparse(rt, X, labels, 4).weights;
    }
    EXPECT_EQ(got[0], got[1]) << to_string(alg);
  }
}

// --- Plan caching: planning cost is paid once per solver, not per iteration --

TEST(ScriptCache, HitsAmortizesPlanningAcrossIterations) {
  const auto X = la::uniform_sparse(120, 90, 0.08, 611);
  ml::HitsConfig cfg;
  cfg.max_iterations = 12;
  cfg.tolerance = 0;

  vgpu::Device dev;
  sysml::Runtime rt(dev, forced_gpu());
  const auto r = ml::run_hits_script(rt, X, PlanMode::kPlanner, cfg);

  EXPECT_EQ(r.iterations, 12);
  // One plan for the refresh program, one for the hub read-out; every
  // further iteration re-binds "a" and hits the cache.
  EXPECT_LE(r.plans_built, 2);
  EXPECT_GE(r.plan_cache_hits, r.iterations - 1);
}

TEST(ScriptCache, LrCgPlansOnceForTheWholeSolve) {
  const auto X = la::uniform_sparse(600, 40, 0.05, 612);
  const auto y = la::regression_labels(X, 612, 0.1);
  ml::ScriptConfig cfg;
  cfg.max_iterations = 9;
  cfg.tolerance = 0;

  vgpu::Device dev;
  sysml::Runtime rt(dev, forced_gpu());
  const auto r = ml::run_lr_cg_script(rt, X, y, PlanMode::kPlanner, cfg);

  EXPECT_EQ(r.plans_built, 1);
  EXPECT_EQ(r.iterations, 9);
  ASSERT_TRUE(r.plan_audit.has_prediction);
  EXPECT_EQ(r.plan_audit.launch_drift(), 0);
}

// --- The generated library covers the whole cross product --------------------

TEST(ScriptLibrary, CoversAlgorithmByStorageByPlanMode) {
  const auto& lib = ml::script_library();
  EXPECT_EQ(lib.size(), 9u * 2u * 3u);

  std::set<std::string> names;
  for (const auto& spec : lib) {
    EXPECT_TRUE(names.insert(spec.name).second) << "duplicate " << spec.name;
    if (spec.dense) {
      EXPECT_TRUE(spec.run_dense != nullptr) << spec.name;
      EXPECT_TRUE(spec.run_sparse == nullptr) << spec.name;
    } else {
      EXPECT_TRUE(spec.run_sparse != nullptr) << spec.name;
      EXPECT_TRUE(spec.run_dense == nullptr) << spec.name;
    }
    EXPECT_EQ(ml::find_script(spec.name), &spec);
    EXPECT_EQ(ml::find_script(spec.algorithm, spec.dense, spec.mode), &spec);
  }
  EXPECT_NE(ml::find_script("glm/csr/planner"), nullptr);
  EXPECT_EQ(ml::find_script("no/such/script"), nullptr);
}

TEST(ScriptLibrary, DenseEntriesRunAndModesAgree) {
  const auto Xs = la::uniform_sparse(200, 16, 0.25, 613);
  const auto X = la::csr_to_dense(Xs);
  const auto y_reg = la::regression_labels(Xs, 613, 0.1);
  const auto y_cls = la::classification_labels(Xs, 613, 0.1);

  for (const auto alg :
       {Algorithm::kLrCg, Algorithm::kLogregGd, Algorithm::kGlm,
        Algorithm::kSvm, Algorithm::kHits, Algorithm::kAls, Algorithm::kKmeans,
        Algorithm::kPagerank, Algorithm::kMinibatchLogreg}) {
    std::span<const real> labels =
        (alg == Algorithm::kLogregGd || alg == Algorithm::kSvm ||
         alg == Algorithm::kMinibatchLogreg)
            ? std::span<const real>(y_cls)
            : std::span<const real>(y_reg);
    std::vector<real> got[2];
    const PlanMode modes[2] = {PlanMode::kHardcodedPass, PlanMode::kPlanner};
    for (int i = 0; i < 2; ++i) {
      const auto* spec = ml::find_script(alg, /*dense=*/true, modes[i]);
      ASSERT_NE(spec, nullptr);
      vgpu::Device dev;
      sysml::Runtime rt(dev, forced_gpu());
      got[i] = spec->run_dense(rt, X, labels, 3).weights;
      EXPECT_FALSE(got[i].empty()) << spec->name;
    }
    EXPECT_EQ(got[0], got[1]) << "dense " << to_string(alg);
  }
}

}  // namespace
}  // namespace fusedml
