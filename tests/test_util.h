// Shared helpers for the fusedml test suites.
#pragma once

#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "common/types.h"
#include "la/vector_ops.h"

namespace fusedml::test {

/// Asserts two vectors match within an absolute-plus-relative tolerance.
/// Atomic aggregation orders differ between backends, so results are equal
/// only up to floating-point reassociation.
inline void expect_vectors_near(std::span<const real> expected,
                                std::span<const real> actual,
                                real tol = 1e-9) {
  ASSERT_EQ(expected.size(), actual.size());
  for (usize i = 0; i < expected.size(); ++i) {
    const real scale = std::max<real>(1.0, std::abs(expected[i]));
    ASSERT_NEAR(expected[i], actual[i], tol * scale)
        << "at index " << i;
  }
}

}  // namespace fusedml::test
