// Resilience under injected device faults: deterministic schedules,
// bit-exact retried results, honest cost accounting, and graceful
// degradation — the contract docs/RESILIENCE.md documents.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.h"
#include "common/resilience.h"
#include "kernels/streaming.h"
#include "la/generate.h"
#include "la/vector_ops.h"
#include "ml/lr_cg.h"
#include "patterns/executor.h"
#include "ml/script_library.h"
#include "sysml/memory_manager.h"
#include "sysml/runtime.h"
#include "vgpu/device.h"
#include "vgpu/fault_injector.h"

namespace fusedml {
namespace {

std::string tensor_name(long long id) {
  std::string name = "t";
  name += std::to_string(id);
  return name;
}

using patterns::Backend;
using patterns::PatternExecutor;
using vgpu::FaultConfig;
using vgpu::FaultInjector;
using vgpu::FaultKind;

FaultConfig mixed_faults(double scale = 1.0) {
  FaultConfig cfg;
  cfg.seed = 0xFA17ULL;
  cfg.kernel_fault_rate = 0.05 * scale;
  cfg.ecc_fault_rate = 0.03 * scale;
  cfg.transfer_fault_rate = 0.05 * scale;
  return cfg;
}

TEST(FaultInjector, SameSeedSameSchedule) {
  FaultConfig cfg = mixed_faults(2.0);
  FaultInjector a(cfg), b(cfg);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ(a.next_launch_fault(), b.next_launch_fault());
    EXPECT_EQ(a.next_transfer_fault(), b.next_transfer_fault());
    EXPECT_EQ(a.next_alloc_oom(), b.next_alloc_oom());
  }
  EXPECT_GT(a.log().total(), 0u);
  EXPECT_EQ(a.log().kernel_faults, b.log().kernel_faults);
  EXPECT_EQ(a.log().ecc_faults, b.log().ecc_faults);
  EXPECT_EQ(a.log().transfer_faults, b.log().transfer_faults);

  // reset() replays the identical schedule.
  a.reset();
  std::vector<FaultKind> replay;
  for (int i = 0; i < 100; ++i) replay.push_back(a.next_launch_fault());
  a.reset();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_launch_fault(), replay[i]);
}

TEST(FaultInjector, RejectsBadRates) {
  FaultConfig negative;
  negative.kernel_fault_rate = -0.1;
  EXPECT_THROW(FaultInjector{negative}, Error);
  FaultConfig too_much;
  too_much.kernel_fault_rate = 0.6;
  too_much.ecc_fault_rate = 0.3;
  too_much.oom_fault_rate = 0.2;  // per-launch sum > 1
  EXPECT_THROW(FaultInjector{too_much}, Error);
}

TEST(FaultInjector, DisarmedInjectorInjectsNothing) {
  FaultInjector inj{FaultConfig{}};  // all rates zero
  EXPECT_FALSE(inj.armed());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(inj.next_launch_fault(), FaultKind::kNone);
    EXPECT_FALSE(inj.next_transfer_fault());
    EXPECT_FALSE(inj.next_alloc_oom());
  }
}

class ResilientExecutorTest : public ::testing::Test {
 protected:
  la::CsrMatrix X_ = la::uniform_sparse(3000, 120, 0.05, 17);
  std::vector<real> y_ = la::random_vector(120, 3);
  std::vector<real> v_ = la::random_vector(3000, 4);
  std::vector<real> z_ = la::random_vector(120, 5);
};

TEST_F(ResilientExecutorTest, PatternOpsBitExactUnderFaults) {
  vgpu::Device clean_dev;
  PatternExecutor clean(clean_dev, Backend::kFused);

  FaultInjector inj(mixed_faults(2.0));
  vgpu::Device faulty_dev;
  faulty_dev.set_fault_injector(&inj);
  PatternExecutor faulty(faulty_dev, Backend::kFused);

  for (int rep = 0; rep < 30; ++rep) {
    const auto a = clean.pattern(1.5, X_, v_, y_, 0.5, z_);
    const auto b = faulty.pattern(1.5, X_, v_, y_, 0.5, z_);
    ASSERT_EQ(a.value, b.value) << "rep " << rep;
    const auto ta = clean.transposed_product(X_, v_);
    const auto tb = faulty.transposed_product(X_, v_);
    ASSERT_EQ(ta.value, tb.value) << "rep " << rep;
  }
  // The armed run really absorbed faults, recovered from every one of
  // them, and stayed on the fused backend throughout.
  const auto& rs = faulty.resilience();
  EXPECT_GT(rs.faults_seen, 0u);
  EXPECT_GT(rs.retries, 0u);
  EXPECT_EQ(rs.fallbacks, 0u);
  EXPECT_GT(rs.recoveries, 0u);
  EXPECT_GT(rs.overhead_ms(), 0.0);
  EXPECT_EQ(clean.resilience().faults_seen, 0u);
}

TEST_F(ResilientExecutorTest, InPlaceBlas1RestoredBeforeRetry) {
  vgpu::Device clean_dev;
  PatternExecutor clean(clean_dev, Backend::kFused);

  // High ECC rate: faults fire AFTER the kernel mutated y in place, so a
  // bit-exact retry requires the executor's snapshot/restore.
  FaultConfig cfg;
  cfg.seed = 99;
  cfg.ecc_fault_rate = 0.4;
  FaultInjector inj(cfg);
  vgpu::Device faulty_dev;
  faulty_dev.set_fault_injector(&inj);
  PatternExecutor faulty(faulty_dev, Backend::kFused);

  auto yc = la::random_vector(5000, 7);
  auto yf = yc;
  const auto xs = la::random_vector(5000, 8);
  for (int rep = 0; rep < 20; ++rep) {
    clean.axpy(0.25, xs, yc);
    faulty.axpy(0.25, xs, yf);
    ASSERT_EQ(yc, yf) << "rep " << rep;
    clean.scal(1.01, yc);
    faulty.scal(1.01, yf);
    ASSERT_EQ(yc, yf) << "rep " << rep;
    const auto dc = clean.dot(xs, yc);
    const auto df = faulty.dot(xs, yf);
    ASSERT_EQ(dc.value, df.value) << "rep " << rep;
  }
  EXPECT_GT(faulty.resilience().faults_seen, 0u);
  EXPECT_EQ(faulty.resilience().fallbacks, 0u);
}

TEST_F(ResilientExecutorTest, DisarmedInjectorLeavesModeledTimeUntouched) {
  vgpu::Device plain_dev;
  PatternExecutor plain(plain_dev, Backend::kFused);
  const auto a = plain.pattern(1, X_, v_, y_, 0, {});

  FaultInjector disarmed{FaultConfig{.seed = 1}};  // rates all zero
  vgpu::Device dev;
  dev.set_fault_injector(&disarmed);
  PatternExecutor exec(dev, Backend::kFused);
  const auto b = exec.pattern(1, X_, v_, y_, 0, {});

  EXPECT_EQ(a.value, b.value);
  EXPECT_EQ(a.modeled_ms, b.modeled_ms);  // bit-identical, not just close
  EXPECT_EQ(a.launches, b.launches);
  EXPECT_FALSE(exec.resilience().any());
}

TEST_F(ResilientExecutorTest, ExhaustedRetriesDegradeToCpu) {
  FaultConfig cfg;
  cfg.seed = 5;
  cfg.kernel_fault_rate = 1.0;  // every launch fails, on every GPU backend
  FaultInjector inj(cfg);
  vgpu::Device dev;
  dev.set_fault_injector(&inj);
  PatternExecutor exec(dev, Backend::kFused);
  exec.retry_policy().max_attempts = 2;

  const auto r = exec.pattern(1, X_, v_, y_, 0, {});
  EXPECT_EQ(r.backend_used, Backend::kCpu);
  EXPECT_EQ(r.resilience.fallbacks, 2u);  // fused -> cusparse -> cpu
  EXPECT_NE(r.kernel.find("[after fallback]"), std::string::npos);

  // The CPU result is the CPU backend's own bits.
  vgpu::Device clean_dev;
  PatternExecutor cpu(clean_dev, Backend::kCpu);
  EXPECT_EQ(r.value, cpu.pattern(1, X_, v_, y_, 0, {}).value);
}

TEST_F(ResilientExecutorTest, DeviceOomSkipsRetriesAndFallsBack) {
  FaultConfig cfg;
  cfg.seed = 5;
  cfg.oom_fault_rate = 1.0;
  FaultInjector inj(cfg);
  vgpu::Device dev;
  dev.set_fault_injector(&inj);
  PatternExecutor exec(dev, Backend::kFused);

  const auto r = exec.pattern(1, X_, v_, y_, 0, {});
  EXPECT_EQ(r.backend_used, Backend::kCpu);
  // OOM is not transient: one fault per GPU backend, zero retries.
  EXPECT_EQ(r.resilience.retries, 0u);
  EXPECT_EQ(r.resilience.faults_seen, 2u);
  EXPECT_EQ(r.resilience.fallbacks, 2u);
}

TEST_F(ResilientExecutorTest, FallbackDisabledRethrowsTypedError) {
  FaultConfig cfg;
  cfg.seed = 5;
  cfg.kernel_fault_rate = 1.0;
  FaultInjector inj(cfg);
  vgpu::Device dev;
  dev.set_fault_injector(&inj);
  PatternExecutor exec(dev, Backend::kFused);
  exec.retry_policy().max_attempts = 2;
  exec.retry_policy().allow_backend_fallback = false;

  EXPECT_THROW(exec.pattern(1, X_, v_, y_, 0, {}), KernelFaultError);
  EXPECT_GT(exec.resilience().faults_seen, 0u);
  EXPECT_EQ(exec.resilience().fallbacks, 0u);
}

TEST_F(ResilientExecutorTest, RetryBudgetFailsFastWithDeadlineError) {
  FaultConfig cfg;
  cfg.seed = 5;
  cfg.kernel_fault_rate = 1.0;  // permanent storm: retries can never succeed
  FaultInjector inj(cfg);
  vgpu::Device dev;
  dev.set_fault_injector(&inj);
  PatternExecutor exec(dev, Backend::kFused);
  // Budget smaller than one backoff wait: the dispatch must stop retrying
  // AND stop degrading as soon as the first wasted attempt lands, instead
  // of walking the full fused -> cusparse -> cpu ladder.
  exec.retry_policy().max_total_overhead_ms = 1e-4;

  EXPECT_THROW(exec.pattern(1, X_, v_, y_, 0, {}), DeadlineError);
  const auto& rs = exec.resilience();
  EXPECT_GT(rs.faults_seen, 0u);
  EXPECT_EQ(rs.fallbacks_to_cpu, 0u);  // fail-fast beat the CPU fallback
  EXPECT_GT(rs.overhead_ms(), 0.0);
  // The whole point of the budget: overhead stays near the cap rather than
  // accumulating max_attempts backoffs per backend tier.
  EXPECT_LT(rs.overhead_ms(),
            exec.retry_policy().backoff_ms(1) * exec.retry_policy().max_attempts);
}

TEST_F(ResilientExecutorTest, UnboundedBudgetDegradesWithSplitFallbackCounts) {
  FaultConfig cfg;
  cfg.seed = 5;
  cfg.kernel_fault_rate = 1.0;
  FaultInjector inj(cfg);
  vgpu::Device dev;
  dev.set_fault_injector(&inj);
  PatternExecutor exec(dev, Backend::kFused);
  exec.retry_policy().max_attempts = 2;
  ASSERT_EQ(exec.retry_policy().max_total_overhead_ms, 0.0);  // unbounded

  const auto r = exec.pattern(1, X_, v_, y_, 0, {});
  EXPECT_EQ(r.backend_used, Backend::kCpu);
  // The split taxonomy tells WHICH tier each degradation landed on.
  EXPECT_EQ(r.resilience.fallbacks_to_baseline, 1u);  // fused -> cusparse
  EXPECT_EQ(r.resilience.fallbacks_to_cpu, 1u);       // cusparse -> cpu
  EXPECT_EQ(r.resilience.fallbacks,
            r.resilience.fallbacks_to_baseline + r.resilience.fallbacks_to_cpu);
}

TEST(StreamingResilience, PanelsRetryToBitExactResult) {
  const auto X = la::uniform_sparse(20000, 200, 0.02, 23);
  const auto y = la::random_vector(200, 2);
  const auto v = la::random_vector(20000, 6);

  kernels::StreamingOptions opts;
  opts.panel_rows = 2000;  // force 10 panels

  vgpu::Device clean_dev;
  const auto clean =
      kernels::streaming_pattern_sparse(clean_dev, 1, X, v, y, 0, {}, opts);
  ASSERT_GT(clean.panels, 1);
  EXPECT_FALSE(clean.resilience.any());

  FaultInjector inj(mixed_faults(2.0));
  vgpu::Device faulty_dev;
  faulty_dev.set_fault_injector(&inj);
  const auto faulty =
      kernels::streaming_pattern_sparse(faulty_dev, 1, X, v, y, 0, {}, opts);

  EXPECT_EQ(clean.op.value, faulty.op.value);
  EXPECT_EQ(clean.panels, faulty.panels);
  EXPECT_GT(faulty.resilience.faults_seen, 0u);
  EXPECT_GT(faulty.resilience.retries, 0u);
  // Retry + backoff time is charged, so the faulty pipeline is slower.
  EXPECT_GT(faulty.pipeline_ms, clean.pipeline_ms);
  EXPECT_GT(faulty.resilience.overhead_ms(), 0.0);
}

TEST(SolverResilience, LrCgConvergesIdenticallyUnderFaults) {
  const auto X = la::uniform_sparse(10000, 300, 0.02, 31);
  const auto labels = la::regression_labels(X, 31, 0.05);
  const ml::LrCgConfig cfg{.max_iterations = 100, .eps = 1e-6,
                           .tolerance = 1e-10};

  vgpu::Device clean_dev;
  PatternExecutor clean(clean_dev, Backend::kFused);
  const auto a = ml::lr_cg(clean, X, labels, cfg);

  FaultInjector inj(mixed_faults());  // ~5% of launches/transfers fault
  vgpu::Device faulty_dev;
  faulty_dev.set_fault_injector(&inj);
  PatternExecutor faulty(faulty_dev, Backend::kFused);
  const auto b = ml::lr_cg(faulty, X, labels, cfg);

  EXPECT_TRUE(a.converged);
  EXPECT_TRUE(b.converged);
  EXPECT_EQ(a.stats.iterations, b.stats.iterations);
  EXPECT_EQ(a.weights, b.weights);  // bit-exact, not approximately equal
  EXPECT_GT(b.stats.resilience.faults_seen, 0u);
  EXPECT_GT(b.stats.resilience.retries, 0u);
  EXPECT_EQ(b.stats.resilience.fallbacks, 0u);
  EXPECT_GT(b.stats.total_modeled_ms(), a.stats.total_modeled_ms());
}

TEST(MemoryManagerResilience, TransferFaultsRetryWithChargedBackoff) {
  FaultConfig cfg;
  cfg.seed = 3;
  cfg.transfer_fault_rate = 0.5;
  FaultInjector inj(cfg);
  vgpu::Device dev;
  dev.set_fault_injector(&inj);
  sysml::MemoryManager mm(dev, 1u << 20);

  vgpu::Device clean_dev;
  sysml::MemoryManager clean(clean_dev, 1u << 20);

  double faulty_ms = 0.0, clean_ms = 0.0;
  for (sysml::TensorId id = 1; id <= 8; ++id) {
    mm.register_tensor(id, 10000, tensor_name(id));
    clean.register_tensor(id, 10000, tensor_name(id));
    faulty_ms += mm.ensure_on_device(id);
    clean_ms += clean.ensure_on_device(id);
  }
  const auto& rs = mm.stats().resilience;
  EXPECT_GT(rs.faults_seen, 0u);
  EXPECT_GT(rs.retries, 0u);
  EXPECT_GT(rs.recoveries, 0u);  // recovered every time: nothing threw
  EXPECT_GT(faulty_ms, clean_ms);
  EXPECT_NEAR(faulty_ms - clean_ms, rs.overhead_ms(), 1e-9);
  EXPECT_EQ(mm.stats().h2d_transfers, clean.stats().h2d_transfers);
}

TEST(MemoryManagerResilience, InjectedAllocOomEvictsGracefully) {
  vgpu::Device dev;
  sysml::MemoryManager mm(dev, 4096);
  mm.register_tensor(1, 1000, "a");
  mm.register_tensor(2, 1000, "b");
  mm.ensure_on_device(1);

  // Arm the injector only now: the next allocation draws a guaranteed OOM,
  // which the manager absorbs by evicting the LRU victim (tensor 1).
  FaultConfig cfg;
  cfg.seed = 3;
  cfg.oom_fault_rate = 1.0;
  FaultInjector inj(cfg);
  dev.set_fault_injector(&inj);

  EXPECT_NO_THROW(mm.ensure_on_device(2));
  EXPECT_TRUE(mm.on_device(2));
  EXPECT_FALSE(mm.on_device(1));
  EXPECT_EQ(mm.stats().evictions, 1u);
  EXPECT_EQ(mm.stats().resilience.faults_seen, 1u);
  EXPECT_EQ(mm.stats().resilience.recoveries, 1u);

  // With nothing left to evict the OOM is real and surfaces typed.
  mm.release(2);
  mm.release(1);
  mm.register_tensor(3, 4096, "c");
  EXPECT_THROW(mm.ensure_on_device(3), DeviceOomError);
}

TEST(RuntimeResilience, OversizedPatternStreamsInsteadOfThrowing) {
  // 2000 x 500 doubles = 8 MB of dense X against a 4 MB device: the tensor
  // can never be resident, so op_pattern must reroute through streaming.
  const auto X = la::dense_random(2000, 500, 13);
  const auto y = la::random_vector(500, 2);

  sysml::RuntimeOptions gpu_opts;
  gpu_opts.device_capacity = 4u << 20;
  vgpu::Device dev;
  sysml::Runtime rt(dev, gpu_opts);
  const auto Xid = rt.add_dense(X, "X");
  const auto yid = rt.add_vector(y, "y");
  const auto wid = rt.op_pattern(1, Xid, 0, yid, 0, 0);
  const auto w = rt.read_vector(wid);

  EXPECT_GE(rt.memory_stats().streaming_fallbacks, 1u);
  EXPECT_GE(rt.stats().gpu_ops, 1u);

  // Same script on the CPU-only runtime as the numeric reference.
  vgpu::Device cpu_dev;
  sysml::Runtime cpu_rt(cpu_dev, {.enable_gpu = false});
  const auto Xc = cpu_rt.add_dense(X, "X");
  const auto yc = cpu_rt.add_vector(y, "y");
  const auto wc = cpu_rt.read_vector(cpu_rt.op_pattern(1, Xc, 0, yc, 0, 0));
  ASSERT_EQ(w.size(), wc.size());
  for (usize i = 0; i < w.size(); ++i) {
    EXPECT_NEAR(w[i], wc[i], 1e-8 * (1.0 + std::abs(wc[i]))) << "i=" << i;
  }
}

TEST(RuntimeResilience, DagInterpreterAbsorbsFaultsBitExactly) {
  // Every Runtime op now dispatches through the registry's resilient loop
  // (the same one PatternExecutor uses): a whole DAG script under an armed
  // injector must retry its way to the SAME weights as the clean run, with
  // only modeled time differing. gpu_cost_bias forces the device path even
  // at test scale — faults only fire on device work.
  const auto X = la::uniform_sparse(4000, 300, 0.02, 51);
  const auto labels = la::classification_labels(X, 51, 0.1);
  ml::GdConfig cfg;
  cfg.iterations = 6;

  vgpu::Device clean_dev;
  sysml::Runtime clean_rt(clean_dev,
                          {.enable_gpu = true, .gpu_cost_bias = 1e-4});
  const auto a = ml::run_logreg_gd_script(
      clean_rt, X, labels, sysml::PlanMode::kPlanner, cfg);

  FaultInjector inj(mixed_faults());
  vgpu::Device faulty_dev;
  faulty_dev.set_fault_injector(&inj);
  sysml::Runtime faulty_rt(faulty_dev,
                           {.enable_gpu = true, .gpu_cost_bias = 1e-4});
  const auto b = ml::run_logreg_gd_script(
      faulty_rt, X, labels, sysml::PlanMode::kPlanner, cfg);

  EXPECT_EQ(a.weights, b.weights);  // bit-exact recovery
  EXPECT_GT(faulty_rt.resilience().faults_seen, 0u);
  EXPECT_GT(faulty_rt.resilience().retries, 0u);
  EXPECT_GT(b.runtime_stats.total_ms(), a.runtime_stats.total_ms());
  EXPECT_EQ(clean_rt.resilience().faults_seen, 0u);
}

TEST(RuntimeResilience, RuntimeBlas1FaultsRolledBackBeforeRetry) {
  // op_axpy/op_scal mutate tensors in place; the registry snapshots the
  // span so a mid-op fault cannot leave a half-updated vector behind.
  FaultConfig cfg;
  cfg.seed = 77;
  cfg.kernel_fault_rate = 0.4;
  FaultInjector inj(cfg);
  vgpu::Device dev;
  dev.set_fault_injector(&inj);
  sysml::Runtime rt(dev, {.enable_gpu = true, .gpu_cost_bias = 1e-4});

  vgpu::Device clean_dev;
  sysml::Runtime clean_rt(clean_dev,
                          {.enable_gpu = true, .gpu_cost_bias = 1e-4});

  const auto x = la::random_vector(5000, 7);
  const auto y = la::random_vector(5000, 8);
  const auto xa = rt.add_vector(x, "x");
  const auto ya = rt.add_vector(y, "y");
  const auto xb = clean_rt.add_vector(x, "x");
  const auto yb = clean_rt.add_vector(y, "y");
  for (int i = 0; i < 10; ++i) {
    rt.op_axpy(0.5, xa, ya);
    rt.op_scal(1.01, ya);
    clean_rt.op_axpy(0.5, xb, yb);
    clean_rt.op_scal(1.01, yb);
  }
  const auto got = rt.read_vector(ya);
  const auto want = clean_rt.read_vector(yb);
  EXPECT_GT(rt.resilience().faults_seen, 0u);
  EXPECT_EQ(std::vector<real>(want.begin(), want.end()),
            std::vector<real>(got.begin(), got.end()));
}

}  // namespace
}  // namespace fusedml
