// Silent-data-corruption defense, layer by layer:
//
//   - the fault injector draws kSilentCorruption at its own rate, on its
//     own deterministic seeded schedule, WITHOUT disturbing the signaled
//     fault schedule (the seed-determinism contract of fault_injector.h);
//   - the device books a silently-corrupted launch as a normal success and
//     only the pending-corruption handshake betrays it;
//   - the op registry perturbs exactly one seeded element, ABFT
//     verification (VerifyPolicy::kFull) turns that into a typed
//     SilentCorruptionError, and execute_resilient recomputes to the
//     bit-exact value;
//   - verification cost is billed exactly once (outcome launches/ms
//     include it; the verify_* sub-buckets break it out);
//   - the FALSE-POSITIVE ORACLE: with zero faults, full verification over
//     every ScriptLibrary entry (5 algorithms × {csr, dense} × 3 plan
//     modes) detects nothing and is bit-exact with verification off;
//   - SolverCheckpoint saves on cadence and rolls back transient faults
//     only, within its budget;
//   - the DeviceHealthBoard quarantines at the threshold, never drains the
//     last healthy device, and releases probation on the modeled clock.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.h"
#include "kernels/op_registry.h"
#include "la/convert.h"
#include "la/generate.h"
#include "la/vector_ops.h"
#include "ml/script_library.h"
#include "serve/device_health.h"
#include "sysml/checkpoint.h"
#include "sysml/runtime.h"
#include "vgpu/device.h"
#include "vgpu/fault_injector.h"

namespace fusedml {
namespace {

using kernels::Backend;
using kernels::OpRegistry;
using kernels::VerifyPolicy;

// --- Injector: silent rate, determinism, schedule isolation -----------------

TEST(SdcInjector, SilentRateIsHonoredAndDeterministic) {
  vgpu::FaultConfig cfg;
  cfg.seed = 99;
  cfg.silent_fault_rate = 0.05;
  vgpu::FaultInjector a(cfg);
  vgpu::FaultInjector b(cfg);

  constexpr int kDraws = 20000;
  int silent = 0;
  for (int i = 0; i < kDraws; ++i) {
    const auto fa = a.next_launch_fault();
    const auto fb = b.next_launch_fault();
    ASSERT_EQ(fa, fb) << "same seed must give the same schedule at draw " << i;
    if (fa == vgpu::FaultKind::kSilentCorruption) ++silent;
  }
  // ~5% of 20k draws, with generous slack for the uniform sampler.
  EXPECT_GT(silent, kDraws / 40);  // > 2.5%
  EXPECT_LT(silent, kDraws / 10);  // < 10%
  EXPECT_EQ(a.log().silent_faults, static_cast<std::uint64_t>(silent));
}

TEST(SdcInjector, SilentRateDoesNotPerturbSignaledSchedule) {
  // The silent band sits AFTER every signaled band in the threshold ladder,
  // so arming it must not move a single signaled fault at a given seed —
  // only convert some previously-clean draws. This is the contract that
  // keeps existing seeded chaos tests reproducible.
  vgpu::FaultConfig signaled;
  signaled.seed = 1234;
  signaled.kernel_fault_rate = 0.10;
  signaled.ecc_fault_rate = 0.05;
  signaled.oom_fault_rate = 0.02;
  vgpu::FaultConfig with_silent = signaled;
  with_silent.silent_fault_rate = 0.10;

  vgpu::FaultInjector base(signaled);
  vgpu::FaultInjector extended(with_silent);
  for (int i = 0; i < 5000; ++i) {
    const auto fb = base.next_launch_fault();
    const auto fe = extended.next_launch_fault();
    if (fb != vgpu::FaultKind::kNone) {
      ASSERT_EQ(fb, fe) << "signaled fault moved at draw " << i;
    } else {
      ASSERT_TRUE(fe == vgpu::FaultKind::kNone ||
                  fe == vgpu::FaultKind::kSilentCorruption)
          << "a clean draw may only become silent, at draw " << i;
    }
  }
}

// --- Device handshake -------------------------------------------------------

TEST(SdcDevice, SilentLaunchSucceedsAndArmsPendingCorruption) {
  vgpu::FaultConfig cfg;
  cfg.silent_fault_rate = 1.0;
  vgpu::FaultInjector injector(cfg);
  vgpu::Device dev;
  dev.set_fault_injector(&injector);

  vgpu::LaunchConfig lc;
  lc.grid_size = 4;
  lc.block_size = 32;
  int ran = 0;
  // The launch must return NORMALLY — that is what "silent" means.
  const auto stats = dev.launch(lc, [&](vgpu::BlockCtx&) { ++ran; });
  EXPECT_EQ(ran, 4);
  EXPECT_GT(stats.modeled_ms(), 0.0);
  EXPECT_EQ(dev.pending_silent_corruptions(), 1u);
  EXPECT_EQ(dev.silent_corruption_seq(), 1u);

  dev.launch(lc, [](vgpu::BlockCtx&) {});
  EXPECT_EQ(dev.pending_silent_corruptions(), 2u);
  EXPECT_EQ(dev.take_silent_corruptions(), 2u);
  EXPECT_EQ(dev.pending_silent_corruptions(), 0u);
  // The ordinal keeps counting across take() — it seeds the deterministic
  // element flip, so it must never repeat within a run.
  EXPECT_EQ(dev.silent_corruption_seq(), 2u);
}

// --- ABFT detection + resilient recompute -----------------------------------

TEST(SdcAbft, CorruptionIsSilentWithoutVerification) {
  const auto X = la::uniform_sparse(64, 24, 0.2, 7);
  const auto y = la::random_vector(24, 8);
  vgpu::Device clean_dev;
  OpRegistry clean_reg(clean_dev);
  const auto expect = clean_reg.product(Backend::kFused, X, y);

  vgpu::FaultConfig cfg;
  cfg.silent_fault_rate = 1.0;
  vgpu::FaultInjector injector(cfg);
  vgpu::Device dev;
  dev.set_fault_injector(&injector);
  OpRegistry reg(dev);  // policy defaults to kOff
  const auto corrupted = reg.product(Backend::kFused, X, y);

  // No error was raised, but the value is wrong — the defenseless baseline
  // this whole subsystem exists for.
  EXPECT_NE(la::max_abs_diff(expect.value, corrupted.value), 0.0);
  EXPECT_EQ(corrupted.resilience.faults_seen, 0u);
}

TEST(SdcAbft, FullVerificationThrowsTypedErrorWithPenalty) {
  const auto X = la::uniform_sparse(64, 24, 0.2, 7);
  const auto y = la::random_vector(24, 8);
  vgpu::FaultConfig cfg;
  cfg.silent_fault_rate = 1.0;
  vgpu::FaultInjector injector(cfg);
  vgpu::Device dev;
  dev.set_fault_injector(&injector);
  OpRegistry reg(dev);
  reg.set_verify_policy(VerifyPolicy::kFull);
  try {
    reg.product(Backend::kFused, X, y);
    FAIL() << "verified dispatch of a corrupted launch must throw";
  } catch (const SilentCorruptionError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kSilentCorruption);
    // The corrupted attempt's full modeled time is burned.
    EXPECT_GT(e.penalty_ms(), 0.0);
  }
}

TEST(SdcAbft, ExecuteResilientRecomputesBitExact) {
  const auto X = la::uniform_sparse(96, 40, 0.15, 11);
  const auto y = la::random_vector(40, 12);

  vgpu::FaultConfig cfg;
  cfg.seed = 5;
  cfg.silent_fault_rate = 0.5;
  vgpu::FaultInjector injector(cfg);
  vgpu::Device dev;
  dev.set_fault_injector(&injector);
  OpRegistry reg(dev);
  reg.set_verify_policy(VerifyPolicy::kFull);

  RetryPolicy policy;
  ResilienceStats session;
  const auto out = reg.execute_resilient(
      Backend::kFused, policy,
      [&](Backend b) { return reg.product(b, X, y); }, {}, &session);
  // Retries may have degraded tiers, so the oracle is a clean dispatch on
  // whichever backend finally produced the value (summation order differs
  // across tiers; WITHIN a tier results are bit-exact).
  vgpu::Device ref_dev;
  OpRegistry ref(ref_dev);
  const auto expect = ref.product(out.backend_used, X, y).value;
  ASSERT_EQ(out.value.size(), expect.size());
  for (usize i = 0; i < expect.size(); ++i) {
    ASSERT_EQ(out.value[i], expect[i]) << "element " << i;
  }
  // At a 50% silent rate the first attempts essentially cannot all be
  // clean; the defense must actually have fired.
  EXPECT_GT(session.sdc_detected, 0u);
  EXPECT_GT(session.wasted_ms, 0.0);
}

TEST(SdcAbft, VerificationBilledExactlyOnce) {
  const auto X = la::uniform_sparse(64, 24, 0.2, 7);
  const auto y = la::random_vector(24, 8);

  vgpu::Device dev_off;
  OpRegistry off(dev_off);
  const auto baseline = off.product(Backend::kFused, X, y);

  vgpu::Device dev_full;
  OpRegistry full(dev_full);
  full.set_verify_policy(VerifyPolicy::kFull);
  RetryPolicy policy;
  ResilienceStats session;
  const auto verified = full.execute_resilient(
      Backend::kFused, policy,
      [&](Backend b) { return full.product(b, X, y); }, {}, &session);

  // The declared verify cost is real launches, included in the totals and
  // broken out once — outcome totals minus the sub-bucket reproduce the
  // unverified run exactly.
  EXPECT_GT(verified.verify_launches, 0u);
  EXPECT_GT(verified.verify_ms, 0.0);
  EXPECT_EQ(verified.launches - verified.verify_launches, baseline.launches);
  EXPECT_NEAR(verified.modeled_ms - verified.verify_ms, baseline.modeled_ms,
              1e-12);
  // And the session aggregate saw the same bill exactly once.
  EXPECT_EQ(session.verify_launches, verified.verify_launches);
  EXPECT_EQ(session.verify_ms, verified.verify_ms);
  EXPECT_EQ(session.sdc_detected, 0u);
}

// --- The false-positive oracle ----------------------------------------------

// Full verification over the ENTIRE script library — every algorithm,
// both storage formats, all three plan modes — on fault-free devices. It
// must detect nothing and change nothing: weights bit-exact with the
// verification-off run. Any divergence means the checksum invariants are
// wrong for some kernel, which would poison every real detection.
TEST(SdcFalsePositiveOracle, FullVerifyIsExactOnCleanDevices) {
  const auto X = la::uniform_sparse(72, 28, 0.15, 31);
  const auto Xd = la::csr_to_dense(X);
  const auto labels = la::regression_labels(X, 9, 0.05);

  int covered = 0;
  for (const auto& spec : ml::script_library()) {
    SCOPED_TRACE(spec.name);
    // HITS needs a square matrix; cover it separately below.
    if (spec.algorithm == ml::Algorithm::kHits) continue;

    const auto run = [&](VerifyPolicy policy) {
      vgpu::Device dev;
      sysml::Runtime rt(dev, {.enable_gpu = true, .gpu_cost_bias = 1e-4});
      rt.set_verify_policy(policy);
      sysml::ScriptResult r = spec.dense
                                  ? spec.run_dense(rt, Xd, labels, 2)
                                  : spec.run_sparse(rt, X, labels, 2);
      EXPECT_EQ(rt.resilience().sdc_detected, 0u)
          << "false positive under " << spec.name;
      EXPECT_EQ(rt.resilience().faults_seen, 0u);
      return r;
    };
    const auto off = run(VerifyPolicy::kOff);
    const auto full = run(VerifyPolicy::kFull);
    ASSERT_EQ(off.weights.size(), full.weights.size());
    for (usize i = 0; i < off.weights.size(); ++i) {
      ASSERT_EQ(off.weights[i], full.weights[i]) << "weight " << i;
    }
    EXPECT_EQ(off.iterations, full.iterations);
    // Verification must be visible in the accounting, not a silent no-op
    // (GPU scripts issue verifiable matrix/vector ops in every mode).
    EXPECT_GT(full.runtime_stats.verify_launches +
                  static_cast<std::uint64_t>(full.runtime_stats.verify_ms > 0),
              0u)
        << "kFull billed no verification for " << spec.name;
    ++covered;
  }
  EXPECT_EQ(covered, 8 * 2 * 3);  // 8 non-HITS algorithms × storage × modes

  // HITS: square link matrix, labels ignored.
  const auto L = la::uniform_sparse(48, 48, 0.08, 33);
  const auto Ld = la::csr_to_dense(L);
  for (const auto& spec : ml::script_library()) {
    if (spec.algorithm != ml::Algorithm::kHits) continue;
    SCOPED_TRACE(spec.name);
    const auto run = [&](VerifyPolicy policy) {
      vgpu::Device dev;
      sysml::Runtime rt(dev, {.enable_gpu = true, .gpu_cost_bias = 1e-4});
      rt.set_verify_policy(policy);
      sysml::ScriptResult r = spec.dense ? spec.run_dense(rt, Ld, {}, 2)
                                         : spec.run_sparse(rt, L, {}, 2);
      EXPECT_EQ(rt.resilience().sdc_detected, 0u);
      return r;
    };
    const auto off = run(VerifyPolicy::kOff);
    const auto full = run(VerifyPolicy::kFull);
    ASSERT_EQ(off.weights.size(), full.weights.size());
    for (usize i = 0; i < off.weights.size(); ++i) {
      ASSERT_EQ(off.weights[i], full.weights[i]) << "weight " << i;
    }
    ++covered;
  }
  EXPECT_EQ(covered, 9 * 2 * 3);  // the whole library
}

// --- Solver checkpoint/rollback ---------------------------------------------

TEST(SdcCheckpoint, SavesOnCadenceAndRollsBackTransientFaults) {
  vgpu::Device dev;
  sysml::Runtime rt(dev, {});
  sysml::SolverCheckpoint ckpt(rt, /*interval=*/2, /*max_rollbacks=*/2);

  std::vector<real> w = {1, 2, 3};
  real scalar = 10;
  ckpt.track_vector([&] { return w; },
                    [&](const std::vector<real>& s) { w = s; });
  ckpt.track_scalar([&] { return scalar; }, [&](real s) { scalar = s; });

  ckpt.save_if_due(0);
  EXPECT_EQ(ckpt.saves(), 1);
  ckpt.save_if_due(1);  // off-cadence, snapshot exists → no save
  EXPECT_EQ(ckpt.saves(), 1);

  w = {7, 8, 9};
  scalar = -1;
  int resume = -1;
  try {
    throw SilentCorruptionError("abft check failed", 0.5);
  } catch (const Error& e) {
    resume = ckpt.rollback(e);
  }
  EXPECT_EQ(resume, 0);
  EXPECT_EQ(w, (std::vector<real>{1, 2, 3}));
  EXPECT_EQ(scalar, 10);
  EXPECT_EQ(ckpt.rollbacks(), 1);
  EXPECT_EQ(rt.resilience().rollbacks, 1u);

  // Non-transient faults pass through untouched.
  EXPECT_THROW(
      {
        try {
          throw Error("logic bug");
        } catch (const Error& e) {
          ckpt.rollback(e);
        }
      },
      Error);
  EXPECT_EQ(ckpt.rollbacks(), 1);

  // The budget bounds rollback loops: after max_rollbacks, even transient
  // faults rethrow.
  try {
    throw TransferError("pcie", 0.1);
  } catch (const Error& e) {
    ckpt.rollback(e);
  }
  EXPECT_FALSE(ckpt.can_rollback());
  EXPECT_THROW(
      {
        try {
          throw TransferError("pcie", 0.1);
        } catch (const Error& e) {
          ckpt.rollback(e);
        }
      },
      TransferError);
}

// --- Device health board ----------------------------------------------------

TEST(SdcQuarantine, ThresholdProbationAndLastHealthyGuard) {
  serve::QuarantineConfig cfg;
  cfg.sdc_threshold = 2;
  cfg.probation_ms = 10.0;
  double now = 0.0;
  serve::DeviceHealthBoard board(cfg, /*workers=*/3, [&] { return now; });

  board.report_sdc(0, 1);
  EXPECT_FALSE(board.quarantined(0));
  EXPECT_EQ(board.sdc_count(0), 1u);
  board.report_sdc(0, 1);
  EXPECT_TRUE(board.quarantined(0));
  EXPECT_EQ(board.quarantines(), 1u);

  board.report_sdc(1, 5);
  EXPECT_TRUE(board.quarantined(1));

  // Worker 2 is the LAST healthy device — it must keep serving no matter
  // how many detections it accumulates.
  board.report_sdc(2, 100);
  EXPECT_FALSE(board.quarantined(2));

  // Probation expires on the modeled clock; the device re-enters with a
  // cleared count.
  now = 10.1;
  EXPECT_FALSE(board.quarantined(0));
  EXPECT_FALSE(board.quarantined(1));
  EXPECT_EQ(board.reentries(), 2u);
  EXPECT_EQ(board.sdc_count(0), 0u);

  // Zero-count reports are free; a disabled board never quarantines.
  board.report_sdc(0, 0);
  EXPECT_EQ(board.sdc_count(0), 0u);
  serve::QuarantineConfig off;
  off.enabled = false;
  off.sdc_threshold = 1;
  serve::DeviceHealthBoard disabled(off, 2, [&] { return now; });
  disabled.report_sdc(0, 50);
  EXPECT_FALSE(disabled.quarantined(0));
  EXPECT_EQ(disabled.quarantines(), 0u);
}

}  // namespace
}  // namespace fusedml
