// Tests for the paper's extension points: out-of-core streaming execution
// (§3's streaming design) and hybrid CPU+GPU execution (§5 future work).
#include <gtest/gtest.h>

#include "common/error.h"
#include "kernels/hybrid.h"
#include "kernels/streaming.h"
#include "la/generate.h"
#include "la/vector_ops.h"
#include "test_util.h"

namespace fusedml::kernels {
namespace {

using la::random_vector;
using la::uniform_sparse;
using test::expect_vectors_near;

// --- Row slicing ----------------------------------------------------------

TEST(RowSlice, SliceMatchesOriginalRows) {
  const auto X = uniform_sparse(100, 40, 0.2, 701);
  const auto S = csr_row_slice(X, 20, 50);
  ASSERT_EQ(S.rows(), 30);
  ASSERT_EQ(S.cols(), X.cols());
  for (index_t r = 0; r < 30; ++r) {
    ASSERT_EQ(S.row_nnz(r), X.row_nnz(r + 20));
    for (offset_t i = 0; i < S.row_nnz(r); ++i) {
      EXPECT_EQ(S.col_idx()[static_cast<usize>(S.row_begin(r) + i)],
                X.col_idx()[static_cast<usize>(X.row_begin(r + 20) + i)]);
      EXPECT_EQ(S.values()[static_cast<usize>(S.row_begin(r) + i)],
                X.values()[static_cast<usize>(X.row_begin(r + 20) + i)]);
    }
  }
}

TEST(RowSlice, EdgeSlices) {
  const auto X = uniform_sparse(50, 20, 0.2, 702);
  EXPECT_EQ(csr_row_slice(X, 0, 50), X);
  EXPECT_EQ(csr_row_slice(X, 10, 10).rows(), 0);
  EXPECT_THROW(csr_row_slice(X, 30, 20), Error);
  EXPECT_THROW(csr_row_slice(X, 0, 51), Error);
}

TEST(RowSlice, SlicesConcatenateToWhole) {
  const auto X = uniform_sparse(77, 30, 0.15, 703);
  const auto y = random_vector(30, 1);
  auto full = la::reference::spmv(X, y);
  std::vector<real> stitched;
  for (index_t r0 = 0; r0 < 77; r0 += 13) {
    const auto r1 = std::min<index_t>(77, r0 + 13);
    const auto part =
        la::reference::spmv(csr_row_slice(X, r0, r1), y);
    stitched.insert(stitched.end(), part.begin(), part.end());
  }
  expect_vectors_near(full, stitched);
}

// --- Streaming (out-of-core) ------------------------------------------------

TEST(Streaming, MatchesInCoreFusedResult) {
  vgpu::Device dev;
  const auto X = uniform_sparse(3000, 200, 0.05, 711);
  const auto y = random_vector(200, 2);
  const auto v = random_vector(3000, 3);
  const auto z = random_vector(200, 4);
  const auto expect = la::reference::pattern(1.5, X, v, y, -0.5, z);

  StreamingOptions opts;
  opts.panel_rows = 700;  // forces 5 panels
  const auto r = streaming_pattern_sparse(dev, 1.5, X, v, y, -0.5, z, opts);
  expect_vectors_near(expect, r.op.value);
  EXPECT_EQ(r.panels, 5);
  EXPECT_GT(r.transfer_ms, 0.0);
}

TEST(Streaming, SinglePanelWhenItFits) {
  vgpu::Device dev;
  const auto X = uniform_sparse(500, 100, 0.1, 712);
  const auto y = random_vector(100, 5);
  const auto r = streaming_pattern_sparse(dev, 1, X, {}, y, 0, {});
  EXPECT_EQ(r.panels, 1);
  expect_vectors_near(la::reference::pattern(1, X, {}, y, 0, {}),
                      r.op.value);
}

TEST(Streaming, OverlapBeatsSerialPipeline) {
  vgpu::Device dev;
  const auto X = uniform_sparse(20000, 300, 0.05, 713);
  const auto y = random_vector(300, 6);
  StreamingOptions overlap, serial;
  overlap.panel_rows = serial.panel_rows = 2500;
  serial.overlap_transfers = false;
  const auto a = streaming_pattern_sparse(dev, 1, X, {}, y, 0, {}, overlap);
  const auto b = streaming_pattern_sparse(dev, 1, X, {}, y, 0, {}, serial);
  EXPECT_LT(a.pipeline_ms, b.pipeline_ms);
  EXPECT_LT(a.overlap_efficiency(), 1.0);
  EXPECT_NEAR(b.overlap_efficiency(), 1.0, 1e-9);
}

TEST(Streaming, BudgetDerivesSanePanels) {
  const auto X = uniform_sparse(10000, 200, 0.05, 714);
  // Budget a quarter of the matrix: expect several panels.
  const usize budget = X.bytes() / 4 + (1 << 21);
  const auto rows = derive_panel_rows(X, budget);
  EXPECT_GT(rows, 0);
  EXPECT_LT(rows, X.rows());
  EXPECT_THROW(derive_panel_rows(X, 100), Error);  // absurd budget
}

TEST(Streaming, BetaZAppliedExactlyOnce) {
  vgpu::Device dev;
  const auto X = uniform_sparse(900, 50, 0.1, 715);
  const auto y = random_vector(50, 7);
  const auto z = random_vector(50, 8);
  StreamingOptions opts;
  opts.panel_rows = 100;  // 9 panels: a per-panel beta bug would show 9x
  const auto r = streaming_pattern_sparse(dev, 1, X, {}, y, 3.0, z, opts);
  expect_vectors_near(la::reference::pattern(1, X, {}, y, 3.0, z),
                      r.op.value);
}

TEST(StreamingDense, MatchesInCoreFusedResult) {
  vgpu::Device dev;
  const auto X = la::dense_random(1200, 96, 716);
  const auto y = random_vector(96, 20);
  const auto v = random_vector(1200, 21);
  const auto z = random_vector(96, 22);
  const auto expect = la::reference::pattern(0.5, X, v, y, 1.5, z);
  DenseStreamingOptions opts;
  opts.panel_rows = 250;  // 5 panels
  const auto r =
      streaming_pattern_dense(dev, 0.5, X, v, y, 1.5, z, opts);
  expect_vectors_near(expect, r.op.value, 1e-8);
  EXPECT_EQ(r.panels, 5);
}

TEST(StreamingDense, RowSliceMatches) {
  const auto X = la::dense_random(40, 10, 717);
  const auto S = dense_row_slice(X, 5, 25);
  ASSERT_EQ(S.rows(), 20);
  for (index_t r = 0; r < 20; ++r) {
    for (index_t c = 0; c < 10; ++c) {
      EXPECT_EQ(S.at(r, c), X.at(r + 5, c));
    }
  }
}

TEST(StreamingDense, BudgetDrivesPanelCount) {
  vgpu::Device dev;
  const auto X = la::dense_random(4000, 64, 718);
  const auto y = random_vector(64, 23);
  DenseStreamingOptions opts;
  opts.device_budget_bytes = X.bytes() / 3 + (1 << 20);
  const auto r = streaming_pattern_dense(dev, 1, X, {}, y, 0, {}, opts);
  EXPECT_GT(r.panels, 1);
  expect_vectors_near(la::reference::pattern(1, X, {}, y, 0, {}),
                      r.op.value, 1e-8);
}

// --- Hybrid CPU+GPU -----------------------------------------------------------

TEST(Hybrid, MatchesReferenceAtAnySplit) {
  vgpu::Device dev;
  const auto X = uniform_sparse(2000, 150, 0.05, 721);
  const auto y = random_vector(150, 9);
  const auto v = random_vector(2000, 10);
  const auto z = random_vector(150, 11);
  const auto expect = la::reference::pattern(2.0, X, v, y, 0.5, z);
  for (double f : {0.0, 0.3, 0.5, 0.9, 1.0}) {
    HybridOptions opts;
    opts.gpu_fraction = f;
    const auto r = hybrid_pattern_sparse(dev, 2.0, X, v, y, 0.5, z, opts);
    expect_vectors_near(expect, r.value);
    EXPECT_NEAR(r.gpu_fraction, f, 1e-12);
  }
}

TEST(Hybrid, AutoSplitFavorsTheGpu) {
  vgpu::Device dev;
  const CpuBackend cpu;
  const auto X = uniform_sparse(1000, 100, 0.05, 722);
  const double f = choose_split(dev, cpu, X);
  EXPECT_GT(f, 0.7) << "a 288 GB/s device should take most of the rows";
  EXPECT_LT(f, 1.0) << "but the CPU contributes something";
}

TEST(Hybrid, BalancedSplitBeatsEitherAlone) {
  vgpu::Device dev;
  const auto X = uniform_sparse(60000, 400, 0.02, 723);
  const auto y = random_vector(400, 12);
  HybridOptions gpu_only, cpu_only;
  gpu_only.gpu_fraction = 1.0;
  cpu_only.gpu_fraction = 0.0;
  const auto g = hybrid_pattern_sparse(dev, 1, X, {}, y, 0, {}, gpu_only);
  const auto c = hybrid_pattern_sparse(dev, 1, X, {}, y, 0, {}, cpu_only);
  const auto h = hybrid_pattern_sparse(dev, 1, X, {}, y, 0, {});
  EXPECT_LT(h.total_ms, c.total_ms);
  // The combine overhead is tiny, so the balanced split should not lose
  // to GPU-only by more than that overhead.
  EXPECT_LT(h.total_ms, g.total_ms + h.combine_ms + 1e-9);
  expect_vectors_near(g.value, h.value, 1e-7);
}

TEST(Hybrid, SidesOverlapInTotalTime) {
  vgpu::Device dev;
  const auto X = uniform_sparse(5000, 100, 0.1, 724);
  const auto y = random_vector(100, 13);
  HybridOptions opts;
  opts.gpu_fraction = 0.5;
  const auto r = hybrid_pattern_sparse(dev, 1, X, {}, y, 0, {}, opts);
  EXPECT_GE(r.total_ms, std::max(r.gpu_ms, r.cpu_ms));
  EXPECT_LT(r.total_ms, r.gpu_ms + r.cpu_ms + r.combine_ms);
}

}  // namespace
}  // namespace fusedml::kernels
