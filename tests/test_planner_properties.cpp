// Seeded random-DAG property suite for the explore/select/rewrite fusion
// planner. Each seed builds a random operator DAG from the bit-preserving
// vocabulary (mv / ewise chains / maps / the sddmm chain — no mvt, so no
// Equation-1 site and no reassociating kernel can be selected) and asserts
// the planner's core contracts:
//   - the planned DAG is BIT-EXACT vs the unfused interpretation;
//   - the planner's launch prediction matches what the interpreter runs
//     (zero plan-vs-actual drift);
//   - fusion never increases launches or modeled time;
//   - planning is deterministic for a fixed DAG and fixed options;
//   - exact overlap resolution (within candidate_budget) never loses to
//     the greedy fallback, and a fixed oracle DAG shows it strictly
//     winning — the case greedy's one-step lookahead cannot see.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/rng.h"
#include "la/generate.h"
#include "sysml/dag.h"
#include "sysml/fusion_planner.h"
#include "sysml/runtime.h"
#include "vgpu/device.h"

namespace fusedml {
namespace {

using sysml::NodePtr;

sysml::RuntimeOptions forced_gpu() {
  return {.enable_gpu = true, .gpu_cost_bias = 1e-4};
}

real square_map(real x) { return x * x; }
real identity_map(real x) { return x; }

/// Random DAG over one CSR leaf: a pool of row-space (length m) and
/// column-space (length n) vector values grown by random ops. Every planner
/// family except Equation-1 can arise; all of them are bit-preserving.
NodePtr random_dag(sysml::Runtime& rt, const la::CsrMatrix& X,
                   sysml::TensorId Xid, Rng& rng) {
  const auto m = static_cast<usize>(X.rows());
  const auto n = static_cast<usize>(X.cols());
  std::vector<NodePtr> rows, cols;
  for (int i = 0; i < 2; ++i) {
    rows.push_back(sysml::input_vector(
        rt.add_vector(la::random_vector(m, rng.next_u64()), "rm")));
    cols.push_back(sysml::input_vector(
        rt.add_vector(la::random_vector(n, rng.next_u64()), "cn")));
  }
  const auto pick = [&](std::vector<NodePtr>& pool) {
    return pool[static_cast<usize>(rng.uniform_index(pool.size()))];
  };
  const int ops = 8 + static_cast<int>(rng.uniform_index(8));
  for (int i = 0; i < ops; ++i) {
    auto& pool = rng.uniform_index(2) == 0 ? rows : cols;
    switch (rng.uniform_index(6)) {
      case 0:
        pool.push_back(sysml::scale(rng.uniform(0.5, 2.0), pick(pool)));
        break;
      case 1:
        pool.push_back(sysml::add(pick(pool), pick(pool)));
        break;
      case 2:
        pool.push_back(sysml::ewise_mul(pick(pool), pick(pool)));
        break;
      case 3:
        pool.push_back(sysml::map(pick(pool), square_map, "sq"));
        break;
      case 4:
        rows.push_back(sysml::mv(sysml::input_matrix(Xid), pick(cols)));
        break;
      case 5:
        // The sddmm chain: (X ⊙ f(u v^T)) * z evaluated at X's nonzeros.
        rows.push_back(sysml::mv(
            sysml::sparse_mask(sysml::input_matrix(Xid),
                               sysml::outer_map(pick(rows), pick(cols),
                                                identity_map, "id")),
            pick(cols)));
        break;
    }
  }
  // Fold every row-space value into one root so all of them are reachable.
  NodePtr root = rows.front();
  for (usize i = 1; i < rows.size(); ++i) root = sysml::add(root, rows[i]);
  return root;
}

std::vector<real> run_root(sysml::Runtime& rt, const NodePtr& root,
                           std::uint64_t* launches = nullptr) {
  const auto before = rt.stats().kernel_launches;
  const auto view = rt.read_vector(sysml::execute(rt, root));
  if (launches != nullptr) {
    *launches = rt.stats().kernel_launches - before;
  }
  return {view.begin(), view.end()};
}

TEST(PlannerProperties, RandomDagsBitExactDriftFreeDeterministic) {
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    vgpu::Device dev;
    sysml::Runtime rt(dev, forced_gpu());
    const auto X = la::uniform_sparse(120, 40, 0.15, 7000 + seed);
    const auto Xid = rt.add_sparse(X, "X");
    Rng rng(seed);
    const NodePtr root = random_dag(rt, X, Xid, rng);

    std::uint64_t unfused_launches = 0;
    const auto unfused = run_root(rt, root, &unfused_launches);

    const sysml::PlannerOptions po;
    const auto plan = sysml::plan_fusion(rt, root, po);
    const auto plan2 = sysml::plan_fusion(rt, root, po);
    // Deterministic: planning the same DAG twice yields the same plan.
    EXPECT_EQ(plan.explain(), plan2.explain()) << "seed " << seed;

    // The cost model's view of the unfused DAG matches the interpreter.
    EXPECT_EQ(plan.launches_unfused, unfused_launches) << "seed " << seed;
    // Fusion never costs launches or modeled time.
    EXPECT_LE(plan.launches_planned, plan.launches_unfused)
        << "seed " << seed;
    EXPECT_LE(plan.modeled_planned_ms,
              plan.modeled_unfused_ms * (1.0 + 1e-9))
        << "seed " << seed;

    // Zero plan-vs-actual drift AND bit-exactness of the rewritten DAG.
    std::uint64_t planned_launches = 0;
    const auto planned = run_root(rt, plan.root, &planned_launches);
    EXPECT_EQ(planned_launches, plan.launches_planned) << "seed " << seed;
    EXPECT_EQ(unfused, planned) << "seed " << seed;
  }
}

TEST(PlannerProperties, BudgetSelectsExactAndGreedyNeverBeatsExact) {
  int greedy_plans_with_groups = 0;
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    vgpu::Device dev;
    sysml::Runtime rt(dev, forced_gpu());
    const auto X = la::uniform_sparse(120, 40, 0.15, 7100 + seed);
    const auto Xid = rt.add_sparse(X, "X");
    Rng rng(seed);
    const NodePtr root = random_dag(rt, X, Xid, rng);

    sysml::PlannerOptions exact_po;
    exact_po.candidate_budget = 1 << 20;  // everything fits: exact
    sysml::PlannerOptions greedy_po;
    greedy_po.candidate_budget = 0;  // nothing fits: always greedy

    const auto exact = sysml::plan_fusion(rt, root, exact_po);
    const auto greedy = sysml::plan_fusion(rt, root, greedy_po);

    // The budget knob is respected in both directions.
    EXPECT_TRUE(exact.selection_exact) << "seed " << seed;
    if (!greedy.groups.empty()) {
      EXPECT_FALSE(greedy.selection_exact) << "seed " << seed;
      ++greedy_plans_with_groups;
    }
    // Optimal set packing can never be worse than the greedy fallback.
    EXPECT_LE(exact.modeled_planned_ms,
              greedy.modeled_planned_ms * (1.0 + 1e-9))
        << "seed " << seed;
    EXPECT_LE(exact.launches_planned, greedy.launches_planned)
        << "seed " << seed;

    // Both still bit-exact vs unfused, whatever they selected.
    const auto unfused = run_root(rt, root);
    EXPECT_EQ(unfused, run_root(rt, exact.root)) << "seed " << seed;
    EXPECT_EQ(unfused, run_root(rt, greedy.root)) << "seed " << seed;
  }
  // The sweep must actually have exercised the greedy path.
  EXPECT_GT(greedy_plans_with_groups, 0);
}

// The fixed-DAG oracle: the Equation-1 matcher emits nested candidates at
// three extents of the same site (bare mvt / +scale / +add), the glue ops
// also sit inside an elementwise region, and two row templates overlap the
// rest. Greedy's one-step pair lookahead cascades: it kills the full-extent
// equation1 candidate because {bare-extent, ewise-region} jointly beat it,
// then kills the ewise region because {mid-extent, row} beat THAT, and
// settles for the mid extent — leaving the add glue as its own launch.
// Exact weighted set packing keeps the full extent, so the exact plan is
// strictly cheaper in modeled time AND in planned launches.
TEST(PlannerProperties, ExactSelectionBeatsGreedyOnOverlapOracle) {
  vgpu::Device dev;
  sysml::Runtime rt(dev, forced_gpu());
  // m*density ~ 2 nonzeros per column keeps the matrix pass ~3 column
  // streams, which puts the candidate benefits in the order the cascade
  // needs (full > region > mid > row' > bare > row).
  const auto X = la::uniform_sparse(2000, 8000, 0.001, 7311);
  const auto Z = la::uniform_sparse(8000, 16, 0.05, 7313);
  const auto Xid = rt.add_sparse(X, "X");
  const auto Zid = rt.add_sparse(Z, "Z");

  const auto Xn = sysml::input_matrix(Xid);
  const auto y = sysml::input_vector(
      rt.add_vector(la::random_vector(8000, 1), "y"));
  const auto v = sysml::input_vector(
      rt.add_vector(la::random_vector(2000, 2), "v"));
  const auto z = sysml::input_vector(
      rt.add_vector(la::random_vector(8000, 3), "z"));
  const auto u = sysml::input_vector(
      rt.add_vector(la::random_vector(16, 4), "u"));

  // Equation-1 site with scale+add glue: a = 2 * X^T (v ⊙ X y) + z.
  // Candidates at three extents: {mv,mul,mvt}, +scale, +scale+add.
  const auto p = sysml::mv(Xn, y);
  const auto mu = sysml::ewise_mul(v, p);
  const auto q = sysml::mvt(Xn, mu);
  const auto s = sysml::scale(2.0, q);
  const auto a = sysml::add(s, z);

  // Second branch: a row template over Z whose chain absorbs the merge,
  // so it overlaps the ewise region {s, a, d1, root} on {d1, root}.
  const auto p2 = sysml::mv(sysml::input_matrix(Zid), u);
  const auto d1 = sysml::map(p2, square_map, "sq");
  const auto root = sysml::add(a, d1);

  sysml::PlannerOptions exact_po;
  sysml::PlannerOptions greedy_po;
  greedy_po.candidate_budget = 0;

  const auto exact = sysml::plan_fusion(rt, root, exact_po);
  const auto greedy = sysml::plan_fusion(rt, root, greedy_po);
  ASSERT_TRUE(exact.selection_exact);
  ASSERT_FALSE(greedy.selection_exact);

  EXPECT_LT(exact.modeled_planned_ms, greedy.modeled_planned_ms)
      << "exact:\n" << exact.explain() << "greedy:\n" << greedy.explain();
  EXPECT_LT(exact.launches_planned, greedy.launches_planned);

  // Both plans fuse an Equation-1 extent (which reassociates the scale),
  // so the comparison vs unfused is numeric, not bitwise — but both must
  // still run with exactly the launches their plan predicted.
  const auto unfused = run_root(rt, root);
  real scale_ref = 0;
  for (const real x : unfused) scale_ref = std::max(scale_ref, std::abs(x));
  for (const auto* plan : {&exact, &greedy}) {
    std::uint64_t launches = 0;
    const auto planned = run_root(rt, plan->root, &launches);
    EXPECT_EQ(launches, plan->launches_planned) << plan->explain();
    ASSERT_EQ(planned.size(), unfused.size());
    real diff = 0;
    for (usize i = 0; i < unfused.size(); ++i) {
      diff = std::max(diff, std::abs(planned[i] - unfused[i]));
    }
    EXPECT_LE(diff, 1e-9 * (1.0 + scale_ref)) << plan->explain();
  }
}

}  // namespace
}  // namespace fusedml
