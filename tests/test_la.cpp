// Unit tests for the linear-algebra substrate: matrix formats, validation,
// conversions (including the csr2csc transpose), vector ops, generators, and
// Matrix Market I/O.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "common/error.h"
#include "la/convert.h"
#include "la/coo_matrix.h"
#include "la/csr_matrix.h"
#include "la/dense_matrix.h"
#include "la/generate.h"
#include "la/io.h"
#include "la/vector_ops.h"
#include "test_util.h"

namespace fusedml::la {
namespace {

CsrMatrix small_csr() {
  // [ 1 0 2 ]
  // [ 0 0 0 ]
  // [ 3 4 0 ]
  return CsrMatrix(3, 3, {0, 2, 2, 4}, {0, 2, 0, 1}, {1, 2, 3, 4});
}

TEST(CsrMatrix, BasicAccessors) {
  const auto m = small_csr();
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.nnz(), 4);
  EXPECT_EQ(m.row_nnz(0), 2);
  EXPECT_EQ(m.row_nnz(1), 0);
  EXPECT_EQ(m.max_nnz_per_row(), 2);
  EXPECT_NEAR(m.mean_nnz_per_row(), 4.0 / 3.0, 1e-12);
}

TEST(CsrMatrix, ValidationRejectsBadStructures) {
  // Wrong row_off length.
  EXPECT_THROW(CsrMatrix(3, 3, {0, 1}, {0}, {1.0}), Error);
  // Non-monotone row_off.
  EXPECT_THROW(CsrMatrix(2, 2, {0, 2, 1}, {0, 1}, {1, 2}), Error);
  // Column out of range.
  EXPECT_THROW(CsrMatrix(1, 2, {0, 1}, {5}, {1.0}), Error);
  // Duplicate column in a row.
  EXPECT_THROW(CsrMatrix(1, 3, {0, 2}, {1, 1}, {1, 2}), Error);
  // row_off[rows] != nnz.
  EXPECT_THROW(CsrMatrix(1, 3, {0, 5}, {0}, {1.0}), Error);
}

TEST(DenseMatrix, RowSpanAndPadding) {
  DenseMatrix m(2, 3);
  m.at(0, 0) = 1;
  m.at(1, 2) = 5;
  EXPECT_EQ(m.row(1).size(), 3u);
  EXPECT_DOUBLE_EQ(m.row(1)[2], 5.0);

  const auto padded = m.padded_cols(4);
  EXPECT_EQ(padded.cols(), 4);
  EXPECT_DOUBLE_EQ(padded.at(1, 2), 5.0);
  EXPECT_DOUBLE_EQ(padded.at(1, 3), 0.0);
  // Already a multiple: unchanged.
  EXPECT_EQ(m.padded_cols(3).cols(), 3);
}

TEST(DenseMatrix, PaddedVector) {
  const std::vector<real> v = {1, 2, 3};
  const auto p = padded_vector(v, 4);
  ASSERT_EQ(p.size(), 4u);
  EXPECT_DOUBLE_EQ(p[3], 0.0);
}

TEST(Coo, NormalizeSortsAndMerges) {
  CooMatrix coo(3, 3);
  coo.add(2, 1, 1.0);
  coo.add(0, 0, 2.0);
  coo.add(2, 1, 3.0);  // duplicate -> summed
  coo.normalize();
  ASSERT_EQ(coo.nnz(), 2);
  EXPECT_EQ(coo.triplets()[0].row, 0);
  EXPECT_DOUBLE_EQ(coo.triplets()[1].value, 4.0);
}

TEST(Convert, CooToCsrMatchesDense) {
  CooMatrix coo(2, 3);
  coo.add(1, 2, 7.0);
  coo.add(0, 1, 3.0);
  const auto csr = coo_to_csr(coo);
  const auto dense = csr_to_dense(csr);
  EXPECT_DOUBLE_EQ(dense.at(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(dense.at(1, 2), 7.0);
  EXPECT_DOUBLE_EQ(dense.at(0, 0), 0.0);
}

TEST(Convert, TransposeRoundTrip) {
  const auto X = uniform_sparse(50, 37, 0.1, 123);
  const auto Xt = transpose(X);
  EXPECT_EQ(Xt.rows(), 37);
  EXPECT_EQ(Xt.cols(), 50);
  EXPECT_EQ(Xt.nnz(), X.nnz());
  const auto Xtt = transpose(Xt);
  EXPECT_EQ(Xtt, X);
}

TEST(Convert, TransposeMatchesDenseTranspose) {
  const auto X = uniform_sparse(20, 30, 0.2, 7);
  const auto d1 = csr_to_dense(transpose(X));
  const auto d2 = transpose(csr_to_dense(X));
  EXPECT_EQ(d1, d2);
}

TEST(Convert, DenseToCsrDropsZeros) {
  DenseMatrix d(2, 2);
  d.at(0, 0) = 1.0;
  const auto csr = dense_to_csr(d);
  EXPECT_EQ(csr.nnz(), 1);
}

TEST(VectorOps, Blas1Basics) {
  std::vector<real> x = {1, 2, 3};
  std::vector<real> y = {4, 5, 6};
  axpy(2.0, x, y);
  test::expect_vectors_near(std::vector<real>{6, 9, 12}, y);
  scal(0.5, y);
  test::expect_vectors_near(std::vector<real>{3, 4.5, 6}, y);
  EXPECT_DOUBLE_EQ(dot(x, x), 14.0);
  EXPECT_DOUBLE_EQ(nrm2(std::vector<real>{3, 4}), 5.0);
  std::vector<real> out(3);
  ewise_mul(x, x, out);
  test::expect_vectors_near(std::vector<real>{1, 4, 9}, out);
}

TEST(VectorOps, SizeMismatchThrows) {
  std::vector<real> a(3), b(4);
  EXPECT_THROW(axpy(1.0, a, b), Error);
  EXPECT_THROW(dot(a, b), Error);
}

TEST(Reference, SpmvMatchesDense) {
  const auto X = uniform_sparse(40, 25, 0.15, 99);
  const auto Xd = csr_to_dense(X);
  const auto y = random_vector(25, 5);
  test::expect_vectors_near(reference::gemv(Xd, y), reference::spmv(X, y));
}

TEST(Reference, SpmvTransposedMatchesExplicitTranspose) {
  const auto X = uniform_sparse(40, 25, 0.15, 99);
  const auto y = random_vector(40, 6);
  test::expect_vectors_near(reference::spmv(transpose(X), y),
                            reference::spmv_transposed(X, y));
}

TEST(Reference, PatternSparseEqualsComposition) {
  const auto X = uniform_sparse(30, 20, 0.2, 42);
  const auto y = random_vector(20, 1);
  const auto v = random_vector(30, 2);
  const auto z = random_vector(20, 3);
  const real alpha = 2.5, beta = -0.5;

  auto p = reference::spmv(X, y);
  for (usize i = 0; i < p.size(); ++i) p[i] *= v[i];
  auto w = reference::spmv_transposed(X, p);
  for (usize i = 0; i < w.size(); ++i) w[i] = alpha * w[i] + beta * z[i];

  test::expect_vectors_near(w, reference::pattern(alpha, X, v, y, beta, z));
}

TEST(Reference, PatternHandlesEmptyVAndZ) {
  const auto X = uniform_sparse(30, 20, 0.2, 43);
  const auto y = random_vector(20, 1);
  const auto w = reference::pattern(1.0, X, {}, y, 0.0, {});
  auto expect = reference::spmv_transposed(X, reference::spmv(X, y));
  test::expect_vectors_near(expect, w);
}

TEST(Reference, PatternDenseMatchesSparse) {
  const auto X = uniform_sparse(25, 15, 0.3, 44);
  const auto Xd = csr_to_dense(X);
  const auto y = random_vector(15, 1);
  const auto v = random_vector(25, 2);
  const auto z = random_vector(15, 3);
  test::expect_vectors_near(reference::pattern(1.5, X, v, y, 0.5, z),
                            reference::pattern(1.5, Xd, v, y, 0.5, z));
}

TEST(Generate, UniformSparseHitsTargetSparsity) {
  const auto X = uniform_sparse(2000, 500, 0.01, 11);
  const double actual = static_cast<double>(X.nnz()) / (2000.0 * 500.0);
  EXPECT_NEAR(actual, 0.01, 0.002);
}

TEST(Generate, UniformSparseDeterministic) {
  EXPECT_EQ(uniform_sparse(100, 50, 0.05, 3), uniform_sparse(100, 50, 0.05, 3));
}

TEST(Generate, KddLikeShape) {
  const auto X = kdd_like(5000, 100000, 28.0, 1.5, 17);
  EXPECT_NEAR(X.mean_nnz_per_row(), 28.0, 3.0);
  // Power-law skew: the first 1% of columns should hold far more than 1%
  // of non-zeros.
  offset_t head = 0;
  for (usize i = 0; i < static_cast<usize>(X.nnz()); ++i) {
    if (X.col_idx()[i] < 1000) ++head;
  }
  EXPECT_GT(static_cast<double>(head) / static_cast<double>(X.nnz()), 0.05);
}

TEST(Generate, HiggsLikeIsStandardNormalish) {
  const auto X = higgs_like(5000, 28, 23);
  double sum = 0, sq = 0;
  for (real v : X.data()) {
    sum += v;
    sq += v * v;
  }
  const auto n = static_cast<double>(X.data().size());
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Generate, BandedStructure) {
  const auto X = banded(10, 10, 3);
  EXPECT_LE(X.max_nnz_per_row(), 3);
  // Diagonal dominance for CG-friendliness.
  const auto d = csr_to_dense(X);
  for (index_t i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(d.at(i, i), 4.0);
}

TEST(Generate, RegressionLabelsCorrelateWithTrueWeights) {
  const auto X = uniform_sparse(500, 40, 0.2, 31);
  const auto y = regression_labels(X, 31, 0.0);  // noiseless
  const auto w = regression_true_weights(40, 31);
  test::expect_vectors_near(reference::spmv(X, w), y);
}

TEST(Generate, ClassificationLabelsAreSigns) {
  const auto X = uniform_sparse(200, 30, 0.2, 33);
  const auto y = classification_labels(X, 33, 0.1);
  for (real v : y) EXPECT_TRUE(v == 1.0 || v == -1.0);
}

TEST(Io, SparseRoundTrip) {
  const auto X = uniform_sparse(30, 20, 0.2, 55);
  std::stringstream ss;
  write_matrix_market(ss, X);
  const auto back = read_matrix_market(ss);
  EXPECT_EQ(back.rows(), X.rows());
  EXPECT_EQ(back.cols(), X.cols());
  EXPECT_EQ(back.nnz(), X.nnz());
  test::expect_vectors_near(X.values(), back.values(), 1e-6);
}

TEST(Io, SymmetricExpansion) {
  std::stringstream ss;
  ss << "%%MatrixMarket matrix coordinate real symmetric\n"
     << "2 2 2\n"
     << "1 1 1.0\n"
     << "2 1 3.0\n";
  const auto X = read_matrix_market(ss);
  EXPECT_EQ(X.nnz(), 3);  // off-diagonal mirrored
  const auto d = csr_to_dense(X);
  EXPECT_DOUBLE_EQ(d.at(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(d.at(1, 0), 3.0);
}

TEST(Io, DenseRoundTrip) {
  const auto X = dense_random(7, 5, 77);
  std::stringstream ss;
  write_matrix_market_dense(ss, X);
  const auto back = read_matrix_market_dense(ss);
  ASSERT_EQ(back.rows(), 7);
  ASSERT_EQ(back.cols(), 5);
  test::expect_vectors_near(X.data(), back.data(), 1e-6);
}

TEST(Io, FileRoundTripAndMissingFile) {
  const auto X = uniform_sparse(15, 12, 0.3, 56);
  const std::string path = ::testing::TempDir() + "/fusedml_io_test.mtx";
  write_matrix_market_file(path, X);
  const auto back = read_matrix_market_file(path);
  EXPECT_EQ(back.rows(), X.rows());
  EXPECT_EQ(back.nnz(), X.nnz());
  EXPECT_THROW(read_matrix_market_file("/nonexistent/definitely.mtx"),
               Error);
  std::remove(path.c_str());
}

TEST(Io, RejectsGarbage) {
  std::stringstream ss("not a matrix market file\n1 2 3\n");
  EXPECT_THROW(read_matrix_market(ss), Error);
}

TEST(Io, RejectsEntryIndexOutsideDeclaredShape) {
  // Row 5 of a declared 2x3 matrix would write out-of-bounds CSR entries.
  std::stringstream rows(
      "%%MatrixMarket matrix coordinate real general\n2 3 1\n5 1 1.0\n");
  EXPECT_THROW(read_matrix_market(rows), DataError);
  std::stringstream cols(
      "%%MatrixMarket matrix coordinate real general\n2 3 1\n1 7 1.0\n");
  EXPECT_THROW(read_matrix_market(cols), DataError);
}

TEST(Io, RejectsNnzMismatch) {
  // Fewer entries than declared: the reader runs out of data.
  std::stringstream missing(
      "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n");
  EXPECT_THROW(read_matrix_market(missing), DataError);
  // More entries than declared: trailing data lines must be rejected, not
  // silently ignored.
  std::stringstream extra(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n1 1 1.0\n2 2 2.0\n");
  EXPECT_THROW(read_matrix_market(extra), DataError);
}

TEST(Io, RejectsNonFiniteAndMalformedValues) {
  std::stringstream nan_entry(
      "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 nan\n");
  EXPECT_THROW(read_matrix_market(nan_entry), DataError);
  std::stringstream inf_entry(
      "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 inf\n");
  EXPECT_THROW(read_matrix_market(inf_entry), DataError);
  std::stringstream garbage_entry(
      "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 x 1.0\n");
  EXPECT_THROW(read_matrix_market(garbage_entry), DataError);
}

TEST(Io, TrailingCommentsAndBlanksAreNotExtraEntries) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n1 1 1.0\n% trailing comment\n   \n");
  const auto X = read_matrix_market(ss);
  EXPECT_EQ(X.nnz(), 1);
}

}  // namespace
}  // namespace fusedml::la
