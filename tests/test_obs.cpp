// Observability stack tests: trace recorder (ring, clock, spans), metrics
// registry, Chrome export, profiler-report bit-matching against the device
// session accounting, plan-vs-actual audit, and the clean-vs-faulted
// double-booking guarantee on RuntimeStats.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "kernels/fused_sparse.h"
#include "la/generate.h"
#include "obs/metrics.h"
#include "patterns/executor.h"
#include "obs/plan_audit.h"
#include "obs/profiler_report.h"
#include "obs/trace.h"
#include "ml/script_library.h"
#include "sysml/runtime.h"
#include "vgpu/device.h"
#include "vgpu/fault_injector.h"

namespace fusedml {
namespace {

using obs::TraceEvent;
using obs::TraceRecorder;

/// Every test that arms the global recorder/registry goes through this so a
/// failing assertion cannot leak an enabled recorder into later tests.
struct ProfilingScope {
  explicit ProfilingScope(usize capacity = TraceRecorder::kDefaultCapacity) {
    obs::enable_profiling(capacity);
  }
  ~ProfilingScope() { obs::disable_profiling(); }
};

TraceEvent named_event(const std::string& name) {
  TraceEvent ev;
  ev.name = name;
  ev.cat = "test";
  return ev;
}

obs::DevicePeaks peaks_of(const vgpu::DeviceSpec& spec) {
  return {spec.mem_bandwidth_gbs, spec.peak_gflops_dp};
}

TEST(TraceRecorder, DisabledByDefaultAndRecordIsNoOp) {
  auto& rec = obs::recorder();
  rec.disable();
  EXPECT_FALSE(rec.enabled());
  rec.record(named_event("ignored"));
  EXPECT_EQ(rec.recorded(), 0u);
  EXPECT_TRUE(rec.snapshot().empty());
}

TEST(TraceRecorder, RingKeepsNewestAndCountsDrops) {
  ProfilingScope scope(8);
  auto& rec = obs::recorder();
  for (int i = 0; i < 20; ++i) {
    rec.record(named_event("ev" + std::to_string(i)));
  }
  EXPECT_EQ(rec.recorded(), 20u);
  EXPECT_EQ(rec.dropped(), 12u);
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 8u);
  // The oldest were dropped: the retained window is ev12..ev19 in order.
  for (usize i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].name, "ev" + std::to_string(12 + i));
    EXPECT_EQ(events[i].seq, 12 + i);
  }
}

TEST(TraceRecorder, ConcurrentWritersLoseNothingWithinCapacity) {
  ProfilingScope scope(1 << 12);
  auto& rec = obs::recorder();
  constexpr int kThreads = 8, kEvents = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rec, t] {
      for (int i = 0; i < kEvents; ++i) {
        rec.record(named_event("t" + std::to_string(t)));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(rec.recorded(), static_cast<std::uint64_t>(kThreads * kEvents));
  EXPECT_EQ(rec.dropped(), 0u);
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), static_cast<usize>(kThreads * kEvents));
  for (usize i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, i);  // unique, gap-free sequence numbers
  }
}

TEST(TraceRecorder, ModeledClockAdvances) {
  ProfilingScope scope;
  auto& rec = obs::recorder();
  EXPECT_DOUBLE_EQ(rec.now_ms(), 0.0);
  EXPECT_DOUBLE_EQ(rec.advance_ms(1.5), 0.0);  // returns pre-advance cursor
  EXPECT_DOUBLE_EQ(rec.advance_ms(0.5), 1.5);
  EXPECT_DOUBLE_EQ(rec.now_ms(), 2.0);
  rec.advance_to_ms(1.0);  // backwards: no-op
  EXPECT_DOUBLE_EQ(rec.now_ms(), 2.0);
  rec.advance_to_ms(3.0);
  EXPECT_DOUBLE_EQ(rec.now_ms(), 3.0);
  rec.clear();
  EXPECT_DOUBLE_EQ(rec.now_ms(), 0.0);
  EXPECT_TRUE(rec.enabled());  // clear keeps recording on
}

TEST(TraceSpan, MeasuresInnerAdvancesAndCovers) {
  ProfilingScope scope;
  auto& rec = obs::recorder();
  rec.advance_ms(1.0);
  {
    obs::TraceSpan span("outer", "test", obs::Track::kOps);
    ASSERT_TRUE(span.active());
    rec.advance_ms(2.0);  // a leaf charge inside the span
    span.arg("answer", 42.0);
  }
  {
    obs::TraceSpan span("covered", "test", obs::Track::kOps);
    span.cover_modeled_ms(5.0);  // no leaf advanced; span charges 5 ms total
  }
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_DOUBLE_EQ(events[0].ts_ms, 1.0);
  EXPECT_DOUBLE_EQ(events[0].dur_ms, 2.0);
  ASSERT_EQ(events[0].num_args.size(), 1u);
  EXPECT_EQ(events[0].num_args[0].first, "answer");
  EXPECT_EQ(events[1].name, "covered");
  EXPECT_DOUBLE_EQ(events[1].ts_ms, 3.0);
  EXPECT_DOUBLE_EQ(events[1].dur_ms, 5.0);
  EXPECT_DOUBLE_EQ(rec.now_ms(), 8.0);
}

TEST(TraceRecorder, ChromeExportHasTrackMetadataAndEvents) {
  ProfilingScope scope;
  auto& rec = obs::recorder();
  {
    obs::TraceSpan span("hello \"span\"", "test", obs::Track::kDispatch);
    rec.advance_ms(1.0);
  }
  std::ostringstream os;
  rec.export_chrome_trace(os);
  const std::string trace = os.str();
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(trace.find("hello \\\"span\\\""), std::string::npos);  // escaped
  EXPECT_EQ(trace.find("\"ts\":-"), std::string::npos);  // no negative times
}

TEST(Metrics, RegistryGetOrCreateAndReset) {
  ProfilingScope scope;
  auto& reg = obs::metrics();
  auto& c = reg.counter("test.counter");
  c.add(3);
  EXPECT_EQ(&reg.counter("test.counter"), &c);  // stable handle
  EXPECT_EQ(c.value(), 3u);
  reg.gauge("test.gauge").add(1.5);
  reg.histogram("test.histo").observe(2.0);
  reg.histogram("test.histo").observe(4.0);
  EXPECT_DOUBLE_EQ(reg.histogram("test.histo").mean(), 3.0);

  std::ostringstream os;
  reg.write_json(os);
  EXPECT_NE(os.str().find("test.counter"), std::string::npos);
  EXPECT_NE(os.str().find("test.gauge"), std::string::npos);

  reg.reset();
  EXPECT_EQ(c.value(), 0u);  // handle survives reset
  EXPECT_DOUBLE_EQ(reg.gauge("test.gauge").value(), 0.0);
  EXPECT_EQ(reg.histogram("test.histo").count(), 0u);
}

TEST(Metrics, EmptyHistogramReportsZeros) {
  obs::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

TEST(Metrics, HistogramReservoirStaysBoundedWithExactScalars) {
  obs::Histogram h;
  // Below the cap the reservoir holds every sample and quantiles are exact.
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i));
  EXPECT_EQ(h.reservoir_size(), 100u);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 50.0);
  EXPECT_DOUBLE_EQ(h.percentile(99.0), 99.0);
  // Push an order of magnitude past the cap: memory stays at the cap while
  // count/sum/min/max remain exact, and quantiles stay inside the observed
  // range (the reservoir is a uniform subsample of it).
  constexpr int kTotal = 10 * static_cast<int>(
      obs::Histogram::kReservoirCapacity);
  for (int i = 101; i <= kTotal; ++i) h.observe(static_cast<double>(i));
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kTotal));
  EXPECT_EQ(h.reservoir_size(), obs::Histogram::kReservoirCapacity);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), static_cast<double>(kTotal));
  EXPECT_DOUBLE_EQ(h.mean(), (1.0 + kTotal) / 2.0);
  const double p50 = h.percentile(50.0);
  EXPECT_GE(p50, h.min());
  EXPECT_LE(p50, h.max());
  EXPECT_LE(h.percentile(50.0), h.percentile(95.0));
  EXPECT_LE(h.percentile(95.0), h.percentile(99.0));

  // The replacement stream is a deterministic LCG: the same single-threaded
  // observation sequence reproduces the same quantiles bit-for-bit.
  obs::Histogram h2;
  for (int i = 1; i <= kTotal; ++i) h2.observe(static_cast<double>(i));
  EXPECT_EQ(h2.percentile(50.0), p50);
  EXPECT_EQ(h2.percentile(99.0), h.percentile(99.0));

  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.reservoir_size(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0);
}

TEST(Metrics, ConcurrentHammerKeepsExactTotals) {
  ProfilingScope scope;
  auto& reg = obs::metrics();
  constexpr int kThreads = 8, kIters = 5000;
  auto* main_counter = &reg.counter("hammer.counter");
  std::vector<std::thread> threads;
  std::atomic<int> stable_handles{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, main_counter, &stable_handles] {
      // Re-resolve every name each iteration: the registry's get-or-create
      // path is hammered as hard as the instruments themselves.
      for (int i = 0; i < kIters; ++i) {
        auto& c = reg.counter("hammer.counter");
        if (&c == main_counter) stable_handles.fetch_add(1);
        c.add(1);
        reg.gauge("hammer.gauge").add(1.0);
        reg.histogram("hammer.histo").observe(static_cast<double>(i % 100));
      }
    });
  }
  for (auto& th : threads) th.join();

  constexpr std::uint64_t kTotal =
      static_cast<std::uint64_t>(kThreads) * kIters;
  EXPECT_EQ(stable_handles.load(), kThreads * kIters);  // one shared instrument
  EXPECT_EQ(reg.counter("hammer.counter").value(), kTotal);
  EXPECT_DOUBLE_EQ(reg.gauge("hammer.gauge").value(),
                   static_cast<double>(kTotal));
  auto& h = reg.histogram("hammer.histo");
  EXPECT_EQ(h.count(), kTotal);
  EXPECT_DOUBLE_EQ(h.mean(), 49.5);  // each of 0..99 observed equally often
  EXPECT_DOUBLE_EQ(h.max(), 99.0);
}

TEST(TraceRecorder, ConcurrentOverflowAccountsForEveryEvent) {
  constexpr usize kCapacity = 64;  // rounds to 8 slots x 8 shards exactly
  ProfilingScope scope(kCapacity);
  auto& rec = obs::recorder();
  constexpr int kThreads = 8, kEvents = 100;  // 800 records >> 64 slots
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rec, t] {
      for (int i = 0; i < kEvents; ++i) {
        rec.record(named_event("t" + std::to_string(t)));
      }
    });
  }
  for (auto& th : threads) th.join();

  constexpr std::uint64_t kTotal =
      static_cast<std::uint64_t>(kThreads) * kEvents;
  EXPECT_EQ(rec.recorded(), kTotal);
  EXPECT_EQ(rec.dropped(), kTotal - kCapacity);
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), kCapacity);  // ring is full, nothing double-counted
  // Every retained slot holds a distinct event: sequence numbers are unique.
  std::vector<std::uint64_t> seqs;
  seqs.reserve(events.size());
  for (const auto& ev : events) seqs.push_back(ev.seq);
  std::sort(seqs.begin(), seqs.end());
  EXPECT_EQ(std::unique(seqs.begin(), seqs.end()), seqs.end());
  EXPECT_LT(seqs.back(), kTotal);
}

TEST(Obs, DisabledObservabilityKeepsModeledNumbersBitIdentical) {
  const auto X = la::uniform_sparse(3000, 200, 0.02, 11);
  const auto y = la::random_vector(200, 12);

  obs::disable_profiling();
  obs::recorder().clear();
  vgpu::Device plain_dev;
  const auto plain = kernels::fused_pattern_sparse(plain_dev, 1, X, {}, y,
                                                   0, {});
  EXPECT_EQ(obs::recorder().recorded(), 0u);

  double traced_ms = 0.0;
  std::vector<real> traced_value;
  {
    ProfilingScope scope;
    vgpu::Device traced_dev;
    const auto traced = kernels::fused_pattern_sparse(traced_dev, 1, X, {}, y,
                                                      0, {});
    EXPECT_GT(obs::recorder().recorded(), 0u);
    traced_ms = traced.modeled_ms;
    traced_value = traced.value;
  }
  EXPECT_EQ(plain.modeled_ms, traced_ms);  // bit-identical, not NEAR
  EXPECT_EQ(plain.value, traced_value);
}

TEST(Obs, ProfilerReportBitMatchesDeviceAndRuntimeAccounting) {
  ProfilingScope scope;
  const auto X = la::uniform_sparse(2000, 400, 0.01, 42);
  const auto labels = la::regression_labels(X, 42, 0.1);
  ml::ScriptConfig cfg;
  cfg.max_iterations = 10;
  cfg.tolerance = 0;

  vgpu::Device dev;
  sysml::Runtime rt(dev, {.enable_gpu = true, .gpu_cost_bias = 1e-4});
  const auto out =
      ml::run_lr_cg_script(rt, X, labels, sysml::PlanMode::kPlanner, cfg);

  const auto events = obs::recorder().snapshot();
  ASSERT_EQ(obs::recorder().dropped(), 0u);
  const auto report =
      obs::build_profiler_report(events, peaks_of(dev.spec()));

  // One kernel event per device launch — 10 planner iterations of LR-CG
  // produce >= 73 launches (7 per iteration + setup).
  EXPECT_GE(report.total_launches, 73u);
  EXPECT_EQ(report.total_launches, dev.session_launches());
  EXPECT_EQ(report.total_launches, out.runtime_stats.kernel_launches);

  // Integer totals are summed exactly from the per-launch payloads, so they
  // bit-match the device session counters.
  const auto& session = dev.session_counters();
  EXPECT_EQ(report.total_gld_transactions, session.gld_transactions);
  EXPECT_EQ(report.total_gst_transactions, session.gst_transactions);
  EXPECT_EQ(report.total_flops, session.flops);
  EXPECT_NEAR(report.total_kernel_ms, dev.session_modeled_ms(), 1e-9);

  // The nvprof table renders and names every kernel.
  std::ostringstream os;
  report.print(os, peaks_of(dev.spec()));
  EXPECT_NE(os.str().find("calls"), std::string::npos);
  ASSERT_FALSE(report.kernels.empty());
  for (const auto& k : report.kernels) {
    EXPECT_FALSE(k.name.empty());
    EXPECT_GT(k.calls, 0u);
  }

  // Plan-vs-actual: the planner's launch prediction matches execution.
  const auto& audit = out.plan_audit;
  ASSERT_TRUE(audit.has_prediction);
  EXPECT_EQ(audit.executions, 10u);
  EXPECT_EQ(audit.launch_drift(), 0);
}

TEST(Obs, RetriedAttemptsDoNotDoubleBookSuccessMetrics) {
  // The double-booking guarantee: a faulted run that recovers on the SAME
  // backend books identical success-path metrics (launch counts, op counts,
  // clean kernel milliseconds) as the fault-free run; everything the faults
  // cost lands in resilience_overhead_ms alone.
  const auto X = la::uniform_sparse(3000, 250, 0.02, 7);
  const auto labels = la::regression_labels(X, 7, 0.1);
  ml::ScriptConfig cfg;
  cfg.max_iterations = 8;
  cfg.tolerance = 0;

  vgpu::Device clean_dev;
  sysml::Runtime clean_rt(clean_dev,
                          {.enable_gpu = true, .gpu_cost_bias = 1e-4});
  const auto clean =
      ml::run_lr_cg_script(clean_rt, X, labels, sysml::PlanMode::kPlanner, cfg);

  vgpu::FaultConfig fc;
  fc.seed = 99;
  fc.kernel_fault_rate = 0.15;  // launch drops only: retries stay on-backend
  vgpu::FaultInjector injector(fc);
  vgpu::Device faulty_dev;
  faulty_dev.set_fault_injector(&injector);
  sysml::Runtime faulty_rt(faulty_dev,
                           {.enable_gpu = true, .gpu_cost_bias = 1e-4});
  const auto faulty = ml::run_lr_cg_script(
      faulty_rt, X, labels, sysml::PlanMode::kPlanner, cfg);

  // Preconditions: faults actually fired and were absorbed without changing
  // the backend (a fallback would legitimately change the metrics).
  ASSERT_GT(faulty_rt.resilience().faults_seen, 0u);
  ASSERT_GT(faulty_rt.resilience().retries, 0u);
  ASSERT_EQ(faulty_rt.resilience().fallbacks, 0u);

  EXPECT_EQ(clean.weights, faulty.weights);  // bit-exact recovery

  const auto& a = clean.runtime_stats;
  const auto& b = faulty.runtime_stats;
  EXPECT_EQ(a.kernel_launches, b.kernel_launches);
  EXPECT_EQ(a.gpu_ops, b.gpu_ops);
  EXPECT_EQ(a.cpu_ops, b.cpu_ops);
  EXPECT_DOUBLE_EQ(a.gpu_kernel_ms, b.gpu_kernel_ms);
  EXPECT_DOUBLE_EQ(a.pattern_gpu_ms, b.pattern_gpu_ms);
  EXPECT_DOUBLE_EQ(a.cpu_op_ms, b.cpu_op_ms);

  EXPECT_DOUBLE_EQ(a.resilience_overhead_ms, 0.0);
  EXPECT_GT(b.resilience_overhead_ms, 0.0);
  // The ONLY total-time difference is the overhead bucket.
  EXPECT_NEAR(b.total_ms() - a.total_ms(), b.resilience_overhead_ms, 1e-9);

  // The audit counts success-path launches, so drift stays zero even when
  // faults forced retries.
  ASSERT_TRUE(faulty.plan_audit.has_prediction);
  EXPECT_EQ(faulty.plan_audit.launch_drift(), 0);
}

TEST(Obs, TraceCoversDispatchRetriesUnderFaults) {
  ProfilingScope scope;
  const auto X = la::uniform_sparse(2000, 200, 0.02, 3);
  const auto y = la::random_vector(2000, 4);

  vgpu::FaultConfig fc;
  fc.seed = 5;
  fc.kernel_fault_rate = 0.3;
  vgpu::FaultInjector injector(fc);
  vgpu::Device dev;
  dev.set_fault_injector(&injector);
  patterns::PatternExecutor exec(dev, patterns::Backend::kFused);
  const auto r = exec.transposed_product(X, y);
  ASSERT_GT(r.resilience.faults_seen, 0u);

  bool saw_fault = false, saw_backoff = false, saw_kernel = false,
       saw_dispatch = false, saw_pattern = false;
  for (const auto& ev : obs::recorder().snapshot()) {
    const std::string cat = ev.cat;
    if (cat == "fault") saw_fault = true;
    if (ev.name == "retry_backoff") saw_backoff = true;
    if (cat == "kernel") saw_kernel = true;
    if (cat == "dispatch") saw_dispatch = true;
    if (cat == "pattern") saw_pattern = true;
  }
  EXPECT_TRUE(saw_fault);
  EXPECT_TRUE(saw_backoff);
  EXPECT_TRUE(saw_kernel);
  EXPECT_TRUE(saw_dispatch);
  EXPECT_TRUE(saw_pattern);
}

}  // namespace
}  // namespace fusedml
