// Tests for the compiler-side pieces: the CUDA source generator (Listing 2)
// and the expression-DAG fusion pass (the "transparently selects our fused
// GPU kernel" integration of §4.4).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "kernels/cuda_codegen.h"
#include "la/generate.h"
#include "la/vector_ops.h"
#include "patterns/executor.h"
#include "sysml/dag.h"
#include "sysml/runtime.h"
#include "test_util.h"

namespace fusedml {
namespace {

using test::expect_vectors_near;

// --- CUDA source generator -----------------------------------------------------

int count_occurrences(const std::string& haystack, const std::string& needle) {
  int count = 0;
  for (usize pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + 1)) {
    ++count;
  }
  return count;
}

TEST(CudaCodegen, KernelNameMatchesListing2Convention) {
  // Listing 2's example: dense m x 32, VS = 16, TL = 2 -> mtmvm_32_16_2.
  kernels::DenseKernelSpec spec{32, 16, 2};
  EXPECT_EQ(kernels::cuda_kernel_name(spec), "mtmvm_32_16_2");
}

TEST(CudaCodegen, EmitsExactlyTlRegistersOfEachKind) {
  kernels::DenseKernelSpec spec{200, 32, 7};
  const auto src = kernels::generate_dense_fused_cuda(spec);
  for (int t = 1; t <= 7; ++t) {
    EXPECT_NE(src.find("l_X" + std::to_string(t)), std::string::npos) << t;
    EXPECT_NE(src.find("l_y" + std::to_string(t)), std::string::npos) << t;
    EXPECT_NE(src.find("l_w" + std::to_string(t)), std::string::npos) << t;
  }
  EXPECT_EQ(src.find("l_X8"), std::string::npos);
  EXPECT_EQ(src.find("l_w8"), std::string::npos);
}

TEST(CudaCodegen, NoRuntimeRegisterIndexing) {
  // The generator's whole purpose (§3.2): no l_X[i]-style indexed access.
  const auto src =
      kernels::generate_dense_fused_cuda({512, 128, 4});
  EXPECT_EQ(src.find("l_X["), std::string::npos);
  EXPECT_EQ(src.find("l_y["), std::string::npos);
  EXPECT_EQ(src.find("l_w["), std::string::npos);
}

TEST(CudaCodegen, UnrolledOffsetsUseVsStride) {
  const auto src = kernels::generate_dense_fused_cuda({32, 16, 2});
  // Listing 2: the second element sits VS=16 doubles further.
  EXPECT_NE(src.find("X[r + 16u]"), std::string::npos);
  EXPECT_NE(src.find("atomicAdd(wp + 16u, a * l_w2)"), std::string::npos);
}

TEST(CudaCodegen, StructurallyBalanced) {
  for (const auto spec :
       {kernels::DenseKernelSpec{28, 32, 1}, kernels::DenseKernelSpec{200, 32, 7},
        kernels::DenseKernelSpec{2048, 128, 16},
        kernels::DenseKernelSpec{64, 64, 1, false, false}}) {
    const auto src = kernels::generate_dense_fused_cuda(spec);
    EXPECT_EQ(count_occurrences(src, "{"), count_occurrences(src, "}"));
    EXPECT_NE(src.find("__global__"), std::string::npos);
    EXPECT_NE(src.find("atomicAdd"), std::string::npos);
  }
}

TEST(CudaCodegen, OptionalPiecesToggle) {
  kernels::DenseKernelSpec with{100, 32, 4, true, true};
  kernels::DenseKernelSpec without{100, 32, 4, false, false};
  const auto a = kernels::generate_dense_fused_cuda(with);
  const auto b = kernels::generate_dense_fused_cuda(without);
  EXPECT_NE(a.find("* v["), std::string::npos);
  EXPECT_NE(a.find("b * z[i]"), std::string::npos);
  EXPECT_EQ(b.find("v["), std::string::npos);
  EXPECT_EQ(b.find("z[i]"), std::string::npos);
}

TEST(CudaCodegen, RejectsInsufficientCoverage) {
  EXPECT_THROW(kernels::generate_dense_fused_cuda({1000, 32, 2}),
               Error);
}

TEST(CudaCodegen, SparseVariants) {
  const auto shared = kernels::generate_sparse_fused_cuda(8, true);
  const auto global = kernels::generate_sparse_fused_cuda(8, false);
  EXPECT_NE(shared.find("__shared__"), std::string::npos);
  EXPECT_NE(shared.find("SD[NV + col_idx[i]]"), std::string::npos);
  EXPECT_EQ(global.find("extern __shared__"), std::string::npos);
  EXPECT_NE(global.find("atomicAdd(&w[col_idx[i]]"), std::string::npos);
  EXPECT_EQ(count_occurrences(shared, "{"), count_occurrences(shared, "}"));
  EXPECT_THROW(kernels::generate_sparse_fused_cuda(3, true), Error);
}

// --- Generated elementwise-chain kernels ------------------------------------------

real test_sigmoid(real t) { return real{1} / (real{1} + std::exp(-t)); }

kernels::EwiseStep binary_step(kernels::EwiseOp op, int a, int b) {
  kernels::EwiseStep s;
  s.op = op;
  s.a = a;
  s.b = b;
  return s;
}

kernels::EwiseProgram sigmoid_chain_program() {
  // 2in: mul(i0,i1); map[sigmoid](s0); mul(s1,i0) — the logreg residual.
  kernels::EwiseProgram p;
  p.num_inputs = 2;
  p.steps.push_back(binary_step(kernels::EwiseOp::kMul, 0, 1));
  kernels::EwiseStep map_step;
  map_step.op = kernels::EwiseOp::kMap;
  map_step.a = 2;
  map_step.map_fn = test_sigmoid;
  map_step.map_name = "sigmoid";
  p.steps.push_back(map_step);
  p.steps.push_back(binary_step(kernels::EwiseOp::kMul, 3, 0));
  return p;
}

TEST(EwiseCodegen, NamesEncodeTheStepSequence) {
  EXPECT_EQ(kernels::ewise_kernel_name(sigmoid_chain_program()),
            "ewise2_mul_map_sigmoid_mul");
}

TEST(EwiseCodegen, EmitsOneRegisterPerStepAndAGridStrideLoop) {
  const auto src =
      kernels::generate_ewise_chain_cuda(sigmoid_chain_program());
  // SSA registers s0..s2, no spilled intermediate arrays.
  EXPECT_NE(src.find("const double s0"), std::string::npos) << src;
  EXPECT_NE(src.find("const double s1"), std::string::npos);
  EXPECT_NE(src.find("const double s2"), std::string::npos);
  EXPECT_EQ(src.find("const double s3"), std::string::npos);
  // Grid-stride loop over n, one load per input stream, one store.
  EXPECT_NE(src.find("gridDim.x * blockDim.x"), std::string::npos);
  EXPECT_EQ(count_occurrences(src, "in0[i]"), 2);  // mul + final mul
  EXPECT_EQ(count_occurrences(src, "in1[i]"), 1);
  EXPECT_EQ(count_occurrences(src, "out[i]"), 1);
  // The map resolves to a device-function declaration, not an inline body.
  EXPECT_NE(src.find("map_sigmoid"), std::string::npos);
  EXPECT_EQ(count_occurrences(src, "{"), count_occurrences(src, "}"));
}

TEST(EwiseCodegen, RejectsInvalidPrograms) {
  kernels::EwiseProgram bad;
  bad.num_inputs = 1;
  bad.steps.push_back(binary_step(kernels::EwiseOp::kAdd, 0, 5));  // slot 5 undefined
  EXPECT_THROW(kernels::generate_ewise_chain_cuda(bad), Error);
}

// --- Kernel cache ----------------------------------------------------------------

TEST(KernelCache, GeneratesOnceThenHits) {
  kernels::KernelCache cache;
  const kernels::DenseKernelSpec spec{200, 32, 7};
  const auto& a = cache.dense_kernel(spec);
  const auto& b = cache.dense_kernel(spec);
  EXPECT_EQ(&a, &b) << "same specialization must return the cached source";
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(KernelCache, DistinguishesSpecializations) {
  kernels::KernelCache cache;
  cache.dense_kernel({200, 32, 7});
  cache.dense_kernel({200, 32, 8});                       // different TL
  cache.dense_kernel({200, 32, 7, false, true});          // no v
  cache.sparse_kernel(8, true);
  cache.sparse_kernel(8, false);
  EXPECT_EQ(cache.stats().misses, 5u);
  EXPECT_EQ(cache.size(), 5u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(KernelCache, ExecutorCachesAcrossIterations) {
  vgpu::Device dev;
  patterns::PatternExecutor exec(dev, patterns::Backend::kFused);
  const auto X = la::dense_random(500, 96, 905);
  const auto y = la::random_vector(96, 1);
  for (int it = 0; it < 5; ++it) exec.xt_xy(X, y);
  EXPECT_EQ(exec.kernel_cache().stats().misses, 1u)
      << "one generation for the shape";
  EXPECT_EQ(exec.kernel_cache().stats().hits, 4u)
      << "iterations 2..5 reuse the generated kernel";
}

// --- DAG + fusion pass --------------------------------------------------------------

struct DagFixture : ::testing::Test {
  vgpu::Device dev;
  la::CsrMatrix X = la::uniform_sparse(800, 120, 0.05, 901);
  std::vector<real> y = la::random_vector(120, 1);
  std::vector<real> v = la::random_vector(800, 2);
  std::vector<real> z = la::random_vector(120, 3);
};

TEST_F(DagFixture, FusionCollapsesTheFullPattern) {
  sysml::Runtime rt(dev, {});
  const auto Xid = rt.add_sparse(X, "X");
  auto root = sysml::pattern_expression(
      0.5, sysml::input_matrix(Xid), sysml::input_vector(rt.add_vector(v, "v")),
      sysml::input_vector(rt.add_vector(y, "y")), 2.0,
      sysml::input_vector(rt.add_vector(z, "z")));

  sysml::FusionReport report;
  root = sysml::fuse_patterns(root, &report);
  EXPECT_EQ(report.patterns_fused, 1);
  EXPECT_EQ(root->kind, sysml::OpKind::kFusedPattern);
  EXPECT_DOUBLE_EQ(root->scalar, 0.5);
  EXPECT_DOUBLE_EQ(root->scalar2, 2.0);
  EXPECT_LT(report.nodes_after, report.nodes_before);
}

TEST_F(DagFixture, AllDegenerationsFuse) {
  sysml::Runtime rt(dev, {});
  const auto Xn = sysml::input_matrix(rt.add_sparse(X, "X"));
  const auto yn = sysml::input_vector(rt.add_vector(y, "y"));
  const auto vn = sysml::input_vector(rt.add_vector(v, "v"));
  const auto zn = sysml::input_vector(rt.add_vector(z, "z"));

  // X^T(Xy), X^T(v⊙(Xy)), X^T(Xy)+bz, a*X^T(Xy).
  for (auto root : {sysml::pattern_expression(1, Xn, nullptr, yn, 0, nullptr),
                    sysml::pattern_expression(1, Xn, vn, yn, 0, nullptr),
                    sysml::pattern_expression(1, Xn, nullptr, yn, 3, zn),
                    sysml::pattern_expression(2, Xn, nullptr, yn, 0,
                                              nullptr)}) {
    sysml::FusionReport report;
    root = sysml::fuse_patterns(root, &report);
    EXPECT_EQ(report.patterns_fused, 1);
    EXPECT_EQ(root->kind, sysml::OpKind::kFusedPattern);
  }
}

TEST_F(DagFixture, DifferentMatricesDoNotFuse) {
  sysml::Runtime rt(dev, {});
  const auto X2 = la::uniform_sparse(120, 800, 0.05, 902);  // X^T shape
  const auto Xa = sysml::input_matrix(rt.add_sparse(X, "X"));
  const auto Xb = sysml::input_matrix(rt.add_sparse(X2, "X2"));
  const auto yn = sysml::input_vector(rt.add_vector(y, "y"));
  // mvt(X2, mv(X, y)): valid algebra but NOT the reuse pattern.
  auto root = sysml::mvt(Xb, sysml::mv(Xa, yn));
  sysml::FusionReport report;
  root = sysml::fuse_patterns(root, &report);
  EXPECT_EQ(report.patterns_fused, 0);
  EXPECT_NE(root->kind, sysml::OpKind::kFusedPattern);
}

TEST_F(DagFixture, FusedAndUnfusedExecutionsAgreeWithOracle) {
  const auto expect = la::reference::pattern(0.5, X, v, y, 2.0, z);
  for (bool fuse : {false, true}) {
    sysml::Runtime rt(dev, {});
    auto root = sysml::pattern_expression(
        0.5, sysml::input_matrix(rt.add_sparse(X, "X")),
        sysml::input_vector(rt.add_vector(v, "v")),
        sysml::input_vector(rt.add_vector(y, "y")), 2.0,
        sysml::input_vector(rt.add_vector(z, "z")));
    if (fuse) root = sysml::fuse_patterns(root);
    const auto out = sysml::execute(rt, root);
    expect_vectors_near(expect, rt.read_vector(out), 1e-8);
  }
}

TEST_F(DagFixture, FusionReducesOpsAndTime) {
  const auto big = la::uniform_sparse(40000, 500, 0.02, 903);
  const auto yy = la::random_vector(500, 4);
  const auto vv = la::random_vector(40000, 5);
  double fused_ms = 0, unfused_ms = 0;
  std::uint64_t fused_ops = 0, unfused_ops = 0;
  for (bool fuse : {false, true}) {
    sysml::Runtime rt(dev, {});
    auto root = sysml::pattern_expression(
        1, sysml::input_matrix(rt.add_sparse(big, "X")),
        sysml::input_vector(rt.add_vector(vv, "v")),
        sysml::input_vector(rt.add_vector(yy, "y")), 0, nullptr);
    if (fuse) root = sysml::fuse_patterns(root);
    sysml::execute(rt, root);
    const auto& s = rt.stats();
    (fuse ? fused_ms : unfused_ms) = s.total_ms();
    (fuse ? fused_ops : unfused_ops) = s.gpu_ops + s.cpu_ops;
  }
  EXPECT_LT(fused_ops, unfused_ops);
  EXPECT_LT(fused_ms, unfused_ms);
}

TEST_F(DagFixture, NestedPatternInsideLargerExpressionFuses) {
  sysml::Runtime rt(dev, {});
  const auto Xn = sysml::input_matrix(rt.add_sparse(X, "X"));
  const auto yn = sysml::input_vector(rt.add_vector(y, "y"));
  const auto zn = sysml::input_vector(rt.add_vector(z, "z"));
  // 3 * (X^T(Xy)) + z as scale/add around a fusable core — core fuses,
  // the surrounding ops stay.
  auto root = sysml::add(
      sysml::scale(3.0, sysml::mvt(Xn, sysml::mv(Xn, yn))),
      zn);
  sysml::FusionReport report;
  root = sysml::fuse_patterns(root, &report);
  EXPECT_EQ(report.patterns_fused, 1);
  // The whole expression IS the pattern with beta=1: root collapses fully.
  EXPECT_EQ(root->kind, sysml::OpKind::kFusedPattern);
  EXPECT_DOUBLE_EQ(root->scalar, 3.0);
  EXPECT_DOUBLE_EQ(root->scalar2, 1.0);

  const auto out = sysml::execute(rt, root);
  auto expect = la::reference::pattern(3.0, X, {}, y, 0, {});
  la::axpy(1.0, z, expect);
  expect_vectors_near(expect, rt.read_vector(out), 1e-8);
}

TEST_F(DagFixture, SharedIntermediateBlocksPatternFusion) {
  // m = X*y feeds the MvT (pattern interior) AND the epilogue: fusing the
  // pattern would recompute m inside the kernel while also reading it as z.
  // The materialization-point analysis must leave the match unfused — and
  // execution must stay correct either way.
  sysml::Runtime rt(dev, {});
  const auto Xs = la::uniform_sparse(120, 120, 0.05, 907);
  const auto ys = la::random_vector(120, 6);
  const auto Xn = sysml::input_matrix(rt.add_sparse(Xs, "Xs"));
  const auto yn = sysml::input_vector(rt.add_vector(ys, "ys"));
  const auto m = sysml::mv(Xn, yn);
  auto root = sysml::add(sysml::mvt(Xn, m), sysml::scale(2.0, m));

  sysml::FusionReport report;
  root = sysml::fuse_patterns(root, &report);
  EXPECT_EQ(report.patterns_fused, 0);
  EXPECT_GE(report.rejected_multi_consumer, 1);
  EXPECT_NE(root->kind, sysml::OpKind::kFusedPattern);

  const auto out = sysml::execute(rt, root);
  auto want = la::reference::pattern(1.0, Xs, {}, ys, 0, {});
  la::axpy(2.0, la::reference::spmv(Xs, ys), want);
  expect_vectors_near(want, rt.read_vector(out), 1e-8);
}

TEST_F(DagFixture, IndependentCopiesOfThePatternStillFuse) {
  // The same STRUCTURE duplicated with fresh nodes shares nothing, so both
  // copies fuse — the analysis keys on node identity, not shape.
  sysml::Runtime rt(dev, {});
  const auto Xn = sysml::input_matrix(rt.add_sparse(X, "X"));
  const auto yn = sysml::input_vector(rt.add_vector(y, "y"));
  auto root = sysml::add(sysml::mvt(Xn, sysml::mv(Xn, yn)),
                         sysml::mvt(Xn, sysml::mv(Xn, yn)));
  sysml::FusionReport report;
  root = sysml::fuse_patterns(root, &report);
  EXPECT_EQ(report.patterns_fused, 2);
  EXPECT_EQ(report.rejected_multi_consumer, 0);
}

TEST(Dag, CountNodesHandlesSharing) {
  auto leaf = sysml::input_vector(1);
  auto shared = sysml::scale(2.0, leaf);
  auto root = sysml::add(shared, shared);  // diamond
  EXPECT_EQ(sysml::count_nodes(root), 3);
}

}  // namespace
}  // namespace fusedml
