// Tests for the §3.3 analytical launch-parameter model and the exhaustive
// autotuner, including the paper's own worked examples.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "kernels/resource_profile.h"
#include "tuner/autotune.h"
#include "tuner/launch_params.h"
#include "vgpu/device_spec.h"

namespace fusedml::tuner {
namespace {

const vgpu::DeviceSpec kTitan = vgpu::gtx_titan();

// --- Equation 4 (sparse VS) --------------------------------------------------

TEST(Eq4, VectorSizeBands) {
  EXPECT_EQ(sparse_vector_size(0.5), 1);
  EXPECT_EQ(sparse_vector_size(2.0), 1);   // mu > 2 required for VS=2
  EXPECT_EQ(sparse_vector_size(2.5), 2);
  EXPECT_EQ(sparse_vector_size(4.0), 2);
  EXPECT_EQ(sparse_vector_size(5.0), 4);
  EXPECT_EQ(sparse_vector_size(10.0), 8);
  EXPECT_EQ(sparse_vector_size(20.0), 16);
  EXPECT_EQ(sparse_vector_size(32.0), 16);
  EXPECT_EQ(sparse_vector_size(33.0), 32);
  EXPECT_EQ(sparse_vector_size(1000.0), 32);
}

TEST(Eq4, PaperFig6Setting) {
  // 500k x 1k, sparsity 0.01 => mu = 10 => VS = 8, as §4.3 states.
  EXPECT_EQ(sparse_vector_size(0.01 * 1000), 8);
}

// --- Sparse model --------------------------------------------------------------

TEST(SparseModel, SharedAggregationFeasibility) {
  // 48KB / 8B = 6144 words; §3.1: "the limit on n is close to 6K".
  EXPECT_TRUE(shared_aggregation_feasible(kTitan, 6000, 8));
  EXPECT_FALSE(shared_aggregation_feasible(kTitan, 7000, 8));
}

TEST(SparseModel, PicksSharedForSmallN) {
  const auto p = sparse_launch_params(kTitan, 500000, 1000, 10.0);
  EXPECT_TRUE(p.shared_aggregation);
  EXPECT_EQ(p.config.vector_size, 8);
  EXPECT_GT(p.config.block_size, 0);
  EXPECT_EQ(p.config.block_size % 32, 0);
  // Shared memory matches the paper's formula (BS/VS + n) * 8.
  EXPECT_EQ(p.config.resources.smem_per_block,
            kernels::sparse_fused_smem_bytes(p.config.block_size, 8, 1000));
}

TEST(SparseModel, PicksGlobalForHugeN) {
  const auto p = sparse_launch_params(kTitan, 150000, 300000, 28.0);
  EXPECT_FALSE(p.shared_aggregation);
  EXPECT_EQ(p.config.vector_size, 16);  // mu = 28 -> 16
}

TEST(SparseModel, ForcingSharedOnHugeNThrows) {
  EXPECT_THROW(sparse_launch_params(kTitan, 1000, 300000, 28.0,
                                    Aggregation::kShared),
               fusedml::Error);
}

TEST(SparseModel, CoarseningCoversAllRows) {
  for (index_t m : {100, 10000, 500000}) {
    const auto p = sparse_launch_params(kTitan, m, 1000, 10.0);
    const long long total_vectors =
        static_cast<long long>(p.config.grid_size) *
        (p.config.block_size / p.config.vector_size);
    EXPECT_GE(total_vectors * p.config.coarsening, m) << "m=" << m;
    // And not absurdly over-provisioned (balanced, Eq. 5).
    EXPECT_LT(total_vectors * (p.config.coarsening - 1), m) << "m=" << m;
  }
}

TEST(SparseModel, GridIsResidentBlocks) {
  const auto p = sparse_launch_params(kTitan, 500000, 1000, 10.0);
  EXPECT_EQ(p.config.grid_size,
            p.occupancy.blocks_per_sm * kTitan.num_sms);
}

// --- Equation 6 + dense model ----------------------------------------------------

TEST(Eq6, DenseVectorSize) {
  // n/TL > 32 -> VS = BS.
  EXPECT_EQ(dense_vector_size(2048, 4, 128), 128);
  // n/TL in (16, 32] -> VS = 32.
  EXPECT_EQ(dense_vector_size(200, 7, 128), 32);
  // Exact power: n/TL = 16 -> VS = 16.
  EXPECT_EQ(dense_vector_size(64, 4, 128), 16);
  EXPECT_EQ(dense_vector_size(1, 1, 128), 1);
}

TEST(DenseModel, PaperWastedWarpExample) {
  // §3.3: BS=128, n=200: TL=2 wastes one warp load; TL=7 wastes none.
  EXPECT_EQ(dense_vector_size(200, 2, 128), 128);
  EXPECT_EQ((128 * 2 - 200) / 32, 1);  // TL=2: one wasted warp
  EXPECT_EQ(dense_vector_size(200, 7, 128), 32);
  EXPECT_EQ((32 * 7 - 200) / 32, 0);   // TL=7: none
  const auto p = dense_launch_params(kTitan, 100000, 200);
  EXPECT_EQ(p.wasted_warps, 0) << "model should avoid wasted warp loads";
}

TEST(DenseModel, TinyNSpecialCase) {
  // §3.3: n <= 32 -> BS = 1024 and TL = 1.
  const auto p = dense_launch_params(kTitan, 100000, 28);
  EXPECT_EQ(p.config.block_size, 1024);
  EXPECT_EQ(p.config.thread_load, 1);
  EXPECT_GE(p.config.vector_size * p.config.thread_load, 28);
}

TEST(DenseModel, RegisterBudgetRespected) {
  for (index_t n : {64, 200, 512, 2048, 5000}) {
    const auto p = dense_launch_params(kTitan, 100000, n);
    EXPECT_LE(p.config.resources.regs_per_thread, 255) << "n=" << n;
    EXPECT_LE(p.config.thread_load, kernels::kDenseFusedMaxThreadLoad);
    // Row coverage invariant.
    EXPECT_GE(static_cast<long long>(p.config.vector_size) *
                  p.config.thread_load,
              n);
  }
}

TEST(DenseModel, RegsGrowWithThreadLoad) {
  EXPECT_EQ(kernels::dense_fused_regs_per_thread(1), 23);
  EXPECT_EQ(kernels::dense_fused_regs_per_thread(40), 255);
  EXPECT_LT(kernels::dense_fused_regs_per_thread(10),
            kernels::dense_fused_regs_per_thread(30));
}

// --- Exhaustive search ------------------------------------------------------------

TEST(Autotune, ModelLandsNearOptimum) {
  // Synthetic convex cost surface: minimized exactly at the model's pick,
  // so the search must (a) find it and (b) rank the model in the top 1%.
  const auto model = sparse_launch_params(kTitan, 500000, 1000, 10.0);
  const auto eval = [&](const SearchPoint& p) -> double {
    const double db = std::log2(static_cast<double>(p.block_size) /
                                model.config.block_size);
    const double dc = std::log2(static_cast<double>(p.coarsening) /
                                model.config.coarsening);
    return 1.0 + db * db + dc * dc;
  };
  const auto result = exhaustive_search(kTitan, 500000, 1000, 10.0, eval);
  EXPECT_GT(result.points.size(), 300u);
  EXPECT_NEAR(result.best_ms, 1.0, 1e-9);
  EXPECT_LT(result.model_gap_fraction(), 0.02);
  EXPECT_LT(result.model_rank_fraction(), 0.01);
  EXPECT_GT(result.worst_ms, result.best_ms);
}

TEST(Autotune, InfeasiblePointsSkipped) {
  const auto eval = [&](const SearchPoint& p) -> double {
    return p.block_size > 512 ? -1.0 : 1.0;  // mark big blocks infeasible
  };
  const auto result = exhaustive_search(kTitan, 100000, 1000, 10.0, eval);
  for (const auto& p : result.points) {
    if (p.block_size > 512) {
      EXPECT_FALSE(p.feasible);
    }
  }
  EXPECT_DOUBLE_EQ(result.best_ms, 1.0);
}

TEST(Autotune, DenseSearchFindsModelNearOptimum) {
  // Synthetic cost surface centered on the model's (TL, BS) pick.
  const auto model = dense_launch_params(kTitan, 100000, 200);
  const auto eval = [&](const DenseSearchPoint& p) -> double {
    const double dt = p.thread_load - model.config.thread_load;
    const double db = std::log2(static_cast<double>(p.block_size) /
                                model.config.block_size);
    return 1.0 + 0.01 * dt * dt + db * db;
  };
  const auto result = dense_exhaustive_search(kTitan, 100000, 200, eval);
  EXPECT_GT(result.points.size(), 40u);
  EXPECT_NEAR(result.best_ms, 1.0, 1e-9);
  EXPECT_LT(result.model_gap_fraction(), 0.02);
  // Infeasible (TL too small to cover the row at the Eq.6 VS) points exist
  // and are marked.
  bool any_infeasible = false;
  for (const auto& p : result.points) any_infeasible |= !p.feasible;
  EXPECT_TRUE(any_infeasible);
}

TEST(Autotune, DenseSearchPointsCoverRow) {
  const auto eval = [&](const DenseSearchPoint& p) -> double {
    EXPECT_GE(static_cast<long long>(p.vector_size) * p.thread_load, 512);
    return 1.0;
  };
  dense_exhaustive_search(kTitan, 50000, 512, eval);
}

TEST(Autotune, GridCoversRowsAtEveryPoint) {
  const auto eval = [&](const SearchPoint& p) -> double {
    const long long vectors =
        static_cast<long long>(p.grid_size) * (p.block_size / p.vector_size);
    EXPECT_GE(vectors * p.coarsening, 100000);
    return 1.0;
  };
  exhaustive_search(kTitan, 100000, 1000, 10.0, eval);
}

}  // namespace
}  // namespace fusedml::tuner
