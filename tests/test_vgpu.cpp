// Unit tests for the virtual GPU: coalescing model, occupancy calculator,
// shared-memory bank accounting, warp reductions, cost model, and the
// block executor.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "common/error.h"
#include "vgpu/coalescing.h"
#include "vgpu/cost_model.h"
#include "vgpu/device.h"
#include "vgpu/occupancy.h"
#include "vgpu/shared_memory.h"
#include "vgpu/warp.h"

namespace fusedml::vgpu {
namespace {

// --- Coalescing ------------------------------------------------------------

TEST(Coalescing, AlignedContiguousDoubles) {
  // 32 lanes * 8 bytes = 256 bytes = exactly 2 segments when aligned.
  EXPECT_EQ(contiguous_transactions(0, 32, 8), 2u);
  // 16 lanes * 8B = 128B = 1 segment.
  EXPECT_EQ(contiguous_transactions(0, 16, 8), 1u);
}

TEST(Coalescing, MisalignedContiguousStraddles) {
  // Starting mid-segment adds one transaction.
  EXPECT_EQ(contiguous_transactions(64, 32, 8), 3u);
}

TEST(Coalescing, SingleLane) {
  EXPECT_EQ(contiguous_transactions(1000, 1, 8), 1u);
  EXPECT_EQ(contiguous_transactions(0, 0, 8), 0u);
}

TEST(Coalescing, StridedWorstCase) {
  // Stride of one segment per lane: one transaction per lane.
  EXPECT_EQ(strided_transactions(0, 32, 128, 8), 32u);
}

TEST(Coalescing, StridedSmallStrideCollapses) {
  EXPECT_EQ(strided_transactions(0, 32, 8, 8), 2u);
}

TEST(Coalescing, GatherDeduplicatesSegments) {
  // All lanes hit the same segment -> 1 transaction (hardware broadcast).
  std::vector<std::uint64_t> same(32, 40);
  EXPECT_EQ(gather_transactions(same), 1u);
  // Each lane a different segment -> 32 transactions.
  std::vector<std::uint64_t> scattered(32);
  for (usize i = 0; i < 32; ++i) scattered[i] = i * 128;
  EXPECT_EQ(gather_transactions(scattered), 32u);
}

TEST(Coalescing, GatherRejectsOversizedWarp) {
  std::vector<std::uint64_t> too_many(33, 0);
  EXPECT_THROW(gather_transactions(too_many), Error);
}

// --- Occupancy -------------------------------------------------------------

TEST(Occupancy, UnconstrainedKernelHitsBlockLimit) {
  const auto spec = gtx_titan();
  const auto occ = compute_occupancy(spec, 256, {16, 0});
  // 8 blocks x 8 warps = 64 warps = full occupancy.
  EXPECT_EQ(occ.blocks_per_sm, 8);
  EXPECT_DOUBLE_EQ(occ.occupancy, 1.0);
}

TEST(Occupancy, RegisterLimited) {
  const auto spec = gtx_titan();
  // 128 regs/thread, 256 threads: 128*32 = 4096 regs/warp, x8 warps = 32K
  // per block -> only 2 blocks fit in 64K.
  const auto occ = compute_occupancy(spec, 256, {128, 0});
  EXPECT_EQ(occ.blocks_per_sm, 2);
  EXPECT_EQ(occ.limiter, OccupancyResult::Limiter::kRegisters);
}

TEST(Occupancy, SharedMemoryLimited) {
  const auto spec = gtx_titan();
  // 20 KB per block -> 2 blocks in 48 KB.
  const auto occ = compute_occupancy(spec, 128, {16, 20 * 1024});
  EXPECT_EQ(occ.blocks_per_sm, 2);
  EXPECT_EQ(occ.limiter, OccupancyResult::Limiter::kSharedMemory);
}

TEST(Occupancy, WarpLimited) {
  const auto spec = gtx_titan();
  // 1024-thread blocks: 32 warps each, only 2 fit in 64 warps.
  const auto occ = compute_occupancy(spec, 1024, {16, 0});
  EXPECT_EQ(occ.blocks_per_sm, 2);
  EXPECT_EQ(occ.active_warps_per_sm, 64);
}

TEST(Occupancy, ImpossibleLaunches) {
  const auto spec = gtx_titan();
  EXPECT_EQ(compute_occupancy(spec, 2048, {16, 0}).blocks_per_sm, 0);
  EXPECT_EQ(compute_occupancy(spec, 256, {300, 0}).blocks_per_sm, 0);
  EXPECT_EQ(compute_occupancy(spec, 256, {16, 1 << 20}).blocks_per_sm, 0);
  EXPECT_EQ(compute_occupancy(spec, 0, {16, 0}).limiter,
            OccupancyResult::Limiter::kInvalid);
}

TEST(Occupancy, OccupancyNeverExceedsOne) {
  const auto spec = gtx_titan();
  for (int bs = 32; bs <= 1024; bs += 32) {
    for (int regs : {16, 32, 64, 128, 255}) {
      const auto occ = compute_occupancy(spec, bs, {regs, 0});
      EXPECT_LE(occ.occupancy, 1.0);
      EXPECT_GE(occ.occupancy, 0.0);
    }
  }
}

TEST(Occupancy, BestBlockSizePrefersLargerOnTies) {
  const auto spec = gtx_titan();
  const int bs = best_block_size(spec, {32, 0});
  const auto occ = compute_occupancy(spec, bs, {32, 0});
  // Must achieve the maximum achievable warps for these resources.
  for (int other = 32; other <= 1024; other += 32) {
    const auto o = compute_occupancy(spec, other, {32, 0});
    EXPECT_LE(o.active_warps_per_sm, occ.active_warps_per_sm);
  }
}

TEST(Occupancy, SmallDeviceDiffersFromTitan) {
  const auto occ_small = compute_occupancy(small_kepler(), 256, {43, 8192});
  const auto occ_titan = compute_occupancy(gtx_titan(), 256, {43, 8192});
  EXPECT_LT(occ_small.active_warps_per_sm, occ_titan.active_warps_per_sm);
}

// --- Shared memory ----------------------------------------------------------

TEST(SharedMemory, LoadStoreAtomic) {
  MemCounters c;
  SharedMemory sm(64, 32, c);
  sm.store(3, 1.5);
  sm.atomic_add(3, 2.0);
  EXPECT_DOUBLE_EQ(sm.load(3), 3.5);
  EXPECT_EQ(c.smem_accesses, 3u);
  EXPECT_EQ(c.atomic_shared_ops, 1u);
}

TEST(SharedMemory, OutOfBoundsThrows) {
  MemCounters c;
  SharedMemory sm(8, 32, c);
  EXPECT_THROW(sm.load(8), Error);
  EXPECT_THROW(sm.store(100, 1.0), Error);
}

TEST(SharedMemory, ConflictFreeWarpAccess) {
  MemCounters c;
  SharedMemory sm(64, 32, c);
  std::vector<usize> addrs(32);
  std::iota(addrs.begin(), addrs.end(), 0);  // each lane its own bank
  EXPECT_EQ(sm.warp_access(addrs), 1);
  EXPECT_EQ(c.smem_bank_conflicts, 0u);
}

TEST(SharedMemory, SameWordBroadcastsFree) {
  MemCounters c;
  SharedMemory sm(64, 32, c);
  std::vector<usize> addrs(32, 5);  // all lanes read word 5
  EXPECT_EQ(sm.warp_access(addrs), 1);
  EXPECT_EQ(c.smem_bank_conflicts, 0u);
}

TEST(SharedMemory, StridedAccessConflicts) {
  MemCounters c;
  SharedMemory sm(1024, 32, c);
  // Stride 32: every lane maps to bank 0, different words -> 32 passes.
  std::vector<usize> addrs(32);
  for (usize i = 0; i < 32; ++i) addrs[i] = i * 32;
  EXPECT_EQ(sm.warp_access(addrs), 32);
  EXPECT_EQ(c.smem_bank_conflicts, 31u);
}

// --- Warp primitives ---------------------------------------------------------

TEST(Warp, ShuffleReduceSums) {
  MemCounters c;
  std::vector<real> lanes = {1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_DOUBLE_EQ(shuffle_reduce_sum(lanes, c), 36.0);
  EXPECT_EQ(c.shuffle_ops, 7u);  // 4 + 2 + 1
}

TEST(Warp, SingleLaneIsIdentity) {
  MemCounters c;
  std::vector<real> one = {42.0};
  EXPECT_DOUBLE_EQ(shuffle_reduce_sum(one, c), 42.0);
  EXPECT_EQ(c.shuffle_ops, 0u);
}

TEST(Warp, RejectsNonPowerOfTwo) {
  MemCounters c;
  std::vector<real> bad(3, 1.0);
  EXPECT_THROW(shuffle_reduce_sum(bad, c), Error);
  std::vector<real> too_big(64, 1.0);
  EXPECT_THROW(shuffle_reduce_sum(too_big, c), Error);
}

// --- Cost model ---------------------------------------------------------------

TEST(CostModel, MoreTrafficCostsMore) {
  const CostModel model(gtx_titan());
  OccupancyResult occ;
  occ.occupancy = 1.0;
  MemCounters small, large;
  small.gld_transactions = 1000;
  large.gld_transactions = 100000;
  EXPECT_LT(model.kernel_time(small, occ).total_ms,
            model.kernel_time(large, occ).total_ms);
}

TEST(CostModel, LowOccupancyDegradesBandwidth) {
  const CostModel model(gtx_titan());
  MemCounters c;
  c.gld_transactions = 1'000'000;
  OccupancyResult high, low;
  high.occupancy = 1.0;
  low.occupancy = 0.05;
  EXPECT_GT(model.kernel_time(c, low).dram_ms,
            model.kernel_time(c, high).dram_ms);
}

TEST(CostModel, L2HitsCheaperThanDram) {
  const CostModel model(gtx_titan());
  OccupancyResult occ;
  occ.occupancy = 1.0;
  MemCounters dram, l2;
  dram.gld_transactions = 100000;
  l2.l2_hit_transactions = 100000;
  EXPECT_GT(model.kernel_time(dram, occ).total_ms,
            model.kernel_time(l2, occ).total_ms);
}

TEST(CostModel, ContendedAtomicsSerialize) {
  const CostModel model(gtx_titan());
  OccupancyResult occ;
  occ.occupancy = 1.0;
  MemCounters spread, contended;
  spread.atomic_global_ops = 1'000'000;
  spread.atomic_global_targets = 1'000'000;
  contended.atomic_global_ops = 1'000'000;
  contended.atomic_global_targets = 100;  // 10k ops per address
  EXPECT_GT(model.kernel_time(contended, occ).atomic_ms,
            model.kernel_time(spread, occ).atomic_ms);
}

TEST(CostModel, LaunchOverheadFloorsEmptyKernel) {
  const CostModel model(gtx_titan());
  OccupancyResult occ;
  occ.occupancy = 1.0;
  const auto t = model.kernel_time(MemCounters{}, occ);
  EXPECT_NEAR(t.total_ms, model.params().launch_overhead_us / 1e3, 1e-12);
}

TEST(CostModel, TransferMatchesPcieModel) {
  const CostModel model(gtx_titan());
  // ~5.3 GB (the KDD set) over the 6 GB/s effective link: ~890 ms, in the
  // ballpark of the paper's measured 939 ms.
  const double ms = model.transfer_ms(5'300'000'000ull);
  EXPECT_GT(ms, 700.0);
  EXPECT_LT(ms, 1100.0);
}

// --- Executor ------------------------------------------------------------------

TEST(Device, LaunchRunsEveryBlockOnce) {
  Device dev;
  LaunchConfig cfg;
  cfg.grid_size = 37;
  cfg.block_size = 64;
  std::vector<real> hits(37, 0);
  const auto stats = dev.launch(cfg, [&](BlockCtx& ctx) {
    atomic_add(hits[static_cast<usize>(ctx.block_id())], 1.0);
  });
  for (real h : hits) EXPECT_DOUBLE_EQ(h, 1.0);
  EXPECT_EQ(stats.config.grid_size, 37);
}

TEST(Device, CountersMergeAcrossBlocks) {
  Device dev;
  LaunchConfig cfg;
  cfg.grid_size = 4;
  cfg.block_size = 32;
  const auto stats = dev.launch(cfg, [&](BlockCtx& ctx) {
    ctx.mem().load_contiguous(0, 32, 8);
    ctx.mem().add_flops(10);
  });
  EXPECT_EQ(stats.counters.gld_transactions, 4u * 2u);
  EXPECT_EQ(stats.counters.flops, 40u);
}

TEST(Device, SharedMemoryIsPerBlock) {
  Device dev;
  LaunchConfig cfg;
  cfg.grid_size = 8;
  cfg.block_size = 32;
  cfg.smem_words = 4;
  dev.launch(cfg, [&](BlockCtx& ctx) {
    // Fresh (zeroed) shared memory in every block.
    EXPECT_DOUBLE_EQ(ctx.smem().load(0), 0.0);
    ctx.smem().store(0, static_cast<real>(ctx.block_id()));
  });
}

TEST(Device, SessionAccounting) {
  Device dev;
  dev.reset_session();
  LaunchConfig cfg;
  cfg.grid_size = 1;
  cfg.block_size = 32;
  dev.launch(cfg, [](BlockCtx&) {});
  dev.launch(cfg, [](BlockCtx&) {});
  dev.transfer_h2d_ms(1 << 20);
  EXPECT_EQ(dev.session_launches(), 2u);
  EXPECT_GT(dev.session_modeled_ms(), 0.0);
  EXPECT_GT(dev.session_transfer_ms(), 0.0);
  dev.reset_session();
  EXPECT_EQ(dev.session_launches(), 0u);
}

TEST(Device, RejectsBadConfigs) {
  Device dev;
  LaunchConfig cfg;
  cfg.grid_size = 1;
  cfg.block_size = 4096;  // above device limit
  EXPECT_THROW(dev.launch(cfg, [](BlockCtx&) {}), Error);
  cfg.block_size = 48;
  cfg.vector_size = 32;  // 48 % 32 != 0
  EXPECT_THROW(dev.launch(cfg, [](BlockCtx&) {}), Error);
}

TEST(Device, ParallelHostExecutionMatchesSequential) {
  Device seq(gtx_titan(), {}, 1);
  Device par(gtx_titan(), {}, 4);
  LaunchConfig cfg;
  cfg.grid_size = 64;
  cfg.block_size = 32;
  std::vector<real> acc_seq(1, 0), acc_par(1, 0);
  const auto s1 = seq.launch(cfg, [&](BlockCtx& ctx) {
    ctx.mem().add_flops(7);
    atomic_add(acc_seq[0], 1.0);
  });
  const auto s2 = par.launch(cfg, [&](BlockCtx& ctx) {
    ctx.mem().add_flops(7);
    atomic_add(acc_par[0], 1.0);
  });
  EXPECT_DOUBLE_EQ(acc_seq[0], acc_par[0]);
  EXPECT_EQ(s1.counters.flops, s2.counters.flops);
}

}  // namespace
}  // namespace fusedml::vgpu
