// Tests for the ML algorithms: convergence on recoverable synthetic
// problems, backend-independence of results, and Table-1 pattern usage.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "la/convert.h"
#include "la/generate.h"
#include "la/vector_ops.h"
#include "ml/glm.h"
#include "ml/hits.h"
#include "ml/logreg.h"
#include "ml/lr_cg.h"
#include "ml/svm.h"
#include "patterns/executor.h"
#include "test_util.h"

namespace fusedml::ml {
namespace {

using la::random_vector;
using la::uniform_sparse;
using patterns::Backend;
using patterns::PatternKind;

// --- Linear Regression CG ------------------------------------------------------

TEST(LrCg, RecoversTrueWeightsNoiseless) {
  vgpu::Device dev;
  patterns::PatternExecutor exec(dev, Backend::kFused);
  const auto X = uniform_sparse(2000, 50, 0.2, 501);
  const auto y = la::regression_labels(X, 501, 0.0);
  const auto w_true = la::regression_true_weights(50, 501);

  LrCgConfig cfg;
  cfg.eps = 1e-9;  // nearly exact normal equations
  const auto result = lr_cg(exec, X, y, cfg);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(result.final_norm2, result.initial_norm2 * 1e-9);
  test::expect_vectors_near(w_true, result.weights, 1e-4);
}

TEST(LrCg, AllBackendsAgree) {
  vgpu::Device dev;
  const auto X = uniform_sparse(500, 40, 0.15, 502);
  const auto y = la::regression_labels(X, 502, 0.05);
  LrCgConfig cfg;
  cfg.max_iterations = 20;

  patterns::PatternExecutor fused(dev, Backend::kFused);
  const auto base = lr_cg(fused, X, y, cfg);
  for (Backend b : {Backend::kCusparse, Backend::kBidmatGpu, Backend::kCpu}) {
    patterns::PatternExecutor exec(dev, b);
    const auto other = lr_cg(exec, X, y, cfg);
    EXPECT_EQ(other.stats.iterations, base.stats.iterations);
    test::expect_vectors_near(base.weights, other.weights, 1e-6);
  }
}

TEST(LrCg, DenseMatchesSparse) {
  vgpu::Device dev;
  patterns::PatternExecutor exec(dev, Backend::kFused);
  const auto Xs = uniform_sparse(400, 30, 0.3, 503);
  const auto Xd = la::csr_to_dense(Xs);
  const auto y = la::regression_labels(Xs, 503, 0.01);
  LrCgConfig cfg;
  cfg.max_iterations = 25;
  const auto rs = lr_cg(exec, Xs, y, cfg);
  const auto rd = lr_cg(exec, Xd, y, cfg);
  test::expect_vectors_near(rs.weights, rd.weights, 1e-6);
}

TEST(LrCg, UsesTheTable1Patterns) {
  vgpu::Device dev;
  patterns::PatternExecutor exec(dev, Backend::kFused);
  const auto X = uniform_sparse(300, 30, 0.2, 504);
  const auto y = la::regression_labels(X, 504, 0.1);
  lr_cg(exec, X, y);
  const auto& usage = exec.usage();
  // Table 1, LR row: a*X^T*y and X^T*(X*y)+b*z.
  EXPECT_GT(usage.at(PatternKind::kXty), 0u);
  EXPECT_GT(usage.at(PatternKind::kXtXyBz), 0u);
  EXPECT_EQ(usage.count(PatternKind::kXtVXy), 0u);
  EXPECT_EQ(usage.count(PatternKind::kFull), 0u);
}

TEST(LrCg, StatsSplitPatternVsBlas1) {
  vgpu::Device dev;
  patterns::PatternExecutor exec(dev, Backend::kFused);
  // Large enough that kernel work dwarfs per-launch overhead — the regime
  // Table 2 measures (82.9-99.4% of time in the pattern).
  const auto X = uniform_sparse(50000, 300, 0.05, 505);
  const auto y = la::regression_labels(X, 505, 0.1);
  LrCgConfig cfg;
  cfg.max_iterations = 10;
  const auto r = lr_cg(exec, X, y, cfg);
  EXPECT_GT(r.stats.pattern_modeled_ms, 0.0);
  EXPECT_GT(r.stats.blas1_modeled_ms, 0.0);
  EXPECT_GT(r.stats.pattern_modeled_ms, r.stats.blas1_modeled_ms)
      << "the pattern dominates (Table 2's point)";
  EXPECT_GT(r.stats.launches, 0u);
}

// --- Logistic Regression ----------------------------------------------------------

TEST(LogReg, SeparatesLinearlySeparableData) {
  vgpu::Device dev;
  patterns::PatternExecutor exec(dev, Backend::kFused);
  const auto X = uniform_sparse(800, 30, 0.3, 511);
  const auto y = la::classification_labels(X, 511, 0.0);
  LogRegConfig cfg;
  cfg.lambda = 0.1;
  const auto result = logreg_trust_region(exec, X, y, cfg);

  const auto probs = logreg_predict(exec, X, result.weights);
  int correct = 0;
  for (usize i = 0; i < probs.size(); ++i) {
    const real pred = probs[i] >= 0.5 ? 1.0 : -1.0;
    if (pred == y[i]) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / probs.size(), 0.9);
  EXPECT_GT(result.cg_iterations_total, 0);
}

TEST(LogReg, UsesTheFullPattern) {
  vgpu::Device dev;
  patterns::PatternExecutor exec(dev, Backend::kFused);
  const auto X = uniform_sparse(300, 20, 0.3, 512);
  const auto y = la::classification_labels(X, 512, 0.1);
  logreg_trust_region(exec, X, y);
  // Table 1, LogReg row: the v-weighted forms.
  EXPECT_GT(exec.usage().at(PatternKind::kFull), 0u);
  EXPECT_GT(exec.usage().at(PatternKind::kXty), 0u);
}

TEST(LogReg, ObjectiveDecreasesWithIterations) {
  vgpu::Device dev;
  patterns::PatternExecutor exec(dev, Backend::kFused);
  const auto X = uniform_sparse(400, 25, 0.3, 513);
  const auto y = la::classification_labels(X, 513, 0.2);
  LogRegConfig one, many;
  one.max_newton_iterations = 1;
  many.max_newton_iterations = 15;
  const auto r1 = logreg_trust_region(exec, X, y, one);
  const auto r2 = logreg_trust_region(exec, X, y, many);
  EXPECT_LE(r2.final_objective, r1.final_objective + 1e-9);
}

TEST(LogRegMultinomial, SeparatesThreeClasses) {
  vgpu::Device dev;
  patterns::PatternExecutor exec(dev, Backend::kFused);
  // Three clusters in feature space: class = argmax of three planted
  // weight vectors.
  const auto X = uniform_sparse(900, 30, 0.3, 514);
  std::vector<std::vector<real>> w_true;
  for (int k = 0; k < 3; ++k) {
    w_true.push_back(la::regression_true_weights(30, 514 + k));
  }
  std::vector<real> labels(900);
  for (index_t i = 0; i < 900; ++i) {
    real best = -1e300;
    int arg = 0;
    for (int k = 0; k < 3; ++k) {
      const auto m = la::reference::spmv(X, w_true[static_cast<usize>(k)]);
      if (m[static_cast<usize>(i)] > best) {
        best = m[static_cast<usize>(i)];
        arg = k;
      }
    }
    labels[static_cast<usize>(i)] = static_cast<real>(arg);
  }
  LogRegConfig cfg;
  cfg.lambda = 0.1;
  const auto model = logreg_multinomial(exec, X, labels, 3, cfg);
  ASSERT_EQ(model.class_weights.size(), 3u);
  const auto probs = logreg_multinomial_predict(exec, X, model);
  const auto pred = argmax_rows(probs, 3);
  int correct = 0;
  for (usize i = 0; i < pred.size(); ++i) {
    if (pred[i] == static_cast<int>(labels[i])) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / pred.size(), 0.75);
  // Probabilities are normalized.
  for (usize i = 0; i < 900; ++i) {
    real sum = 0;
    for (int k = 0; k < 3; ++k) sum += probs[i * 3 + k];
    ASSERT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(LogRegMultinomial, RejectsBadLabels) {
  vgpu::Device dev;
  patterns::PatternExecutor exec(dev, Backend::kFused);
  const auto X = uniform_sparse(10, 5, 0.5, 515);
  std::vector<real> labels(10, 7.0);  // out of range for 3 classes
  EXPECT_THROW(logreg_multinomial(exec, X, labels, 3), Error);
  EXPECT_THROW(logreg_multinomial(exec, X, labels, 1), Error);
}

TEST(LogRegMultinomial, ArgmaxRows) {
  const std::vector<real> probs = {0.1, 0.7, 0.2, 0.5, 0.3, 0.2};
  const auto arg = argmax_rows(probs, 3);
  ASSERT_EQ(arg.size(), 2u);
  EXPECT_EQ(arg[0], 1);
  EXPECT_EQ(arg[1], 0);
  EXPECT_THROW(argmax_rows(probs, 4), Error);
}

// --- SVM ----------------------------------------------------------------------------

TEST(Svm, SeparatesAndShrinksSupportSet) {
  vgpu::Device dev;
  patterns::PatternExecutor exec(dev, Backend::kFused);
  const auto X = uniform_sparse(600, 25, 0.3, 521);
  const auto y = la::classification_labels(X, 521, 0.0);
  SvmConfig cfg;
  cfg.C = 10.0;
  const auto result = svm_primal(exec, X, y, cfg);

  const auto decision = svm_decision(exec, X, result.weights);
  int correct = 0;
  for (usize i = 0; i < decision.size(); ++i) {
    if ((decision[i] >= 0 ? 1.0 : -1.0) == y[i]) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / decision.size(), 0.9);
  EXPECT_LT(result.support_vectors, 600);
}

TEST(Svm, UsesOnlyNoVPatterns) {
  vgpu::Device dev;
  patterns::PatternExecutor exec(dev, Backend::kFused);
  const auto X = uniform_sparse(300, 20, 0.3, 522);
  const auto y = la::classification_labels(X, 522, 0.1);
  svm_primal(exec, X, y);
  // Table 1, SVM row: kXty, kXtXy(+bz) — never the v forms.
  EXPECT_GT(exec.usage().at(PatternKind::kXty), 0u);
  EXPECT_GT(exec.usage().at(PatternKind::kXtXyBz), 0u);
  EXPECT_EQ(exec.usage().count(PatternKind::kXtVXy), 0u);
  EXPECT_EQ(exec.usage().count(PatternKind::kFull), 0u);
}

// --- GLM ------------------------------------------------------------------------------

TEST(Glm, PoissonRecoversRates) {
  vgpu::Device dev;
  patterns::PatternExecutor exec(dev, Backend::kFused);
  // Small weights keep exp(eta) tame.
  const auto X = uniform_sparse(1500, 15, 0.4, 531);
  auto w_true = la::regression_true_weights(15, 531);
  for (real& w : w_true) w *= 0.3;
  auto eta = la::reference::spmv(X, w_true);
  Rng rng(531);
  std::vector<real> y(eta.size());
  for (usize i = 0; i < y.size(); ++i) {
    y[i] = static_cast<real>(rng.poisson(std::exp(eta[i])));
  }
  GlmConfig cfg;
  cfg.family = GlmFamily::kPoisson;
  const auto result = glm_irls(exec, X, y, cfg);
  // Fitted linear predictor correlates strongly with the truth.
  const auto eta_fit = la::reference::spmv(X, result.weights);
  real num = 0, da = 0, db = 0;
  for (usize i = 0; i < eta.size(); ++i) {
    num += eta[i] * eta_fit[i];
    da += eta[i] * eta[i];
    db += eta_fit[i] * eta_fit[i];
  }
  EXPECT_GT(num / std::sqrt(da * db + 1e-30), 0.9);
}

TEST(Glm, GaussianReducesToLeastSquares) {
  vgpu::Device dev;
  patterns::PatternExecutor exec(dev, Backend::kFused);
  const auto X = uniform_sparse(800, 20, 0.3, 532);
  const auto y = la::regression_labels(X, 532, 0.0);
  GlmConfig cfg;
  cfg.family = GlmFamily::kGaussian;
  const auto result = glm_irls(exec, X, y, cfg);
  const auto w_true = la::regression_true_weights(20, 532);
  test::expect_vectors_near(w_true, result.weights, 1e-3);
}

TEST(Glm, UsesVWeightedPattern) {
  vgpu::Device dev;
  patterns::PatternExecutor exec(dev, Backend::kFused);
  const auto X = uniform_sparse(300, 15, 0.3, 533);
  const auto y = la::classification_labels(X, 533, 0.1);
  std::vector<real> y01(y.size());
  for (usize i = 0; i < y.size(); ++i) y01[i] = y[i] > 0 ? 1.0 : 0.0;
  GlmConfig cfg;
  cfg.family = GlmFamily::kBinomial;
  glm_irls(exec, X, y01, cfg);
  // Table 1, GLM row: includes X^T(v⊙(Xy)) — here with +ridge z as kFull.
  EXPECT_GT(exec.usage().at(PatternKind::kXty), 0u);
  EXPECT_GT(exec.usage().at(PatternKind::kFull), 0u);
}

// --- HITS ------------------------------------------------------------------------------

TEST(Hits, FindsTheDominantAuthority) {
  vgpu::Device dev;
  patterns::PatternExecutor exec(dev, Backend::kFused);
  // Star graph: every page links to page 0, page 0 links to page 1.
  la::CooMatrix coo(20, 20);
  for (index_t i = 1; i < 20; ++i) coo.add(i, 0, 1.0);
  coo.add(0, 1, 1.0);
  const auto X = la::coo_to_csr(coo);
  const auto result = hits(exec, X);
  EXPECT_TRUE(result.converged);
  // Page 0 is the clear authority.
  usize argmax = 0;
  for (usize j = 1; j < result.authorities.size(); ++j) {
    if (result.authorities[j] > result.authorities[argmax]) argmax = j;
  }
  EXPECT_EQ(argmax, 0u);
  // Scores are unit-normalized.
  EXPECT_NEAR(la::nrm2(result.authorities), 1.0, 1e-9);
  EXPECT_NEAR(la::nrm2(result.hubs), 1.0, 1e-9);
}

TEST(Hits, UsesXtXyPattern) {
  vgpu::Device dev;
  patterns::PatternExecutor exec(dev, Backend::kFused);
  const auto X = uniform_sparse(50, 50, 0.1, 541);
  hits(exec, X, {.max_iterations = 5});
  EXPECT_GT(exec.usage().at(PatternKind::kXtXy), 0u);
}

TEST(Hits, AgreesAcrossBackends) {
  vgpu::Device dev;
  const auto X = uniform_sparse(60, 40, 0.15, 542);
  patterns::PatternExecutor a(dev, Backend::kFused);
  patterns::PatternExecutor b(dev, Backend::kCpu);
  const auto ra = hits(a, X, {.max_iterations = 20});
  const auto rb = hits(b, X, {.max_iterations = 20});
  test::expect_vectors_near(ra.authorities, rb.authorities, 1e-7);
}

}  // namespace
}  // namespace fusedml::ml
