// Tests for the mini SystemML runtime: memory-manager invariants (tasks a-e
// of §4.4), JNI bridge charging, scheduler placement, and the end-to-end
// LR-CG script.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "la/convert.h"
#include "la/generate.h"
#include "la/vector_ops.h"
#include "ml/lr_cg.h"
#include "patterns/executor.h"
#include "sysml/jni_bridge.h"
#include "ml/script_library.h"
#include "sysml/memory_manager.h"
#include "sysml/runtime.h"
#include "test_util.h"

namespace fusedml::sysml {
namespace {

using ml::GdConfig;
using ml::ScriptConfig;
using ml::run_logreg_gd_script;
using ml::run_lr_cg_script;

std::string tensor_name(long long id) {
  std::string name = "t";
  name += std::to_string(id);
  return name;
}

// --- Memory manager ----------------------------------------------------------

class MemoryManagerTest : public ::testing::Test {
 protected:
  vgpu::Device dev;
};

TEST_F(MemoryManagerTest, UploadOnceThenCached) {
  MemoryManager mm(dev, 1 << 20);
  mm.register_tensor(1, 1000, "x");
  EXPECT_GT(mm.ensure_on_device(1), 0.0);  // first: transfer
  EXPECT_DOUBLE_EQ(mm.ensure_on_device(1), 0.0);  // cached
  EXPECT_EQ(mm.stats().h2d_transfers, 1u);
  EXPECT_TRUE(mm.on_device(1));
}

TEST_F(MemoryManagerTest, CapacityNeverExceeded) {
  MemoryManager mm(dev, 1000);
  for (TensorId id = 1; id <= 10; ++id) {
    mm.register_tensor(id, 300, tensor_name(id));
    mm.ensure_on_device(id);
    EXPECT_LE(mm.device_bytes_in_use(), mm.capacity());
  }
  EXPECT_GT(mm.stats().evictions, 0u);
}

TEST_F(MemoryManagerTest, LruEvictionOrder) {
  MemoryManager mm(dev, 1000);
  mm.register_tensor(1, 400, "a");
  mm.register_tensor(2, 400, "b");
  mm.register_tensor(3, 400, "c");
  mm.ensure_on_device(1);
  mm.ensure_on_device(2);
  mm.ensure_on_device(1);  // touch a: b is now LRU
  mm.ensure_on_device(3);  // must evict b
  EXPECT_TRUE(mm.on_device(1));
  EXPECT_FALSE(mm.on_device(2));
  EXPECT_TRUE(mm.on_device(3));
}

TEST_F(MemoryManagerTest, DirtyVictimWrittenBackOnEviction) {
  MemoryManager mm(dev, 1000);
  mm.register_tensor(1, 600, "a");
  mm.register_tensor(2, 600, "b");
  mm.ensure_on_device(1);
  mm.mark_device_dirty(1);
  mm.ensure_on_device(2);  // evicts dirty a -> D2H write-back
  EXPECT_EQ(mm.stats().d2h_transfers, 1u);
  EXPECT_EQ(mm.residency(1), Residency::kHostOnly);
}

TEST_F(MemoryManagerTest, HostDirtyTriggersReupload) {
  MemoryManager mm(dev, 1 << 20);
  mm.register_tensor(1, 500, "x");
  mm.ensure_on_device(1);
  mm.mark_host_dirty(1);
  EXPECT_GT(mm.ensure_on_device(1), 0.0);  // refresh upload
  EXPECT_EQ(mm.stats().h2d_transfers, 2u);
}

TEST_F(MemoryManagerTest, EnsureOnHostSyncsDeviceDirty) {
  MemoryManager mm(dev, 1 << 20);
  mm.register_tensor(1, 500, "x");
  mm.ensure_on_device(1);
  mm.mark_device_dirty(1);
  EXPECT_GT(mm.ensure_on_host(1), 0.0);
  EXPECT_EQ(mm.residency(1), Residency::kSynced);
  EXPECT_DOUBLE_EQ(mm.ensure_on_host(1), 0.0);  // already synced
}

TEST_F(MemoryManagerTest, ReleaseMarksSlotForReuse) {
  MemoryManager mm(dev, 1 << 20);
  mm.register_tensor(1, 500, "x");
  mm.ensure_on_device(1);
  mm.release(1);
  EXPECT_FALSE(mm.on_device(1));
  mm.ensure_on_device(1);
  EXPECT_EQ(mm.stats().allocation_reuses, 1u);  // task (c)
}

TEST_F(MemoryManagerTest, AllocateOnDeviceSkipsUpload) {
  MemoryManager mm(dev, 1 << 20);
  mm.register_tensor(1, 500, "out");
  mm.allocate_on_device(1);
  EXPECT_TRUE(mm.on_device(1));
  EXPECT_EQ(mm.stats().h2d_transfers, 0u);
  EXPECT_EQ(mm.residency(1), Residency::kDeviceDirty);
}

TEST_F(MemoryManagerTest, OversizedTensorRoutedToStreaming) {
  // A tensor larger than device capacity registers fine but can never be
  // made resident; needs_streaming flags it for the out-of-core path.
  MemoryManager mm(dev, 1000);
  mm.register_tensor(1, 2000, "huge");
  EXPECT_TRUE(mm.needs_streaming(1));
  EXPECT_THROW(mm.ensure_on_device(1), DeviceOomError);
  EXPECT_THROW(mm.allocate_on_device(1), DeviceOomError);
  EXPECT_FALSE(mm.on_device(1));
  mm.note_streaming_fallback();
  EXPECT_EQ(mm.stats().streaming_fallbacks, 1u);

  mm.register_tensor(2, 500, "fits");
  EXPECT_FALSE(mm.needs_streaming(2));
  EXPECT_GT(mm.ensure_on_device(2), 0.0);
}

TEST_F(MemoryManagerTest, NeverResidentTensorIsSafeToReleaseAndSync) {
  MemoryManager mm(dev, 1000);
  mm.register_tensor(1, 400, "ghost");
  // Neither call may throw or charge transfers for a tensor that never
  // reached the device.
  EXPECT_DOUBLE_EQ(mm.release(1), 0.0);
  EXPECT_DOUBLE_EQ(mm.ensure_on_host(1), 0.0);
  EXPECT_EQ(mm.residency(1), Residency::kHostOnly);
  EXPECT_EQ(mm.stats().h2d_transfers, 0u);
  EXPECT_EQ(mm.stats().d2h_transfers, 0u);
}

TEST_F(MemoryManagerTest, ZeroHeadroomEvictsDeviceDirtyVictimWithWriteback) {
  // Capacity holds exactly one tensor: bringing in the second under zero
  // headroom must evict the first, writing it back because it is dirty.
  MemoryManager mm(dev, 500);
  mm.register_tensor(1, 500, "a");
  mm.register_tensor(2, 500, "b");
  mm.ensure_on_device(1);
  mm.mark_device_dirty(1);
  mm.ensure_on_device(2);
  EXPECT_FALSE(mm.on_device(1));
  EXPECT_TRUE(mm.on_device(2));
  EXPECT_EQ(mm.stats().evictions, 1u);
  EXPECT_EQ(mm.stats().d2h_transfers, 1u);  // dirty victim written back
  EXPECT_EQ(mm.residency(1), Residency::kHostOnly);
  EXPECT_LE(mm.device_bytes_in_use(), mm.capacity());
}

TEST_F(MemoryManagerTest, PeakTracksHighWater) {
  MemoryManager mm(dev, 2000);
  mm.register_tensor(1, 800, "a");
  mm.register_tensor(2, 800, "b");
  mm.ensure_on_device(1);
  mm.ensure_on_device(2);
  mm.release(1);
  EXPECT_EQ(mm.stats().peak_device_bytes, 1600u);
}

// --- JNI bridge ----------------------------------------------------------------

TEST(JniBridge, SparseCostsScaleWithSize) {
  JniBridge jni;
  const auto small = la::uniform_sparse(100, 50, 0.1, 601);
  const auto large = la::uniform_sparse(10000, 50, 0.1, 602);
  EXPECT_LT(jni.sparse_to_native(small).total_ms(),
            jni.sparse_to_native(large).total_ms());
}

TEST(JniBridge, SparseConversionSlowerThanDensePerByte) {
  JniBridge jni;
  const auto sp = la::uniform_sparse(2000, 1000, 0.5, 603);
  const auto dn = la::csr_to_dense(sp);
  const double sparse_per_byte =
      jni.sparse_to_native(sp).convert_ms / static_cast<double>(sp.bytes());
  const double dense_per_byte =
      jni.dense_to_native(dn).convert_ms / static_cast<double>(dn.bytes());
  EXPECT_GT(sparse_per_byte, dense_per_byte);
}

TEST(JniBridge, VectorChargeIsSmallButNonzero) {
  JniBridge jni;
  const auto c = jni.vector_to_native(1000);
  EXPECT_GT(c.total_ms(), 0.0);
  EXPECT_LT(c.total_ms(), 1.0);
}

// --- Runtime scheduling -----------------------------------------------------------

TEST(Runtime, GpuDisabledRunsEverythingOnCpu) {
  vgpu::Device dev;
  Runtime rt(dev, {.enable_gpu = false});
  const auto X = la::uniform_sparse(500, 100, 0.05, 611);
  const auto Xid = rt.add_sparse(X, "X");
  const auto yid = rt.add_vector(la::random_vector(100, 1), "y");
  rt.op_pattern(1, Xid, 0, yid, 0, 0);
  EXPECT_EQ(rt.stats().gpu_ops, 0u);
  EXPECT_GT(rt.stats().cpu_ops, 0u);
  EXPECT_DOUBLE_EQ(rt.stats().jni_ms, 0.0);
}

TEST(Runtime, BigPatternGoesToGpu) {
  vgpu::Device dev;
  Runtime rt(dev, {});
  const auto X = la::uniform_sparse(20000, 500, 0.05, 612);
  const auto Xid = rt.add_sparse(X, "X");
  const auto yid = rt.add_vector(la::random_vector(500, 2), "y");
  rt.op_pattern(1, Xid, 0, yid, 0, 0);
  rt.op_pattern(1, Xid, 0, yid, 0, 0);  // second op reuses the device copy
  EXPECT_EQ(rt.stats().gpu_ops, 2u);
  EXPECT_GT(rt.stats().jni_ms, 0.0);
  // X uploaded once only.
  EXPECT_LE(rt.memory_stats().h2d_transfers, 3u);  // X + y (+ nothing else)
}

TEST(Runtime, ResultsMatchReferenceEitherWay) {
  vgpu::Device dev;
  const auto X = la::uniform_sparse(800, 120, 0.05, 613);
  const auto y = la::random_vector(120, 3);
  const auto expect = la::reference::pattern(1, X, {}, y, 0, {});
  for (bool gpu : {true, false}) {
    Runtime rt(dev, {.enable_gpu = gpu});
    const auto Xid = rt.add_sparse(X, "X");
    const auto yid = rt.add_vector(y, "y");
    const auto out = rt.op_pattern(1, Xid, 0, yid, 0, 0);
    test::expect_vectors_near(expect, rt.read_vector(out));
  }
}

TEST(Runtime, Blas1OnHostDataStaysOnCpu) {
  vgpu::Device dev;
  Runtime rt(dev, {});
  // Small vectors: PCIe round trip dwarfs the op; scheduler must pick CPU.
  const auto a = rt.add_vector(la::random_vector(100, 4), "a");
  const auto b = rt.add_vector(la::random_vector(100, 5), "b");
  rt.op_dot(a, b);
  EXPECT_EQ(rt.stats().gpu_ops, 0u);
  EXPECT_EQ(rt.stats().cpu_ops, 1u);
}

// --- End-to-end script (Table 6 shape) -----------------------------------------------

TEST(Script, WeightsMatchDirectSolver) {
  vgpu::Device dev;
  const auto X = la::uniform_sparse(1500, 80, 0.05, 621);
  const auto y = la::regression_labels(X, 621, 0.05);
  ScriptConfig cfg;
  cfg.max_iterations = 30;

  Runtime rt(dev, {});
  const auto script = run_lr_cg_script(rt, X, y, PlanMode::kHardcodedPass, cfg);

  patterns::PatternExecutor exec(dev, patterns::Backend::kFused);
  ml::LrCgConfig direct_cfg;
  direct_cfg.max_iterations = 30;
  const auto direct = ml::lr_cg(exec, X, y, direct_cfg);

  EXPECT_EQ(script.iterations, direct.stats.iterations);
  test::expect_vectors_near(direct.weights, script.weights, 1e-6);
}

TEST(Script, GpuBeatsCpuButLessThanKernelAlone) {
  vgpu::Device dev;
  // Large enough — and iterated long enough — that the one-time JNI
  // conversion and upload amortize (the paper's KDD run does 100
  // iterations); tolerance 0 pins the iteration count.
  const auto X = la::uniform_sparse(60000, 500, 0.02, 622);
  const auto y = la::regression_labels(X, 622, 0.1);
  ScriptConfig cfg;
  cfg.max_iterations = 60;
  cfg.tolerance = 0;

  Runtime gpu_rt(dev, {.enable_gpu = true});
  const auto gpu = run_lr_cg_script(gpu_rt, X, y, PlanMode::kHardcodedPass, cfg);
  Runtime cpu_rt(dev, {.enable_gpu = false});
  const auto cpu = run_lr_cg_script(cpu_rt, X, y, PlanMode::kHardcodedPass, cfg);

  const double total_speedup = cpu.end_to_end_ms / gpu.end_to_end_ms;
  EXPECT_GT(total_speedup, 1.0) << "GPU-enabled runtime must win";

  const double kernel_speedup = gpu.runtime_stats.pattern_cpu_equiv_ms /
                                gpu.runtime_stats.pattern_gpu_ms;
  // Table 6's signature: the fused-kernel-only speedup exceeds the
  // end-to-end speedup (JNI + transfers + CPU-resident BLAS-1 eat the rest).
  EXPECT_GT(kernel_speedup, total_speedup);
}

TEST(Script, TracksMemoryAndJniOverheads) {
  vgpu::Device dev;
  const auto X = la::uniform_sparse(20000, 300, 0.02, 623);
  const auto y = la::regression_labels(X, 623, 0.1);
  Runtime rt(dev, {});
  const auto r = run_lr_cg_script(rt, X, y, PlanMode::kHardcodedPass,
                                  {.max_iterations = 10});
  EXPECT_GT(r.runtime_stats.jni_ms, 0.0);
  EXPECT_GT(r.runtime_stats.transfer_ms, 0.0);
  EXPECT_GT(r.memory_stats.h2d_bytes, X.bytes() - 1);
  EXPECT_GE(r.iterations, 1);
  EXPECT_LE(r.iterations, 10);
}

TEST(Runtime, OpMapAppliesFunction) {
  vgpu::Device dev;
  Runtime rt(dev, {});
  const auto x = rt.add_vector({-2.0, 0.0, 3.5}, "x");
  const auto y = rt.op_map(x, [](real t) { return t * t; }, "square");
  const auto view = rt.read_vector(y);
  EXPECT_DOUBLE_EQ(view[0], 4.0);
  EXPECT_DOUBLE_EQ(view[1], 0.0);
  EXPECT_DOUBLE_EQ(view[2], 12.25);
}

TEST(Runtime, TraceRecordsOpsAndPlacement) {
  vgpu::Device dev;
  Runtime rt(dev, {.enable_gpu = false});
  const auto X = la::uniform_sparse(200, 50, 0.1, 631);
  const auto Xid = rt.add_sparse(X, "X");
  const auto yid = rt.add_vector(la::random_vector(50, 1), "y");
  rt.op_pattern(1, Xid, 0, yid, 0, 0);
  rt.op_product(Xid, rt.op_transposed_product(Xid,
      rt.add_vector(la::random_vector(200, 2), "p")));
  ASSERT_GE(rt.trace().size(), 3u);
  for (const auto& entry : rt.trace()) {
    EXPECT_FALSE(entry.on_gpu) << "GPU disabled: everything on CPU";
    EXPECT_GT(entry.modeled_ms, 0.0);
    EXPECT_FALSE(entry.op.empty());
  }
  EXPECT_EQ(rt.trace()[0].op, "pattern");
}

TEST(Script, LogRegGradientDescentLearns) {
  vgpu::Device dev;
  const auto X = la::uniform_sparse(1500, 40, 0.2, 641);
  const auto y = la::classification_labels(X, 641, 0.0);

  Runtime rt(dev, {});
  GdConfig cfg;
  cfg.iterations = 80;
  cfg.step = 0.8;
  const auto r = run_logreg_gd_script(rt, X, y, PlanMode::kUnfused, cfg);

  // Training accuracy of the learned weights.
  const auto margins = la::reference::spmv(X, r.weights);
  int correct = 0;
  for (usize i = 0; i < margins.size(); ++i) {
    if ((margins[i] >= 0 ? 1.0 : -1.0) == y[i]) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / margins.size(), 0.85);
  EXPECT_EQ(r.iterations, 80);
  // The script exercised maps, products and transposed products.
  bool saw_map = false, saw_mvt = false;
  for (const auto& entry : rt.trace()) {
    saw_map |= entry.op == "sigmoid";
    saw_mvt |= entry.op == "transposed_product";
  }
  EXPECT_TRUE(saw_map);
  EXPECT_TRUE(saw_mvt);
}

TEST(Script, LogRegGdMatchesHostReference) {
  vgpu::Device dev;
  const auto X = la::uniform_sparse(300, 20, 0.3, 642);
  const auto y = la::classification_labels(X, 642, 0.1);
  GdConfig cfg;
  cfg.iterations = 10;

  Runtime rt(dev, {});
  const auto script = run_logreg_gd_script(rt, X, y, PlanMode::kUnfused, cfg);

  // Host re-implementation of the identical update.
  std::vector<real> w(20, 0.0);
  const auto sig = [](real t) {
    return t >= 0 ? real{1} / (real{1} + std::exp(-t))
                  : std::exp(t) / (real{1} + std::exp(t));
  };
  for (int it = 0; it < cfg.iterations; ++it) {
    auto m = la::reference::spmv(X, w);
    std::vector<real> r(m.size());
    for (usize i = 0; i < m.size(); ++i) {
      r[i] = sig(-y[i] * m[i]) * -y[i];
    }
    auto g = la::reference::spmv_transposed(X, r);
    for (usize j = 0; j < w.size(); ++j) {
      g[j] += cfg.lambda * w[j];
      w[j] -= cfg.step * g[j];
    }
  }
  test::expect_vectors_near(w, script.weights, 1e-8);
}

TEST(Script, TinyProblemStaysOnCpu) {
  vgpu::Device dev;
  const auto X = la::uniform_sparse(50, 20, 0.2, 624);
  const auto y = la::regression_labels(X, 624, 0.1);
  Runtime rt(dev, {});
  const auto r = run_lr_cg_script(rt, X, y, PlanMode::kHardcodedPass,
                                  {.max_iterations = 5});
  EXPECT_EQ(r.runtime_stats.gpu_ops, 0u)
      << "PCIe + JNI should make the GPU unattractive for toy data";
}

}  // namespace
}  // namespace fusedml::sysml
