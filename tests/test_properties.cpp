// Property-based suites: randomized fuzzing of every kernel against the
// CPU oracles across seeds/shapes (TEST_P sweeps), algebraic identities of
// the pattern, coalescing-model invariants, occupancy monotonicity, and
// cost-model sanity under random counter loads.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "kernels/baselines.h"
#include "kernels/fused_dense.h"
#include "kernels/fused_sparse.h"
#include "la/convert.h"
#include "la/generate.h"
#include "la/vector_ops.h"
#include "ml/logreg.h"
#include "sysml/dag.h"
#include "sysml/fusion_planner.h"
#include "sysml/runtime.h"
#include "test_util.h"
#include "tuner/launch_params.h"
#include "vgpu/coalescing.h"
#include "vgpu/cost_model.h"

namespace fusedml {
namespace {

using kernels::fused_pattern_dense;
using kernels::fused_pattern_sparse;
using la::random_vector;
using la::uniform_sparse;
using test::expect_vectors_near;

// --- Randomized kernel fuzzing -------------------------------------------------

class FuzzSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSeeds, FusedSparseAgainstOracleOnRandomShapes) {
  Rng rng(GetParam());
  vgpu::Device dev;
  for (int trial = 0; trial < 4; ++trial) {
    const auto m = static_cast<index_t>(1 + rng.uniform_index(800));
    const auto n = static_cast<index_t>(1 + rng.uniform_index(600));
    const double sparsity = rng.uniform(0.0, 0.4);
    const auto X = uniform_sparse(m, n, sparsity, rng.next_u64());
    const auto y = random_vector(static_cast<usize>(n), rng.next_u64());
    const bool with_v = rng.uniform() < 0.5;
    const bool with_z = rng.uniform() < 0.5;
    const auto v = with_v ? random_vector(static_cast<usize>(m),
                                          rng.next_u64())
                          : std::vector<real>{};
    const auto z = with_z ? random_vector(static_cast<usize>(n),
                                          rng.next_u64())
                          : std::vector<real>{};
    const real alpha = rng.uniform(-3.0, 3.0);
    const real beta = with_z ? rng.uniform(-3.0, 3.0) : real{0};

    const auto got = fused_pattern_sparse(dev, alpha, X, v, y, beta, z);
    expect_vectors_near(la::reference::pattern(alpha, X, v, y, beta, z),
                        got.value, 1e-8);
  }
}

TEST_P(FuzzSeeds, FusedDenseAgainstOracleOnRandomShapes) {
  Rng rng(GetParam());
  vgpu::Device dev;
  for (int trial = 0; trial < 3; ++trial) {
    const auto m = static_cast<index_t>(1 + rng.uniform_index(400));
    const auto n = static_cast<index_t>(1 + rng.uniform_index(700));
    const auto X = la::dense_random(m, n, rng.next_u64());
    const auto y = random_vector(static_cast<usize>(n), rng.next_u64());
    const auto v = random_vector(static_cast<usize>(m), rng.next_u64());
    const real alpha = rng.uniform(-2.0, 2.0);
    const auto got = fused_pattern_dense(dev, alpha, X, v, y, 0, {});
    expect_vectors_near(la::reference::pattern(alpha, X, v, y, 0, {}),
                        got.value, 1e-8);
  }
}

TEST_P(FuzzSeeds, TransposeInvariants) {
  Rng rng(GetParam() ^ 0x1111);
  const auto m = static_cast<index_t>(1 + rng.uniform_index(300));
  const auto n = static_cast<index_t>(1 + rng.uniform_index(300));
  const auto X = uniform_sparse(m, n, rng.uniform(0.0, 0.3), rng.next_u64());
  const auto Xt = la::transpose(X);
  EXPECT_EQ(la::transpose(Xt), X);  // involution
  // (X^T y)_j computed both ways.
  const auto y = random_vector(static_cast<usize>(m), rng.next_u64());
  expect_vectors_near(la::reference::spmv(Xt, y),
                      la::reference::spmv_transposed(X, y));
}

TEST_P(FuzzSeeds, PatternLinearityInAlphaAndZ) {
  Rng rng(GetParam() ^ 0x2222);
  vgpu::Device dev;
  const auto X = uniform_sparse(200, 80, 0.15, rng.next_u64());
  const auto y = random_vector(80, rng.next_u64());
  const auto z = random_vector(80, rng.next_u64());
  // pattern(a) == a * pattern(1) when beta = 0.
  const real a = rng.uniform(0.5, 4.0);
  auto p1 = fused_pattern_sparse(dev, 1, X, {}, y, 0, {}).value;
  la::scal(a, p1);
  const auto pa = fused_pattern_sparse(dev, a, X, {}, y, 0, {}).value;
  expect_vectors_near(p1, pa, 1e-9);
  // pattern(alpha, beta, z) == pattern(alpha, 0) + beta*z.
  const real b = rng.uniform(-2.0, 2.0);
  auto with_z = fused_pattern_sparse(dev, a, X, {}, y, b, z).value;
  auto base = fused_pattern_sparse(dev, a, X, {}, y, 0, {}).value;
  la::axpy(b, z, base);
  expect_vectors_near(base, with_z, 1e-9);
}

// --- Fusion planner vs the unfused interpreter ---------------------------------

TEST_P(FuzzSeeds, PlannedElementwiseDagsBitExactVsUnfused) {
  // Random straight-line/shared elementwise DAGs: whatever regions the
  // planner collapses into generated kernels, the planned DAG must produce
  // the SAME BITS as operator-at-a-time interpretation (same per-element
  // operation order), and never more modeled launches.
  Rng rng(GetParam());
  vgpu::Device dev;
  for (int trial = 0; trial < 5; ++trial) {
    sysml::Runtime rt(dev, {.enable_gpu = true, .gpu_cost_bias = 1e-4});
    const usize n = 32 + rng.uniform_index(300);
    std::vector<sysml::NodePtr> pool;
    for (int i = 0; i < 3; ++i) {
      pool.push_back(sysml::input_vector(
          rt.add_vector(random_vector(n, rng.next_u64()), "in")));
    }
    const auto pick = [&] { return pool[rng.uniform_index(pool.size())]; };
    const int ops = 3 + static_cast<int>(rng.uniform_index(8));
    for (int i = 0; i < ops; ++i) {
      switch (rng.uniform_index(4)) {
        case 0:
          pool.push_back(sysml::scale(rng.uniform(-2.0, 2.0), pick()));
          break;
        case 1: pool.push_back(sysml::add(pick(), pick())); break;
        case 2: pool.push_back(sysml::ewise_mul(pick(), pick())); break;
        default:
          pool.push_back(sysml::map(pick(), ml::stable_sigmoid, "sigmoid"));
          break;
      }
    }
    // Random second operand keeps shared intermediates in the mix.
    const sysml::NodePtr root = sysml::add(pool.back(), pick());

    const auto plan = sysml::plan_fusion(rt, root);
    const auto a = rt.read_vector(sysml::execute(rt, root));
    const std::vector<real> want(a.begin(), a.end());
    const auto b = rt.read_vector(sysml::execute(rt, plan.root));
    EXPECT_EQ(want, std::vector<real>(b.begin(), b.end()))
        << "trial " << trial << ": planned DAG diverged";
    EXPECT_LE(plan.launches_planned, plan.launches_unfused);
    EXPECT_LE(plan.modeled_planned_ms, plan.modeled_unfused_ms + 1e-12);
  }
}

TEST_P(FuzzSeeds, PlannedPatternDagsMatchOracle) {
  // Random Equation-1 shapes (degenerations included): the planner's fused
  // node must agree with the reference oracle to the pattern kernels'
  // reassociation tolerance, and strictly reduce launches.
  Rng rng(GetParam());
  vgpu::Device dev;
  for (int trial = 0; trial < 3; ++trial) {
    sysml::Runtime rt(dev, {.enable_gpu = true, .gpu_cost_bias = 1e-4});
    const auto m = static_cast<index_t>(50 + rng.uniform_index(500));
    const auto cols = static_cast<index_t>(20 + rng.uniform_index(200));
    const auto X = uniform_sparse(m, cols, 0.05, rng.next_u64());
    const auto y = random_vector(static_cast<usize>(cols), rng.next_u64());
    const bool with_v = rng.uniform() < 0.5;
    const bool with_z = rng.uniform() < 0.5;
    const auto v = with_v ? random_vector(static_cast<usize>(m),
                                          rng.next_u64())
                          : std::vector<real>{};
    const auto z = with_z ? random_vector(static_cast<usize>(cols),
                                          rng.next_u64())
                          : std::vector<real>{};
    const real alpha = rng.uniform(-3.0, 3.0);
    const real beta = with_z ? rng.uniform(-3.0, 3.0) : real{0};

    const auto root = sysml::pattern_expression(
        alpha, sysml::input_matrix(rt.add_sparse(X, "X")),
        with_v ? sysml::input_vector(rt.add_vector(v, "v")) : nullptr,
        sysml::input_vector(rt.add_vector(y, "y")), beta,
        with_z ? sysml::input_vector(rt.add_vector(z, "z")) : nullptr);

    const auto plan = sysml::plan_fusion(rt, root);
    EXPECT_LT(plan.launches_planned, plan.launches_unfused);
    const auto got = rt.read_vector(sysml::execute(rt, plan.root));
    expect_vectors_near(la::reference::pattern(alpha, X, v, y, beta, z), got,
                        1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u));

// --- Coalescing-model invariants -------------------------------------------------

TEST(CoalescingProperties, GatherBoundedByLanesAndSpan) {
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    const auto lanes = static_cast<usize>(1 + rng.uniform_index(32));
    std::vector<std::uint64_t> addrs(lanes);
    for (auto& a : addrs) a = rng.uniform_index(1 << 20);
    const auto tx = vgpu::gather_transactions(addrs);
    EXPECT_GE(tx, 1u);
    EXPECT_LE(tx, lanes);
    // Contiguous access is never worse than the same addresses gathered.
    const auto contiguous =
        vgpu::contiguous_transactions(addrs[0], static_cast<int>(lanes), 8);
    EXPECT_LE(contiguous, lanes + 1);
  }
}

TEST(CoalescingProperties, ContiguousMonotoneInLanes) {
  for (int lanes = 1; lanes < 32; ++lanes) {
    EXPECT_LE(vgpu::contiguous_transactions(24, lanes, 8),
              vgpu::contiguous_transactions(24, lanes + 1, 8));
  }
}

// --- Occupancy monotonicity ---------------------------------------------------------

TEST(OccupancyProperties, MoreRegistersNeverMoreBlocks) {
  const auto spec = vgpu::gtx_titan();
  for (int bs : {64, 128, 256, 512}) {
    int prev = 1 << 30;
    for (int regs = 16; regs <= 255; regs += 16) {
      const auto occ = vgpu::compute_occupancy(spec, bs, {regs, 0});
      EXPECT_LE(occ.blocks_per_sm, prev) << "bs=" << bs << " regs=" << regs;
      prev = occ.blocks_per_sm;
    }
  }
}

TEST(OccupancyProperties, MoreSmemNeverMoreBlocks) {
  const auto spec = vgpu::gtx_titan();
  int prev = 1 << 30;
  for (usize smem = 0; smem <= spec.smem_per_sm_bytes; smem += 4096) {
    const auto occ = vgpu::compute_occupancy(spec, 128, {32, smem});
    EXPECT_LE(occ.blocks_per_sm, prev);
    prev = occ.blocks_per_sm;
  }
}

TEST(OccupancyProperties, ActiveWarpsNeverExceedDeviceLimit) {
  const auto spec = vgpu::gtx_titan();
  Rng rng(7);
  for (int trial = 0; trial < 300; ++trial) {
    const int bs = 32 * static_cast<int>(1 + rng.uniform_index(32));
    const int regs = static_cast<int>(16 + rng.uniform_index(240));
    const auto smem = static_cast<usize>(rng.uniform_index(64 * 1024));
    const auto occ = vgpu::compute_occupancy(spec, bs, {regs, smem});
    EXPECT_LE(occ.active_warps_per_sm, spec.max_warps_per_sm());
    EXPECT_LE(occ.active_threads_per_sm, spec.max_threads_per_sm);
  }
}

// --- Cost-model sanity -----------------------------------------------------------------

TEST(CostModelProperties, TimeMonotoneInEveryCounter) {
  const vgpu::CostModel model(vgpu::gtx_titan());
  vgpu::OccupancyResult occ;
  occ.occupancy = 1.0;
  Rng rng(5);
  for (int trial = 0; trial < 100; ++trial) {
    vgpu::MemCounters c;
    c.gld_transactions = rng.uniform_index(1 << 20);
    c.gst_transactions = rng.uniform_index(1 << 18);
    c.l2_hit_transactions = rng.uniform_index(1 << 19);
    c.tex_transactions = rng.uniform_index(1 << 18);
    c.atomic_global_ops = rng.uniform_index(1 << 18);
    c.atomic_global_targets = 1 + rng.uniform_index(1 << 12);
    c.flops = rng.uniform_index(1 << 22);
    const double base = model.kernel_time(c, occ).total_ms;

    auto bumped = c;
    bumped.gld_transactions += 1 << 16;
    EXPECT_GE(model.kernel_time(bumped, occ).total_ms, base);
    bumped = c;
    bumped.atomic_global_ops += 1 << 16;
    EXPECT_GE(model.kernel_time(bumped, occ).total_ms, base);
  }
}

TEST(CostModelProperties, TransferLinearInBytes) {
  const vgpu::CostModel model(vgpu::gtx_titan());
  const double one = model.transfer_ms(1 << 20);
  const double ten = model.transfer_ms(10 << 20);
  // Latency makes it slightly sublinear in the ratio, never superlinear.
  EXPECT_LT(ten, 10.0 * one + 1e-12);
  EXPECT_GT(ten, 8.0 * one);
}

// --- Tuner properties ----------------------------------------------------------------------

TEST(TunerProperties, SparseParamsValidAcrossRandomMatrices) {
  Rng rng(17);
  for (const auto& spec : {vgpu::gtx_titan(), vgpu::small_kepler()}) {
    for (int trial = 0; trial < 60; ++trial) {
      const auto m = static_cast<index_t>(1 + rng.uniform_index(1 << 20));
      const auto n = static_cast<index_t>(1 + rng.uniform_index(1 << 16));
      const double mu = rng.uniform(0.1, 200.0);
      const auto p = tuner::sparse_launch_params(spec, m, n, mu);
      EXPECT_TRUE(p.config.internally_consistent());
      EXPECT_LE(p.config.block_size, spec.max_threads_per_block);
      EXPECT_LE(p.config.resources.smem_per_block, spec.smem_per_sm_bytes);
      const long long vectors =
          static_cast<long long>(p.config.grid_size) *
          p.config.num_vectors_per_block();
      EXPECT_GE(vectors * p.config.coarsening, m);
      EXPECT_GT(p.occupancy.blocks_per_sm, 0);
    }
  }
}

TEST(TunerProperties, DenseParamsValidAcrossRandomShapes) {
  Rng rng(19);
  const auto spec = vgpu::gtx_titan();
  for (int trial = 0; trial < 100; ++trial) {
    const auto m = static_cast<index_t>(1 + rng.uniform_index(1 << 20));
    const auto n = static_cast<index_t>(1 + rng.uniform_index(5000));
    const auto p = tuner::dense_launch_params(spec, m, n);
    EXPECT_TRUE(p.config.internally_consistent());
    EXPECT_GE(static_cast<long long>(p.config.vector_size) *
                  p.config.thread_load,
              n);
    EXPECT_LE(p.config.resources.regs_per_thread, spec.max_regs_per_thread);
  }
}

}  // namespace
}  // namespace fusedml
