// Correctness tests for every device kernel against the CPU references,
// including parameterized sweeps across matrix shapes and sparsities, plus
// counter sanity checks (the quantities the figures are built from).
#include <gtest/gtest.h>

#include <tuple>

#include "kernels/baselines.h"
#include "kernels/blas1.h"
#include "kernels/cpu_backend.h"
#include "kernels/fused_dense.h"
#include "kernels/fused_sparse.h"
#include "kernels/gemv.h"
#include "kernels/spmv.h"
#include "kernels/spmv_transpose.h"
#include "la/convert.h"
#include "la/generate.h"
#include "la/vector_ops.h"
#include "test_util.h"

namespace fusedml::kernels {
namespace {

using la::random_vector;
using la::uniform_sparse;
using test::expect_vectors_near;

// --- BLAS-1 -----------------------------------------------------------------

class Blas1Test : public ::testing::Test {
 protected:
  vgpu::Device dev;
};

TEST_F(Blas1Test, Axpy) {
  auto x = random_vector(1000, 1);
  auto y = random_vector(1000, 2);
  auto expect = y;
  la::axpy(2.5, x, expect);
  const auto got = dev_axpy(dev, 2.5, x, y);
  expect_vectors_near(expect, got.value);
  EXPECT_EQ(got.launches, 1u);
  EXPECT_GT(got.counters.gld_bytes, 2 * 1000 * sizeof(real) - 1);
}

TEST_F(Blas1Test, Scal) {
  auto x = random_vector(333, 3);
  auto expect = x;
  la::scal(-1.5, expect);
  expect_vectors_near(expect, dev_scal(dev, -1.5, x).value);
}

TEST_F(Blas1Test, DotAndNrm2) {
  const auto x = random_vector(4097, 4);
  const auto y = random_vector(4097, 5);
  EXPECT_NEAR(dev_dot(dev, x, y).value[0], la::dot(x, y), 1e-9);
  EXPECT_NEAR(dev_nrm2(dev, x).value[0], la::nrm2(x), 1e-9);
}

TEST_F(Blas1Test, EwiseMulAndScaleInto) {
  const auto x = random_vector(100, 6);
  const auto y = random_vector(100, 7);
  std::vector<real> expect(100);
  la::ewise_mul(x, y, expect);
  expect_vectors_near(expect, dev_ewise_mul(dev, x, y).value);

  auto scaled = dev_scale_into(dev, 3.0, x);
  for (usize i = 0; i < x.size(); ++i) {
    EXPECT_DOUBLE_EQ(scaled.value[i], 3.0 * x[i]);
  }
}

TEST_F(Blas1Test, EmptyVectorsAreFine) {
  std::vector<real> empty;
  EXPECT_EQ(dev_nrm2(dev, empty).value[0], 0.0);
}

// --- Sparse SpMV sweep --------------------------------------------------------

struct SparseCase {
  index_t m, n;
  double sparsity;
};

class SpmvSweep : public ::testing::TestWithParam<SparseCase> {
 protected:
  vgpu::Device dev;
};

TEST_P(SpmvSweep, CsrVectorMatchesReference) {
  const auto [m, n, s] = GetParam();
  const auto X = uniform_sparse(m, n, s, 101);
  const auto y = random_vector(static_cast<usize>(n), 9);
  expect_vectors_near(la::reference::spmv(X, y),
                      spmv_csr_vector(dev, X, y).value);
}

TEST_P(SpmvSweep, CsrScalarMatchesReference) {
  const auto [m, n, s] = GetParam();
  const auto X = uniform_sparse(m, n, s, 102);
  const auto y = random_vector(static_cast<usize>(n), 10);
  expect_vectors_near(la::reference::spmv(X, y),
                      spmv_csr_scalar(dev, X, y).value);
}

TEST_P(SpmvSweep, AtomicScatterTransposeMatchesReference) {
  const auto [m, n, s] = GetParam();
  const auto X = uniform_sparse(m, n, s, 103);
  const auto y = random_vector(static_cast<usize>(m), 11);
  expect_vectors_near(la::reference::spmv_transposed(X, y),
                      spmv_t_atomic_scatter(dev, X, y).value);
}

TEST_P(SpmvSweep, ExplicitTransposeMatchesReference) {
  const auto [m, n, s] = GetParam();
  const auto X = uniform_sparse(m, n, s, 104);
  const auto y = random_vector(static_cast<usize>(m), 12);
  const auto split = spmv_t_explicit_transpose(dev, X, y);
  expect_vectors_near(la::reference::spmv_transposed(X, y),
                      split.multiply.value);
  EXPECT_GT(split.transpose.modeled_ms, 0.0);
  // Transpose costs several kernels.
  EXPECT_GE(split.transpose.launches, 3u);
}

TEST_P(SpmvSweep, FusedSpmvTMatchesReference) {
  const auto [m, n, s] = GetParam();
  const auto X = uniform_sparse(m, n, s, 105);
  const auto p = random_vector(static_cast<usize>(m), 13);
  expect_vectors_near(la::reference::spmv_transposed(X, p),
                      fused_spmv_t(dev, X, p).value);
}

TEST_P(SpmvSweep, FusedSpmvTWithAlpha) {
  const auto [m, n, s] = GetParam();
  const auto X = uniform_sparse(m, n, s, 106);
  const auto p = random_vector(static_cast<usize>(m), 14);
  auto expect = la::reference::spmv_transposed(X, p);
  la::scal(2.0, expect);
  expect_vectors_near(expect, fused_spmv_t(dev, X, p, 2.0).value);
}

TEST_P(SpmvSweep, FusedPatternMatchesReference) {
  const auto [m, n, s] = GetParam();
  const auto X = uniform_sparse(m, n, s, 107);
  const auto y = random_vector(static_cast<usize>(n), 15);
  const auto v = random_vector(static_cast<usize>(m), 16);
  const auto z = random_vector(static_cast<usize>(n), 17);
  const real alpha = 1.25, beta = -0.75;
  const auto got = fused_pattern_sparse(dev, alpha, X, v, y, beta, z);
  expect_vectors_near(la::reference::pattern(alpha, X, v, y, beta, z),
                      got.value);
  EXPECT_EQ(got.launches, 1u) << "the whole pattern must be ONE kernel";
}

TEST_P(SpmvSweep, FusedPatternGlobalAggregationMatches) {
  const auto [m, n, s] = GetParam();
  const auto X = uniform_sparse(m, n, s, 108);
  const auto y = random_vector(static_cast<usize>(n), 18);
  FusedSparseOptions opts;
  opts.aggregation = tuner::Aggregation::kGlobal;
  expect_vectors_near(la::reference::pattern(1, X, {}, y, 0, {}),
                      fused_pattern_sparse(dev, 1, X, {}, y, 0, {}, opts).value);
}

TEST_P(SpmvSweep, BaselinePipelinesMatchReference) {
  const auto [m, n, s] = GetParam();
  const auto X = uniform_sparse(m, n, s, 109);
  const auto y = random_vector(static_cast<usize>(n), 19);
  const auto v = random_vector(static_cast<usize>(m), 20);
  const auto z = random_vector(static_cast<usize>(n), 21);
  const auto expect = la::reference::pattern(0.5, X, v, y, 2.0, z);
  for (auto strategy : {SparseTransposeStrategy::kExplicitTranspose,
                        SparseTransposeStrategy::kAtomicScatter}) {
    const auto got =
        baseline_pattern_sparse(dev, 0.5, X, v, y, 2.0, z, strategy);
    expect_vectors_near(expect, got.value);
    EXPECT_GE(got.launches, 4u) << "baseline is operator-at-a-time";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SpmvSweep,
    ::testing::Values(SparseCase{64, 32, 0.2},      // tiny
                      SparseCase{500, 200, 0.01},   // short rows (VS=2)
                      SparseCase{300, 1000, 0.05},  // wide, VS=32
                      SparseCase{1000, 100, 0.1},   // tall
                      SparseCase{128, 7000, 0.01},  // n beyond smem limit
                      SparseCase{77, 33, 0.0},      // empty matrix
                      SparseCase{1, 50, 0.5},       // single row
                      SparseCase{50, 1, 0.5}));     // single column

// --- Dense kernels --------------------------------------------------------------

struct DenseCase {
  index_t m, n;
};

class DenseSweep : public ::testing::TestWithParam<DenseCase> {
 protected:
  vgpu::Device dev;
};

TEST_P(DenseSweep, GemvMatchesReference) {
  const auto [m, n] = GetParam();
  const auto X = la::dense_random(m, n, 201);
  const auto y = random_vector(static_cast<usize>(n), 22);
  expect_vectors_near(la::reference::gemv(X, y), gemv_n(dev, X, y).value);
}

TEST_P(DenseSweep, GemvTMatchesReference) {
  const auto [m, n] = GetParam();
  const auto X = la::dense_random(m, n, 202);
  const auto p = random_vector(static_cast<usize>(m), 23);
  for (int ways : {0, kCublasConflictWays}) {
    GemvOptions opts;
    opts.smem_conflict_ways = ways;
    expect_vectors_near(la::reference::gemv_transposed(X, p),
                        gemv_t(dev, X, p, opts).value);
  }
}

TEST_P(DenseSweep, FusedDenseMatchesReference) {
  const auto [m, n] = GetParam();
  const auto X = la::dense_random(m, n, 203);
  const auto y = random_vector(static_cast<usize>(n), 24);
  const auto v = random_vector(static_cast<usize>(m), 25);
  const auto z = random_vector(static_cast<usize>(n), 26);
  const real alpha = -1.5, beta = 0.25;
  const auto got = fused_pattern_dense(dev, alpha, X, v, y, beta, z);
  expect_vectors_near(la::reference::pattern(alpha, X, v, y, beta, z),
                      got.value);
  EXPECT_EQ(got.launches, 1u);
}

TEST_P(DenseSweep, FusedDenseNoCodegenMatchesAndSpills) {
  const auto [m, n] = GetParam();
  const auto X = la::dense_random(m, n, 204);
  const auto y = random_vector(static_cast<usize>(n), 27);
  FusedDenseOptions opts;
  opts.use_codegen = false;
  const auto got = fused_pattern_dense(dev, 1, X, {}, y, 0, {}, opts);
  expect_vectors_near(la::reference::pattern(1, X, {}, y, 0, {}), got.value);
  EXPECT_GT(got.counters.local_spill_bytes, 0u)
      << "runtime-indexed registers must charge local-memory traffic";
}

TEST_P(DenseSweep, BaselineDensePipelinesMatch) {
  const auto [m, n] = GetParam();
  const auto X = la::dense_random(m, n, 205);
  const auto y = random_vector(static_cast<usize>(n), 28);
  const auto expect = la::reference::pattern(1, X, {}, y, 0, {});
  for (auto flavor : {DenseFlavor::kCublas, DenseFlavor::kBidmat}) {
    expect_vectors_near(expect, baseline_xtxy_dense(dev, X, y, flavor).value);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DenseSweep,
    ::testing::Values(DenseCase{100, 28},    // HIGGS-like (n <= 32 path)
                      DenseCase{64, 32},     // exactly warp-sized rows
                      DenseCase{200, 200},   // n not a multiple of VS
                      DenseCase{50, 1000},   // wide
                      DenseCase{1000, 17},   // odd tiny n
                      DenseCase{1, 64}));    // single row

// --- Counter-level expectations (what the figures measure) --------------------

TEST(Counters, FusedLoadsLessThanExplicitTranspose) {
  vgpu::Device dev;
  // Figure-2 regime: enough non-zeros that per-row floors (row_off, p) do
  // not dominate the traffic.
  const auto X = uniform_sparse(20000, 400, 0.05, 301);
  const auto y = random_vector(20000, 30);
  const auto fused = fused_spmv_t(dev, X, y);
  const auto baseline = spmv_t_explicit_transpose(dev, X, y).combined();
  // Fig. 2-bottom: cuSPARSE performs ~3.5x more load transactions.
  EXPECT_GT(static_cast<double>(baseline.counters.total_load_transactions()),
            1.5 * static_cast<double>(fused.counters.total_load_transactions()));
  // And far more store traffic (scattered CSC writes).
  EXPECT_GT(baseline.counters.gst_transactions,
            4 * fused.counters.gst_transactions);
}

TEST(Counters, FusedPatternLoadsXRoughlyTwiceWithSecondPassCached) {
  vgpu::Device dev;
  const auto X = uniform_sparse(3000, 500, 0.02, 302);
  const auto y = random_vector(500, 31);
  const auto r = fused_pattern_sparse(dev, 1, X, {}, y, 0, {});
  // Second pass hits L2: cached transactions should be close to the cold
  // ones (same row walked twice).
  EXPECT_GT(r.counters.l2_hit_transactions, 0u);
  const double ratio = static_cast<double>(r.counters.l2_hit_transactions) /
                       static_cast<double>(r.counters.gld_transactions);
  EXPECT_GT(ratio, 0.4);
  EXPECT_LT(ratio, 1.2);
}

TEST(Counters, DenseFusedLoadsXOnce) {
  vgpu::Device dev;
  const auto X = la::dense_random(2000, 256, 303);
  const auto y = random_vector(256, 32);
  const auto fused = fused_pattern_dense(dev, 1, X, {}, y, 0, {});
  const auto baseline = baseline_xtxy_dense(dev, X, y, DenseFlavor::kBidmat);
  // Baseline streams X twice; fused once (§4.2: "most of the gain ... comes
  // from loading X only once").
  const double x_bytes = static_cast<double>(X.bytes());
  EXPECT_NEAR(static_cast<double>(fused.counters.gld_bytes), x_bytes,
              0.25 * x_bytes);
  EXPECT_GT(static_cast<double>(baseline.counters.gld_bytes),
            1.7 * x_bytes);
}

TEST(Counters, TextureOptionRoutesYLoads) {
  vgpu::Device dev;
  const auto X = uniform_sparse(500, 100, 0.1, 304);
  const auto y = random_vector(100, 33);
  FusedSparseOptions tex, no_tex;
  no_tex.texture_y = false;
  const auto with_tex = fused_pattern_sparse(dev, 1, X, {}, y, 0, {}, tex);
  const auto without = fused_pattern_sparse(dev, 1, X, {}, y, 0, {}, no_tex);
  EXPECT_GT(with_tex.counters.tex_transactions, 0u);
  EXPECT_GT(without.counters.gld_transactions,
            with_tex.counters.gld_transactions);
}

// --- CPU backend ----------------------------------------------------------------

TEST(CpuBackend, MatchesReferencesAndTimes) {
  CpuBackend cpu;
  const auto X = uniform_sparse(300, 150, 0.05, 401);
  const auto y = random_vector(150, 40);
  const auto v = random_vector(300, 41);
  const auto z = random_vector(150, 42);

  expect_vectors_near(la::reference::spmv(X, y), cpu.spmv(X, y).value);
  const auto pat = cpu.pattern(2.0, X, v, y, 0.5, z);
  expect_vectors_near(la::reference::pattern(2.0, X, v, y, 0.5, z), pat.value);
  EXPECT_GT(pat.modeled_ms, 0.0);
  EXPECT_GE(pat.wall_ms, 0.0);
}

TEST(CpuBackend, DenseAndBlas1) {
  CpuBackend cpu;
  const auto X = la::dense_random(100, 60, 402);
  const auto y = random_vector(60, 43);
  expect_vectors_near(la::reference::gemv(X, y), cpu.gemv(X, y).value);

  auto a = random_vector(500, 44);
  auto b = random_vector(500, 45);
  EXPECT_NEAR(cpu.dot(a, b).value[0], la::dot(a, b), 1e-9);
  EXPECT_NEAR(cpu.nrm2(a).value[0], la::nrm2(a), 1e-9);
}

TEST(CpuBackend, ModeledTimeScalesWithSize) {
  CpuBackend cpu;
  const auto small = uniform_sparse(200, 100, 0.05, 403);
  const auto large = uniform_sparse(4000, 100, 0.05, 404);
  const auto y = random_vector(100, 46);
  EXPECT_LT(cpu.spmv(small, y).modeled_ms, cpu.spmv(large, y).modeled_ms);
}

}  // namespace
}  // namespace fusedml::kernels
