// Unit tests for src/common: RNG determinism and distributions, stats,
// table rendering, CLI parsing, profiler accounting.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/cli.h"
#include "common/error.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/timer.h"

namespace fusedml {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double lo = 1.0, hi = 0.0, sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    lo = std::min(lo, u);
    hi = std::max(hi, u);
    sum += u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
  EXPECT_LT(lo, 0.01);
  EXPECT_GT(hi, 0.99);
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  const int n = 50000;
  double sum = 0, sq = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, PoissonMean) {
  Rng rng(13);
  for (double lambda : {0.5, 4.0, 60.0}) {
    const int n = 20000;
    double sum = 0;
    for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(lambda));
    EXPECT_NEAR(sum / n, lambda, lambda * 0.1 + 0.05) << "lambda=" << lambda;
  }
}

TEST(Rng, SampleWithoutReplacementIsSortedAndDistinct) {
  Rng rng(17);
  const auto s = rng.sample_without_replacement(100, 30);
  ASSERT_EQ(s.size(), 30u);
  for (usize i = 1; i < s.size(); ++i) {
    ASSERT_LT(s[i - 1], s[i]);
  }
  for (index_t v : s) {
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 100);
  }
}

TEST(Rng, SampleWholeRange) {
  Rng rng(19);
  const auto s = rng.sample_without_replacement(10, 10);
  ASSERT_EQ(s.size(), 10u);
  for (index_t i = 0; i < 10; ++i) EXPECT_EQ(s[static_cast<usize>(i)], i);
}

TEST(Rng, UniformIndexRejectsZero) {
  Rng rng(23);
  EXPECT_THROW(rng.uniform_index(0), Error);
}

TEST(Stats, MeanStddev) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(mean(xs), 3.0);
  EXPECT_NEAR(stddev(xs), std::sqrt(2.5), 1e-12);
}

TEST(Stats, Geomean) {
  const std::vector<double> xs = {1, 4, 16};
  EXPECT_NEAR(geomean(xs), 4.0, 1e-12);
  EXPECT_THROW(geomean(std::vector<double>{1.0, -1.0}), Error);
}

TEST(Stats, Percentile) {
  const std::vector<double> xs = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 40);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 25);
}

TEST(Stats, SummaryOfEmpty) {
  const Summary s = summarize({});
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.max, 0.0);
}

TEST(Table, RendersAllCells) {
  Table t({"a", "bb"});
  t.row().add("x").add(1.5, 1);
  t.row().add(42LL).add("y");
  const std::string s = t.str();
  EXPECT_NE(s.find("x"), std::string::npos);
  EXPECT_NE(s.find("1.5"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, MarkdownShape) {
  Table t({"h1", "h2"});
  t.row().add("a").add("b");
  const std::string md = t.markdown();
  EXPECT_NE(md.find("| h1 | h2 |"), std::string::npos);
  EXPECT_NE(md.find("| a | b |"), std::string::npos);
}

TEST(Table, CsvEscapesSpecials) {
  Table t({"name", "value"});
  t.row().add("plain").add("a,b");
  t.row().add("quo\"te").add("multi\nline");
  const std::string csv = t.csv();
  EXPECT_NE(csv.find("name,value\n"), std::string::npos);
  EXPECT_NE(csv.find("plain,\"a,b\"\n"), std::string::npos);
  EXPECT_NE(csv.find("\"quo\"\"te\""), std::string::npos);
  EXPECT_NE(csv.find("\"multi\nline\""), std::string::npos);
}

TEST(Table, RejectsExtraCells) {
  Table t({"only"});
  t.row().add("1");
  EXPECT_THROW(t.add("2"), Error);
}

TEST(Cli, ParsesForms) {
  const char* argv[] = {"prog", "--rows", "100", "--name=abc", "--flag"};
  Cli cli(5, argv);
  EXPECT_EQ(cli.get_int("rows", 1), 100);
  EXPECT_EQ(cli.get_string("name", ""), "abc");
  EXPECT_TRUE(cli.get_bool("flag", false));
  EXPECT_EQ(cli.get_double("absent", 2.5), 2.5);
  cli.finish();
}

TEST(Cli, RejectsUnknownFlag) {
  const char* argv[] = {"prog", "--bogus", "1"};
  Cli cli(3, argv);
  cli.get_int("rows", 1);
  EXPECT_THROW(cli.finish(), Error);
}

TEST(Cli, HelpRequested) {
  const char* argv[] = {"prog", "--help"};
  Cli cli(2, argv);
  EXPECT_TRUE(cli.help_requested());
}

TEST(Profiler, PercentagesSumToHundred) {
  Profiler p;
  p.add("pattern", 80.0);
  p.add("blas1", 20.0);
  EXPECT_DOUBLE_EQ(p.total_ms(), 100.0);
  EXPECT_DOUBLE_EQ(p.percent("pattern"), 80.0);
  EXPECT_DOUBLE_EQ(p.percent("blas1"), 20.0);
  const auto order = p.buckets_by_time();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "pattern");
}

TEST(Profiler, ScopedTimerAccumulates) {
  Profiler p;
  {
    ScopedTimer t(p, "work");
  }
  EXPECT_GE(p.bucket_ms("work"), 0.0);
  EXPECT_EQ(p.buckets_by_time().size(), 1u);
}

TEST(ErrorMacro, ThrowsWithContext) {
  try {
    FUSEDML_CHECK(false, "context message");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("context message"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace fusedml
