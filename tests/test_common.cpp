// Unit tests for src/common: RNG determinism and distributions, stats,
// table rendering, CLI parsing, profiler accounting.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <thread>
#include <vector>

#include "common/cli.h"
#include "common/error.h"
#include "common/json.h"
#include "common/log.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/timer.h"

namespace fusedml {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double lo = 1.0, hi = 0.0, sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    lo = std::min(lo, u);
    hi = std::max(hi, u);
    sum += u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
  EXPECT_LT(lo, 0.01);
  EXPECT_GT(hi, 0.99);
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  const int n = 50000;
  double sum = 0, sq = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, PoissonMean) {
  Rng rng(13);
  for (double lambda : {0.5, 4.0, 60.0}) {
    const int n = 20000;
    double sum = 0;
    for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(lambda));
    EXPECT_NEAR(sum / n, lambda, lambda * 0.1 + 0.05) << "lambda=" << lambda;
  }
}

TEST(Rng, SampleWithoutReplacementIsSortedAndDistinct) {
  Rng rng(17);
  const auto s = rng.sample_without_replacement(100, 30);
  ASSERT_EQ(s.size(), 30u);
  for (usize i = 1; i < s.size(); ++i) {
    ASSERT_LT(s[i - 1], s[i]);
  }
  for (index_t v : s) {
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 100);
  }
}

TEST(Rng, SampleWholeRange) {
  Rng rng(19);
  const auto s = rng.sample_without_replacement(10, 10);
  ASSERT_EQ(s.size(), 10u);
  for (index_t i = 0; i < 10; ++i) EXPECT_EQ(s[static_cast<usize>(i)], i);
}

TEST(Rng, UniformIndexRejectsZero) {
  Rng rng(23);
  EXPECT_THROW(rng.uniform_index(0), Error);
}

TEST(Stats, MeanStddev) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(mean(xs), 3.0);
  EXPECT_NEAR(stddev(xs), std::sqrt(2.5), 1e-12);
}

TEST(Stats, Geomean) {
  const std::vector<double> xs = {1, 4, 16};
  EXPECT_NEAR(geomean(xs), 4.0, 1e-12);
  EXPECT_THROW(geomean(std::vector<double>{1.0, -1.0}), Error);
}

TEST(Stats, Percentile) {
  const std::vector<double> xs = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 40);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 25);
}

TEST(Stats, SummaryOfEmpty) {
  const Summary s = summarize({});
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.max, 0.0);
}

TEST(Table, RendersAllCells) {
  Table t({"a", "bb"});
  t.row().add("x").add(1.5, 1);
  t.row().add(42LL).add("y");
  const std::string s = t.str();
  EXPECT_NE(s.find("x"), std::string::npos);
  EXPECT_NE(s.find("1.5"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, MarkdownShape) {
  Table t({"h1", "h2"});
  t.row().add("a").add("b");
  const std::string md = t.markdown();
  EXPECT_NE(md.find("| h1 | h2 |"), std::string::npos);
  EXPECT_NE(md.find("| a | b |"), std::string::npos);
}

TEST(Table, CsvEscapesSpecials) {
  Table t({"name", "value"});
  t.row().add("plain").add("a,b");
  t.row().add("quo\"te").add("multi\nline");
  const std::string csv = t.csv();
  EXPECT_NE(csv.find("name,value\n"), std::string::npos);
  EXPECT_NE(csv.find("plain,\"a,b\"\n"), std::string::npos);
  EXPECT_NE(csv.find("\"quo\"\"te\""), std::string::npos);
  EXPECT_NE(csv.find("\"multi\nline\""), std::string::npos);
}

TEST(Table, RejectsExtraCells) {
  Table t({"only"});
  t.row().add("1");
  EXPECT_THROW(t.add("2"), Error);
}

TEST(Cli, ParsesForms) {
  const char* argv[] = {"prog", "--rows", "100", "--name=abc", "--flag"};
  Cli cli(5, argv);
  EXPECT_EQ(cli.get_int("rows", 1), 100);
  EXPECT_EQ(cli.get_string("name", ""), "abc");
  EXPECT_TRUE(cli.get_bool("flag", false));
  EXPECT_EQ(cli.get_double("absent", 2.5), 2.5);
  cli.finish();
}

TEST(Cli, RejectsUnknownFlag) {
  const char* argv[] = {"prog", "--bogus", "1"};
  Cli cli(3, argv);
  cli.get_int("rows", 1);
  EXPECT_THROW(cli.finish(), Error);
}

TEST(Cli, HelpRequested) {
  const char* argv[] = {"prog", "--help"};
  Cli cli(2, argv);
  EXPECT_TRUE(cli.help_requested());
}

TEST(Profiler, PercentagesSumToHundred) {
  Profiler p;
  p.add("pattern", 80.0);
  p.add("blas1", 20.0);
  EXPECT_DOUBLE_EQ(p.total_ms(), 100.0);
  EXPECT_DOUBLE_EQ(p.percent("pattern"), 80.0);
  EXPECT_DOUBLE_EQ(p.percent("blas1"), 20.0);
  const auto order = p.buckets_by_time();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "pattern");
}

TEST(Profiler, ScopedTimerAccumulates) {
  Profiler p;
  {
    ScopedTimer t(p, "work");
  }
  EXPECT_GE(p.bucket_ms("work"), 0.0);
  EXPECT_EQ(p.buckets_by_time().size(), 1u);
}

TEST(ErrorMacro, ThrowsWithContext) {
  try {
    FUSEDML_CHECK(false, "context message");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("context message"),
              std::string::npos);
  }
}

namespace {
/// Captures everything written to std::cerr for the lifetime of the object.
class CerrCapture {
 public:
  CerrCapture() : old_(std::cerr.rdbuf(buffer_.rdbuf())) {}
  ~CerrCapture() { std::cerr.rdbuf(old_); }
  std::string str() const { return buffer_.str(); }

 private:
  std::ostringstream buffer_;
  std::streambuf* old_;
};
}  // namespace

TEST(Log, LevelThresholdDropsBelow) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kWarn);
  CerrCapture capture;
  FUSEDML_LOG_DEBUG << "dropped-debug";
  FUSEDML_LOG_INFO << "dropped-info";
  FUSEDML_LOG_WARN << "kept-warn";
  FUSEDML_LOG_ERROR << "kept-error";
  set_log_level(saved);
  const std::string out = capture.str();
  EXPECT_EQ(out.find("dropped-debug"), std::string::npos);
  EXPECT_EQ(out.find("dropped-info"), std::string::npos);
  EXPECT_NE(out.find("kept-warn"), std::string::npos);
  EXPECT_NE(out.find("kept-error"), std::string::npos);
}

TEST(Log, ConcurrentLinesStayUnscrambled) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kInfo);
  CerrCapture capture;
  constexpr int kThreads = 4, kLines = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kLines; ++i) {
        FUSEDML_LOG_INFO << "thread" << t << "-line" << i << "-end";
      }
    });
  }
  for (auto& th : threads) th.join();
  set_log_level(saved);

  // Every line must be a complete "[INFO ] threadT-lineI-end" — interleaved
  // writes would tear the marker apart.
  std::istringstream lines(capture.str());
  std::string line;
  int complete = 0;
  while (std::getline(lines, line)) {
    EXPECT_NE(line.find("[INFO ] thread"), std::string::npos) << line;
    EXPECT_EQ(line.rfind("-end"), line.size() - 4) << line;
    ++complete;
  }
  EXPECT_EQ(complete, kThreads * kLines);
}

TEST(Log, ParseLevelRoundTripsAndRejects) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  for (const auto level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                           LogLevel::kError}) {
    EXPECT_EQ(parse_log_level(to_string(level)), level);
  }
  EXPECT_THROW(parse_log_level("verbose"), std::invalid_argument);
  EXPECT_THROW(parse_log_level("INFO"), std::invalid_argument);  // case matters
  EXPECT_THROW(parse_log_level(""), std::invalid_argument);
}

TEST(Stats, PercentileEdgeCases) {
  EXPECT_THROW(percentile({}, 50.0), Error);       // empty span is an error
  EXPECT_THROW(percentile({}, -1.0), Error);
  const std::vector<double> bad{1.0};
  EXPECT_THROW(percentile(bad, 101.0), Error);     // p outside [0, 100]
  const std::vector<double> one{3.5};
  EXPECT_DOUBLE_EQ(percentile(one, 0.0), 3.5);
  EXPECT_DOUBLE_EQ(percentile(one, 50.0), 3.5);
  EXPECT_DOUBLE_EQ(percentile(one, 100.0), 3.5);
  const std::vector<double> two{1.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(two, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(two, 50.0), 2.0);  // linear interpolation
  EXPECT_DOUBLE_EQ(percentile(two, 100.0), 3.0);
}

TEST(Stats, SummarizeEdgeCases) {
  const Summary empty = summarize({});
  EXPECT_DOUBLE_EQ(empty.mean, 0.0);
  EXPECT_DOUBLE_EQ(empty.stddev, 0.0);
  const std::vector<double> one{7.0};
  const Summary single = summarize(one);
  EXPECT_DOUBLE_EQ(single.mean, 7.0);
  EXPECT_DOUBLE_EQ(single.stddev, 0.0);  // n-1 denominator guards n < 2
  EXPECT_DOUBLE_EQ(single.min, 7.0);
  EXPECT_DOUBLE_EQ(single.median, 7.0);
  EXPECT_DOUBLE_EQ(single.max, 7.0);
}

TEST(Json, WriterProducesValidNestedOutput) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.member("name", "bench \"quoted\"\n");
  w.member("count", std::uint64_t{42});
  w.member("ratio", 1.5);
  w.member("ok", true);
  w.key("items").begin_array();
  w.value(1).value(2).value("three");
  w.end_array();
  w.key("nested").begin_object().member("inner", -7).end_object();
  w.end_object();
  EXPECT_EQ(os.str(),
            "{\"name\":\"bench \\\"quoted\\\"\\n\",\"count\":42,"
            "\"ratio\":1.5,\"ok\":true,\"items\":[1,2,\"three\"],"
            "\"nested\":{\"inner\":-7}}");
}

TEST(Json, NonFiniteDoublesBecomeNull) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_array();
  w.value(std::nan(""));
  w.value(std::numeric_limits<double>::infinity());
  w.end_array();
  EXPECT_EQ(os.str(), "[null,null]");
}

}  // namespace
}  // namespace fusedml
