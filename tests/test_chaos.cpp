// The chaos/soak harness: many client threads hammer one Server with mixed
// workloads, priorities, deadlines, and random cancellations while seeded
// fault storms arm and clear mid-run. After a graceful drain it asserts the
// serving layer's global invariants:
//
//   1. EXACTLY-ONE-OUTCOME — every submit resolved precisely once, and the
//      per-kind counters sum to the submit count (no request lost).
//   2. BOUNDED QUEUE — the admission queue's high-water mark never exceeded
//      its capacity.
//   3. BIT-EXACT RESULTS — every completed pattern request equals a clean
//      single-threaded reference executor run on the backend it reported;
//      completed scripts that took no fallback equal a reference runtime.
//   4. BREAKERS RECOVER — the storm trips the fused breaker open; the clean
//      wave afterwards probes it closed again.
//   5. CLEAN SHUTDOWN — drain() resolves everything and joins all workers
//      (run under TSan in CI to certify the absence of data races).
#include <gtest/gtest.h>

#include <iostream>

#include <algorithm>
#include <cstdint>
#include <thread>
#include <vector>

#include "la/generate.h"
#include "patterns/executor.h"
#include "serve/request_trace.h"
#include "serve/server.h"
#include "ml/script_library.h"

namespace fusedml::serve {
namespace {

using kernels::Backend;

constexpr int kClients = 8;
constexpr int kRequestsPerClientPerWave = 12;

struct Issued {
  ServeHandle handle;
  ServeRequest request;  // replayed against the reference oracle
  bool cancelled = false;
};

// Deterministic per-client request mix: patterns (most), scripts (every
// 5th) cycling through ALL NINE ScriptKinds across clients, priorities
// cycling through all bands, a tight deadline every 4th, and a cancellation
// every 7th.
Issued issue_one(Server& server, DatasetId dataset, const la::CsrMatrix& X,
                 const std::vector<real>& labels, int client, int i) {
  const std::uint64_t seed =
      0xc0ffee + static_cast<std::uint64_t>(client) * 1000 +
      static_cast<std::uint64_t>(i);
  ServeRequest req;
  if (i % 5 == 4) {
    ScriptEval eval;
    eval.dataset = dataset;
    eval.kind = static_cast<ScriptKind>((client + i) % 9);
    eval.iterations = 2;
    eval.labels = labels;
    req.work = std::move(eval);
  } else {
    PatternEval eval;
    eval.dataset = dataset;
    eval.y = la::random_vector(static_cast<usize>(X.cols()), seed);
    req.work = std::move(eval);
  }
  req.priority = static_cast<Priority>(i % kNumPriorities);
  if (i % 4 == 3) req.deadline_ms = 0.05;
  req.tag = seed;

  Issued issued;
  issued.request = req;
  issued.handle = server.submit(std::move(req));
  if (i % 7 == 6) {
    issued.handle.cancel();
    issued.cancelled = true;
  }
  return issued;
}

// One wave: kClients threads submit concurrently, then everything issued is
// awaited before the wave returns (so storm phases do not bleed together).
void run_wave(Server& server, DatasetId dataset, const la::CsrMatrix& X,
              const std::vector<real>& labels, std::vector<Issued>& out) {
  std::vector<std::vector<Issued>> per_client(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kRequestsPerClientPerWave; ++i) {
        per_client[(usize)c].push_back(
            issue_one(server, dataset, X, labels, c, i));
      }
    });
  }
  for (auto& t : clients) t.join();
  for (auto& batch : per_client) {
    for (auto& issued : batch) {
      issued.handle.wait();
      out.push_back(std::move(issued));
    }
  }
}

void verify_completed_against_oracle(const Issued& issued, usize session_bytes,
                                     const la::CsrMatrix& X) {
  const ServeOutcome& o = issued.handle.wait();
  ASSERT_EQ(o.kind, OutcomeKind::kCompleted);
  if (const auto* pattern = std::get_if<PatternEval>(&issued.request.work)) {
    // Retries are bit-exact and the outcome names the backend that finally
    // produced the value, so a clean executor on that backend is an oracle
    // even for requests that absorbed faults or degraded mid-flight.
    vgpu::Device ref_dev;
    patterns::PatternExecutor ref(ref_dev, o.backend_used);
    auto expect = ref.pattern(pattern->alpha, X, pattern->v, pattern->y,
                              pattern->beta, pattern->z);
    ASSERT_EQ(o.value.size(), expect.value.size());
    for (usize j = 0; j < o.value.size(); ++j) {
      ASSERT_EQ(o.value[j], expect.value[j])
          << "pattern tag " << o.tag << " element " << j;
    }
    return;
  }
  // Scripts run many ops; a fallback mid-script changes which backend
  // produced which intermediate, so the single-runtime oracle only applies
  // to fallback-free completions.
  if (o.resilience.fallbacks != 0) return;
  const auto& script = std::get<ScriptEval>(issued.request.work);
  vgpu::Device ref_dev;
  sysml::RuntimeOptions ro;
  ro.device_capacity = session_bytes;
  sysml::Runtime rt(ref_dev, ro);
  // The reference is the SAME ScriptLibrary entry the worker dispatched —
  // any of the nine algorithms, replayed single-threaded on a clean device.
  ml::Algorithm algorithm = ml::Algorithm::kLrCg;
  switch (script.kind) {
    case ScriptKind::kLrCg: algorithm = ml::Algorithm::kLrCg; break;
    case ScriptKind::kLogregGd: algorithm = ml::Algorithm::kLogregGd; break;
    case ScriptKind::kGlm: algorithm = ml::Algorithm::kGlm; break;
    case ScriptKind::kSvm: algorithm = ml::Algorithm::kSvm; break;
    case ScriptKind::kHits: algorithm = ml::Algorithm::kHits; break;
    case ScriptKind::kAls: algorithm = ml::Algorithm::kAls; break;
    case ScriptKind::kKmeans: algorithm = ml::Algorithm::kKmeans; break;
    case ScriptKind::kPagerank: algorithm = ml::Algorithm::kPagerank; break;
    case ScriptKind::kMinibatchLogreg:
      algorithm = ml::Algorithm::kMinibatchLogreg;
      break;
  }
  const ml::ScriptSpec* spec =
      ml::find_script(algorithm, /*dense=*/false, script.plan);
  ASSERT_NE(spec, nullptr);
  sysml::ScriptResult expect =
      spec->run_sparse(rt, X, script.labels, script.iterations);
  ASSERT_EQ(o.value.size(), expect.weights.size());
  for (usize j = 0; j < o.value.size(); ++j) {
    ASSERT_EQ(o.value[j], expect.weights[j])
        << "script tag " << o.tag << " weight " << j;
  }
}

TEST(Chaos, SoakWithFaultStormsCancellationsAndDrain) {
  la::CsrMatrix X = la::uniform_sparse(96, 40, 0.12, 2026);
  auto labels = la::regression_labels(X, 7, 0.05);

  // Calibrate the breaker cooldown to this workload's own timescale: one
  // fully-faulted dispatch (all retries + backoff on both GPU tiers, then
  // the CPU completion) advances the pool clock by storm_dispatch_ms / 4,
  // so a cooldown of ~3 such dispatches guarantees the open window spans
  // several storm requests — each a counted breaker skip.
  double storm_dispatch_ms;
  {
    vgpu::FaultConfig always;
    always.kernel_fault_rate = 1.0;
    vgpu::Device probe_dev;
    vgpu::FaultInjector probe_inj(always);
    probe_dev.set_fault_injector(&probe_inj);
    patterns::PatternExecutor probe(probe_dev, Backend::kFused);
    probe.retry_policy().max_attempts = 3;
    auto y = la::random_vector(static_cast<usize>(X.cols()), 1);
    storm_dispatch_ms =
        std::max(1e-4, probe.pattern(1, X, {}, y, 0, {}).modeled_ms);
  }

  ServeOptions opts;
  opts.workers = 4;
  opts.queue_capacity = 48;
  opts.retry.max_attempts = 3;
  opts.breaker.failure_threshold = 3;
  opts.breaker.cooldown_ms = 3.0 * storm_dispatch_ms;
  // Observability rides along under full chaos: every resolved request must
  // seal exactly one complete span tree, and the flight recorder must absorb
  // the anomaly storm without disturbing any invariant below.
  opts.request_tracing = true;
  opts.flight_recorder = true;
  Server server(opts);
  const DatasetId dataset = server.add_dataset(X);
  server.start();

  std::vector<Issued> issued;
  issued.reserve(3 * kClients * kRequestsPerClientPerWave);

  // Phase A: clean baseline traffic.
  run_wave(server, dataset, X, labels, issued);

  // Phase B: seeded fault storm — every GPU launch fails, so every fused
  // and baseline dispatch exhausts its retries and the fused breaker must
  // trip open pool-wide. Workers re-arm at their next request boundary,
  // before any phase-B request executes.
  vgpu::FaultConfig storm;
  storm.seed = 0xbad5eed;
  storm.kernel_fault_rate = 1.0;
  server.inject_faults(storm);
  run_wave(server, dataset, X, labels, issued);
  EXPECT_GT(server.breakers().total_opens(), 0u);

  // Phase C: storm cleared; clean traffic advances the modeled clock, and
  // once it passes the cooldown a half-open probe must close the fused
  // breaker again. Clean dispatches are far cheaper than storm dispatches,
  // so a bounded tail of extra requests walks the clock across the cooldown
  // deterministically. (The cusparse tier is only consulted while fused is
  // open, so its breaker may legitimately stay open once fused recovers.)
  server.inject_faults(vgpu::FaultConfig{});
  run_wave(server, dataset, X, labels, issued);
  for (int i = 0;
       i < 20000 &&
       server.breakers().state(Backend::kFused) != BreakerState::kClosed;
       ++i) {
    PatternEval eval;
    eval.dataset = dataset;
    eval.y = la::random_vector(static_cast<usize>(X.cols()), 9000u + i);
    ServeRequest req;
    req.work = std::move(eval);
    Issued extra;
    extra.request = req;
    extra.handle = server.submit(std::move(req));
    extra.handle.wait();
    issued.push_back(std::move(extra));
  }
  EXPECT_EQ(server.breakers().state(Backend::kFused), BreakerState::kClosed);
  EXPECT_GT(server.breakers().stats(Backend::kFused).closes, 0u);

  ServeStats stats = server.drain();

  // (1) Exactly one outcome per submit; nothing lost, nothing doubled.
  ASSERT_GE(issued.size(),
            static_cast<usize>(3 * kClients * kRequestsPerClientPerWave));
  EXPECT_EQ(stats.submitted, issued.size());
  EXPECT_EQ(stats.resolved(), stats.submitted);
  std::uint64_t kind_counts[5] = {0, 0, 0, 0, 0};
  for (const Issued& entry : issued) {
    ASSERT_TRUE(entry.handle.resolved());
    ASSERT_EQ(entry.handle.state()->resolutions(), 1)
        << "tag " << entry.handle.wait().tag;
    ++kind_counts[static_cast<int>(entry.handle.wait().kind)];
    // (1b) TRACE COMPLETENESS — whatever the outcome kind or interleaving,
    // the winning resolve sealed exactly one structurally complete span
    // tree whose root duration bit-matches the modeled latency the client
    // reads off the outcome (queue wait + execution, same doubles).
    const ServeOutcome& o = entry.handle.wait();
    ASSERT_NE(o.trace, nullptr) << "tag " << o.tag;
    ASSERT_TRUE(o.trace->complete()) << "tag " << o.tag;
    ASSERT_EQ(o.trace->tag, o.tag);
    ASSERT_EQ(o.trace->kind, o.kind);
    ASSERT_EQ(o.trace->root().dur_ms, o.queue_wait_ms + o.modeled_ms)
        << "tag " << o.tag;
  }
  EXPECT_EQ(kind_counts[static_cast<int>(OutcomeKind::kCompleted)],
            stats.completed);
  EXPECT_EQ(kind_counts[static_cast<int>(OutcomeKind::kRejected)],
            stats.rejected_queue_full + stats.rejected_over_capacity +
                stats.shed);
  EXPECT_EQ(kind_counts[static_cast<int>(OutcomeKind::kDeadlineExceeded)],
            stats.deadline_exceeded);
  EXPECT_EQ(kind_counts[static_cast<int>(OutcomeKind::kCancelled)],
            stats.cancelled);
  EXPECT_EQ(kind_counts[static_cast<int>(OutcomeKind::kFailed)],
            stats.failed);

  // (2) The queue never outgrew its bound.
  EXPECT_LE(stats.queue_high_water, opts.queue_capacity);

  // (3) Completed results are bit-exact against single-threaded oracles.
  int verified = 0;
  for (const Issued& entry : issued) {
    if (entry.handle.wait().kind != OutcomeKind::kCompleted) continue;
    verify_completed_against_oracle(entry, server.pool().session_memory_bytes(),
                                    X);
    ++verified;
  }
  EXPECT_GT(verified, 0);

  // (4) The storm was absorbed, not ignored: faults were seen, dispatches
  // degraded, and breakers skipped work pool-wide.
  EXPECT_GT(stats.resilience.faults_seen, 0u);
  EXPECT_GT(stats.resilience.fallbacks_to_cpu, 0u);
  EXPECT_GT(stats.breaker_skips, 0u);

  // (5) Drain resolved everything; a second drain is a no-op snapshot.
  ServeStats again = server.drain();
  EXPECT_EQ(again.submitted, stats.submitted);
}

// SDC soak: kernels LIE — a seeded injector perturbs one output element per
// drawn launch at a >=1% rate while raising NO error — and every request
// class runs full ABFT verification. The harness asserts the whole defense
// pipeline end-to-end under concurrency:
//
//   - every COMPLETED request (patterns and all nine script kinds) is
//     bit-exact against a fault-free single-threaded reference — silent
//     corruption never reaches a client;
//   - detections were actually made (the storm was not a no-op) and the
//     verification bill is accounted in the drained resilience totals;
//   - workers accumulating confirmed SDCs get quarantined, and quarantined
//     devices re-enter service after probation on the modeled clock;
//   - exactly-one-outcome and the bounded queue survive the requeue traffic
//     quarantine adds. Run under TSan in CI to certify the new paths.
TEST(Chaos, SilentCorruptionSoakDetectsRecoversAndQuarantines) {
  la::CsrMatrix X = la::uniform_sparse(96, 40, 0.12, 4242);
  auto labels = la::regression_labels(X, 7, 0.05);

  ServeOptions opts;
  opts.workers = 3;
  opts.queue_capacity = 96;
  opts.retry.max_attempts = 4;
  opts.verify_interactive = kernels::VerifyPolicy::kFull;
  opts.verify_normal = kernels::VerifyPolicy::kFull;
  opts.verify_batch = kernels::VerifyPolicy::kFull;
  opts.quarantine.enabled = true;
  opts.quarantine.sdc_threshold = 2;
  opts.quarantine.probation_ms = 0.25;
  // Tracing must survive the quarantine requeue path too: a request that
  // bounces across workers still seals exactly one tree.
  opts.request_tracing = true;
  opts.flight_recorder = true;
  Server server(opts);
  const DatasetId dataset = server.add_dataset(X);
  server.start();

  // No cancellations and no tight deadlines: this soak is about completed
  // values, so the mix maximizes completions while still cycling all three
  // priority bands (hence all three verify_* policies) and all nine
  // script kinds.
  const auto issue_sdc = [&](int client, int i) {
    ServeRequest req;
    const std::uint64_t seed = 0x5dc0 + static_cast<std::uint64_t>(client) *
                                            1000 +
                               static_cast<std::uint64_t>(i);
    if (i % 3 == 2) {
      ScriptEval eval;
      eval.dataset = dataset;
      eval.kind = static_cast<ScriptKind>((client + i) % 9);
      eval.iterations = 2;
      eval.labels = labels;
      req.work = std::move(eval);
    } else {
      PatternEval eval;
      eval.dataset = dataset;
      eval.y = la::random_vector(static_cast<usize>(X.cols()), seed);
      if (i % 2 == 0) {
        // Exercise the full Equation-1 shape (v and z arms) under
        // verification, not just the bare X^T(Xy) core.
        eval.v = la::random_vector(static_cast<usize>(X.rows()), seed + 1);
        eval.z = la::random_vector(static_cast<usize>(X.cols()), seed + 2);
        eval.alpha = 2;
        eval.beta = -1;
      }
      req.work = std::move(eval);
    }
    req.priority = static_cast<Priority>(i % kNumPriorities);
    req.tag = seed;
    Issued issued;
    issued.request = req;
    issued.handle = server.submit(std::move(req));
    return issued;
  };

  std::vector<Issued> issued;

  // Phase A: silent-corruption storm. 8% of launches return a perturbed
  // output with a clean status — only ABFT can notice. Two waves: each
  // worker must execute enough launches that accumulating sdc_threshold
  // confirmed detections is certain regardless of how the scheduler splits
  // the requests across workers.
  vgpu::FaultConfig storm;
  storm.seed = 0x51dc;
  storm.silent_fault_rate = 0.08;
  server.inject_faults(storm);
  for (int wave = 0; wave < 2; ++wave) {
    std::vector<std::vector<Issued>> per_client(kClients);
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        for (int i = 0; i < kRequestsPerClientPerWave; ++i) {
          per_client[(usize)c].push_back(issue_sdc(c, i));
        }
      });
    }
    for (auto& t : clients) t.join();
    for (auto& batch : per_client) {
      for (auto& entry : batch) {
        entry.handle.wait();
        issued.push_back(std::move(entry));
      }
    }
  }

  // Phase B: storm cleared. Clean traffic advances the modeled clock past
  // the probation window, so every quarantined device must re-enter
  // service (bounded walk, same shape as the breaker-recovery phase).
  server.inject_faults(vgpu::FaultConfig{});
  for (int i = 0; i < 20000 && (server.device_health().quarantines() == 0 ||
                                server.device_health().reentries() == 0);
       ++i) {
    PatternEval eval;
    eval.dataset = dataset;
    eval.y = la::random_vector(static_cast<usize>(X.cols()), 77000u + i);
    ServeRequest req;
    req.work = std::move(eval);
    Issued extra;
    extra.request = req;
    extra.handle = server.submit(std::move(req));
    extra.handle.wait();
    issued.push_back(std::move(extra));
  }

  ServeStats stats = server.drain();
  std::cout << "sdc soak: submitted=" << stats.submitted
            << " completed=" << stats.completed
            << " failed=" << stats.failed
            << " sdc_detected=" << stats.sdc_detected
            << " verify_launches=" << stats.resilience.verify_launches
            << " rollbacks=" << stats.rollbacks
            << " readmissions=" << stats.readmissions
            << " quarantines=" << stats.quarantines
            << " reentries=" << stats.quarantine_reentries << "\n";

  // Exactly-one-outcome and balanced books, with requeue traffic in play.
  EXPECT_EQ(stats.submitted, issued.size());
  EXPECT_EQ(stats.resolved(), stats.submitted);
  for (const Issued& entry : issued) {
    ASSERT_TRUE(entry.handle.resolved());
    ASSERT_EQ(entry.handle.state()->resolutions(), 1)
        << "tag " << entry.handle.wait().tag;
    const ServeOutcome& o = entry.handle.wait();
    ASSERT_NE(o.trace, nullptr) << "tag " << o.tag;
    ASSERT_TRUE(o.trace->complete()) << "tag " << o.tag;
    ASSERT_EQ(o.trace->root().dur_ms, o.queue_wait_ms + o.modeled_ms)
        << "tag " << o.tag;
  }
  EXPECT_LE(stats.queue_high_water, opts.queue_capacity);

  // The storm was real and the defense engaged: detections happened, the
  // verification bill is on the books, and no detection leaked through —
  // every completed value is bit-exact against a fault-free reference.
  EXPECT_GT(stats.sdc_detected, 0u);
  EXPECT_GT(stats.resilience.verify_launches, 0u);
  EXPECT_GT(stats.resilience.verify_ms, 0.0);
  int verified = 0;
  for (const Issued& entry : issued) {
    if (entry.handle.wait().kind != OutcomeKind::kCompleted) continue;
    verify_completed_against_oracle(entry, server.pool().session_memory_bytes(),
                                    X);
    ++verified;
  }
  EXPECT_GT(verified, 0);

  // Quarantine fired and probation released: at least one device was
  // drained for confirmed SDCs and later re-entered service.
  EXPECT_GT(stats.quarantines, 0u);
  EXPECT_GT(stats.quarantine_reentries, 0u);
}

// Cancellation storm against a single slow worker: whatever the interleaving
// (cancel-before-dequeue, cancel-racing-execution, cancel-after-complete),
// every request resolves exactly once and the books balance.
TEST(Chaos, CancellationRacesNeverLoseOrDoubleResolve) {
  la::CsrMatrix X = la::uniform_sparse(64, 32, 0.15, 77);
  ServeOptions opts;
  opts.workers = 1;
  opts.queue_capacity = 256;
  Server server(opts);
  const DatasetId dataset = server.add_dataset(X);
  server.start();

  constexpr int kN = 160;
  std::vector<ServeHandle> handles;
  handles.reserve(kN);
  for (int i = 0; i < kN; ++i) {
    PatternEval eval;
    eval.dataset = dataset;
    eval.y = la::random_vector(static_cast<usize>(X.cols()), 500u + i);
    ServeRequest req;
    req.work = std::move(eval);
    handles.push_back(server.submit(std::move(req)));
  }
  // A second thread cancels every third request while the worker drains.
  std::thread canceller([&] {
    for (int i = 0; i < kN; i += 3) handles[(usize)i].cancel();
  });
  canceller.join();
  ServeStats stats = server.drain();
  for (const ServeHandle& h : handles) {
    ASSERT_TRUE(h.resolved());
    ASSERT_EQ(h.state()->resolutions(), 1);
  }
  EXPECT_EQ(stats.resolved(), stats.submitted);
  EXPECT_GT(stats.cancelled, 0u);
  EXPECT_GT(stats.completed, 0u);
}

}  // namespace
}  // namespace fusedml::serve
