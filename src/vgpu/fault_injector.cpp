#include "vgpu/fault_injector.h"

#include "common/error.h"

namespace fusedml::vgpu {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kKernelFault: return "kernel-fault";
    case FaultKind::kEcc: return "ecc";
    case FaultKind::kTransfer: return "transfer";
    case FaultKind::kDeviceOom: return "device-oom";
    case FaultKind::kSilentCorruption: return "silent-corruption";
  }
  return "?";
}

FaultInjector::FaultInjector(FaultConfig cfg) : cfg_(cfg), rng_(cfg.seed) {
  FUSEDML_CHECK(cfg.kernel_fault_rate >= 0 && cfg.ecc_fault_rate >= 0 &&
                    cfg.oom_fault_rate >= 0 && cfg.silent_fault_rate >= 0 &&
                    cfg.transfer_fault_rate >= 0,
                "fault rates must be non-negative");
  FUSEDML_CHECK(cfg.kernel_fault_rate + cfg.ecc_fault_rate +
                        cfg.oom_fault_rate + cfg.silent_fault_rate <=
                    1.0,
                "per-launch fault rates must sum to at most 1");
  FUSEDML_CHECK(cfg.transfer_fault_rate <= 1.0,
                "transfer fault rate must be at most 1");
}

FaultKind FaultInjector::next_launch_fault() {
  ++log_.launches_seen;
  if (!armed()) return FaultKind::kNone;
  const double u = rng_.uniform();
  double threshold = cfg_.kernel_fault_rate;
  if (u < threshold) {
    ++log_.kernel_faults;
    return FaultKind::kKernelFault;
  }
  threshold += cfg_.ecc_fault_rate;
  if (u < threshold) {
    ++log_.ecc_faults;
    return FaultKind::kEcc;
  }
  threshold += cfg_.oom_fault_rate;
  if (u < threshold) {
    ++log_.oom_faults;
    return FaultKind::kDeviceOom;
  }
  threshold += cfg_.silent_fault_rate;
  if (u < threshold) {
    ++log_.silent_faults;
    return FaultKind::kSilentCorruption;
  }
  return FaultKind::kNone;
}

bool FaultInjector::next_transfer_fault() {
  ++log_.transfers_seen;
  if (cfg_.transfer_fault_rate <= 0.0) return false;
  if (rng_.uniform() < cfg_.transfer_fault_rate) {
    ++log_.transfer_faults;
    return true;
  }
  return false;
}

bool FaultInjector::next_alloc_oom() {
  ++log_.allocs_seen;
  if (cfg_.oom_fault_rate <= 0.0) return false;
  if (rng_.uniform() < cfg_.oom_fault_rate) {
    ++log_.oom_faults;
    return true;
  }
  return false;
}

void FaultInjector::reset() { reset(cfg_.seed); }

void FaultInjector::reset(std::uint64_t seed) {
  cfg_.seed = seed;
  rng_ = Rng(seed);
  log_ = FaultLog{};
}

}  // namespace fusedml::vgpu
