#include "vgpu/coalescing.h"

#include <algorithm>
#include <array>

#include "common/error.h"

namespace fusedml::vgpu {

std::uint64_t contiguous_transactions(std::uint64_t first_byte, int active,
                                      usize elem_bytes) {
  if (active <= 0) return 0;
  const std::uint64_t last_byte =
      first_byte + static_cast<std::uint64_t>(active) * elem_bytes - 1;
  return segment_of(last_byte) - segment_of(first_byte) + 1;
}

std::uint64_t strided_transactions(std::uint64_t first_byte, int active,
                                   std::uint64_t stride_bytes,
                                   usize elem_bytes) {
  if (active <= 0) return 0;
  if (stride_bytes <= elem_bytes) {
    return contiguous_transactions(first_byte, active, elem_bytes);
  }
  // Strided lanes: count distinct segments along the arithmetic progression.
  std::uint64_t count = 0;
  std::uint64_t prev_segment = ~0ull;
  for (int lane = 0; lane < active; ++lane) {
    const std::uint64_t addr = first_byte + lane * stride_bytes;
    // An element may straddle a segment boundary.
    const std::uint64_t s0 = segment_of(addr);
    const std::uint64_t s1 = segment_of(addr + elem_bytes - 1);
    if (s0 != prev_segment) ++count;
    if (s1 != s0) ++count;
    prev_segment = s1;
  }
  return count;
}

std::uint64_t gather_transactions(std::span<const std::uint64_t> byte_addrs) {
  FUSEDML_CHECK(byte_addrs.size() <= 32, "a warp has at most 32 lanes");
  if (byte_addrs.empty()) return 0;
  std::array<std::uint64_t, 32> segments{};
  usize n = 0;
  for (std::uint64_t addr : byte_addrs) segments[n++] = segment_of(addr);
  std::sort(segments.begin(), segments.begin() + n);
  std::uint64_t count = 1;
  for (usize i = 1; i < n; ++i) {
    if (segments[i] != segments[i - 1]) ++count;
  }
  return count;
}

}  // namespace fusedml::vgpu
