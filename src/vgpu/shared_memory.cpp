#include "vgpu/shared_memory.h"

#include <algorithm>
#include <array>

#include "common/error.h"

namespace fusedml::vgpu {

SharedMemory::SharedMemory(usize words, int banks, MemCounters& counters)
    : data_(words, real{0}), banks_(banks), counters_(counters) {
  FUSEDML_CHECK(banks_ > 0, "bank count must be positive");
}

void SharedMemory::bounds_check(usize word) const {
  FUSEDML_CHECK(word < data_.size(), "shared memory access out of bounds");
}

real SharedMemory::load(usize word) {
  bounds_check(word);
  ++counters_.smem_accesses;
  return data_[word];
}

void SharedMemory::store(usize word, real value) {
  bounds_check(word);
  ++counters_.smem_accesses;
  data_[word] = value;
}

void SharedMemory::atomic_add(usize word, real value) {
  bounds_check(word);
  ++counters_.smem_accesses;
  ++counters_.atomic_shared_ops;
  // Blocks execute one at a time per executor worker and shared memory is
  // private to the block, so a plain add is the correct semantics.
  data_[word] += value;
}

int SharedMemory::warp_access(std::span<const usize> word_addrs) {
  FUSEDML_CHECK(word_addrs.size() <= 32, "warp has at most 32 lanes");
  std::array<int, 32> bank_load{};  // lanes per bank this access
  std::array<usize, 32> bank_word{};
  std::array<bool, 32> bank_used{};
  int passes = 1;
  for (usize addr : word_addrs) {
    bounds_check(addr);
    ++counters_.smem_accesses;
    const int bank = static_cast<int>(addr % static_cast<usize>(banks_));
    if (bank_used[bank] && bank_word[bank] != addr) {
      // Same bank, different word: extra pass. Same word broadcasts free.
      passes = std::max(passes, ++bank_load[bank] + 1);
    } else {
      bank_used[bank] = true;
      bank_word[bank] = addr;
    }
  }
  counters_.smem_bank_conflicts += static_cast<std::uint64_t>(passes - 1);
  return passes;
}

void SharedMemory::fill(real value) {
  std::fill(data_.begin(), data_.end(), value);
}

}  // namespace fusedml::vgpu
