// The CUDA global-memory coalescer, as a counting model.
//
// A warp's memory instruction is serviced by one transaction per distinct
// 128-byte segment touched by its active lanes. Contiguous, aligned accesses
// by 32 lanes of 8-byte words therefore cost 2 transactions; a fully
// scattered gather costs up to 32.
#pragma once

#include <cstdint>
#include <span>

#include "common/types.h"

namespace fusedml::vgpu {

inline constexpr std::uint64_t kSegmentBytes = 128;

/// Transactions for `active` lanes reading consecutive elements of size
/// `elem_bytes` starting at byte offset `first_byte` (lane i reads element i).
std::uint64_t contiguous_transactions(std::uint64_t first_byte, int active,
                                      usize elem_bytes);

/// Transactions for a strided warp access: lane i touches byte address
/// first_byte + i * stride_bytes, for `active` lanes.
std::uint64_t strided_transactions(std::uint64_t first_byte, int active,
                                   std::uint64_t stride_bytes,
                                   usize elem_bytes);

/// Transactions for an arbitrary gather: one address per active lane.
/// Distinct 128-byte segments are deduplicated, exactly like the hardware.
std::uint64_t gather_transactions(std::span<const std::uint64_t> byte_addrs);

/// Segment index of a byte address.
inline std::uint64_t segment_of(std::uint64_t byte_addr) {
  return byte_addr / kSegmentBytes;
}

}  // namespace fusedml::vgpu
