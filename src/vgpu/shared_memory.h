// Per-block shared memory with Kepler-style bank accounting.
//
// Shared memory is interleaved across 32 banks at word granularity; a warp
// access that maps two lanes to the same bank (different words) serializes
// into multiple passes. The fused kernels' inter-vector aggregation lives
// here, so the model matters for the dense-vs-sparse discussion in §3.2.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"
#include "vgpu/mem_counters.h"

namespace fusedml::vgpu {

class SharedMemory {
 public:
  /// `words` double-precision words of shared memory; zero-initialized, as
  /// the kernels do explicitly in their init phase (Alg. 1 line 6).
  SharedMemory(usize words, int banks, MemCounters& counters);

  usize size() const { return data_.size(); }

  /// Plain (single-lane) access.
  real load(usize word) ;
  void store(usize word, real value);
  /// Intra-block atomic add (the inter-vector aggregation of Alg. 2 L14).
  void atomic_add(usize word, real value);

  /// Warp-wide access for bank-conflict accounting: lane i touches
  /// word_addrs[i]. Returns the number of serialized passes charged.
  int warp_access(std::span<const usize> word_addrs);

  std::span<real> raw() { return data_; }
  std::span<const real> raw() const { return data_; }

  void fill(real value);

 private:
  std::vector<real> data_;
  int banks_;
  MemCounters& counters_;

  void bounds_check(usize word) const;
};

}  // namespace fusedml::vgpu
