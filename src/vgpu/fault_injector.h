// Deterministic, seeded fault injection for the virtual device — the test
// double for everything that goes wrong on real GPUs: failed kernel
// launches, uncorrectable ECC events on kernel output, PCIe transfer
// errors, and device-OOM conditions.
//
// The injector is a schedule, not a chaos monkey: given a seed and a fixed
// sequence of launch/transfer/allocation events it always arms the same
// faults, so a test can replay a faulty run bit-for-bit and a bench can
// sweep fault rates reproducibly. The device consults it at three sites:
//   - Device::launch       (kernel faults, ECC corruption, silent output
//                           corruption, launch-time OOM)
//   - Device::transfer_*   (PCIe faults)
//   - MemoryManager allocs (allocation-time OOM)
// Faults surface as the typed errors of common/error.h; the resilience
// layers upstream decide between retry, backoff, and degradation. The one
// exception is kSilentCorruption: the launch returns normally and the
// output buffer is deterministically perturbed instead — only a redundant
// check (the ABFT layer in kernels/abft.h) can catch it.
//
// Seed-determinism contract. Each event site consumes EXACTLY ONE uniform
// draw from the seeded stream per event, whether or not a fault fires:
//   - next_launch_fault()   one draw per kernel launch,
//   - next_transfer_fault() one draw per host<->device copy,
//   - next_alloc_oom()      one draw per device allocation,
// except that a fully disarmed launch site (all per-launch rates zero)
// skips its draw so attaching a disarmed injector is a true no-op. The
// per-kind rates (launch / ecc / silent / oom / pcie) are independently
// configurable; within one launch draw they form a threshold ladder in
// declaration order, so RAISING one rate never changes WHICH events an
// earlier-ladder kind hits — only whether the remainder falls through.
// Consequences: same seed + same event sequence => identical fault
// schedule (replayable bit-for-bit), and the schedule depends only on the
// event ORDER, never on wall-clock time or thread interleaving.
#pragma once

#include <cstdint>

#include "common/rng.h"

namespace fusedml::vgpu {

/// What the injector armed for one event.
enum class FaultKind {
  kNone,
  kKernelFault,  ///< the launch fails before the kernel runs
  kEcc,          ///< the kernel runs but its output is corrupted
  kTransfer,     ///< a host<->device copy fails in flight
  kDeviceOom,    ///< an allocation / launch workspace request fails
  kSilentCorruption,  ///< the launch succeeds but the output is perturbed
};

const char* to_string(FaultKind kind);

/// Per-event fault probabilities. All zero (the default) disarms the
/// injector entirely; attaching a disarmed injector changes nothing.
struct FaultConfig {
  std::uint64_t seed = 0x5eedULL;
  /// Per kernel launch. kernel_fault + ecc + oom + silent must sum to <= 1.
  double kernel_fault_rate = 0.0;
  double ecc_fault_rate = 0.0;
  double oom_fault_rate = 0.0;
  /// Per kernel launch: the launch reports success but its output buffer is
  /// deterministically perturbed (no exception is raised). Ladder position
  /// is after oom, so enabling SDC injection leaves the schedule of the
  /// signaled fault kinds at a given seed untouched.
  double silent_fault_rate = 0.0;
  /// Per host<->device transfer.
  double transfer_fault_rate = 0.0;

  bool armed() const {
    return kernel_fault_rate > 0.0 || ecc_fault_rate > 0.0 ||
           oom_fault_rate > 0.0 || silent_fault_rate > 0.0 ||
           transfer_fault_rate > 0.0;
  }
};

/// Running totals of what was actually injected.
struct FaultLog {
  std::uint64_t kernel_faults = 0;
  std::uint64_t ecc_faults = 0;
  std::uint64_t transfer_faults = 0;
  std::uint64_t oom_faults = 0;
  std::uint64_t silent_faults = 0;
  std::uint64_t launches_seen = 0;
  std::uint64_t transfers_seen = 0;
  std::uint64_t allocs_seen = 0;

  std::uint64_t total() const {
    return kernel_faults + ecc_faults + transfer_faults + oom_faults +
           silent_faults;
  }
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultConfig cfg = {});

  /// Fate of the next kernel launch: kNone, kKernelFault, kEcc, kDeviceOom
  /// or kSilentCorruption. One uniform draw per call.
  FaultKind next_launch_fault();

  /// True if the next host<->device transfer must fail.
  bool next_transfer_fault();

  /// True if the next device allocation request must report OOM.
  bool next_alloc_oom();

  bool armed() const { return cfg_.armed(); }
  const FaultConfig& config() const { return cfg_; }
  const FaultLog& log() const { return log_; }

  /// Restarts the schedule (same seed unless a new one is given) and clears
  /// the log — lets one injector drive a faulty run and its replay.
  void reset();
  void reset(std::uint64_t seed);

 private:
  FaultConfig cfg_;
  Rng rng_;
  FaultLog log_;
};

}  // namespace fusedml::vgpu
