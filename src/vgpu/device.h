// The virtual GPU device: launches kernels, schedules blocks, merges
// counters, and reports modeled time per launch.
//
// Execution model. A kernel is a callable invoked once per thread block with
// a BlockCtx. Inside, the kernel iterates its warps/vectors/lanes explicitly
// in warp-synchronous phases — the paper's algorithms all have a static
// barrier structure (init / row loop / __syncthreads / final aggregation),
// so this lock-step style is exact. Blocks may execute on host worker
// threads; global-memory writes from kernels must go through atomic_add()
// (plain writes are fine for block-private outputs).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/timer.h"
#include "common/types.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "vgpu/cost_model.h"
#include "vgpu/device_spec.h"
#include "vgpu/fault_injector.h"
#include "vgpu/launch_config.h"
#include "vgpu/mem_counters.h"
#include "vgpu/mem_tracker.h"
#include "vgpu/occupancy.h"
#include "vgpu/shared_memory.h"

namespace fusedml::vgpu {

/// Lock-free atomic add on a double living in ordinary host memory —
/// the virtual device's atomicAdd(double*).
inline void atomic_add(real& target, real value) {
  std::atomic_ref<real> ref(target);
  real expected = ref.load(std::memory_order_relaxed);
  while (!ref.compare_exchange_weak(expected, expected + value,
                                    std::memory_order_relaxed)) {
  }
}

/// Per-block execution context handed to kernels.
class BlockCtx {
 public:
  BlockCtx(int block_id, const LaunchConfig& cfg, const DeviceSpec& device)
      : block_id_(block_id),
        cfg_(cfg),
        device_(device),
        smem_(cfg.smem_words, device.smem_banks, counters_),
        mem_(counters_) {}

  int block_id() const { return block_id_; }
  int grid_size() const { return cfg_.grid_size; }
  int block_size() const { return cfg_.block_size; }
  int vector_size() const { return cfg_.vector_size; }
  int num_vectors() const { return cfg_.num_vectors_per_block(); }
  int coarsening() const { return cfg_.coarsening; }
  int thread_load() const { return cfg_.thread_load; }
  const LaunchConfig& config() const { return cfg_; }
  const DeviceSpec& device() const { return device_; }

  SharedMemory& smem() { return smem_; }
  MemTracker& mem() { return mem_; }
  MemCounters& counters() { return counters_; }

 private:
  int block_id_;
  const LaunchConfig& cfg_;
  const DeviceSpec& device_;
  MemCounters counters_;
  SharedMemory smem_;
  MemTracker mem_;
};

/// Everything known about one kernel launch after it retires.
struct LaunchStats {
  MemCounters counters;
  OccupancyResult occupancy;
  TimeBreakdown time;       ///< modeled device time
  double wall_ms = 0.0;     ///< host wall-clock of the functional simulation
  LaunchConfig config;

  double modeled_ms() const { return time.total_ms; }
};

class Device {
 public:
  explicit Device(DeviceSpec spec = gtx_titan(), CostParams params = {},
                  int host_threads = 1)
      : spec_(std::move(spec)),
        cost_model_(spec_, params),
        host_threads_(host_threads < 1 ? 1 : host_threads) {}

  const DeviceSpec& spec() const { return spec_; }
  const CostModel& cost_model() const { return cost_model_; }

  /// Attaches a fault injector (nullptr detaches). Not owned. A disarmed
  /// injector (all rates zero) leaves every modeled time unchanged.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }
  FaultInjector* fault_injector() const { return injector_; }

  /// Launch `kernel` (callable taking BlockCtx&) over cfg.grid_size blocks.
  ///
  /// With a fault injector attached, the launch may instead raise one of the
  /// typed faults: KernelFaultError before the kernel body runs (only the
  /// launch overhead is burned), DeviceOomError for an injected workspace
  /// allocation failure, or DataError *after* the kernel ran (an ECC event
  /// on its output — the full kernel time is burned, and callers must treat
  /// any in-place outputs as corrupted). Burned time is charged to the
  /// session totals and carried on the exception as penalty_ms().
  ///
  /// A kSilentCorruption fault raises NOTHING: the launch returns normally
  /// with full accounting and only pending_silent_corruptions() betrays
  /// that the output of this launch must be perturbed. The op layer
  /// (kernels/op_registry.cpp) consumes the pending count via
  /// take_silent_corruptions() and applies a deterministic seeded element
  /// perturbation to the op's output buffer — exactly the fault model ABFT
  /// verification (kernels/abft.h) exists to catch.
  template <typename Kernel>
  LaunchStats launch(const LaunchConfig& cfg, Kernel&& kernel) {
    FUSEDML_CHECK(cfg.internally_consistent(), "inconsistent launch config");
    FUSEDML_CHECK(cfg.block_size <= spec_.max_threads_per_block,
                  "block size exceeds device limit");
    FUSEDML_CHECK(cfg.smem_words * sizeof(real) <= spec_.smem_per_sm_bytes,
                  "shared memory request exceeds SM capacity");

    const FaultKind fault =
        injector_ != nullptr ? injector_->next_launch_fault() : FaultKind::kNone;
    if (fault == FaultKind::kKernelFault) {
      const double penalty = cost_model_.params().launch_overhead_us / 1000.0;
      ++session_launches_;
      session_modeled_ms_ += penalty;
      record_fault_event(cfg.label, "kernel_fault", penalty);
      throw KernelFaultError("injected kernel-launch failure", penalty);
    }
    if (fault == FaultKind::kDeviceOom) {
      throw DeviceOomError("injected device OOM at kernel launch");
    }

    LaunchStats stats;
    stats.config = cfg;
    stats.occupancy =
        compute_occupancy(spec_, cfg.block_size, cfg.resources);

    Timer wall;
    if (host_threads_ == 1 || cfg.grid_size == 1) {
      for (int b = 0; b < cfg.grid_size; ++b) {
        BlockCtx ctx(b, cfg, spec_);
        kernel(ctx);
        stats.counters += ctx.counters();
      }
    } else {
      run_blocks_parallel(cfg, kernel, stats.counters);
    }
    stats.wall_ms = wall.elapsed_ms();

    stats.time = cost_model_.kernel_time(stats.counters, stats.occupancy);
    ++session_launches_;
    session_modeled_ms_ += stats.time.total_ms;
    session_counters_ += stats.counters;
    record_launch_event(cfg, stats);
    if (fault == FaultKind::kEcc) {
      record_fault_event(cfg.label, "ecc", 0.0);
      throw DataError("injected ECC corruption in kernel output",
                      stats.time.total_ms);
    }
    if (fault == FaultKind::kSilentCorruption) {
      record_fault_event(cfg.label, "silent_corruption", 0.0);
      ++pending_silent_;
      ++silent_seq_;
    }
    return stats;
  }

  /// Modeled host->device copy; accumulates into the session totals. With a
  /// fault injector attached the copy may fail in flight (TransferError);
  /// the bus time is still burned and carried as the error's penalty.
  double transfer_h2d_ms(std::uint64_t bytes) {
    const double ms = cost_model_.transfer_ms(bytes);
    session_transfer_ms_ += ms;
    const bool faulted =
        injector_ != nullptr && injector_->next_transfer_fault();
    if (obs::recorder().enabled()) {
      obs::TraceEvent ev;
      ev.name = faulted ? "pcie_transfer_fault" : "pcie_transfer";
      ev.cat = "transfer";
      ev.track = obs::Track::kPcie;
      ev.dur_ms = ms;
      ev.ts_ms = obs::recorder().advance_ms(ms);
      ev.num_args.emplace_back("bytes", static_cast<double>(bytes));
      obs::recorder().record(std::move(ev));
    }
    if (obs::metrics().enabled()) {
      obs::metrics().counter("vgpu.transfers").add();
      obs::metrics().counter("vgpu.transfer_bytes").add(bytes);
    }
    if (faulted) {
      if (obs::metrics().enabled()) {
        obs::metrics().counter("vgpu.faults_injected").add();
      }
      throw TransferError("injected PCIe transfer fault", ms);
    }
    return ms;
  }

  // --- Silent-corruption handshake with the op layer ---------------------
  /// Silent corruptions armed since the last take_silent_corruptions().
  /// Non-zero means the output of a launch in the current logical op must
  /// be perturbed before anyone reads it.
  std::uint64_t pending_silent_corruptions() const { return pending_silent_; }
  /// Consumes (returns and clears) the pending count. The op layer calls
  /// this once per logical op, right where the op's output buffer is in
  /// hand.
  std::uint64_t take_silent_corruptions() {
    const std::uint64_t n = pending_silent_;
    pending_silent_ = 0;
    return n;
  }
  /// Monotonic ordinal of silent-corruption events on this device — the
  /// deterministic salt for the seeded element perturbation (advances per
  /// event, survives reset_session so replays within one schedule differ
  /// per event, not per session).
  std::uint64_t silent_corruption_seq() const { return silent_seq_; }

  // --- Session accounting (end-to-end benches) ---------------------------
  std::uint64_t session_launches() const { return session_launches_; }
  double session_modeled_ms() const { return session_modeled_ms_; }
  double session_transfer_ms() const { return session_transfer_ms_; }
  const MemCounters& session_counters() const { return session_counters_; }
  void reset_session() {
    session_launches_ = 0;
    session_modeled_ms_ = 0.0;
    session_transfer_ms_ = 0.0;
    session_counters_ = MemCounters{};
  }

 private:
  DeviceSpec spec_;
  CostModel cost_model_;
  int host_threads_;
  FaultInjector* injector_ = nullptr;
  std::uint64_t pending_silent_ = 0;
  std::uint64_t silent_seq_ = 0;
  std::uint64_t session_launches_ = 0;
  double session_modeled_ms_ = 0.0;
  double session_transfer_ms_ = 0.0;
  MemCounters session_counters_;

  /// Records the retired launch on the device track (advancing the modeled
  /// clock by the billed time) and mirrors its counters into the metrics
  /// registry. One relaxed load each when observability is off.
  void record_launch_event(const LaunchConfig& cfg, const LaunchStats& stats) {
    if (obs::recorder().enabled()) {
      obs::TraceEvent ev;
      ev.name = cfg.label;
      ev.cat = "kernel";
      ev.track = obs::Track::kDevice;
      ev.dur_ms = stats.time.total_ms;
      ev.ts_ms = obs::recorder().advance_ms(stats.time.total_ms);
      ev.has_kernel = true;
      ev.kernel.counters = stats.counters;
      ev.kernel.time = stats.time;
      ev.kernel.occupancy = stats.occupancy.occupancy;
      ev.kernel.grid_size = cfg.grid_size;
      ev.kernel.block_size = cfg.block_size;
      obs::recorder().record(std::move(ev));
    }
    if (obs::metrics().enabled()) {
      auto& m = obs::metrics();
      m.counter("vgpu.launches").add();
      m.counter("vgpu.gld_transactions").add(stats.counters.gld_transactions);
      m.counter("vgpu.gst_transactions").add(stats.counters.gst_transactions);
      m.counter("vgpu.dram_bytes").add(stats.counters.dram_bytes());
      m.counter("vgpu.atomic_cas_ops").add(stats.counters.atomic_global_ops);
      m.gauge("vgpu.kernel_ms").add(stats.time.total_ms);
      m.histogram("vgpu.kernel_ms_per_launch").observe(stats.time.total_ms);
    }
  }

  /// Instant (or penalty-length) fault marker on the device track.
  void record_fault_event(const char* label, const char* kind,
                          double penalty_ms) {
    if (obs::recorder().enabled()) {
      obs::TraceEvent ev;
      ev.name = std::string(kind) + ":" + label;
      ev.cat = "fault";
      ev.track = obs::Track::kDevice;
      ev.dur_ms = penalty_ms;
      ev.ts_ms = penalty_ms > 0.0 ? obs::recorder().advance_ms(penalty_ms)
                                  : obs::recorder().now_ms();
      obs::recorder().record(std::move(ev));
    }
    if (obs::metrics().enabled()) {
      obs::metrics().counter("vgpu.faults_injected").add();
    }
  }

  template <typename Kernel>
  void run_blocks_parallel(const LaunchConfig& cfg, Kernel& kernel,
                           MemCounters& merged) {
    const int workers = std::min(host_threads_, cfg.grid_size);
    std::vector<MemCounters> partials(workers);
    std::vector<std::thread> threads;
    threads.reserve(workers);
    std::atomic<int> next_block{0};
    for (int w = 0; w < workers; ++w) {
      threads.emplace_back([&, w] {
        for (;;) {
          const int b = next_block.fetch_add(1, std::memory_order_relaxed);
          if (b >= cfg.grid_size) break;
          BlockCtx ctx(b, cfg, spec_);
          kernel(ctx);
          partials[w] += ctx.counters();
        }
      });
    }
    for (auto& t : threads) t.join();
    for (const auto& p : partials) merged += p;
  }
};

}  // namespace fusedml::vgpu
