// Analytical timing model: counters -> modeled milliseconds.
//
// The paper's kernels are memory-bound (§3: one flop per loaded element of X,
// against the 34 flops-per-load needed to reach peak on a GTX Titan), so the
// dominant term is DRAM traffic over effective bandwidth. The model adds the
// second-order terms the paper's optimizations target: kernel-launch
// overhead (why fusion beats operator-at-a-time), atomic serialization (why
// hierarchical aggregation and coarsening exist), occupancy-dependent
// latency hiding (why the §3.3 tuner maximizes occupancy), shared-memory
// bank conflicts, and local-memory spill traffic (why §3.2 generates
// unrolled code instead of indexing registers).
//
// Modeled numbers are *not* claimed to match the paper's wall-clock on real
// silicon; they preserve the traffic ratios that decide every figure's shape.
#pragma once

#include "vgpu/device_spec.h"
#include "vgpu/mem_counters.h"
#include "vgpu/occupancy.h"

namespace fusedml::vgpu {

struct CostParams {
  double launch_overhead_us = 5.0;   ///< per kernel launch (driver+runtime)
  double dram_efficiency = 0.80;     ///< achievable fraction of peak bandwidth
  double l2_bandwidth_factor = 3.0;  ///< L2 hit bandwidth vs DRAM
  double tex_bandwidth_factor = 2.0; ///< texture-path bandwidth vs DRAM
  double occupancy_knee = 0.50;      ///< occupancy needed to hide DRAM latency
  double min_bandwidth_fraction = 0.10;  ///< floor at very low occupancy
  /// Atomics are priced with contention-degraded throughput:
  ///   t = ops * (1 + per_address_updates / knee) / throughput.
  /// CC 3.5 has no native double atomicAdd — doubles run CAS loops whose
  /// retries amplify under contention (small knee); native integer
  /// fetch-adds degrade far more gracefully (large knee).
  /// Spread atomics execute in L2 at high rate (and ML matrices' skewed
  /// column popularity keeps the hot targets cached — §4.1's "likelihood of
  /// concurrent accesses ... is very small"); contention collapses the
  /// CAS-loop doubles quickly (small knee).
  double atomic_int_throughput_ops_per_ns = 1.4;
  double atomic_int_contention_knee = 4000.0;
  double atomic_double_throughput_ops_per_ns = 8.0;
  double atomic_double_contention_knee = 75.0;
  /// Shared-memory words per clock for the whole device (32 banks/SM).
  double smem_words_per_clock_per_sm = 32.0;
  /// Shuffle/ALU ops priced like flops.
  double flops_efficiency = 0.85;
};

/// Per-kernel breakdown (useful in benches and ablation output).
struct TimeBreakdown {
  double launch_ms = 0.0;
  double dram_ms = 0.0;
  double l2_ms = 0.0;
  double tex_ms = 0.0;
  double compute_ms = 0.0;
  double smem_ms = 0.0;
  double atomic_ms = 0.0;
  double spill_ms = 0.0;
  double total_ms = 0.0;
};

class CostModel {
 public:
  CostModel(DeviceSpec spec, CostParams params = {})
      : spec_(std::move(spec)), params_(params) {}

  /// Modeled execution time of one kernel launch.
  TimeBreakdown kernel_time(const MemCounters& counters,
                            const OccupancyResult& occ) const;

  /// Host<->device transfer over the PCIe model.
  double transfer_ms(std::uint64_t bytes) const;

  const DeviceSpec& spec() const { return spec_; }
  const CostParams& params() const { return params_; }

 private:
  DeviceSpec spec_;
  CostParams params_;

  double effective_bandwidth_gbs(double occupancy) const;
};

/// Host-CPU analytical model for the BIDMat-CPU / MKL comparison lines.
/// Times a streaming kernel that touches `bytes` of memory and performs
/// `flops` flops on `threads` threads.
class CpuCostModel {
 public:
  explicit CpuCostModel(CpuSpec spec, double bandwidth_efficiency = 0.85,
                        double per_call_overhead_us = 2.0)
      : spec_(std::move(spec)),
        bandwidth_efficiency_(bandwidth_efficiency),
        per_call_overhead_us_(per_call_overhead_us) {}

  /// `bandwidth_efficiency` < 0 uses the model default. Sparse kernels with
  /// index chasing and gathers achieve a far lower fraction of stream
  /// bandwidth than dense streaming ones — callers pass the class-specific
  /// figure.
  double op_time_ms(std::uint64_t bytes, std::uint64_t flops, int threads,
                    double bandwidth_efficiency = -1.0) const;

  const CpuSpec& spec() const { return spec_; }

 private:
  CpuSpec spec_;
  double bandwidth_efficiency_;
  double per_call_overhead_us_;
};

}  // namespace fusedml::vgpu
