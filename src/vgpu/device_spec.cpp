#include "vgpu/device_spec.h"

namespace fusedml::vgpu {

DeviceSpec gtx_titan() { return DeviceSpec{}; }

DeviceSpec small_kepler() {
  DeviceSpec spec;
  spec.name = "Virtual small Kepler";
  spec.num_sms = 4;
  spec.peak_gflops_dp = 300.0;
  spec.mem_bandwidth_gbs = 80.0;
  spec.global_mem_bytes = 1ull << 30;
  spec.l2_bytes = 512ull << 10;
  spec.smem_per_sm_bytes = 16ull << 10;
  spec.regs_per_sm = 32 * 1024;
  spec.max_threads_per_sm = 1024;
  spec.max_blocks_per_sm = 4;
  return spec;
}

CpuSpec paper_host_cpu() { return CpuSpec{}; }

}  // namespace fusedml::vgpu
