// Device description for the virtual GPU.
//
// The defaults replicate the paper's evaluation hardware — an NVIDIA GeForce
// GTX Titan (Kepler GK110, compute capability 3.5) — using the figures quoted
// in §2 and §3.3 of the paper. Every limit the paper's occupancy discussion
// enumerates is a field here so the launch-parameter model (src/tuner) can
// reproduce §3.3 exactly.
#pragma once

#include <string>

#include "common/types.h"

namespace fusedml::vgpu {

struct DeviceSpec {
  std::string name = "Virtual GTX Titan";

  // --- Compute resources -------------------------------------------------
  int num_sms = 14;               ///< streaming multiprocessors
  int cores_per_sm = 192;         ///< CUDA cores per SM (2,688 total)
  double peak_gflops_dp = 1300.0; ///< ~1.3 TFLOPs double precision
  double clock_ghz = 0.837;

  // --- Memory system -----------------------------------------------------
  double mem_bandwidth_gbs = 288.0;     ///< global memory, ECC off
  usize global_mem_bytes = 6ull << 30;  ///< 6 GB
  usize l2_bytes = 1536ull << 10;       ///< 1.5 MB L2 (GK110)
  usize tex_cache_bytes = 48ull << 10;  ///< 48 KB read-only/texture per SM
  usize smem_per_sm_bytes = 48ull << 10;
  int smem_banks = 32;
  usize transaction_bytes = 128;        ///< global memory segment size

  // --- Occupancy limits (paper §3.3 list, CC >= 3.5) ----------------------
  int regs_per_sm = 64 * 1024;     ///< 64K 32-bit registers
  int max_threads_per_block = 1024;
  int max_threads_per_sm = 2048;   ///< 64 warps
  int max_blocks_per_sm = 8;       ///< paper's quoted limit
  int max_regs_per_thread = 255;
  int reg_alloc_unit = 256;        ///< register allocation granularity
  usize smem_alloc_unit = 256;     ///< shared memory allocation granularity
  int warp_alloc_granularity = 4;  ///< warps per block rounded up to this
  int warp_size = 32;

  // --- Host link -----------------------------------------------------------
  double pcie_bandwidth_gbs = 6.0;  ///< effective H2D (32 GB/s PCIe-Gen3 link;
                                    ///< ~6 GB/s effective matches the paper's
                                    ///< measured 939 ms for the ~5.3 GB KDD set)
  double pcie_latency_us = 10.0;

  int max_warps_per_sm() const { return max_threads_per_sm / warp_size; }
};

/// The paper's exact evaluation device.
DeviceSpec gtx_titan();

/// A smaller Kepler part — used in tests to check the models react to
/// resource limits rather than hard-coding Titan behaviour.
DeviceSpec small_kepler();

/// CPU-side model of the paper's host (Intel core-i7 3.4 GHz, 4C/8T) used for
/// the BIDMat-CPU / MKL comparison lines.
struct CpuSpec {
  std::string name = "Core i7-3770 class host";
  int threads = 8;                   ///< 8 hyper-threads, as in the paper
  double mem_bandwidth_gbs = 25.6;   ///< dual-channel DDR3-1600
  double peak_gflops_dp = 108.8;     ///< 4 cores * 8 DP flops/cycle * 3.4 GHz
  double per_thread_bandwidth_gbs() const {
    return mem_bandwidth_gbs;  // bandwidth is shared, not per-thread
  }
};

CpuSpec paper_host_cpu();

}  // namespace fusedml::vgpu
