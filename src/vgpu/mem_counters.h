// Memory-system event counters — the virtual GPU's equivalent of the NVIDIA
// Visual Profiler metrics the paper reports (e.g. Figure 2-bottom's
// "number of load transactions").
//
// Kernels executed on the virtual device increment these as they touch
// memory; the analytical CostModel then converts them to modeled time.
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/types.h"

namespace fusedml::vgpu {

struct MemCounters {
  // Global memory (DRAM) traffic in 128-byte transactions.
  std::uint64_t gld_transactions = 0;  ///< load transactions that hit DRAM
  std::uint64_t gst_transactions = 0;  ///< store transactions
  std::uint64_t gld_bytes = 0;         ///< useful bytes loaded from DRAM
  std::uint64_t gst_bytes = 0;

  // Loads served by caches rather than DRAM.
  std::uint64_t l2_hit_transactions = 0;  ///< temporal-reuse hits (fused 2nd pass)
  std::uint64_t tex_transactions = 0;     ///< read-only/texture path (y vector)

  // Atomics. Compute capability 3.5 has native integer atomics but NO
  // native double-precision atomicAdd — doubles go through a CAS loop that
  // is several times slower and degrades sharply under contention. The two
  // classes are counted separately so the cost model can price them apart.
  std::uint64_t atomic_global_ops = 0;       ///< double (CAS-loop) atomics
  std::uint64_t atomic_shared_ops = 0;
  /// Number of distinct addresses targeted by double atomics; the cost
  /// model derives the expected contention (ops / distinct).
  std::uint64_t atomic_global_targets = 0;
  std::uint64_t atomic_int_ops = 0;          ///< native integer atomics
  std::uint64_t atomic_int_targets = 0;

  // On-chip.
  std::uint64_t smem_accesses = 0;      ///< shared-memory word accesses
  std::uint64_t smem_bank_conflicts = 0;///< extra serialized passes
  std::uint64_t shuffle_ops = 0;        ///< register shuffle (intra-warp reduce)
  std::uint64_t local_spill_bytes = 0;  ///< register-indexing spills to local mem

  // Work.
  std::uint64_t flops = 0;

  MemCounters& operator+=(const MemCounters& o) {
    gld_transactions += o.gld_transactions;
    gst_transactions += o.gst_transactions;
    gld_bytes += o.gld_bytes;
    gst_bytes += o.gst_bytes;
    l2_hit_transactions += o.l2_hit_transactions;
    tex_transactions += o.tex_transactions;
    atomic_global_ops += o.atomic_global_ops;
    atomic_shared_ops += o.atomic_shared_ops;
    // Targets describe the shared output range, not per-block work: blocks
    // hit the SAME addresses, so the kernel-wide count is the max.
    atomic_global_targets = std::max(atomic_global_targets,
                                     o.atomic_global_targets);
    atomic_int_ops += o.atomic_int_ops;
    atomic_int_targets = std::max(atomic_int_targets, o.atomic_int_targets);
    smem_accesses += o.smem_accesses;
    smem_bank_conflicts += o.smem_bank_conflicts;
    shuffle_ops += o.shuffle_ops;
    local_spill_bytes += o.local_spill_bytes;
    flops += o.flops;
    return *this;
  }

  /// Total DRAM transactions (what Fig. 2-bottom plots for loads).
  std::uint64_t total_load_transactions() const {
    return gld_transactions + tex_transactions;
  }

  std::uint64_t dram_bytes() const { return gld_bytes + gst_bytes; }
};

}  // namespace fusedml::vgpu
