// CUDA occupancy calculation, reproducing the NVIDIA occupancy calculator
// the paper cites ([30]) for the launch-parameter model of §3.3.
//
// Given a kernel's per-thread register use, per-block shared memory, and the
// block size, computes how many blocks (and thus warps) can be resident per
// SM, honouring every limit the paper lists: registers, shared memory,
// threads per block / per SM, active-block cap, and the allocation
// granularities (256 registers, 256 B shared memory, 4-warp rounding).
#pragma once

#include "common/types.h"
#include "vgpu/device_spec.h"

namespace fusedml::vgpu {

struct KernelResources {
  int regs_per_thread = 32;
  usize smem_per_block = 0;  ///< bytes of shared memory per block
};

struct OccupancyResult {
  int blocks_per_sm = 0;
  int warps_per_block = 0;
  int active_warps_per_sm = 0;
  int active_threads_per_sm = 0;
  double occupancy = 0.0;  ///< active warps / max warps, in [0,1]

  /// Which limit bound the result (useful in tests and the Fig. 6 bench).
  enum class Limiter { kBlocks, kWarps, kRegisters, kSharedMemory, kInvalid };
  Limiter limiter = Limiter::kInvalid;

  /// Total concurrently resident threads on the whole device.
  int device_threads(const DeviceSpec& spec) const {
    return active_threads_per_sm * spec.num_sms;
  }
};

/// Computes occupancy for a kernel launch of `block_size` threads per block.
/// Returns occupancy 0 with Limiter::kInvalid if the launch is impossible
/// (block too large, registers over the per-thread cap, smem over the SM).
OccupancyResult compute_occupancy(const DeviceSpec& spec, int block_size,
                                  const KernelResources& res);

/// The block size in {32, 64, ..., 1024} maximizing active warps per SM; ties
/// broken toward larger blocks (fewer blocks => cheaper inter-block
/// aggregation, matching §3.3's "increase ... block size to their maximum
/// possible values, while achieving the maximum possible occupancy").
int best_block_size(const DeviceSpec& spec, const KernelResources& res);

}  // namespace fusedml::vgpu
