// Kernel launch configuration — the tunables of §3.3 (Table 3's notation).
#pragma once

#include "common/types.h"
#include "vgpu/occupancy.h"

namespace fusedml::vgpu {

struct LaunchConfig {
  /// Kernel name shown in traces and profiler reports. Launch sites set
  /// this; must point at a string literal (or otherwise outlive the launch).
  const char* label = "kernel";
  int grid_size = 1;    ///< number of thread blocks
  int block_size = 32;  ///< BS: threads per block
  int vector_size = 1;  ///< VS: cooperating threads per row (1..32 or BS)
  int coarsening = 1;   ///< C: rows processed per vector
  int thread_load = 1;  ///< TL: elements per thread per row (dense kernels)
  usize smem_words = 0; ///< dynamic shared memory, in 8-byte words
  KernelResources resources{};  ///< regs/thread + smem bytes for occupancy

  int num_vectors_per_block() const { return block_size / vector_size; }
  int total_threads() const { return grid_size * block_size; }
  int total_vectors() const { return grid_size * num_vectors_per_block(); }

  /// Validity for the virtual device (block size caps etc.) is checked by
  /// the executor at launch; this checks only internal consistency.
  bool internally_consistent() const {
    return grid_size > 0 && block_size > 0 && vector_size > 0 &&
           coarsening > 0 && thread_load > 0 &&
           block_size % vector_size == 0;
  }
};

}  // namespace fusedml::vgpu
