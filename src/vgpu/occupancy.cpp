#include "vgpu/occupancy.h"

#include <algorithm>

#include "common/error.h"

namespace fusedml::vgpu {

namespace {
template <typename T>
T ceil_to(T value, T unit) {
  return (value + unit - 1) / unit * unit;
}
}  // namespace

OccupancyResult compute_occupancy(const DeviceSpec& spec, int block_size,
                                  const KernelResources& res) {
  OccupancyResult out;
  if (block_size <= 0 || block_size > spec.max_threads_per_block ||
      res.regs_per_thread > spec.max_regs_per_thread ||
      res.smem_per_block > spec.smem_per_sm_bytes) {
    return out;  // impossible launch: occupancy 0, kInvalid
  }

  const int warps_per_block =
      (block_size + spec.warp_size - 1) / spec.warp_size;

  // Limit 1: the hard active-block cap.
  int limit_blocks = spec.max_blocks_per_sm;
  auto limiter = OccupancyResult::Limiter::kBlocks;

  // Limit 2: resident warps per SM.
  const int limit_warps = spec.max_warps_per_sm() / warps_per_block;
  if (limit_warps < limit_blocks) {
    limit_blocks = limit_warps;
    limiter = OccupancyResult::Limiter::kWarps;
  }

  // Limit 3: register file. Registers are allocated per warp, rounded to the
  // allocation unit, and the block's warp count is rounded to the warp
  // allocation granularity (4 on Kepler).
  const int regs_per_warp =
      ceil_to(res.regs_per_thread * spec.warp_size, spec.reg_alloc_unit);
  const int alloc_warps =
      ceil_to(warps_per_block, spec.warp_alloc_granularity);
  const int regs_per_block = regs_per_warp * alloc_warps;
  const int limit_regs = regs_per_block > 0 ? spec.regs_per_sm / regs_per_block
                                            : spec.max_blocks_per_sm;
  if (limit_regs < limit_blocks) {
    limit_blocks = limit_regs;
    limiter = OccupancyResult::Limiter::kRegisters;
  }

  // Limit 4: shared memory, rounded to its allocation unit.
  if (res.smem_per_block > 0) {
    const usize smem_alloc = ceil_to(res.smem_per_block, spec.smem_alloc_unit);
    const int limit_smem = static_cast<int>(spec.smem_per_sm_bytes / smem_alloc);
    if (limit_smem < limit_blocks) {
      limit_blocks = limit_smem;
      limiter = OccupancyResult::Limiter::kSharedMemory;
    }
  }

  if (limit_blocks <= 0) return out;  // cannot place even one block

  out.blocks_per_sm = limit_blocks;
  out.warps_per_block = warps_per_block;
  out.active_warps_per_sm =
      std::min(limit_blocks * warps_per_block, spec.max_warps_per_sm());
  out.active_threads_per_sm = out.active_warps_per_sm * spec.warp_size;
  out.occupancy = static_cast<double>(out.active_warps_per_sm) /
                  static_cast<double>(spec.max_warps_per_sm());
  out.limiter = limiter;
  return out;
}

int best_block_size(const DeviceSpec& spec, const KernelResources& res) {
  int best_bs = spec.warp_size;
  int best_warps = -1;
  for (int bs = spec.warp_size; bs <= spec.max_threads_per_block;
       bs += spec.warp_size) {
    const auto occ = compute_occupancy(spec, bs, res);
    // ">= " so ties go to the larger block size (§3.3).
    if (occ.active_warps_per_sm >= best_warps && occ.blocks_per_sm > 0) {
      best_warps = occ.active_warps_per_sm;
      best_bs = bs;
    }
  }
  FUSEDML_CHECK(best_warps > 0, "no feasible block size for kernel resources");
  return best_bs;
}

}  // namespace fusedml::vgpu
