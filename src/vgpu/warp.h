// Warp-level primitives of the Kepler ISA used by the paper's kernels:
// the shuffle-based intra-vector / intra-warp reduction (§3.1: "aggregated
// using the shuffle instruction available on NVIDIA Kepler architectures").
//
// In the virtual GPU a vector's lanes live in a contiguous span of values;
// the reduction helpers fold them in log2(width) shuffle steps and charge
// the shuffle-op counter, which the cost model prices like ALU work.
#pragma once

#include <bit>
#include <span>

#include "common/error.h"
#include "common/types.h"
#include "vgpu/mem_counters.h"

namespace fusedml::vgpu {

/// True when `width` is a power of two not exceeding the warp size — the
/// only widths __shfl_down-style reductions support.
inline bool valid_reduce_width(int width) {
  return width >= 1 && width <= 32 && std::has_single_bit(static_cast<unsigned>(width));
}

/// Butterfly reduction over `lanes` partial values (one per lane of a
/// vector), exactly as a __shfl_down loop would fold them. Returns the sum
/// that lane 0 would hold. Charges one shuffle op per lane per step.
real shuffle_reduce_sum(std::span<const real> lanes, MemCounters& counters);

/// Segmented variant used by CSR-vector: reduces `lanes` in place so that
/// the caller can observe intermediate tree levels if needed.
/// lanes.size() must be a valid reduce width.
void shuffle_reduce_inplace(std::span<real> lanes, MemCounters& counters);

}  // namespace fusedml::vgpu
