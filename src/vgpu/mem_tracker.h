// Accounting facade kernels use to charge memory traffic to the counters.
//
// The virtual GPU executes kernels functionally on host memory; what makes a
// run a *GPU* run is that every access is also charged here through the
// coalescing model. Kernels state which path serves a load:
//   kDram    — a cold global-memory access,
//   kL2      — a temporal-reuse hit (the fused kernels' second pass over a
//              row, guaranteed when the working set fits in L2 — §3),
//   kTexture — the read-only/texture path (the paper binds y to texture
//              memory: §4.1 "the input vector y is always bound to texture
//              memory").
#pragma once

#include <cstdint>
#include <span>

#include "common/types.h"
#include "vgpu/coalescing.h"
#include "vgpu/mem_counters.h"

namespace fusedml::vgpu {

enum class MemPath { kDram, kL2, kTexture };

class MemTracker {
 public:
  explicit MemTracker(MemCounters& counters) : counters_(counters) {}

  /// Warp-contiguous load: `active` lanes read consecutive elements of
  /// `elem_bytes` starting at element index `first_elem`.
  void load_contiguous(std::uint64_t first_elem, int active, usize elem_bytes,
                       MemPath path = MemPath::kDram);

  /// Gather load with per-lane byte addresses (e.g. y[col_idx[i]]).
  void load_gather(std::span<const std::uint64_t> byte_addrs,
                   MemPath path = MemPath::kDram);

  /// Strided warp load (dense column walks): lane i reads at
  /// first_byte + i * stride_bytes.
  void load_strided(std::uint64_t first_byte, int active,
                    std::uint64_t stride_bytes, usize elem_bytes,
                    MemPath path = MemPath::kDram);

  /// Pre-computed warp-level traffic (e.g. the sparse kernels' cross-vector
  /// coalescing helper already counted the distinct segments).
  void load_precomputed(std::uint64_t transactions, std::uint64_t bytes,
                        MemPath path = MemPath::kDram) {
    charge_load(transactions, bytes, path);
  }

  /// Bulk contiguous stream of `count` elements processed by successive
  /// 32-lane warps — closed-form transaction count so dense kernels can
  /// charge a whole row in O(1) instead of per-chunk.
  void load_stream(std::uint64_t first_elem, std::uint64_t count,
                   usize elem_bytes, MemPath path = MemPath::kDram);
  void store_stream(std::uint64_t first_elem, std::uint64_t count,
                    usize elem_bytes);

  /// Warp-contiguous store.
  void store_contiguous(std::uint64_t first_elem, int active, usize elem_bytes);

  /// Scattered store — one transaction per lane (the explicit-transpose
  /// baseline's pain).
  void store_scatter(int lanes, usize elem_bytes);

  /// Global double-precision atomic adds (CAS loops on CC 3.5): `ops`
  /// operations spread over `distinct_targets` addresses (the cost model
  /// derives contention from the ratio).
  void atomic_global(std::uint64_t ops, std::uint64_t distinct_targets);

  /// Native integer atomics (histogram counts, cursors, semaphores).
  void atomic_int(std::uint64_t ops, std::uint64_t distinct_targets);

  void add_flops(std::uint64_t n) { counters_.flops += n; }

  /// Register-indexed access that the compiler would demote to local memory
  /// (§3.2: "if the index value is unknown at compile time, CUDA forces
  /// these accesses to use global memory instead of registers").
  void local_spill(std::uint64_t bytes) { counters_.local_spill_bytes += bytes; }

  MemCounters& counters() { return counters_; }

 private:
  MemCounters& counters_;

  void charge_load(std::uint64_t transactions, std::uint64_t bytes,
                   MemPath path);
};

}  // namespace fusedml::vgpu
