#include "vgpu/cost_model.h"

#include <algorithm>
#include <cmath>

namespace fusedml::vgpu {

double CostModel::effective_bandwidth_gbs(double occupancy) const {
  // DRAM latency is hidden by warp-level parallelism; below the knee the
  // achievable bandwidth degrades roughly linearly (classic roofline-with-
  // concurrency behaviour), with a floor so a one-warp launch still makes
  // progress.
  const double factor =
      std::clamp(occupancy / params_.occupancy_knee,
                 params_.min_bandwidth_fraction, 1.0);
  return spec_.mem_bandwidth_gbs * params_.dram_efficiency * factor;
}

TimeBreakdown CostModel::kernel_time(const MemCounters& c,
                                     const OccupancyResult& occ) const {
  TimeBreakdown t;
  t.launch_ms = params_.launch_overhead_us / 1e3;

  const double bw = effective_bandwidth_gbs(occ.occupancy);  // GB/s == B/ns
  const double seg = static_cast<double>(spec_.transaction_bytes);

  t.dram_ms = static_cast<double>(c.gld_transactions + c.gst_transactions) *
              seg / bw / 1e6;
  t.l2_ms = static_cast<double>(c.l2_hit_transactions) * seg /
            (bw * params_.l2_bandwidth_factor) / 1e6;
  t.tex_ms = static_cast<double>(c.tex_transactions) * seg /
             (bw * params_.tex_bandwidth_factor) / 1e6;

  // Register spills round-trip through the local-memory path (DRAM-backed).
  t.spill_ms = static_cast<double>(c.local_spill_bytes) / bw / 1e6;

  const double effective_flops =
      static_cast<double>(c.flops + c.shuffle_ops);
  t.compute_ms = effective_flops /
                 (spec_.peak_gflops_dp * params_.flops_efficiency) / 1e6;

  const double smem_words_per_ns = params_.smem_words_per_clock_per_sm *
                                   spec_.num_sms * spec_.clock_ghz;
  t.smem_ms = static_cast<double>(c.smem_accesses + c.atomic_shared_ops +
                                  32ull * c.smem_bank_conflicts) /
              smem_words_per_ns / 1e6;

  // Atomics: contention-degraded throughput. Piling updates onto few
  // addresses serializes them — and for CAS-loop doubles each collision
  // also forces retries, so effective throughput falls roughly linearly
  // with the per-address update count (knee sets the slope). Integer
  // fetch-adds are native and degrade much more slowly.
  const auto atomic_term = [](std::uint64_t ops, std::uint64_t targets,
                              double throughput_ops_ns, double knee) {
    if (ops == 0) return 0.0;
    double contention_factor = 1.0;
    if (targets > 0) {
      const double per_addr =
          static_cast<double>(ops) / static_cast<double>(targets);
      contention_factor += per_addr / knee;
    }
    return static_cast<double>(ops) * contention_factor /
           throughput_ops_ns / 1e6;
  };
  t.atomic_ms =
      atomic_term(c.atomic_global_ops, c.atomic_global_targets,
                  params_.atomic_double_throughput_ops_per_ns,
                  params_.atomic_double_contention_knee) +
      atomic_term(c.atomic_int_ops, c.atomic_int_targets,
                  params_.atomic_int_throughput_ops_per_ns,
                  params_.atomic_int_contention_knee);

  // The memory paths and compute overlap; atomics and launch do not.
  const double overlapped =
      std::max({t.dram_ms + t.spill_ms, t.l2_ms, t.tex_ms, t.compute_ms,
                t.smem_ms});
  t.total_ms = t.launch_ms + overlapped + t.atomic_ms;
  return t;
}

double CostModel::transfer_ms(std::uint64_t bytes) const {
  return spec_.pcie_latency_us / 1e3 +
         static_cast<double>(bytes) / spec_.pcie_bandwidth_gbs / 1e6;
}

double CpuCostModel::op_time_ms(std::uint64_t bytes, std::uint64_t flops,
                                int threads,
                                double bandwidth_efficiency) const {
  const double eff_threads =
      std::min<double>(threads, spec_.threads);
  const double efficiency = bandwidth_efficiency > 0 ? bandwidth_efficiency
                                                     : bandwidth_efficiency_;
  const double bw = spec_.mem_bandwidth_gbs * efficiency;
  const double mem_ns = static_cast<double>(bytes) / bw;
  // Memory bandwidth is shared; compute scales with threads (up to 4 real
  // cores doing DP FMA — hyper-threads add little flops, much like MKL).
  const double core_scale = std::min(eff_threads, 4.0) / 4.0;
  const double flop_ns =
      static_cast<double>(flops) / (spec_.peak_gflops_dp * core_scale);
  return per_call_overhead_us_ / 1e3 + std::max(mem_ns, flop_ns) / 1e6;
}

}  // namespace fusedml::vgpu
