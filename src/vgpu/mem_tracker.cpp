#include "vgpu/mem_tracker.h"

namespace fusedml::vgpu {

void MemTracker::charge_load(std::uint64_t transactions, std::uint64_t bytes,
                             MemPath path) {
  switch (path) {
    case MemPath::kDram:
      counters_.gld_transactions += transactions;
      counters_.gld_bytes += bytes;
      break;
    case MemPath::kL2:
      counters_.l2_hit_transactions += transactions;
      break;
    case MemPath::kTexture:
      counters_.tex_transactions += transactions;
      break;
  }
}

void MemTracker::load_contiguous(std::uint64_t first_elem, int active,
                                 usize elem_bytes, MemPath path) {
  if (active <= 0) return;
  const std::uint64_t tx =
      contiguous_transactions(first_elem * elem_bytes, active, elem_bytes);
  charge_load(tx, static_cast<std::uint64_t>(active) * elem_bytes, path);
}

void MemTracker::load_gather(std::span<const std::uint64_t> byte_addrs,
                             MemPath path) {
  if (byte_addrs.empty()) return;
  const std::uint64_t tx = gather_transactions(byte_addrs);
  charge_load(tx, byte_addrs.size() * sizeof(real), path);
}

void MemTracker::load_strided(std::uint64_t first_byte, int active,
                              std::uint64_t stride_bytes, usize elem_bytes,
                              MemPath path) {
  if (active <= 0) return;
  const std::uint64_t tx =
      strided_transactions(first_byte, active, stride_bytes, elem_bytes);
  charge_load(tx, static_cast<std::uint64_t>(active) * elem_bytes, path);
}

namespace {
// Transactions for a contiguous stream accessed by successive 32-lane warps:
// the union of segments plus one extra per internal warp boundary that is
// not 128-byte aligned (that segment is fetched by both warps).
std::uint64_t stream_transactions(std::uint64_t first_byte,
                                  std::uint64_t bytes) {
  if (bytes == 0) return 0;
  const std::uint64_t base =
      segment_of(first_byte + bytes - 1) - segment_of(first_byte) + 1;
  const std::uint64_t warp_bytes = 32 * 8;  // worst case lane width
  const std::uint64_t warps = (bytes + warp_bytes - 1) / warp_bytes;
  const bool boundary_aligned =
      (first_byte % kSegmentBytes == 0) && (warp_bytes % kSegmentBytes == 0);
  return base + (boundary_aligned || warps == 0 ? 0 : warps - 1);
}
}  // namespace

void MemTracker::load_stream(std::uint64_t first_elem, std::uint64_t count,
                             usize elem_bytes, MemPath path) {
  const std::uint64_t bytes = count * elem_bytes;
  charge_load(stream_transactions(first_elem * elem_bytes, bytes), bytes,
              path);
}

void MemTracker::store_stream(std::uint64_t first_elem, std::uint64_t count,
                              usize elem_bytes) {
  const std::uint64_t bytes = count * elem_bytes;
  counters_.gst_transactions +=
      stream_transactions(first_elem * elem_bytes, bytes);
  counters_.gst_bytes += bytes;
}

void MemTracker::store_contiguous(std::uint64_t first_elem, int active,
                                  usize elem_bytes) {
  if (active <= 0) return;
  counters_.gst_transactions +=
      contiguous_transactions(first_elem * elem_bytes, active, elem_bytes);
  counters_.gst_bytes += static_cast<std::uint64_t>(active) * elem_bytes;
}

void MemTracker::store_scatter(int lanes, usize elem_bytes) {
  if (lanes <= 0) return;
  // A scattered partial-line store is a read-modify-write of its 128-byte
  // segment at DRAM: the line is fetched, merged, and written back — two
  // transactions per element, the cost that makes explicit transposition
  // so expensive (§3.1).
  counters_.gst_transactions += 2ull * static_cast<std::uint64_t>(lanes);
  counters_.gst_bytes += static_cast<std::uint64_t>(lanes) * elem_bytes;
}

void MemTracker::atomic_global(std::uint64_t ops,
                               std::uint64_t distinct_targets) {
  counters_.atomic_global_ops += ops;
  counters_.atomic_global_targets =
      std::max(counters_.atomic_global_targets, distinct_targets);
}

void MemTracker::atomic_int(std::uint64_t ops,
                            std::uint64_t distinct_targets) {
  counters_.atomic_int_ops += ops;
  counters_.atomic_int_targets =
      std::max(counters_.atomic_int_targets, distinct_targets);
}

}  // namespace fusedml::vgpu
