#include "vgpu/warp.h"

namespace fusedml::vgpu {

real shuffle_reduce_sum(std::span<const real> lanes, MemCounters& counters) {
  FUSEDML_CHECK(valid_reduce_width(static_cast<int>(lanes.size())),
                "reduce width must be a power of two <= 32");
  // Copy so we can fold without mutating caller state.
  real buf[32];
  const int n = static_cast<int>(lanes.size());
  for (int i = 0; i < n; ++i) buf[i] = lanes[i];
  for (int offset = n / 2; offset > 0; offset /= 2) {
    for (int lane = 0; lane < offset; ++lane) {
      buf[lane] += buf[lane + offset];  // __shfl_down(sum, offset)
    }
    counters.shuffle_ops += static_cast<std::uint64_t>(offset);
  }
  return buf[0];
}

void shuffle_reduce_inplace(std::span<real> lanes, MemCounters& counters) {
  FUSEDML_CHECK(valid_reduce_width(static_cast<int>(lanes.size())),
                "reduce width must be a power of two <= 32");
  const int n = static_cast<int>(lanes.size());
  for (int offset = n / 2; offset > 0; offset /= 2) {
    for (int lane = 0; lane < offset; ++lane) {
      lanes[lane] += lanes[lane + offset];
    }
    counters.shuffle_ops += static_cast<std::uint64_t>(offset);
  }
}

}  // namespace fusedml::vgpu
