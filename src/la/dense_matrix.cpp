#include "la/dense_matrix.h"

#include <algorithm>

namespace fusedml::la {

DenseMatrix DenseMatrix::padded_cols(index_t multiple) const {
  FUSEDML_CHECK(multiple > 0, "pad multiple must be positive");
  const index_t rem = cols_ % multiple;
  if (rem == 0) return *this;
  const index_t new_cols = cols_ + (multiple - rem);
  DenseMatrix out(rows_, new_cols);
  for (index_t r = 0; r < rows_; ++r) {
    const auto src = row(r);
    std::copy(src.begin(), src.end(), out.row(r).begin());
  }
  return out;
}

std::vector<real> padded_vector(std::span<const real> v, index_t multiple) {
  FUSEDML_CHECK(multiple > 0, "pad multiple must be positive");
  const auto n = static_cast<index_t>(v.size());
  const index_t rem = n % multiple;
  std::vector<real> out(v.begin(), v.end());
  if (rem != 0) out.resize(static_cast<usize>(n + multiple - rem), real{0});
  return out;
}

}  // namespace fusedml::la
