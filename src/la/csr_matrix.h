// Compressed Sparse Row storage — the format the paper's sparse kernels
// (and cuSPARSE) operate on: (values, col_idx, row_off).
#pragma once

#include <span>
#include <vector>

#include "common/types.h"

namespace fusedml::la {

class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Takes ownership of the three CSR arrays. Validates structure:
  /// row_off has rows+1 monotone entries, col indices in range and
  /// strictly increasing within each row.
  CsrMatrix(index_t rows, index_t cols, std::vector<offset_t> row_off,
            std::vector<index_t> col_idx, std::vector<real> values);

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  offset_t nnz() const { return static_cast<offset_t>(values_.size()); }

  std::span<const offset_t> row_off() const { return row_off_; }
  std::span<const index_t> col_idx() const { return col_idx_; }
  std::span<const real> values() const { return values_; }
  std::span<real> values_mut() { return values_; }

  /// Non-zeros of row r: [row_off[r], row_off[r+1]).
  offset_t row_begin(index_t r) const { return row_off_[static_cast<usize>(r)]; }
  offset_t row_end(index_t r) const { return row_off_[static_cast<usize>(r) + 1]; }
  index_t row_nnz(index_t r) const {
    return static_cast<index_t>(row_end(r) - row_begin(r));
  }

  /// Mean non-zeros per row (mu in Eq. 4). 0 for an empty matrix.
  double mean_nnz_per_row() const {
    return rows_ == 0 ? 0.0
                      : static_cast<double>(nnz()) / static_cast<double>(rows_);
  }

  index_t max_nnz_per_row() const;

  /// Device footprint: values (8B) + col_idx (4B) + row_off (8B each).
  usize bytes() const {
    return values_.size() * sizeof(real) + col_idx_.size() * sizeof(index_t) +
           row_off_.size() * sizeof(offset_t);
  }

  bool operator==(const CsrMatrix&) const = default;

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<offset_t> row_off_;
  std::vector<index_t> col_idx_;
  std::vector<real> values_;
};

}  // namespace fusedml::la
