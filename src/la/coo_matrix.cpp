#include "la/coo_matrix.h"

#include <algorithm>

#include "common/error.h"

namespace fusedml::la {

void CooMatrix::add(index_t row, index_t col, real value) {
  FUSEDML_CHECK(row >= 0 && row < rows_ && col >= 0 && col < cols_,
                "triplet out of range");
  triplets_.push_back({row, col, value});
}

void CooMatrix::normalize() {
  std::sort(triplets_.begin(), triplets_.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  usize out = 0;
  for (usize i = 0; i < triplets_.size(); ++i) {
    if (out > 0 && triplets_[out - 1].row == triplets_[i].row &&
        triplets_[out - 1].col == triplets_[i].col) {
      triplets_[out - 1].value += triplets_[i].value;
    } else {
      triplets_[out++] = triplets_[i];
    }
  }
  triplets_.resize(out);
}

}  // namespace fusedml::la
