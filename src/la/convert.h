// Format conversions, including the explicit transpose (csr2csc) that the
// paper's cuSPARSE baseline relies on.
#pragma once

#include "la/coo_matrix.h"
#include "la/csc_matrix.h"
#include "la/csr_matrix.h"
#include "la/dense_matrix.h"

namespace fusedml::la {

/// Builds CSR from (normalized or not) COO triplets.
CsrMatrix coo_to_csr(const CooMatrix& coo);

/// Explicit transpose, the host-side semantics of cuSPARSE's csr2csc:
/// histogram over columns, exclusive scan, scatter.
CscMatrix csr_to_csc(const CsrMatrix& csr);

/// X in CSC reinterpreted as X^T in CSR (pure relabeling; O(1) data moves
/// beyond the array copies).
CsrMatrix csc_as_transposed_csr(const CscMatrix& csc);

/// Transpose via csr2csc relabeling: returns X^T as a CsrMatrix.
CsrMatrix transpose(const CsrMatrix& csr);

/// Row-subset extraction: the rows listed in `rows` (strictly increasing),
/// in order. Used by the SVM primal solver to restrict the pattern to the
/// current support vectors.
CsrMatrix select_rows(const CsrMatrix& csr, std::span<const index_t> rows);

DenseMatrix csr_to_dense(const CsrMatrix& csr);
CsrMatrix dense_to_csr(const DenseMatrix& dense, real zero_tolerance = 0.0);
DenseMatrix transpose(const DenseMatrix& dense);

}  // namespace fusedml::la
