// Host-side (single-thread) vector and matrix-vector operations.
//
// These are (a) the BLAS-1 set the LR-CG script of Listing 1 needs on the
// CPU, and (b) the bit-exact correctness oracles every device kernel is
// tested against (reference::*).
#pragma once

#include <span>
#include <vector>

#include "common/types.h"
#include "la/csr_matrix.h"
#include "la/dense_matrix.h"

namespace fusedml::la {

// --- BLAS-1 --------------------------------------------------------------

/// y += alpha * x
void axpy(real alpha, std::span<const real> x, std::span<real> y);
/// x *= alpha
void scal(real alpha, std::span<real> x);
real dot(std::span<const real> x, std::span<const real> y);
real nrm2(std::span<const real> x);
/// out[i] = x[i] * y[i]
void ewise_mul(std::span<const real> x, std::span<const real> y,
               std::span<real> out);
/// out = x (copy)
void copy(std::span<const real> x, std::span<real> out);
/// x = value
void fill(std::span<real> x, real value);

// --- Reference matrix-vector products (oracles) --------------------------

namespace reference {

/// out = X * y (sparse)
std::vector<real> spmv(const CsrMatrix& X, std::span<const real> y);
/// out = X^T * y (sparse)
std::vector<real> spmv_transposed(const CsrMatrix& X, std::span<const real> y);
/// out = X * y (dense)
std::vector<real> gemv(const DenseMatrix& X, std::span<const real> y);
/// out = X^T * y (dense)
std::vector<real> gemv_transposed(const DenseMatrix& X,
                                  std::span<const real> y);

/// The full generic pattern of Equation 1:
///   w = alpha * X^T * (v ⊙ (X * y)) + beta * z
/// `v` may be empty (treated as all-ones); `z` may be empty (treated as 0).
std::vector<real> pattern(real alpha, const CsrMatrix& X,
                          std::span<const real> v, std::span<const real> y,
                          real beta, std::span<const real> z);
std::vector<real> pattern(real alpha, const DenseMatrix& X,
                          std::span<const real> v, std::span<const real> y,
                          real beta, std::span<const real> z);

}  // namespace reference

/// Max |a-b| over two equal-length vectors; used in tests/benches to verify
/// device results against references.
real max_abs_diff(std::span<const real> a, std::span<const real> b);

}  // namespace fusedml::la
