// Synthetic dataset generators.
//
// The paper evaluates on (a) randomly generated sparse matrices with 500k
// rows and sparsity 0.01 (§4.1), (b) the ultra-sparse KDD 2010 set
// (15,009,374 x 29,890,095; 423,865,484 nnz; ~28 nnz/row), and (c) the dense
// HIGGS set (11,000,000 x 28). KDD and HIGGS are not shipped here, so the
// *_like generators synthesize matrices with the properties the paper's
// arguments rest on (see DESIGN.md §1); both take a scale divisor so benches
// run at laptop scale by default.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "la/csr_matrix.h"
#include "la/dense_matrix.h"

namespace fusedml::la {

/// Random sparse CSR with ~`sparsity` fraction of non-zeros, uniformly
/// placed (per-row count is Poisson(n * sparsity), columns sampled without
/// replacement). Values uniform in [-1, 1).
CsrMatrix uniform_sparse(index_t rows, index_t cols, double sparsity,
                         std::uint64_t seed);

/// KDD2010-like ultra-sparse matrix: ~nnz_per_row non-zeros per row (the
/// real set averages ~28), column popularity following a power law
/// (skew > 0; larger = more skewed), n >> shared-memory capacity.
CsrMatrix kdd_like(index_t rows, index_t cols, double nnz_per_row,
                   double skew, std::uint64_t seed);

/// HIGGS-like dense matrix: tall, few columns (28 in the real set),
/// standard-normal features.
DenseMatrix higgs_like(index_t rows, index_t cols, std::uint64_t seed);

/// Dense uniform random matrix in [-1, 1).
DenseMatrix dense_random(index_t rows, index_t cols, std::uint64_t seed);

/// Banded sparse matrix (each row has up to `band` entries around the
/// diagonal, clipped to the matrix) — a structured case for tests.
CsrMatrix banded(index_t rows, index_t cols, index_t band);

/// Random vector, uniform in [-1, 1).
std::vector<real> random_vector(usize n, std::uint64_t seed);

/// Labels for a linear-regression task: y = X*w_true + noise. Returns y;
/// w_true is uniform [-1,1) generated from the seed (retrievable via
/// regression_true_weights with the same seed).
std::vector<real> regression_labels(const CsrMatrix& X, std::uint64_t seed,
                                    double noise_stddev);
std::vector<real> regression_labels(const DenseMatrix& X, std::uint64_t seed,
                                    double noise_stddev);
std::vector<real> regression_true_weights(index_t cols, std::uint64_t seed);

/// ±1 labels for classification: sign(X*w_true + noise).
std::vector<real> classification_labels(const CsrMatrix& X,
                                        std::uint64_t seed,
                                        double noise_stddev);

}  // namespace fusedml::la
