#include "la/io.h"

#include <cmath>
#include <fstream>
#include <sstream>
#include <string>

#include "common/error.h"
#include "la/coo_matrix.h"
#include "la/convert.h"

namespace fusedml::la {

namespace {
// Skips %-comment lines; returns the first data line.
std::string next_data_line(std::istream& in) {
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') return line;
  }
  throw DataError("matrix market: unexpected end of file");
}

// True if any non-comment, non-blank line remains — i.e. the file holds
// more entries than the header declared.
bool has_more_data(std::istream& in) {
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%' &&
        line.find_first_not_of(" \t\r\n") != std::string::npos) {
      return true;
    }
  }
  return false;
}
}  // namespace

CsrMatrix read_matrix_market(std::istream& in) {
  std::string header;
  FUSEDML_CHECK(static_cast<bool>(std::getline(in, header)),
                "matrix market: empty stream");
  FUSEDML_CHECK(header.rfind("%%MatrixMarket", 0) == 0,
                "matrix market: missing banner");
  FUSEDML_CHECK(header.find("coordinate") != std::string::npos,
                "matrix market: expected coordinate format");
  const bool symmetric = header.find("symmetric") != std::string::npos;

  std::istringstream dims(next_data_line(in));
  long long rows = 0, cols = 0, nnz = 0;
  dims >> rows >> cols >> nnz;
  FUSEDML_CHECK(rows > 0 && cols > 0 && nnz >= 0,
                "matrix market: bad dimensions line");

  CooMatrix coo(static_cast<index_t>(rows), static_cast<index_t>(cols));
  coo.reserve(static_cast<usize>(nnz) * (symmetric ? 2 : 1));
  for (long long i = 0; i < nnz; ++i) {
    std::istringstream entry(next_data_line(in));
    long long r = 0, c = 0;
    double v = 0;
    entry >> r >> c >> v;
    if (entry.fail()) {
      throw DataError("matrix market: malformed entry line (entry " +
                      std::to_string(i + 1) + " of " + std::to_string(nnz) +
                      ")");
    }
    if (r < 1 || c < 1) {
      throw DataError("matrix market: 1-based indices expected");
    }
    // An index past the declared shape would otherwise write out-of-bounds
    // CSR entries downstream.
    if (r > rows || c > cols) {
      throw DataError("matrix market: entry (" + std::to_string(r) + ", " +
                      std::to_string(c) + ") outside declared " +
                      std::to_string(rows) + " x " + std::to_string(cols));
    }
    if (!std::isfinite(v)) {
      throw DataError("matrix market: non-finite value at entry (" +
                      std::to_string(r) + ", " + std::to_string(c) + ")");
    }
    coo.add(static_cast<index_t>(r - 1), static_cast<index_t>(c - 1), v);
    if (symmetric && r != c) {
      coo.add(static_cast<index_t>(c - 1), static_cast<index_t>(r - 1), v);
    }
  }
  if (has_more_data(in)) {
    throw DataError("matrix market: more entries than the declared nnz of " +
                    std::to_string(nnz));
  }
  return coo_to_csr(coo);
}

CsrMatrix read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  FUSEDML_CHECK(in.good(), "cannot open: " + path);
  return read_matrix_market(in);
}

void write_matrix_market(std::ostream& out, const CsrMatrix& m) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << m.rows() << " " << m.cols() << " " << m.nnz() << "\n";
  for (index_t r = 0; r < m.rows(); ++r) {
    for (offset_t i = m.row_begin(r); i < m.row_end(r); ++i) {
      out << (r + 1) << " " << (m.col_idx()[static_cast<usize>(i)] + 1) << " "
          << m.values()[static_cast<usize>(i)] << "\n";
    }
  }
}

void write_matrix_market_file(const std::string& path, const CsrMatrix& m) {
  std::ofstream out(path);
  FUSEDML_CHECK(out.good(), "cannot open for writing: " + path);
  write_matrix_market(out, m);
}

DenseMatrix read_matrix_market_dense(std::istream& in) {
  std::string header;
  FUSEDML_CHECK(static_cast<bool>(std::getline(in, header)),
                "matrix market: empty stream");
  FUSEDML_CHECK(header.rfind("%%MatrixMarket", 0) == 0,
                "matrix market: missing banner");
  FUSEDML_CHECK(header.find("array") != std::string::npos,
                "matrix market: expected array format");
  std::istringstream dims(next_data_line(in));
  long long rows = 0, cols = 0;
  dims >> rows >> cols;
  FUSEDML_CHECK(rows > 0 && cols > 0, "matrix market: bad dimensions line");
  DenseMatrix out(static_cast<index_t>(rows), static_cast<index_t>(cols));
  // Array format is column-major.
  for (long long c = 0; c < cols; ++c) {
    for (long long r = 0; r < rows; ++r) {
      std::istringstream entry(next_data_line(in));
      double v = 0;
      entry >> v;
      out.at(static_cast<index_t>(r), static_cast<index_t>(c)) = v;
    }
  }
  return out;
}

void write_matrix_market_dense(std::ostream& out, const DenseMatrix& m) {
  out << "%%MatrixMarket matrix array real general\n";
  out << m.rows() << " " << m.cols() << "\n";
  for (index_t c = 0; c < m.cols(); ++c) {
    for (index_t r = 0; r < m.rows(); ++r) {
      out << m.at(r, c) << "\n";
    }
  }
}

}  // namespace fusedml::la
