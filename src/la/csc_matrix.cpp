#include "la/csc_matrix.h"

#include "common/error.h"

namespace fusedml::la {

CscMatrix::CscMatrix(index_t rows, index_t cols,
                     std::vector<offset_t> col_off,
                     std::vector<index_t> row_idx, std::vector<real> values)
    : rows_(rows),
      cols_(cols),
      col_off_(std::move(col_off)),
      row_idx_(std::move(row_idx)),
      values_(std::move(values)) {
  FUSEDML_CHECK(rows_ >= 0 && cols_ >= 0, "negative matrix dimensions");
  FUSEDML_CHECK(col_off_.size() == static_cast<usize>(cols_) + 1,
                "col_off must have cols+1 entries");
  FUSEDML_CHECK(row_idx_.size() == values_.size(),
                "row_idx and values must have equal length");
  FUSEDML_CHECK(col_off_.front() == 0, "col_off[0] must be 0");
  FUSEDML_CHECK(col_off_.back() == static_cast<offset_t>(values_.size()),
                "col_off[cols] must equal nnz");
  for (usize c = 0; c < static_cast<usize>(cols_); ++c) {
    FUSEDML_CHECK(col_off_[c] <= col_off_[c + 1], "col_off must be monotone");
    for (offset_t i = col_off_[c]; i < col_off_[c + 1]; ++i) {
      const index_t r = row_idx_[static_cast<usize>(i)];
      FUSEDML_CHECK(r >= 0 && r < rows_, "row index out of range");
      if (i > col_off_[c]) {
        FUSEDML_CHECK(row_idx_[static_cast<usize>(i - 1)] < r,
                      "row indices must be strictly increasing per column");
      }
    }
  }
}

}  // namespace fusedml::la
