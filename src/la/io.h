// Matrix Market I/O so users can feed real datasets (e.g. the actual
// KDD 2010 / HIGGS files) into the benches instead of the synthetic stand-ins.
#pragma once

#include <iosfwd>
#include <string>

#include "la/csr_matrix.h"
#include "la/dense_matrix.h"

namespace fusedml::la {

/// Reads a MatrixMarket "coordinate real general" file into CSR.
CsrMatrix read_matrix_market(std::istream& in);
CsrMatrix read_matrix_market_file(const std::string& path);

/// Writes CSR as MatrixMarket coordinate format.
void write_matrix_market(std::ostream& out, const CsrMatrix& m);
void write_matrix_market_file(const std::string& path, const CsrMatrix& m);

/// Dense array-format variants.
DenseMatrix read_matrix_market_dense(std::istream& in);
void write_matrix_market_dense(std::ostream& out, const DenseMatrix& m);

}  // namespace fusedml::la
