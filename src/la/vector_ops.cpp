#include "la/vector_ops.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace fusedml::la {

void axpy(real alpha, std::span<const real> x, std::span<real> y) {
  FUSEDML_CHECK(x.size() == y.size(), "axpy size mismatch");
  for (usize i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scal(real alpha, std::span<real> x) {
  for (real& v : x) v *= alpha;
}

real dot(std::span<const real> x, std::span<const real> y) {
  FUSEDML_CHECK(x.size() == y.size(), "dot size mismatch");
  real s = 0;
  for (usize i = 0; i < x.size(); ++i) s += x[i] * y[i];
  return s;
}

real nrm2(std::span<const real> x) { return std::sqrt(dot(x, x)); }

void ewise_mul(std::span<const real> x, std::span<const real> y,
               std::span<real> out) {
  FUSEDML_CHECK(x.size() == y.size() && x.size() == out.size(),
                "ewise_mul size mismatch");
  for (usize i = 0; i < x.size(); ++i) out[i] = x[i] * y[i];
}

void copy(std::span<const real> x, std::span<real> out) {
  FUSEDML_CHECK(x.size() == out.size(), "copy size mismatch");
  std::copy(x.begin(), x.end(), out.begin());
}

void fill(std::span<real> x, real value) {
  std::fill(x.begin(), x.end(), value);
}

namespace reference {

std::vector<real> spmv(const CsrMatrix& X, std::span<const real> y) {
  FUSEDML_CHECK(y.size() == static_cast<usize>(X.cols()), "spmv dim mismatch");
  std::vector<real> out(static_cast<usize>(X.rows()), real{0});
  for (index_t r = 0; r < X.rows(); ++r) {
    real s = 0;
    for (offset_t i = X.row_begin(r); i < X.row_end(r); ++i) {
      s += X.values()[static_cast<usize>(i)] *
           y[static_cast<usize>(X.col_idx()[static_cast<usize>(i)])];
    }
    out[static_cast<usize>(r)] = s;
  }
  return out;
}

std::vector<real> spmv_transposed(const CsrMatrix& X,
                                  std::span<const real> y) {
  FUSEDML_CHECK(y.size() == static_cast<usize>(X.rows()),
                "spmv_transposed dim mismatch");
  std::vector<real> out(static_cast<usize>(X.cols()), real{0});
  for (index_t r = 0; r < X.rows(); ++r) {
    const real yr = y[static_cast<usize>(r)];
    if (yr == real{0}) continue;
    for (offset_t i = X.row_begin(r); i < X.row_end(r); ++i) {
      out[static_cast<usize>(X.col_idx()[static_cast<usize>(i)])] +=
          X.values()[static_cast<usize>(i)] * yr;
    }
  }
  return out;
}

std::vector<real> gemv(const DenseMatrix& X, std::span<const real> y) {
  FUSEDML_CHECK(y.size() == static_cast<usize>(X.cols()), "gemv dim mismatch");
  std::vector<real> out(static_cast<usize>(X.rows()), real{0});
  for (index_t r = 0; r < X.rows(); ++r) {
    const auto row = X.row(r);
    real s = 0;
    for (usize c = 0; c < row.size(); ++c) s += row[c] * y[c];
    out[static_cast<usize>(r)] = s;
  }
  return out;
}

std::vector<real> gemv_transposed(const DenseMatrix& X,
                                  std::span<const real> y) {
  FUSEDML_CHECK(y.size() == static_cast<usize>(X.rows()),
                "gemv_transposed dim mismatch");
  std::vector<real> out(static_cast<usize>(X.cols()), real{0});
  for (index_t r = 0; r < X.rows(); ++r) {
    const real yr = y[static_cast<usize>(r)];
    if (yr == real{0}) continue;
    const auto row = X.row(r);
    for (usize c = 0; c < row.size(); ++c) out[c] += row[c] * yr;
  }
  return out;
}

namespace {
// Shared pattern skeleton: computes w = alpha * X^T * (v ⊙ (X*y)) + beta*z
// given row-access callbacks; keeps the sparse/dense variants in lockstep.
template <typename Mv, typename MvT>
std::vector<real> pattern_impl(real alpha, index_t rows, index_t cols,
                               std::span<const real> v,
                               std::span<const real> y, real beta,
                               std::span<const real> z, Mv&& mv, MvT&& mvt) {
  FUSEDML_CHECK(v.empty() || v.size() == static_cast<usize>(rows),
                "v must have m entries (or be empty for all-ones)");
  FUSEDML_CHECK(z.empty() || z.size() == static_cast<usize>(cols),
                "z must have n entries (or be empty for zero)");
  std::vector<real> p = mv(y);  // p = X * y
  if (!v.empty()) {
    for (usize r = 0; r < p.size(); ++r) p[r] *= v[r];
  }
  std::vector<real> w = mvt(p);  // w = X^T * p
  for (real& x : w) x *= alpha;
  if (!z.empty() && beta != real{0}) {
    for (usize c = 0; c < w.size(); ++c) w[c] += beta * z[c];
  }
  return w;
}
}  // namespace

std::vector<real> pattern(real alpha, const CsrMatrix& X,
                          std::span<const real> v, std::span<const real> y,
                          real beta, std::span<const real> z) {
  return pattern_impl(
      alpha, X.rows(), X.cols(), v, y, beta, z,
      [&](std::span<const real> in) { return spmv(X, in); },
      [&](std::span<const real> in) { return spmv_transposed(X, in); });
}

std::vector<real> pattern(real alpha, const DenseMatrix& X,
                          std::span<const real> v, std::span<const real> y,
                          real beta, std::span<const real> z) {
  return pattern_impl(
      alpha, X.rows(), X.cols(), v, y, beta, z,
      [&](std::span<const real> in) { return gemv(X, in); },
      [&](std::span<const real> in) { return gemv_transposed(X, in); });
}

}  // namespace reference

real max_abs_diff(std::span<const real> a, std::span<const real> b) {
  FUSEDML_CHECK(a.size() == b.size(), "max_abs_diff size mismatch");
  real best = 0;
  for (usize i = 0; i < a.size(); ++i) {
    best = std::max(best, std::abs(a[i] - b[i]));
  }
  return best;
}

}  // namespace fusedml::la
