#include "la/generate.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "la/vector_ops.h"

namespace fusedml::la {

CsrMatrix uniform_sparse(index_t rows, index_t cols, double sparsity,
                         std::uint64_t seed) {
  FUSEDML_CHECK(sparsity >= 0.0 && sparsity <= 1.0,
                "sparsity must be in [0,1]");
  Rng rng(seed);
  std::vector<offset_t> row_off(static_cast<usize>(rows) + 1, 0);
  std::vector<index_t> col_idx;
  std::vector<real> values;
  const double lambda = sparsity * static_cast<double>(cols);
  col_idx.reserve(static_cast<usize>(lambda * rows * 1.1));
  values.reserve(col_idx.capacity());
  for (index_t r = 0; r < rows; ++r) {
    const auto k = static_cast<index_t>(
        std::min<std::uint64_t>(rng.poisson(lambda), cols));
    const auto cols_of_row = rng.sample_without_replacement(cols, k);
    for (index_t c : cols_of_row) {
      col_idx.push_back(c);
      values.push_back(rng.uniform(-1.0, 1.0));
    }
    row_off[static_cast<usize>(r) + 1] =
        static_cast<offset_t>(col_idx.size());
  }
  return CsrMatrix(rows, cols, std::move(row_off), std::move(col_idx),
                   std::move(values));
}

CsrMatrix kdd_like(index_t rows, index_t cols, double nnz_per_row,
                   double skew, std::uint64_t seed) {
  FUSEDML_CHECK(nnz_per_row >= 0.0, "nnz_per_row must be non-negative");
  FUSEDML_CHECK(skew >= 0.0, "skew must be non-negative");
  Rng rng(seed);
  std::vector<offset_t> row_off(static_cast<usize>(rows) + 1, 0);
  std::vector<index_t> col_idx;
  std::vector<real> values;
  col_idx.reserve(static_cast<usize>(nnz_per_row * rows * 1.1));
  values.reserve(col_idx.capacity());
  std::vector<index_t> row_cols;
  for (index_t r = 0; r < rows; ++r) {
    const auto k = static_cast<index_t>(
        std::min<std::uint64_t>(rng.poisson(nnz_per_row), cols));
    row_cols.clear();
    for (index_t j = 0; j < k; ++j) {
      // Inverse-power-law column draw: u^(1+skew) concentrates mass near 0
      // the way feature popularity concentrates in the real KDD features.
      const double u = rng.uniform();
      const auto c = static_cast<index_t>(
          std::min<double>(static_cast<double>(cols) - 1.0,
                           std::pow(u, 1.0 + skew) * static_cast<double>(cols)));
      row_cols.push_back(c);
    }
    std::sort(row_cols.begin(), row_cols.end());
    row_cols.erase(std::unique(row_cols.begin(), row_cols.end()),
                   row_cols.end());
    for (index_t c : row_cols) {
      col_idx.push_back(c);
      values.push_back(rng.uniform(-1.0, 1.0));
    }
    row_off[static_cast<usize>(r) + 1] =
        static_cast<offset_t>(col_idx.size());
  }
  return CsrMatrix(rows, cols, std::move(row_off), std::move(col_idx),
                   std::move(values));
}

DenseMatrix higgs_like(index_t rows, index_t cols, std::uint64_t seed) {
  Rng rng(seed);
  DenseMatrix out(rows, cols);
  for (real& v : out.data()) v = rng.normal();
  return out;
}

DenseMatrix dense_random(index_t rows, index_t cols, std::uint64_t seed) {
  Rng rng(seed);
  DenseMatrix out(rows, cols);
  for (real& v : out.data()) v = rng.uniform(-1.0, 1.0);
  return out;
}

CsrMatrix banded(index_t rows, index_t cols, index_t band) {
  FUSEDML_CHECK(band >= 1, "band must be >= 1");
  std::vector<offset_t> row_off(static_cast<usize>(rows) + 1, 0);
  std::vector<index_t> col_idx;
  std::vector<real> values;
  for (index_t r = 0; r < rows; ++r) {
    const index_t lo = std::max<index_t>(0, r - band / 2);
    const index_t hi = std::min<index_t>(cols, lo + band);
    for (index_t c = lo; c < hi; ++c) {
      col_idx.push_back(c);
      // Deterministic, diagonally dominant values: handy for CG tests.
      values.push_back(c == r ? real{4} : real{1} / real(1 + std::abs(c - r)));
    }
    row_off[static_cast<usize>(r) + 1] =
        static_cast<offset_t>(col_idx.size());
  }
  return CsrMatrix(rows, cols, std::move(row_off), std::move(col_idx),
                   std::move(values));
}

std::vector<real> random_vector(usize n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<real> out(n);
  for (real& v : out) v = rng.uniform(-1.0, 1.0);
  return out;
}

std::vector<real> regression_true_weights(index_t cols, std::uint64_t seed) {
  return random_vector(static_cast<usize>(cols), seed ^ 0xfeedfaceULL);
}

std::vector<real> regression_labels(const CsrMatrix& X, std::uint64_t seed,
                                    double noise_stddev) {
  const auto w = regression_true_weights(X.cols(), seed);
  auto y = reference::spmv(X, w);
  Rng rng(seed ^ 0xabcdef12ULL);
  for (real& v : y) v += rng.normal(0.0, noise_stddev);
  return y;
}

std::vector<real> regression_labels(const DenseMatrix& X, std::uint64_t seed,
                                    double noise_stddev) {
  const auto w = regression_true_weights(X.cols(), seed);
  auto y = reference::gemv(X, w);
  Rng rng(seed ^ 0xabcdef12ULL);
  for (real& v : y) v += rng.normal(0.0, noise_stddev);
  return y;
}

std::vector<real> classification_labels(const CsrMatrix& X,
                                        std::uint64_t seed,
                                        double noise_stddev) {
  auto y = regression_labels(X, seed, noise_stddev);
  for (real& v : y) v = v >= 0 ? real{1} : real{-1};
  return y;
}

}  // namespace fusedml::la
