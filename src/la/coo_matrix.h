// Coordinate (triplet) format — the construction front-end for CSR/CSC.
#pragma once

#include <vector>

#include "common/types.h"

namespace fusedml::la {

struct Triplet {
  index_t row;
  index_t col;
  real value;

  bool operator==(const Triplet&) const = default;
};

class CooMatrix {
 public:
  CooMatrix() = default;
  CooMatrix(index_t rows, index_t cols) : rows_(rows), cols_(cols) {}

  void add(index_t row, index_t col, real value);
  void reserve(usize n) { triplets_.reserve(n); }

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  offset_t nnz() const { return static_cast<offset_t>(triplets_.size()); }
  const std::vector<Triplet>& triplets() const { return triplets_; }

  /// Sorts by (row, col) and sums duplicates, in place.
  void normalize();

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<Triplet> triplets_;
};

}  // namespace fusedml::la
