// Compressed Sparse Column storage — what csr2csc (the cuSPARSE
// explicit-transpose path, §3.1) produces. X in CSC is X^T in CSR.
#pragma once

#include <span>
#include <vector>

#include "common/types.h"

namespace fusedml::la {

class CscMatrix {
 public:
  CscMatrix() = default;
  CscMatrix(index_t rows, index_t cols, std::vector<offset_t> col_off,
            std::vector<index_t> row_idx, std::vector<real> values);

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  offset_t nnz() const { return static_cast<offset_t>(values_.size()); }

  std::span<const offset_t> col_off() const { return col_off_; }
  std::span<const index_t> row_idx() const { return row_idx_; }
  std::span<const real> values() const { return values_; }

  offset_t col_begin(index_t c) const { return col_off_[static_cast<usize>(c)]; }
  offset_t col_end(index_t c) const { return col_off_[static_cast<usize>(c) + 1]; }

  usize bytes() const {
    return values_.size() * sizeof(real) + row_idx_.size() * sizeof(index_t) +
           col_off_.size() * sizeof(offset_t);
  }

  bool operator==(const CscMatrix&) const = default;

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<offset_t> col_off_;
  std::vector<index_t> row_idx_;
  std::vector<real> values_;
};

}  // namespace fusedml::la
