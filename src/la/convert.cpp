#include "la/convert.h"

#include <cmath>

#include "common/error.h"

namespace fusedml::la {

CsrMatrix coo_to_csr(const CooMatrix& coo_in) {
  CooMatrix coo = coo_in;  // normalize works in place; keep caller's intact
  coo.normalize();
  const index_t rows = coo.rows();
  std::vector<offset_t> row_off(static_cast<usize>(rows) + 1, 0);
  for (const auto& t : coo.triplets()) {
    ++row_off[static_cast<usize>(t.row) + 1];
  }
  for (usize r = 0; r < static_cast<usize>(rows); ++r) {
    row_off[r + 1] += row_off[r];
  }
  std::vector<index_t> col_idx;
  std::vector<real> values;
  col_idx.reserve(coo.triplets().size());
  values.reserve(coo.triplets().size());
  for (const auto& t : coo.triplets()) {
    col_idx.push_back(t.col);
    values.push_back(t.value);
  }
  return CsrMatrix(rows, coo.cols(), std::move(row_off), std::move(col_idx),
                   std::move(values));
}

CscMatrix csr_to_csc(const CsrMatrix& csr) {
  const usize nnz = static_cast<usize>(csr.nnz());
  std::vector<offset_t> col_off(static_cast<usize>(csr.cols()) + 1, 0);
  // Histogram.
  for (usize i = 0; i < nnz; ++i) {
    ++col_off[static_cast<usize>(csr.col_idx()[i]) + 1];
  }
  // Exclusive scan.
  for (usize c = 0; c < static_cast<usize>(csr.cols()); ++c) {
    col_off[c + 1] += col_off[c];
  }
  // Scatter. Row order within a column is preserved because rows are walked
  // in increasing order, so row_idx comes out strictly increasing.
  std::vector<index_t> row_idx(nnz);
  std::vector<real> values(nnz);
  std::vector<offset_t> cursor(col_off.begin(), col_off.end() - 1);
  for (index_t r = 0; r < csr.rows(); ++r) {
    for (offset_t i = csr.row_begin(r); i < csr.row_end(r); ++i) {
      const index_t c = csr.col_idx()[static_cast<usize>(i)];
      const offset_t dst = cursor[static_cast<usize>(c)]++;
      row_idx[static_cast<usize>(dst)] = r;
      values[static_cast<usize>(dst)] = csr.values()[static_cast<usize>(i)];
    }
  }
  return CscMatrix(csr.rows(), csr.cols(), std::move(col_off),
                   std::move(row_idx), std::move(values));
}

CsrMatrix csc_as_transposed_csr(const CscMatrix& csc) {
  return CsrMatrix(csc.cols(), csc.rows(),
                   {csc.col_off().begin(), csc.col_off().end()},
                   {csc.row_idx().begin(), csc.row_idx().end()},
                   {csc.values().begin(), csc.values().end()});
}

CsrMatrix transpose(const CsrMatrix& csr) {
  return csc_as_transposed_csr(csr_to_csc(csr));
}

CsrMatrix select_rows(const CsrMatrix& csr, std::span<const index_t> rows) {
  std::vector<offset_t> row_off(rows.size() + 1, 0);
  std::vector<index_t> col_idx;
  std::vector<real> values;
  for (usize i = 0; i < rows.size(); ++i) {
    const index_t r = rows[i];
    FUSEDML_CHECK(r >= 0 && r < csr.rows(), "row selection out of range");
    if (i > 0) {
      FUSEDML_CHECK(rows[i - 1] < r, "row selection must be increasing");
    }
    for (offset_t k = csr.row_begin(r); k < csr.row_end(r); ++k) {
      col_idx.push_back(csr.col_idx()[static_cast<usize>(k)]);
      values.push_back(csr.values()[static_cast<usize>(k)]);
    }
    row_off[i + 1] = static_cast<offset_t>(col_idx.size());
  }
  return CsrMatrix(static_cast<index_t>(rows.size()), csr.cols(),
                   std::move(row_off), std::move(col_idx), std::move(values));
}

DenseMatrix csr_to_dense(const CsrMatrix& csr) {
  DenseMatrix out(csr.rows(), csr.cols());
  for (index_t r = 0; r < csr.rows(); ++r) {
    for (offset_t i = csr.row_begin(r); i < csr.row_end(r); ++i) {
      out.at(r, csr.col_idx()[static_cast<usize>(i)]) =
          csr.values()[static_cast<usize>(i)];
    }
  }
  return out;
}

CsrMatrix dense_to_csr(const DenseMatrix& dense, real zero_tolerance) {
  CooMatrix coo(dense.rows(), dense.cols());
  for (index_t r = 0; r < dense.rows(); ++r) {
    for (index_t c = 0; c < dense.cols(); ++c) {
      const real v = dense.at(r, c);
      if (std::abs(v) > zero_tolerance) coo.add(r, c, v);
    }
  }
  return coo_to_csr(coo);
}

DenseMatrix transpose(const DenseMatrix& dense) {
  DenseMatrix out(dense.cols(), dense.rows());
  for (index_t r = 0; r < dense.rows(); ++r) {
    for (index_t c = 0; c < dense.cols(); ++c) {
      out.at(c, r) = dense.at(r, c);
    }
  }
  return out;
}

}  // namespace fusedml::la
