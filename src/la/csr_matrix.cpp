#include "la/csr_matrix.h"

#include <algorithm>

#include "common/error.h"

namespace fusedml::la {

CsrMatrix::CsrMatrix(index_t rows, index_t cols,
                     std::vector<offset_t> row_off,
                     std::vector<index_t> col_idx, std::vector<real> values)
    : rows_(rows),
      cols_(cols),
      row_off_(std::move(row_off)),
      col_idx_(std::move(col_idx)),
      values_(std::move(values)) {
  FUSEDML_CHECK(rows_ >= 0 && cols_ >= 0, "negative matrix dimensions");
  FUSEDML_CHECK(row_off_.size() == static_cast<usize>(rows_) + 1,
                "row_off must have rows+1 entries");
  FUSEDML_CHECK(col_idx_.size() == values_.size(),
                "col_idx and values must have equal length");
  FUSEDML_CHECK(row_off_.front() == 0, "row_off[0] must be 0");
  FUSEDML_CHECK(row_off_.back() == static_cast<offset_t>(values_.size()),
                "row_off[rows] must equal nnz");
  for (usize r = 0; r < static_cast<usize>(rows_); ++r) {
    FUSEDML_CHECK(row_off_[r] <= row_off_[r + 1], "row_off must be monotone");
    for (offset_t i = row_off_[r]; i < row_off_[r + 1]; ++i) {
      const index_t c = col_idx_[static_cast<usize>(i)];
      FUSEDML_CHECK(c >= 0 && c < cols_, "column index out of range");
      if (i > row_off_[r]) {
        FUSEDML_CHECK(col_idx_[static_cast<usize>(i - 1)] < c,
                      "column indices must be strictly increasing per row");
      }
    }
  }
}

index_t CsrMatrix::max_nnz_per_row() const {
  index_t best = 0;
  for (index_t r = 0; r < rows_; ++r) best = std::max(best, row_nnz(r));
  return best;
}

}  // namespace fusedml::la
