// Row-major dense matrix — the layout the paper's dense kernels assume.
#pragma once

#include <span>
#include <vector>

#include "common/error.h"
#include "common/types.h"

namespace fusedml::la {

class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(index_t rows, index_t cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<usize>(rows) * static_cast<usize>(cols), real{0}) {
    FUSEDML_CHECK(rows >= 0 && cols >= 0, "negative matrix dimensions");
  }
  DenseMatrix(index_t rows, index_t cols, std::vector<real> data)
      : rows_(rows), cols_(cols), data_(std::move(data)) {
    FUSEDML_CHECK(data_.size() == static_cast<usize>(rows) * static_cast<usize>(cols),
                  "data size does not match dimensions");
  }

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }

  real& at(index_t r, index_t c) { return data_[idx(r, c)]; }
  real at(index_t r, index_t c) const { return data_[idx(r, c)]; }

  /// Row r as a contiguous span.
  std::span<real> row(index_t r) {
    return {data_.data() + idx(r, 0), static_cast<usize>(cols_)};
  }
  std::span<const real> row(index_t r) const {
    return {data_.data() + idx(r, 0), static_cast<usize>(cols_)};
  }

  std::span<real> data() { return data_; }
  std::span<const real> data() const { return data_; }

  usize bytes() const { return data_.size() * sizeof(real); }

  /// Zero-pads the column count up to a multiple of `multiple` (§3.2:
  /// "When n % VS != 0, we pad both matrix X and vector y with zero rows...
  /// In the worst case, we pad by only VS - 1"). Returns the new matrix;
  /// the original is untouched.
  DenseMatrix padded_cols(index_t multiple) const;

  bool operator==(const DenseMatrix&) const = default;

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<real> data_;

  usize idx(index_t r, index_t c) const {
    FUSEDML_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_,
                  "dense index out of range");
    return static_cast<usize>(r) * static_cast<usize>(cols_) +
           static_cast<usize>(c);
  }
};

/// Pads a vector with zeros up to a multiple of `multiple`.
std::vector<real> padded_vector(std::span<const real> v, index_t multiple);

}  // namespace fusedml::la
