#include "sysml/expr.h"

#include <sstream>
#include <unordered_map>

#include "common/error.h"
#include "common/timer.h"
#include "sysml/fusion_planner.h"

namespace fusedml::sysml {

const char* to_string(PlanMode mode) {
  switch (mode) {
    case PlanMode::kUnfused: return "unfused";
    case PlanMode::kHardcodedPass: return "hardcoded-pass";
    case PlanMode::kPlanner: return "planner";
  }
  return "?";
}

namespace {

/// Deep-copies the interior of a DAG while SHARING the leaf nodes.
/// fuse_patterns() rewrites its input in place, so the hardcoded pass must
/// run on a clone — otherwise preparing one mode would corrupt the pristine
/// roots every other cache entry points at. Leaves stay shared on purpose:
/// bind() mutates the leaf's tensor id and every prepared plan must see it.
NodePtr clone_interior(const NodePtr& node,
                       std::unordered_map<const Node*, NodePtr>& memo) {
  if (!node) return nullptr;
  if (const auto it = memo.find(node.get()); it != memo.end()) {
    return it->second;
  }
  if (node->kind == OpKind::kInputMatrix ||
      node->kind == OpKind::kInputVector) {
    memo.emplace(node.get(), node);
    return node;
  }
  auto copy = std::make_shared<Node>(*node);
  for (auto& in : copy->inputs) in = clone_interior(in, memo);
  for (auto* slot : {&copy->fused_matrix, &copy->fused_v, &copy->fused_y,
                     &copy->fused_z}) {
    if (*slot) *slot = clone_interior(*slot, memo);
  }
  memo.emplace(node.get(), copy);
  return copy;
}

NodePtr leaf_node(OpKind kind) {
  auto node = std::make_shared<Node>();
  node->kind = kind;
  node->tensor = 0;  // unbound until Program::bind
  return node;
}

}  // namespace

// --- ExprBuilder ------------------------------------------------------------

Expr ExprBuilder::matrix(const std::string& name) {
  auto node = leaf_node(OpKind::kInputMatrix);
  leaves_.emplace_back(name, node);
  return Expr(node);
}

Expr ExprBuilder::vector(const std::string& name) {
  auto node = leaf_node(OpKind::kInputVector);
  leaves_.emplace_back(name, node);
  return Expr(node);
}

Expr ExprBuilder::spmv(const Expr& X, const Expr& y) {
  return Expr(mv(X.node(), y.node()));
}

Expr ExprBuilder::spmv_t(const Expr& X, const Expr& y, real alpha) {
  return Expr(mvt(X.node(), y.node(), alpha));
}

Expr ExprBuilder::mul(const Expr& a, const Expr& b) {
  return Expr(ewise_mul(a.node(), b.node()));
}

Expr ExprBuilder::scale(real s, const Expr& a) {
  return Expr(sysml::scale(s, a.node()));
}

Expr ExprBuilder::add(const Expr& a, const Expr& b) {
  return Expr(sysml::add(a.node(), b.node()));
}

Expr ExprBuilder::axpy(real alpha, const Expr& x, const Expr& y) {
  return add(scale(alpha, x), y);
}

Expr ExprBuilder::map(const Expr& a, real (*f)(real),
                      const std::string& name) {
  return Expr(sysml::map(a.node(), f, name));
}

Expr ExprBuilder::outer_map(const Expr& u, const Expr& v, real (*f)(real),
                            const std::string& name) {
  return Expr(sysml::outer_map(u.node(), v.node(), f, name));
}

Expr ExprBuilder::sparse_mask(const Expr& X, const Expr& om) {
  return Expr(sysml::sparse_mask(X.node(), om.node()));
}

Expr ExprBuilder::pattern(real alpha, const Expr& X, const Expr& v,
                          const Expr& y, real beta, const Expr& z) {
  return Expr(pattern_expression(alpha, X.node(), v.node(), y.node(), beta,
                                 z.node()));
}

void ExprBuilder::output(const std::string& name, const Expr& e) {
  FUSEDML_CHECK(static_cast<bool>(e), "output expression is empty");
  outputs_.emplace_back(name, e.node());
}

Program ExprBuilder::build() {
  FUSEDML_CHECK(!outputs_.empty(), "a Program needs at least one output");
  Program program;
  program.leaves_ = std::move(leaves_);
  program.outputs_ = std::move(outputs_);
  return program;
}

// --- Program ----------------------------------------------------------------

void Program::bind(const std::string& leaf, TensorId id) {
  for (auto& [name, node] : leaves_) {
    if (name == leaf) {
      node->tensor = id;
      return;
    }
  }
  FUSEDML_CHECK(false, "Program has no leaf named '" + leaf + "'");
}

std::string Program::shape_signature(Runtime& rt, PlanMode mode) const {
  std::ostringstream os;
  os << to_string(mode);
  if (mode == PlanMode::kPlanner) {
    // Planner knobs change the plan, so they are part of the cache key.
    const PlannerOptions& po = rt.planner_options();
    os << "[p" << po.enable_pattern_fusion << 'e' << po.enable_ewise_fusion
       << 'r' << po.enable_row_fusion << 's' << po.enable_sddmm_fusion << 'b'
       << po.candidate_budget << 'm' << po.min_benefit_ms << ']';
  }
  for (const auto& [name, node] : leaves_) {
    FUSEDML_CHECK(node->tensor != 0,
                  "Program leaf '" + name + "' is not bound to a tensor");
    const TensorInfo info = rt.tensor_info(node->tensor);
    os << '|' << name << ':' << info.rows << 'x' << info.cols << ':'
       << info.nnz << (info.is_sparse ? 's' : 'd');
  }
  return os.str();
}

void Program::prepare(Runtime& rt, PlanMode mode) {
  const Timer plan_timer;  // host wall clock — planning is unmodeled work
  const std::string key = shape_signature(rt, mode);
  if (const auto it = cache_.find(key); it != cache_.end()) {
    current_ = &it->second;
    ++cache_hits_;
    rt.note_plan_prepare(plan_timer.elapsed_ms(), /*cache_hit=*/true);
  } else {
    Prepared prep;
    std::ostringstream explain;
    for (const auto& [name, root] : outputs_) {
      RootPlan rp;
      switch (mode) {
        case PlanMode::kUnfused:
          rp.root = root;
          break;
        case PlanMode::kHardcodedPass: {
          std::unordered_map<const Node*, NodePtr> memo;
          FusionReport report;
          rp.root = fuse_patterns(clone_interior(root, memo), &report);
          prep.fused_groups += report.patterns_fused;
          explain << "output " << name << ": hardcoded fuse_patterns: "
                  << report.patterns_fused << " pattern(s) fused\n";
          break;
        }
        case PlanMode::kPlanner: {
          FusionPlan plan = plan_fusion(rt, root, rt.planner_options());
          rp.root = plan.root;
          rp.has_prediction = true;
          rp.launches = plan.launches_planned;
          rp.ms = plan.modeled_planned_ms;
          prep.fused_groups += static_cast<int>(plan.groups.size());
          explain << "output " << name << ":\n" << plan.explain();
          break;
        }
      }
      prep.roots.push_back(std::move(rp));
    }
    prep.explain = explain.str();
    ++plans_built_;
    const auto [slot, inserted] = cache_.emplace(key, std::move(prep));
    FUSEDML_CHECK(inserted, "plan cache emplace raced itself");
    current_ = &slot->second;
    rt.note_plan_prepare(plan_timer.elapsed_ms(), /*cache_hit=*/false);
  }
  if (mode == PlanMode::kPlanner) rt.note_plan(current_->explain);
}

TensorId Program::run(Runtime& rt, const std::string& output) {
  FUSEDML_CHECK(current_ != nullptr, "Program::run() before prepare()");
  usize idx = 0;
  if (!output.empty()) {
    bool found = false;
    for (usize i = 0; i < outputs_.size(); ++i) {
      if (outputs_[i].first == output) {
        idx = i;
        found = true;
        break;
      }
    }
    FUSEDML_CHECK(found, "Program has no output named '" + output + "'");
  }
  const RootPlan& rp = current_->roots[idx];
  if (rp.has_prediction) rt.note_plan_prediction(rp.launches, rp.ms);
  return execute(rt, rp.root);
}

int Program::fused_groups() const {
  return current_ != nullptr ? current_->fused_groups : 0;
}

const std::string& Program::plan_explain() const {
  static const std::string kEmpty;
  return current_ != nullptr ? current_->explain : kEmpty;
}

// The public execution entry point lives on the runtime so call sites read
// rt.run(program) — the runtime owns execution, the program owns the plan.
TensorId Runtime::run(Program& program, const std::string& output) {
  return program.run(*this, output);
}

}  // namespace fusedml::sysml
