// The expression-builder frontend: algorithms describe WHAT they compute,
// the planner decides HOW it runs.
//
// SystemML's layering (and this paper's §4.4 integration) is: a declarative
// script builds an operator DAG, one optimizer picks the fused plan, one
// runtime interprets it. ExprBuilder/Program reproduce that layering for
// every solver in ml/: an algorithm declares symbolic matrices/vectors,
// combines them with spmv / spmv_t / elementwise chains / Equation-1
// patterns, and names the outputs it wants. The resulting Program is the
// single IR every algorithm lowers to — lr-cg, logreg, glm, svm and hits
// all reach the cost-based fusion planner through it, instead of driving
// PatternExecutor imperatively from hand-picked call sites.
//
// Iteration loops with loop-carried state work by BINDING: leaves are bound
// to runtime tensors by name, and may be re-bound every iteration (hits
// re-binds "a" to the previous refresh's output; glm re-binds "resid" to
// the freshly computed residual). Planning cost is paid once per solver,
// not per iteration: prepare() keys its plan cache on (plan mode, shape
// signature of every bound leaf), so the steady-state loop hits the cache
// and run() just interprets the already-rewritten DAG.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"
#include "obs/plan_audit.h"
#include "sysml/dag.h"
#include "sysml/runtime.h"

namespace fusedml::sysml {

/// How a Program's DAG is prepared before interpretation.
enum class PlanMode {
  kUnfused,        ///< interpret the operator DAG as built
  kHardcodedPass,  ///< the §4.4-style template rewrite (fuse_patterns)
  kPlanner,        ///< the cost-based fusion planner (fusion_planner.h)
};

const char* to_string(PlanMode mode);

/// What every generated algorithm script returns (weights + the runtime's
/// books, so benches and the serving layer share one result shape).
struct ScriptResult {
  std::vector<real> weights;
  int iterations = 0;
  RuntimeStats runtime_stats;
  MemoryStats memory_stats;
  double end_to_end_ms = 0.0;
  std::string plan_explain;     ///< what the planner chose (planner mode)
  int fused_groups = 0;         ///< fusion groups across the script's programs
  int plans_built = 0;          ///< shape-signature plans constructed
  int plan_cache_hits = 0;      ///< prepare() calls served from the cache
  obs::PlanAudit plan_audit;    ///< plan-vs-actual audit (planner mode)
};

/// A symbolic value inside a Program under construction — just a handle to
/// a DAG node.
class Expr {
 public:
  Expr() = default;
  explicit Expr(NodePtr node) : node_(std::move(node)) {}
  const NodePtr& node() const { return node_; }
  explicit operator bool() const { return node_ != nullptr; }

 private:
  NodePtr node_;
};

class Program;

/// Builds symbolic expressions over named leaves. The combinators are pure
/// (they only assemble DAG nodes); build() moves the declared leaves and
/// outputs into a Program.
class ExprBuilder {
 public:
  /// Declares a named matrix / vector leaf. Bind a runtime tensor to the
  /// name before preparing the Program.
  Expr matrix(const std::string& name);
  Expr vector(const std::string& name);

  // --- Combinators --------------------------------------------------------
  static Expr spmv(const Expr& X, const Expr& y);   ///< X * y (CSR or dense)
  /// alpha * X^T * y, alpha applied per-term inside the kernel (exactly
  /// op_transposed_product's alpha — not bit-equal to scale(alpha, ...)).
  static Expr spmv_t(const Expr& X, const Expr& y, real alpha = 1);
  static Expr mul(const Expr& a, const Expr& b);    ///< a ⊙ b
  static Expr scale(real s, const Expr& a);
  static Expr add(const Expr& a, const Expr& b);
  /// alpha * x + y as an elementwise chain (a planner fusion candidate).
  static Expr axpy(real alpha, const Expr& x, const Expr& y);
  static Expr map(const Expr& a, real (*f)(real), const std::string& name);
  /// The m*n values of f(u v^T), row-major — a VALUES vector. Feed it to
  /// sparse_mask to express sddmm-shaped products the planner can collapse
  /// into the sparsity-exploiting fused kernel.
  static Expr outer_map(const Expr& u, const Expr& v, real (*f)(real),
                        const std::string& name);
  /// X's values elementwise-scaled by an outer-map (at X's nonzeros for CSR
  /// storage). The result reuses X's structure: spmv(sparse_mask(X, om), z)
  /// is the masked product (X ⊙ f(u v^T)) * z.
  static Expr sparse_mask(const Expr& X, const Expr& om);
  /// The full Equation-1 expression alpha * X^T (v ⊙ (X*y)) + beta*z as an
  /// UNFUSED operator DAG (pass default Expr{} for absent v / z) — what the
  /// hardcoded pass and the planner both recognize and collapse.
  static Expr pattern(real alpha, const Expr& X, const Expr& v,
                      const Expr& y, real beta, const Expr& z);

  /// Names a result the Program can execute.
  void output(const std::string& name, const Expr& e);

  Program build();

 private:
  std::vector<std::pair<std::string, NodePtr>> leaves_;
  std::vector<std::pair<std::string, NodePtr>> outputs_;
};

/// A compiled expression program: named leaves, named output DAGs, and a
/// per-(plan mode, leaf shape signature) cache of prepared plans.
class Program {
 public:
  Program() = default;

  /// Binds (or re-binds) a leaf to a runtime tensor. Re-binding is how
  /// loops thread loop-carried state through a cached plan: prepared DAGs
  /// share the leaf nodes, so the new tensor is visible to them without
  /// replanning.
  void bind(const std::string& leaf, TensorId id);

  /// Plans every output for (mode, current leaf shapes). Cached: the same
  /// mode + shapes never plan twice. Planner mode records the plan with
  /// rt.note_plan() so Runtime::explain() can print it.
  void prepare(Runtime& rt, PlanMode mode);

  /// Interprets one prepared output (default: the first). Planner-prepared
  /// roots re-arm the runtime's plan-audit prediction before executing.
  TensorId run(Runtime& rt, const std::string& output = "");

  int plans_built() const { return plans_built_; }
  int plan_cache_hits() const { return cache_hits_; }
  /// Fusion groups / explain text of the CURRENTLY prepared plan.
  int fused_groups() const;
  const std::string& plan_explain() const;

 private:
  friend class ExprBuilder;

  struct RootPlan {
    NodePtr root;
    bool has_prediction = false;      // planner mode only
    std::uint64_t launches = 0;       // planner's per-execution prediction
    double ms = 0.0;
  };
  struct Prepared {
    std::vector<RootPlan> roots;  // parallel to outputs_
    std::string explain;
    int fused_groups = 0;
  };

  std::string shape_signature(Runtime& rt, PlanMode mode) const;

  std::vector<std::pair<std::string, NodePtr>> leaves_;
  std::vector<std::pair<std::string, NodePtr>> outputs_;
  std::map<std::string, Prepared> cache_;  // node-stable addresses
  Prepared* current_ = nullptr;
  int plans_built_ = 0;
  int cache_hits_ = 0;
};

}  // namespace fusedml::sysml
