// Expression DAGs and the kernel-fusion rewrite pass.
//
// SystemML compiles declarative scripts into operator DAGs; the paper's
// integration (§4.4) makes the system "transparently select our fused GPU
// kernel" for the Equation-1 pattern. This module reproduces that
// compiler-side story: build a DAG of primitive linear-algebra operators,
// run fuse_patterns() — which pattern-matches the subgraph
//
//        Add
//       /   \.
//   Scale    Scale(beta)
//     |         \.
//    MvT         z
//   /   \.
//  X   EwiseMul
//        /  \.
//       v    Mv
//           /  \.
//          X    y
//
// (and all its Table-1 degenerations: missing Scale/EwiseMul/Add) — and
// replaces it with a single FusedPattern node. execute() then interprets
// the DAG over a Runtime, so fused nodes land on the device as ONE kernel
// while unfused DAGs run operator-at-a-time.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "kernels/ewise_program.h"
#include "sysml/runtime.h"

namespace fusedml::sysml {

enum class OpKind {
  kInputMatrix,   ///< leaf: a matrix registered with the runtime
  kInputVector,   ///< leaf: a vector registered with the runtime
  kMv,            ///< X * y (X may also be a kSparseMask value node)
  kMvT,           ///< X^T * y  (optionally pre-scaled by `scalar`)
  kEwiseMul,      ///< a ⊙ b
  kScale,         ///< scalar * a
  kAdd,           ///< a + b
  kMap,           ///< f(a) element-wise (sigmoid, exp, ...)
  kOuterMap,      ///< f(u_i * v_j): the m*n values of f(u v^T), row-major
  kSparseMask,    ///< X ⊙ O: values of X scaled by an outer-map, at X's
                  ///< nonzeros (CSR) or densely — a VALUES vector, reusing
                  ///< X's structure
  kFusedPattern,  ///< scalar * X^T (v ⊙ (X*y)) + scalar2 * z — one kernel
  kFusedEwise,    ///< a whole elementwise chain as one generated kernel
  kFusedRow,      ///< (X*y) fed through an elementwise epilogue — one kernel
  kFusedSddmm,    ///< (X ⊙ f(u v^T)) * z evaluated only at nnz(X) — one kernel
};

std::string to_string(OpKind kind);

struct Node;
using NodePtr = std::shared_ptr<Node>;

struct Node {
  OpKind kind;
  std::vector<NodePtr> inputs;
  real scalar = 1;     ///< kScale factor; kFusedPattern alpha
  real scalar2 = 0;    ///< kFusedPattern beta
  TensorId tensor = 0; ///< leaves: the runtime tensor

  // kMap / kOuterMap / kFusedSddmm payload.
  real (*map_f)(real) = nullptr;
  std::string map_name;

  // kFusedEwise payload: inputs[] are the program's input slots, in order.
  // kFusedRow reuses it for the epilogue: program slot 0 is the row product
  // X*y, and inputs[] are the remaining external slots, in order.
  kernels::EwiseProgram program;

  // kFusedPattern operand slots (empty NodePtr = absent v / z).
  // kFusedRow: fused_matrix = X leaf, fused_y = the product's vector.
  // kFusedSddmm: fused_matrix = X leaf, fused_v = u, fused_y = v,
  // fused_z = the product vector z.
  NodePtr fused_matrix, fused_v, fused_y, fused_z;
};

// --- Construction helpers ---------------------------------------------------
NodePtr input_matrix(TensorId id);
NodePtr input_vector(TensorId id);
NodePtr mv(NodePtr X, NodePtr y);
NodePtr mvt(NodePtr X, NodePtr y);
/// X^T * y with the scale applied inside the kernel (per-term, exactly as
/// op_transposed_product's alpha) — NOT bit-equal to scale(alpha, mvt(X,y)).
NodePtr mvt(NodePtr X, NodePtr y, real alpha);
NodePtr ewise_mul(NodePtr a, NodePtr b);
NodePtr scale(real s, NodePtr a);
NodePtr add(NodePtr a, NodePtr b);
NodePtr map(NodePtr a, real (*f)(real), std::string name);
/// The m*n values of f(u v^T), row-major — a VALUES vector, not a matrix.
NodePtr outer_map(NodePtr u, NodePtr v, real (*f)(real), std::string name);
/// Values of X elementwise-scaled by an outer-map `om` (evaluated at X's
/// nonzeros for CSR storage, densely for dense storage). The result reuses
/// X's structure, so `mv(sparse_mask(X, om), z)` is a masked product.
NodePtr sparse_mask(NodePtr X, NodePtr om);

/// Builds the full Equation-1 expression as an UNFUSED operator DAG:
///   alpha * X^T (v ⊙ (X*y)) + beta*z     (pass nullptr for absent v / z)
NodePtr pattern_expression(real alpha, NodePtr X, NodePtr v, NodePtr y,
                           real beta, NodePtr z);

// --- Pattern matching --------------------------------------------------------

/// A successful structural match of the Equation-1 template
///   alpha * X^T (v ⊙ (X*y)) + beta*z
/// rooted at some node (v / z may be absent — the Table-1 degenerations).
/// `covered` lists the interior operator nodes the fused kernel would
/// replace (the match root, the MvT/Mv pair, and any Scale/EwiseMul/Add
/// glue); the retained operands X, v, y, z are NOT in it.
struct Equation1Match {
  real alpha = 1;
  real beta = 0;
  NodePtr X, v, y, z;  ///< v / z may be null
  std::vector<const Node*> covered;
};

/// Non-destructive matcher shared by fuse_patterns() and the cost-based
/// fusion planner. Matches at the LARGEST extent rooted at `node`.
std::optional<Equation1Match> match_equation1(const NodePtr& node);

/// Parents of every node reachable from root (materialization analysis:
/// an intermediate with a consumer outside a fusion candidate must be
/// materialized anyway, so fusing it buys nothing and recomputes work).
std::unordered_map<const Node*, std::vector<const Node*>> consumer_map(
    const NodePtr& root);

/// True when fusing `m` rooted in the DAG of `consumers` would NOT force an
/// interior intermediate to be materialized anyway: every covered interior
/// node (other than the match root) is consumed only inside the match, and
/// no retained operand (X/v/y/z) is itself a covered interior node.
bool fusion_is_materialization_safe(
    const Equation1Match& m, const NodePtr& match_root,
    const std::unordered_map<const Node*, std::vector<const Node*>>&
        consumers);

// --- The fusion pass ---------------------------------------------------------

struct FusionReport {
  int patterns_fused = 0;    ///< Equation-1 subgraphs collapsed
  int nodes_before = 0;
  int nodes_after = 0;
  int rejected_multi_consumer = 0;  ///< matches skipped by the
                                    ///< materialization-point analysis
};

/// Rewrites the DAG in place (returns the possibly-replaced root):
/// every maximal Equation-1 subgraph becomes one kFusedPattern node.
/// Matches whose intermediates are consumed elsewhere in the DAG are left
/// unfused (they would be recomputed AND materialized — see
/// fusion_is_materialization_safe).
NodePtr fuse_patterns(NodePtr root, FusionReport* report = nullptr);

/// Number of distinct nodes reachable from root.
int count_nodes(const NodePtr& root);

// --- Execution -----------------------------------------------------------------

/// Interprets the DAG over the runtime; returns the root's result tensor.
/// Each non-leaf node costs one runtime op (kFusedPattern = one fused
/// kernel; the unfused operators run operator-at-a-time).
TensorId execute(Runtime& rt, const NodePtr& root);

}  // namespace fusedml::sysml
