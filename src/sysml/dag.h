// Expression DAGs and the kernel-fusion rewrite pass.
//
// SystemML compiles declarative scripts into operator DAGs; the paper's
// integration (§4.4) makes the system "transparently select our fused GPU
// kernel" for the Equation-1 pattern. This module reproduces that
// compiler-side story: build a DAG of primitive linear-algebra operators,
// run fuse_patterns() — which pattern-matches the subgraph
//
//        Add
//       /   \
//   Scale    Scale(beta)
//     |         \
//    MvT         z
//   /   \
//  X   EwiseMul
//        /  \
//       v    Mv
//           /  \
//          X    y
//
// (and all its Table-1 degenerations: missing Scale/EwiseMul/Add) — and
// replaces it with a single FusedPattern node. execute() then interprets
// the DAG over a Runtime, so fused nodes land on the device as ONE kernel
// while unfused DAGs run operator-at-a-time.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "sysml/runtime.h"

namespace fusedml::sysml {

enum class OpKind {
  kInputMatrix,   ///< leaf: a matrix registered with the runtime
  kInputVector,   ///< leaf: a vector registered with the runtime
  kMv,            ///< X * y
  kMvT,           ///< X^T * y  (optionally pre-scaled by `scalar`)
  kEwiseMul,      ///< a ⊙ b
  kScale,         ///< scalar * a
  kAdd,           ///< a + b
  kFusedPattern,  ///< scalar * X^T (v ⊙ (X*y)) + scalar2 * z — one kernel
};

std::string to_string(OpKind kind);

struct Node;
using NodePtr = std::shared_ptr<Node>;

struct Node {
  OpKind kind;
  std::vector<NodePtr> inputs;
  real scalar = 1;     ///< kScale factor; kFusedPattern alpha
  real scalar2 = 0;    ///< kFusedPattern beta
  TensorId tensor = 0; ///< leaves: the runtime tensor

  // kFusedPattern operand slots (empty NodePtr = absent v / z).
  NodePtr fused_matrix, fused_v, fused_y, fused_z;
};

// --- Construction helpers ---------------------------------------------------
NodePtr input_matrix(TensorId id);
NodePtr input_vector(TensorId id);
NodePtr mv(NodePtr X, NodePtr y);
NodePtr mvt(NodePtr X, NodePtr y);
NodePtr ewise_mul(NodePtr a, NodePtr b);
NodePtr scale(real s, NodePtr a);
NodePtr add(NodePtr a, NodePtr b);

/// Builds the full Equation-1 expression as an UNFUSED operator DAG:
///   alpha * X^T (v ⊙ (X*y)) + beta*z     (pass nullptr for absent v / z)
NodePtr pattern_expression(real alpha, NodePtr X, NodePtr v, NodePtr y,
                           real beta, NodePtr z);

// --- The fusion pass ---------------------------------------------------------

struct FusionReport {
  int patterns_fused = 0;    ///< Equation-1 subgraphs collapsed
  int nodes_before = 0;
  int nodes_after = 0;
};

/// Rewrites the DAG in place (returns the possibly-replaced root):
/// every maximal Equation-1 subgraph becomes one kFusedPattern node.
NodePtr fuse_patterns(NodePtr root, FusionReport* report = nullptr);

/// Number of distinct nodes reachable from root.
int count_nodes(const NodePtr& root);

// --- Execution -----------------------------------------------------------------

/// Interprets the DAG over the runtime; returns the root's result tensor.
/// Each non-leaf node costs one runtime op (kFusedPattern = one fused
/// kernel; the unfused operators run operator-at-a-time).
TensorId execute(Runtime& rt, const NodePtr& root);

}  // namespace fusedml::sysml
