// GPU memory manager for the mini SystemML runtime — §4.4's component (ii),
// implementing exactly the tasks the paper enumerates:
//   a) allocate device memory if not already allocated,
//   b) evict to make room when the device is full,
//   c) deallocate unneeded buffers and mark them for later reuse,
//   d) keep the CPU and GPU copies consistent (dirty tracking + synchronizing
//      transfers),
//   e) account for data-structure transformations between the host and
//      device representations (handled by the JNI bridge, charged on first
//      upload).
//
// Transfers are charged against the device's PCIe model; the manager is the
// reason Table 6's end-to-end speedups are smaller than Table 5's.
//
// Resilience: transfers retry with modeled backoff on injected PCIe faults;
// injected allocation OOMs degrade gracefully (evict the LRU victim and
// carry on); and tensors larger than device capacity are registered rather
// than rejected — needs_streaming() flags them so the runtime routes the op
// through the out-of-core streaming path instead of dying.
#pragma once

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>

#include "common/resilience.h"
#include "common/types.h"
#include "vgpu/device.h"

namespace fusedml::sysml {

using TensorId = std::uint64_t;

enum class Residency {
  kHostOnly,    ///< no device copy
  kSynced,      ///< host and device copies agree
  kDeviceDirty, ///< device copy newer (host stale)
  kHostDirty,   ///< host copy newer (device stale)
};

struct MemoryStats {
  std::uint64_t h2d_transfers = 0;
  std::uint64_t d2h_transfers = 0;
  std::uint64_t h2d_bytes = 0;
  std::uint64_t d2h_bytes = 0;
  std::uint64_t evictions = 0;
  std::uint64_t allocation_reuses = 0;  ///< task (c): recycled allocations
  std::uint64_t streaming_fallbacks = 0;  ///< over-capacity ops rerouted
  double transfer_ms = 0.0;
  usize peak_device_bytes = 0;
  ResilienceStats resilience;  ///< transfer retries + absorbed alloc OOMs
};

class MemoryManager {
 public:
  /// `capacity_bytes` defaults to the device's global memory.
  MemoryManager(vgpu::Device& dev, usize capacity_bytes = 0);

  /// Registers a tensor of `bytes` living on the host. No device action.
  /// Tensors larger than the device capacity are accepted — they can never
  /// become resident (needs_streaming() is true; ensure_on_device throws
  /// DeviceOomError), and the runtime streams the op over them instead.
  void register_tensor(TensorId id, usize bytes, std::string name = "");

  /// True when the tensor cannot fit on the device even alone, so any op
  /// touching it must run through the out-of-core streaming path.
  bool needs_streaming(TensorId id) const;
  /// Records that an op was rerouted to streaming because of such a tensor.
  void note_streaming_fallback() { ++stats_.streaming_fallbacks; }

  /// Task (a)+(b)+(d): make the tensor resident and current on the device.
  /// Charges an H2D transfer when the device copy is missing or stale;
  /// evicts least-recently-used tensors if space is needed (writing back
  /// device-dirty victims). Returns the modeled milliseconds spent.
  /// Throws DeviceOomError for tensors flagged needs_streaming().
  double ensure_on_device(TensorId id);

  /// Task (a)+(b) for a kernel *output*: allocate device space (evicting if
  /// necessary) without an upload — the kernel will produce the contents.
  /// Leaves the tensor device-dirty.
  double allocate_on_device(TensorId id);

  /// Task (d): make the host copy current (charges D2H if device-dirty).
  double ensure_on_host(TensorId id);

  /// Marks the device copy as the newest (a kernel wrote it).
  void mark_device_dirty(TensorId id);
  /// Marks the host copy as the newest (host code wrote it).
  void mark_host_dirty(TensorId id);

  /// Task (c): drop the device copy (after ensuring the host is current);
  /// the allocation slot is remembered for reuse accounting.
  double release(TensorId id);

  /// Drops the tensor entirely.
  void unregister(TensorId id);

  bool on_device(TensorId id) const;
  Residency residency(TensorId id) const;
  usize device_bytes_in_use() const { return used_bytes_; }
  usize capacity() const { return capacity_; }
  const MemoryStats& stats() const { return stats_; }

  /// Fault handling for transfers and injected allocation OOMs.
  RetryPolicy& retry_policy() { return retry_; }
  const RetryPolicy& retry_policy() const { return retry_; }

 private:
  struct Entry {
    usize bytes = 0;
    std::string name;
    Residency state = Residency::kHostOnly;
    bool reusable_slot = false;  ///< released but remembered (task c)
    /// Position in the LRU list when resident.
    std::list<TensorId>::iterator lru_pos;
    bool resident = false;
  };

  vgpu::Device& dev_;
  usize capacity_;
  usize used_bytes_ = 0;
  std::unordered_map<TensorId, Entry> entries_;
  std::list<TensorId> lru_;  ///< front = most recently used
  MemoryStats stats_;
  RetryPolicy retry_;

  Entry& entry(TensorId id);
  const Entry& entry(TensorId id) const;
  void touch(TensorId id);
  double evict_one();
  double evict_for(usize bytes_needed);
  double transfer(usize bytes, bool to_device);
  /// Consults the injector before an allocation; absorbs a spurious OOM by
  /// evicting the LRU victim (throws DeviceOomError only when nothing is
  /// left to evict). Returns the write-back ms of any forced eviction.
  double absorb_injected_oom();
  /// Allocation preamble shared by ensure_on_device/allocate_on_device.
  double make_resident(Entry& e, TensorId id);
};

}  // namespace fusedml::sysml
