// Cost-based fusion planner — the generalization of the hardcoded
// fuse_patterns() pass into candidate enumeration + costing + greedy
// selection, the way a declarative ML compiler would pick fused operators.
//
// Two candidate families are enumerated over the operator DAG:
//   1. Equation-1 template matches (match_equation1 + Table-1
//      degenerations), filtered by the materialization-point analysis so a
//      match whose intermediates feed other consumers is never fused, and
//   2. maximal element-wise regions — runs of kScale/kAdd/kEwiseMul/kMap
//      whose interiors have no outside consumers — collapsed into ONE
//      generated streaming kernel (kernels/cuda_codegen.h) that reads each
//      input once and keeps intermediates in registers.
//
// Every candidate is scored with the vgpu cost model (kernel launches at
// launch_overhead_us each, DRAM traffic at the device's effective
// bandwidth) using the per-op cost profiles the operator registry declares
// (kernels::op_profile). Candidates are chosen greedily by modeled benefit
// over disjoint node sets; the result is a FRESH rewritten DAG (the input
// DAG is untouched, so one Runtime can execute both and compare) plus an
// explain-plan describing every chosen group.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sysml/dag.h"
#include "sysml/runtime.h"

namespace fusedml::sysml {

struct PlannerOptions {
  bool enable_pattern_fusion = true;  ///< Equation-1 / Table-1 candidates
  bool enable_ewise_fusion = true;    ///< generated elementwise-chain kernels
  /// A candidate must beat the unfused cost by at least this much modeled
  /// time (and strictly reduce launches) to be chosen.
  double min_benefit_ms = 0.0;
};

/// One chosen fusion group in the plan.
struct PlannedGroup {
  std::string kind;    ///< "equation1" or "ewise_chain"
  std::string detail;  ///< alpha/beta summary or the program signature
  int nodes_covered = 0;
  std::uint64_t launches_before = 0;
  std::uint64_t launches_after = 0;
  double modeled_before_ms = 0;
  double modeled_after_ms = 0;

  double benefit_ms() const { return modeled_before_ms - modeled_after_ms; }
};

struct FusionPlan {
  /// The rewritten DAG — fresh nodes; the planner never mutates its input.
  NodePtr root;
  std::vector<PlannedGroup> groups;

  /// Whole-DAG modeled totals (distinct reachable operator nodes).
  std::uint64_t launches_unfused = 0;
  std::uint64_t launches_planned = 0;
  double modeled_unfused_ms = 0;
  double modeled_planned_ms = 0;

  /// Equation-1 matches skipped by the materialization-point analysis.
  int rejected_multi_consumer = 0;

  /// Database-style plan text: one line per group plus the totals. Feed it
  /// to Runtime::note_plan() so Runtime::explain() shows plan + execution.
  std::string explain() const;
};

/// Plans fusion for the DAG rooted at `root`. `rt` supplies tensor shapes
/// (Runtime::tensor_info) and the device cost parameters; no ops execute.
FusionPlan plan_fusion(Runtime& rt, const NodePtr& root,
                       const PlannerOptions& opts = {});

}  // namespace fusedml::sysml
