// Cost-based fusion planner — a three-stage explore/select/rewrite pipeline
// over the operator DAG, the way a declarative ML compiler picks fused
// operators.
//
//   1. EXPLORE walks the whole DAG once per template family and emits
//      OVERLAPPING FusionCandidate sets — the same node may appear in an
//      Equation-1 candidate, a row-template candidate, and an elementwise
//      region at the same time. Four families are registered:
//        - equation1: match_equation1 + Table-1 degenerations, filtered by
//          the materialization-point analysis;
//        - ewise_chain: maximal elementwise regions (kScale/kAdd/kEwiseMul/
//          kMap with region-internal interiors) collapsed into ONE generated
//          streaming kernel;
//        - row_template: a product (Mv over CSR or dense X) whose value
//          feeds a single-consumer elementwise epilogue — product + epilogue
//          in one launch (kernels/fused_row.h);
//        - sddmm: Mv(SparseMask(X, OuterMap(u, v, f)), z) — the
//          sparsity-exploiting rewrite that evaluates (X ⊙ f(u v^T)) * z
//          only at nnz(X) and never materializes the m*n outer map.
//   2. SELECT resolves overlaps with CSE-aware cost-based search. Every
//      candidate's benefit accounts for members that must stay materialized
//      because of consumers OUTSIDE the candidate (plus, transitively, the
//      member inputs those kept nodes need). Selection is EXACT maximum-
//      benefit weighted set packing (DFS with upper-bound pruning) while the
//      candidate count is within PlannerOptions::candidate_budget; larger
//      sets use benefit-ordered greedy with one-step lookahead. Candidates
//      that passed the filters but lost selection are reported in the plan.
//   3. REWRITE produces a FRESH DAG (the input is never mutated, so one
//      Runtime can execute both and compare) with each selected candidate
//      collapsed to its fused node, then re-costs the result.
//
// Every candidate is scored with the vgpu cost model (kernel launches at
// launch_overhead_us each, DRAM traffic at the device's effective
// bandwidth) using the per-op cost profiles the operator registry declares
// (kernels::op_profile).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sysml/dag.h"
#include "sysml/runtime.h"

namespace fusedml::sysml {

// PlannerOptions lives in sysml/runtime.h (the Runtime carries a copy so
// Program::prepare can plan with session-level knobs).

/// One chosen fusion group in the plan.
struct PlannedGroup {
  std::string kind;    ///< "equation1", "ewise_chain", "row_template", "sddmm"
  std::string detail;  ///< alpha/beta summary or the program signature
  int nodes_covered = 0;
  std::uint64_t launches_before = 0;
  std::uint64_t launches_after = 0;
  double modeled_before_ms = 0;
  double modeled_after_ms = 0;

  double benefit_ms() const { return modeled_before_ms - modeled_after_ms; }
};

/// A candidate that passed the profitability filters but lost the overlap
/// resolution to a better combination.
struct LostCandidate {
  std::string kind;
  std::string detail;
  double forgone_benefit_ms = 0;
};

struct FusionPlan {
  /// The rewritten DAG — fresh nodes; the planner never mutates its input.
  NodePtr root;
  std::vector<PlannedGroup> groups;

  /// Whole-DAG modeled totals (distinct reachable operator nodes).
  std::uint64_t launches_unfused = 0;
  std::uint64_t launches_planned = 0;
  double modeled_unfused_ms = 0;
  double modeled_planned_ms = 0;

  /// Equation-1 matches skipped by the materialization-point analysis.
  int rejected_multi_consumer = 0;

  /// Exploration bookkeeping: every candidate the template families emitted
  /// (before profitability filtering), and the ones that passed the filters
  /// but were not selected (top 3 by forgone benefit kept in `losers`).
  int candidates_enumerated = 0;
  int candidates_lost = 0;
  std::vector<LostCandidate> losers;

  /// True when the candidate count fit the budget and selection was exact
  /// (optimal weighted set packing); false = greedy with lookahead.
  bool selection_exact = true;

  /// Database-style plan text: one line per group plus the totals. Feed it
  /// to Runtime::note_plan() so Runtime::explain() shows plan + execution.
  std::string explain() const;
};

/// Plans fusion for the DAG rooted at `root`. `rt` supplies tensor shapes
/// (Runtime::tensor_info) and the device cost parameters; no ops execute.
FusionPlan plan_fusion(Runtime& rt, const NodePtr& root,
                       const PlannerOptions& opts = {});

}  // namespace fusedml::sysml
