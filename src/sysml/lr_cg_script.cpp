#include "sysml/lr_cg_script.h"

#include <cmath>
#include <utility>

#include "common/error.h"
#include "ml/logreg.h"
#include "sysml/dag.h"
#include "sysml/fusion_planner.h"

namespace fusedml::sysml {

const char* to_string(PlanMode mode) {
  switch (mode) {
    case PlanMode::kUnfused: return "unfused";
    case PlanMode::kHardcodedPass: return "hardcoded-pass";
    case PlanMode::kPlanner: return "planner";
  }
  return "?";
}

namespace {
template <typename Matrix>
ScriptResult run_impl(Runtime& rt, const Matrix& X,
                      std::span<const real> labels,
                      const ScriptConfig& config) {
  FUSEDML_CHECK(labels.size() == static_cast<usize>(X.rows()),
                "labels must have one entry per row");
  ScriptResult out;

  // V = read($1); y = read($2);
  Matrix Xcopy = X;
  TensorId Xid;
  if constexpr (std::is_same_v<Matrix, la::CsrMatrix>) {
    Xid = rt.add_sparse(std::move(Xcopy), "V");
  } else {
    Xid = rt.add_dense(std::move(Xcopy), "V");
  }
  const TensorId yid =
      rt.add_vector({labels.begin(), labels.end()}, "y");

  // r = -(t(V) %*% y);
  const TensorId rid = rt.op_transposed_product(Xid, yid, real{-1});

  // p = -r;  (scal(-1) on a copy)
  const TensorId pid =
      rt.add_vector({rt.read_vector(rid).begin(), rt.read_vector(rid).end()},
                    "p");
  rt.op_scal(real{-1}, pid);

  // nr2 = sum(r * r);
  real nr2 = rt.op_dot(rid, rid);
  const real nr2_target = nr2 * config.tolerance * config.tolerance;

  // w = matrix(0, ...)
  const TensorId wid = rt.new_vector(static_cast<usize>(X.cols()), "w");

  int i = 0;
  while (i < config.max_iterations && nr2 > nr2_target) {
    // q = ((t(V) %*% (V %*% p)) + eps * p);  — ONE pattern op; the runtime
    // transparently selects the fused kernel when the GPU wins.
    const TensorId qid = rt.op_pattern(real{1}, Xid, 0, pid, config.eps, pid);

    // alpha = nr2 / (t(p) %*% q);
    const real alpha = nr2 / rt.op_dot(pid, qid);

    // w = w + alpha * p;
    rt.op_axpy(alpha, pid, wid);

    // r = r + alpha * q;
    rt.op_axpy(alpha, qid, rid);

    // nr2 = sum(r * r); beta = nr2 / old_nr2;
    const real old_nr2 = nr2;
    nr2 = rt.op_dot(rid, rid);
    const real beta = nr2 / old_nr2;

    // p = -r + beta * p;
    rt.op_scal(beta, pid);
    rt.op_axpy(real{-1}, rid, pid);

    ++i;
  }

  const auto w = rt.read_vector(wid);
  out.weights.assign(w.begin(), w.end());
  out.iterations = i;
  out.runtime_stats = rt.stats();
  out.memory_stats = rt.memory_stats();
  out.end_to_end_ms = out.runtime_stats.total_ms();
  return out;
}
}  // namespace

ScriptResult run_lr_cg_script(Runtime& rt, const la::CsrMatrix& X,
                              std::span<const real> labels,
                              ScriptConfig config) {
  return run_impl(rt, X, labels, config);
}

ScriptResult run_lr_cg_script(Runtime& rt, const la::DenseMatrix& X,
                              std::span<const real> labels,
                              ScriptConfig config) {
  return run_impl(rt, X, labels, config);
}

using ml::stable_sigmoid;

ScriptResult run_logreg_gd_script(Runtime& rt, const la::CsrMatrix& X,
                                  std::span<const real> labels,
                                  GdConfig config) {
  FUSEDML_CHECK(labels.size() == static_cast<usize>(X.rows()),
                "labels must have one entry per row");
  ScriptResult out;
  const auto Xid = rt.add_sparse(X, "X");
  const auto yid = rt.add_vector({labels.begin(), labels.end()}, "y");
  // neg_y = -y (reused every iteration).
  const auto neg_yid =
      rt.add_vector({labels.begin(), labels.end()}, "neg_y");
  rt.op_scal(real{-1}, neg_yid);
  const auto wid = rt.new_vector(static_cast<usize>(X.cols()), "w");

  for (int it = 0; it < config.iterations; ++it) {
    // margins = X * w; r = sigma(-y ⊙ margins) ⊙ (-y)
    const auto margins = rt.op_map(
        rt.op_ewise_mul(neg_yid, rt.op_product(Xid, wid)), stable_sigmoid,
        "sigmoid");
    const auto r = rt.op_ewise_mul(margins, neg_yid);
    // g = X^T r + lambda * w  — the runtime sees mvT-of-(v⊙...) shapes and
    // executes them with the fused kernels on the device side.
    const auto gid = rt.op_transposed_product(Xid, r);
    rt.op_axpy(config.lambda, wid, gid);
    // w -= step * g
    rt.op_axpy(-config.step, gid, wid);
  }

  const auto w = rt.read_vector(wid);
  out.weights.assign(w.begin(), w.end());
  out.iterations = config.iterations;
  out.runtime_stats = rt.stats();
  out.memory_stats = rt.memory_stats();
  out.end_to_end_ms = out.runtime_stats.total_ms();
  (void)yid;
  return out;
}

namespace {

/// Prepares a per-iteration expression DAG according to the plan mode.
/// The DAG's leaves reference stable tensor ids whose VALUES update in
/// place, so preparation happens once and interpretation repeats.
NodePtr prepare_dag(Runtime& rt, NodePtr root, PlanMode mode,
                    ScriptResult& out) {
  switch (mode) {
    case PlanMode::kUnfused:
      return root;
    case PlanMode::kHardcodedPass: {
      FusionReport report;
      root = fuse_patterns(std::move(root), &report);
      out.fused_groups += report.patterns_fused;
      out.plan_explain = "hardcoded fuse_patterns: " +
                         std::to_string(report.patterns_fused) +
                         " pattern(s) fused";
      return root;
    }
    case PlanMode::kPlanner: {
      FusionPlan plan = plan_fusion(rt, root);
      out.fused_groups += static_cast<int>(plan.groups.size());
      out.plan_explain = plan.explain();
      rt.note_plan(out.plan_explain);
      // Arm the plan-vs-actual audit: the planner's per-execution launch
      // count and modeled cost become the prediction the DAG interpreter's
      // observations are checked against.
      rt.note_plan_prediction(plan.launches_planned, plan.modeled_planned_ms);
      return plan.root;
    }
  }
  return root;
}

void finish(Runtime& rt, TensorId wid, int iterations, ScriptResult& out) {
  const auto w = rt.read_vector(wid);
  out.weights.assign(w.begin(), w.end());
  out.iterations = iterations;
  out.runtime_stats = rt.stats();
  out.memory_stats = rt.memory_stats();
  out.end_to_end_ms = out.runtime_stats.total_ms();
  out.plan_audit = rt.plan_audit();
}

}  // namespace

ScriptResult run_lr_cg_dag_script(Runtime& rt, const la::CsrMatrix& X,
                                  std::span<const real> labels, PlanMode mode,
                                  ScriptConfig config) {
  FUSEDML_CHECK(labels.size() == static_cast<usize>(X.rows()),
                "labels must have one entry per row");
  ScriptResult out;
  const auto Xid = rt.add_sparse(X, "V");
  const auto yid = rt.add_vector({labels.begin(), labels.end()}, "y");

  // r = -(t(V) %*% y);  p = -r;  nr2 = sum(r*r);  w = 0
  const auto rid = rt.op_transposed_product(Xid, yid, real{-1});
  const auto pid =
      rt.add_vector({rt.read_vector(rid).begin(), rt.read_vector(rid).end()},
                    "p");
  rt.op_scal(real{-1}, pid);
  real nr2 = rt.op_dot(rid, rid);
  const real nr2_target = nr2 * config.tolerance * config.tolerance;
  const auto wid = rt.new_vector(static_cast<usize>(X.cols()), "w");

  // q = (t(V) %*% (V %*% p)) + eps*p — built as an explicit operator DAG
  // (what a declarative compiler would hand the fusion stage).
  const auto Xn = input_matrix(Xid);
  const auto pn = input_vector(pid);
  NodePtr q_root = add(mvt(Xn, mv(Xn, pn)), scale(config.eps, pn));
  q_root = prepare_dag(rt, std::move(q_root), mode, out);

  int i = 0;
  while (i < config.max_iterations && nr2 > nr2_target) {
    const TensorId qid = execute(rt, q_root);
    const real alpha = nr2 / rt.op_dot(pid, qid);
    rt.op_axpy(alpha, pid, wid);
    rt.op_axpy(alpha, qid, rid);
    const real old_nr2 = nr2;
    nr2 = rt.op_dot(rid, rid);
    const real beta = nr2 / old_nr2;
    rt.op_scal(beta, pid);
    rt.op_axpy(real{-1}, rid, pid);
    ++i;
  }
  finish(rt, wid, i, out);
  return out;
}

ScriptResult run_logreg_dag_script(Runtime& rt, const la::CsrMatrix& X,
                                   std::span<const real> labels, PlanMode mode,
                                   GdConfig config) {
  FUSEDML_CHECK(labels.size() == static_cast<usize>(X.rows()),
                "labels must have one entry per row");
  ScriptResult out;
  const auto Xid = rt.add_sparse(X, "X");
  const auto neg_yid =
      rt.add_vector({labels.begin(), labels.end()}, "neg_y");
  rt.op_scal(real{-1}, neg_yid);
  const auto wid = rt.new_vector(static_cast<usize>(X.cols()), "w");

  // g = t(X) %*% (sigma(-y ⊙ (X %*% w)) ⊙ -y) + lambda*w as one DAG. The
  // mul→sigmoid→mul run is an elementwise chain the planner collapses into
  // a single generated streaming kernel; so is the +lambda*w epilogue.
  const auto Xn = input_matrix(Xid);
  const auto wn = input_vector(wid);
  const auto nyn = input_vector(neg_yid);
  const NodePtr resid =
      ewise_mul(map(ewise_mul(nyn, mv(Xn, wn)), stable_sigmoid, "sigmoid"),
                nyn);
  NodePtr g_root = add(mvt(Xn, resid), scale(config.lambda, wn));
  g_root = prepare_dag(rt, std::move(g_root), mode, out);

  for (int it = 0; it < config.iterations; ++it) {
    const TensorId gid = execute(rt, g_root);
    rt.op_axpy(-config.step, gid, wid);  // w -= step * g
  }
  finish(rt, wid, config.iterations, out);
  return out;
}

}  // namespace fusedml::sysml
