// Listing 1 executed through the mini SystemML runtime — the Table 6
// experiment. Running with options.enable_gpu=false gives the SystemML-CPU
// baseline; enable_gpu=true gives the GPU-enabled system whose pattern ops
// transparently select the fused kernel.
#pragma once

#include <span>
#include <variant>
#include <vector>

#include "la/csr_matrix.h"
#include "la/dense_matrix.h"
#include "sysml/runtime.h"

namespace fusedml::sysml {

struct ScriptConfig {
  int max_iterations = 100;
  real eps = 0.001;
  real tolerance = 0.000001;
};

struct ScriptResult {
  std::vector<real> weights;
  int iterations = 0;
  RuntimeStats runtime_stats;
  MemoryStats memory_stats;
  double end_to_end_ms = 0.0;  ///< runtime_stats.total_ms()
};

/// Runs the Listing-1 LR-CG script on a runtime over sparse or dense data.
ScriptResult run_lr_cg_script(Runtime& rt, const la::CsrMatrix& X,
                              std::span<const real> labels,
                              ScriptConfig config = {});
ScriptResult run_lr_cg_script(Runtime& rt, const la::DenseMatrix& X,
                              std::span<const real> labels,
                              ScriptConfig config = {});

/// A second declarative script: logistic regression by gradient descent
/// (labels in {-1,+1}), exercising the runtime's unary-map op alongside
/// the pattern operators:
///   g = X^T * (sigma(-y ⊙ (X*w)) ⊙ (-y)) + lambda*w;  w -= step * g
struct GdConfig {
  int iterations = 50;
  real step = 0.5;
  real lambda = 0.01;
};

ScriptResult run_logreg_gd_script(Runtime& rt, const la::CsrMatrix& X,
                                  std::span<const real> labels,
                                  GdConfig config = {});

}  // namespace fusedml::sysml
