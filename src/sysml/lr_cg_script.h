// Listing 1 executed through the mini SystemML runtime — the Table 6
// experiment. Running with options.enable_gpu=false gives the SystemML-CPU
// baseline; enable_gpu=true gives the GPU-enabled system whose pattern ops
// transparently select the fused kernel.
#pragma once

#include <span>
#include <variant>
#include <vector>

#include "la/csr_matrix.h"
#include "la/dense_matrix.h"
#include "sysml/runtime.h"

namespace fusedml::sysml {

struct ScriptConfig {
  int max_iterations = 100;
  real eps = 0.001;
  real tolerance = 0.000001;
};

struct ScriptResult {
  std::vector<real> weights;
  int iterations = 0;
  RuntimeStats runtime_stats;
  MemoryStats memory_stats;
  double end_to_end_ms = 0.0;  ///< runtime_stats.total_ms()
  // DAG scripts only: how the expression graph was prepared.
  std::string plan_explain;  ///< the chosen plan (see FusionPlan::explain)
  int fused_groups = 0;      ///< fusion groups (pattern or ewise) applied
  /// Plan-vs-actual audit (planner mode only; has_prediction false
  /// otherwise). Zero launch_drift() means the planner's view of the DAG
  /// matches what the interpreter actually launched.
  obs::PlanAudit plan_audit;
};

/// How a DAG script's expression graph is prepared before interpretation.
enum class PlanMode {
  kUnfused,        ///< operator-at-a-time; no rewrite
  kHardcodedPass,  ///< the fixed Equation-1 fuse_patterns() rewrite
  kPlanner,        ///< the cost-based fusion planner (fusion_planner.h)
};
const char* to_string(PlanMode mode);

/// Runs the Listing-1 LR-CG script on a runtime over sparse or dense data.
ScriptResult run_lr_cg_script(Runtime& rt, const la::CsrMatrix& X,
                              std::span<const real> labels,
                              ScriptConfig config = {});
ScriptResult run_lr_cg_script(Runtime& rt, const la::DenseMatrix& X,
                              std::span<const real> labels,
                              ScriptConfig config = {});

/// A second declarative script: logistic regression by gradient descent
/// (labels in {-1,+1}), exercising the runtime's unary-map op alongside
/// the pattern operators:
///   g = X^T * (sigma(-y ⊙ (X*w)) ⊙ (-y)) + lambda*w;  w -= step * g
struct GdConfig {
  int iterations = 50;
  real step = 0.5;
  real lambda = 0.01;
};

ScriptResult run_logreg_gd_script(Runtime& rt, const la::CsrMatrix& X,
                                  std::span<const real> labels,
                                  GdConfig config = {});

// --- DAG-building variants ---------------------------------------------------
// The same algorithms written the way a declarative compiler sees them: the
// per-iteration expression is built as an operator DAG (sysml/dag.h) and
// prepared ONCE by the selected PlanMode — unfused interpretation, the
// hardcoded Equation-1 pass, or the cost-based planner — then interpreted
// every iteration. Identical math across modes; kUnfused vs kPlanner on the
// logreg script is bit-exact (only elementwise chains fuse there).

/// Listing-1 LR-CG with q = (t(V) %*% (V %*% p)) + eps*p as an explicit DAG.
ScriptResult run_lr_cg_dag_script(Runtime& rt, const la::CsrMatrix& X,
                                  std::span<const real> labels, PlanMode mode,
                                  ScriptConfig config = {});

/// Logistic-regression gradient descent with the whole gradient
///   g = t(X) %*% (sigma(-y ⊙ (X %*% w)) ⊙ -y) + lambda*w
/// as one DAG per iteration — a sigmoid elementwise chain the planner
/// collapses into a generated kernel.
ScriptResult run_logreg_dag_script(Runtime& rt, const la::CsrMatrix& X,
                                   std::span<const real> labels, PlanMode mode,
                                   GdConfig config = {});

}  // namespace fusedml::sysml
