#include "sysml/runtime.h"

#include <algorithm>
#include <sstream>

#include "common/cli.h"
#include "common/error.h"
#include "common/log.h"
#include "kernels/streaming.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fusedml::sysml {

PlannerOptions planner_options_from_cli(Cli& cli) {
  PlannerOptions po;
  po.candidate_budget = static_cast<int>(cli.get_int(
      "planner-budget", po.candidate_budget,
      "exact overlap resolution up to this many candidates"));
  po.min_benefit_ms = cli.get_double(
      "planner-min-benefit", po.min_benefit_ms,
      "modeled ms a candidate must save to be selected");
  po.enable_pattern_fusion = cli.get_bool(
      "planner-eq1", po.enable_pattern_fusion, "Equation-1 template family");
  po.enable_ewise_fusion = cli.get_bool(
      "planner-ewise", po.enable_ewise_fusion, "elementwise-chain family");
  po.enable_row_fusion = cli.get_bool(
      "planner-row", po.enable_row_fusion, "row-template family");
  po.enable_sddmm_fusion = cli.get_bool(
      "planner-sddmm", po.enable_sddmm_fusion, "sddmm template family");
  return po;
}

Runtime::Runtime(vgpu::Device& dev, RuntimeOptions opts)
    : dev_(dev),
      opts_(opts),
      mm_(dev, opts.device_capacity),
      registry_(dev, 8) {}

TensorId Runtime::store(Value v, usize bytes, std::string name) {
  const TensorId id = next_id_++;
  values_.emplace(id, std::move(v));
  native_[id] = false;
  mm_.register_tensor(id, bytes, std::move(name));
  return id;
}

TensorId Runtime::add_sparse(la::CsrMatrix X, std::string name) {
  const usize bytes = X.bytes();
  return store(Value{std::move(X)}, bytes, std::move(name));
}

TensorId Runtime::add_dense(la::DenseMatrix X, std::string name) {
  const usize bytes = X.bytes();
  return store(Value{std::move(X)}, bytes, std::move(name));
}

TensorId Runtime::add_vector(std::vector<real> v, std::string name) {
  const usize bytes = v.size() * sizeof(real);
  return store(Value{std::move(v)}, bytes, std::move(name));
}

TensorId Runtime::new_vector(usize n, std::string name) {
  return add_vector(std::vector<real>(n, real{0}), std::move(name));
}

Runtime::Value& Runtime::value(TensorId id) {
  const auto it = values_.find(id);
  FUSEDML_CHECK(it != values_.end(), "unknown tensor id");
  return it->second;
}

std::vector<real>& Runtime::vec(TensorId id) {
  auto* v = std::get_if<std::vector<real>>(&value(id));
  FUSEDML_CHECK(v != nullptr, "tensor is not a vector");
  return *v;
}

const la::CsrMatrix* Runtime::sparse(TensorId id) {
  return std::get_if<la::CsrMatrix>(&value(id));
}

const la::DenseMatrix* Runtime::dense(TensorId id) {
  return std::get_if<la::DenseMatrix>(&value(id));
}

usize Runtime::tensor_bytes(TensorId id) {
  const Value& v = value(id);
  if (const auto* s = std::get_if<la::CsrMatrix>(&v)) return s->bytes();
  if (const auto* d = std::get_if<la::DenseMatrix>(&v)) return d->bytes();
  return std::get<std::vector<real>>(v).size() * sizeof(real);
}

TensorInfo Runtime::tensor_info(TensorId id) {
  TensorInfo info;
  const Value& v = value(id);
  info.bytes = tensor_bytes(id);
  if (const auto* s = std::get_if<la::CsrMatrix>(&v)) {
    info.is_matrix = true;
    info.is_sparse = true;
    info.rows = s->rows();
    info.cols = s->cols();
    info.nnz = static_cast<std::uint64_t>(s->nnz());
  } else if (const auto* d = std::get_if<la::DenseMatrix>(&v)) {
    info.is_matrix = true;
    info.rows = d->rows();
    info.cols = d->cols();
  } else {
    info.rows =
        static_cast<index_t>(std::get<std::vector<real>>(v).size());
  }
  return info;
}

bool Runtime::stage_on_device(TensorId id) {
  if (!opts_.enable_gpu) return false;
  if (!native_[id]) {
    // First device contact: pay the JNI representation change + heap copy.
    const Value& v = value(id);
    JniCharge charge;
    if (const auto* s = std::get_if<la::CsrMatrix>(&v)) {
      charge = jni_.sparse_to_native(*s);
    } else if (const auto* d = std::get_if<la::DenseMatrix>(&v)) {
      charge = jni_.dense_to_native(*d);
    } else {
      charge = jni_.vector_to_native(std::get<std::vector<real>>(v).size());
    }
    stats_.jni_ms += charge.total_ms();
    if (obs::recorder().enabled()) {
      obs::TraceEvent ev;
      ev.name = "jni_convert";
      ev.cat = "jni";
      ev.track = obs::Track::kPcie;
      ev.dur_ms = charge.total_ms();
      ev.ts_ms = obs::recorder().advance_ms(charge.total_ms());
      obs::recorder().record(std::move(ev));
    }
    if (obs::metrics().enabled()) {
      obs::metrics().counter("runtime.jni_conversions").add();
      obs::metrics().gauge("runtime.jni_ms").add(charge.total_ms());
    }
    native_[id] = true;
  }
  stats_.transfer_ms += mm_.ensure_on_device(id);
  return true;
}

void Runtime::sync_to_host(TensorId id) {
  stats_.transfer_ms += mm_.ensure_on_host(id);
}

double Runtime::estimate_gpu_ms(usize bytes_touched, TensorId) {
  // Streaming heuristic at effective device bandwidth, plus launch overhead.
  const double bw =
      dev_.spec().mem_bandwidth_gbs * 0.8;  // GB/s == bytes/ns
  return (static_cast<double>(bytes_touched) / bw / 1e6 + 0.005) *
         opts_.gpu_cost_bias;
}

double Runtime::estimate_cpu_ms(usize bytes_touched) {
  const double bw = cpu().threads() > 1 ? 21.8 : 8.0;
  return static_cast<double>(bytes_touched) / bw / 1e6 + 0.002;
}

bool Runtime::choose_gpu_span(usize bytes_touched,
                              std::span<const TensorId> inputs) {
  if (!opts_.enable_gpu) return false;
  double gpu = estimate_gpu_ms(bytes_touched, 0);
  double cpu = estimate_cpu_ms(bytes_touched);
  for (TensorId id : inputs) {
    if (id == 0) continue;
    // Over-capacity tensors can never become resident; only op_pattern has
    // a streaming route, every other op runs on the host.
    if (mm_.needs_streaming(id)) return false;
    const usize b = tensor_bytes(id);
    if (!mm_.on_device(id) ||
        mm_.residency(id) == Residency::kHostDirty) {
      gpu += static_cast<double>(b) / dev_.spec().pcie_bandwidth_gbs / 1e6 /
             std::max(1.0, opts_.transfer_amortization);
    }
    if (mm_.on_device(id) && mm_.residency(id) == Residency::kDeviceDirty) {
      cpu += static_cast<double>(b) / dev_.spec().pcie_bandwidth_gbs / 1e6;
    }
  }
  FUSEDML_LOG_DEBUG << "scheduler: " << bytes_touched << "B op -> "
                    << (gpu < cpu ? "GPU" : "CPU") << " (est gpu=" << gpu
                    << "ms cpu=" << cpu << "ms)";
  return gpu < cpu;
}

bool Runtime::choose_gpu(usize bytes_touched,
                         std::initializer_list<TensorId> inputs) {
  return choose_gpu_span(bytes_touched,
                         {inputs.begin(), inputs.size()});
}

kernels::KernelOutcome Runtime::run_resilient(
    kernels::Backend preferred,
    const std::function<kernels::KernelOutcome(kernels::Backend)>& attempt,
    std::span<real> inout) {
  if (deadline_ms_ <= 0.0) {
    return registry_.execute_resilient(preferred, retry_, attempt, inout,
                                       &resilience_);
  }
  const double spent_ms = stats_.total_ms();
  if (spent_ms >= deadline_ms_) {
    throw DeadlineError("script modeled deadline exceeded before op dispatch (" +
                        std::to_string(spent_ms) + " of " +
                        std::to_string(deadline_ms_) + " ms spent)");
  }
  // Clamp the per-dispatch retry budget to the deadline headroom so a fault
  // storm cannot backoff past the deadline inside one op.
  RetryPolicy policy = retry_;
  const double remaining_ms = deadline_ms_ - spent_ms;
  policy.max_total_overhead_ms =
      policy.max_total_overhead_ms > 0.0
          ? std::min(policy.max_total_overhead_ms, remaining_ms)
          : remaining_ms;
  return registry_.execute_resilient(preferred, policy, attempt, inout,
                                     &resilience_);
}

void Runtime::book(const kernels::KernelOutcome& outcome, const char* op,
                   bool pattern_class) {
  const bool on_gpu = outcome.backend_used != kernels::Backend::kCpu;
  // Fault-recovery overhead (wasted attempts + retry backoff) is carried
  // inside outcome.modeled_ms; book it separately so the success-path
  // metrics (the Table-6 speedup inputs) match a clean run of the same
  // script, fault injection or not.
  const double overhead = outcome.resilience.overhead_ms();
  const double clean_ms = outcome.modeled_ms - overhead;
  stats_.resilience_overhead_ms += overhead;
  if (on_gpu) {
    stats_.gpu_kernel_ms += clean_ms;
    stats_.kernel_launches += outcome.launches;
    ++stats_.gpu_ops;
    if (pattern_class) stats_.pattern_gpu_ms += clean_ms;
    // ABFT verification sub-bucket (already inside launches/clean_ms).
    stats_.verify_launches += outcome.verify_launches;
    stats_.verify_ms += outcome.verify_ms;
  } else {
    stats_.cpu_op_ms += clean_ms;
    ++stats_.cpu_ops;
  }
  if (obs::metrics().enabled()) {
    auto& m = obs::metrics();
    m.counter(on_gpu ? "runtime.gpu_ops" : "runtime.cpu_ops").add();
    if (overhead > 0.0) {
      m.gauge("runtime.resilience_overhead_ms").add(overhead);
    }
  }
  record_trace(op, on_gpu, outcome.modeled_ms);
}

void Runtime::note_plan_prepare(double host_ms, bool cache_hit) {
  stats_.plan_host_ms += host_ms;
  if (obs::metrics().enabled()) {
    auto& m = obs::metrics();
    m.counter(cache_hit ? "runtime.plan_cache_hits" : "runtime.plans_built")
        .add();
    m.gauge("runtime.plan_host_ms").add(host_ms);
  }
  if (obs::recorder().enabled()) {
    // Instant marker: planning is host work, so it gets zero modeled
    // duration — the host cost rides along as an arg.
    obs::TraceEvent ev;
    ev.name = cache_hit ? "plan:cache_hit" : "plan:build";
    ev.cat = "plan";
    ev.track = obs::Track::kServe;
    ev.ts_ms = obs::recorder().now_ms();
    ev.num_args.emplace_back("host_ms", host_ms);
    obs::recorder().record(std::move(ev));
  }
}

TensorId Runtime::emit(std::vector<real> w, bool on_gpu, std::string name) {
  const TensorId out = add_vector(std::move(w), std::move(name));
  if (on_gpu) {
    native_[out] = true;  // born in native/device space
    stats_.transfer_ms += mm_.allocate_on_device(out);
  }
  return out;
}

TensorId Runtime::op_pattern(real alpha, TensorId Xid, TensorId vid,
                             TensorId yid, real beta, TensorId zid) {
  obs::TraceSpan span("op:pattern", "op", obs::Track::kOps);
  const usize xbytes = tensor_bytes(Xid);
  std::span<const real> v =
      vid == 0 ? std::span<const real>{} : std::span<const real>(vec(vid));
  std::span<const real> z =
      zid == 0 ? std::span<const real>{} : std::span<const real>(vec(zid));
  const std::vector<real>& y = vec(yid);

  const auto* Xs = sparse(Xid);
  const auto* Xd = dense(Xid);
  FUSEDML_CHECK(Xs != nullptr || Xd != nullptr, "pattern needs a matrix");

  if (opts_.enable_gpu && mm_.needs_streaming(Xid)) {
    // X does not fit on the device even alone: instead of failing (or
    // forcing the CPU), stream it through the device panel by panel. The
    // result is bit-equivalent to the in-core fused kernel.
    mm_.note_streaming_fallback();
    kernels::StreamingResult sr;
    if (Xs != nullptr) {
      kernels::StreamingOptions sopts;
      sopts.device_budget_bytes = mm_.capacity();
      sr = kernels::streaming_pattern_sparse(dev_, alpha, *Xs, v, y, beta, z,
                                             sopts);
    } else {
      kernels::DenseStreamingOptions sopts;
      sopts.device_budget_bytes = mm_.capacity();
      sr = kernels::streaming_pattern_dense(dev_, alpha, *Xd, v, y, beta, z,
                                            sopts);
    }
    // Streaming launches bypass the registry dispatch bodies — consume the
    // device's silent-corruption handshake here, and (when the verify
    // policy samples this op) prove the merged result before booking it.
    registry_.consume_streamed_corruption(sr.op.value);
    if (registry_.verifier().arm()) {
      try {
        const auto charge =
            Xs != nullptr
                ? registry_.verifier().check_pattern(sr.op.value, alpha, *Xs,
                                                     v, y, beta, z)
                : registry_.verifier().check_pattern(sr.op.value, alpha, *Xd,
                                                     v, y, beta, z);
        sr.kernel_ms += charge.modeled_ms;
        sr.op.launches += charge.launches;
        stats_.verify_launches += charge.launches;
        stats_.verify_ms += charge.modeled_ms;
        resilience_.verify_launches += charge.launches;
        resilience_.verify_ms += charge.modeled_ms;
      } catch (const SilentCorruptionError& e) {
        // Tainted panel: the whole streamed pipeline is wasted. Recompute
        // on the CPU — the terminal tier silent corruption cannot reach.
        ++resilience_.faults_seen;
        ++resilience_.sdc_detected;
        ++resilience_.recoveries;
        const double wasted = sr.kernel_ms + e.penalty_ms();
        resilience_.wasted_ms += wasted;
        stats_.resilience_overhead_ms += wasted;
        stats_.transfer_ms += sr.transfer_ms;
        if (obs::metrics().enabled()) {
          obs::metrics().counter("dispatch.sdc_detected").add();
        }
        auto op = Xs != nullptr ? cpu().pattern(alpha, *Xs, v, y, beta, z)
                                : cpu().pattern(alpha, *Xd, v, y, beta, z);
        stats_.cpu_op_ms += op.modeled_ms;
        ++stats_.cpu_ops;
        record_trace("pattern (streamed, sdc recompute)", false,
                     op.modeled_ms);
        return add_vector(std::move(op.value), "pattern_out");
      }
    }
    stats_.gpu_kernel_ms += sr.kernel_ms;
    stats_.pattern_gpu_ms += sr.kernel_ms;
    stats_.transfer_ms += sr.transfer_ms;
    stats_.kernel_launches += sr.op.launches;
    ++stats_.gpu_ops;
    record_trace("pattern (streamed)", true, sr.pipeline_ms);
    stats_.pattern_cpu_equiv_ms +=
        Xs != nullptr ? cpu().pattern(alpha, *Xs, v, y, beta, z).modeled_ms
                      : cpu().pattern(alpha, *Xd, v, y, beta, z).modeled_ms;
    // The streamed result lives on the host (partials were merged there).
    return add_vector(std::move(sr.op.value), "pattern_out");
  }

  const bool gpu = choose_gpu(2 * xbytes, {Xid, vid, yid, zid});
  if (gpu) {
    stage_on_device(Xid);
    if (vid != 0) stage_on_device(vid);
    stage_on_device(yid);
    if (zid != 0) stage_on_device(zid);
  } else {
    for (TensorId id : {Xid, vid, yid, zid}) {
      if (id != 0) sync_to_host(id);
    }
  }

  auto o = run_resilient(
      gpu ? kernels::Backend::kFused : kernels::Backend::kCpu,
      [&](kernels::Backend b) {
        return Xs != nullptr
                   ? registry_.pattern(b, alpha, *Xs, v, y, beta, z)
                   : registry_.pattern(b, alpha, *Xd, v, y, beta, z);
      });
  book(o, "pattern", true);
  const bool on_gpu = o.backend_used != kernels::Backend::kCpu;
  if (on_gpu) {
    // What the same op would have cost on the CPU (Table 6 row 2).
    stats_.pattern_cpu_equiv_ms +=
        Xs != nullptr ? cpu().pattern(alpha, *Xs, v, y, beta, z).modeled_ms
                      : cpu().pattern(alpha, *Xd, v, y, beta, z).modeled_ms;
  }
  return emit(std::move(o.value), on_gpu, "pattern_out");
}

TensorId Runtime::op_transposed_product(TensorId Xid, TensorId yid,
                                        real alpha) {
  obs::TraceSpan span("op:transposed_product", "op", obs::Track::kOps);
  const usize xbytes = tensor_bytes(Xid);
  const std::vector<real>& y = vec(yid);
  const bool gpu = choose_gpu(xbytes, {Xid, yid});
  const auto* Xs = sparse(Xid);
  const auto* Xd = dense(Xid);
  FUSEDML_CHECK(Xs != nullptr || Xd != nullptr,
                "transposed product needs a matrix");

  if (gpu) {
    stage_on_device(Xid);
    stage_on_device(yid);
  } else {
    sync_to_host(Xid);
    sync_to_host(yid);
  }
  auto o = run_resilient(
      gpu ? kernels::Backend::kFused : kernels::Backend::kCpu,
      [&](kernels::Backend b) {
        return Xs != nullptr
                   ? registry_.transposed_product(b, *Xs, y, alpha)
                   : registry_.transposed_product(b, *Xd, y, alpha);
      });
  book(o, "transposed_product", true);
  const bool on_gpu = o.backend_used != kernels::Backend::kCpu;
  if (on_gpu) {
    stats_.pattern_cpu_equiv_ms += Xs != nullptr
                                       ? cpu().spmv_t(*Xs, y).modeled_ms
                                       : cpu().gemv_t(*Xd, y).modeled_ms;
  }
  return emit(std::move(o.value), on_gpu, "xty_out");
}

TensorId Runtime::op_product(TensorId Xid, TensorId yid) {
  obs::TraceSpan span("op:product", "op", obs::Track::kOps);
  const usize xbytes = tensor_bytes(Xid);
  const std::vector<real>& y = vec(yid);
  const bool gpu = choose_gpu(xbytes, {Xid, yid});
  const auto* Xs = sparse(Xid);
  const auto* Xd = dense(Xid);
  FUSEDML_CHECK(Xs != nullptr || Xd != nullptr, "product needs a matrix");

  if (gpu) {
    stage_on_device(Xid);
    stage_on_device(yid);
  } else {
    sync_to_host(Xid);
    sync_to_host(yid);
  }
  auto o = run_resilient(
      gpu ? kernels::Backend::kFused : kernels::Backend::kCpu,
      [&](kernels::Backend b) {
        return Xs != nullptr ? registry_.product(b, *Xs, y)
                             : registry_.product(b, *Xd, y);
      });
  book(o, "product", false);
  return emit(std::move(o.value), o.backend_used != kernels::Backend::kCpu,
              "product_out");
}

void Runtime::op_axpy(real alpha, TensorId xid, TensorId yid) {
  obs::TraceSpan span("op:axpy", "op", obs::Track::kOps);
  const std::vector<real>& x = vec(xid);
  std::vector<real>& y = vec(yid);
  const bool gpu = choose_gpu(3 * x.size() * sizeof(real), {xid, yid});
  if (gpu) {
    stage_on_device(xid);
    stage_on_device(yid);
  } else {
    sync_to_host(xid);
    sync_to_host(yid);
  }
  auto o = run_resilient(
      gpu ? kernels::Backend::kFused : kernels::Backend::kCpu,
      [&](kernels::Backend b) { return registry_.axpy(b, alpha, x, y); }, y);
  book(o, "axpy", false);
  if (o.backend_used != kernels::Backend::kCpu) {
    mm_.mark_device_dirty(yid);
    // Host copy already updated functionally; device is authoritative.
  } else if (mm_.on_device(yid)) {
    mm_.mark_host_dirty(yid);
  }
}

TensorId Runtime::op_ewise_mul(TensorId xid, TensorId yid) {
  obs::TraceSpan span("op:ewise_mul", "op", obs::Track::kOps);
  const std::vector<real>& x = vec(xid);
  const std::vector<real>& y = vec(yid);
  const bool gpu = choose_gpu(3 * x.size() * sizeof(real), {xid, yid});
  if (gpu) {
    stage_on_device(xid);
    stage_on_device(yid);
  } else {
    sync_to_host(xid);
    sync_to_host(yid);
  }
  auto o = run_resilient(
      gpu ? kernels::Backend::kFused : kernels::Backend::kCpu,
      [&](kernels::Backend b) { return registry_.ewise_mul(b, x, y); });
  book(o, "ewise_mul", false);
  return emit(std::move(o.value), o.backend_used != kernels::Backend::kCpu,
              "ewise_out");
}

TensorId Runtime::op_map(TensorId xid, real (*f)(real),
                         const std::string& name) {
  obs::TraceSpan span("op:" + name, "op", obs::Track::kOps);
  const std::vector<real>& x = vec(xid);
  const bool gpu = choose_gpu(2 * x.size() * sizeof(real), {xid});
  if (gpu) {
    stage_on_device(xid);
  } else {
    sync_to_host(xid);
  }
  auto o = run_resilient(
      gpu ? kernels::Backend::kFused : kernels::Backend::kCpu,
      [&](kernels::Backend b) { return registry_.map(b, x, f, name); });
  book(o, name.c_str(), false);
  return emit(std::move(o.value), o.backend_used != kernels::Backend::kCpu,
              name + "_out");
}

TensorId Runtime::op_fused_ewise(const kernels::EwiseProgram& program,
                                 std::span<const TensorId> inputs,
                                 const std::string& name) {
  FUSEDML_CHECK(inputs.size() == static_cast<usize>(program.num_inputs),
                "op_fused_ewise: input-count mismatch");
  obs::TraceSpan span("op:" + name, "op", obs::Track::kOps);
  std::vector<std::span<const real>> views;
  views.reserve(inputs.size());
  usize n = 0;
  for (TensorId id : inputs) {
    const std::vector<real>& x = vec(id);
    n = x.size();
    views.emplace_back(x);
  }
  const usize bytes = (inputs.size() + 1) * n * sizeof(real);
  const bool gpu = choose_gpu_span(bytes, inputs);
  for (TensorId id : inputs) {
    if (gpu) {
      stage_on_device(id);
    } else {
      sync_to_host(id);
    }
  }
  auto o = run_resilient(
      gpu ? kernels::Backend::kFused : kernels::Backend::kCpu,
      [&](kernels::Backend b) {
        return registry_.fused_ewise(b, program, views);
      });
  book(o, name.c_str(), false);
  return emit(std::move(o.value), o.backend_used != kernels::Backend::kCpu,
              name + "_out");
}

TensorId Runtime::op_outer_map(TensorId uid, TensorId vid, real (*f)(real),
                               const std::string& name) {
  obs::TraceSpan span("op:outer_map", "op", obs::Track::kOps);
  const std::vector<real>& u = vec(uid);
  const std::vector<real>& v = vec(vid);
  const usize out_bytes = u.size() * v.size() * sizeof(real);
  const bool gpu = choose_gpu(2 * out_bytes, {uid, vid});
  if (gpu) {
    stage_on_device(uid);
    stage_on_device(vid);
  } else {
    sync_to_host(uid);
    sync_to_host(vid);
  }
  auto o = run_resilient(
      gpu ? kernels::Backend::kFused : kernels::Backend::kCpu,
      [&](kernels::Backend b) { return registry_.outer_map(b, u, v, f, name); });
  book(o, "outer_map", false);
  return emit(std::move(o.value), o.backend_used != kernels::Backend::kCpu,
              "outer_map_out");
}

TensorId Runtime::op_sparse_mask(TensorId Xid, TensorId omid) {
  obs::TraceSpan span("op:sparse_mask", "op", obs::Track::kOps);
  const usize xbytes = tensor_bytes(Xid);
  const std::vector<real>& om = vec(omid);
  const auto* Xs = sparse(Xid);
  const auto* Xd = dense(Xid);
  FUSEDML_CHECK(Xs != nullptr || Xd != nullptr, "sparse_mask needs a matrix");
  const bool gpu = choose_gpu(xbytes + om.size() * sizeof(real), {Xid, omid});
  if (gpu) {
    stage_on_device(Xid);
    stage_on_device(omid);
  } else {
    sync_to_host(Xid);
    sync_to_host(omid);
  }
  auto o = run_resilient(
      gpu ? kernels::Backend::kFused : kernels::Backend::kCpu,
      [&](kernels::Backend b) {
        return Xs != nullptr ? registry_.sparse_mask(b, *Xs, om)
                             : registry_.sparse_mask(b, *Xd, om);
      });
  book(o, "sparse_mask", false);
  return emit(std::move(o.value), o.backend_used != kernels::Backend::kCpu,
              "sparse_mask_out");
}

TensorId Runtime::op_masked_product(TensorId Xid, TensorId valsid,
                                    TensorId zid) {
  obs::TraceSpan span("op:masked_product", "op", obs::Track::kOps);
  const usize xbytes = tensor_bytes(Xid);
  const std::vector<real>& vals = vec(valsid);
  const std::vector<real>& z = vec(zid);
  const auto* Xs = sparse(Xid);
  const auto* Xd = dense(Xid);
  FUSEDML_CHECK(Xs != nullptr || Xd != nullptr,
                "masked product needs a matrix");
  const bool gpu = choose_gpu(xbytes, {Xid, valsid, zid});
  if (gpu) {
    stage_on_device(Xid);
    stage_on_device(valsid);
    stage_on_device(zid);
  } else {
    sync_to_host(Xid);
    sync_to_host(valsid);
    sync_to_host(zid);
  }
  auto o = run_resilient(
      gpu ? kernels::Backend::kFused : kernels::Backend::kCpu,
      [&](kernels::Backend b) {
        return Xs != nullptr ? registry_.masked_product(b, *Xs, vals, z)
                             : registry_.masked_product(b, *Xd, vals, z);
      });
  book(o, "masked_product", false);
  return emit(std::move(o.value), o.backend_used != kernels::Backend::kCpu,
              "masked_product_out");
}

TensorId Runtime::op_fused_row(TensorId Xid, TensorId yid,
                               const kernels::EwiseProgram& program,
                               std::span<const TensorId> ext) {
  FUSEDML_CHECK(ext.size() + 1 == static_cast<usize>(program.num_inputs),
                "op_fused_row: external input count mismatch");
  obs::TraceSpan span("op:fused_row", "op", obs::Track::kOps);
  const usize xbytes = tensor_bytes(Xid);
  const std::vector<real>& y = vec(yid);
  const auto* Xs = sparse(Xid);
  const auto* Xd = dense(Xid);
  FUSEDML_CHECK(Xs != nullptr || Xd != nullptr, "fused row needs a matrix");
  std::vector<std::span<const real>> views;
  std::vector<TensorId> all_inputs = {Xid, yid};
  views.reserve(ext.size());
  for (TensorId id : ext) {
    views.emplace_back(vec(id));
    all_inputs.push_back(id);
  }
  const bool gpu = choose_gpu_span(xbytes, all_inputs);
  for (TensorId id : all_inputs) {
    if (gpu) {
      stage_on_device(id);
    } else {
      sync_to_host(id);
    }
  }
  auto o = run_resilient(
      gpu ? kernels::Backend::kFused : kernels::Backend::kCpu,
      [&](kernels::Backend b) {
        return Xs != nullptr ? registry_.fused_row(b, *Xs, y, program, views)
                             : registry_.fused_row(b, *Xd, y, program, views);
      });
  book(o, "fused_row", false);
  return emit(std::move(o.value), o.backend_used != kernels::Backend::kCpu,
              "fused_row_out");
}

TensorId Runtime::op_fused_sddmm(TensorId Xid, TensorId uid, TensorId vid,
                                 TensorId zid, real (*f)(real),
                                 const std::string& name) {
  obs::TraceSpan span("op:fused_sddmm", "op", obs::Track::kOps);
  const usize xbytes = tensor_bytes(Xid);
  const std::vector<real>& u = vec(uid);
  const std::vector<real>& v = vec(vid);
  const std::vector<real>& z = vec(zid);
  const auto* Xs = sparse(Xid);
  const auto* Xd = dense(Xid);
  FUSEDML_CHECK(Xs != nullptr || Xd != nullptr, "fused sddmm needs a matrix");
  const bool gpu = choose_gpu(xbytes, {Xid, uid, vid, zid});
  for (TensorId id : {Xid, uid, vid, zid}) {
    if (gpu) {
      stage_on_device(id);
    } else {
      sync_to_host(id);
    }
  }
  auto o = run_resilient(
      gpu ? kernels::Backend::kFused : kernels::Backend::kCpu,
      [&](kernels::Backend b) {
        return Xs != nullptr
                   ? registry_.fused_sddmm(b, *Xs, u, v, z, f, name)
                   : registry_.fused_sddmm(b, *Xd, u, v, z, f, name);
      });
  book(o, "fused_sddmm", false);
  return emit(std::move(o.value), o.backend_used != kernels::Backend::kCpu,
              "fused_sddmm_out");
}

real Runtime::op_dot(TensorId xid, TensorId yid) {
  obs::TraceSpan span("op:dot", "op", obs::Track::kOps);
  const std::vector<real>& x = vec(xid);
  const std::vector<real>& y = vec(yid);
  const bool gpu = choose_gpu(2 * x.size() * sizeof(real), {xid, yid});
  if (gpu) {
    stage_on_device(xid);
    stage_on_device(yid);
  } else {
    sync_to_host(xid);
    sync_to_host(yid);
  }
  auto o = run_resilient(
      gpu ? kernels::Backend::kFused : kernels::Backend::kCpu,
      [&](kernels::Backend b) { return registry_.dot(b, x, y); });
  book(o, "dot", false);
  return o.value[0];
}

real Runtime::op_nrm2(TensorId xid) {
  obs::TraceSpan span("op:nrm2", "op", obs::Track::kOps);
  const std::vector<real>& x = vec(xid);
  const bool gpu = choose_gpu(x.size() * sizeof(real), {xid});
  if (gpu) {
    stage_on_device(xid);
  } else {
    sync_to_host(xid);
  }
  auto o = run_resilient(
      gpu ? kernels::Backend::kFused : kernels::Backend::kCpu,
      [&](kernels::Backend b) { return registry_.nrm2(b, x); });
  book(o, "nrm2", false);
  return o.value[0];
}

void Runtime::op_scal(real alpha, TensorId xid) {
  obs::TraceSpan span("op:scal", "op", obs::Track::kOps);
  std::vector<real>& x = vec(xid);
  const bool gpu = choose_gpu(2 * x.size() * sizeof(real), {xid});
  if (gpu) {
    stage_on_device(xid);
  } else {
    sync_to_host(xid);
  }
  auto o = run_resilient(
      gpu ? kernels::Backend::kFused : kernels::Backend::kCpu,
      [&](kernels::Backend b) { return registry_.scal(b, alpha, x); }, x);
  book(o, "scal", false);
  if (o.backend_used != kernels::Backend::kCpu) {
    mm_.mark_device_dirty(xid);
  } else if (mm_.on_device(xid)) {
    mm_.mark_host_dirty(xid);
  }
}

std::span<const real> Runtime::read_vector(TensorId id) {
  sync_to_host(id);
  return vec(id);
}

void Runtime::write_vector(TensorId id, std::span<const real> values) {
  auto& x = vec(id);
  FUSEDML_CHECK(values.size() == x.size(),
                "write_vector: size mismatch with the registered tensor");
  x.assign(values.begin(), values.end());
  if (mm_.on_device(id)) mm_.mark_host_dirty(id);
}

std::string Runtime::explain() const {
  std::ostringstream os;
  const auto& po = planner_opts_;
  os << "planner options: pattern=" << (po.enable_pattern_fusion ? "on" : "off")
     << " ewise=" << (po.enable_ewise_fusion ? "on" : "off")
     << " row=" << (po.enable_row_fusion ? "on" : "off")
     << " sddmm=" << (po.enable_sddmm_fusion ? "on" : "off")
     << " budget=" << po.candidate_budget
     << " min_benefit=" << po.min_benefit_ms << " ms\n";
  if (!plan_explain_.empty()) {
    os << plan_explain_;
    if (plan_explain_.back() != '\n') os << '\n';
  }
  os << "execution: " << stats_.gpu_ops << " gpu op(s), "
     << stats_.kernel_launches << " kernel launch(es), " << stats_.cpu_ops
     << " cpu op(s)\n";
  for (const auto& entry : trace_) {
    os << "  " << (entry.on_gpu ? "[gpu] " : "[cpu] ") << entry.op << "  ("
       << entry.modeled_ms << " ms)\n";
  }
  return os.str();
}

}  // namespace fusedml::sysml
