#include "sysml/runtime.h"

#include <algorithm>

#include "common/error.h"
#include "common/log.h"
#include "kernels/blas1.h"
#include "kernels/gemv.h"
#include "kernels/spmv.h"
#include "kernels/streaming.h"

namespace fusedml::sysml {

Runtime::Runtime(vgpu::Device& dev, RuntimeOptions opts)
    : dev_(dev),
      opts_(opts),
      mm_(dev, opts.device_capacity),
      cpu_(vgpu::paper_host_cpu(), 8) {}

TensorId Runtime::store(Value v, usize bytes, std::string name) {
  const TensorId id = next_id_++;
  values_.emplace(id, std::move(v));
  native_[id] = false;
  mm_.register_tensor(id, bytes, std::move(name));
  return id;
}

TensorId Runtime::add_sparse(la::CsrMatrix X, std::string name) {
  const usize bytes = X.bytes();
  return store(Value{std::move(X)}, bytes, std::move(name));
}

TensorId Runtime::add_dense(la::DenseMatrix X, std::string name) {
  const usize bytes = X.bytes();
  return store(Value{std::move(X)}, bytes, std::move(name));
}

TensorId Runtime::add_vector(std::vector<real> v, std::string name) {
  const usize bytes = v.size() * sizeof(real);
  return store(Value{std::move(v)}, bytes, std::move(name));
}

TensorId Runtime::new_vector(usize n, std::string name) {
  return add_vector(std::vector<real>(n, real{0}), std::move(name));
}

Runtime::Value& Runtime::value(TensorId id) {
  const auto it = values_.find(id);
  FUSEDML_CHECK(it != values_.end(), "unknown tensor id");
  return it->second;
}

std::vector<real>& Runtime::vec(TensorId id) {
  auto* v = std::get_if<std::vector<real>>(&value(id));
  FUSEDML_CHECK(v != nullptr, "tensor is not a vector");
  return *v;
}

const la::CsrMatrix* Runtime::sparse(TensorId id) {
  return std::get_if<la::CsrMatrix>(&value(id));
}

const la::DenseMatrix* Runtime::dense(TensorId id) {
  return std::get_if<la::DenseMatrix>(&value(id));
}

usize Runtime::tensor_bytes(TensorId id) {
  const Value& v = value(id);
  if (const auto* s = std::get_if<la::CsrMatrix>(&v)) return s->bytes();
  if (const auto* d = std::get_if<la::DenseMatrix>(&v)) return d->bytes();
  return std::get<std::vector<real>>(v).size() * sizeof(real);
}

bool Runtime::stage_on_device(TensorId id) {
  if (!opts_.enable_gpu) return false;
  if (!native_[id]) {
    // First device contact: pay the JNI representation change + heap copy.
    const Value& v = value(id);
    JniCharge charge;
    if (const auto* s = std::get_if<la::CsrMatrix>(&v)) {
      charge = jni_.sparse_to_native(*s);
    } else if (const auto* d = std::get_if<la::DenseMatrix>(&v)) {
      charge = jni_.dense_to_native(*d);
    } else {
      charge = jni_.vector_to_native(std::get<std::vector<real>>(v).size());
    }
    stats_.jni_ms += charge.total_ms();
    native_[id] = true;
  }
  stats_.transfer_ms += mm_.ensure_on_device(id);
  return true;
}

void Runtime::sync_to_host(TensorId id) {
  stats_.transfer_ms += mm_.ensure_on_host(id);
}

double Runtime::estimate_gpu_ms(usize bytes_touched, TensorId) {
  // Streaming heuristic at effective device bandwidth, plus launch overhead.
  const double bw =
      dev_.spec().mem_bandwidth_gbs * 0.8;  // GB/s == bytes/ns
  return (static_cast<double>(bytes_touched) / bw / 1e6 + 0.005) *
         opts_.gpu_cost_bias;
}

double Runtime::estimate_cpu_ms(usize bytes_touched) {
  const double bw = cpu_.threads() > 1 ? 21.8 : 8.0;
  return static_cast<double>(bytes_touched) / bw / 1e6 + 0.002;
}

bool Runtime::choose_gpu(usize bytes_touched,
                         std::initializer_list<TensorId> inputs) {
  if (!opts_.enable_gpu) return false;
  double gpu = estimate_gpu_ms(bytes_touched, 0);
  double cpu = estimate_cpu_ms(bytes_touched);
  for (TensorId id : inputs) {
    if (id == 0) continue;
    // Over-capacity tensors can never become resident; only op_pattern has
    // a streaming route, every other op runs on the host.
    if (mm_.needs_streaming(id)) return false;
    const usize b = tensor_bytes(id);
    if (!mm_.on_device(id) ||
        mm_.residency(id) == Residency::kHostDirty) {
      gpu += static_cast<double>(b) / dev_.spec().pcie_bandwidth_gbs / 1e6 /
             std::max(1.0, opts_.transfer_amortization);
    }
    if (mm_.on_device(id) && mm_.residency(id) == Residency::kDeviceDirty) {
      cpu += static_cast<double>(b) / dev_.spec().pcie_bandwidth_gbs / 1e6;
    }
  }
  FUSEDML_LOG_DEBUG << "scheduler: " << bytes_touched << "B op -> "
                    << (gpu < cpu ? "GPU" : "CPU") << " (est gpu=" << gpu
                    << "ms cpu=" << cpu << "ms)";
  return gpu < cpu;
}

TensorId Runtime::op_pattern(real alpha, TensorId Xid, TensorId vid,
                             TensorId yid, real beta, TensorId zid) {
  const usize xbytes = tensor_bytes(Xid);
  std::span<const real> v =
      vid == 0 ? std::span<const real>{} : std::span<const real>(vec(vid));
  std::span<const real> z =
      zid == 0 ? std::span<const real>{} : std::span<const real>(vec(zid));
  const std::vector<real>& y = vec(yid);

  const auto* Xs = sparse(Xid);
  const auto* Xd = dense(Xid);
  FUSEDML_CHECK(Xs != nullptr || Xd != nullptr, "pattern needs a matrix");
  const usize n =
      static_cast<usize>(Xs != nullptr ? Xs->cols() : Xd->cols());

  if (opts_.enable_gpu && mm_.needs_streaming(Xid)) {
    // X does not fit on the device even alone: instead of failing (or
    // forcing the CPU), stream it through the device panel by panel. The
    // result is bit-equivalent to the in-core fused kernel.
    mm_.note_streaming_fallback();
    kernels::StreamingResult sr;
    if (Xs != nullptr) {
      kernels::StreamingOptions sopts;
      sopts.device_budget_bytes = mm_.capacity();
      sr = kernels::streaming_pattern_sparse(dev_, alpha, *Xs, v, y, beta, z,
                                             sopts);
    } else {
      kernels::DenseStreamingOptions sopts;
      sopts.device_budget_bytes = mm_.capacity();
      sr = kernels::streaming_pattern_dense(dev_, alpha, *Xd, v, y, beta, z,
                                            sopts);
    }
    stats_.gpu_kernel_ms += sr.kernel_ms;
    stats_.pattern_gpu_ms += sr.kernel_ms;
    stats_.transfer_ms += sr.transfer_ms;
    ++stats_.gpu_ops;
    record_trace("pattern (streamed)", true, sr.pipeline_ms);
    stats_.pattern_cpu_equiv_ms +=
        Xs != nullptr ? cpu_.pattern(alpha, *Xs, v, y, beta, z).modeled_ms
                      : cpu_.pattern(alpha, *Xd, v, y, beta, z).modeled_ms;
    // The streamed result lives on the host (partials were merged there).
    return add_vector(std::move(sr.op.value), "pattern_out");
  }

  const bool gpu = choose_gpu(2 * xbytes, {Xid, vid, yid, zid});

  std::vector<real> w;
  if (gpu) {
    stage_on_device(Xid);
    if (vid != 0) stage_on_device(vid);
    stage_on_device(yid);
    if (zid != 0) stage_on_device(zid);
    kernels::OpResult op =
        Xs != nullptr
            ? kernels::fused_pattern_sparse(dev_, alpha, *Xs, v, y, beta, z)
            : kernels::fused_pattern_dense(dev_, alpha, *Xd, v, y, beta, z);
    stats_.gpu_kernel_ms += op.modeled_ms;
    stats_.pattern_gpu_ms += op.modeled_ms;
    ++stats_.gpu_ops;
    record_trace("pattern", true, op.modeled_ms);
    // What the same op would have cost on the CPU (Table 6 row 2).
    stats_.pattern_cpu_equiv_ms +=
        Xs != nullptr ? cpu_.pattern(alpha, *Xs, v, y, beta, z).modeled_ms
                      : cpu_.pattern(alpha, *Xd, v, y, beta, z).modeled_ms;
    w = std::move(op.value);
  } else {
    for (TensorId id : {Xid, vid, yid, zid}) {
      if (id != 0) sync_to_host(id);
    }
    kernels::CpuOpResult op =
        Xs != nullptr ? cpu_.pattern(alpha, *Xs, v, y, beta, z)
                      : cpu_.pattern(alpha, *Xd, v, y, beta, z);
    stats_.cpu_op_ms += op.modeled_ms;
    ++stats_.cpu_ops;
    record_trace("pattern", false, op.modeled_ms);
    w = std::move(op.value);
  }

  const TensorId out = add_vector(std::move(w), "pattern_out");
  if (gpu) {
    native_[out] = true;  // born in native/device space
    stats_.transfer_ms += mm_.allocate_on_device(out);
  }
  (void)n;
  return out;
}

TensorId Runtime::op_transposed_product(TensorId Xid, TensorId yid,
                                        real alpha) {
  const usize xbytes = tensor_bytes(Xid);
  const std::vector<real>& y = vec(yid);
  const bool gpu = choose_gpu(xbytes, {Xid, yid});
  const auto* Xs = sparse(Xid);
  const auto* Xd = dense(Xid);
  FUSEDML_CHECK(Xs != nullptr || Xd != nullptr,
                "transposed product needs a matrix");

  std::vector<real> w;
  if (gpu) {
    stage_on_device(Xid);
    stage_on_device(yid);
    kernels::OpResult op;
    if (Xs != nullptr) {
      op = kernels::fused_spmv_t(dev_, *Xs, y, alpha);
    } else {
      op = kernels::gemv_t(dev_, *Xd, y);
      if (alpha != real{1}) {
        auto s = kernels::dev_scal(dev_, alpha, op.value);
        op.absorb_timing(s);
      }
    }
    stats_.gpu_kernel_ms += op.modeled_ms;
    stats_.pattern_gpu_ms += op.modeled_ms;
    ++stats_.gpu_ops;
    record_trace("transposed_product", true, op.modeled_ms);
    stats_.pattern_cpu_equiv_ms +=
        Xs != nullptr ? cpu_.spmv_t(*Xs, y).modeled_ms
                      : cpu_.gemv_t(*Xd, y).modeled_ms;
    w = std::move(op.value);
  } else {
    sync_to_host(Xid);
    sync_to_host(yid);
    kernels::CpuOpResult op =
        Xs != nullptr ? cpu_.spmv_t(*Xs, y) : cpu_.gemv_t(*Xd, y);
    stats_.cpu_op_ms += op.modeled_ms;
    ++stats_.cpu_ops;
    record_trace("transposed_product", false, op.modeled_ms);
    w = std::move(op.value);
    if (alpha != real{1}) {
      for (real& x : w) x *= alpha;
    }
  }

  const TensorId out = add_vector(std::move(w), "xty_out");
  if (gpu) {
    native_[out] = true;
    stats_.transfer_ms += mm_.allocate_on_device(out);
  }
  return out;
}

TensorId Runtime::op_product(TensorId Xid, TensorId yid) {
  const usize xbytes = tensor_bytes(Xid);
  const std::vector<real>& y = vec(yid);
  const bool gpu = choose_gpu(xbytes, {Xid, yid});
  const auto* Xs = sparse(Xid);
  const auto* Xd = dense(Xid);
  FUSEDML_CHECK(Xs != nullptr || Xd != nullptr, "product needs a matrix");

  std::vector<real> p;
  if (gpu) {
    stage_on_device(Xid);
    stage_on_device(yid);
    kernels::OpResult op = Xs != nullptr
                               ? kernels::spmv_csr_vector(dev_, *Xs, y)
                               : kernels::gemv_n(dev_, *Xd, y);
    stats_.gpu_kernel_ms += op.modeled_ms;
    ++stats_.gpu_ops;
    record_trace("product", true, op.modeled_ms);
    p = std::move(op.value);
  } else {
    sync_to_host(Xid);
    sync_to_host(yid);
    kernels::CpuOpResult op =
        Xs != nullptr ? cpu_.spmv(*Xs, y) : cpu_.gemv(*Xd, y);
    stats_.cpu_op_ms += op.modeled_ms;
    ++stats_.cpu_ops;
    record_trace("product", false, op.modeled_ms);
    p = std::move(op.value);
  }

  const TensorId out = add_vector(std::move(p), "product_out");
  if (gpu) {
    native_[out] = true;
    stats_.transfer_ms += mm_.allocate_on_device(out);
  }
  return out;
}

void Runtime::op_axpy(real alpha, TensorId xid, TensorId yid) {
  const std::vector<real>& x = vec(xid);
  std::vector<real>& y = vec(yid);
  const bool gpu = choose_gpu(3 * x.size() * sizeof(real), {xid, yid});
  if (gpu) {
    stage_on_device(xid);
    stage_on_device(yid);
    auto op = kernels::dev_axpy(dev_, alpha, x, y);
    stats_.gpu_kernel_ms += op.modeled_ms;
    ++stats_.gpu_ops;
    mm_.mark_device_dirty(yid);
    // Host copy already updated functionally; device is authoritative.
  } else {
    sync_to_host(xid);
    sync_to_host(yid);
    auto op = cpu_.axpy(alpha, x, y);
    stats_.cpu_op_ms += op.modeled_ms;
    ++stats_.cpu_ops;
    if (mm_.on_device(yid)) mm_.mark_host_dirty(yid);
  }
}

TensorId Runtime::op_ewise_mul(TensorId xid, TensorId yid) {
  const std::vector<real>& x = vec(xid);
  const std::vector<real>& y = vec(yid);
  const bool gpu = choose_gpu(3 * x.size() * sizeof(real), {xid, yid});
  std::vector<real> result;
  if (gpu) {
    stage_on_device(xid);
    stage_on_device(yid);
    auto op = kernels::dev_ewise_mul(dev_, x, y);
    stats_.gpu_kernel_ms += op.modeled_ms;
    ++stats_.gpu_ops;
    result = std::move(op.value);
  } else {
    sync_to_host(xid);
    sync_to_host(yid);
    auto op = cpu_.ewise_mul(x, y);
    stats_.cpu_op_ms += op.modeled_ms;
    ++stats_.cpu_ops;
    result = std::move(op.value);
  }
  const TensorId out = add_vector(std::move(result), "ewise_out");
  if (gpu) {
    native_[out] = true;
    stats_.transfer_ms += mm_.allocate_on_device(out);
  }
  return out;
}

TensorId Runtime::op_map(TensorId xid, real (*f)(real),
                         const std::string& name) {
  const std::vector<real>& x = vec(xid);
  const bool gpu = choose_gpu(2 * x.size() * sizeof(real), {xid});
  std::vector<real> result(x.size());
  for (usize i = 0; i < x.size(); ++i) result[i] = f(x[i]);
  if (gpu) {
    stage_on_device(xid);
    // One streaming kernel: read x, write f(x).
    vgpu::LaunchConfig cfg;
    cfg.block_size = 256;
    cfg.grid_size = 1;
    const auto stats = dev_.launch(cfg, [&](vgpu::BlockCtx& ctx) {
      ctx.mem().load_stream(0, x.size(), sizeof(real));
      ctx.mem().store_stream(0, x.size(), sizeof(real));
      ctx.mem().add_flops(4ull * x.size());
    });
    stats_.gpu_kernel_ms += stats.time.total_ms;
    ++stats_.gpu_ops;
    record_trace(name.c_str(), true, stats.time.total_ms);
  } else {
    sync_to_host(xid);
    const double ms = cpu_.scal(1.0, result).modeled_ms;  // same traffic class
    stats_.cpu_op_ms += ms;
    ++stats_.cpu_ops;
    record_trace(name.c_str(), false, ms);
  }
  const TensorId out = add_vector(std::move(result), name + "_out");
  if (gpu) {
    native_[out] = true;
    stats_.transfer_ms += mm_.allocate_on_device(out);
  }
  return out;
}

real Runtime::op_dot(TensorId xid, TensorId yid) {
  const std::vector<real>& x = vec(xid);
  const std::vector<real>& y = vec(yid);
  const bool gpu = choose_gpu(2 * x.size() * sizeof(real), {xid, yid});
  if (gpu) {
    stage_on_device(xid);
    stage_on_device(yid);
    auto op = kernels::dev_dot(dev_, x, y);
    stats_.gpu_kernel_ms += op.modeled_ms;
    ++stats_.gpu_ops;
    return op.value[0];
  }
  sync_to_host(xid);
  sync_to_host(yid);
  auto op = cpu_.dot(x, y);
  stats_.cpu_op_ms += op.modeled_ms;
  ++stats_.cpu_ops;
  return op.value[0];
}

real Runtime::op_nrm2(TensorId xid) {
  const std::vector<real>& x = vec(xid);
  const bool gpu = choose_gpu(x.size() * sizeof(real), {xid});
  if (gpu) {
    stage_on_device(xid);
    auto op = kernels::dev_nrm2(dev_, x);
    stats_.gpu_kernel_ms += op.modeled_ms;
    ++stats_.gpu_ops;
    return op.value[0];
  }
  sync_to_host(xid);
  auto op = cpu_.nrm2(x);
  stats_.cpu_op_ms += op.modeled_ms;
  ++stats_.cpu_ops;
  return op.value[0];
}

void Runtime::op_scal(real alpha, TensorId xid) {
  std::vector<real>& x = vec(xid);
  const bool gpu = choose_gpu(2 * x.size() * sizeof(real), {xid});
  if (gpu) {
    stage_on_device(xid);
    auto op = kernels::dev_scal(dev_, alpha, x);
    stats_.gpu_kernel_ms += op.modeled_ms;
    ++stats_.gpu_ops;
    mm_.mark_device_dirty(xid);
  } else {
    sync_to_host(xid);
    auto op = cpu_.scal(alpha, x);
    stats_.cpu_op_ms += op.modeled_ms;
    ++stats_.cpu_ops;
    if (mm_.on_device(xid)) mm_.mark_host_dirty(xid);
  }
}

std::span<const real> Runtime::read_vector(TensorId id) {
  sync_to_host(id);
  return vec(id);
}

}  // namespace fusedml::sysml
