// JNI bridge cost model — §4.4: "SystemML is implemented in Java. Therefore,
// one has to first transfer data from JVM heap space into native space via
// JNI, before it can be copied to the device. ... SystemML represents a
// sparse matrix as an array of sparse rows on CPU, whereas the same matrix
// is represented in CSR format on the device."
//
// This module prices those two host-side steps:
//   1. representation conversion (array-of-sparse-rows -> CSR; double[][]
//      -> flat row-major),
//   2. JVM-heap -> native-buffer copy.
// Both are charged at host memory bandwidth with per-row overheads — these
// are the "inefficiencies in our current memory manager and data
// transformations" that compress Table 6's speedups relative to Table 5.
#pragma once

#include "common/types.h"
#include "la/csr_matrix.h"
#include "la/dense_matrix.h"
#include "vgpu/device_spec.h"

namespace fusedml::sysml {

struct JniCosts {
  /// Effective JVM-heap-to-native copy bandwidth (GB/s). JNI critical
  /// sections + pinning make this slower than a plain memcpy.
  double heap_copy_gbs = 4.0;
  /// Conversion throughput for re-laying-out sparse rows into CSR (GB/s of
  /// output produced) — pointer chasing across row objects is slow.
  double sparse_convert_gbs = 2.0;
  /// Dense double[][] -> flat copy throughput (GB/s).
  double dense_convert_gbs = 6.0;
  /// Per-row object overhead of the sparse-row representation (ns).
  double per_row_overhead_ns = 40.0;
  /// Fixed per-call JNI overhead (us).
  double per_call_overhead_us = 20.0;
};

struct JniCharge {
  double convert_ms = 0.0;  ///< representation change
  double copy_ms = 0.0;     ///< heap -> native
  double total_ms() const { return convert_ms + copy_ms; }
};

class JniBridge {
 public:
  explicit JniBridge(JniCosts costs = {}) : costs_(costs) {}

  /// Cost of shipping a sparse matrix from the JVM into a native CSR buffer.
  JniCharge sparse_to_native(const la::CsrMatrix& X) const;

  /// Cost of shipping a dense matrix from the JVM into a native buffer.
  JniCharge dense_to_native(const la::DenseMatrix& X) const;

  /// Cost of shipping a plain vector (double[]) into native space.
  JniCharge vector_to_native(usize n) const;

  const JniCosts& costs() const { return costs_; }

 private:
  JniCosts costs_;
};

}  // namespace fusedml::sysml
