#include "sysml/dag.h"

#include <unordered_map>
#include <unordered_set>

#include "common/error.h"

namespace fusedml::sysml {

std::string to_string(OpKind kind) {
  switch (kind) {
    case OpKind::kInputMatrix: return "matrix";
    case OpKind::kInputVector: return "vector";
    case OpKind::kMv: return "mv";
    case OpKind::kMvT: return "mvt";
    case OpKind::kEwiseMul: return "ewise_mul";
    case OpKind::kScale: return "scale";
    case OpKind::kAdd: return "add";
    case OpKind::kMap: return "map";
    case OpKind::kOuterMap: return "outer_map";
    case OpKind::kSparseMask: return "sparse_mask";
    case OpKind::kFusedPattern: return "FUSED_PATTERN";
    case OpKind::kFusedEwise: return "FUSED_EWISE";
    case OpKind::kFusedRow: return "FUSED_ROW";
    case OpKind::kFusedSddmm: return "FUSED_SDDMM";
  }
  return "?";
}

namespace {
NodePtr make(OpKind kind, std::vector<NodePtr> inputs) {
  auto node = std::make_shared<Node>();
  node->kind = kind;
  node->inputs = std::move(inputs);
  return node;
}
}  // namespace

NodePtr input_matrix(TensorId id) {
  auto node = make(OpKind::kInputMatrix, {});
  node->tensor = id;
  return node;
}

NodePtr input_vector(TensorId id) {
  auto node = make(OpKind::kInputVector, {});
  node->tensor = id;
  return node;
}

NodePtr mv(NodePtr X, NodePtr y) { return make(OpKind::kMv, {X, y}); }
NodePtr mvt(NodePtr X, NodePtr y) { return make(OpKind::kMvT, {X, y}); }
NodePtr mvt(NodePtr X, NodePtr y, real alpha) {
  auto node = make(OpKind::kMvT, {std::move(X), std::move(y)});
  node->scalar = alpha;
  return node;
}
NodePtr ewise_mul(NodePtr a, NodePtr b) {
  return make(OpKind::kEwiseMul, {a, b});
}
NodePtr scale(real s, NodePtr a) {
  auto node = make(OpKind::kScale, {a});
  node->scalar = s;
  return node;
}
NodePtr add(NodePtr a, NodePtr b) { return make(OpKind::kAdd, {a, b}); }

NodePtr map(NodePtr a, real (*f)(real), std::string name) {
  auto node = make(OpKind::kMap, {a});
  node->map_f = f;
  node->map_name = std::move(name);
  return node;
}

NodePtr outer_map(NodePtr u, NodePtr v, real (*f)(real), std::string name) {
  auto node = make(OpKind::kOuterMap, {std::move(u), std::move(v)});
  node->map_f = f;
  node->map_name = std::move(name);
  return node;
}

NodePtr sparse_mask(NodePtr X, NodePtr om) {
  FUSEDML_CHECK(X && X->kind == OpKind::kInputMatrix,
                "sparse_mask: X must be an input-matrix leaf");
  return make(OpKind::kSparseMask, {std::move(X), std::move(om)});
}

NodePtr pattern_expression(real alpha, NodePtr X, NodePtr v, NodePtr y,
                           real beta, NodePtr z) {
  NodePtr p = mv(X, y);
  if (v) p = ewise_mul(v, p);
  NodePtr w = mvt(X, p);
  if (alpha != real{1}) w = scale(alpha, w);
  if (z) w = add(w, scale(beta, z));
  return w;
}

int count_nodes(const NodePtr& root) {
  std::unordered_set<const Node*> seen;
  std::vector<const Node*> stack = {root.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    if (!node || !seen.insert(node).second) continue;
    for (const auto& in : node->inputs) stack.push_back(in.get());
    for (const auto& in :
         {node->fused_matrix, node->fused_v, node->fused_y, node->fused_z}) {
      stack.push_back(in.get());
    }
  }
  return static_cast<int>(seen.size());
}

namespace {

struct CoreMatch {
  real alpha = 1;
  NodePtr X, v, y;  // v may be null
  std::vector<const Node*> covered;  // scale?, mvt, ewise?, mv
};

/// Matches [Scale(alpha)] -> MvT(X, [EwiseMul(v,)] Mv(X, y)) with the SAME
/// matrix node on both products — the data-reuse condition fusion needs.
std::optional<CoreMatch> match_core(const NodePtr& node) {
  CoreMatch out;
  NodePtr mvt_node = node;
  if (node->kind == OpKind::kScale) {
    out.alpha = node->scalar;
    out.covered.push_back(node.get());
    mvt_node = node->inputs[0];
  }
  if (mvt_node->kind != OpKind::kMvT) return std::nullopt;
  // A pre-scaled MvT already pays its alpha per-term inside the kernel;
  // folding it into the Equation-1 template would re-associate the scale
  // (alpha * sum vs sum of alpha-scaled terms) and break bit-exactness.
  if (mvt_node->scalar != real{1}) return std::nullopt;
  out.X = mvt_node->inputs[0];
  if (out.X->kind != OpKind::kInputMatrix) return std::nullopt;
  out.covered.push_back(mvt_node.get());

  NodePtr t = mvt_node->inputs[1];
  if (t->kind == OpKind::kEwiseMul) {
    // Either operand order: v ⊙ (X*y) or (X*y) ⊙ v.
    for (int side = 0; side < 2; ++side) {
      const NodePtr& maybe_mv = t->inputs[side];
      const NodePtr& maybe_v = t->inputs[1 - side];
      if (maybe_mv->kind == OpKind::kMv &&
          maybe_mv->inputs[0] == out.X) {
        out.v = maybe_v;
        out.y = maybe_mv->inputs[1];
        out.covered.push_back(t.get());
        out.covered.push_back(maybe_mv.get());
        return out;
      }
    }
    return std::nullopt;
  }
  if (t->kind == OpKind::kMv && t->inputs[0] == out.X) {
    out.y = t->inputs[1];
    out.covered.push_back(t.get());
    return out;
  }
  return std::nullopt;
}

}  // namespace

std::optional<Equation1Match> match_equation1(const NodePtr& node) {
  Equation1Match m;
  NodePtr core_root = node;
  std::vector<const Node*> add_covered;

  if (node->kind == OpKind::kAdd) {
    // One operand is the core, the other the beta*z term (either order).
    for (int side = 0; side < 2; ++side) {
      const NodePtr& maybe_core = node->inputs[side];
      NodePtr maybe_z = node->inputs[1 - side];
      real maybe_beta = 1;
      const Node* z_scale = nullptr;
      if (maybe_z->kind == OpKind::kScale) {
        maybe_beta = maybe_z->scalar;
        z_scale = maybe_z.get();
        maybe_z = maybe_z->inputs[0];
      }
      if (match_core(maybe_core)) {
        core_root = maybe_core;
        m.beta = maybe_beta;
        m.z = maybe_z;
        add_covered.push_back(node.get());
        if (z_scale != nullptr) add_covered.push_back(z_scale);
        break;
      }
    }
    if (!m.z) return std::nullopt;
  }

  auto core = match_core(core_root);
  if (!core) return std::nullopt;
  m.alpha = core->alpha;
  m.X = core->X;
  m.v = core->v;
  m.y = core->y;
  m.covered = std::move(add_covered);
  m.covered.insert(m.covered.end(), core->covered.begin(),
                   core->covered.end());
  return m;
}

std::unordered_map<const Node*, std::vector<const Node*>> consumer_map(
    const NodePtr& root) {
  std::unordered_map<const Node*, std::vector<const Node*>> consumers;
  std::unordered_set<const Node*> seen;
  std::vector<const Node*> stack = {root.get()};
  consumers[root.get()];  // the root has no consumers but must be present
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    if (node == nullptr || !seen.insert(node).second) continue;
    auto visit = [&](const NodePtr& in) {
      if (!in) return;
      consumers[in.get()].push_back(node);
      stack.push_back(in.get());
    };
    for (const auto& in : node->inputs) visit(in);
    for (const auto& in :
         {node->fused_matrix, node->fused_v, node->fused_y, node->fused_z}) {
      visit(in);
    }
  }
  return consumers;
}

bool fusion_is_materialization_safe(
    const Equation1Match& m, const NodePtr& match_root,
    const std::unordered_map<const Node*, std::vector<const Node*>>&
        consumers) {
  std::unordered_set<const Node*> covered(m.covered.begin(), m.covered.end());
  // A retained operand that is itself a covered interior node means the
  // fused kernel would both recompute it internally AND read it as an
  // input — e.g. z sharing the X*y node with the core. Never profitable.
  for (const NodePtr& operand : {m.X, m.v, m.y, m.z}) {
    if (operand && covered.count(operand.get()) != 0) return false;
  }
  // Every interior node below the match root must be consumed only inside
  // the match; an outside consumer forces materialization of the
  // intermediate anyway, so the fused kernel would duplicate that work.
  for (const Node* c : m.covered) {
    if (c == match_root.get()) continue;
    const auto it = consumers.find(c);
    if (it == consumers.end()) continue;
    for (const Node* parent : it->second) {
      if (covered.count(parent) == 0) return false;
    }
  }
  return true;
}

namespace {

NodePtr rewrite(
    const NodePtr& node,
    const std::unordered_map<const Node*, std::vector<const Node*>>&
        consumers,
    std::unordered_map<const Node*, NodePtr>& memo, int& fused,
    int& rejected) {
  const auto it = memo.find(node.get());
  if (it != memo.end()) return it->second;

  // Match at the LARGEST extent first (pre-order): a bottom-up pass would
  // collapse the alpha*X^T(...) core before an enclosing +beta*z Add could
  // claim the full pattern.
  if (auto m = match_equation1(node)) {
    if (fusion_is_materialization_safe(*m, node, consumers)) {
      ++fused;
      auto replacement = std::make_shared<Node>();
      replacement->kind = OpKind::kFusedPattern;
      replacement->scalar = m->alpha;
      replacement->scalar2 = m->beta;
      replacement->fused_matrix = m->X;
      replacement->fused_v = m->v;
      replacement->fused_y = m->y;
      replacement->fused_z = m->z;
      // The fused node's operands may themselves contain fusable work.
      for (auto* slot : {&replacement->fused_v, &replacement->fused_y,
                         &replacement->fused_z}) {
        if (*slot) *slot = rewrite(*slot, consumers, memo, fused, rejected);
      }
      memo.emplace(node.get(), replacement);
      return replacement;
    }
    ++rejected;
  }
  NodePtr current = node;
  for (auto& in : current->inputs) {
    in = rewrite(in, consumers, memo, fused, rejected);
  }
  memo.emplace(node.get(), current);
  return current;
}

}  // namespace

NodePtr fuse_patterns(NodePtr root, FusionReport* report) {
  const int before = count_nodes(root);
  const auto consumers = consumer_map(root);
  std::unordered_map<const Node*, NodePtr> memo;
  int fused = 0;
  int rejected = 0;
  root = rewrite(root, consumers, memo, fused, rejected);
  if (report) {
    report->patterns_fused = fused;
    report->nodes_before = before;
    report->nodes_after = count_nodes(root);
    report->rejected_multi_consumer = rejected;
  }
  return root;
}

namespace {
TensorId eval(Runtime& rt, const NodePtr& node,
              std::unordered_map<const Node*, TensorId>& memo) {
  const auto it = memo.find(node.get());
  if (it != memo.end()) return it->second;

  TensorId out = 0;
  switch (node->kind) {
    case OpKind::kInputMatrix:
    case OpKind::kInputVector:
      out = node->tensor;
      break;
    case OpKind::kMv:
      if (node->inputs[0]->kind == OpKind::kSparseMask) {
        // Masked product: X's structure with the mask node's values.
        const NodePtr& mask = node->inputs[0];
        out = rt.op_masked_product(eval(rt, mask->inputs[0], memo),
                                   eval(rt, mask, memo),
                                   eval(rt, node->inputs[1], memo));
      } else {
        out = rt.op_product(eval(rt, node->inputs[0], memo),
                            eval(rt, node->inputs[1], memo));
      }
      break;
    case OpKind::kMvT:
      out = rt.op_transposed_product(eval(rt, node->inputs[0], memo),
                                     eval(rt, node->inputs[1], memo),
                                     node->scalar);
      break;
    case OpKind::kEwiseMul:
      out = rt.op_ewise_mul(eval(rt, node->inputs[0], memo),
                            eval(rt, node->inputs[1], memo));
      break;
    case OpKind::kScale: {
      // Copy-then-scale keeps shared subexpressions intact.
      const TensorId in = eval(rt, node->inputs[0], memo);
      const auto view = rt.read_vector(in);
      out = rt.add_vector({view.begin(), view.end()}, "scale_tmp");
      rt.op_scal(node->scalar, out);
      break;
    }
    case OpKind::kAdd: {
      const TensorId a = eval(rt, node->inputs[0], memo);
      const TensorId b = eval(rt, node->inputs[1], memo);
      const auto view = rt.read_vector(b);
      out = rt.add_vector({view.begin(), view.end()}, "add_tmp");
      rt.op_axpy(real{1}, a, out);
      break;
    }
    case OpKind::kMap:
      out = rt.op_map(eval(rt, node->inputs[0], memo), node->map_f,
                      node->map_name);
      break;
    case OpKind::kOuterMap:
      out = rt.op_outer_map(eval(rt, node->inputs[0], memo),
                            eval(rt, node->inputs[1], memo), node->map_f,
                            node->map_name);
      break;
    case OpKind::kSparseMask:
      out = rt.op_sparse_mask(eval(rt, node->inputs[0], memo),
                              eval(rt, node->inputs[1], memo));
      break;
    case OpKind::kFusedRow: {
      std::vector<TensorId> ids;
      ids.reserve(node->inputs.size());
      for (const auto& in : node->inputs) ids.push_back(eval(rt, in, memo));
      out = rt.op_fused_row(eval(rt, node->fused_matrix, memo),
                            eval(rt, node->fused_y, memo), node->program, ids);
      break;
    }
    case OpKind::kFusedSddmm:
      out = rt.op_fused_sddmm(
          eval(rt, node->fused_matrix, memo), eval(rt, node->fused_v, memo),
          eval(rt, node->fused_y, memo), eval(rt, node->fused_z, memo),
          node->map_f, node->map_name);
      break;
    case OpKind::kFusedEwise: {
      std::vector<TensorId> ids;
      ids.reserve(node->inputs.size());
      for (const auto& in : node->inputs) ids.push_back(eval(rt, in, memo));
      out = rt.op_fused_ewise(node->program, ids, "fused_ewise");
      break;
    }
    case OpKind::kFusedPattern:
      out = rt.op_pattern(
          node->scalar, eval(rt, node->fused_matrix, memo),
          node->fused_v ? eval(rt, node->fused_v, memo) : 0,
          eval(rt, node->fused_y, memo), node->scalar2,
          node->fused_z ? eval(rt, node->fused_z, memo) : 0);
      break;
  }
  FUSEDML_CHECK(out != 0, "DAG evaluation produced no tensor");
  memo.emplace(node.get(), out);
  return out;
}
}  // namespace

TensorId execute(Runtime& rt, const NodePtr& root) {
  // Plan-vs-actual audit: snapshot the launch/time books around the
  // interpretation so the runtime can compare what this execution actually
  // cost against the planner's per-execution prediction.
  const RuntimeStats before = rt.stats();
  std::unordered_map<const Node*, TensorId> memo;
  const TensorId out = eval(rt, root, memo);
  const RuntimeStats& after = rt.stats();
  // ABFT verification launches/time ride inside the kernel books (the
  // device really issued them) but are not part of the PLAN — subtract
  // them so the audit compares the plan's own kernels against prediction
  // and verification shows up in its declared bucket instead of as drift.
  rt.note_plan_execution((after.kernel_launches - before.kernel_launches) -
                             (after.verify_launches - before.verify_launches),
                         (after.total_ms() - before.total_ms()) -
                             (after.verify_ms - before.verify_ms));
  return out;
}

}  // namespace fusedml::sysml
