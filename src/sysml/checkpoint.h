// Solver checkpoint/rollback — the recovery tier between "retry the op"
// (kernels/op_registry.h execute_resilient) and "rerun the whole script"
// (the serving layer's re-admission). An iterative solver registers its
// live state (weight/direction/residual vectors, loop-carried scalars) as
// get/set slots, snapshots them every `interval` iterations, and on a
// transient fault that escapes the per-op machinery rolls back to the last
// snapshot and resumes — losing at most `interval - 1` iterations instead
// of the whole solve.
//
// This matters most for detected SILENT corruption: ABFT verification
// throws SilentCorruptionError mid-iteration, possibly after earlier ops
// of the same iteration already mutated solver state in place. The per-op
// retry recomputes the failing op, but when the retry budget is exhausted
// (or fallback is disabled) the error reaches the solver loop — and the
// snapshot is the only state known to predate the corruption.
//
// Usage (the shape every solver in ml/script_library.cpp follows):
//   SolverCheckpoint ckpt(rt);
//   ckpt.track_vector(get_w, set_w);   // one slot per live tensor
//   for (int it = 0; it < max_iters;) {
//     ckpt.save_if_due(it);
//     try { ...iteration body...; ++it; }
//     catch (const Error& e) { it = ckpt.rollback(it, e); }
//   }
// Rollback is bounded (max_rollbacks) and only engages for transient fault
// codes — logic errors and deadline expiry rethrow immediately.
#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "common/error.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sysml/runtime.h"

namespace fusedml::sysml {

class SolverCheckpoint {
 public:
  using VectorGet = std::function<std::vector<real>()>;
  using VectorSet = std::function<void(const std::vector<real>&)>;
  using ScalarGet = std::function<real()>;
  using ScalarSet = std::function<void(real)>;

  explicit SolverCheckpoint(Runtime& rt, int interval = 4,
                            int max_rollbacks = 8)
      : rt_(rt), interval_(interval < 1 ? 1 : interval),
        max_rollbacks_(max_rollbacks) {}

  /// Registers one live solver tensor. The getter is called at save time
  /// (it snapshots CURRENT state); the setter restores at rollback time.
  void track_vector(VectorGet get, VectorSet set) {
    vectors_.push_back({std::move(get), std::move(set), {}});
  }
  /// Loop-carried host scalars (residual norms, step sizes, objective).
  void track_scalar(ScalarGet get, ScalarSet set) {
    scalars_.push_back({std::move(get), std::move(set), 0});
  }

  /// Snapshots all slots when `iteration` is on the checkpoint cadence
  /// (every interval-th iteration, including iteration 0 — a solve must
  /// have a base snapshot before its first fault).
  void save_if_due(int iteration) {
    if (iteration % interval_ != 0 && has_snapshot_) return;
    obs::TraceSpan span("checkpoint:save", "checkpoint", obs::Track::kOps);
    for (auto& slot : vectors_) slot.saved = slot.get();
    for (auto& slot : scalars_) slot.saved = slot.get();
    saved_iteration_ = iteration;
    has_snapshot_ = true;
    ++saves_;
    if (obs::metrics().enabled()) {
      obs::metrics().counter("checkpoint.saves").add();
    }
  }

  /// True if a rollback could absorb a fault right now.
  bool can_rollback() const {
    return has_snapshot_ && rollbacks_ < max_rollbacks_;
  }

  /// Restores the last snapshot and returns the iteration to resume from.
  /// Call from the solver loop's catch handler: rethrows the in-flight
  /// exception when `cause` is not a transient fault (logic errors,
  /// expired deadlines) or when the rollback budget is spent.
  int rollback(const Error& cause) {
    if (!is_transient(cause.code()) || !can_rollback()) throw;
    obs::TraceSpan span("checkpoint:rollback", "checkpoint",
                        obs::Track::kOps);
    if (span.active()) span.arg("cause", to_string(cause.code()));
    for (auto& slot : vectors_) slot.set(slot.saved);
    for (auto& slot : scalars_) slot.set(slot.saved);
    ++rollbacks_;
    rt_.note_rollback();
    if (obs::metrics().enabled()) {
      obs::metrics().counter("checkpoint.rollbacks").add();
    }
    return saved_iteration_;
  }

  int saves() const { return saves_; }
  int rollbacks() const { return rollbacks_; }
  int interval() const { return interval_; }

 private:
  struct VectorSlot {
    VectorGet get;
    VectorSet set;
    std::vector<real> saved;
  };
  struct ScalarSlot {
    ScalarGet get;
    ScalarSet set;
    real saved;
  };

  Runtime& rt_;
  int interval_;
  int max_rollbacks_;
  std::vector<VectorSlot> vectors_;
  std::vector<ScalarSlot> scalars_;
  int saved_iteration_ = 0;
  bool has_snapshot_ = false;
  int saves_ = 0;
  int rollbacks_ = 0;
};

}  // namespace fusedml::sysml
