#include "sysml/fusion_planner.h"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/error.h"
#include "kernels/op_registry.h"
#include "vgpu/cost_model.h"

namespace fusedml::sysml {

namespace {

using kernels::Backend;
using kernels::EwiseOp;
using kernels::EwiseProgram;
using kernels::EwiseStep;
using kernels::op_profile;
using kernels::RegistryOp;

struct NodeCost {
  std::uint64_t launches = 0;
  double ms = 0;

  NodeCost& operator+=(const NodeCost& o) {
    launches += o.launches;
    ms += o.ms;
    return *this;
  }
};

bool is_ewise(const Node* n) {
  switch (n->kind) {
    case OpKind::kScale:
    case OpKind::kAdd:
    case OpKind::kEwiseMul:
    case OpKind::kMap:
      return true;
    default:
      return false;
  }
}

/// Shape + cost oracle over one DAG: leaf shapes come from the runtime's
/// tensor registry, device constants from the vgpu cost model, per-op
/// traffic shapes from the registry's declared profiles.
class CostOracle {
 public:
  explicit CostOracle(Runtime& rt) : rt_(rt) {
    const auto& params = rt.device().cost_model().params();
    launch_ms_ = params.launch_overhead_us / 1000.0;
    effective_gbs_ =
        rt.device().spec().mem_bandwidth_gbs * params.dram_efficiency;
  }

  double launch_ms() const { return launch_ms_; }

  double bw_ms(double bytes) const { return bytes / (effective_gbs_ * 1e6); }

  /// Output vector length of a vector-valued node (0 for matrices).
  index_t length(const Node* n) {
    const auto it = len_.find(n);
    if (it != len_.end()) return it->second;
    index_t out = 0;
    switch (n->kind) {
      case OpKind::kInputMatrix:
        break;
      case OpKind::kInputVector:
        out = rt_.tensor_info(n->tensor).rows;
        break;
      case OpKind::kMv:
        out = matrix_info(n->inputs[0].get()).rows;
        break;
      case OpKind::kMvT:
        out = matrix_info(n->inputs[0].get()).cols;
        break;
      case OpKind::kEwiseMul:
      case OpKind::kScale:
      case OpKind::kAdd:
      case OpKind::kMap:
      case OpKind::kFusedEwise:
        out = length(n->inputs[0].get());
        break;
      case OpKind::kFusedPattern:
        out = matrix_info(n->fused_matrix.get()).cols;
        break;
    }
    len_.emplace(n, out);
    return out;
  }

  TensorInfo matrix_info(const Node* n) {
    FUSEDML_CHECK(n->kind == OpKind::kInputMatrix,
                  "planner: matrix operand must be an input leaf");
    return rt_.tensor_info(n->tensor);
  }

  /// Modeled GPU cost of executing `n` as its own operator (leaves are
  /// free). Uses the registry-declared profile of the op's fused-backend
  /// implementation: launches * overhead + DRAM traffic at effective BW.
  NodeCost node_cost(const Node* n) {
    double mat_bytes = 0;
    bool sparse = false;
    RegistryOp op;
    switch (n->kind) {
      case OpKind::kInputMatrix:
      case OpKind::kInputVector:
        return {};
      case OpKind::kMv: {
        const auto info = matrix_info(n->inputs[0].get());
        mat_bytes = static_cast<double>(info.bytes);
        sparse = info.is_sparse;
        op = RegistryOp::kProduct;
        break;
      }
      case OpKind::kMvT: {
        const auto info = matrix_info(n->inputs[0].get());
        mat_bytes = static_cast<double>(info.bytes);
        sparse = info.is_sparse;
        op = RegistryOp::kTransposedProduct;
        break;
      }
      case OpKind::kEwiseMul:
        op = RegistryOp::kEwiseMul;
        break;
      case OpKind::kScale:
        op = RegistryOp::kScal;
        break;
      case OpKind::kAdd:
        op = RegistryOp::kAxpy;
        break;
      case OpKind::kMap:
        op = RegistryOp::kMap;
        break;
      case OpKind::kFusedPattern: {
        const auto info = matrix_info(n->fused_matrix.get());
        mat_bytes = static_cast<double>(info.bytes);
        sparse = info.is_sparse;
        op = RegistryOp::kPattern;
        break;
      }
      case OpKind::kFusedEwise: {
        // Profile reports per-stream traffic; the program shape adds the
        // stream count: inputs once in, output once out.
        const auto p = op_profile(RegistryOp::kFusedEwise, Backend::kFused,
                                  false);
        const double n_elems = static_cast<double>(length(n));
        const double words =
            p.vector_words_per_elem *
            static_cast<double>(n->program.num_inputs + 1) * n_elems;
        return {p.launches,
                static_cast<double>(p.launches) * launch_ms_ +
                    bw_ms(words * sizeof(real))};
      }
      default:
        return {};
    }
    const auto p = op_profile(op, Backend::kFused, sparse);
    const double n_elems = static_cast<double>(length(n));
    const double bytes = p.matrix_passes * mat_bytes +
                         p.vector_words_per_elem * n_elems * sizeof(real);
    return {p.launches,
            static_cast<double>(p.launches) * launch_ms_ + bw_ms(bytes)};
  }

  /// Total modeled cost of the whole DAG — distinct reachable operator
  /// nodes, each costed once (matching the memoized interpreter).
  NodeCost dag_cost(const NodePtr& root) {
    NodeCost total;
    std::unordered_set<const Node*> seen;
    std::vector<const Node*> stack = {root.get()};
    while (!stack.empty()) {
      const Node* n = stack.back();
      stack.pop_back();
      if (n == nullptr || !seen.insert(n).second) continue;
      total += node_cost(n);
      for (const auto& in : n->inputs) stack.push_back(in.get());
      for (const auto& in :
           {n->fused_matrix, n->fused_v, n->fused_y, n->fused_z}) {
        stack.push_back(in.get());
      }
    }
    return total;
  }

 private:
  Runtime& rt_;
  double launch_ms_ = 0;
  double effective_gbs_ = 1;
  std::unordered_map<const Node*, index_t> len_;
};

/// Producers-first (post-order) list of distinct reachable nodes.
std::vector<const Node*> topo_order(const NodePtr& root) {
  std::vector<const Node*> order;
  std::unordered_set<const Node*> done;
  // Iterative post-order: (node, expanded?) pairs.
  std::vector<std::pair<const Node*, bool>> stack = {{root.get(), false}};
  while (!stack.empty()) {
    auto [n, expanded] = stack.back();
    stack.pop_back();
    if (n == nullptr || done.count(n) != 0) continue;
    if (expanded) {
      done.insert(n);
      order.push_back(n);
      continue;
    }
    stack.push_back({n, true});
    for (const auto& in : n->inputs) stack.push_back({in.get(), false});
    for (const auto& in :
         {n->fused_matrix, n->fused_v, n->fused_y, n->fused_z}) {
      stack.push_back({in.get(), false});
    }
  }
  return order;
}

struct PatternCand {
  Equation1Match match;
  const Node* root = nullptr;
  NodeCost before, after;

  double benefit_ms() const { return before.ms - after.ms; }
};

struct EwiseCand {
  std::vector<const Node*> members;  ///< producers first; sink last
  const Node* sink = nullptr;
  std::vector<NodePtr> ext_inputs;   ///< program input slots, in order
  EwiseProgram program;
  NodeCost before, after;

  double benefit_ms() const { return before.ms - after.ms; }
};

/// Builds the EwiseProgram for a region (members in producers-first order).
void build_program(EwiseCand& cand) {
  std::unordered_set<const Node*> member_set(cand.members.begin(),
                                             cand.members.end());
  std::unordered_map<const Node*, int> ext_slot;
  for (const Node* m : cand.members) {
    for (const auto& in : m->inputs) {
      if (member_set.count(in.get()) != 0) continue;
      if (ext_slot.emplace(in.get(), static_cast<int>(cand.ext_inputs.size()))
              .second) {
        cand.ext_inputs.push_back(in);
      }
    }
  }
  cand.program.num_inputs = static_cast<int>(cand.ext_inputs.size());

  std::unordered_map<const Node*, int> step_slot;
  auto slot_of = [&](const NodePtr& in) {
    const auto it = step_slot.find(in.get());
    if (it != step_slot.end()) return it->second;
    return ext_slot.at(in.get());
  };
  for (const Node* m : cand.members) {
    EwiseStep step;
    switch (m->kind) {
      case OpKind::kScale:
        step.op = EwiseOp::kScale;
        step.a = slot_of(m->inputs[0]);
        step.scalar = m->scalar;
        break;
      case OpKind::kAdd:
        step.op = EwiseOp::kAdd;
        step.a = slot_of(m->inputs[0]);
        step.b = slot_of(m->inputs[1]);
        break;
      case OpKind::kEwiseMul:
        step.op = EwiseOp::kMul;
        step.a = slot_of(m->inputs[0]);
        step.b = slot_of(m->inputs[1]);
        break;
      case OpKind::kMap:
        step.op = EwiseOp::kMap;
        step.a = slot_of(m->inputs[0]);
        step.map_fn = m->map_f;
        step.map_name = m->map_name;
        break;
      default:
        FUSEDML_CHECK(false, "planner: non-elementwise node in ewise region");
    }
    step_slot.emplace(
        m, cand.program.num_inputs +
               static_cast<int>(cand.program.steps.size()));
    cand.program.steps.push_back(std::move(step));
  }
  FUSEDML_CHECK(cand.program.valid(), "planner built an invalid program");
}

/// Memoized clone-with-replacement: chosen pattern roots become
/// kFusedPattern nodes, chosen ewise sinks become kFusedEwise nodes, every
/// other interior node is cloned fresh; input leaves are shared.
class Rewriter {
 public:
  Rewriter(const std::unordered_map<const Node*, const PatternCand*>& pat,
           const std::unordered_map<const Node*, const EwiseCand*>& ew)
      : pattern_roots_(pat), ewise_sinks_(ew) {}

  NodePtr rebuild(const NodePtr& node) {
    if (!node) return nullptr;
    const auto it = memo_.find(node.get());
    if (it != memo_.end()) return it->second;

    NodePtr out;
    if (const auto pit = pattern_roots_.find(node.get());
        pit != pattern_roots_.end()) {
      const Equation1Match& m = pit->second->match;
      out = std::make_shared<Node>();
      out->kind = OpKind::kFusedPattern;
      out->scalar = m.alpha;
      out->scalar2 = m.beta;
      out->fused_matrix = rebuild(m.X);
      out->fused_v = rebuild(m.v);
      out->fused_y = rebuild(m.y);
      out->fused_z = rebuild(m.z);
    } else if (const auto eit = ewise_sinks_.find(node.get());
               eit != ewise_sinks_.end()) {
      const EwiseCand& cand = *eit->second;
      out = std::make_shared<Node>();
      out->kind = OpKind::kFusedEwise;
      out->program = cand.program;
      out->inputs.reserve(cand.ext_inputs.size());
      for (const auto& in : cand.ext_inputs) out->inputs.push_back(rebuild(in));
    } else if (node->kind == OpKind::kInputMatrix ||
               node->kind == OpKind::kInputVector) {
      out = node;  // leaves carry no rewritable structure — share them
    } else {
      out = std::make_shared<Node>(*node);
      for (auto& in : out->inputs) in = rebuild(in);
      out->fused_matrix = rebuild(out->fused_matrix);
      out->fused_v = rebuild(out->fused_v);
      out->fused_y = rebuild(out->fused_y);
      out->fused_z = rebuild(out->fused_z);
    }
    memo_.emplace(node.get(), out);
    return out;
  }

 private:
  const std::unordered_map<const Node*, const PatternCand*>& pattern_roots_;
  const std::unordered_map<const Node*, const EwiseCand*>& ewise_sinks_;
  std::unordered_map<const Node*, NodePtr> memo_;
};

}  // namespace

std::string FusionPlan::explain() const {
  std::ostringstream os;
  os << std::fixed << std::setprecision(4);
  os << "fusion plan: " << groups.size() << " group(s)";
  if (rejected_multi_consumer > 0) {
    os << ", " << rejected_multi_consumer
       << " match(es) rejected (multi-consumer intermediate)";
  }
  os << "\n";
  int i = 0;
  for (const auto& g : groups) {
    os << "  [" << ++i << "] " << g.kind << " {" << g.detail << "} covers "
       << g.nodes_covered << " node(s); launches " << g.launches_before
       << " -> " << g.launches_after << "; modeled " << g.modeled_before_ms
       << " ms -> " << g.modeled_after_ms << " ms\n";
  }
  os << "  totals: launches " << launches_unfused << " -> "
     << launches_planned << ", modeled " << modeled_unfused_ms << " ms -> "
     << modeled_planned_ms << " ms";
  return os.str();
}

FusionPlan plan_fusion(Runtime& rt, const NodePtr& root,
                       const PlannerOptions& opts) {
  FusionPlan plan;
  CostOracle oracle(rt);

  const auto cost_before = oracle.dag_cost(root);
  plan.launches_unfused = cost_before.launches;
  plan.modeled_unfused_ms = cost_before.ms;

  const auto consumers = consumer_map(root);
  const auto topo = topo_order(root);

  std::unordered_set<const Node*> claimed;

  // --- 1. Equation-1 template candidates (largest extent at each root) ----
  std::vector<PatternCand> pattern_cands;
  if (opts.enable_pattern_fusion) {
    // Walk with NodePtrs (match_equation1 needs shared_ptr handles); the
    // Add-rooted full pattern and its Scale-rooted core both become
    // candidates — greedy selection resolves the overlap by benefit.
    std::unordered_set<const Node*> visited;
    std::vector<NodePtr> stack = {root};
    while (!stack.empty()) {
      NodePtr n = stack.back();
      stack.pop_back();
      if (!n || !visited.insert(n.get()).second) continue;
      if (auto m = match_equation1(n)) {
        if (fusion_is_materialization_safe(*m, n, consumers)) {
          PatternCand cand;
          cand.root = n.get();
          for (const Node* c : m->covered) cand.before += oracle.node_cost(c);
          cand.match = std::move(*m);
          // Cost the fused replacement via the registry's declared profile.
          const auto info = oracle.matrix_info(cand.match.X.get());
          const auto p = op_profile(RegistryOp::kPattern, Backend::kFused,
                                    info.is_sparse);
          const double bytes =
              p.matrix_passes * static_cast<double>(info.bytes) +
              p.vector_words_per_elem * static_cast<double>(info.cols) *
                  sizeof(real);
          cand.after = {p.launches, static_cast<double>(p.launches) *
                                            oracle.launch_ms() +
                                        oracle.bw_ms(bytes)};
          pattern_cands.push_back(std::move(cand));
        } else {
          ++plan.rejected_multi_consumer;
        }
      }
      for (const auto& in : n->inputs) stack.push_back(in);
      for (const auto& in :
           {n->fused_matrix, n->fused_v, n->fused_y, n->fused_z}) {
        if (in) stack.push_back(in);
      }
    }
    std::stable_sort(pattern_cands.begin(), pattern_cands.end(),
                     [](const PatternCand& a, const PatternCand& b) {
                       return a.benefit_ms() > b.benefit_ms();
                     });
  }

  std::unordered_map<const Node*, const PatternCand*> chosen_patterns;
  for (const auto& cand : pattern_cands) {
    if (cand.after.launches >= cand.before.launches) continue;
    if (cand.benefit_ms() < opts.min_benefit_ms) continue;
    const bool overlaps =
        std::any_of(cand.match.covered.begin(), cand.match.covered.end(),
                    [&](const Node* c) { return claimed.count(c) != 0; });
    if (overlaps) continue;
    for (const Node* c : cand.match.covered) claimed.insert(c);
    chosen_patterns.emplace(cand.root, &cand);

    std::ostringstream detail;
    detail << "alpha=" << cand.match.alpha;
    if (cand.match.z) detail << " beta=" << cand.match.beta;
    if (!cand.match.v) detail << " (no v)";
    PlannedGroup g;
    g.kind = "equation1";
    g.detail = detail.str();
    g.nodes_covered = static_cast<int>(cand.match.covered.size());
    g.launches_before = cand.before.launches;
    g.launches_after = cand.after.launches;
    g.modeled_before_ms = cand.before.ms;
    g.modeled_after_ms = cand.after.ms;
    plan.groups.push_back(std::move(g));
  }

  // --- 2. Maximal elementwise regions over the unclaimed remainder --------
  std::vector<EwiseCand> ewise_cands;
  if (opts.enable_ewise_fusion) {
    // Consumers-first: a region's sink is the member closest to the root.
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
      const Node* sink = *it;
      if (!is_ewise(sink) || claimed.count(sink) != 0) continue;
      std::unordered_set<const Node*> region = {sink};
      bool grew = true;
      while (grew) {
        grew = false;
        for (const Node* r : std::vector<const Node*>(region.begin(),
                                                      region.end())) {
          for (const auto& in : r->inputs) {
            const Node* c = in.get();
            if (region.count(c) != 0 || claimed.count(c) != 0 ||
                !is_ewise(c)) {
              continue;
            }
            const auto cit = consumers.find(c);
            const bool internal =
                cit != consumers.end() &&
                std::all_of(cit->second.begin(), cit->second.end(),
                            [&](const Node* p) { return region.count(p); });
            if (internal) {
              region.insert(c);
              grew = true;
            }
          }
        }
      }
      if (region.size() < 2) continue;

      EwiseCand cand;
      cand.sink = sink;
      for (const Node* n : topo) {
        if (region.count(n) != 0) cand.members.push_back(n);
      }
      build_program(cand);
      for (const Node* m : cand.members) cand.before += oracle.node_cost(m);
      // Length comes from any member; borrow the sink's.
      const double n_elems = static_cast<double>(oracle.length(sink));
      const auto p = op_profile(RegistryOp::kFusedEwise, Backend::kFused,
                                false);
      const double words = p.vector_words_per_elem *
                           static_cast<double>(cand.program.num_inputs + 1) *
                           n_elems;
      cand.after = {p.launches, static_cast<double>(p.launches) *
                                        oracle.launch_ms() +
                                    oracle.bw_ms(words * sizeof(real))};
      if (cand.after.launches >= cand.before.launches) continue;
      if (cand.benefit_ms() < opts.min_benefit_ms) continue;
      for (const Node* m : cand.members) claimed.insert(m);
      ewise_cands.push_back(std::move(cand));
    }
  }

  std::unordered_map<const Node*, const EwiseCand*> chosen_ewise;
  for (const auto& cand : ewise_cands) {
    chosen_ewise.emplace(cand.sink, &cand);
    PlannedGroup g;
    g.kind = "ewise_chain";
    g.detail = cand.program.signature();
    g.nodes_covered = static_cast<int>(cand.members.size());
    g.launches_before = cand.before.launches;
    g.launches_after = cand.after.launches;
    g.modeled_before_ms = cand.before.ms;
    g.modeled_after_ms = cand.after.ms;
    plan.groups.push_back(std::move(g));
  }

  // --- 3. Rewrite into a fresh DAG and re-cost ----------------------------
  Rewriter rewriter(chosen_patterns, chosen_ewise);
  plan.root = rewriter.rebuild(root);

  const auto cost_after = oracle.dag_cost(plan.root);
  plan.launches_planned = cost_after.launches;
  plan.modeled_planned_ms = cost_after.ms;
  return plan;
}

}  // namespace fusedml::sysml
