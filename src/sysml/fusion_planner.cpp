#include "sysml/fusion_planner.h"

#include <algorithm>
#include <iomanip>
#include <map>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/error.h"
#include "kernels/op_registry.h"
#include "vgpu/cost_model.h"

namespace fusedml::sysml {

namespace {

using kernels::Backend;
using kernels::EwiseOp;
using kernels::EwiseProgram;
using kernels::EwiseStep;
using kernels::op_profile;
using kernels::RegistryOp;

using ConsumerMap =
    std::unordered_map<const Node*, std::vector<const Node*>>;

struct NodeCost {
  std::uint64_t launches = 0;
  double ms = 0;

  NodeCost& operator+=(const NodeCost& o) {
    launches += o.launches;
    ms += o.ms;
    return *this;
  }
};

bool is_ewise(const Node* n) {
  switch (n->kind) {
    case OpKind::kScale:
    case OpKind::kAdd:
    case OpKind::kEwiseMul:
    case OpKind::kMap:
      return true;
    default:
      return false;
  }
}

/// Shape + cost oracle over one DAG: leaf shapes come from the runtime's
/// tensor registry, device constants from the vgpu cost model, per-op
/// traffic shapes from the registry's declared profiles.
class CostOracle {
 public:
  explicit CostOracle(Runtime& rt) : rt_(rt) {
    const auto& params = rt.device().cost_model().params();
    launch_ms_ = params.launch_overhead_us / 1000.0;
    effective_gbs_ =
        rt.device().spec().mem_bandwidth_gbs * params.dram_efficiency;
  }

  double launch_ms() const { return launch_ms_; }

  double bw_ms(double bytes) const { return bytes / (effective_gbs_ * 1e6); }

  /// Output vector length of a vector-valued node (0 for matrices).
  index_t length(const Node* n) {
    const auto it = len_.find(n);
    if (it != len_.end()) return it->second;
    index_t out = 0;
    switch (n->kind) {
      case OpKind::kInputMatrix:
        break;
      case OpKind::kInputVector:
        out = rt_.tensor_info(n->tensor).rows;
        break;
      case OpKind::kMv:
        // A masked product (Mv over a kSparseMask value node) has the mask's
        // underlying matrix shape.
        if (n->inputs[0]->kind == OpKind::kSparseMask) {
          out = matrix_info(n->inputs[0]->inputs[0].get()).rows;
        } else {
          out = matrix_info(n->inputs[0].get()).rows;
        }
        break;
      case OpKind::kMvT:
        out = matrix_info(n->inputs[0].get()).cols;
        break;
      case OpKind::kEwiseMul:
      case OpKind::kScale:
      case OpKind::kAdd:
      case OpKind::kMap:
      case OpKind::kFusedEwise:
        out = length(n->inputs[0].get());
        break;
      case OpKind::kOuterMap:
        out = length(n->inputs[0].get()) * length(n->inputs[1].get());
        break;
      case OpKind::kSparseMask: {
        const auto info = matrix_info(n->inputs[0].get());
        out = info.is_sparse ? static_cast<index_t>(info.nnz)
                             : info.rows * info.cols;
        break;
      }
      case OpKind::kFusedPattern:
        out = matrix_info(n->fused_matrix.get()).cols;
        break;
      case OpKind::kFusedRow:
      case OpKind::kFusedSddmm:
        out = matrix_info(n->fused_matrix.get()).rows;
        break;
    }
    len_.emplace(n, out);
    return out;
  }

  TensorInfo matrix_info(const Node* n) {
    FUSEDML_CHECK(n->kind == OpKind::kInputMatrix,
                  "planner: matrix operand must be an input leaf");
    return rt_.tensor_info(n->tensor);
  }

  /// Cost of the fused Equation-1 kernel over matrix `info`.
  NodeCost pattern_cost(const TensorInfo& info) {
    const auto p = op_profile(RegistryOp::kPattern, Backend::kFused,
                              info.is_sparse);
    const double bytes =
        p.matrix_passes * static_cast<double>(info.bytes) +
        p.vector_words_per_elem * static_cast<double>(info.cols) *
            sizeof(real);
    return {p.launches,
            static_cast<double>(p.launches) * launch_ms_ + bw_ms(bytes)};
  }

  /// Cost of one generated elementwise kernel: `num_inputs` streams in,
  /// one out, `n_elems` elements each.
  NodeCost fused_ewise_cost(index_t n_elems, int num_inputs) {
    const auto p = op_profile(RegistryOp::kFusedEwise, Backend::kFused,
                              false);
    const double words = p.vector_words_per_elem *
                         static_cast<double>(num_inputs + 1) *
                         static_cast<double>(n_elems);
    return {p.launches, static_cast<double>(p.launches) * launch_ms_ +
                            bw_ms(words * sizeof(real))};
  }

  /// Cost of the fused row kernel: one matrix pass plus the epilogue's
  /// streams (program inputs + the output, `rows` elements each).
  NodeCost fused_row_cost(const TensorInfo& info, int num_inputs) {
    const auto p = op_profile(RegistryOp::kFusedRow, Backend::kFused,
                              info.is_sparse);
    const double words = p.vector_words_per_elem *
                         static_cast<double>(num_inputs + 1) *
                         static_cast<double>(info.rows);
    const double bytes = p.matrix_passes * static_cast<double>(info.bytes) +
                         words * sizeof(real);
    return {p.launches,
            static_cast<double>(p.launches) * launch_ms_ + bw_ms(bytes)};
  }

  /// Cost of the fused sddmm kernel: one pass over X plus the u/v/z/out
  /// vector traffic the profile declares.
  NodeCost fused_sddmm_cost(const TensorInfo& info) {
    const auto p = op_profile(RegistryOp::kFusedSddmm, Backend::kFused,
                              info.is_sparse);
    const double bytes = p.matrix_passes * static_cast<double>(info.bytes) +
                         p.vector_words_per_elem *
                             static_cast<double>(info.rows) * sizeof(real);
    return {p.launches,
            static_cast<double>(p.launches) * launch_ms_ + bw_ms(bytes)};
  }

  /// Modeled GPU cost of executing `n` as its own operator (leaves are
  /// free). Uses the registry-declared profile of the op's fused-backend
  /// implementation: launches * overhead + DRAM traffic at effective BW.
  NodeCost node_cost(const Node* n) {
    double mat_bytes = 0;
    bool sparse = false;
    RegistryOp op;
    switch (n->kind) {
      case OpKind::kInputMatrix:
      case OpKind::kInputVector:
        return {};
      case OpKind::kMv: {
        if (n->inputs[0]->kind == OpKind::kSparseMask) {
          // Masked product: streams X's structure, the substituted values
          // and z in, one row-length result out.
          const Node* mask = n->inputs[0].get();
          const auto info = matrix_info(mask->inputs[0].get());
          const auto p = op_profile(RegistryOp::kMaskedProduct,
                                    Backend::kFused, info.is_sparse);
          const double bytes =
              p.matrix_passes * static_cast<double>(info.bytes) +
              p.vector_words_per_elem * static_cast<double>(length(n)) *
                  sizeof(real) +
              static_cast<double>(length(mask)) * sizeof(real);
          return {p.launches, static_cast<double>(p.launches) * launch_ms_ +
                                  bw_ms(bytes)};
        }
        const auto info = matrix_info(n->inputs[0].get());
        mat_bytes = static_cast<double>(info.bytes);
        sparse = info.is_sparse;
        op = RegistryOp::kProduct;
        break;
      }
      case OpKind::kMvT: {
        const auto info = matrix_info(n->inputs[0].get());
        mat_bytes = static_cast<double>(info.bytes);
        sparse = info.is_sparse;
        op = RegistryOp::kTransposedProduct;
        break;
      }
      case OpKind::kEwiseMul:
        op = RegistryOp::kEwiseMul;
        break;
      case OpKind::kScale:
        op = RegistryOp::kScal;
        break;
      case OpKind::kAdd:
        op = RegistryOp::kAxpy;
        break;
      case OpKind::kMap:
        op = RegistryOp::kMap;
        break;
      case OpKind::kOuterMap:
        op = RegistryOp::kOuterMap;
        break;
      case OpKind::kSparseMask:
        op = RegistryOp::kSparseMask;
        break;
      case OpKind::kFusedPattern:
        return pattern_cost(matrix_info(n->fused_matrix.get()));
      case OpKind::kFusedEwise:
        return fused_ewise_cost(length(n), n->program.num_inputs);
      case OpKind::kFusedRow:
        return fused_row_cost(matrix_info(n->fused_matrix.get()),
                              n->program.num_inputs);
      case OpKind::kFusedSddmm:
        return fused_sddmm_cost(matrix_info(n->fused_matrix.get()));
      default:
        return {};
    }
    const auto p = op_profile(op, Backend::kFused, sparse);
    const double n_elems = static_cast<double>(length(n));
    const double bytes = p.matrix_passes * mat_bytes +
                         p.vector_words_per_elem * n_elems * sizeof(real);
    return {p.launches,
            static_cast<double>(p.launches) * launch_ms_ + bw_ms(bytes)};
  }

  /// Total modeled cost of the whole DAG — distinct reachable operator
  /// nodes, each costed once (matching the memoized interpreter).
  NodeCost dag_cost(const NodePtr& root) {
    NodeCost total;
    std::unordered_set<const Node*> seen;
    std::vector<const Node*> stack = {root.get()};
    while (!stack.empty()) {
      const Node* n = stack.back();
      stack.pop_back();
      if (n == nullptr || !seen.insert(n).second) continue;
      total += node_cost(n);
      for (const auto& in : n->inputs) stack.push_back(in.get());
      for (const auto& in :
           {n->fused_matrix, n->fused_v, n->fused_y, n->fused_z}) {
        stack.push_back(in.get());
      }
    }
    return total;
  }

 private:
  Runtime& rt_;
  double launch_ms_ = 0;
  double effective_gbs_ = 1;
  std::unordered_map<const Node*, index_t> len_;
};

/// Producers-first (post-order) list of distinct reachable nodes.
std::vector<const Node*> topo_order(const NodePtr& root) {
  std::vector<const Node*> order;
  std::unordered_set<const Node*> done;
  // Iterative post-order: (node, expanded?) pairs.
  std::vector<std::pair<const Node*, bool>> stack = {{root.get(), false}};
  while (!stack.empty()) {
    auto [n, expanded] = stack.back();
    stack.pop_back();
    if (n == nullptr || done.count(n) != 0) continue;
    if (expanded) {
      done.insert(n);
      order.push_back(n);
      continue;
    }
    stack.push_back({n, true});
    for (const auto& in : n->inputs) stack.push_back({in.get(), false});
    for (const auto& in :
         {n->fused_matrix, n->fused_v, n->fused_y, n->fused_z}) {
      stack.push_back({in.get(), false});
    }
  }
  return order;
}

/// One explored fusion opportunity — any template family. Candidates may
/// OVERLAP; the selection stage resolves overlaps by benefit.
struct Candidate {
  enum class Family { kEq1 = 0, kEwise, kRow, kSddmm };

  Family family = Family::kEq1;
  const char* kind = "";           ///< PlannedGroup::kind string
  std::string detail;
  const Node* sink = nullptr;      ///< the node the fused node replaces
  std::vector<const Node*> members;  ///< producers first; sink last

  NodeCost before;       ///< members executed operator-at-a-time
  NodeCost fused_after;  ///< the single fused kernel
  NodeCost kept_cost;    ///< members re-materialized for outside consumers

  // Family payloads (only the matching family's fields are set).
  Equation1Match match;               // eq1
  std::vector<NodePtr> ext_inputs;    // ewise / row: program input slots
  EwiseProgram program;               // ewise / row
  NodePtr row_matrix, row_y;          // row: the product's operands
  NodePtr sd_X, sd_u, sd_v, sd_z;     // sddmm operands
  real (*sd_f)(real) = nullptr;       // sddmm map
  std::string sd_fname;

  NodeCost after() const {
    NodeCost out = fused_after;
    out += kept_cost;
    return out;
  }
  double benefit_ms() const { return before.ms - after().ms; }
};

/// CSE-aware costing: members with a consumer OUTSIDE the candidate must
/// stay materialized (the rewriter's memoized clone keeps them for those
/// consumers), so the candidate pays their cost again — plus, transitively,
/// any member inputs those kept nodes need.
void apply_cse(Candidate& cand, const ConsumerMap& consumers,
               CostOracle& oracle) {
  const std::unordered_set<const Node*> member_set(cand.members.begin(),
                                                   cand.members.end());
  std::unordered_set<const Node*> kept;
  for (const Node* m : cand.members) {
    if (m == cand.sink) continue;
    const auto it = consumers.find(m);
    if (it == consumers.end()) continue;
    for (const Node* p : it->second) {
      if (member_set.count(p) == 0) {
        kept.insert(m);
        break;
      }
    }
  }
  bool grew = true;
  while (grew) {
    grew = false;
    for (const Node* k :
         std::vector<const Node*>(kept.begin(), kept.end())) {
      for (const auto& in : k->inputs) {
        const Node* c = in.get();
        if (c != cand.sink && member_set.count(c) != 0 &&
            kept.insert(c).second) {
          grew = true;
        }
      }
    }
  }
  for (const Node* k : kept) cand.kept_cost += oracle.node_cost(k);
}

/// Builds the EwiseProgram for an elementwise region (members in
/// producers-first order); external inputs become the program's slots.
void build_ewise_program(Candidate& cand) {
  std::unordered_set<const Node*> member_set(cand.members.begin(),
                                             cand.members.end());
  std::unordered_map<const Node*, int> ext_slot;
  for (const Node* m : cand.members) {
    for (const auto& in : m->inputs) {
      if (member_set.count(in.get()) != 0) continue;
      if (ext_slot.emplace(in.get(), static_cast<int>(cand.ext_inputs.size()))
              .second) {
        cand.ext_inputs.push_back(in);
      }
    }
  }
  cand.program.num_inputs = static_cast<int>(cand.ext_inputs.size());

  std::unordered_map<const Node*, int> step_slot;
  auto slot_of = [&](const NodePtr& in) {
    const auto it = step_slot.find(in.get());
    if (it != step_slot.end()) return it->second;
    return ext_slot.at(in.get());
  };
  for (const Node* m : cand.members) {
    EwiseStep step;
    switch (m->kind) {
      case OpKind::kScale:
        step.op = EwiseOp::kScale;
        step.a = slot_of(m->inputs[0]);
        step.scalar = m->scalar;
        break;
      case OpKind::kAdd:
        step.op = EwiseOp::kAdd;
        step.a = slot_of(m->inputs[0]);
        step.b = slot_of(m->inputs[1]);
        break;
      case OpKind::kEwiseMul:
        step.op = EwiseOp::kMul;
        step.a = slot_of(m->inputs[0]);
        step.b = slot_of(m->inputs[1]);
        break;
      case OpKind::kMap:
        step.op = EwiseOp::kMap;
        step.a = slot_of(m->inputs[0]);
        step.map_fn = m->map_f;
        step.map_name = m->map_name;
        break;
      default:
        FUSEDML_CHECK(false, "planner: non-elementwise node in ewise region");
    }
    step_slot.emplace(
        m, cand.program.num_inputs +
               static_cast<int>(cand.program.steps.size()));
    cand.program.steps.push_back(std::move(step));
  }
  FUSEDML_CHECK(cand.program.valid(), "planner built an invalid program");
}

/// Builds the epilogue program for a row candidate: slot 0 is the row
/// product (members.front()), external vectors take slots 1.., and the
/// chain members after the product become the steps.
void build_row_program(Candidate& cand) {
  const Node* product = cand.members.front();
  std::unordered_set<const Node*> member_set(cand.members.begin(),
                                             cand.members.end());
  std::unordered_map<const Node*, int> ext_slot;
  for (std::size_t i = 1; i < cand.members.size(); ++i) {
    for (const auto& in : cand.members[i]->inputs) {
      if (member_set.count(in.get()) != 0) continue;
      if (ext_slot
              .emplace(in.get(),
                       1 + static_cast<int>(cand.ext_inputs.size()))
              .second) {
        cand.ext_inputs.push_back(in);
      }
    }
  }
  cand.program.num_inputs = 1 + static_cast<int>(cand.ext_inputs.size());

  std::unordered_map<const Node*, int> value_slot;
  value_slot.emplace(product, 0);
  auto slot_of = [&](const NodePtr& in) {
    const auto it = value_slot.find(in.get());
    if (it != value_slot.end()) return it->second;
    return ext_slot.at(in.get());
  };
  for (std::size_t i = 1; i < cand.members.size(); ++i) {
    const Node* m = cand.members[i];
    EwiseStep step;
    switch (m->kind) {
      case OpKind::kScale:
        step.op = EwiseOp::kScale;
        step.a = slot_of(m->inputs[0]);
        step.scalar = m->scalar;
        break;
      case OpKind::kAdd:
        step.op = EwiseOp::kAdd;
        step.a = slot_of(m->inputs[0]);
        step.b = slot_of(m->inputs[1]);
        break;
      case OpKind::kEwiseMul:
        step.op = EwiseOp::kMul;
        step.a = slot_of(m->inputs[0]);
        step.b = slot_of(m->inputs[1]);
        break;
      case OpKind::kMap:
        step.op = EwiseOp::kMap;
        step.a = slot_of(m->inputs[0]);
        step.map_fn = m->map_f;
        step.map_name = m->map_name;
        break;
      default:
        FUSEDML_CHECK(false, "planner: non-elementwise node in row epilogue");
    }
    value_slot.emplace(
        m, cand.program.num_inputs +
               static_cast<int>(cand.program.steps.size()));
    cand.program.steps.push_back(std::move(step));
  }
  FUSEDML_CHECK(cand.program.valid(),
                "planner built an invalid row program");
}

/// EXPLORE, family 1: Equation-1 / Table-1 matches (largest extent at each
/// root), filtered by the materialization-point analysis. Matches touching
/// `claimed` nodes are skipped silently; unsafe matches are counted in
/// `rejected` when it is non-null (first fixpoint iteration only, so the
/// count is not inflated by re-enumeration).
void explore_equation1(const NodePtr& root, const ConsumerMap& consumers,
                       CostOracle& oracle,
                       const std::unordered_set<const Node*>& claimed,
                       std::vector<Candidate>& out, int* rejected) {
  std::unordered_set<const Node*> visited;
  std::vector<NodePtr> stack = {root};
  while (!stack.empty()) {
    NodePtr n = stack.back();
    stack.pop_back();
    if (!n || !visited.insert(n.get()).second) continue;
    if (auto m = match_equation1(n)) {
      const bool overlaps_claimed =
          std::any_of(m->covered.begin(), m->covered.end(),
                      [&](const Node* c) { return claimed.count(c) != 0; });
      if (!overlaps_claimed) {
        if (fusion_is_materialization_safe(*m, n, consumers)) {
          Candidate cand;
          cand.family = Candidate::Family::kEq1;
          cand.kind = "equation1";
          cand.sink = n.get();
          cand.members = m->covered;
          for (const Node* c : m->covered) cand.before += oracle.node_cost(c);
          cand.fused_after =
              oracle.pattern_cost(oracle.matrix_info(m->X.get()));
          // Materialization safety guarantees no member is consumed outside
          // the match, so nothing is kept.
          std::ostringstream detail;
          detail << "alpha=" << m->alpha;
          if (m->z) detail << " beta=" << m->beta;
          if (!m->v) detail << " (no v)";
          cand.detail = detail.str();
          cand.match = std::move(*m);
          out.push_back(std::move(cand));
        } else if (rejected != nullptr) {
          ++*rejected;
        }
      }
    }
    for (const auto& in : n->inputs) stack.push_back(in);
    for (const auto& in :
         {n->fused_matrix, n->fused_v, n->fused_y, n->fused_z}) {
      if (in) stack.push_back(in);
    }
  }
}

/// EXPLORE, family 2: maximal elementwise regions. A region grows from a
/// sink by absorbing elementwise producers whose consumers all lie inside
/// the region; nodes absorbed into one region do not seed their own (the
/// fixpoint loop re-enumerates leftovers after selection).
void explore_ewise(const std::vector<const Node*>& topo,
                   const ConsumerMap& consumers, CostOracle& oracle,
                   const std::unordered_set<const Node*>& claimed,
                   std::vector<Candidate>& out) {
  std::unordered_set<const Node*> absorbed;
  // Consumers-first: a region's sink is the member closest to the root.
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const Node* sink = *it;
    if (!is_ewise(sink) || claimed.count(sink) != 0 ||
        absorbed.count(sink) != 0) {
      continue;
    }
    std::unordered_set<const Node*> region = {sink};
    bool grew = true;
    while (grew) {
      grew = false;
      for (const Node* r :
           std::vector<const Node*>(region.begin(), region.end())) {
        for (const auto& in : r->inputs) {
          const Node* c = in.get();
          if (region.count(c) != 0 || claimed.count(c) != 0 ||
              !is_ewise(c)) {
            continue;
          }
          const auto cit = consumers.find(c);
          const bool internal =
              cit != consumers.end() &&
              std::all_of(cit->second.begin(), cit->second.end(),
                          [&](const Node* p) { return region.count(p); });
          if (internal) {
            region.insert(c);
            grew = true;
          }
        }
      }
    }
    if (region.size() < 2) continue;

    Candidate cand;
    cand.family = Candidate::Family::kEwise;
    cand.kind = "ewise_chain";
    cand.sink = sink;
    for (const Node* n : topo) {
      if (region.count(n) != 0) {
        cand.members.push_back(n);
        absorbed.insert(n);
      }
    }
    build_ewise_program(cand);
    for (const Node* m : cand.members) cand.before += oracle.node_cost(m);
    cand.fused_after =
        oracle.fused_ewise_cost(oracle.length(sink),
                                cand.program.num_inputs);
    cand.detail = cand.program.signature();
    out.push_back(std::move(cand));
  }
}

/// EXPLORE, family 3: the row template — a product (Mv over an input
/// matrix) whose value flows through a single-consumer elementwise chain.
/// The product itself may keep outside consumers (the CSE costing charges
/// for re-materializing it).
void explore_row(const std::vector<const Node*>& topo,
                 const ConsumerMap& consumers, CostOracle& oracle,
                 const std::unordered_set<const Node*>& claimed,
                 std::vector<Candidate>& out) {
  auto distinct_consumers = [&](const Node* n) {
    std::vector<const Node*> ds;
    const auto it = consumers.find(n);
    if (it == consumers.end()) return ds;
    for (const Node* p : it->second) {
      if (std::find(ds.begin(), ds.end(), p) == ds.end()) ds.push_back(p);
    }
    return ds;
  };

  for (const Node* n : topo) {
    if (n->kind != OpKind::kMv || claimed.count(n) != 0) continue;
    if (n->inputs[0]->kind != OpKind::kInputMatrix) continue;
    const index_t rows = oracle.length(n);

    std::vector<const Node*> chain = {n};
    std::unordered_set<const Node*> chain_set = {n};
    const Node* cur = n;
    while (true) {
      const auto ds = distinct_consumers(cur);
      // Mid-chain values live only in registers — they must have a single
      // consumer. The product may keep extra consumers (CSE materializes
      // it); the sink is materialized by the fused kernel anyway.
      if (cur != n && ds.size() != 1) break;
      const Node* next = nullptr;
      for (const Node* p : ds) {
        if (!is_ewise(p) || claimed.count(p) != 0 ||
            chain_set.count(p) != 0) {
          continue;
        }
        bool ok = true;
        for (const auto& in : p->inputs) {
          const Node* c = in.get();
          if (c == cur || c == n) continue;  // has a program slot
          if (chain_set.count(c) != 0 || claimed.count(c) != 0 ||
              oracle.length(c) != rows) {
            ok = false;
            break;
          }
        }
        if (ok) {
          next = p;
          break;
        }
      }
      if (next == nullptr) break;
      chain.push_back(next);
      chain_set.insert(next);
      cur = next;
    }
    if (chain.size() < 2) continue;

    Candidate cand;
    cand.family = Candidate::Family::kRow;
    cand.kind = "row_template";
    cand.sink = chain.back();
    cand.members = chain;
    cand.row_matrix = n->inputs[0];
    cand.row_y = n->inputs[1];
    build_row_program(cand);
    for (const Node* m : cand.members) cand.before += oracle.node_cost(m);
    cand.fused_after = oracle.fused_row_cost(
        oracle.matrix_info(cand.row_matrix.get()), cand.program.num_inputs);
    apply_cse(cand, consumers, oracle);
    cand.detail = cand.program.signature();
    out.push_back(std::move(cand));
  }
}

/// EXPLORE, family 4: the sparsity-exploiting sddmm template —
/// Mv(SparseMask(X, OuterMap(u, v, f)), z). The fused kernel evaluates
/// (X ⊙ f(u v^T)) * z only at nnz(X) and never materializes the m*n
/// outer map or the masked values.
void explore_sddmm(const std::vector<const Node*>& topo,
                   const ConsumerMap& consumers, CostOracle& oracle,
                   const std::unordered_set<const Node*>& claimed,
                   std::vector<Candidate>& out) {
  for (const Node* n : topo) {
    if (n->kind != OpKind::kMv || claimed.count(n) != 0) continue;
    if (n->inputs[0]->kind != OpKind::kSparseMask) continue;
    const Node* mask = n->inputs[0].get();
    if (mask->inputs[1]->kind != OpKind::kOuterMap) continue;
    const Node* om = mask->inputs[1].get();
    if (claimed.count(mask) != 0 || claimed.count(om) != 0) continue;

    Candidate cand;
    cand.family = Candidate::Family::kSddmm;
    cand.kind = "sddmm";
    cand.sink = n;
    cand.members = {om, mask, n};
    cand.sd_X = mask->inputs[0];
    cand.sd_u = om->inputs[0];
    cand.sd_v = om->inputs[1];
    cand.sd_z = n->inputs[1];
    cand.sd_f = om->map_f;
    cand.sd_fname = om->map_name;
    for (const Node* m : cand.members) cand.before += oracle.node_cost(m);
    cand.fused_after =
        oracle.fused_sddmm_cost(oracle.matrix_info(cand.sd_X.get()));
    apply_cse(cand, consumers, oracle);
    cand.detail = "f=" + cand.sd_fname;
    out.push_back(std::move(cand));
  }
}

/// SELECT, exact: maximum-benefit weighted set packing by DFS over the
/// benefit-sorted candidates with a suffix-sum upper bound. Include-first
/// ordering plus strict comparisons make ties deterministic (earlier /
/// higher-benefit candidates win).
std::vector<int> select_exact(const std::vector<Candidate>& cands,
                              const std::vector<std::vector<int>>& conflicts) {
  const int n = static_cast<int>(cands.size());
  std::vector<double> suffix(static_cast<std::size_t>(n) + 1, 0);
  for (int i = n - 1; i >= 0; --i) {
    suffix[i] = suffix[i + 1] + cands[i].benefit_ms();
  }
  std::vector<int> blocked(n, 0), cur, best;
  double cur_ben = 0, best_ben = -1;
  auto dfs = [&](auto&& self, int i) -> void {
    if (cur_ben + suffix[i] <= best_ben) return;
    if (i == n) {
      best = cur;
      best_ben = cur_ben;
      return;
    }
    if (blocked[i] == 0) {
      cur.push_back(i);
      cur_ben += cands[i].benefit_ms();
      for (int j : conflicts[i]) ++blocked[j];
      self(self, i + 1);
      for (int j : conflicts[i]) --blocked[j];
      cur.pop_back();
      cur_ben -= cands[i].benefit_ms();
    }
    self(self, i + 1);
  };
  dfs(dfs, 0);
  return best;
}

/// SELECT, greedy with one-step lookahead: scan in benefit order; before
/// taking a candidate, check whether two of its still-live conflicts could
/// jointly beat it — if so, skip it in their favor.
std::vector<int> select_greedy(const std::vector<Candidate>& cands,
                               const std::vector<std::vector<int>>& conflicts) {
  const int n = static_cast<int>(cands.size());
  std::vector<char> dead(n, 0);
  std::vector<int> picked;
  for (int t = 0; t < n; ++t) {
    if (dead[t] != 0) continue;
    const auto& cf = conflicts[t];
    double best_pair = -1;
    for (std::size_t a = 0; a < cf.size(); ++a) {
      if (dead[cf[a]] != 0) continue;
      for (std::size_t b = a + 1; b < cf.size(); ++b) {
        if (dead[cf[b]] != 0) continue;
        const auto& ca = conflicts[cf[a]];
        if (std::find(ca.begin(), ca.end(), cf[b]) != ca.end()) continue;
        best_pair = std::max(best_pair, cands[cf[a]].benefit_ms() +
                                            cands[cf[b]].benefit_ms());
      }
    }
    if (best_pair > cands[t].benefit_ms()) {
      dead[t] = 1;
      continue;
    }
    picked.push_back(t);
    for (int j : cf) dead[j] = 1;
  }
  return picked;
}

/// REWRITE: memoized clone-with-replacement — each selected candidate's
/// sink becomes its fused node, every other interior node is cloned fresh,
/// input leaves are shared. Kept members materialize naturally: their
/// outside consumers rebuild them as ordinary nodes.
class Rewriter {
 public:
  explicit Rewriter(
      const std::unordered_map<const Node*, const Candidate*>& chosen)
      : chosen_(chosen) {}

  NodePtr rebuild(const NodePtr& node) {
    if (!node) return nullptr;
    const auto it = memo_.find(node.get());
    if (it != memo_.end()) return it->second;

    NodePtr out;
    if (const auto cit = chosen_.find(node.get()); cit != chosen_.end()) {
      const Candidate& cand = *cit->second;
      out = std::make_shared<Node>();
      switch (cand.family) {
        case Candidate::Family::kEq1: {
          const Equation1Match& m = cand.match;
          out->kind = OpKind::kFusedPattern;
          out->scalar = m.alpha;
          out->scalar2 = m.beta;
          out->fused_matrix = rebuild(m.X);
          out->fused_v = rebuild(m.v);
          out->fused_y = rebuild(m.y);
          out->fused_z = rebuild(m.z);
          break;
        }
        case Candidate::Family::kEwise:
          out->kind = OpKind::kFusedEwise;
          out->program = cand.program;
          out->inputs.reserve(cand.ext_inputs.size());
          for (const auto& in : cand.ext_inputs) {
            out->inputs.push_back(rebuild(in));
          }
          break;
        case Candidate::Family::kRow:
          out->kind = OpKind::kFusedRow;
          out->program = cand.program;
          out->fused_matrix = rebuild(cand.row_matrix);
          out->fused_y = rebuild(cand.row_y);
          out->inputs.reserve(cand.ext_inputs.size());
          for (const auto& in : cand.ext_inputs) {
            out->inputs.push_back(rebuild(in));
          }
          break;
        case Candidate::Family::kSddmm:
          out->kind = OpKind::kFusedSddmm;
          out->fused_matrix = rebuild(cand.sd_X);
          out->fused_v = rebuild(cand.sd_u);
          out->fused_y = rebuild(cand.sd_v);
          out->fused_z = rebuild(cand.sd_z);
          out->map_f = cand.sd_f;
          out->map_name = cand.sd_fname;
          break;
      }
    } else if (node->kind == OpKind::kInputMatrix ||
               node->kind == OpKind::kInputVector) {
      out = node;  // leaves carry no rewritable structure — share them
    } else {
      out = std::make_shared<Node>(*node);
      for (auto& in : out->inputs) in = rebuild(in);
      out->fused_matrix = rebuild(out->fused_matrix);
      out->fused_v = rebuild(out->fused_v);
      out->fused_y = rebuild(out->fused_y);
      out->fused_z = rebuild(out->fused_z);
    }
    memo_.emplace(node.get(), out);
    return out;
  }

 private:
  const std::unordered_map<const Node*, const Candidate*>& chosen_;
  std::unordered_map<const Node*, NodePtr> memo_;
};

}  // namespace

std::string FusionPlan::explain() const {
  std::ostringstream os;
  os << std::fixed << std::setprecision(4);
  os << "fusion plan: " << groups.size() << " group(s)";
  if (rejected_multi_consumer > 0) {
    os << ", " << rejected_multi_consumer
       << " match(es) rejected (multi-consumer intermediate)";
  }
  os << "\n";
  int i = 0;
  for (const auto& g : groups) {
    os << "  [" << ++i << "] " << g.kind << " {" << g.detail << "} covers "
       << g.nodes_covered << " node(s); launches " << g.launches_before
       << " -> " << g.launches_after << "; modeled " << g.modeled_before_ms
       << " ms -> " << g.modeled_after_ms << " ms\n";
  }
  os << "  explored " << candidates_enumerated << " candidate(s) ("
     << (selection_exact ? "exact" : "greedy") << " selection); "
     << candidates_lost << " lost selection\n";
  for (const auto& l : losers) {
    os << "  lost: " << l.kind << " {" << l.detail << "} forgone "
       << l.forgone_benefit_ms << " ms\n";
  }
  os << "  totals: launches " << launches_unfused << " -> "
     << launches_planned << ", modeled " << modeled_unfused_ms << " ms -> "
     << modeled_planned_ms << " ms";
  return os.str();
}

FusionPlan plan_fusion(Runtime& rt, const NodePtr& root,
                       const PlannerOptions& opts) {
  FusionPlan plan;
  CostOracle oracle(rt);

  const auto cost_before = oracle.dag_cost(root);
  plan.launches_unfused = cost_before.launches;
  plan.modeled_unfused_ms = cost_before.ms;

  const auto consumers = consumer_map(root);
  const auto topo = topo_order(root);

  // Fixpoint: explore all families over the unclaimed DAG, select the best
  // compatible set, claim it, repeat — a second round picks up sub-regions
  // left behind when a larger overlapping candidate lost selection.
  std::vector<Candidate> chosen;
  std::unordered_set<const Node*> claimed;
  std::map<std::pair<const Node*, int>, LostCandidate> loser_map;
  bool first = true;
  while (true) {
    std::vector<Candidate> cands;
    if (opts.enable_pattern_fusion) {
      explore_equation1(root, consumers, oracle, claimed, cands,
                        first ? &plan.rejected_multi_consumer : nullptr);
    }
    if (opts.enable_ewise_fusion) {
      explore_ewise(topo, consumers, oracle, claimed, cands);
    }
    if (opts.enable_row_fusion) {
      explore_row(topo, consumers, oracle, claimed, cands);
    }
    if (opts.enable_sddmm_fusion) {
      explore_sddmm(topo, consumers, oracle, claimed, cands);
    }
    first = false;
    plan.candidates_enumerated += static_cast<int>(cands.size());

    std::vector<Candidate> viable;
    for (auto& c : cands) {
      if (c.after().launches >= c.before.launches) continue;
      if (c.benefit_ms() < opts.min_benefit_ms) continue;
      viable.push_back(std::move(c));
    }
    if (viable.empty()) break;

    // Benefit order; ties keep enumeration order (equation1 first).
    std::stable_sort(viable.begin(), viable.end(),
                     [](const Candidate& a, const Candidate& b) {
                       return a.benefit_ms() > b.benefit_ms();
                     });

    std::vector<std::unordered_set<const Node*>> member_sets;
    member_sets.reserve(viable.size());
    for (const auto& c : viable) {
      member_sets.emplace_back(c.members.begin(), c.members.end());
    }
    std::vector<std::vector<int>> conflicts(viable.size());
    for (std::size_t a = 0; a < viable.size(); ++a) {
      for (std::size_t b = a + 1; b < viable.size(); ++b) {
        const auto& small =
            member_sets[a].size() <= member_sets[b].size() ? member_sets[a]
                                                           : member_sets[b];
        const auto& large =
            member_sets[a].size() <= member_sets[b].size() ? member_sets[b]
                                                           : member_sets[a];
        const bool overlap =
            std::any_of(small.begin(), small.end(), [&](const Node* m) {
              return large.count(m) != 0;
            });
        if (overlap) {
          conflicts[a].push_back(static_cast<int>(b));
          conflicts[b].push_back(static_cast<int>(a));
        }
      }
    }

    const bool exact =
        static_cast<int>(viable.size()) <= opts.candidate_budget;
    if (!exact) plan.selection_exact = false;
    const auto picked = exact ? select_exact(viable, conflicts)
                              : select_greedy(viable, conflicts);
    if (picked.empty()) break;

    std::vector<char> is_picked(viable.size(), 0);
    for (int i : picked) is_picked[static_cast<std::size_t>(i)] = 1;
    for (std::size_t i = 0; i < viable.size(); ++i) {
      const auto key = std::make_pair(
          viable[i].sink, static_cast<int>(viable[i].family));
      if (is_picked[i] != 0) {
        loser_map.erase(key);
        for (const Node* m : viable[i].members) claimed.insert(m);
        chosen.push_back(std::move(viable[i]));
      } else {
        loser_map[key] = LostCandidate{viable[i].kind, viable[i].detail,
                                       viable[i].benefit_ms()};
      }
    }
  }

  for (const auto& cand : chosen) {
    PlannedGroup g;
    g.kind = cand.kind;
    g.detail = cand.detail;
    g.nodes_covered = static_cast<int>(cand.members.size());
    g.launches_before = cand.before.launches;
    g.launches_after = cand.after().launches;
    g.modeled_before_ms = cand.before.ms;
    g.modeled_after_ms = cand.after().ms;
    plan.groups.push_back(std::move(g));
  }

  plan.candidates_lost = static_cast<int>(loser_map.size());
  for (auto& [key, lost] : loser_map) plan.losers.push_back(std::move(lost));
  std::stable_sort(plan.losers.begin(), plan.losers.end(),
                   [](const LostCandidate& a, const LostCandidate& b) {
                     return a.forgone_benefit_ms > b.forgone_benefit_ms;
                   });
  if (plan.losers.size() > 3) plan.losers.resize(3);

  std::unordered_map<const Node*, const Candidate*> chosen_by_sink;
  for (const auto& cand : chosen) chosen_by_sink.emplace(cand.sink, &cand);
  Rewriter rewriter(chosen_by_sink);
  plan.root = rewriter.rebuild(root);

  const auto cost_after = oracle.dag_cost(plan.root);
  plan.launches_planned = cost_after.launches;
  plan.modeled_planned_ms = cost_after.ms;
  return plan;
}

}  // namespace fusedml::sysml
