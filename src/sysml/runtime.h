// The mini declarative-ML runtime — §4.4's three components wired together:
//   (i)  a cost model that schedules each operation onto the host or the
//        device (including the transfers the choice implies),
//   (ii) the GPU memory manager (memory_manager.h),
//   (iii) the backend GPU kernels (this paper's contribution, via
//        kernels::fused_* and the baselines).
//
// Data lives in "JVM" host space; the first time a tensor is shipped to the
// device it pays the JNI conversion (jni_bridge.h) plus the PCIe copy, and
// afterwards the memory manager keeps copies consistent. Running the same
// script with the GPU disabled yields the SystemML-CPU baseline of Table 6.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

#include "kernels/cpu_backend.h"
#include "kernels/fused_dense.h"
#include "kernels/fused_sparse.h"
#include "la/csr_matrix.h"
#include "la/dense_matrix.h"
#include "sysml/jni_bridge.h"
#include "sysml/memory_manager.h"
#include "vgpu/device.h"

namespace fusedml::sysml {

struct RuntimeOptions {
  bool enable_gpu = true;
  usize device_capacity = 0;  ///< 0 = the device's full global memory
  /// Scheduler bias: GPU estimated time is multiplied by this before the
  /// comparison (values > 1 make the scheduler more conservative).
  double gpu_cost_bias = 1.0;
  /// Upload costs are amortized over this many expected reuses when scoring
  /// a GPU placement — §3: "amortization of the cost of data transfer
  /// between the host and the device across multiple iterations of an ML
  /// algorithm". 1 = fully pessimistic (charge the whole upload to the
  /// current op).
  double transfer_amortization = 16.0;
};

struct RuntimeStats {
  double gpu_kernel_ms = 0.0;   ///< modeled device kernel time
  double cpu_op_ms = 0.0;       ///< modeled host op time
  double jni_ms = 0.0;          ///< representation conversion + heap copies
  double transfer_ms = 0.0;     ///< PCIe traffic (from the memory manager)
  std::uint64_t gpu_ops = 0;
  std::uint64_t cpu_ops = 0;
  /// For the "Fused Kernel Speedup" row of Table 6: device time of the
  /// pattern ops that ran on the GPU, and what the same ops would have cost
  /// on the CPU.
  double pattern_gpu_ms = 0.0;
  double pattern_cpu_equiv_ms = 0.0;

  double total_ms() const {
    return gpu_kernel_ms + cpu_op_ms + jni_ms + transfer_ms;
  }
};

class Runtime {
 public:
  explicit Runtime(vgpu::Device& dev, RuntimeOptions opts = {});

  // --- Data ingestion (host/JVM side) -------------------------------------
  TensorId add_sparse(la::CsrMatrix X, std::string name);
  TensorId add_dense(la::DenseMatrix X, std::string name);
  TensorId add_vector(std::vector<real> v, std::string name);
  TensorId new_vector(usize n, std::string name);

  // --- Operations (each scheduled CPU-vs-GPU by the cost model) -----------
  /// w = alpha * X^T * (v ⊙ (X*y)) + beta*z; pass 0 for absent v/z.
  TensorId op_pattern(real alpha, TensorId X, TensorId v, TensorId y,
                      real beta, TensorId z);
  /// w = alpha * X^T * y.
  TensorId op_transposed_product(TensorId X, TensorId y, real alpha = 1);
  /// p = X * y.
  TensorId op_product(TensorId X, TensorId y);
  void op_axpy(real alpha, TensorId x, TensorId y);
  /// out = x ⊙ y (new tensor).
  TensorId op_ewise_mul(TensorId x, TensorId y);
  /// out[i] = f(x[i]) (new tensor). Element-wise maps (sigmoid, exp, ...)
  /// run wherever the data is cheapest to reach; on the device they are one
  /// streaming kernel.
  TensorId op_map(TensorId x, real (*f)(real), const std::string& name);
  real op_dot(TensorId x, TensorId y);
  real op_nrm2(TensorId x);
  void op_scal(real alpha, TensorId x);

  /// Host view of a vector (synchronizes from the device if needed).
  std::span<const real> read_vector(TensorId id);

  const RuntimeStats& stats() const { return stats_; }
  const MemoryStats& memory_stats() const { return mm_.stats(); }
  const RuntimeOptions& options() const { return opts_; }

  /// One entry per executed op: what ran, where, and what it cost — the
  /// explain-plan a declarative system surfaces for debugging placement.
  struct TraceEntry {
    std::string op;
    bool on_gpu = false;
    double modeled_ms = 0;
  };
  const std::vector<TraceEntry>& trace() const { return trace_; }

 private:
  using Value =
      std::variant<la::CsrMatrix, la::DenseMatrix, std::vector<real>>;

  vgpu::Device& dev_;
  RuntimeOptions opts_;
  MemoryManager mm_;
  JniBridge jni_;
  kernels::CpuBackend cpu_;
  std::unordered_map<TensorId, Value> values_;
  std::unordered_map<TensorId, bool> native_;  ///< JNI conversion done?
  TensorId next_id_ = 1;
  RuntimeStats stats_;
  std::vector<TraceEntry> trace_;

  void record_trace(const char* op, bool on_gpu, double ms) {
    trace_.push_back({op, on_gpu, ms});
  }

  TensorId store(Value v, usize bytes, std::string name);
  Value& value(TensorId id);
  std::vector<real>& vec(TensorId id);
  const la::CsrMatrix* sparse(TensorId id);
  const la::DenseMatrix* dense(TensorId id);
  usize tensor_bytes(TensorId id);

  /// Moves a tensor to the device, paying JNI on first contact; charges
  /// into stats_. Returns false if the GPU is disabled.
  bool stage_on_device(TensorId id);
  void sync_to_host(TensorId id);

  /// Scheduler estimates (GB-scale streaming heuristics).
  double estimate_gpu_ms(usize bytes_touched, TensorId matrix_or_zero);
  double estimate_cpu_ms(usize bytes_touched);
  bool choose_gpu(usize bytes_touched, std::initializer_list<TensorId> inputs);
};

}  // namespace fusedml::sysml
