// The mini declarative-ML runtime — §4.4's three components wired together:
//   (i)  a cost model that schedules each operation onto the host or the
//        device (including the transfers the choice implies),
//   (ii) the GPU memory manager (memory_manager.h),
//   (iii) the backend GPU kernels (this paper's contribution, via the
//        unified operator registry — kernels/op_registry.h).
//
// Data lives in "JVM" host space; the first time a tensor is shipped to the
// device it pays the JNI conversion (jni_bridge.h) plus the PCIe copy, and
// afterwards the memory manager keeps copies consistent. Running the same
// script with the GPU disabled yields the SystemML-CPU baseline of Table 6.
//
// Every op dispatches through the shared OpRegistry under this runtime's
// RetryPolicy: injected device faults are retried with modeled backoff and
// degrade fused -> baseline -> CPU exactly like PatternExecutor's ops (the
// dispatch switch and the resilience loop exist once, in the registry).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

#include "common/resilience.h"
#include "kernels/op_registry.h"
#include "obs/plan_audit.h"
#include "la/csr_matrix.h"
#include "la/dense_matrix.h"
#include "sysml/jni_bridge.h"
#include "sysml/memory_manager.h"
#include "vgpu/device.h"

namespace fusedml {

class Cli;  // common/cli.h — flag parser for benches and examples

namespace sysml {

class Program;  // expr.h — the expression-builder frontend's compiled form

struct RuntimeOptions {
  bool enable_gpu = true;
  usize device_capacity = 0;  ///< 0 = the device's full global memory
  /// Scheduler bias: GPU estimated time is multiplied by this before the
  /// comparison (values > 1 make the scheduler more conservative).
  double gpu_cost_bias = 1.0;
  /// Upload costs are amortized over this many expected reuses when scoring
  /// a GPU placement — §3: "amortization of the cost of data transfer
  /// between the host and the device across multiple iterations of an ML
  /// algorithm". 1 = fully pessimistic (charge the whole upload to the
  /// current op).
  double transfer_amortization = 16.0;
};

/// Knobs for the explore/select/rewrite fusion planner
/// (sysml/fusion_planner.h). Defined here so a Runtime can carry the
/// options its programs are planned with (Program::prepare reads them) and
/// echo them in explain().
struct PlannerOptions {
  bool enable_pattern_fusion = true;  ///< Equation-1 / Table-1 candidates
  bool enable_ewise_fusion = true;    ///< generated elementwise-chain kernels
  /// A candidate must beat the unfused cost by at least this much modeled
  /// time (and strictly reduce launches) to be chosen.
  double min_benefit_ms = 0.0;
  bool enable_row_fusion = true;   ///< row template: product + epilogue
  bool enable_sddmm_fusion = true; ///< sparsity-exploiting sddmm template
  /// Overlap resolution is EXACT (optimal weighted set packing by DFS) while
  /// the enumerated candidate count is at most this; larger candidate sets
  /// fall back to benefit-ordered greedy with one-step lookahead.
  int candidate_budget = 24;
};

/// Declares and parses the standard planner flags (--planner-budget,
/// --planner-min-benefit, and the per-family --planner-eq1 / ewise / row /
/// sddmm enables) so every bench and example exposes the same knobs.
PlannerOptions planner_options_from_cli(Cli& cli);

struct RuntimeStats {
  double gpu_kernel_ms = 0.0;   ///< modeled device kernel time
  double cpu_op_ms = 0.0;       ///< modeled host op time
  double jni_ms = 0.0;          ///< representation conversion + heap copies
  double transfer_ms = 0.0;     ///< PCIe traffic (from the memory manager)
  std::uint64_t gpu_ops = 0;
  std::uint64_t cpu_ops = 0;
  std::uint64_t kernel_launches = 0;  ///< device launches across all ops —
                                      ///< the quantity fusion minimizes
  /// For the "Fused Kernel Speedup" row of Table 6: device time of the
  /// pattern ops that ran on the GPU, and what the same ops would have cost
  /// on the CPU.
  double pattern_gpu_ms = 0.0;
  double pattern_cpu_equiv_ms = 0.0;
  /// Time lost to fault recovery (wasted attempts + retry backoff), booked
  /// separately so the success-path metrics above stay comparable between
  /// clean and faulted runs. Included in total_ms().
  double resilience_overhead_ms = 0.0;
  /// ABFT verification sub-bucket: device launches/time spent proving GPU
  /// results against checksums (kernels/abft.h). Already INCLUDED in
  /// kernel_launches/gpu_kernel_ms — the device really issued them — and
  /// broken out here so policy overhead is visible and subtractable.
  std::uint64_t verify_launches = 0;
  double verify_ms = 0.0;
  /// HOST wall-clock milliseconds spent in the fusion planner
  /// (Program::prepare on cache misses). Planning is host work on the real
  /// clock, so it is deliberately EXCLUDED from total_ms() — the modeled
  /// timeline stays reproducible — and surfaced separately so a request's
  /// latency can be decomposed into queue/plan/exec/verify buckets.
  double plan_host_ms = 0.0;

  double total_ms() const {
    return gpu_kernel_ms + cpu_op_ms + jni_ms + transfer_ms +
           resilience_overhead_ms;
  }
};

/// Shape/storage summary of a registered tensor — what the fusion planner
/// needs to cost candidate plans without touching the values.
struct TensorInfo {
  bool is_matrix = false;
  bool is_sparse = false;
  index_t rows = 0;  ///< vectors: the length
  index_t cols = 0;
  usize bytes = 0;
  std::uint64_t nnz = 0;  ///< sparse matrices only
};

class Runtime {
 public:
  explicit Runtime(vgpu::Device& dev, RuntimeOptions opts = {});

  // --- Data ingestion (host/JVM side) -------------------------------------
  TensorId add_sparse(la::CsrMatrix X, std::string name);
  TensorId add_dense(la::DenseMatrix X, std::string name);
  TensorId add_vector(std::vector<real> v, std::string name);
  TensorId new_vector(usize n, std::string name);

  // --- Operations (each scheduled CPU-vs-GPU by the cost model) -----------
  /// w = alpha * X^T * (v ⊙ (X*y)) + beta*z; pass 0 for absent v/z.
  TensorId op_pattern(real alpha, TensorId X, TensorId v, TensorId y,
                      real beta, TensorId z);
  /// w = alpha * X^T * y.
  TensorId op_transposed_product(TensorId X, TensorId y, real alpha = 1);
  /// p = X * y.
  TensorId op_product(TensorId X, TensorId y);
  void op_axpy(real alpha, TensorId x, TensorId y);
  /// out = x ⊙ y (new tensor).
  TensorId op_ewise_mul(TensorId x, TensorId y);
  /// out[i] = f(x[i]) (new tensor). Element-wise maps (sigmoid, exp, ...)
  /// run wherever the data is cheapest to reach; on the device they are one
  /// streaming kernel.
  TensorId op_map(TensorId x, real (*f)(real), const std::string& name);
  /// One generated streaming kernel evaluating a whole elementwise chain
  /// (the fusion planner's collapsed kScale/kAdd/kEwiseMul/kMap runs):
  /// reads each input once, writes the output once, intermediates stay in
  /// registers. Bit-exact vs running the chain op-at-a-time.
  TensorId op_fused_ewise(const kernels::EwiseProgram& program,
                          std::span<const TensorId> inputs,
                          const std::string& name);
  real op_dot(TensorId x, TensorId y);
  real op_nrm2(TensorId x);
  void op_scal(real alpha, TensorId x);

  // --- Sparsity-template ops (kernels/fused_row.h) ------------------------
  /// The m*n values of f(u v^T), row-major — a vector tensor of length m*n
  /// (the dense intermediate the sddmm template exists to avoid).
  TensorId op_outer_map(TensorId u, TensorId v, real (*f)(real),
                        const std::string& name);
  /// X's values scaled elementwise by an outer-map `om` (at X's nonzeros
  /// for CSR storage, densely otherwise).
  TensorId op_sparse_mask(TensorId X, TensorId om);
  /// M * z where M is X's structure with substituted values `vals`.
  TensorId op_masked_product(TensorId X, TensorId vals, TensorId z);
  /// Row template: out[r] = program(X*y |_r, ext_0[r], ...), one kernel.
  /// Program slot 0 is the row product; ext fills the remaining slots.
  TensorId op_fused_row(TensorId X, TensorId y,
                        const kernels::EwiseProgram& program,
                        std::span<const TensorId> ext);
  /// Sparsity-exploiting template: (X ⊙ f(u v^T)) * z at nnz(X), one kernel.
  TensorId op_fused_sddmm(TensorId X, TensorId u, TensorId v, TensorId z,
                          real (*f)(real), const std::string& name);

  /// Host view of a vector (synchronizes from the device if needed).
  std::span<const real> read_vector(TensorId id);

  /// Overwrites a vector tensor's host values in place (sizes must match).
  /// The device copy, if any, is invalidated — the next device op re-uploads.
  /// This is how solvers thread loop-carried host state (CG directions,
  /// trial weights) into a cached Program without re-registering tensors.
  void write_vector(TensorId id, std::span<const real> values);

  /// Runs a prepared expression Program: plans it for the current leaf
  /// shapes on first contact (cached afterwards) and interprets the chosen
  /// DAG. The single public execution entry point for algorithm scripts.
  TensorId run(Program& program, const std::string& output = "");

  /// Shape/storage info for the planner's cost model.
  TensorInfo tensor_info(TensorId id);

  const RuntimeStats& stats() const { return stats_; }
  const MemoryStats& memory_stats() const { return mm_.stats(); }
  const RuntimeOptions& options() const { return opts_; }

  /// Fusion-planner knobs applied when this runtime prepares a Program
  /// (Program::prepare passes them to plan_fusion and keys its plan cache
  /// on them). Change them BEFORE preparing; already-planned programs
  /// re-plan only when the options differ from the cached plan's.
  void set_planner_options(const PlannerOptions& opts) {
    planner_opts_ = opts;
  }
  const PlannerOptions& planner_options() const { return planner_opts_; }

  /// Fault-handling knobs shared with the registry's resilient dispatch.
  RetryPolicy& retry_policy() { return retry_; }
  const RetryPolicy& retry_policy() const { return retry_; }
  /// Faults absorbed across every op this runtime executed.
  const ResilienceStats& resilience() const { return resilience_; }

  /// ABFT verification coverage for every op this runtime dispatches
  /// (forwarded to the registry's verifier; see kernels/abft.h).
  void set_verify_policy(kernels::VerifyPolicy policy) {
    registry_.set_verify_policy(policy);
  }
  kernels::VerifyPolicy verify_policy() const {
    return registry_.verify_policy();
  }

  /// Books one solver checkpoint rollback (sysml/checkpoint.h) into this
  /// runtime's resilience totals so RunReports and the serving layer see
  /// rollbacks next to the faults that caused them.
  void note_rollback() { ++resilience_.rollbacks; }

  /// Modeled deadline for everything this runtime executes (0 = none): once
  /// stats().total_ms() reaches it, the next op dispatch throws
  /// DeadlineError instead of running, and each dispatch's retry budget is
  /// clamped to the time remaining — a script on a doomed request stops
  /// burning backoffs mid-op instead of completing six retries per tier.
  /// The serving layer sets this to a request's remaining deadline.
  void set_modeled_deadline(double deadline_ms) { deadline_ms_ = deadline_ms; }
  double modeled_deadline() const { return deadline_ms_; }

  kernels::OpRegistry& registry() { return registry_; }
  vgpu::Device& device() { return dev_; }

  /// One entry per executed op: what ran, where, and what it cost — the
  /// explain-plan a declarative system surfaces for debugging placement.
  struct TraceEntry {
    std::string op;
    bool on_gpu = false;
    double modeled_ms = 0;
  };
  const std::vector<TraceEntry>& trace() const { return trace_; }

  /// Records the fusion planner's chosen plan so explain() can print it.
  void note_plan(std::string explain_text) {
    plan_explain_ = std::move(explain_text);
  }

  /// Books host wall-clock planning time (Program::prepare) into
  /// stats().plan_host_ms and, when tracing is on, drops an instant marker
  /// on the modeled timeline (host work never advances the modeled clock).
  void note_plan_prepare(double host_ms, bool cache_hit);

  // --- Plan-vs-actual audit ----------------------------------------------
  /// Records what the planner predicts ONE execution of the upcoming DAG
  /// will cost; the DAG interpreter then reports observations per execute().
  void note_plan_prediction(std::uint64_t launches_per_exec,
                            double ms_per_exec) {
    plan_audit_.has_prediction = true;
    plan_audit_.predicted_launches_per_exec = launches_per_exec;
    plan_audit_.predicted_ms_per_exec = ms_per_exec;
  }
  /// One DAG execution's observed kernel-launch and modeled-time deltas
  /// (called by dag execute()). The currently-armed prediction is summed
  /// into the audit's accumulators here, so scripts that alternate between
  /// several planned programs (each re-arming before run) audit correctly.
  void note_plan_execution(std::uint64_t launches, double ms) {
    ++plan_audit_.executions;
    plan_audit_.observed_launches += launches;
    plan_audit_.observed_ms += ms;
    if (plan_audit_.has_prediction) {
      plan_audit_.predicted_launches_accum +=
          plan_audit_.predicted_launches_per_exec;
      plan_audit_.predicted_ms_accum += plan_audit_.predicted_ms_per_exec;
    }
  }
  const obs::PlanAudit& plan_audit() const { return plan_audit_; }
  /// Database-style explain: the noted fusion plan (if any) followed by the
  /// executed-op trace with placement and modeled cost.
  std::string explain() const;

 private:
  using Value =
      std::variant<la::CsrMatrix, la::DenseMatrix, std::vector<real>>;

  vgpu::Device& dev_;
  RuntimeOptions opts_;
  MemoryManager mm_;
  JniBridge jni_;
  kernels::OpRegistry registry_;
  std::unordered_map<TensorId, Value> values_;
  std::unordered_map<TensorId, bool> native_;  ///< JNI conversion done?
  TensorId next_id_ = 1;
  RuntimeStats stats_;
  PlannerOptions planner_opts_;
  RetryPolicy retry_;
  ResilienceStats resilience_;
  double deadline_ms_ = 0.0;
  std::vector<TraceEntry> trace_;
  std::string plan_explain_;
  obs::PlanAudit plan_audit_;

  void record_trace(const char* op, bool on_gpu, double ms) {
    trace_.push_back({op, on_gpu, ms});
  }

  const kernels::CpuBackend& cpu() const { return registry_.cpu(); }

  TensorId store(Value v, usize bytes, std::string name);
  Value& value(TensorId id);
  std::vector<real>& vec(TensorId id);
  const la::CsrMatrix* sparse(TensorId id);
  const la::DenseMatrix* dense(TensorId id);
  usize tensor_bytes(TensorId id);

  /// Moves a tensor to the device, paying JNI on first contact; charges
  /// into stats_. Returns false if the GPU is disabled.
  bool stage_on_device(TensorId id);
  void sync_to_host(TensorId id);

  /// Registry dispatch under this runtime's RetryPolicy. `preferred` is the
  /// scheduler's placement (kFused when the GPU won, kCpu otherwise); a
  /// fault-degraded run may come back on a different backend — callers book
  /// by outcome.backend_used, not by the request.
  kernels::KernelOutcome run_resilient(
      kernels::Backend preferred,
      const std::function<kernels::KernelOutcome(kernels::Backend)>& attempt,
      std::span<real> inout = {});

  /// Books one outcome into stats_ + trace_ by where it actually ran.
  void book(const kernels::KernelOutcome& outcome, const char* op,
            bool pattern_class);

  /// Registers `w` as a new tensor, on-device when the producing op ran
  /// there (born in native/device space).
  TensorId emit(std::vector<real> w, bool on_gpu, std::string name);

  /// Scheduler estimates (GB-scale streaming heuristics).
  double estimate_gpu_ms(usize bytes_touched, TensorId matrix_or_zero);
  double estimate_cpu_ms(usize bytes_touched);
  bool choose_gpu(usize bytes_touched, std::initializer_list<TensorId> inputs);
  bool choose_gpu_span(usize bytes_touched, std::span<const TensorId> inputs);
};

}  // namespace sysml
}  // namespace fusedml
