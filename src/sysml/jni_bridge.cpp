#include "sysml/jni_bridge.h"

namespace fusedml::sysml {

namespace {
double ms_for(double bytes, double gbs) { return bytes / gbs / 1e6; }
}  // namespace

JniCharge JniBridge::sparse_to_native(const la::CsrMatrix& X) const {
  JniCharge c;
  const auto bytes = static_cast<double>(X.bytes());
  c.convert_ms = ms_for(bytes, costs_.sparse_convert_gbs) +
                 static_cast<double>(X.rows()) * costs_.per_row_overhead_ns /
                     1e6 +
                 costs_.per_call_overhead_us / 1e3;
  c.copy_ms = ms_for(bytes, costs_.heap_copy_gbs);
  return c;
}

JniCharge JniBridge::dense_to_native(const la::DenseMatrix& X) const {
  JniCharge c;
  const auto bytes = static_cast<double>(X.bytes());
  c.convert_ms = ms_for(bytes, costs_.dense_convert_gbs) +
                 static_cast<double>(X.rows()) * costs_.per_row_overhead_ns /
                     1e6 +
                 costs_.per_call_overhead_us / 1e3;
  c.copy_ms = ms_for(bytes, costs_.heap_copy_gbs);
  return c;
}

JniCharge JniBridge::vector_to_native(usize n) const {
  JniCharge c;
  const auto bytes = static_cast<double>(n) * sizeof(real);
  c.convert_ms = costs_.per_call_overhead_us / 1e3;
  c.copy_ms = ms_for(bytes, costs_.heap_copy_gbs);
  return c;
}

}  // namespace fusedml::sysml
