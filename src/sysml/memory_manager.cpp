#include "sysml/memory_manager.h"

#include <algorithm>

#include "common/error.h"

namespace fusedml::sysml {

MemoryManager::MemoryManager(vgpu::Device& dev, usize capacity_bytes)
    : dev_(dev),
      capacity_(capacity_bytes == 0 ? dev.spec().global_mem_bytes
                                    : capacity_bytes) {}

MemoryManager::Entry& MemoryManager::entry(TensorId id) {
  const auto it = entries_.find(id);
  FUSEDML_CHECK(it != entries_.end(), "unknown tensor id");
  return it->second;
}

const MemoryManager::Entry& MemoryManager::entry(TensorId id) const {
  const auto it = entries_.find(id);
  FUSEDML_CHECK(it != entries_.end(), "unknown tensor id");
  return it->second;
}

void MemoryManager::register_tensor(TensorId id, usize bytes,
                                    std::string name) {
  FUSEDML_CHECK(entries_.find(id) == entries_.end(),
                "tensor id already registered");
  FUSEDML_CHECK(bytes <= capacity_,
                "tensor larger than device memory: " + name);
  Entry e;
  e.bytes = bytes;
  e.name = std::move(name);
  entries_.emplace(id, std::move(e));
}

void MemoryManager::touch(TensorId id) {
  Entry& e = entry(id);
  if (e.resident) {
    lru_.erase(e.lru_pos);
    lru_.push_front(id);
    e.lru_pos = lru_.begin();
  }
}

double MemoryManager::transfer(usize bytes, bool to_device) {
  const double ms = dev_.transfer_h2d_ms(bytes);  // symmetric link model
  stats_.transfer_ms += ms;
  if (to_device) {
    ++stats_.h2d_transfers;
    stats_.h2d_bytes += bytes;
  } else {
    ++stats_.d2h_transfers;
    stats_.d2h_bytes += bytes;
  }
  return ms;
}

double MemoryManager::evict_for(usize bytes_needed) {
  double ms = 0.0;
  while (used_bytes_ + bytes_needed > capacity_) {
    FUSEDML_CHECK(!lru_.empty(),
                  "cannot evict enough to fit allocation");
    const TensorId victim = lru_.back();
    Entry& v = entry(victim);
    // Task (d): write back a device-dirty victim before dropping it.
    if (v.state == Residency::kDeviceDirty) {
      ms += transfer(v.bytes, /*to_device=*/false);
    }
    lru_.pop_back();
    v.resident = false;
    v.state = Residency::kHostOnly;
    v.reusable_slot = true;
    used_bytes_ -= v.bytes;
    ++stats_.evictions;
  }
  return ms;
}

double MemoryManager::ensure_on_device(TensorId id) {
  Entry& e = entry(id);
  double ms = 0.0;
  if (!e.resident) {
    ms += evict_for(e.bytes);
    if (e.reusable_slot) {
      ++stats_.allocation_reuses;  // task (c): slot marked for reuse
      e.reusable_slot = false;
    }
    used_bytes_ += e.bytes;
    stats_.peak_device_bytes = std::max(stats_.peak_device_bytes, used_bytes_);
    lru_.push_front(id);
    e.lru_pos = lru_.begin();
    e.resident = true;
    ms += transfer(e.bytes, /*to_device=*/true);
    e.state = Residency::kSynced;
    return ms;
  }
  touch(id);
  if (e.state == Residency::kHostDirty) {
    // Host wrote since the last upload: refresh the device copy.
    ms += transfer(e.bytes, /*to_device=*/true);
    e.state = Residency::kSynced;
  }
  return ms;
}

double MemoryManager::allocate_on_device(TensorId id) {
  Entry& e = entry(id);
  double ms = 0.0;
  if (!e.resident) {
    ms += evict_for(e.bytes);
    if (e.reusable_slot) {
      ++stats_.allocation_reuses;
      e.reusable_slot = false;
    }
    used_bytes_ += e.bytes;
    stats_.peak_device_bytes = std::max(stats_.peak_device_bytes, used_bytes_);
    lru_.push_front(id);
    e.lru_pos = lru_.begin();
    e.resident = true;
  } else {
    touch(id);
  }
  e.state = Residency::kDeviceDirty;
  return ms;
}

double MemoryManager::ensure_on_host(TensorId id) {
  Entry& e = entry(id);
  if (e.resident && e.state == Residency::kDeviceDirty) {
    const double ms = transfer(e.bytes, /*to_device=*/false);
    e.state = Residency::kSynced;
    return ms;
  }
  return 0.0;
}

void MemoryManager::mark_device_dirty(TensorId id) {
  Entry& e = entry(id);
  FUSEDML_CHECK(e.resident, "cannot dirty a non-resident device copy");
  touch(id);
  e.state = Residency::kDeviceDirty;
}

void MemoryManager::mark_host_dirty(TensorId id) {
  Entry& e = entry(id);
  e.state = e.resident ? Residency::kHostDirty : Residency::kHostOnly;
}

double MemoryManager::release(TensorId id) {
  Entry& e = entry(id);
  if (!e.resident) return 0.0;
  const double ms = ensure_on_host(id);
  lru_.erase(e.lru_pos);
  e.resident = false;
  e.state = Residency::kHostOnly;
  e.reusable_slot = true;
  used_bytes_ -= e.bytes;
  return ms;
}

void MemoryManager::unregister(TensorId id) {
  Entry& e = entry(id);
  if (e.resident) {
    lru_.erase(e.lru_pos);
    used_bytes_ -= e.bytes;
  }
  entries_.erase(id);
}

bool MemoryManager::on_device(TensorId id) const {
  return entry(id).resident;
}

Residency MemoryManager::residency(TensorId id) const {
  return entry(id).state;
}

}  // namespace fusedml::sysml
