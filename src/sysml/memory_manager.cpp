#include "sysml/memory_manager.h"

#include <algorithm>

#include "common/error.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fusedml::sysml {

MemoryManager::MemoryManager(vgpu::Device& dev, usize capacity_bytes)
    : dev_(dev),
      capacity_(capacity_bytes == 0 ? dev.spec().global_mem_bytes
                                    : capacity_bytes) {}

MemoryManager::Entry& MemoryManager::entry(TensorId id) {
  const auto it = entries_.find(id);
  FUSEDML_CHECK(it != entries_.end(), "unknown tensor id");
  return it->second;
}

const MemoryManager::Entry& MemoryManager::entry(TensorId id) const {
  const auto it = entries_.find(id);
  FUSEDML_CHECK(it != entries_.end(), "unknown tensor id");
  return it->second;
}

void MemoryManager::register_tensor(TensorId id, usize bytes,
                                    std::string name) {
  FUSEDML_CHECK(entries_.find(id) == entries_.end(),
                "tensor id already registered");
  // Over-capacity tensors are accepted: they stay host-resident forever and
  // the runtime streams ops over them (needs_streaming) instead of failing.
  Entry e;
  e.bytes = bytes;
  e.name = std::move(name);
  entries_.emplace(id, std::move(e));
}

bool MemoryManager::needs_streaming(TensorId id) const {
  return entry(id).bytes > capacity_;
}

void MemoryManager::touch(TensorId id) {
  Entry& e = entry(id);
  if (e.resident) {
    lru_.erase(e.lru_pos);
    lru_.push_front(id);
    e.lru_pos = lru_.begin();
  }
}

double MemoryManager::transfer(usize bytes, bool to_device) {
  // The PCIe link can fault (injected); retry with modeled backoff, charging
  // every failed attempt and the backoff wait into the transfer time.
  double ms = 0.0;
  int attempt = 1;
  for (;; ++attempt) {
    try {
      ms += dev_.transfer_h2d_ms(bytes);  // symmetric link model
      break;
    } catch (const Error& e) {
      if (!is_transient(e.code())) throw;
      ++stats_.resilience.faults_seen;
      stats_.resilience.wasted_ms += e.penalty_ms();
      ms += e.penalty_ms();
      if (attempt >= retry_.max_attempts) throw;
      const double wait = retry_.backoff_ms(attempt);
      stats_.resilience.backoff_ms += wait;
      ms += wait;
      ++stats_.resilience.retries;
    }
  }
  if (attempt > 1) ++stats_.resilience.recoveries;
  stats_.transfer_ms += ms;
  if (to_device) {
    ++stats_.h2d_transfers;
    stats_.h2d_bytes += bytes;
  } else {
    ++stats_.d2h_transfers;
    stats_.d2h_bytes += bytes;
  }
  return ms;
}

double MemoryManager::evict_one() {
  FUSEDML_CHECK(!lru_.empty(), "evict_one on empty LRU");
  const TensorId victim = lru_.back();
  Entry& v = entry(victim);
  double ms = 0.0;
  const bool writeback = v.state == Residency::kDeviceDirty;
  // Task (d): write back a device-dirty victim before dropping it.
  if (writeback) {
    ms += transfer(v.bytes, /*to_device=*/false);
  }
  lru_.pop_back();
  v.resident = false;
  v.state = Residency::kHostOnly;
  v.reusable_slot = true;
  used_bytes_ -= v.bytes;
  ++stats_.evictions;
  if (obs::recorder().enabled()) {
    obs::TraceEvent ev;
    ev.name = "evict:" + v.name;
    ev.cat = "memory";
    ev.track = obs::Track::kMemory;
    // The writeback's PCIe time already advanced the clock inside
    // transfer(); the eviction marker itself is instant.
    ev.ts_ms = obs::recorder().now_ms();
    ev.num_args.emplace_back("bytes", static_cast<double>(v.bytes));
    ev.num_args.emplace_back("writeback", writeback ? 1.0 : 0.0);
    obs::recorder().record(std::move(ev));
  }
  if (obs::metrics().enabled()) {
    obs::metrics().counter("mm.evictions").add();
    obs::metrics().counter("mm.evicted_bytes").add(v.bytes);
    if (writeback) obs::metrics().counter("mm.writebacks").add();
  }
  return ms;
}

double MemoryManager::evict_for(usize bytes_needed) {
  double ms = 0.0;
  while (used_bytes_ + bytes_needed > capacity_) {
    if (lru_.empty()) {
      throw DeviceOomError("cannot evict enough to fit allocation of " +
                           std::to_string(bytes_needed) + " bytes");
    }
    ms += evict_one();
  }
  return ms;
}

double MemoryManager::absorb_injected_oom() {
  vgpu::FaultInjector* injector = dev_.fault_injector();
  if (injector == nullptr || !injector->next_alloc_oom()) return 0.0;
  ++stats_.resilience.faults_seen;
  // Graceful degradation: treat the spurious OOM as memory pressure, shed
  // the LRU victim, and proceed. With nothing left to evict it is real.
  if (lru_.empty()) {
    throw DeviceOomError("injected device OOM with nothing left to evict");
  }
  const double ms = evict_one();
  ++stats_.resilience.recoveries;
  return ms;
}

double MemoryManager::make_resident(Entry& e, TensorId id) {
  double ms = absorb_injected_oom();
  ms += evict_for(e.bytes);
  if (e.reusable_slot) {
    ++stats_.allocation_reuses;  // task (c): slot marked for reuse
    e.reusable_slot = false;
  }
  used_bytes_ += e.bytes;
  stats_.peak_device_bytes = std::max(stats_.peak_device_bytes, used_bytes_);
  lru_.push_front(id);
  e.lru_pos = lru_.begin();
  e.resident = true;
  return ms;
}

double MemoryManager::ensure_on_device(TensorId id) {
  Entry& e = entry(id);
  if (e.bytes > capacity_) {
    throw DeviceOomError("tensor '" + e.name +
                         "' larger than device capacity — stream the op");
  }
  double ms = 0.0;
  if (!e.resident) {
    ms += make_resident(e, id);
    ms += transfer(e.bytes, /*to_device=*/true);
    e.state = Residency::kSynced;
    return ms;
  }
  touch(id);
  if (e.state == Residency::kHostDirty) {
    // Host wrote since the last upload: refresh the device copy.
    ms += transfer(e.bytes, /*to_device=*/true);
    e.state = Residency::kSynced;
  }
  return ms;
}

double MemoryManager::allocate_on_device(TensorId id) {
  Entry& e = entry(id);
  if (e.bytes > capacity_) {
    throw DeviceOomError("tensor '" + e.name +
                         "' larger than device capacity — stream the op");
  }
  double ms = 0.0;
  if (!e.resident) {
    ms += make_resident(e, id);
  } else {
    touch(id);
  }
  e.state = Residency::kDeviceDirty;
  return ms;
}

double MemoryManager::ensure_on_host(TensorId id) {
  Entry& e = entry(id);
  if (e.resident && e.state == Residency::kDeviceDirty) {
    const double ms = transfer(e.bytes, /*to_device=*/false);
    e.state = Residency::kSynced;
    return ms;
  }
  return 0.0;
}

void MemoryManager::mark_device_dirty(TensorId id) {
  Entry& e = entry(id);
  FUSEDML_CHECK(e.resident, "cannot dirty a non-resident device copy");
  touch(id);
  e.state = Residency::kDeviceDirty;
}

void MemoryManager::mark_host_dirty(TensorId id) {
  Entry& e = entry(id);
  e.state = e.resident ? Residency::kHostDirty : Residency::kHostOnly;
}

double MemoryManager::release(TensorId id) {
  Entry& e = entry(id);
  if (!e.resident) return 0.0;
  const double ms = ensure_on_host(id);
  lru_.erase(e.lru_pos);
  e.resident = false;
  e.state = Residency::kHostOnly;
  e.reusable_slot = true;
  used_bytes_ -= e.bytes;
  return ms;
}

void MemoryManager::unregister(TensorId id) {
  Entry& e = entry(id);
  if (e.resident) {
    lru_.erase(e.lru_pos);
    used_bytes_ -= e.bytes;
  }
  entries_.erase(id);
}

bool MemoryManager::on_device(TensorId id) const {
  return entry(id).resident;
}

Residency MemoryManager::residency(TensorId id) const {
  return entry(id).state;
}

}  // namespace fusedml::sysml
