// ASCII table rendering — every bench prints the paper's rows/series through
// this so output stays uniform and machine-greppable.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace fusedml {

/// Column-aligned ASCII table with a header row. Cells are strings; numeric
/// convenience overloads format with a fixed precision.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Begin a new row; subsequent add() calls fill it left to right.
  Table& row();

  Table& add(const std::string& cell);
  Table& add(const char* cell);
  Table& add(double value, int precision = 2);
  Table& add(long long value);
  Table& add(int value) { return add(static_cast<long long>(value)); }
  Table& add(std::size_t value) { return add(static_cast<long long>(value)); }

  /// Number of data rows so far.
  std::size_t row_count() const { return rows_.size(); }

  /// Render with box-drawing separators.
  std::string str() const;

  /// Render as '|'-separated GitHub markdown (for EXPERIMENTS.md capture).
  std::string markdown() const;

  /// Render as RFC-4180-style CSV (cells containing commas/quotes/newlines
  /// are quoted) — for plotting the figure benches downstream.
  std::string csv() const;

  friend std::ostream& operator<<(std::ostream& os, const Table& t);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helpers shared by benches.
std::string format_ms(double ms);
std::string format_speedup(double x);
std::string format_count(double n);  // 1.2e+06 style for big counters

}  // namespace fusedml
