// Wall-clock timing utilities used by benches and the Table-2 profiler.
#pragma once

#include <chrono>
#include <string>
#include <unordered_map>
#include <vector>

namespace fusedml {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() { reset(); }

  void reset() { start_ = clock::now(); }

  /// Elapsed time since construction / last reset, in milliseconds.
  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(clock::now() - start_)
        .count();
  }

  double elapsed_s() const { return elapsed_ms() / 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates named time buckets — the instrument behind Table 2's
/// "percentage of CPU compute time in pattern vs BLAS-1" breakdown.
class Profiler {
 public:
  /// Add `ms` milliseconds to bucket `name`.
  void add(const std::string& name, double ms);

  /// Total across all buckets.
  double total_ms() const;

  /// Time in a bucket (0 if absent).
  double bucket_ms(const std::string& name) const;

  /// Bucket as a percentage of the total (0 if total is 0).
  double percent(const std::string& name) const;

  /// All bucket names, sorted descending by time.
  std::vector<std::string> buckets_by_time() const;

  void clear();

 private:
  std::unordered_map<std::string, double> buckets_;
};

/// RAII helper: times a scope into a Profiler bucket.
class ScopedTimer {
 public:
  ScopedTimer(Profiler& profiler, std::string bucket)
      : profiler_(profiler), bucket_(std::move(bucket)) {}
  ~ScopedTimer() { profiler_.add(bucket_, timer_.elapsed_ms()); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Profiler& profiler_;
  std::string bucket_;
  Timer timer_;
};

}  // namespace fusedml
