// Resilience accounting and policy knobs shared by every layer that can
// recover from injected (or, on real hardware, actual) faults: the pattern
// executor, the streaming pipeline, and the sysml memory manager.
//
// All backoff is MODELED time — it is charged to the cost model alongside
// kernel and transfer time so benches report the overhead of a retry policy
// honestly, but no host thread ever sleeps.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace fusedml {

/// How a resilient layer responds to transient faults and OOM.
struct RetryPolicy {
  /// Attempts per backend (first try + retries) before degrading.
  int max_attempts = 6;
  /// Modeled exponential backoff: base * multiplier^(attempt-1), capped.
  double backoff_base_ms = 0.05;
  double backoff_multiplier = 2.0;
  double backoff_cap_ms = 5.0;
  /// Permit fused -> baseline-GPU -> CPU degradation when retries on the
  /// current backend are exhausted (or the device reports OOM).
  bool allow_backend_fallback = true;
  /// Total modeled retry budget for one dispatch: once the overhead already
  /// burned (wasted attempts + backoff) reaches this, the dispatch stops
  /// retrying AND stops degrading and rethrows the last fault immediately.
  /// 0 = unbounded (the pre-budget behavior). The serving layer sets this to
  /// a request's remaining deadline so an op on a doomed request fails fast
  /// instead of spending six backoffs per backend tier.
  double max_total_overhead_ms = 0.0;

  /// True once `spent_overhead_ms` of wasted-attempt + backoff time exceeds
  /// the budget (always false when unbounded).
  bool budget_exhausted(double spent_overhead_ms) const {
    return max_total_overhead_ms > 0.0 &&
           spent_overhead_ms >= max_total_overhead_ms;
  }

  /// Modeled wait before re-attempt number `attempt` (1-based: the wait
  /// after the attempt-th failure).
  double backoff_ms(int attempt) const {
    double b = backoff_base_ms;
    for (int i = 1; i < attempt; ++i) b *= backoff_multiplier;
    return b < backoff_cap_ms ? b : backoff_cap_ms;
  }
};

/// What one resilient layer observed and did. Aggregates with += so ops,
/// solvers, and whole runs can all surface the same shape.
struct ResilienceStats {
  std::uint64_t faults_seen = 0;  ///< injected faults this layer absorbed
  std::uint64_t retries = 0;      ///< re-attempts after a transient fault
  std::uint64_t fallbacks = 0;    ///< backend/streaming degradations taken
  /// Degradations split by the tier landed on, so breaker decisions and
  /// RunReport can tell WHICH tier is flapping: fused -> baseline-GPU
  /// degradations land on a baseline backend; a second exhaustion (or a
  /// baseline start) lands on the CPU. fallbacks_to_baseline +
  /// fallbacks_to_cpu == fallbacks for registry dispatches (streaming-path
  /// fallbacks count only in the total).
  std::uint64_t fallbacks_to_baseline = 0;
  std::uint64_t fallbacks_to_cpu = 0;
  /// Backends skipped without an attempt because a circuit breaker held
  /// them open (serving-pool dispatch only).
  std::uint64_t breaker_skips = 0;
  std::uint64_t recoveries = 0;   ///< ops that succeeded after >=1 fault
  /// Silent corruptions an ABFT check caught (each also counts as a
  /// fault_seen once it is rethrown into the retry loop).
  std::uint64_t sdc_detected = 0;
  /// Solver-level checkpoint rollbacks taken (ml/script_library solvers).
  std::uint64_t rollbacks = 0;
  /// Verification launches issued by the op that PRODUCED the surviving
  /// value — counted exactly once per dispatch, on the successful attempt.
  /// Verification burned by failed (corrupted) attempts lands in wasted_ms
  /// via the fault's penalty instead, so retries never double-report.
  std::uint64_t verify_launches = 0;
  double verify_ms = 0.0;         ///< modeled cost of those checks
  double backoff_ms = 0.0;        ///< modeled backoff wait charged
  double wasted_ms = 0.0;         ///< modeled time burned by failed attempts

  bool any() const {
    return faults_seen != 0 || retries != 0 || fallbacks != 0 ||
           recoveries != 0 || breaker_skips != 0 || sdc_detected != 0 ||
           rollbacks != 0 || verify_launches != 0;
  }
  /// Total modeled overhead this layer added versus a fault-free run.
  /// Verification cost is NOT included: it is paid on clean runs too (it is
  /// the price of the verify policy, not of a fault) and is reported
  /// separately as verify_ms.
  double overhead_ms() const { return backoff_ms + wasted_ms; }

  ResilienceStats& operator+=(const ResilienceStats& o) {
    faults_seen += o.faults_seen;
    retries += o.retries;
    fallbacks += o.fallbacks;
    fallbacks_to_baseline += o.fallbacks_to_baseline;
    fallbacks_to_cpu += o.fallbacks_to_cpu;
    breaker_skips += o.breaker_skips;
    recoveries += o.recoveries;
    sdc_detected += o.sdc_detected;
    rollbacks += o.rollbacks;
    verify_launches += o.verify_launches;
    verify_ms += o.verify_ms;
    backoff_ms += o.backoff_ms;
    wasted_ms += o.wasted_ms;
    return *this;
  }
};

/// End-of-run resilience summary: per-source stats plus the merged total,
/// printable as one block (benches and examples call print()).
class RunReport {
 public:
  explicit RunReport(std::string label = "run") : label_(std::move(label)) {}

  void add(const std::string& source, const ResilienceStats& stats) {
    sources_.emplace_back(source, stats);
    total_ += stats;
  }

  const ResilienceStats& total() const { return total_; }
  const std::vector<std::pair<std::string, ResilienceStats>>& sources() const {
    return sources_;
  }

  void print(std::ostream& os) const;

 private:
  std::string label_;
  std::vector<std::pair<std::string, ResilienceStats>> sources_;
  ResilienceStats total_;
};

}  // namespace fusedml
