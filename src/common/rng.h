// Deterministic random number generation for synthetic dataset construction.
//
// All benches and tests must be reproducible run-to-run, so every generator
// takes an explicit seed and the engine is a fixed, portable xoshiro256**
// (std::mt19937_64 distributions vary across standard libraries; we also ship
// our own uniform/normal transforms for bit-stable output).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.h"

namespace fusedml {

/// xoshiro256** by Blackman & Vigna — small, fast, and good enough for
/// synthetic data. Bit-stable across platforms (unlike libstdc++'s
/// std::uniform_real_distribution).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n) — n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal via Box–Muller (cached second value).
  double normal();

  /// Normal with given mean / stddev.
  double normal(double mean, double stddev);

  /// Poisson via Knuth (small lambda) or normal approximation (large).
  std::uint64_t poisson(double lambda);

  /// Sample k distinct values from [0, n) in increasing order
  /// (Floyd's algorithm + sort). Requires k <= n.
  std::vector<index_t> sample_without_replacement(index_t n, index_t k);

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace fusedml
