#include "common/cli.h"

#include <cstdlib>

#include "common/error.h"

namespace fusedml {

Cli::Cli(int argc, const char* const* argv) {
  program_ = argc > 0 ? argv[0] : "program";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    FUSEDML_CHECK(arg.rfind("--", 0) == 0, "expected --flag, got: " + arg);
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      args_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      args_[arg] = argv[++i];
    } else {
      args_[arg] = "true";  // bare flag => boolean true
    }
  }
}

void Cli::declare(const std::string& name, const std::string& def,
                  const std::string& help) {
  declared_.insert(name);
  help_lines_.push_back("  --" + name + " (default: " + def + ")" +
                        (help.empty() ? "" : "  " + help));
}

std::string Cli::get_string(const std::string& name, const std::string& def,
                            const std::string& help) {
  declare(name, def, help);
  const auto it = args_.find(name);
  return it == args_.end() ? def : it->second;
}

long long Cli::get_int(const std::string& name, long long def,
                       const std::string& help) {
  declare(name, std::to_string(def), help);
  const auto it = args_.find(name);
  if (it == args_.end()) return def;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Cli::get_double(const std::string& name, double def,
                       const std::string& help) {
  declare(name, std::to_string(def), help);
  const auto it = args_.find(name);
  if (it == args_.end()) return def;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Cli::get_bool(const std::string& name, bool def,
                   const std::string& help) {
  declare(name, def ? "true" : "false", help);
  const auto it = args_.find(name);
  if (it == args_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

void Cli::finish() const {
  for (const auto& [name, _] : args_) {
    FUSEDML_CHECK(declared_.count(name) > 0, "unknown flag: --" + name);
  }
}

std::string Cli::usage() const {
  std::string out = "usage: " + program_ + " [flags]\n";
  for (const auto& line : help_lines_) out += line + "\n";
  return out;
}

}  // namespace fusedml
