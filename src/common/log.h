// Leveled stderr logging. Off-by-default debug level keeps bench output clean.
#pragma once

#include <sstream>
#include <string>

namespace fusedml {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global threshold; messages below it are dropped. Default: kInfo.
void set_log_level(LogLevel level);
LogLevel log_level();

/// "debug" / "info" / "warn" / "error" (case-sensitive); throws
/// std::invalid_argument on anything else — used by the --log-level flag.
LogLevel parse_log_level(const std::string& name);
const char* to_string(LogLevel level);

/// Emit one line to stderr with a level tag (thread-safe).
void log_message(LogLevel level, const std::string& message);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace fusedml

#define FUSEDML_LOG_DEBUG ::fusedml::detail::LogLine(::fusedml::LogLevel::kDebug)
#define FUSEDML_LOG_INFO ::fusedml::detail::LogLine(::fusedml::LogLevel::kInfo)
#define FUSEDML_LOG_WARN ::fusedml::detail::LogLine(::fusedml::LogLevel::kWarn)
#define FUSEDML_LOG_ERROR ::fusedml::detail::LogLine(::fusedml::LogLevel::kError)
