// Small descriptive-statistics helpers for bench result reporting.
#pragma once

#include <span>
#include <vector>

namespace fusedml {

/// Arithmetic mean. Returns 0 for an empty span.
double mean(std::span<const double> xs);

/// Sample standard deviation (n-1 denominator). Returns 0 for n < 2.
double stddev(std::span<const double> xs);

/// Geometric mean — the right way to average speedups. All inputs must be > 0.
double geomean(std::span<const double> xs);

/// Linear-interpolated percentile, p in [0, 100].
double percentile(std::span<const double> xs, double p);

double min_of(std::span<const double> xs);
double max_of(std::span<const double> xs);

/// Summary of repeated measurements.
struct Summary {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double median = 0.0;
  double max = 0.0;
};

Summary summarize(std::span<const double> xs);

}  // namespace fusedml
