#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace fusedml {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

double geomean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : xs) {
    FUSEDML_CHECK(x > 0.0, "geomean requires strictly positive inputs");
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double percentile(std::span<const double> xs, double p) {
  FUSEDML_CHECK(!xs.empty(), "percentile of empty span");
  FUSEDML_CHECK(p >= 0.0 && p <= 100.0, "percentile must be in [0,100]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double min_of(std::span<const double> xs) {
  FUSEDML_CHECK(!xs.empty(), "min of empty span");
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  FUSEDML_CHECK(!xs.empty(), "max of empty span");
  return *std::max_element(xs.begin(), xs.end());
}

Summary summarize(std::span<const double> xs) {
  if (xs.empty()) return {};
  return Summary{mean(xs), stddev(xs), min_of(xs), percentile(xs, 50.0),
                 max_of(xs)};
}

}  // namespace fusedml
