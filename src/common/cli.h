// Minimal command-line flag parser for benches and examples.
//
// Supports `--name value` and `--name=value`; unknown flags raise so that
// typos in bench invocations fail loudly instead of silently using defaults.
#pragma once

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/types.h"

namespace fusedml {

class Cli {
 public:
  Cli(int argc, const char* const* argv);

  /// Declare a flag with a default; returns the parsed value. Call all
  /// declarations, then finish() to reject unknown flags.
  std::string get_string(const std::string& name, const std::string& def,
                         const std::string& help = "");
  long long get_int(const std::string& name, long long def,
                    const std::string& help = "");
  double get_double(const std::string& name, double def,
                    const std::string& help = "");
  bool get_bool(const std::string& name, bool def,
                const std::string& help = "");

  /// True when --help was passed; callers should print usage() and exit 0.
  bool help_requested() const { return help_requested_; }

  /// Verify that every flag given on the command line was declared.
  void finish() const;

  /// Usage text assembled from the declarations.
  std::string usage() const;

 private:
  std::string program_;
  std::unordered_map<std::string, std::string> args_;
  std::unordered_set<std::string> declared_;
  std::vector<std::string> help_lines_;
  bool help_requested_ = false;

  void declare(const std::string& name, const std::string& def,
               const std::string& help);
};

}  // namespace fusedml
