// Minimal streaming JSON writer — enough for the observability exporters
// (Chrome traces, metric dumps, BENCH_*.json records) without an external
// dependency. Produces compact, valid RFC-8259 output; the writer tracks
// nesting and comma placement so call sites stay linear.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace fusedml {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Starts an object/array-valued member inside an object.
  JsonWriter& key(const std::string& name);

  // Scalar values (as array elements, or after key() inside an object).
  JsonWriter& value(const std::string& s);
  JsonWriter& value(const char* s);
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);

  // key + scalar in one call.
  template <typename T>
  JsonWriter& member(const std::string& name, const T& v) {
    key(name);
    return value(v);
  }

 private:
  std::ostream& os_;
  /// One entry per open container: true while the next element needs a
  /// leading comma.
  std::vector<bool> need_comma_;
  bool pending_key_ = false;

  void element_prefix();
};

/// JSON string escaping (quotes not included).
std::string json_escape(const std::string& s);

}  // namespace fusedml
