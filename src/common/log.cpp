#include "common/log.h"

#include <atomic>
#include <iostream>
#include <mutex>
#include <stdexcept>

namespace fusedml {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

LogLevel parse_log_level(const std::string& name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  throw std::invalid_argument("unknown log level: '" + name +
                              "' (expected debug|info|warn|error)");
}

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
  }
  return "?";
}

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::cerr << "[" << level_tag(level) << "] " << message << "\n";
}

}  // namespace fusedml
