// Fundamental scalar and index types shared by every fusedml subsystem.
#pragma once

#include <cstddef>
#include <cstdint>

namespace fusedml {

/// Floating-point element type. The paper evaluates in double precision
/// (its 1.2 TFLOPs / 288 GB/s => 34 flops-per-load argument assumes 8-byte
/// words), so the whole library is built around `real`.
using real = double;

/// Row/column index into a matrix. 32-bit signed matches the CSR index
/// arrays CUDA sparse libraries use; scaled-down datasets always fit.
using index_t = std::int32_t;

/// Offset into a non-zero array (row_off entries). 64-bit so that matrices
/// with more than 2^31 non-zeros are representable.
using offset_t = std::int64_t;

/// Byte sizes / counters.
using usize = std::size_t;

}  // namespace fusedml
