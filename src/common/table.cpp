#include "common/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/error.h"

namespace fusedml {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  FUSEDML_CHECK(!headers_.empty(), "table needs at least one column");
}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::add(const std::string& cell) {
  FUSEDML_CHECK(!rows_.empty(), "call row() before add()");
  FUSEDML_CHECK(rows_.back().size() < headers_.size(),
                "row has more cells than headers");
  rows_.back().push_back(cell);
  return *this;
}

Table& Table::add(const char* cell) { return add(std::string{cell}); }

Table& Table::add(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return add(os.str());
}

Table& Table::add(long long value) { return add(std::to_string(value)); }

namespace {
std::vector<std::size_t> column_widths(
    const std::vector<std::string>& headers,
    const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> widths(headers.size());
  for (std::size_t c = 0; c < headers.size(); ++c) widths[c] = headers[c].size();
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  return widths;
}

void append_padded(std::string& out, const std::string& cell,
                   std::size_t width) {
  out += cell;
  out.append(width - cell.size(), ' ');
}
}  // namespace

std::string Table::str() const {
  const auto widths = column_widths(headers_, rows_);
  std::string sep = "+";
  for (auto w : widths) sep += std::string(w + 2, '-') + "+";
  sep += "\n";

  std::string out = sep;
  out += "| ";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    append_padded(out, headers_[c], widths[c]);
    out += " | ";
  }
  out.back() = '\n';
  out += sep;
  for (const auto& row : rows_) {
    out += "| ";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      append_padded(out, c < row.size() ? row[c] : std::string{}, widths[c]);
      out += " | ";
    }
    out.back() = '\n';
  }
  out += sep;
  return out;
}

std::string Table::markdown() const {
  std::string out = "|";
  for (const auto& h : headers_) out += " " + h + " |";
  out += "\n|";
  for (std::size_t c = 0; c < headers_.size(); ++c) out += "---|";
  out += "\n";
  for (const auto& row : rows_) {
    out += "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      out += " " + (c < row.size() ? row[c] : std::string{}) + " |";
    }
    out += "\n";
  }
  return out;
}

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}
}  // namespace

std::string Table::csv() const {
  std::string out;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) out += ',';
    out += csv_escape(headers_[c]);
  }
  out += '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      if (c) out += ',';
      out += csv_escape(c < row.size() ? row[c] : std::string{});
    }
    out += '\n';
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Table& t) {
  return os << t.str();
}

std::string format_ms(double ms) {
  std::ostringstream os;
  if (ms < 0.01) {
    os << std::scientific << std::setprecision(2) << ms << " ms";
  } else {
    os << std::fixed << std::setprecision(ms < 10 ? 3 : 1) << ms << " ms";
  }
  return os.str();
}

std::string format_speedup(double x) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(2) << x << "x";
  return os.str();
}

std::string format_count(double n) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(2) << n;
  return os.str();
}

}  // namespace fusedml
