// Error handling: a typed exception taxonomy plus always-on check macros.
//
// The taxonomy mirrors how real GPU runtimes classify failures (cf. MIOpen's
// miopenStatus_t): every error carries an ErrorCode so resilience layers can
// decide between retrying (transient kernel/transfer/data faults), degrading
// (device OOM -> smaller footprint / streaming / CPU fallback), and giving
// up (logic errors). Transient faults additionally carry the modeled time
// burned by the failed attempt so retry loops can charge it honestly.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace fusedml {

/// Failure classes the resilience policy dispatches on.
enum class ErrorCode {
  kGeneric,      ///< precondition/invariant violation — never retried
  kDeviceOom,    ///< device allocation failed — degrade, don't retry in place
  kTransfer,     ///< host<->device copy failed — transient, retryable
  kKernelFault,  ///< kernel launch/execution failed — transient, retryable
  kData,         ///< corrupted or malformed data (ECC, bad input file)
  kDeadline,     ///< modeled deadline/retry budget exhausted — fail fast
  kSilentCorruption,  ///< output failed an ABFT check — transient, recompute
};

inline const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kGeneric: return "generic";
    case ErrorCode::kDeviceOom: return "device-oom";
    case ErrorCode::kTransfer: return "transfer";
    case ErrorCode::kKernelFault: return "kernel-fault";
    case ErrorCode::kData: return "data";
    case ErrorCode::kDeadline: return "deadline";
    case ErrorCode::kSilentCorruption: return "silent-corruption";
  }
  return "?";
}

/// True for fault classes where retrying the same operation can succeed
/// (the fault is tied to the attempt, not the operation).
inline bool is_transient(ErrorCode code) {
  return code == ErrorCode::kTransfer || code == ErrorCode::kKernelFault ||
         code == ErrorCode::kData || code == ErrorCode::kSilentCorruption;
}

/// Exception thrown on any precondition or invariant violation inside
/// fusedml. Deriving from std::runtime_error keeps call sites idiomatic.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}

  ErrorCode code() const { return code_; }
  /// Modeled milliseconds the failed attempt burned before raising (kernel
  /// time of a corrupted launch, bus time of a failed transfer). Retry
  /// loops add this to the surviving operation's modeled cost.
  double penalty_ms() const { return penalty_ms_; }

 protected:
  Error(const std::string& what, ErrorCode code, double penalty_ms)
      : std::runtime_error(what), code_(code), penalty_ms_(penalty_ms) {}

 private:
  ErrorCode code_ = ErrorCode::kGeneric;
  double penalty_ms_ = 0.0;
};

/// Device memory exhausted (real or injected). Not transient: the resilient
/// layers respond by shrinking the footprint (streaming) or falling back.
class DeviceOomError : public Error {
 public:
  explicit DeviceOomError(const std::string& what, double penalty_ms = 0.0)
      : Error(what, ErrorCode::kDeviceOom, penalty_ms) {}
};

/// Host<->device transfer failed in flight (PCIe fault). Transient.
class TransferError : public Error {
 public:
  explicit TransferError(const std::string& what, double penalty_ms = 0.0)
      : Error(what, ErrorCode::kTransfer, penalty_ms) {}
};

/// A kernel launch or execution failed (sticky context error, launch
/// timeout). Transient: the same launch can be replayed.
class KernelFaultError : public Error {
 public:
  explicit KernelFaultError(const std::string& what, double penalty_ms = 0.0)
      : Error(what, ErrorCode::kKernelFault, penalty_ms) {}
};

/// Data is corrupt or malformed: an uncorrectable ECC event on a buffer, or
/// an input file that fails validation.
class DataError : public Error {
 public:
  explicit DataError(const std::string& what, double penalty_ms = 0.0)
      : Error(what, ErrorCode::kData, penalty_ms) {}
};

/// An ABFT checksum (or other redundant check) caught a result that does not
/// match its algebraic invariant: the kernel "succeeded" but its output is
/// wrong — a silent data corruption. Transient: recomputing the same op is
/// the recovery. penalty_ms carries the modeled time of the corrupted
/// attempt plus its verification, so retry loops charge the waste honestly.
class SilentCorruptionError : public Error {
 public:
  explicit SilentCorruptionError(const std::string& what,
                                 double penalty_ms = 0.0)
      : Error(what, ErrorCode::kSilentCorruption, penalty_ms) {}
};

/// A modeled deadline (or total retry budget) was exhausted. Never retried:
/// spending more time is exactly what the caller asked to avoid. The serving
/// layer maps this to a DeadlineExceeded outcome.
class DeadlineError : public Error {
 public:
  explicit DeadlineError(const std::string& what, double penalty_ms = 0.0)
      : Error(what, ErrorCode::kDeadline, penalty_ms) {}
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "FUSEDML_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace fusedml

/// Always-on precondition check (unlike assert, survives release builds).
/// Usage: FUSEDML_CHECK(n > 0, "matrix must be non-empty");
#define FUSEDML_CHECK(expr, ...)                                             \
  do {                                                                       \
    if (!(expr)) {                                                           \
      ::fusedml::detail::throw_check_failure(#expr, __FILE__, __LINE__,      \
                                             ::std::string{__VA_ARGS__});    \
    }                                                                        \
  } while (false)
