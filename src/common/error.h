// Error handling: a library-specific exception plus always-on check macros.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace fusedml {

/// Exception thrown on any precondition or invariant violation inside
/// fusedml. Deriving from std::runtime_error keeps call sites idiomatic.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "FUSEDML_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace fusedml

/// Always-on precondition check (unlike assert, survives release builds).
/// Usage: FUSEDML_CHECK(n > 0, "matrix must be non-empty");
#define FUSEDML_CHECK(expr, ...)                                             \
  do {                                                                       \
    if (!(expr)) {                                                           \
      ::fusedml::detail::throw_check_failure(#expr, __FILE__, __LINE__,      \
                                             ::std::string{__VA_ARGS__});    \
    }                                                                        \
  } while (false)
