#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/error.h"

namespace fusedml {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// splitmix64: used only to expand the user seed into the 256-bit state.
inline std::uint64_t splitmix64(std::uint64_t& s) {
  std::uint64_t z = (s += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
  // A zero state is the one forbidden input of xoshiro.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 1;
  }
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 top bits -> [0,1) with full double mantissa resolution.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  FUSEDML_CHECK(n > 0, "uniform_index requires n > 0");
  // Lemire-style rejection-free multiply-shift is fine for our purposes;
  // bias is < 2^-64 * n which is negligible for dataset generation.
  __extension__ typedef unsigned __int128 u128;
  return static_cast<std::uint64_t>((static_cast<u128>(next_u64()) * n) >> 64);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  double u2 = uniform();
  while (u1 <= 1e-300) u1 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

std::uint64_t Rng::poisson(double lambda) {
  FUSEDML_CHECK(lambda >= 0.0, "poisson requires lambda >= 0");
  if (lambda < 30.0) {
    const double limit = std::exp(-lambda);
    double prod = uniform();
    std::uint64_t k = 0;
    while (prod > limit) {
      prod *= uniform();
      ++k;
    }
    return k;
  }
  // Normal approximation with continuity correction for large lambda.
  const double x = normal(lambda, std::sqrt(lambda));
  return x <= 0.0 ? 0 : static_cast<std::uint64_t>(x + 0.5);
}

std::vector<index_t> Rng::sample_without_replacement(index_t n, index_t k) {
  FUSEDML_CHECK(k >= 0 && k <= n, "sample size must satisfy 0 <= k <= n");
  // Floyd's algorithm: O(k) expected time and memory.
  std::unordered_set<index_t> chosen;
  chosen.reserve(static_cast<usize>(k));
  for (index_t j = n - k; j < n; ++j) {
    const auto t = static_cast<index_t>(uniform_index(static_cast<std::uint64_t>(j) + 1));
    chosen.insert(chosen.count(t) ? j : t);
  }
  std::vector<index_t> out(chosen.begin(), chosen.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace fusedml
