#include "common/json.h"

#include <cmath>
#include <cstdio>

namespace fusedml {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::element_prefix() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // the key already emitted the comma for this member
  }
  if (!need_comma_.empty()) {
    if (need_comma_.back()) os_ << ',';
    need_comma_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  element_prefix();
  os_ << '{';
  need_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  need_comma_.pop_back();
  os_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  element_prefix();
  os_ << '[';
  need_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  need_comma_.pop_back();
  os_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  if (!need_comma_.empty()) {
    if (need_comma_.back()) os_ << ',';
    need_comma_.back() = true;
  }
  os_ << '"' << json_escape(name) << "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& s) {
  element_prefix();
  os_ << '"' << json_escape(s) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* s) { return value(std::string(s)); }

JsonWriter& JsonWriter::value(double v) {
  element_prefix();
  if (!std::isfinite(v)) {
    os_ << "null";  // JSON has no NaN/Inf
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os_ << buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  element_prefix();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  element_prefix();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  element_prefix();
  os_ << (v ? "true" : "false");
  return *this;
}

}  // namespace fusedml
