#include "common/timer.h"

#include <algorithm>

namespace fusedml {

void Profiler::add(const std::string& name, double ms) { buckets_[name] += ms; }

double Profiler::total_ms() const {
  double total = 0.0;
  for (const auto& [_, ms] : buckets_) total += ms;
  return total;
}

double Profiler::bucket_ms(const std::string& name) const {
  const auto it = buckets_.find(name);
  return it == buckets_.end() ? 0.0 : it->second;
}

double Profiler::percent(const std::string& name) const {
  const double total = total_ms();
  return total <= 0.0 ? 0.0 : 100.0 * bucket_ms(name) / total;
}

std::vector<std::string> Profiler::buckets_by_time() const {
  std::vector<std::string> names;
  names.reserve(buckets_.size());
  for (const auto& [name, _] : buckets_) names.push_back(name);
  std::sort(names.begin(), names.end(),
            [this](const std::string& a, const std::string& b) {
              return bucket_ms(a) > bucket_ms(b);
            });
  return names;
}

void Profiler::clear() { buckets_.clear(); }

}  // namespace fusedml
