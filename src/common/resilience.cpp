#include "common/resilience.h"

#include <iomanip>
#include <ostream>

namespace fusedml {

void RunReport::print(std::ostream& os) const {
  os << "== resilience report: " << label_ << " ==\n";
  if (!total_.any()) {
    os << "  no faults observed\n";
    return;
  }
  const auto line = [&os](const std::string& name,
                          const ResilienceStats& s) {
    os << "  " << std::left << std::setw(18) << name << std::right
       << " faults " << std::setw(6) << s.faults_seen << "  retries "
       << std::setw(6) << s.retries << "  fallbacks " << std::setw(4)
       << s.fallbacks << " (gpu " << s.fallbacks_to_baseline << ", cpu "
       << s.fallbacks_to_cpu << ")  breaker-skips " << std::setw(4)
       << s.breaker_skips << "  recoveries " << std::setw(6) << s.recoveries
       << "  backoff " << std::fixed << std::setprecision(3) << std::setw(9)
       << s.backoff_ms << " ms  wasted " << std::setw(9) << s.wasted_ms
       << " ms  sdc " << std::setw(4) << s.sdc_detected << "  rollbacks "
       << std::setw(4) << s.rollbacks << "  verify " << std::setw(6)
       << s.verify_launches << " (" << s.verify_ms << " ms)\n";
  };
  for (const auto& [name, stats] : sources_) line(name, stats);
  line("total", total_);
}

}  // namespace fusedml
