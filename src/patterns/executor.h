// PatternExecutor — the library's main entry point.
//
// An executor owns a backend choice (fused device kernels, the multi-kernel
// cuSPARSE/cuBLAS-style baseline, the BIDMat-GPU-style baseline, or the
// CPU) and evaluates pattern instantiations against it. ML algorithms in
// src/ml are written once against this interface; benches swap backends to
// produce the paper's comparison lines; the usage histogram feeds Table 1.
//
// Resilient execution. Every operation runs under the executor's
// RetryPolicy: transient faults from the virtual device (injected kernel
// faults, ECC events, transfer errors — see vgpu/fault_injector.h) are
// retried with modeled exponential backoff, and repeated failure or device
// OOM degrades the backend fused -> baseline-GPU -> CPU. Retried results
// are bit-exact (in-place operands are snapshotted and restored before each
// re-attempt) and all retry/backoff time is charged to the op's modeled
// cost so benches report the overhead honestly.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/resilience.h"
#include "kernels/cpu_backend.h"
#include "kernels/fused_dense.h"
#include "kernels/fused_sparse.h"
#include "kernels/kernel_cache.h"
#include "la/csr_matrix.h"
#include "la/dense_matrix.h"
#include "patterns/pattern.h"
#include "vgpu/device.h"

namespace fusedml::patterns {

enum class Backend {
  kFused,       ///< the paper's fused kernels
  kCusparse,    ///< operator-at-a-time with explicit-transpose sparse X^T
  kBidmatGpu,   ///< operator-at-a-time with atomic-scatter sparse X^T
  kCpu,         ///< host CPU (MKL-like)
};

std::string to_string(Backend backend);

/// Degradation order on repeated failure: fused -> baseline GPU -> CPU.
/// The CPU is terminal (it cannot fault) — returns nullopt there.
std::optional<Backend> fallback_backend(Backend backend);

/// Everything a caller learns from one pattern evaluation.
struct PatternResult {
  std::vector<real> value;
  double modeled_ms = 0.0;   ///< modeled device (or CPU-model) time,
                             ///< including retry + modeled backoff overhead
  double wall_ms = 0.0;      ///< host wall-clock of the functional run
  std::uint64_t launches = 0;
  vgpu::MemCounters counters;  ///< zero for the CPU backend
  PatternKind kind{};
  std::string kernel;        ///< which implementation ran
  Backend backend_used{};    ///< after any degradation
  ResilienceStats resilience;  ///< faults absorbed while producing value
};

class PatternExecutor {
 public:
  /// `cpu_threads` parameterizes the CPU backend's cost model (8 = the
  /// paper's MKL setting; 1 = the single-thread profile behind Table 2).
  PatternExecutor(vgpu::Device& dev, Backend backend, int cpu_threads = 8)
      : dev_(dev), backend_(backend), cpu_(vgpu::paper_host_cpu(),
                                           cpu_threads) {}

  Backend backend() const { return backend_; }

  /// w = alpha * X^T * y (Algorithm 1 territory; y has m entries).
  PatternResult transposed_product(const la::CsrMatrix& X,
                                   std::span<const real> y, real alpha = 1);

  /// Dense counterpart. The paper does not fuse this case ("we do not
  /// consider X^T x y, when X is dense" — cuBLAS is already near-optimal),
  /// so every GPU backend runs the gemv_t kernel here.
  PatternResult transposed_product(const la::DenseMatrix& X,
                                   std::span<const real> y, real alpha = 1);

  /// Plain products p = X * y (not a Table-1 pattern; cuSPARSE/cuBLAS are
  /// "already optimized" here per §4, so all GPU backends share one kernel).
  PatternResult product(const la::CsrMatrix& X, std::span<const real> y);
  PatternResult product(const la::DenseMatrix& X, std::span<const real> y);

  // --- BLAS-1 through the same backend (the Listing-1 script needs these
  // between pattern evaluations; on GPU backends each is a kernel launch).
  PatternResult axpy(real alpha, std::span<const real> x, std::span<real> y);
  PatternResult dot(std::span<const real> x, std::span<const real> y);
  PatternResult nrm2(std::span<const real> x);
  PatternResult scal(real alpha, std::span<real> x);
  PatternResult ewise_mul(std::span<const real> x, std::span<const real> y);

  /// w = alpha * X^T * (v ⊙ (X*y)) + beta*z; v/z may be empty.
  PatternResult pattern(real alpha, const la::CsrMatrix& X,
                        std::span<const real> v, std::span<const real> y,
                        real beta, std::span<const real> z);
  PatternResult pattern(real alpha, const la::DenseMatrix& X,
                        std::span<const real> v, std::span<const real> y,
                        real beta, std::span<const real> z);

  // Convenience wrappers for the Table-1 instantiations.
  PatternResult xt_xy(const la::CsrMatrix& X, std::span<const real> y) {
    return pattern(1, X, {}, y, 0, {});
  }
  PatternResult xt_xy(const la::DenseMatrix& X, std::span<const real> y) {
    return pattern(1, X, {}, y, 0, {});
  }

  /// Fused-kernel options (texture binding, aggregation variant, cache
  /// modeling) applied when backend() == kFused.
  kernels::FusedSparseOptions& sparse_options() { return sparse_opts_; }
  kernels::FusedDenseOptions& dense_options() { return dense_opts_; }

  /// Fault-handling knobs (attempts per backend, modeled backoff schedule,
  /// whether backend degradation is permitted).
  RetryPolicy& retry_policy() { return retry_; }
  const RetryPolicy& retry_policy() const { return retry_; }

  /// Session-cumulative resilience stats across every op this executor ran.
  const ResilienceStats& resilience() const { return resilience_; }
  void reset_resilience() { resilience_ = ResilienceStats{}; }

  /// Pattern-kind usage histogram (feeds the Table 1 bench).
  const std::map<PatternKind, std::uint64_t>& usage() const { return usage_; }
  void reset_usage() { usage_.clear(); }

  /// Generated-kernel cache (§3.2 lifecycle: the fused backend generates
  /// a kernel per specialization the first time a shape is seen, then
  /// reuses it across iterations).
  const kernels::KernelCache& kernel_cache() const { return codegen_cache_; }

  vgpu::Device& device() { return dev_; }
  const kernels::CpuBackend& cpu() const { return cpu_; }

 private:
  vgpu::Device& dev_;
  Backend backend_;
  kernels::FusedSparseOptions sparse_opts_;
  kernels::FusedDenseOptions dense_opts_;
  kernels::CpuBackend cpu_;
  kernels::KernelCache codegen_cache_;
  std::map<PatternKind, std::uint64_t> usage_;
  RetryPolicy retry_;
  ResilienceStats resilience_;

  void record(PatternKind kind) { ++usage_[kind]; }

  /// Runs `attempt` under the retry/backoff/fallback policy. `inout` names
  /// the caller memory the op mutates in place (axpy's y, scal's x); it is
  /// snapshotted so a failed attempt can be rolled back before the retry.
  PatternResult execute_resilient(
      const std::function<PatternResult(Backend)>& attempt,
      std::span<real> inout = {});

  // Backend-parameterized dispatch bodies (one attempt each; may throw the
  // typed faults of common/error.h when a fault injector is armed).
  PatternResult run_transposed_product(Backend b, const la::CsrMatrix& X,
                                       std::span<const real> y, real alpha);
  PatternResult run_transposed_product(Backend b, const la::DenseMatrix& X,
                                       std::span<const real> y, real alpha);
  PatternResult run_pattern(Backend b, real alpha, const la::CsrMatrix& X,
                            std::span<const real> v, std::span<const real> y,
                            real beta, std::span<const real> z,
                            PatternKind kind);
  PatternResult run_pattern(Backend b, real alpha, const la::DenseMatrix& X,
                            std::span<const real> v, std::span<const real> y,
                            real beta, std::span<const real> z,
                            PatternKind kind);
};

}  // namespace fusedml::patterns
