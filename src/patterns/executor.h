// PatternExecutor — the library's main entry point.
//
// An executor owns a backend choice (fused device kernels, the multi-kernel
// cuSPARSE/cuBLAS-style baseline, the BIDMat-GPU-style baseline, or the
// CPU) and evaluates pattern instantiations against it. ML algorithms in
// src/ml are written once against this interface; benches swap backends to
// produce the paper's comparison lines; the usage histogram feeds Table 1.
//
// Dispatch and resilience both live in the unified operator registry
// (kernels/op_registry.h): each op's backend-switch body exists exactly
// once there, shared with the sysml::Runtime scheduler, and every call runs
// under the executor's RetryPolicy — transient faults from the virtual
// device are retried with modeled exponential backoff, and repeated failure
// or device OOM degrades the backend fused -> baseline-GPU -> CPU. Retried
// results are bit-exact (in-place operands are snapshotted and restored
// before each re-attempt) and all retry/backoff time is charged to the op's
// modeled cost so benches report the overhead honestly.
#pragma once

#include <functional>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "common/resilience.h"
#include "kernels/op_registry.h"
#include "la/csr_matrix.h"
#include "la/dense_matrix.h"
#include "patterns/pattern.h"
#include "vgpu/device.h"

namespace fusedml::patterns {

// The backend vocabulary is owned by the registry; re-exported here so the
// library's historical spelling (patterns::Backend, patterns::to_string)
// keeps working for benches and tests.
using Backend = kernels::Backend;
using kernels::fallback_backend;
using kernels::to_string;

/// Everything a caller learns from one pattern evaluation.
struct PatternResult {
  std::vector<real> value;
  double modeled_ms = 0.0;   ///< modeled device (or CPU-model) time,
                             ///< including retry + modeled backoff overhead
  double wall_ms = 0.0;      ///< host wall-clock of the functional run
  std::uint64_t launches = 0;
  vgpu::MemCounters counters;  ///< zero for the CPU backend
  PatternKind kind{};
  std::string kernel;        ///< which implementation ran
  Backend backend_used{};    ///< after any degradation
  ResilienceStats resilience;  ///< faults absorbed while producing value
};

class PatternExecutor {
 public:
  /// `cpu_threads` parameterizes the CPU backend's cost model (8 = the
  /// paper's MKL setting; 1 = the single-thread profile behind Table 2).
  PatternExecutor(vgpu::Device& dev, Backend backend, int cpu_threads = 8)
      : registry_(dev, cpu_threads), backend_(backend) {}

  Backend backend() const { return backend_; }

  /// w = alpha * X^T * y (Algorithm 1 territory; y has m entries).
  PatternResult transposed_product(const la::CsrMatrix& X,
                                   std::span<const real> y, real alpha = 1);

  /// Dense counterpart. The paper does not fuse this case ("we do not
  /// consider X^T x y, when X is dense" — cuBLAS is already near-optimal),
  /// so every GPU backend runs the gemv_t kernel here.
  PatternResult transposed_product(const la::DenseMatrix& X,
                                   std::span<const real> y, real alpha = 1);

  /// Plain products p = X * y (not a Table-1 pattern; cuSPARSE/cuBLAS are
  /// "already optimized" here per §4, so all GPU backends share one kernel).
  PatternResult product(const la::CsrMatrix& X, std::span<const real> y);
  PatternResult product(const la::DenseMatrix& X, std::span<const real> y);

  // --- BLAS-1 through the same backend (the Listing-1 script needs these
  // between pattern evaluations; on GPU backends each is a kernel launch).
  PatternResult axpy(real alpha, std::span<const real> x, std::span<real> y);
  PatternResult dot(std::span<const real> x, std::span<const real> y);
  PatternResult nrm2(std::span<const real> x);
  PatternResult scal(real alpha, std::span<real> x);
  PatternResult ewise_mul(std::span<const real> x, std::span<const real> y);

  /// w = alpha * X^T * (v ⊙ (X*y)) + beta*z; v/z may be empty.
  PatternResult pattern(real alpha, const la::CsrMatrix& X,
                        std::span<const real> v, std::span<const real> y,
                        real beta, std::span<const real> z);
  PatternResult pattern(real alpha, const la::DenseMatrix& X,
                        std::span<const real> v, std::span<const real> y,
                        real beta, std::span<const real> z);

  // Convenience wrappers for the Table-1 instantiations.
  PatternResult xt_xy(const la::CsrMatrix& X, std::span<const real> y) {
    return pattern(1, X, {}, y, 0, {});
  }
  PatternResult xt_xy(const la::DenseMatrix& X, std::span<const real> y) {
    return pattern(1, X, {}, y, 0, {});
  }

  /// Fused-kernel options (texture binding, aggregation variant, cache
  /// modeling) applied when backend() == kFused.
  kernels::FusedSparseOptions& sparse_options() {
    return registry_.sparse_options();
  }
  kernels::FusedDenseOptions& dense_options() {
    return registry_.dense_options();
  }

  /// Fault-handling knobs (attempts per backend, modeled backoff schedule,
  /// whether backend degradation is permitted).
  RetryPolicy& retry_policy() { return retry_; }
  const RetryPolicy& retry_policy() const { return retry_; }

  /// Session-cumulative resilience stats across every op this executor ran.
  const ResilienceStats& resilience() const { return resilience_; }
  void reset_resilience() { resilience_ = ResilienceStats{}; }

  // --- Modeled session deadline (serving-layer support) -------------------
  /// Cumulative modeled milliseconds of every op since the last
  /// reset_session_clock() — the executor's position on the modeled
  /// timeline.
  double session_modeled_ms() const { return session_modeled_ms_; }
  void reset_session_clock() { session_modeled_ms_ = 0.0; }
  /// Deadline on the session clock (0 = none): an op dispatched after the
  /// clock passes it throws DeadlineError instead of running, and each
  /// dispatch's retry budget is clamped to the remaining headroom. The
  /// serving layer points this at a request's modeled deadline.
  void set_modeled_deadline(double deadline_ms) { deadline_ms_ = deadline_ms; }
  double modeled_deadline() const { return deadline_ms_; }

  /// Pattern-kind usage histogram (feeds the Table 1 bench).
  const std::map<PatternKind, std::uint64_t>& usage() const { return usage_; }
  void reset_usage() { usage_.clear(); }

  /// Generated-kernel cache (§3.2 lifecycle: the fused backend generates
  /// a kernel per specialization the first time a shape is seen, then
  /// reuses it across iterations).
  const kernels::KernelCache& kernel_cache() const {
    return registry_.kernel_cache();
  }

  kernels::OpRegistry& registry() { return registry_; }
  vgpu::Device& device() { return registry_.device(); }
  const kernels::CpuBackend& cpu() const { return registry_.cpu(); }

 private:
  kernels::OpRegistry registry_;
  Backend backend_;
  std::map<PatternKind, std::uint64_t> usage_;
  RetryPolicy retry_;
  ResilienceStats resilience_;
  double session_modeled_ms_ = 0.0;
  double deadline_ms_ = 0.0;

  void record(PatternKind kind) { ++usage_[kind]; }

  /// Registry resilient dispatch + PatternKind tagging.
  PatternResult run(const std::function<kernels::KernelOutcome(Backend)>& attempt,
                    PatternKind kind, std::span<real> inout = {});
};

}  // namespace fusedml::patterns
