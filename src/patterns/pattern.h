// The generic pattern of Equation 1 and its Table-1 instantiations.
//
//   w = alpha * X^T * (v ⊙ (X * y)) + beta * z
//
// This header is the library's vocabulary: a PatternCall describes one
// evaluation, PatternKind classifies it into the paper's five
// instantiations, and Table-1 metadata records which ML algorithms use
// which instantiation.
#pragma once

#include <span>
#include <string>

#include "common/types.h"

namespace fusedml::patterns {

/// The five instantiations of Table 1.
enum class PatternKind {
  kXty,        ///< alpha * X^T * y              (y in row space)
  kXtXy,       ///< X^T * (X * y)
  kXtVXy,      ///< X^T * (v ⊙ (X * y))
  kXtXyBz,     ///< X^T * (X * y) + beta * z
  kFull,       ///< alpha * X^T * (v ⊙ (X * y)) + beta * z
};

std::string to_string(PatternKind kind);

/// Classifies a pattern evaluation by which optional pieces are present.
/// `transposed_only` marks the alpha * X^T * y case (Algorithm 1 territory).
PatternKind classify(bool transposed_only, bool has_v, bool has_beta_z);

/// Table 1: which ML algorithms use which instantiation (LR, GLM, LogReg,
/// SVM, HITS). Used by the Table-1 bench to cross-check observed usage.
struct Table1Row {
  PatternKind kind;
  bool lr, glm, logreg, svm, hits;
};
std::span<const Table1Row> table1();

}  // namespace fusedml::patterns
