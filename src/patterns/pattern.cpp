#include "patterns/pattern.h"

#include <array>

namespace fusedml::patterns {

std::string to_string(PatternKind kind) {
  switch (kind) {
    case PatternKind::kXty: return "a*X^T*y";
    case PatternKind::kXtXy: return "X^T*(X*y)";
    case PatternKind::kXtVXy: return "X^T*(v.(X*y))";
    case PatternKind::kXtXyBz: return "X^T*(X*y)+b*z";
    case PatternKind::kFull: return "a*X^T*(v.(X*y))+b*z";
  }
  return "?";
}

PatternKind classify(bool transposed_only, bool has_v, bool has_beta_z) {
  if (transposed_only) return PatternKind::kXty;
  if (has_v && has_beta_z) return PatternKind::kFull;
  if (has_v) return PatternKind::kXtVXy;
  if (has_beta_z) return PatternKind::kXtXyBz;
  return PatternKind::kXtXy;
}

std::span<const Table1Row> table1() {
  // Verbatim from Table 1 of the paper.
  static constexpr std::array<Table1Row, 5> rows = {{
      {PatternKind::kXty, true, true, true, true, true},
      {PatternKind::kXtXy, true, true, false, true, true},
      {PatternKind::kXtVXy, false, true, true, false, false},
      {PatternKind::kXtXyBz, true, false, false, true, false},
      {PatternKind::kFull, false, false, true, false, false},
  }};
  return rows;
}

}  // namespace fusedml::patterns
