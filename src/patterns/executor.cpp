#include "patterns/executor.h"

#include <algorithm>

#include "common/error.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fusedml::patterns {

PatternResult PatternExecutor::run(
    const std::function<kernels::KernelOutcome(Backend)>& attempt,
    PatternKind kind, std::span<real> inout) {
  obs::TraceSpan span("pattern:" + to_string(kind), "pattern",
                      obs::Track::kOps);
  RetryPolicy policy = retry_;
  if (deadline_ms_ > 0.0) {
    if (session_modeled_ms_ >= deadline_ms_) {
      throw DeadlineError(
          "pattern session modeled deadline exceeded before dispatch (" +
          std::to_string(session_modeled_ms_) + " of " +
          std::to_string(deadline_ms_) + " ms spent)");
    }
    const double remaining_ms = deadline_ms_ - session_modeled_ms_;
    policy.max_total_overhead_ms =
        policy.max_total_overhead_ms > 0.0
            ? std::min(policy.max_total_overhead_ms, remaining_ms)
            : remaining_ms;
  }
  kernels::KernelOutcome o =
      registry_.execute_resilient(backend_, policy, attempt, inout,
                                  &resilience_);
  session_modeled_ms_ += o.modeled_ms;
  if (span.active()) span.arg("kernel", o.kernel);
  if (obs::metrics().enabled()) {
    obs::metrics().counter("patterns.calls").add();
  }
  PatternResult out;
  out.value = std::move(o.value);
  out.modeled_ms = o.modeled_ms;
  out.wall_ms = o.wall_ms;
  out.launches = o.launches;
  out.counters = o.counters;
  out.kind = kind;
  out.kernel = std::move(o.kernel);
  out.backend_used = o.backend_used;
  out.resilience = o.resilience;
  return out;
}

PatternResult PatternExecutor::transposed_product(const la::CsrMatrix& X,
                                                  std::span<const real> y,
                                                  real alpha) {
  record(PatternKind::kXty);
  return run(
      [&](Backend b) { return registry_.transposed_product(b, X, y, alpha); },
      PatternKind::kXty);
}

PatternResult PatternExecutor::transposed_product(const la::DenseMatrix& X,
                                                  std::span<const real> y,
                                                  real alpha) {
  record(PatternKind::kXty);
  return run(
      [&](Backend b) { return registry_.transposed_product(b, X, y, alpha); },
      PatternKind::kXty);
}

PatternResult PatternExecutor::product(const la::CsrMatrix& X,
                                       std::span<const real> y) {
  return run([&](Backend b) { return registry_.product(b, X, y); },
             PatternKind::kXty);
}

PatternResult PatternExecutor::product(const la::DenseMatrix& X,
                                       std::span<const real> y) {
  return run([&](Backend b) { return registry_.product(b, X, y); },
             PatternKind::kXty);
}

PatternResult PatternExecutor::axpy(real alpha, std::span<const real> x,
                                    std::span<real> y) {
  return run([&](Backend b) { return registry_.axpy(b, alpha, x, y); },
             PatternKind::kXty, y);
}

PatternResult PatternExecutor::dot(std::span<const real> x,
                                   std::span<const real> y) {
  return run([&](Backend b) { return registry_.dot(b, x, y); },
             PatternKind::kXty);
}

PatternResult PatternExecutor::nrm2(std::span<const real> x) {
  return run([&](Backend b) { return registry_.nrm2(b, x); },
             PatternKind::kXty);
}

PatternResult PatternExecutor::scal(real alpha, std::span<real> x) {
  return run([&](Backend b) { return registry_.scal(b, alpha, x); },
             PatternKind::kXty, x);
}

PatternResult PatternExecutor::ewise_mul(std::span<const real> x,
                                         std::span<const real> y) {
  return run([&](Backend b) { return registry_.ewise_mul(b, x, y); },
             PatternKind::kXty);
}

PatternResult PatternExecutor::pattern(real alpha, const la::CsrMatrix& X,
                                       std::span<const real> v,
                                       std::span<const real> y, real beta,
                                       std::span<const real> z) {
  const bool has_bz = !z.empty() && beta != real{0};
  const PatternKind kind = classify(false, !v.empty(), has_bz);
  record(kind);
  return run(
      [&](Backend b) { return registry_.pattern(b, alpha, X, v, y, beta, z); },
      kind);
}

PatternResult PatternExecutor::pattern(real alpha, const la::DenseMatrix& X,
                                       std::span<const real> v,
                                       std::span<const real> y, real beta,
                                       std::span<const real> z) {
  const bool has_bz = !z.empty() && beta != real{0};
  const PatternKind kind = classify(false, !v.empty(), has_bz);
  record(kind);
  return run(
      [&](Backend b) { return registry_.pattern(b, alpha, X, v, y, beta, z); },
      kind);
}

}  // namespace fusedml::patterns
