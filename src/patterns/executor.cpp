#include "patterns/executor.h"

#include <algorithm>
#include <exception>

#include "common/error.h"
#include "kernels/baselines.h"
#include "kernels/blas1.h"
#include "kernels/gemv.h"
#include "kernels/spmv.h"

namespace fusedml::patterns {

std::string to_string(Backend backend) {
  switch (backend) {
    case Backend::kFused: return "fused";
    case Backend::kCusparse: return "cuBLAS/cuSPARSE-style";
    case Backend::kBidmatGpu: return "BIDMat-GPU-style";
    case Backend::kCpu: return "CPU (MKL-like)";
  }
  return "?";
}

std::optional<Backend> fallback_backend(Backend backend) {
  switch (backend) {
    case Backend::kFused: return Backend::kCusparse;
    case Backend::kCusparse: return Backend::kCpu;
    case Backend::kBidmatGpu: return Backend::kCpu;
    case Backend::kCpu: return std::nullopt;
  }
  return std::nullopt;
}

namespace {
PatternResult from_op(kernels::OpResult op, PatternKind kind,
                      std::string kernel) {
  PatternResult out;
  out.value = std::move(op.value);
  out.modeled_ms = op.modeled_ms;
  out.wall_ms = op.wall_ms;
  out.launches = op.launches;
  out.counters = op.counters;
  out.kind = kind;
  out.kernel = std::move(kernel);
  return out;
}

PatternResult from_cpu(kernels::CpuOpResult op, PatternKind kind,
                       std::string kernel) {
  PatternResult out;
  out.value = std::move(op.value);
  out.modeled_ms = op.modeled_ms;
  out.wall_ms = op.wall_ms;
  out.kind = kind;
  out.kernel = std::move(kernel);
  return out;
}
}  // namespace

PatternResult PatternExecutor::execute_resilient(
    const std::function<PatternResult(Backend)>& attempt,
    std::span<real> inout) {
  // Fast path: nothing armed, nothing to absorb — run the attempt directly
  // so fault-free modeled times are untouched by the resilience machinery.
  const vgpu::FaultInjector* injector = dev_.fault_injector();
  if (injector == nullptr || !injector->armed()) {
    PatternResult r = attempt(backend_);
    r.backend_used = backend_;
    return r;
  }

  // In-place operands must be restorable so a retried attempt sees the
  // original inputs (an ECC fault is raised *after* the kernel wrote them).
  std::vector<real> snapshot(inout.begin(), inout.end());

  ResilienceStats rs;
  double extra_ms = 0.0;  // wasted attempt time + modeled backoff
  Backend b = backend_;
  std::exception_ptr last_fault;
  for (;;) {
    bool degrade = false;
    for (int a = 1; a <= retry_.max_attempts && !degrade; ++a) {
      try {
        PatternResult r = attempt(b);
        if (rs.faults_seen > 0) ++rs.recoveries;
        r.resilience = rs;
        r.modeled_ms += extra_ms;
        r.backend_used = b;
        if (rs.fallbacks > 0) r.kernel += " [after fallback]";
        resilience_ += rs;
        return r;
      } catch (const Error& e) {
        if (e.code() == ErrorCode::kGeneric) throw;  // not a fault
        last_fault = std::current_exception();
        ++rs.faults_seen;
        rs.wasted_ms += e.penalty_ms();
        extra_ms += e.penalty_ms();
        if (!inout.empty()) {
          std::copy(snapshot.begin(), snapshot.end(), inout.begin());
        }
        if (e.code() == ErrorCode::kDeviceOom) {
          degrade = true;  // retrying the same allocation cannot help
        } else if (a < retry_.max_attempts) {
          const double wait = retry_.backoff_ms(a);
          rs.backoff_ms += wait;
          extra_ms += wait;
          ++rs.retries;
        }
      }
    }
    const auto next =
        retry_.allow_backend_fallback ? fallback_backend(b) : std::nullopt;
    if (!next.has_value()) {
      resilience_ += rs;
      std::rethrow_exception(last_fault);
    }
    b = *next;
    ++rs.fallbacks;
  }
}

PatternResult PatternExecutor::run_transposed_product(Backend b,
                                                      const la::CsrMatrix& X,
                                                      std::span<const real> y,
                                                      real alpha) {
  const PatternKind kind = PatternKind::kXty;
  switch (b) {
    case Backend::kFused:
      return from_op(kernels::fused_spmv_t(dev_, X, y, alpha, sparse_opts_),
                     kind, "fused_spmv_t (Alg. 1)");
    case Backend::kCusparse: {
      auto op = kernels::baseline_xty_sparse(
          dev_, X, y, kernels::SparseTransposeStrategy::kExplicitTranspose);
      if (alpha != real{1}) {
        auto s = kernels::dev_scal(dev_, alpha, op.value);
        op.absorb_timing(s);
      }
      return from_op(std::move(op), kind, "csr2csc + csrmv");
    }
    case Backend::kBidmatGpu: {
      auto op = kernels::baseline_xty_sparse(
          dev_, X, y, kernels::SparseTransposeStrategy::kAtomicScatter);
      if (alpha != real{1}) {
        auto s = kernels::dev_scal(dev_, alpha, op.value);
        op.absorb_timing(s);
      }
      return from_op(std::move(op), kind, "atomic-scatter spmv_t");
    }
    case Backend::kCpu: {
      auto op = cpu_.spmv_t(X, y);
      if (alpha != real{1}) {
        for (real& w : op.value) w *= alpha;
      }
      return from_cpu(std::move(op), kind, "cpu spmv_t");
    }
  }
  throw Error("unknown backend");
}

PatternResult PatternExecutor::transposed_product(const la::CsrMatrix& X,
                                                  std::span<const real> y,
                                                  real alpha) {
  record(PatternKind::kXty);
  return execute_resilient(
      [&](Backend b) { return run_transposed_product(b, X, y, alpha); });
}

PatternResult PatternExecutor::run_transposed_product(Backend b,
                                                      const la::DenseMatrix& X,
                                                      std::span<const real> y,
                                                      real alpha) {
  const PatternKind kind = PatternKind::kXty;
  if (b == Backend::kCpu) {
    auto op = cpu_.gemv_t(X, y);
    if (alpha != real{1}) {
      for (real& w : op.value) w *= alpha;
    }
    return from_cpu(std::move(op), kind, "cpu gemv_t");
  }
  const auto flavor = b == Backend::kCusparse ? kernels::DenseFlavor::kCublas
                                              : kernels::DenseFlavor::kBidmat;
  kernels::GemvOptions opts;
  if (flavor == kernels::DenseFlavor::kCublas) {
    opts.smem_conflict_ways = kernels::kCublasConflictWays;
    opts.transaction_inflation = kernels::kCublasTransactionInflation;
  }
  auto op = kernels::gemv_t(dev_, X, y, opts);
  if (alpha != real{1}) {
    auto s = kernels::dev_scal(dev_, alpha, op.value);
    op.absorb_timing(s);
  }
  return from_op(std::move(op), kind, "gemv_t");
}

PatternResult PatternExecutor::transposed_product(const la::DenseMatrix& X,
                                                  std::span<const real> y,
                                                  real alpha) {
  record(PatternKind::kXty);
  return execute_resilient(
      [&](Backend b) { return run_transposed_product(b, X, y, alpha); });
}

PatternResult PatternExecutor::product(const la::CsrMatrix& X,
                                       std::span<const real> y) {
  return execute_resilient([&](Backend b) {
    if (b == Backend::kCpu) {
      return from_cpu(cpu_.spmv(X, y), PatternKind::kXty, "cpu spmv");
    }
    return from_op(kernels::spmv_csr_vector(dev_, X, y), PatternKind::kXty,
                   "csrmv");
  });
}

PatternResult PatternExecutor::product(const la::DenseMatrix& X,
                                       std::span<const real> y) {
  return execute_resilient([&](Backend b) {
    if (b == Backend::kCpu) {
      return from_cpu(cpu_.gemv(X, y), PatternKind::kXty, "cpu gemv");
    }
    return from_op(kernels::gemv_n(dev_, X, y), PatternKind::kXty, "gemv");
  });
}

namespace {
template <typename DevOp, typename CpuOp>
PatternResult blas1_run(Backend backend, DevOp&& dev_op, CpuOp&& cpu_op,
                        const char* name) {
  if (backend == Backend::kCpu) {
    return from_cpu(cpu_op(), PatternKind::kXty, name);  // kind unused
  }
  return from_op(dev_op(), PatternKind::kXty, name);
}
}  // namespace

PatternResult PatternExecutor::axpy(real alpha, std::span<const real> x,
                                    std::span<real> y) {
  return execute_resilient(
      [&](Backend b) {
        return blas1_run(
            b, [&] { return kernels::dev_axpy(dev_, alpha, x, y); },
            [&] { return cpu_.axpy(alpha, x, y); }, "axpy");
      },
      y);
}

PatternResult PatternExecutor::dot(std::span<const real> x,
                                   std::span<const real> y) {
  return execute_resilient([&](Backend b) {
    return blas1_run(
        b, [&] { return kernels::dev_dot(dev_, x, y); },
        [&] { return cpu_.dot(x, y); }, "dot");
  });
}

PatternResult PatternExecutor::nrm2(std::span<const real> x) {
  return execute_resilient([&](Backend b) {
    return blas1_run(
        b, [&] { return kernels::dev_nrm2(dev_, x); },
        [&] { return cpu_.nrm2(x); }, "nrm2");
  });
}

PatternResult PatternExecutor::scal(real alpha, std::span<real> x) {
  return execute_resilient(
      [&](Backend b) {
        return blas1_run(
            b, [&] { return kernels::dev_scal(dev_, alpha, x); },
            [&] { return cpu_.scal(alpha, x); }, "scal");
      },
      x);
}

PatternResult PatternExecutor::ewise_mul(std::span<const real> x,
                                         std::span<const real> y) {
  return execute_resilient([&](Backend b) {
    return blas1_run(
        b, [&] { return kernels::dev_ewise_mul(dev_, x, y); },
        [&] { return cpu_.ewise_mul(x, y); }, "ewise_mul");
  });
}

PatternResult PatternExecutor::run_pattern(Backend b, real alpha,
                                           const la::CsrMatrix& X,
                                           std::span<const real> v,
                                           std::span<const real> y, real beta,
                                           std::span<const real> z,
                                           PatternKind kind) {
  switch (b) {
    case Backend::kFused:
      return from_op(
          kernels::fused_pattern_sparse(dev_, alpha, X, v, y, beta, z,
                                        sparse_opts_),
          kind, "fused_pattern_sparse (Alg. 2)");
    case Backend::kCusparse:
      return from_op(
          kernels::baseline_pattern_sparse(
              dev_, alpha, X, v, y, beta, z,
              kernels::SparseTransposeStrategy::kExplicitTranspose),
          kind, "csrmv + blas1 + csr2csc + csrmv");
    case Backend::kBidmatGpu:
      return from_op(
          kernels::baseline_pattern_sparse(
              dev_, alpha, X, v, y, beta, z,
              kernels::SparseTransposeStrategy::kAtomicScatter),
          kind, "csrmv + blas1 + atomic-scatter");
    case Backend::kCpu:
      return from_cpu(cpu_.pattern(alpha, X, v, y, beta, z), kind,
                      "cpu pattern");
  }
  throw Error("unknown backend");
}

PatternResult PatternExecutor::pattern(real alpha, const la::CsrMatrix& X,
                                       std::span<const real> v,
                                       std::span<const real> y, real beta,
                                       std::span<const real> z) {
  const bool has_bz = !z.empty() && beta != real{0};
  const PatternKind kind = classify(false, !v.empty(), has_bz);
  record(kind);
  return execute_resilient([&](Backend b) {
    return run_pattern(b, alpha, X, v, y, beta, z, kind);
  });
}

PatternResult PatternExecutor::run_pattern(Backend b, real alpha,
                                           const la::DenseMatrix& X,
                                           std::span<const real> v,
                                           std::span<const real> y, real beta,
                                           std::span<const real> z,
                                           PatternKind kind) {
  const bool has_bz = !z.empty() && beta != real{0};
  switch (b) {
    case Backend::kFused: {
      if (!kernels::dense_fused_feasible(dev_.spec(), X.cols())) {
        // §3.2: very wide dense rows exceed the register file — fall back
        // to two separate Level-2 kernels instead of fusing.
        return from_op(
            kernels::baseline_pattern_dense(dev_, alpha, X, v, y, beta, z,
                                            kernels::DenseFlavor::kBidmat),
            kind, "gemv + gemv_t (fused infeasible: n too large, §3.2)");
      }
      if (dense_opts_.use_codegen) {
        // §3.2 lifecycle: the kernel for this (n, VS, TL, options) shape is
        // generated once and reused on every subsequent iteration.
        const auto params = kernels::fused_dense_params(dev_, X, dense_opts_);
        codegen_cache_.dense_kernel({X.cols(), params.config.vector_size,
                                     params.config.thread_load, !v.empty(),
                                     has_bz});
      }
      return from_op(
          kernels::fused_pattern_dense(dev_, alpha, X, v, y, beta, z,
                                       dense_opts_),
          kind, "fused_pattern_dense (Alg. 3, codegen)");
    }
    case Backend::kCusparse:
      return from_op(
          kernels::baseline_pattern_dense(dev_, alpha, X, v, y, beta, z,
                                          kernels::DenseFlavor::kCublas),
          kind, "gemv + blas1 + gemv_t (cuBLAS tiles)");
    case Backend::kBidmatGpu:
      return from_op(
          kernels::baseline_pattern_dense(dev_, alpha, X, v, y, beta, z,
                                          kernels::DenseFlavor::kBidmat),
          kind, "gemv + blas1 + gemv_t (padded tiles)");
    case Backend::kCpu:
      return from_cpu(cpu_.pattern(alpha, X, v, y, beta, z), kind,
                      "cpu pattern");
  }
  throw Error("unknown backend");
}

PatternResult PatternExecutor::pattern(real alpha, const la::DenseMatrix& X,
                                       std::span<const real> v,
                                       std::span<const real> y, real beta,
                                       std::span<const real> z) {
  const bool has_bz = !z.empty() && beta != real{0};
  const PatternKind kind = classify(false, !v.empty(), has_bz);
  record(kind);
  return execute_resilient([&](Backend b) {
    return run_pattern(b, alpha, X, v, y, beta, z, kind);
  });
}

}  // namespace fusedml::patterns
