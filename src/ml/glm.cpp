#include "ml/glm.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "la/vector_ops.h"

namespace fusedml::ml {

namespace {

real inv_link_gaussian(real eta) { return eta; }
real inv_link_poisson(real eta) { return std::exp(std::min<real>(eta, 30.0)); }
real inv_link_binomial(real eta) {
  return real{1} / (real{1} + std::exp(-eta));
}

real var_weight_gaussian(real) { return real{1}; }
real var_weight_poisson(real mu) { return std::max<real>(mu, 1e-10); }
real var_weight_binomial(real mu) {
  return std::max<real>(mu * (1 - mu), 1e-10);
}

real inverse_link(GlmFamily family, real eta) {
  return glm_inverse_link(family)(eta);
}

/// Variance weight W_ii for the canonical link (equals var(mu)).
real variance_weight(GlmFamily family, real mu) {
  return glm_variance_weight(family)(mu);
}

}  // namespace

real (*glm_inverse_link(GlmFamily family))(real) {
  switch (family) {
    case GlmFamily::kGaussian: return inv_link_gaussian;
    case GlmFamily::kPoisson: return inv_link_poisson;
    case GlmFamily::kBinomial: return inv_link_binomial;
  }
  return inv_link_gaussian;
}

real (*glm_variance_weight(GlmFamily family))(real) {
  switch (family) {
    case GlmFamily::kGaussian: return var_weight_gaussian;
    case GlmFamily::kPoisson: return var_weight_poisson;
    case GlmFamily::kBinomial: return var_weight_binomial;
  }
  return var_weight_gaussian;
}

GlmResult glm_irls(patterns::PatternExecutor& exec, const la::CsrMatrix& X,
                   std::span<const real> y, GlmConfig config) {
  FUSEDML_CHECK(y.size() == static_cast<usize>(X.rows()),
                "labels must have one entry per row");
  const auto m = static_cast<usize>(X.rows());
  const auto n = static_cast<usize>(X.cols());
  GlmResult out;
  std::vector<real> w(n, real{0});
  std::vector<real> eta(m, real{0});
  std::vector<real> weights_diag(m), resid(m);

  for (int it = 0; it < config.max_irls_iterations; ++it) {
    // mu, W and the score residual at the current eta = X*w.
    for (usize i = 0; i < m; ++i) {
      const real mu = inverse_link(config.family, eta[i]);
      weights_diag[i] = variance_weight(config.family, mu);
      resid[i] = mu - y[i];  // canonical-link score
    }
    // Gradient g = X^T (mu - y) + ridge*w.
    auto g_op = exec.transposed_product(X, resid);
    out.stats.add_pattern(g_op);
    std::vector<real> grad = std::move(g_op.value);
    for (usize j = 0; j < n; ++j) grad[j] += config.ridge * w[j];

    const real gnorm = la::nrm2(grad);
    out.final_deviance_proxy = gnorm;
    if (gnorm <= config.gradient_tolerance) {
      out.converged = true;
      break;
    }

    // CG on (X^T W X + ridge I) d = -g via the v-weighted pattern.
    std::vector<real> d(n, real{0});
    std::vector<real> r = grad;
    std::vector<real> p(n);
    for (usize j = 0; j < n; ++j) p[j] = -grad[j];
    real rr = la::dot(r, r);
    for (int cg = 0;
         cg < config.max_cg_iterations && std::sqrt(rr) > real{0.05} * gnorm;
         ++cg) {
      // Fp = X^T (W ⊙ (X p)) + ridge * p — one fused-pattern kernel.
      auto fp_op =
          exec.pattern(real{1}, X, weights_diag, p, config.ridge, p);
      out.stats.add_pattern(fp_op);
      const std::vector<real>& fp = fp_op.value;
      const real pfp = la::dot(p, fp);
      if (pfp <= 0) break;
      const real alpha = rr / pfp;
      la::axpy(alpha, p, d);
      la::axpy(alpha, fp, r);
      const real rr_new = la::dot(r, r);
      const real beta = rr_new / rr;
      rr = rr_new;
      for (usize j = 0; j < n; ++j) p[j] = -r[j] + beta * p[j];
    }

    // Damped update: halve until eta stays finite and gradient norm drops.
    real step = 1.0;
    for (int ls = 0; ls < 6; ++ls) {
      std::vector<real> w_new = w;
      la::axpy(step, d, w_new);
      auto eta_op = exec.product(X, w_new);
      out.stats.add_pattern(eta_op);
      bool finite = true;
      for (real e : eta_op.value) {
        if (!std::isfinite(e) || std::abs(e) > 50) {
          finite = false;
          break;
        }
      }
      if (finite) {
        w = std::move(w_new);
        eta = std::move(eta_op.value);
        break;
      }
      step *= real{0.5};
    }
    out.stats.iterations = it + 1;
  }

  out.weights = std::move(w);
  return out;
}

std::vector<real> glm_predict(patterns::PatternExecutor& exec,
                              const la::CsrMatrix& X,
                              std::span<const real> weights,
                              GlmFamily family) {
  auto eta = exec.product(X, weights);
  std::vector<real> mu(eta.value.size());
  for (usize i = 0; i < mu.size(); ++i) {
    mu[i] = inverse_link(family, eta.value[i]);
  }
  return mu;
}

}  // namespace fusedml::ml
