#include "ml/hits.h"

#include <cmath>

#include "common/error.h"
#include "la/vector_ops.h"

namespace fusedml::ml {

HitsResult hits(patterns::PatternExecutor& exec, const la::CsrMatrix& X,
                HitsConfig config) {
  FUSEDML_CHECK(X.rows() > 0 && X.cols() > 0, "empty adjacency matrix");
  const auto n = static_cast<usize>(X.cols());
  HitsResult out;
  std::vector<real> a(n, real{1} / std::sqrt(static_cast<real>(n)));

  for (int it = 0; it < config.max_iterations; ++it) {
    // a' = X^T (X a): authority refresh, one fused-pattern kernel.
    auto a_op = exec.xt_xy(X, a);
    out.stats.add_pattern(a_op);
    std::vector<real>& a_new = a_op.value;

    auto norm_op = exec.nrm2(a_new);
    out.stats.add_blas1(norm_op);
    const real norm = norm_op.value[0];
    if (norm <= 0) break;  // no links at all
    auto scal_op = exec.scal(real{1} / norm, a_new);
    out.stats.add_blas1(scal_op);

    real delta = 0;
    for (usize j = 0; j < n; ++j) {
      const real d = a_new[j] - a[j];
      delta += d * d;
    }
    a = std::move(a_new);
    out.stats.iterations = it + 1;
    if (std::sqrt(delta) <= config.tolerance) {
      out.converged = true;
      break;
    }
  }

  // Hub scores h = X a (normalized).
  auto h_op = exec.product(X, a);
  out.stats.add_pattern(h_op);
  std::vector<real> h = std::move(h_op.value);
  const real hn = la::nrm2(h);
  if (hn > 0) la::scal(real{1} / hn, h);

  out.authorities = std::move(a);
  out.hubs = std::move(h);
  return out;
}

}  // namespace fusedml::ml
