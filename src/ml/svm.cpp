#include "ml/svm.h"

#include <cmath>

#include "common/error.h"
#include "la/convert.h"
#include "la/vector_ops.h"

namespace fusedml::ml {

namespace {
real svm_objective(real C, std::span<const real> w,
                   std::span<const real> margins, std::span<const real> y) {
  real f = 0;
  for (usize i = 0; i < margins.size(); ++i) {
    const real slack = std::max<real>(0, real{1} - y[i] * margins[i]);
    f += slack * slack;
  }
  real wn = 0;
  for (real x : w) wn += x * x;
  return real{0.5} * wn + C * f;
}
}  // namespace

SvmResult svm_primal(patterns::PatternExecutor& exec, const la::CsrMatrix& X,
                     std::span<const real> y, SvmConfig config) {
  FUSEDML_CHECK(y.size() == static_cast<usize>(X.rows()),
                "labels must have one entry per row");
  const auto m = static_cast<usize>(X.rows());
  const auto n = static_cast<usize>(X.cols());
  SvmResult out;
  std::vector<real> w(n, real{0});
  std::vector<real> margins(m, real{0});

  for (int newton = 0; newton < config.max_newton_iterations; ++newton) {
    // Support (violator) set: y_i * margin_i < 1.
    std::vector<index_t> sv;
    for (usize i = 0; i < m; ++i) {
      if (y[i] * margins[i] < real{1}) sv.push_back(static_cast<index_t>(i));
    }
    out.support_vectors = static_cast<int>(sv.size());
    if (sv.empty()) {
      out.converged = true;
      break;
    }
    const la::CsrMatrix Xi = la::select_rows(X, sv);

    // Gradient: g = w + 2C * X_I^T * (margins_I - y_I).
    std::vector<real> resid(sv.size());
    for (usize k = 0; k < sv.size(); ++k) {
      const auto i = static_cast<usize>(sv[k]);
      resid[k] = margins[i] - y[i];
    }
    auto g_op = exec.transposed_product(Xi, resid, 2 * config.C);
    out.stats.add_pattern(g_op);
    std::vector<real> grad = std::move(g_op.value);
    for (usize j = 0; j < n; ++j) grad[j] += w[j];

    const real gnorm = la::nrm2(grad);
    if (gnorm <= config.gradient_tolerance) {
      out.converged = true;
      break;
    }

    // CG on (I + 2C X_I^T X_I) d = -g.
    std::vector<real> d(n, real{0});
    std::vector<real> r = grad;
    std::vector<real> p(n);
    for (usize j = 0; j < n; ++j) p[j] = -grad[j];
    real rr = la::dot(r, r);
    for (int cg = 0;
         cg < config.max_cg_iterations && std::sqrt(rr) > real{0.01} * gnorm;
         ++cg) {
      // Hp = 2C * X_I^T (X_I p) + p — one fused-pattern kernel.
      auto hp_op = exec.pattern(2 * config.C, Xi, {}, p, real{1}, p);
      out.stats.add_pattern(hp_op);
      const std::vector<real>& hp = hp_op.value;
      const real php = la::dot(p, hp);
      if (php <= 0) break;
      const real alpha = rr / php;
      la::axpy(alpha, p, d);
      la::axpy(alpha, hp, r);
      const real rr_new = la::dot(r, r);
      const real beta = rr_new / rr;
      rr = rr_new;
      for (usize j = 0; j < n; ++j) p[j] = -r[j] + beta * p[j];
    }

    // Line search on the Newton direction (full step is usually fine for
    // squared hinge; backtrack if the objective does not improve).
    const real f_old = svm_objective(config.C, w, margins, y);
    real step = 1.0;
    bool improved = false;
    for (int ls = 0; ls < 8; ++ls) {
      std::vector<real> w_new = w;
      la::axpy(step, d, w_new);
      auto margins_op = exec.product(X, w_new);
      out.stats.add_pattern(margins_op);
      const real f_new = svm_objective(config.C, w_new, margins_op.value, y);
      if (f_new < f_old) {
        w = std::move(w_new);
        margins = std::move(margins_op.value);
        improved = true;
        break;
      }
      step *= real{0.5};
    }
    out.stats.iterations = newton + 1;
    if (!improved) break;
  }

  out.final_objective = svm_objective(config.C, w, margins, y);
  out.weights = std::move(w);
  return out;
}

std::vector<real> svm_decision(patterns::PatternExecutor& exec,
                               const la::CsrMatrix& X,
                               std::span<const real> weights) {
  return exec.product(X, weights).value;
}

}  // namespace fusedml::ml
