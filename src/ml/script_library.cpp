#include "ml/script_library.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/error.h"
#include "la/convert.h"
#include "la/vector_ops.h"
#include "sysml/checkpoint.h"

// Every script here mirrors its legacy imperative solver op for op: the
// same registry kernels fire in the same order, reductions run on the same
// backend the legacy path used (host la::dot/nrm2 where the solver reduced
// on the host, runtime op_dot/op_nrm2 where it reduced through the
// executor), and elementwise work moves onto the device only where that is
// bit-exact by construction. tests/test_script_library.cpp holds the
// oracles; see each port's comments for the venue decisions.

namespace fusedml::ml {

using sysml::Expr;
using sysml::ExprBuilder;
using sysml::Program;
using sysml::Runtime;
using sysml::TensorId;

const char* to_string(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kLrCg: return "lr_cg";
    case Algorithm::kLogregGd: return "logreg_gd";
    case Algorithm::kGlm: return "glm";
    case Algorithm::kSvm: return "svm";
    case Algorithm::kHits: return "hits";
    case Algorithm::kAls: return "als";
    case Algorithm::kKmeans: return "kmeans";
    case Algorithm::kPagerank: return "pagerank";
    case Algorithm::kMinibatchLogreg: return "minibatch_logreg";
  }
  return "?";
}

namespace {

/// Checkpoint slot for a runtime-owned vector tensor: snapshot by host
/// read, restore by writing the saved values back into the tensor the
/// solver currently reads (all of a solver's generations of a loop-carried
/// tensor share one length, so this also covers re-bound tensors like
/// GLM's eta or HITS' a — the set-lambda captures the live TensorId by
/// reference).
void track_tensor(sysml::SolverCheckpoint& ckpt, Runtime& rt,
                  const TensorId& id) {
  ckpt.track_vector(
      [&rt, &id] {
        const auto v = rt.read_vector(id);
        return std::vector<real>(v.begin(), v.end());
      },
      [&rt, &id](const std::vector<real>& saved) {
        rt.write_vector(id, saved);
      });
}

/// Checkpoint slot for solver state held in a host std::vector.
void track_host(sysml::SolverCheckpoint& ckpt, std::vector<real>& v) {
  ckpt.track_vector([&v] { return v; },
                    [&v](const std::vector<real>& saved) { v = saved; });
}

template <typename Matrix>
TensorId add_matrix(Runtime& rt, const Matrix& X, std::string name) {
  if constexpr (std::is_same_v<Matrix, la::CsrMatrix>) {
    return rt.add_sparse(X, std::move(name));
  } else {
    return rt.add_dense(X, std::move(name));
  }
}

la::CsrMatrix take_rows(const la::CsrMatrix& X,
                        std::span<const index_t> rows) {
  return la::select_rows(X, rows);
}

la::DenseMatrix take_rows(const la::DenseMatrix& X,
                          std::span<const index_t> rows) {
  std::vector<real> data;
  data.reserve(rows.size() * static_cast<usize>(X.cols()));
  for (const index_t r : rows) {
    for (index_t c = 0; c < X.cols(); ++c) data.push_back(X.at(r, c));
  }
  return la::DenseMatrix(static_cast<index_t>(rows.size()), X.cols(),
                         std::move(data));
}

/// Copies the runtime's books into the result (shared epilogue).
void finish(Runtime& rt, Program* programs[], int num_programs,
            int iterations, ScriptResult& out) {
  out.iterations = iterations;
  out.fused_groups = 0;
  out.plans_built = 0;
  out.plan_cache_hits = 0;
  for (int i = 0; i < num_programs; ++i) {
    out.fused_groups += programs[i]->fused_groups();
    out.plans_built += programs[i]->plans_built();
    out.plan_cache_hits += programs[i]->plan_cache_hits();
    if (!programs[i]->plan_explain().empty()) {
      out.plan_explain += programs[i]->plan_explain();
    }
  }
  out.runtime_stats = rt.stats();
  out.memory_stats = rt.memory_stats();
  out.end_to_end_ms = out.runtime_stats.total_ms();
  out.plan_audit = rt.plan_audit();
}

// --- lr-cg: Listing 1, the q = (X^T (X p)) + eps*p product as a Program ----

template <typename Matrix>
ScriptResult lr_cg_impl(Runtime& rt, const Matrix& X,
                        std::span<const real> y, PlanMode mode,
                        ScriptConfig config) {
  FUSEDML_CHECK(y.size() == static_cast<usize>(X.rows()),
                "labels must have one entry per row");
  ScriptResult out;
  const auto n = static_cast<usize>(X.cols());

  const TensorId Xid = add_matrix(rt, X, "V");
  const TensorId yid = rt.add_vector({y.begin(), y.end()}, "y");

  // r = -(t(V) %*% y);  p = -r;  nr2 = sum(r*r).
  const TensorId rid = rt.op_transposed_product(Xid, yid, real{-1});
  const auto r_view = rt.read_vector(rid);
  const TensorId pid = rt.add_vector({r_view.begin(), r_view.end()}, "p");
  rt.op_scal(real{-1}, pid);
  real nr2 = rt.op_dot(rid, rid);
  const real nr2_target = nr2 * config.tolerance * config.tolerance;
  const TensorId wid = rt.new_vector(n, "w");

  // The per-iteration DAG, planned once per shape.
  ExprBuilder b;
  const Expr V = b.matrix("V");
  const Expr p = b.vector("p");
  b.output("q", ExprBuilder::add(
                    ExprBuilder::spmv_t(V, ExprBuilder::spmv(V, p)),
                    ExprBuilder::scale(config.eps, p)));
  Program prog = b.build();
  prog.bind("V", Xid);
  prog.bind("p", pid);
  prog.prepare(rt, mode);

  // Live CG state: a transient fault that escapes the per-op retry loop
  // rolls the solve back to the last snapshot instead of losing it.
  sysml::SolverCheckpoint ckpt(rt);
  track_tensor(ckpt, rt, wid);
  track_tensor(ckpt, rt, rid);
  track_tensor(ckpt, rt, pid);
  ckpt.track_scalar([&nr2] { return nr2; }, [&nr2](real s) { nr2 = s; });

  int i = 0;
  while (i < config.max_iterations && nr2 > nr2_target) {
    ckpt.save_if_due(i);
    try {
      const TensorId qid = rt.run(prog, "q");
      const real alpha = nr2 / rt.op_dot(pid, qid);
      rt.op_axpy(alpha, pid, wid);
      rt.op_axpy(alpha, qid, rid);
      const real old_nr2 = nr2;
      nr2 = rt.op_dot(rid, rid);
      const real beta = nr2 / old_nr2;
      rt.op_scal(beta, pid);
      rt.op_axpy(real{-1}, rid, pid);
      ++i;
    } catch (const Error& e) {
      i = ckpt.rollback(e);
    }
  }

  const auto w_view = rt.read_vector(wid);
  out.weights.assign(w_view.begin(), w_view.end());
  Program* programs[] = {&prog};
  finish(rt, programs, 1, i, out);
  return out;
}

// --- logreg gradient descent: the whole gradient as one Program ------------

template <typename Matrix>
ScriptResult logreg_gd_impl(Runtime& rt, const Matrix& X,
                            std::span<const real> y, PlanMode mode,
                            GdConfig config) {
  FUSEDML_CHECK(y.size() == static_cast<usize>(X.rows()),
                "labels must have one entry per row");
  ScriptResult out;
  const auto n = static_cast<usize>(X.cols());

  const TensorId Xid = add_matrix(rt, X, "X");
  const TensorId nyid = rt.add_vector({y.begin(), y.end()}, "neg_y");
  rt.op_scal(real{-1}, nyid);
  const TensorId wid = rt.new_vector(n, "w");

  // g = X^T (sigmoid(-y ⊙ (X w)) ⊙ -y) + lambda*w — the elementwise chain
  // and the gradient glue are both planner fusion candidates.
  ExprBuilder b;
  const Expr Xe = b.matrix("X");
  const Expr w = b.vector("w");
  const Expr ny = b.vector("neg_y");
  const Expr margins = ExprBuilder::map(
      ExprBuilder::mul(ny, ExprBuilder::spmv(Xe, w)), stable_sigmoid,
      "sigmoid");
  const Expr resid = ExprBuilder::mul(margins, ny);
  b.output("g", ExprBuilder::add(ExprBuilder::spmv_t(Xe, resid),
                                 ExprBuilder::scale(config.lambda, w)));
  Program prog = b.build();
  prog.bind("X", Xid);
  prog.bind("w", wid);
  prog.bind("neg_y", nyid);
  prog.prepare(rt, mode);

  sysml::SolverCheckpoint ckpt(rt);
  track_tensor(ckpt, rt, wid);

  int it = 0;
  while (it < config.iterations) {
    ckpt.save_if_due(it);
    try {
      const TensorId gid = rt.run(prog, "g");
      rt.op_axpy(-config.step, gid, wid);
      ++it;
    } catch (const Error& e) {
      it = ckpt.rollback(e);
    }
  }

  const auto w_view = rt.read_vector(wid);
  out.weights.assign(w_view.begin(), w_view.end());
  Program* programs[] = {&prog};
  finish(rt, programs, 1, it, out);
  return out;
}

// --- GLM / IRLS -------------------------------------------------------------
//
// Four programs: the per-row prep chains (W and the score residual), the
// gradient, the Fisher product (the Table-1 pattern), and the line-search
// eta. The CG recurrences stay on host la:: reductions exactly like the
// legacy solver, so planner-mode results are bit-identical to glm_irls on
// a device-placed executor.

template <typename Matrix>
ScriptResult glm_impl(Runtime& rt, const Matrix& X, std::span<const real> y,
                      PlanMode mode, GlmConfig config) {
  FUSEDML_CHECK(y.size() == static_cast<usize>(X.rows()),
                "labels must have one entry per row");
  const auto m = static_cast<usize>(X.rows());
  const auto n = static_cast<usize>(X.cols());
  ScriptResult out;

  real (*const inv_link)(real) = glm_inverse_link(config.family);
  real (*const var_weight)(real) = glm_variance_weight(config.family);

  const TensorId Xid = add_matrix(rt, X, "X");
  const TensorId yid = rt.add_vector({y.begin(), y.end()}, "y");
  TensorId eta_id = rt.new_vector(m, "eta");  // eta = X*w starts at 0
  const TensorId wid = rt.new_vector(n, "w");
  const TensorId pid = rt.new_vector(n, "p");
  const TensorId wtid = rt.new_vector(n, "w_trial");

  // W = var(g^{-1}(eta));  resid = g^{-1}(eta) - y. The two mu maps are
  // deliberately separate nodes: sharing one would make it a multi-consumer
  // intermediate and block both elementwise chains from fusing.
  ExprBuilder pb;
  const Expr eta_e = pb.vector("eta");
  const Expr y_e = pb.vector("y");
  pb.output("wdiag",
            ExprBuilder::map(ExprBuilder::map(eta_e, inv_link, "inv_link"),
                             var_weight, "variance"));
  pb.output("resid",
            ExprBuilder::add(ExprBuilder::map(eta_e, inv_link, "inv_link"),
                             ExprBuilder::scale(real{-1}, y_e)));
  Program prep = pb.build();
  prep.bind("eta", eta_id);
  prep.bind("y", yid);

  // g = X^T resid + ridge*w (the {scale, add} tail is a fusable chain).
  ExprBuilder gb;
  const Expr Xg = gb.matrix("X");
  const Expr r_e = gb.vector("resid");
  const Expr w_e = gb.vector("w");
  gb.output("grad", ExprBuilder::add(ExprBuilder::spmv_t(Xg, r_e),
                                     ExprBuilder::scale(config.ridge, w_e)));
  Program gradp = gb.build();
  gradp.bind("X", Xid);
  gradp.bind("w", wid);

  // Fp = X^T (W ⊙ (X p)) + ridge*p — Equation 1 with v = W, beta = ridge.
  ExprBuilder fb;
  const Expr Xf = fb.matrix("X");
  const Expr wd_e = fb.vector("wdiag");
  const Expr p_e = fb.vector("p");
  fb.output("Fp", ExprBuilder::pattern(real{1}, Xf, wd_e, p_e, config.ridge,
                                       p_e));
  Program fisher = fb.build();
  fisher.bind("X", Xid);

  ExprBuilder eb;
  const Expr Xe = eb.matrix("X");
  const Expr wt_e = eb.vector("w_trial");
  eb.output("eta", ExprBuilder::spmv(Xe, wt_e));
  Program etap = eb.build();
  etap.bind("X", Xid);
  etap.bind("w_trial", wtid);

  std::vector<real> w(n, real{0});
  int iterations = 0;

  // IRLS state: the weight vector lives on the host, the loop-carried eta
  // in whichever tensor eta_id currently names (the set-lambda writes the
  // snapshot back into the live tensor, which prep already binds).
  sysml::SolverCheckpoint ckpt(rt);
  track_host(ckpt, w);
  track_tensor(ckpt, rt, eta_id);

  int it = 0;
  while (it < config.max_irls_iterations) {
    ckpt.save_if_due(it);
    try {
    prep.prepare(rt, mode);
    const TensorId wdiag_id = rt.run(prep, "wdiag");
    const TensorId resid_id = rt.run(prep, "resid");

    rt.write_vector(wid, w);
    gradp.bind("resid", resid_id);
    gradp.prepare(rt, mode);
    const TensorId grad_id = rt.run(gradp, "grad");
    const auto grad_view = rt.read_vector(grad_id);
    const std::vector<real> grad(grad_view.begin(), grad_view.end());

    const real gnorm = la::nrm2(grad);
    if (gnorm <= config.gradient_tolerance) break;

    // CG on (X^T W X + ridge I) d = -g; recurrences on the host, the
    // Fisher product through the planned pattern.
    std::vector<real> d(n, real{0});
    std::vector<real> r = grad;
    std::vector<real> p(n);
    for (usize j = 0; j < n; ++j) p[j] = -grad[j];
    real rr = la::dot(r, r);
    fisher.bind("wdiag", wdiag_id);
    fisher.bind("p", pid);
    fisher.prepare(rt, mode);
    for (int cg = 0;
         cg < config.max_cg_iterations && std::sqrt(rr) > real{0.05} * gnorm;
         ++cg) {
      rt.write_vector(pid, p);
      const TensorId fp_id = rt.run(fisher, "Fp");
      const auto fp_view = rt.read_vector(fp_id);
      const std::vector<real> fp(fp_view.begin(), fp_view.end());
      const real pfp = la::dot(p, fp);
      if (pfp <= 0) break;
      const real alpha = rr / pfp;
      la::axpy(alpha, p, d);
      la::axpy(alpha, fp, r);
      const real rr_new = la::dot(r, r);
      const real beta = rr_new / rr;
      rr = rr_new;
      for (usize j = 0; j < n; ++j) p[j] = -r[j] + beta * p[j];
    }

    // Damped update: halve until eta = X*(w + step*d) stays finite.
    real step = 1.0;
    for (int ls = 0; ls < 6; ++ls) {
      std::vector<real> w_new = w;
      la::axpy(step, d, w_new);
      rt.write_vector(wtid, w_new);
      etap.prepare(rt, mode);
      const TensorId trial_eta = rt.run(etap, "eta");
      const auto eta_view = rt.read_vector(trial_eta);
      bool finite = true;
      for (const real e : eta_view) {
        if (!std::isfinite(e) || std::abs(e) > 50) {
          finite = false;
          break;
        }
      }
      if (finite) {
        w = std::move(w_new);
        eta_id = trial_eta;  // loop-carried: next prep reads this eta
        prep.bind("eta", eta_id);
        break;
      }
      step *= real{0.5};
    }
    iterations = it + 1;
    ++it;
    } catch (const Error& e) {
      it = ckpt.rollback(e);
    }
  }

  out.weights = std::move(w);
  Program* programs[] = {&prep, &gradp, &fisher, &etap};
  finish(rt, programs, 4, iterations, out);
  return out;
}

// --- SVM (primal, squared hinge, Newton + CG) -------------------------------
//
// The row-restricted matrix X_I changes every Newton step, so the gradient
// and Hessian programs re-bind "Xi" each step; the plan cache keys on the
// leaf shapes, so a recurring support-set size replans nothing.

real svm_objective(real C, std::span<const real> w,
                   std::span<const real> margins, std::span<const real> y) {
  real f = 0;
  for (usize i = 0; i < margins.size(); ++i) {
    const real slack = std::max<real>(0, real{1} - y[i] * margins[i]);
    f += slack * slack;
  }
  real wn = 0;
  for (const real x : w) wn += x * x;
  return real{0.5} * wn + C * f;
}

template <typename Matrix>
ScriptResult svm_impl(Runtime& rt, const Matrix& X, std::span<const real> y,
                      PlanMode mode, SvmConfig config) {
  FUSEDML_CHECK(y.size() == static_cast<usize>(X.rows()),
                "labels must have one entry per row");
  const auto m = static_cast<usize>(X.rows());
  const auto n = static_cast<usize>(X.cols());
  ScriptResult out;

  const TensorId Xid = add_matrix(rt, X, "X");
  const TensorId wid = rt.new_vector(n, "w");
  const TensorId pid = rt.new_vector(n, "p");
  const TensorId wtid = rt.new_vector(n, "w_trial");

  // g = 2C * X_I^T resid + w, the 2C applied per-term inside the kernel
  // exactly like the legacy transposed_product(alpha) call.
  ExprBuilder gb;
  const Expr Xig = gb.matrix("Xi");
  const Expr r_e = gb.vector("resid");
  const Expr w_e = gb.vector("w");
  gb.output("grad",
            ExprBuilder::add(ExprBuilder::spmv_t(Xig, r_e, 2 * config.C),
                             w_e));
  Program gradp = gb.build();
  gradp.bind("w", wid);

  // Hp = 2C * X_I^T (X_I p) + p — Equation 1 with alpha = 2C, beta = 1.
  ExprBuilder hb;
  const Expr Xih = hb.matrix("Xi");
  const Expr p_e = hb.vector("p");
  hb.output("Hp", ExprBuilder::pattern(2 * config.C, Xih, Expr{}, p_e,
                                       real{1}, p_e));
  Program hess = hb.build();
  hess.bind("p", pid);

  ExprBuilder mb;
  const Expr Xm = mb.matrix("X");
  const Expr wt_e = mb.vector("w_trial");
  mb.output("margins", ExprBuilder::spmv(Xm, wt_e));
  Program marginp = mb.build();
  marginp.bind("X", Xid);
  marginp.bind("w_trial", wtid);

  std::vector<real> w(n, real{0});
  std::vector<real> margins(m, real{0});
  int iterations = 0;

  // Newton state is all host-side: weights and cached margins.
  sysml::SolverCheckpoint ckpt(rt);
  track_host(ckpt, w);
  track_host(ckpt, margins);

  int newton = 0;
  while (newton < config.max_newton_iterations) {
    ckpt.save_if_due(newton);
    try {
    std::vector<index_t> sv;
    for (usize i = 0; i < m; ++i) {
      if (y[i] * margins[i] < real{1}) sv.push_back(static_cast<index_t>(i));
    }
    if (sv.empty()) break;
    const Matrix Xi = take_rows(X, sv);
    const TensorId Xi_id = add_matrix(rt, Xi, "Xi");

    std::vector<real> resid(sv.size());
    for (usize k = 0; k < sv.size(); ++k) {
      const auto i = static_cast<usize>(sv[k]);
      resid[k] = margins[i] - y[i];
    }
    const TensorId resid_id =
        rt.add_vector(std::move(resid), "resid");

    rt.write_vector(wid, w);
    gradp.bind("Xi", Xi_id);
    gradp.bind("resid", resid_id);
    gradp.prepare(rt, mode);
    const TensorId grad_id = rt.run(gradp, "grad");
    const auto grad_view = rt.read_vector(grad_id);
    const std::vector<real> grad(grad_view.begin(), grad_view.end());

    const real gnorm = la::nrm2(grad);
    if (gnorm <= config.gradient_tolerance) break;

    // CG on (I + 2C X_I^T X_I) d = -g.
    std::vector<real> d(n, real{0});
    std::vector<real> r = grad;
    std::vector<real> p(n);
    for (usize j = 0; j < n; ++j) p[j] = -grad[j];
    real rr = la::dot(r, r);
    hess.bind("Xi", Xi_id);
    hess.prepare(rt, mode);
    for (int cg = 0;
         cg < config.max_cg_iterations && std::sqrt(rr) > real{0.01} * gnorm;
         ++cg) {
      rt.write_vector(pid, p);
      const TensorId hp_id = rt.run(hess, "Hp");
      const auto hp_view = rt.read_vector(hp_id);
      const std::vector<real> hp(hp_view.begin(), hp_view.end());
      const real php = la::dot(p, hp);
      if (php <= 0) break;
      const real alpha = rr / php;
      la::axpy(alpha, p, d);
      la::axpy(alpha, hp, r);
      const real rr_new = la::dot(r, r);
      const real beta = rr_new / rr;
      rr = rr_new;
      for (usize j = 0; j < n; ++j) p[j] = -r[j] + beta * p[j];
    }

    // Backtracking line search on the squared-hinge objective.
    const real f_old = svm_objective(config.C, w, margins, y);
    real step = 1.0;
    bool improved = false;
    for (int ls = 0; ls < 8; ++ls) {
      std::vector<real> w_new = w;
      la::axpy(step, d, w_new);
      rt.write_vector(wtid, w_new);
      marginp.prepare(rt, mode);
      const TensorId margins_id = rt.run(marginp, "margins");
      const auto margins_view = rt.read_vector(margins_id);
      const real f_new = svm_objective(config.C, w_new, margins_view, y);
      if (f_new < f_old) {
        w = std::move(w_new);
        margins.assign(margins_view.begin(), margins_view.end());
        improved = true;
        break;
      }
      step *= real{0.5};
    }
    iterations = newton + 1;
    ++newton;
    if (!improved) break;
    } catch (const Error& e) {
      newton = ckpt.rollback(e);
    }
  }

  out.weights = std::move(w);
  Program* programs[] = {&gradp, &hess, &marginp};
  finish(rt, programs, 3, iterations, out);
  return out;
}

// --- HITS power iteration ---------------------------------------------------
//
// Loop-carried state via re-binding: each refresh reads the previous
// iteration's (normalized) output tensor as the new "a".

template <typename Matrix>
ScriptResult hits_impl(Runtime& rt, const Matrix& X, PlanMode mode,
                       HitsConfig config) {
  FUSEDML_CHECK(X.rows() > 0 && X.cols() > 0, "empty adjacency matrix");
  const auto n = static_cast<usize>(X.cols());
  ScriptResult out;

  const TensorId Xid = add_matrix(rt, X, "X");
  std::vector<real> a(n, real{1} / std::sqrt(static_cast<real>(n)));
  TensorId aid = rt.add_vector(a, "a");

  // a' = X^T (X a) — the Table-1 HITS instantiation of Equation 1.
  ExprBuilder rb;
  const Expr Xr = rb.matrix("X");
  const Expr a_e = rb.vector("a");
  rb.output("a_next", ExprBuilder::spmv_t(Xr, ExprBuilder::spmv(Xr, a_e)));
  Program refresh = rb.build();
  refresh.bind("X", Xid);

  ExprBuilder hbuild;
  const Expr Xh = hbuild.matrix("X");
  const Expr ah = hbuild.vector("a");
  hbuild.output("h", ExprBuilder::spmv(Xh, ah));
  Program hubs = hbuild.build();
  hubs.bind("X", Xid);

  // Power-iteration state: the host copy of a plus whichever tensor aid
  // currently names (restored in place; refresh re-binds aid every pass).
  sysml::SolverCheckpoint ckpt(rt);
  track_host(ckpt, a);
  track_tensor(ckpt, rt, aid);

  int iterations = 0;
  bool converged = false;
  int it = 0;
  while (it < config.max_iterations && !converged) {
    ckpt.save_if_due(it);
    try {
      refresh.bind("a", aid);
      refresh.prepare(rt, mode);
      const TensorId a_new = rt.run(refresh, "a_next");
      const real norm = rt.op_nrm2(a_new);
      if (norm <= 0) break;  // no links at all
      rt.op_scal(real{1} / norm, a_new);

      const auto view = rt.read_vector(a_new);
      real delta = 0;
      for (usize j = 0; j < n; ++j) {
        const real dj = view[j] - a[j];
        delta += dj * dj;
      }
      a.assign(view.begin(), view.end());
      aid = a_new;
      iterations = it + 1;
      converged = std::sqrt(delta) <= config.tolerance;
      ++it;
    } catch (const Error& e) {
      it = ckpt.rollback(e);
    }
  }

  // Hub scores h = X a for the final authorities (kept for op-stream parity
  // with the legacy solver; the script returns the authorities).
  hubs.bind("a", aid);
  hubs.prepare(rt, mode);
  const TensorId hid = rt.run(hubs, "h");
  const auto h_view = rt.read_vector(hid);
  std::vector<real> h(h_view.begin(), h_view.end());
  const real hn = la::nrm2(h);
  if (hn > 0) la::scal(real{1} / hn, h);

  out.weights = std::move(a);
  Program* programs[] = {&refresh, &hubs};
  finish(rt, programs, 2, iterations, out);
  return out;
}

// --- ALS (rank-1, alternating CG) -------------------------------------------
//
// Factorizes the ratings matrix R ≈ u v^T over R's OBSERVED entries only:
// each half-step solves a ridge normal system whose Hessian-vector product
// is the sddmm-shaped masked expression
//     H p = (M ⊙ (p v^T)) v + lambda*p
// built from outer_map + sparse_mask + spmv. Under the planner that whole
// subexpression collapses into the sparsity-exploiting fused kernel, which
// touches only nnz(M) and never materializes the m*n outer map; the unfused
// interpretation materializes it, which is exactly the traffic the plan
// explain shows being saved. CG recurrences stay on the host (la::dot /
// la::axpy), so planner vs unfused is bit-exact.

real identity_map(real x) { return x; }

la::CsrMatrix pattern_mask(const la::CsrMatrix& X) {
  return la::CsrMatrix(
      X.rows(), X.cols(), {X.row_off().begin(), X.row_off().end()},
      {X.col_idx().begin(), X.col_idx().end()},
      std::vector<real>(static_cast<usize>(X.nnz()), real{1}));
}

la::DenseMatrix pattern_mask(const la::DenseMatrix& X) {
  std::vector<real> data(X.data().begin(), X.data().end());
  for (real& x : data) x = x != real{0} ? real{1} : real{0};
  return la::DenseMatrix(X.rows(), X.cols(), std::move(data));
}

template <typename Matrix>
ScriptResult als_impl(Runtime& rt, const Matrix& R, PlanMode mode,
                      AlsConfig config) {
  FUSEDML_CHECK(R.rows() > 0 && R.cols() > 0, "empty ratings matrix");
  const auto m = static_cast<usize>(R.rows());
  const auto n = static_cast<usize>(R.cols());
  ScriptResult out;

  const Matrix Rt = la::transpose(R);
  const Matrix M = pattern_mask(R);
  const Matrix Mt = la::transpose(M);

  const TensorId Rid = add_matrix(rt, R, "R");
  const TensorId Rtid = add_matrix(rt, Rt, "Rt");
  const TensorId Mid = add_matrix(rt, M, "M");
  const TensorId Mtid = add_matrix(rt, Mt, "Mt");

  std::vector<real> u(m, real{1});
  std::vector<real> v(n, real{1});
  const TensorId uid = rt.add_vector(u, "u");
  const TensorId vid = rt.add_vector(v, "v");
  const TensorId pid = rt.new_vector(m, "p");  // CG direction, u half-step
  const TensorId qid = rt.new_vector(n, "q");  // CG direction, v half-step

  // H p = (M ⊙ (p v^T)) v + lambda*p, and the mirrored system over Mt.
  ExprBuilder hu;
  {
    const Expr Mh = hu.matrix("M");
    const Expr vh = hu.vector("v");
    const Expr ph = hu.vector("p");
    const Expr masked = ExprBuilder::spmv(
        ExprBuilder::sparse_mask(
            Mh, ExprBuilder::outer_map(ph, vh, identity_map, "id")),
        vh);
    hu.output("Hp", ExprBuilder::add(masked,
                                     ExprBuilder::scale(config.lambda, ph)));
  }
  Program hup = hu.build();
  hup.bind("M", Mid);
  hup.bind("v", vid);
  hup.bind("p", pid);

  ExprBuilder hv;
  {
    const Expr Mh = hv.matrix("Mt");
    const Expr uh = hv.vector("u");
    const Expr qh = hv.vector("q");
    const Expr masked = ExprBuilder::spmv(
        ExprBuilder::sparse_mask(
            Mh, ExprBuilder::outer_map(qh, uh, identity_map, "id")),
        uh);
    hv.output("Hp", ExprBuilder::add(masked,
                                     ExprBuilder::scale(config.lambda, qh)));
  }
  Program hvp = hv.build();
  hvp.bind("Mt", Mtid);
  hvp.bind("u", uid);
  hvp.bind("q", qid);

  // Right-hand sides: b_u = R v, b_v = R^T u (over the pre-transposed leaf).
  ExprBuilder bu;
  bu.output("b", ExprBuilder::spmv(bu.matrix("R"), bu.vector("v")));
  Program bup = bu.build();
  bup.bind("R", Rid);
  bup.bind("v", vid);

  ExprBuilder bv;
  bv.output("b", ExprBuilder::spmv(bv.matrix("Rt"), bv.vector("u")));
  Program bvp = bv.build();
  bvp.bind("Rt", Rtid);
  bvp.bind("u", uid);

  // One ridge half-step from x = 0: CG on H x = b with the product on the
  // device and the recurrences on the host, like the GLM/SVM ports.
  auto half_step = [&](Program& bprog, Program& hprog, TensorId dir_id,
                       std::vector<real>& x) {
    bprog.prepare(rt, mode);
    const auto b_view = rt.read_vector(rt.run(bprog, "b"));
    std::vector<real> p(b_view.begin(), b_view.end());
    std::vector<real> r(p.size());
    for (usize j = 0; j < p.size(); ++j) r[j] = -p[j];
    std::vector<real> xv(p.size(), real{0});
    real rr = la::dot(r, r);
    hprog.prepare(rt, mode);
    for (int cg = 0; cg < config.max_cg_iterations && rr > real{0}; ++cg) {
      rt.write_vector(dir_id, p);
      const auto hp_view = rt.read_vector(rt.run(hprog, "Hp"));
      const std::vector<real> hp(hp_view.begin(), hp_view.end());
      const real php = la::dot(p, hp);
      if (php <= 0) break;
      const real alpha = rr / php;
      la::axpy(alpha, p, xv);
      la::axpy(alpha, hp, r);
      const real rr_new = la::dot(r, r);
      const real beta = rr_new / rr;
      rr = rr_new;
      for (usize j = 0; j < p.size(); ++j) p[j] = -r[j] + beta * p[j];
    }
    x = std::move(xv);
  };

  sysml::SolverCheckpoint ckpt(rt);
  track_host(ckpt, u);
  track_host(ckpt, v);

  int iterations = 0;
  int it = 0;
  while (it < config.max_outer) {
    ckpt.save_if_due(it);
    try {
      rt.write_vector(vid, v);
      half_step(bup, hup, pid, u);  // u | v fixed
      rt.write_vector(uid, u);
      half_step(bvp, hvp, qid, v);  // v | u fixed
      iterations = it + 1;
      ++it;
    } catch (const Error& e) {
      it = ckpt.rollback(e);
    }
  }

  out.weights = std::move(v);
  Program* programs[] = {&hup, &hvp, &bup, &bvp};
  finish(rt, programs, 4, iterations, out);
  return out;
}

// --- k-means (Lloyd's) ------------------------------------------------------
//
// The device computes the -2 X c cross term of the squared distance through
// one program re-bound per centroid ({spmv, scale} — one fused row-template
// launch under the planner); ||x_i||^2 is assignment-invariant and
// precomputed, assignment and centroid refresh stay on the host.

void add_row_into(const la::CsrMatrix& X, index_t r, std::span<real> dst) {
  for (offset_t k = X.row_begin(r); k < X.row_end(r); ++k) {
    dst[static_cast<usize>(X.col_idx()[static_cast<usize>(k)])] +=
        X.values()[static_cast<usize>(k)];
  }
}

void add_row_into(const la::DenseMatrix& X, index_t r, std::span<real> dst) {
  const auto row = X.row(r);
  for (usize c = 0; c < row.size(); ++c) dst[c] += row[c];
}

real row_norm2(const la::CsrMatrix& X, index_t r) {
  real s = 0;
  for (offset_t k = X.row_begin(r); k < X.row_end(r); ++k) {
    const real x = X.values()[static_cast<usize>(k)];
    s += x * x;
  }
  return s;
}

real row_norm2(const la::DenseMatrix& X, index_t r) {
  real s = 0;
  for (const real x : X.row(r)) s += x * x;
  return s;
}

template <typename Matrix>
ScriptResult kmeans_impl(Runtime& rt, const Matrix& X, PlanMode mode,
                         KmeansConfig config) {
  FUSEDML_CHECK(X.rows() > 0 && X.cols() > 0, "empty data matrix");
  const auto m = static_cast<usize>(X.rows());
  const auto n = static_cast<usize>(X.cols());
  const int k = std::min(config.clusters, static_cast<int>(m));
  FUSEDML_CHECK(k > 0, "k-means needs at least one cluster");
  ScriptResult out;

  const TensorId Xid = add_matrix(rt, X, "X");
  const TensorId cid = rt.new_vector(n, "c");

  ExprBuilder b;
  b.output("cross", ExprBuilder::scale(
                        real{-2}, ExprBuilder::spmv(b.matrix("X"),
                                                    b.vector("c"))));
  Program cross = b.build();
  cross.bind("X", Xid);
  cross.bind("c", cid);

  std::vector<real> xnorm(m);
  for (usize i = 0; i < m; ++i) {
    xnorm[i] = row_norm2(X, static_cast<index_t>(i));
  }

  // Centroids start as the first k rows, flattened row-major.
  std::vector<real> centroids(static_cast<usize>(k) * n, real{0});
  for (int c = 0; c < k; ++c) {
    add_row_into(X, static_cast<index_t>(c),
                 std::span<real>(centroids).subspan(
                     static_cast<usize>(c) * n, n));
  }

  std::vector<int> assign(m, -1);
  sysml::SolverCheckpoint ckpt(rt);
  track_host(ckpt, centroids);
  // The previous assignment feeds the early-break decision, so it must roll
  // back with the centroids or a replayed iteration could break early where
  // the clean run did not.
  ckpt.track_vector(
      [&assign] { return std::vector<real>(assign.begin(), assign.end()); },
      [&assign](const std::vector<real>& saved) {
        assign.assign(saved.begin(), saved.end());
      });

  int iterations = 0;
  int it = 0;
  while (it < config.max_iterations) {
    ckpt.save_if_due(it);
    try {
      std::vector<real> best(m, std::numeric_limits<real>::infinity());
      std::vector<int> next_assign(m, 0);
      for (int c = 0; c < k; ++c) {
        const auto centroid =
            std::span<const real>(centroids).subspan(
                static_cast<usize>(c) * n, n);
        rt.write_vector(cid, centroid);
        cross.prepare(rt, mode);
        const auto xc = rt.read_vector(rt.run(cross, "cross"));
        real cnorm = 0;
        for (const real x : centroid) cnorm += x * x;
        for (usize i = 0; i < m; ++i) {
          const real d = xnorm[i] + xc[i] + cnorm;
          if (d < best[i]) {
            best[i] = d;
            next_assign[i] = c;
          }
        }
      }
      const bool changed = next_assign != assign;
      assign = std::move(next_assign);

      std::vector<real> sums(centroids.size(), real{0});
      std::vector<int> counts(static_cast<usize>(k), 0);
      for (usize i = 0; i < m; ++i) {
        const auto c = static_cast<usize>(assign[i]);
        add_row_into(X, static_cast<index_t>(i),
                     std::span<real>(sums).subspan(c * n, n));
        ++counts[c];
      }
      for (int c = 0; c < k; ++c) {
        if (counts[static_cast<usize>(c)] == 0) continue;  // keep the old one
        const real inv = real{1} / static_cast<real>(counts[static_cast<usize>(c)]);
        for (usize j = 0; j < n; ++j) {
          centroids[static_cast<usize>(c) * n + j] =
              sums[static_cast<usize>(c) * n + j] * inv;
        }
      }
      iterations = it + 1;
      ++it;
      if (!changed) break;
    } catch (const Error& e) {
      it = ckpt.rollback(e);
    }
  }

  out.weights = std::move(centroids);
  Program* programs[] = {&cross};
  finish(rt, programs, 1, iterations, out);
  return out;
}

// --- PageRank ---------------------------------------------------------------
//
// r' = d * P^T r + (1-d)/n over the leading square of the input (so the
// uniform library runner can feed any matrix). Pre-transposing the
// row-normalized walk turns the update into the plain-product chain
// add(scale(d, Pt*r), tele) — a row-template candidate the planner fuses
// into ONE launch per iteration.

la::CsrMatrix leading_square(const la::CsrMatrix& X, index_t k) {
  std::vector<offset_t> row_off = {0};
  std::vector<index_t> col_idx;
  std::vector<real> values;
  for (index_t r = 0; r < k; ++r) {
    for (offset_t j = X.row_begin(r); j < X.row_end(r); ++j) {
      const index_t c = X.col_idx()[static_cast<usize>(j)];
      if (c >= k) continue;
      col_idx.push_back(c);
      values.push_back(X.values()[static_cast<usize>(j)]);
    }
    row_off.push_back(static_cast<offset_t>(col_idx.size()));
  }
  return la::CsrMatrix(k, k, std::move(row_off), std::move(col_idx),
                       std::move(values));
}

la::DenseMatrix leading_square(const la::DenseMatrix& X, index_t k) {
  std::vector<real> data;
  data.reserve(static_cast<usize>(k) * static_cast<usize>(k));
  for (index_t r = 0; r < k; ++r) {
    for (index_t c = 0; c < k; ++c) data.push_back(X.at(r, c));
  }
  return la::DenseMatrix(k, k, std::move(data));
}

la::CsrMatrix row_normalized(const la::CsrMatrix& X) {
  std::vector<real> values(X.values().begin(), X.values().end());
  for (index_t r = 0; r < X.rows(); ++r) {
    real s = 0;
    for (offset_t j = X.row_begin(r); j < X.row_end(r); ++j) {
      s += std::abs(values[static_cast<usize>(j)]);
    }
    if (s == real{0}) continue;
    for (offset_t j = X.row_begin(r); j < X.row_end(r); ++j) {
      values[static_cast<usize>(j)] /= s;
    }
  }
  return la::CsrMatrix(X.rows(), X.cols(),
                       {X.row_off().begin(), X.row_off().end()},
                       {X.col_idx().begin(), X.col_idx().end()},
                       std::move(values));
}

la::DenseMatrix row_normalized(const la::DenseMatrix& X) {
  std::vector<real> data(X.data().begin(), X.data().end());
  const auto n = static_cast<usize>(X.cols());
  for (index_t r = 0; r < X.rows(); ++r) {
    real s = 0;
    for (usize c = 0; c < n; ++c) {
      s += std::abs(data[static_cast<usize>(r) * n + c]);
    }
    if (s == real{0}) continue;
    for (usize c = 0; c < n; ++c) data[static_cast<usize>(r) * n + c] /= s;
  }
  return la::DenseMatrix(X.rows(), X.cols(), std::move(data));
}

template <typename Matrix>
ScriptResult pagerank_impl(Runtime& rt, const Matrix& X, PlanMode mode,
                           PagerankConfig config) {
  const index_t k = std::min(X.rows(), X.cols());
  FUSEDML_CHECK(k > 0, "empty adjacency matrix");
  const auto n = static_cast<usize>(k);
  ScriptResult out;

  const Matrix Pt = la::transpose(row_normalized(leading_square(X, k)));
  const TensorId Ptid = add_matrix(rt, Pt, "Pt");
  std::vector<real> r(n, real{1} / static_cast<real>(n));
  TensorId rid = rt.add_vector(r, "r");
  const TensorId tid = rt.add_vector(
      std::vector<real>(n, (real{1} - config.damping) / static_cast<real>(n)),
      "tele");

  ExprBuilder b;
  {
    const Expr Pte = b.matrix("Pt");
    const Expr re = b.vector("r");
    const Expr te = b.vector("tele");
    b.output("r_next",
             ExprBuilder::add(
                 ExprBuilder::scale(config.damping,
                                    ExprBuilder::spmv(Pte, re)),
                 te));
  }
  Program step = b.build();
  step.bind("Pt", Ptid);
  step.bind("tele", tid);

  sysml::SolverCheckpoint ckpt(rt);
  track_host(ckpt, r);
  track_tensor(ckpt, rt, rid);

  int iterations = 0;
  bool converged = false;
  int it = 0;
  while (it < config.max_iterations && !converged) {
    ckpt.save_if_due(it);
    try {
      step.bind("r", rid);
      step.prepare(rt, mode);
      const TensorId r_new = rt.run(step, "r_next");
      const auto view = rt.read_vector(r_new);
      real delta = 0;
      for (usize j = 0; j < n; ++j) delta += std::abs(view[j] - r[j]);
      r.assign(view.begin(), view.end());
      rid = r_new;
      iterations = it + 1;
      converged = delta <= config.tolerance;
      ++it;
    } catch (const Error& e) {
      it = ckpt.rollback(e);
    }
  }

  out.weights = std::move(r);
  Program* programs[] = {&step};
  finish(rt, programs, 1, iterations, out);
  return out;
}

// --- Mini-batch logistic regression -----------------------------------------
//
// The full-logreg gradient over a rotating quarter-of-the-rows batch. The
// batch leaves re-bind every step; a recurring batch shape hits the plan
// cache (dense batches always do — CSR batches replan when the slice nnz
// changes). The gradient DAG has no Equation-1 site, so the planner's wins
// here are the row template (product + sigmoid chain) and the ewise tail.

template <typename Matrix>
ScriptResult minibatch_logreg_impl(Runtime& rt, const Matrix& X,
                                   std::span<const real> y, PlanMode mode,
                                   MinibatchConfig config) {
  FUSEDML_CHECK(y.size() == static_cast<usize>(X.rows()),
                "labels must have one entry per row");
  const auto m = static_cast<usize>(X.rows());
  const auto n = static_cast<usize>(X.cols());
  const usize bs = std::max<usize>(1, m / 4);
  ScriptResult out;

  const TensorId wid = rt.new_vector(n, "w");

  ExprBuilder b;
  {
    const Expr Xb = b.matrix("Xb");
    const Expr w = b.vector("w");
    const Expr nyb = b.vector("neg_yb");
    const Expr margins = ExprBuilder::map(
        ExprBuilder::mul(nyb, ExprBuilder::spmv(Xb, w)), stable_sigmoid,
        "sigmoid");
    const Expr resid = ExprBuilder::mul(margins, nyb);
    b.output("g", ExprBuilder::add(ExprBuilder::spmv_t(Xb, resid),
                                   ExprBuilder::scale(config.lambda, w)));
  }
  Program prog = b.build();
  prog.bind("w", wid);

  sysml::SolverCheckpoint ckpt(rt);
  track_tensor(ckpt, rt, wid);

  int it = 0;
  while (it < config.iterations) {
    ckpt.save_if_due(it);
    try {
      // Batch window [start, start + bs) with wraparound; select_rows wants
      // a strictly increasing list, so the wrapped window is sorted (the
      // gradient is a sum over batch rows — order only permutes the slice).
      const usize start = (static_cast<usize>(it) * bs) % m;
      std::vector<index_t> rows(bs);
      for (usize j = 0; j < bs; ++j) {
        rows[j] = static_cast<index_t>((start + j) % m);
      }
      std::sort(rows.begin(), rows.end());
      const Matrix Xb = take_rows(X, rows);
      const TensorId Xbid = add_matrix(rt, Xb, "Xb");
      std::vector<real> nyb(bs);
      for (usize j = 0; j < bs; ++j) {
        nyb[j] = -y[static_cast<usize>(rows[j])];
      }
      const TensorId nybid = rt.add_vector(std::move(nyb), "neg_yb");

      prog.bind("Xb", Xbid);
      prog.bind("neg_yb", nybid);
      prog.prepare(rt, mode);
      const TensorId gid = rt.run(prog, "g");
      rt.op_axpy(-config.step, gid, wid);
      ++it;
    } catch (const Error& e) {
      it = ckpt.rollback(e);
    }
  }

  const auto w_view = rt.read_vector(wid);
  out.weights.assign(w_view.begin(), w_view.end());
  Program* programs[] = {&prog};
  finish(rt, programs, 1, it, out);
  return out;
}

}  // namespace

// --- Public entry points ----------------------------------------------------

ScriptResult run_lr_cg_script(Runtime& rt, const la::CsrMatrix& X,
                              std::span<const real> labels, PlanMode mode,
                              ScriptConfig config) {
  return lr_cg_impl(rt, X, labels, mode, config);
}
ScriptResult run_lr_cg_script(Runtime& rt, const la::DenseMatrix& X,
                              std::span<const real> labels, PlanMode mode,
                              ScriptConfig config) {
  return lr_cg_impl(rt, X, labels, mode, config);
}

ScriptResult run_logreg_gd_script(Runtime& rt, const la::CsrMatrix& X,
                                  std::span<const real> labels, PlanMode mode,
                                  GdConfig config) {
  return logreg_gd_impl(rt, X, labels, mode, config);
}
ScriptResult run_logreg_gd_script(Runtime& rt, const la::DenseMatrix& X,
                                  std::span<const real> labels, PlanMode mode,
                                  GdConfig config) {
  return logreg_gd_impl(rt, X, labels, mode, config);
}

ScriptResult run_glm_script(Runtime& rt, const la::CsrMatrix& X,
                            std::span<const real> labels, PlanMode mode,
                            GlmConfig config) {
  return glm_impl(rt, X, labels, mode, config);
}
ScriptResult run_glm_script(Runtime& rt, const la::DenseMatrix& X,
                            std::span<const real> labels, PlanMode mode,
                            GlmConfig config) {
  return glm_impl(rt, X, labels, mode, config);
}

ScriptResult run_svm_script(Runtime& rt, const la::CsrMatrix& X,
                            std::span<const real> labels, PlanMode mode,
                            SvmConfig config) {
  return svm_impl(rt, X, labels, mode, config);
}
ScriptResult run_svm_script(Runtime& rt, const la::DenseMatrix& X,
                            std::span<const real> labels, PlanMode mode,
                            SvmConfig config) {
  return svm_impl(rt, X, labels, mode, config);
}

ScriptResult run_hits_script(Runtime& rt, const la::CsrMatrix& X,
                             PlanMode mode, HitsConfig config) {
  return hits_impl(rt, X, mode, config);
}
ScriptResult run_hits_script(Runtime& rt, const la::DenseMatrix& X,
                             PlanMode mode, HitsConfig config) {
  return hits_impl(rt, X, mode, config);
}

ScriptResult run_als_script(Runtime& rt, const la::CsrMatrix& X,
                            PlanMode mode, AlsConfig config) {
  return als_impl(rt, X, mode, config);
}
ScriptResult run_als_script(Runtime& rt, const la::DenseMatrix& X,
                            PlanMode mode, AlsConfig config) {
  return als_impl(rt, X, mode, config);
}

ScriptResult run_kmeans_script(Runtime& rt, const la::CsrMatrix& X,
                               PlanMode mode, KmeansConfig config) {
  return kmeans_impl(rt, X, mode, config);
}
ScriptResult run_kmeans_script(Runtime& rt, const la::DenseMatrix& X,
                               PlanMode mode, KmeansConfig config) {
  return kmeans_impl(rt, X, mode, config);
}

ScriptResult run_pagerank_script(Runtime& rt, const la::CsrMatrix& X,
                                 PlanMode mode, PagerankConfig config) {
  return pagerank_impl(rt, X, mode, config);
}
ScriptResult run_pagerank_script(Runtime& rt, const la::DenseMatrix& X,
                                 PlanMode mode, PagerankConfig config) {
  return pagerank_impl(rt, X, mode, config);
}

ScriptResult run_minibatch_logreg_script(Runtime& rt, const la::CsrMatrix& X,
                                         std::span<const real> labels,
                                         PlanMode mode,
                                         MinibatchConfig config) {
  return minibatch_logreg_impl(rt, X, labels, mode, config);
}
ScriptResult run_minibatch_logreg_script(Runtime& rt,
                                         const la::DenseMatrix& X,
                                         std::span<const real> labels,
                                         PlanMode mode,
                                         MinibatchConfig config) {
  return minibatch_logreg_impl(rt, X, labels, mode, config);
}

// --- The generated library --------------------------------------------------

namespace {

/// Uniform runner for one (algorithm, mode): `iterations` caps the outer
/// loop, 0 keeps the algorithm's default.
template <typename Matrix>
ScriptResult run_spec(Algorithm algorithm, PlanMode mode, Runtime& rt,
                      const Matrix& X, std::span<const real> labels,
                      int iterations) {
  switch (algorithm) {
    case Algorithm::kLrCg: {
      ScriptConfig cfg;
      if (iterations > 0) cfg.max_iterations = iterations;
      return run_lr_cg_script(rt, X, labels, mode, cfg);
    }
    case Algorithm::kLogregGd: {
      GdConfig cfg;
      if (iterations > 0) cfg.iterations = iterations;
      return run_logreg_gd_script(rt, X, labels, mode, cfg);
    }
    case Algorithm::kGlm: {
      GlmConfig cfg;
      if (iterations > 0) cfg.max_irls_iterations = iterations;
      return run_glm_script(rt, X, labels, mode, cfg);
    }
    case Algorithm::kSvm: {
      SvmConfig cfg;
      if (iterations > 0) cfg.max_newton_iterations = iterations;
      return run_svm_script(rt, X, labels, mode, cfg);
    }
    case Algorithm::kHits: {
      HitsConfig cfg;
      if (iterations > 0) cfg.max_iterations = iterations;
      return run_hits_script(rt, X, mode, cfg);
    }
    case Algorithm::kAls: {
      AlsConfig cfg;
      if (iterations > 0) cfg.max_outer = iterations;
      return run_als_script(rt, X, mode, cfg);
    }
    case Algorithm::kKmeans: {
      KmeansConfig cfg;
      if (iterations > 0) cfg.max_iterations = iterations;
      return run_kmeans_script(rt, X, mode, cfg);
    }
    case Algorithm::kPagerank: {
      PagerankConfig cfg;
      if (iterations > 0) cfg.max_iterations = iterations;
      return run_pagerank_script(rt, X, mode, cfg);
    }
    case Algorithm::kMinibatchLogreg: {
      MinibatchConfig cfg;
      if (iterations > 0) cfg.iterations = iterations;
      return run_minibatch_logreg_script(rt, X, labels, mode, cfg);
    }
  }
  FUSEDML_CHECK(false, "unknown algorithm");
  return ScriptResult{};
}

std::vector<ScriptSpec> build_library() {
  constexpr Algorithm kAlgorithms[] = {
      Algorithm::kLrCg,     Algorithm::kLogregGd, Algorithm::kGlm,
      Algorithm::kSvm,      Algorithm::kHits,     Algorithm::kAls,
      Algorithm::kKmeans,   Algorithm::kPagerank,
      Algorithm::kMinibatchLogreg};
  constexpr PlanMode kModes[] = {PlanMode::kUnfused, PlanMode::kHardcodedPass,
                                 PlanMode::kPlanner};
  std::vector<ScriptSpec> lib;
  for (const Algorithm algorithm : kAlgorithms) {
    for (const bool dense : {false, true}) {
      for (const PlanMode mode : kModes) {
        ScriptSpec spec;
        spec.algorithm = algorithm;
        spec.dense = dense;
        spec.mode = mode;
        spec.name = std::string(to_string(algorithm)) +
                    (dense ? "/dense/" : "/csr/") + to_string(mode);
        if (dense) {
          spec.run_dense = [algorithm, mode](Runtime& rt,
                                             const la::DenseMatrix& X,
                                             std::span<const real> labels,
                                             int iterations) {
            return run_spec(algorithm, mode, rt, X, labels, iterations);
          };
        } else {
          spec.run_sparse = [algorithm, mode](Runtime& rt,
                                              const la::CsrMatrix& X,
                                              std::span<const real> labels,
                                              int iterations) {
            return run_spec(algorithm, mode, rt, X, labels, iterations);
          };
        }
        lib.push_back(std::move(spec));
      }
    }
  }
  return lib;
}

}  // namespace

const std::vector<ScriptSpec>& script_library() {
  static const std::vector<ScriptSpec> kLibrary = build_library();
  return kLibrary;
}

const ScriptSpec* find_script(const std::string& name) {
  for (const ScriptSpec& spec : script_library()) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

const ScriptSpec* find_script(Algorithm algorithm, bool dense,
                              PlanMode mode) {
  for (const ScriptSpec& spec : script_library()) {
    if (spec.algorithm == algorithm && spec.dense == dense &&
        spec.mode == mode) {
      return &spec;
    }
  }
  return nullptr;
}

}  // namespace fusedml::ml
