#include "ml/lr_cg.h"

#include "common/error.h"

namespace fusedml::ml {

namespace {

/// The algorithm body is identical for sparse and dense X; only the two
/// pattern evaluations dispatch on the matrix type.
template <typename Matrix>
LrCgResult lr_cg_impl(patterns::PatternExecutor& exec, const Matrix& X,
                      std::span<const real> y, const LrCgConfig& config) {
  FUSEDML_CHECK(y.size() == static_cast<usize>(X.rows()),
                "labels must have one entry per row");
  LrCgResult out;
  const auto n = static_cast<usize>(X.cols());

  // r = -(t(X) %*% y)   [Listing 1 line 3]
  auto rt = exec.transposed_product(X, y, real{-1});
  out.stats.add_pattern(rt);
  std::vector<real> r = std::move(rt.value);

  // p = -r              [line 4]
  std::vector<real> p(n);
  for (usize i = 0; i < n; ++i) p[i] = -r[i];

  // nr2 = sum(r * r)    [line 5]
  auto nr2_op = exec.dot(r, r);
  out.stats.add_blas1(nr2_op);
  real nr2 = nr2_op.value[0];
  out.initial_norm2 = nr2;
  const real nr2_target = nr2 * config.tolerance * config.tolerance;

  std::vector<real> w(n, real{0});  // [line 7]

  int i = 0;
  while (i < config.max_iterations && nr2 > nr2_target) {  // [line 9]
    // q = (t(X) %*% (X %*% p)) + eps * p   [line 10]
    auto q_op = exec.pattern(real{1}, X, {}, p, config.eps, p);
    out.stats.add_pattern(q_op);
    std::vector<real>& q = q_op.value;

    // alpha = nr2 / (t(p) %*% q)           [line 12]
    auto pq = exec.dot(p, q);
    out.stats.add_blas1(pq);
    const real alpha = nr2 / pq.value[0];

    // w = w + alpha * p                    [line 13]
    out.stats.add_blas1(exec.axpy(alpha, p, w));

    // r = r + alpha * q                    [line 15]
    out.stats.add_blas1(exec.axpy(alpha, q, r));

    // nr2 = sum(r * r)                     [line 16]
    const real old_nr2 = nr2;
    auto nr2_new = exec.dot(r, r);
    out.stats.add_blas1(nr2_new);
    nr2 = nr2_new.value[0];

    // beta = nr2 / old_nr2; p = -r + beta * p   [lines 17-18: axpy & scal]
    const real beta = nr2 / old_nr2;
    out.stats.add_blas1(exec.scal(beta, p));
    out.stats.add_blas1(exec.axpy(real{-1}, r, p));

    ++i;
  }
  out.stats.iterations = i;
  out.final_norm2 = nr2;
  out.converged = nr2 <= nr2_target;
  out.weights = std::move(w);
  return out;
}

}  // namespace

LrCgResult lr_cg(patterns::PatternExecutor& exec, const la::CsrMatrix& X,
                 std::span<const real> labels, LrCgConfig config) {
  return lr_cg_impl(exec, X, labels, config);
}

LrCgResult lr_cg(patterns::PatternExecutor& exec, const la::DenseMatrix& X,
                 std::span<const real> labels, LrCgConfig config) {
  return lr_cg_impl(exec, X, labels, config);
}

}  // namespace fusedml::ml
