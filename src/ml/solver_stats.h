// Shared accounting for the ML solvers: how much time went into the generic
// pattern vs BLAS-1 — the split Table 2 reports — plus launch counts for the
// end-to-end comparisons of Tables 5/6.
#pragma once

#include <cstdint>

#include "common/resilience.h"
#include "patterns/executor.h"

namespace fusedml::ml {

struct SolverStats {
  int iterations = 0;
  double pattern_modeled_ms = 0.0;
  double blas1_modeled_ms = 0.0;
  double pattern_wall_ms = 0.0;
  double blas1_wall_ms = 0.0;
  std::uint64_t launches = 0;
  /// Faults absorbed across every op the solver issued (retries, modeled
  /// backoff, backend fallbacks) — the solver-level resilience surface.
  ResilienceStats resilience;

  void add_pattern(const patterns::PatternResult& r) {
    pattern_modeled_ms += r.modeled_ms;
    pattern_wall_ms += r.wall_ms;
    launches += r.launches;
    resilience += r.resilience;
  }
  void add_blas1(const patterns::PatternResult& r) {
    blas1_modeled_ms += r.modeled_ms;
    blas1_wall_ms += r.wall_ms;
    launches += r.launches;
    resilience += r.resilience;
  }

  double total_modeled_ms() const {
    return pattern_modeled_ms + blas1_modeled_ms;
  }
  double total_wall_ms() const { return pattern_wall_ms + blas1_wall_ms; }

  /// Table-2-style percentages, over the wall clock of the functional run.
  double pattern_wall_percent() const {
    const double total = total_wall_ms();
    return total > 0.0 ? 100.0 * pattern_wall_ms / total : 0.0;
  }
  double blas1_wall_percent() const {
    const double total = total_wall_ms();
    return total > 0.0 ? 100.0 * blas1_wall_ms / total : 0.0;
  }
};

}  // namespace fusedml::ml
