// Linear SVM trained in the primal with squared hinge loss via Newton's
// method (Chapelle [9] — the reference the paper cites for SVM).
//
// Per Newton step, the support set I = {i : y_i (x_i . w) < 1} is frozen
// and the system (I + 2C X_I^T X_I) d = -grad is solved by CG whose
// matrix-vector product is
//   H * s = 2C * X_I^T * (X_I * s) + s
// — the X^T*(X*y) + beta*z instantiation on the row-restricted matrix
// (Table 1 marks SVM on exactly the no-v forms).
#pragma once

#include <span>
#include <vector>

#include "la/csr_matrix.h"
#include "ml/solver_stats.h"
#include "patterns/executor.h"

namespace fusedml::ml {

struct SvmConfig {
  int max_newton_iterations = 30;
  int max_cg_iterations = 40;
  real C = 1.0;                ///< hinge weight
  real gradient_tolerance = 1e-4;
};

struct SvmResult {
  std::vector<real> weights;
  SolverStats stats;
  real final_objective = 0;
  int support_vectors = 0;     ///< |I| at the last iteration
  bool converged = false;
};

/// Trains on rows of X with labels in {-1, +1}.
SvmResult svm_primal(patterns::PatternExecutor& exec, const la::CsrMatrix& X,
                     std::span<const real> labels, SvmConfig config = {});

/// Decision values X * w.
std::vector<real> svm_decision(patterns::PatternExecutor& exec,
                               const la::CsrMatrix& X,
                               std::span<const real> weights);

}  // namespace fusedml::ml
