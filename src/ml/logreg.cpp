#include "ml/logreg.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "la/vector_ops.h"

namespace fusedml::ml {

namespace {

// The solver's internal sigma — the shared stable form from the header.
real sigmoid(real t) { return stable_sigmoid(t); }

/// Objective f(w) = 0.5*lambda*||w||^2 + sum log(1 + exp(-y_i * m_i)) given
/// margins m = X*w.
real objective(real lambda, std::span<const real> w,
               std::span<const real> margins, std::span<const real> y) {
  real f = 0;
  for (usize i = 0; i < margins.size(); ++i) {
    const real t = -y[i] * margins[i];
    // log(1+exp(t)) computed stably.
    f += t > 0 ? t + std::log1p(std::exp(-t)) : std::log1p(std::exp(t));
  }
  real wn = 0;
  for (real x : w) wn += x * x;
  return f + real{0.5} * lambda * wn;
}

/// The positive tau with ||d + tau*p|| = radius (Steihaug boundary hit).
real boundary_step(std::span<const real> d, std::span<const real> p,
                   real radius) {
  const real dp = la::dot(d, p);
  const real pp = la::dot(p, p);
  const real dd = la::dot(d, d);
  if (pp <= 0) return 0;
  const real disc = dp * dp + pp * (radius * radius - dd);
  return (-dp + std::sqrt(std::max<real>(0, disc))) / pp;
}

}  // namespace

LogRegResult logreg_trust_region(patterns::PatternExecutor& exec,
                                 const la::CsrMatrix& X,
                                 std::span<const real> y,
                                 LogRegConfig config) {
  FUSEDML_CHECK(y.size() == static_cast<usize>(X.rows()),
                "labels must have one entry per row");
  const auto m = static_cast<usize>(X.rows());
  const auto n = static_cast<usize>(X.cols());
  LogRegResult out;
  std::vector<real> w(n, real{0});
  real radius = config.initial_trust_radius;

  // margins = X * w; starts at zero.
  std::vector<real> margins(m, real{0});
  real f = objective(config.lambda, w, margins, y);

  std::vector<real> grad(n), d_diag(m), residual_vec(m);
  for (int newton = 0; newton < config.max_newton_iterations; ++newton) {
    // Gradient: g = lambda*w + X^T * r where r_i = (sigma(y_i m_i) - 1) y_i.
    // Hessian weights: D_ii = sigma_i (1 - sigma_i) with sigma_i = s(m_i).
    for (usize i = 0; i < m; ++i) {
      const real s_ym = sigmoid(y[i] * margins[i]);
      residual_vec[i] = (s_ym - real{1}) * y[i];
      const real s_m = sigmoid(margins[i]);
      d_diag[i] = s_m * (real{1} - s_m);
    }
    auto g_op = exec.transposed_product(X, residual_vec);  // X^T * r
    out.stats.add_pattern(g_op);
    grad = std::move(g_op.value);
    for (usize j = 0; j < n; ++j) grad[j] += config.lambda * w[j];

    const real gnorm = la::nrm2(grad);
    out.final_gradient_norm = gnorm;
    if (gnorm <= config.gradient_tolerance) {
      out.converged = true;
      break;
    }

    // --- Steihaug CG for H d = -g within the trust region ----------------
    std::vector<real> d(n, real{0});
    std::vector<real> r_cg = grad;  // residual of H d + g (d = 0)
    std::vector<real> p(n);
    for (usize j = 0; j < n; ++j) p[j] = -grad[j];
    real rr = la::dot(r_cg, r_cg);
    for (int cg = 0; cg < config.max_cg_iterations && std::sqrt(rr) >
                         real{0.1} * gnorm; ++cg) {
      ++out.cg_iterations_total;
      // Hp = X^T (D ⊙ (X p)) + lambda p  — the FULL pattern, one kernel.
      auto hp_op = exec.pattern(real{1}, X, d_diag, p, config.lambda, p);
      out.stats.add_pattern(hp_op);
      const std::vector<real>& hp = hp_op.value;

      const real php = la::dot(p, hp);
      if (php <= 0) {  // negative curvature: walk to the boundary
        const real tau = boundary_step(d, p, radius);
        la::axpy(tau, p, d);
        break;
      }
      const real alpha = rr / php;
      // Would the step leave the region?
      std::vector<real> d_next = d;
      la::axpy(alpha, p, d_next);
      if (la::nrm2(d_next) >= radius) {
        const real tau = boundary_step(d, p, radius);
        la::axpy(tau, p, d);
        break;
      }
      d = std::move(d_next);
      la::axpy(alpha, hp, r_cg);
      const real rr_new = la::dot(r_cg, r_cg);
      const real beta = rr_new / rr;
      rr = rr_new;
      for (usize j = 0; j < n; ++j) p[j] = -r_cg[j] + beta * p[j];
    }

    // --- Accept / reject against actual vs predicted reduction -----------
    std::vector<real> w_new = w;
    la::axpy(real{1}, d, w_new);
    auto margins_op = exec.product(X, w_new);
    out.stats.add_pattern(margins_op);
    const real f_new =
        objective(config.lambda, w_new, margins_op.value, y);
    const real actual = f - f_new;
    // Predicted reduction: -g.d - 0.5 d'Hd  ~ use -g.d as a cheap proxy
    // (standard safeguards keep this robust for our well-scaled problems).
    const real predicted = -la::dot(grad, d) * real{0.5};
    const real rho = predicted > 0 ? actual / predicted : real{0};

    if (actual > 0) {
      w = std::move(w_new);
      margins = std::move(margins_op.value);
      f = f_new;
      if (rho > real{0.75}) radius *= 2;
    } else {
      radius *= real{0.25};
      if (radius < real{1e-10}) break;
    }
    out.stats.iterations = newton + 1;
  }

  out.weights = std::move(w);
  out.final_objective = f;
  return out;
}

std::vector<real> logreg_predict(patterns::PatternExecutor& exec,
                                 const la::CsrMatrix& X,
                                 std::span<const real> weights) {
  auto margins = exec.product(X, weights);
  std::vector<real> probs(margins.value.size());
  for (usize i = 0; i < probs.size(); ++i) {
    probs[i] = sigmoid(margins.value[i]);
  }
  return probs;
}

MultinomialResult logreg_multinomial(patterns::PatternExecutor& exec,
                                     const la::CsrMatrix& X,
                                     std::span<const real> labels,
                                     int num_classes, LogRegConfig config) {
  FUSEDML_CHECK(num_classes >= 2, "multinomial needs at least two classes");
  FUSEDML_CHECK(labels.size() == static_cast<usize>(X.rows()),
                "labels must have one entry per row");
  for (real c : labels) {
    FUSEDML_CHECK(c >= 0 && c < num_classes && c == std::floor(c),
                  "labels must be class ids in [0, num_classes)");
  }
  MultinomialResult out;
  out.classes = num_classes;
  std::vector<real> binary(labels.size());
  for (int k = 0; k < num_classes; ++k) {
    // One-vs-rest relabeling for class k.
    for (usize i = 0; i < labels.size(); ++i) {
      binary[i] = labels[i] == static_cast<real>(k) ? real{1} : real{-1};
    }
    auto sub = logreg_trust_region(exec, X, binary, config);
    out.stats.iterations += sub.stats.iterations;
    out.stats.pattern_modeled_ms += sub.stats.pattern_modeled_ms;
    out.stats.blas1_modeled_ms += sub.stats.blas1_modeled_ms;
    out.stats.pattern_wall_ms += sub.stats.pattern_wall_ms;
    out.stats.blas1_wall_ms += sub.stats.blas1_wall_ms;
    out.stats.launches += sub.stats.launches;
    out.class_weights.push_back(std::move(sub.weights));
  }
  return out;
}

std::vector<real> logreg_multinomial_predict(
    patterns::PatternExecutor& exec, const la::CsrMatrix& X,
    const MultinomialResult& model) {
  const auto m = static_cast<usize>(X.rows());
  const auto K = static_cast<usize>(model.classes);
  std::vector<real> probs(m * K);
  for (usize k = 0; k < K; ++k) {
    const auto margins = exec.product(X, model.class_weights[k]);
    for (usize i = 0; i < m; ++i) probs[i * K + k] = margins.value[i];
  }
  // Row-wise softmax (stable).
  for (usize i = 0; i < m; ++i) {
    real* row = probs.data() + i * K;
    real mx = row[0];
    for (usize k = 1; k < K; ++k) mx = std::max(mx, row[k]);
    real sum = 0;
    for (usize k = 0; k < K; ++k) {
      row[k] = std::exp(row[k] - mx);
      sum += row[k];
    }
    for (usize k = 0; k < K; ++k) row[k] /= sum;
  }
  return probs;
}

std::vector<int> argmax_rows(std::span<const real> probs, int num_classes) {
  FUSEDML_CHECK(num_classes > 0 && probs.size() % num_classes == 0,
                "probability matrix shape mismatch");
  const usize m = probs.size() / static_cast<usize>(num_classes);
  std::vector<int> out(m);
  for (usize i = 0; i < m; ++i) {
    const real* row = probs.data() + i * num_classes;
    int best = 0;
    for (int k = 1; k < num_classes; ++k) {
      if (row[k] > row[best]) best = k;
    }
    out[i] = best;
  }
  return out;
}

}  // namespace fusedml::ml
