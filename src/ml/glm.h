// Generalized Linear Models (McCullagh [28]) fitted by Fisher scoring /
// IRLS with a CG inner solve.
//
// The Fisher information-vector product is
//   F * s = X^T * (W ⊙ (X * s))
// with W the per-row variance weights of the current iterate — the
// X^T*(v⊙(X*y)) instantiation Table 1 marks for GLM. Gaussian, Poisson
// (log link) and Binomial (logit link) families are provided.
#pragma once

#include <span>
#include <vector>

#include "la/csr_matrix.h"
#include "ml/solver_stats.h"
#include "patterns/executor.h"

namespace fusedml::ml {

enum class GlmFamily {
  kGaussian,  ///< identity link; IRLS degenerates to least squares
  kPoisson,   ///< log link
  kBinomial,  ///< logit link; labels in {0, 1}
};

struct GlmConfig {
  GlmFamily family = GlmFamily::kPoisson;
  int max_irls_iterations = 25;
  int max_cg_iterations = 30;
  real ridge = 1e-6;           ///< tiny ridge for numerical stability
  real gradient_tolerance = 1e-5;
};

struct GlmResult {
  std::vector<real> weights;
  SolverStats stats;
  real final_deviance_proxy = 0;  ///< gradient norm at exit
  bool converged = false;
};

GlmResult glm_irls(patterns::PatternExecutor& exec, const la::CsrMatrix& X,
                   std::span<const real> labels, GlmConfig config = {});

/// The family's scalar mean function mu = g^{-1}(eta) and variance weight
/// W(mu), as plain function pointers so DAG kMap nodes (and the legacy
/// imperative path) evaluate literally the same code — the bit-exactness
/// oracles between the two stacks depend on this.
real (*glm_inverse_link(GlmFamily family))(real);
real (*glm_variance_weight(GlmFamily family))(real);

/// Mean predictions g^{-1}(X * w).
std::vector<real> glm_predict(patterns::PatternExecutor& exec,
                              const la::CsrMatrix& X,
                              std::span<const real> weights,
                              GlmFamily family);

}  // namespace fusedml::ml
