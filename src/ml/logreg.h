// L2-regularized binomial logistic regression via a trust-region Newton
// method (Lin, Weng & Keerthi [24] — the method the paper cites for LogReg).
//
// Each Hessian-vector product inside the Steihaug-CG inner solve is
//   H * s = X^T * (D ⊙ (X * s)) + lambda * s,    D_ii = sigma_i (1 - sigma_i)
// — the FULL generic pattern (alpha=1, v=D, beta=lambda, z=s), which is why
// Table 1 marks LogReg on both X^T*(v⊙(X*y)) and the +beta*z form.
#pragma once

#include <cmath>
#include <span>
#include <vector>

#include "la/csr_matrix.h"
#include "ml/solver_stats.h"
#include "patterns/executor.h"

namespace fusedml::ml {

/// Numerically stable sigmoid — never exponentiates a large positive t.
/// Header-inline (plain function) so DAG kMap nodes can take its address.
inline real stable_sigmoid(real t) {
  return t >= 0 ? real{1} / (real{1} + std::exp(-t))
                : std::exp(t) / (real{1} + std::exp(t));
}

struct LogRegConfig {
  int max_newton_iterations = 50;
  int max_cg_iterations = 30;
  real lambda = 1.0;          ///< L2 regularization strength
  real gradient_tolerance = 1e-4;
  real initial_trust_radius = 1.0;
};

struct LogRegResult {
  std::vector<real> weights;
  SolverStats stats;
  real final_objective = 0;
  real final_gradient_norm = 0;
  bool converged = false;
  int cg_iterations_total = 0;
};

/// Trains on rows of X with labels in {-1, +1}.
LogRegResult logreg_trust_region(patterns::PatternExecutor& exec,
                                 const la::CsrMatrix& X,
                                 std::span<const real> labels,
                                 LogRegConfig config = {});

/// Probability predictions sigma(X * w) for a trained model.
std::vector<real> logreg_predict(patterns::PatternExecutor& exec,
                                 const la::CsrMatrix& X,
                                 std::span<const real> weights);

// --- Multinomial (Table 1 covers "binomial/multinomial logistic
// regression") — trained one-vs-rest, each binary subproblem through the
// trust-region solver above, predictions softmax-normalized.

struct MultinomialResult {
  /// One weight vector per class, each of length n.
  std::vector<std::vector<real>> class_weights;
  SolverStats stats;  ///< summed over the per-class solvers
  int classes = 0;
};

/// `labels[i]` in {0, .., num_classes-1}.
MultinomialResult logreg_multinomial(patterns::PatternExecutor& exec,
                                     const la::CsrMatrix& X,
                                     std::span<const real> labels,
                                     int num_classes,
                                     LogRegConfig config = {});

/// Class probabilities (m x K, row-major) via softmax over the per-class
/// margins.
std::vector<real> logreg_multinomial_predict(
    patterns::PatternExecutor& exec, const la::CsrMatrix& X,
    const MultinomialResult& model);

/// Argmax class per row of a (m x K) probability matrix.
std::vector<int> argmax_rows(std::span<const real> probs, int num_classes);

}  // namespace fusedml::ml
