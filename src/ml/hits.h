// Hubs and Authorities (Kleinberg's HITS [23]) by power iteration on a
// sparse adjacency matrix.
//
// The authority update folds two steps into one pattern evaluation:
//   a_{k+1} ∝ X^T * (X * a_k)
// which is the X^T*(X*y) instantiation Table 1 marks for HITS; hub scores
// come from the plain product h = X * a.
#pragma once

#include <span>
#include <vector>

#include "la/csr_matrix.h"
#include "ml/solver_stats.h"
#include "patterns/executor.h"

namespace fusedml::ml {

struct HitsConfig {
  int max_iterations = 50;
  real tolerance = 1e-9;  ///< L2 change in authority scores
};

struct HitsResult {
  std::vector<real> authorities;  ///< length n, unit L2 norm
  std::vector<real> hubs;         ///< length m, unit L2 norm
  SolverStats stats;
  bool converged = false;
};

/// X is the adjacency matrix: X[i][j] = 1 when page i links to page j.
HitsResult hits(patterns::PatternExecutor& exec, const la::CsrMatrix& X,
                HitsConfig config = {});

}  // namespace fusedml::ml
