// The generated ScriptLibrary: every ML algorithm as a declarative script
// on the sysml runtime — algorithm × {CSR, dense} × PlanMode.
//
// This is the single public execution surface the refactor converges on:
// each solver builds its inner-loop expressions once through the
// ExprBuilder/Program frontend (sysml/expr.h), the fusion planner (or the
// hardcoded §4.4 template pass) rewrites them, and Runtime::run interprets
// the planned DAGs — PatternExecutor is now an internal backend reached
// only through the operator registry. The serving layer routes every
// ScriptKind here, benches iterate script_library() instead of hand-wiring
// call sites, and the legacy imperative solvers in ml/ remain only as the
// pre-refactor oracles the bit-exactness tests compare against.
//
// Bit-exactness contract (asserted in tests/test_script_library.cpp): on a
// runtime whose scheduler places ops on the device, the planner path of
// every script reproduces the legacy imperative path to the last bit —
// the scripts issue the same registry kernels in the same order, reductions
// run on the same backend, and fused elementwise chains are bit-equal to
// op-at-a-time evaluation by construction.
#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "la/csr_matrix.h"
#include "la/dense_matrix.h"
#include "ml/glm.h"
#include "ml/hits.h"
#include "ml/lr_cg.h"
#include "ml/logreg.h"
#include "ml/svm.h"
#include "sysml/expr.h"
#include "sysml/runtime.h"

namespace fusedml::ml {

using sysml::PlanMode;
using sysml::ScriptResult;

enum class Algorithm {
  kLrCg,
  kLogregGd,
  kGlm,
  kSvm,
  kHits,
  kAls,             ///< rank-1 ALS factorization (the sddmm showcase)
  kKmeans,          ///< Lloyd's iterations, cross term on the device
  kPagerank,        ///< damped power iteration over the transposed walk
  kMinibatchLogreg, ///< logreg SGD over rotating row batches
};
const char* to_string(Algorithm algorithm);

/// lr-cg script knobs (Listing 1's eps / tolerance).
struct ScriptConfig {
  int max_iterations = 100;
  real eps = 0.001;
  real tolerance = 0.000001;
};

/// Logistic-regression gradient-descent script knobs.
struct GdConfig {
  int iterations = 50;
  real step = 0.5;
  real lambda = 0.01;
};

/// Rank-1 ALS knobs: each half-step runs a few CG iterations whose
/// Hessian-vector product is the sddmm-shaped masked expression.
struct AlsConfig {
  int max_outer = 4;
  int max_cg_iterations = 4;
  real lambda = 0.1;
};

/// Lloyd's k-means knobs.
struct KmeansConfig {
  int clusters = 4;
  int max_iterations = 8;
};

/// Damped PageRank power-iteration knobs.
struct PagerankConfig {
  int max_iterations = 40;
  real damping = 0.85;
  real tolerance = 0.0000001;
};

/// Mini-batch logistic-regression SGD knobs: the batch is a fixed quarter
/// of the rows, the window rotating with wraparound every step.
struct MinibatchConfig {
  int iterations = 40;
  real step = 0.5;
  real lambda = 0.01;
};

// --- The five algorithms (CSR and dense) ------------------------------------
ScriptResult run_lr_cg_script(sysml::Runtime& rt, const la::CsrMatrix& X,
                              std::span<const real> labels,
                              PlanMode mode = PlanMode::kPlanner,
                              ScriptConfig config = {});
ScriptResult run_lr_cg_script(sysml::Runtime& rt, const la::DenseMatrix& X,
                              std::span<const real> labels,
                              PlanMode mode = PlanMode::kPlanner,
                              ScriptConfig config = {});

ScriptResult run_logreg_gd_script(sysml::Runtime& rt, const la::CsrMatrix& X,
                                  std::span<const real> labels,
                                  PlanMode mode = PlanMode::kPlanner,
                                  GdConfig config = {});
ScriptResult run_logreg_gd_script(sysml::Runtime& rt,
                                  const la::DenseMatrix& X,
                                  std::span<const real> labels,
                                  PlanMode mode = PlanMode::kPlanner,
                                  GdConfig config = {});

ScriptResult run_glm_script(sysml::Runtime& rt, const la::CsrMatrix& X,
                            std::span<const real> labels,
                            PlanMode mode = PlanMode::kPlanner,
                            GlmConfig config = {});
ScriptResult run_glm_script(sysml::Runtime& rt, const la::DenseMatrix& X,
                            std::span<const real> labels,
                            PlanMode mode = PlanMode::kPlanner,
                            GlmConfig config = {});

ScriptResult run_svm_script(sysml::Runtime& rt, const la::CsrMatrix& X,
                            std::span<const real> labels,
                            PlanMode mode = PlanMode::kPlanner,
                            SvmConfig config = {});
ScriptResult run_svm_script(sysml::Runtime& rt, const la::DenseMatrix& X,
                            std::span<const real> labels,
                            PlanMode mode = PlanMode::kPlanner,
                            SvmConfig config = {});

/// HITS takes no labels; the adjacency matrix is the whole input.
ScriptResult run_hits_script(sysml::Runtime& rt, const la::CsrMatrix& X,
                             PlanMode mode = PlanMode::kPlanner,
                             HitsConfig config = {});
ScriptResult run_hits_script(sysml::Runtime& rt, const la::DenseMatrix& X,
                             PlanMode mode = PlanMode::kPlanner,
                             HitsConfig config = {});

/// Rank-1 ALS over the observed entries of the ratings matrix (no labels);
/// returns the item factor v. The planner collapses the Hessian-vector
/// product into the sparsity-exploiting fused sddmm kernel.
ScriptResult run_als_script(sysml::Runtime& rt, const la::CsrMatrix& X,
                            PlanMode mode = PlanMode::kPlanner,
                            AlsConfig config = {});
ScriptResult run_als_script(sysml::Runtime& rt, const la::DenseMatrix& X,
                            PlanMode mode = PlanMode::kPlanner,
                            AlsConfig config = {});

/// Lloyd's k-means (no labels); returns the centroids flattened row-major.
/// The -2*X*c cross term is a row-template fusion candidate per centroid.
ScriptResult run_kmeans_script(sysml::Runtime& rt, const la::CsrMatrix& X,
                               PlanMode mode = PlanMode::kPlanner,
                               KmeansConfig config = {});
ScriptResult run_kmeans_script(sysml::Runtime& rt, const la::DenseMatrix& X,
                               PlanMode mode = PlanMode::kPlanner,
                               KmeansConfig config = {});

/// Damped PageRank over the leading square of X (no labels); the update
/// add(scale(d, Pt*r), tele) is one fused row-template launch per step.
ScriptResult run_pagerank_script(sysml::Runtime& rt, const la::CsrMatrix& X,
                                 PlanMode mode = PlanMode::kPlanner,
                                 PagerankConfig config = {});
ScriptResult run_pagerank_script(sysml::Runtime& rt, const la::DenseMatrix& X,
                                 PlanMode mode = PlanMode::kPlanner,
                                 PagerankConfig config = {});

/// Mini-batch logistic regression: the logreg gradient over a rotating
/// quarter-of-the-rows batch, re-binding the batch leaves every step.
ScriptResult run_minibatch_logreg_script(sysml::Runtime& rt,
                                         const la::CsrMatrix& X,
                                         std::span<const real> labels,
                                         PlanMode mode = PlanMode::kPlanner,
                                         MinibatchConfig config = {});
ScriptResult run_minibatch_logreg_script(sysml::Runtime& rt,
                                         const la::DenseMatrix& X,
                                         std::span<const real> labels,
                                         PlanMode mode = PlanMode::kPlanner,
                                         MinibatchConfig config = {});

// --- The generated library --------------------------------------------------

/// One entry of the algorithm × storage × plan-mode cross product. The
/// runners share a uniform signature; `iterations` caps the outer loop
/// (0 = the algorithm's default) so callers like serve can bound work.
struct ScriptSpec {
  Algorithm algorithm = Algorithm::kLrCg;
  bool dense = false;
  PlanMode mode = PlanMode::kPlanner;
  std::string name;  ///< "glm/csr/planner"

  std::function<ScriptResult(sysml::Runtime&, const la::CsrMatrix&,
                             std::span<const real>, int)>
      run_sparse;  ///< null for dense entries
  std::function<ScriptResult(sysml::Runtime&, const la::DenseMatrix&,
                             std::span<const real>, int)>
      run_dense;  ///< null for CSR entries
};

/// All 9 algorithms × {csr, dense} × {unfused, hardcoded-pass, planner}.
const std::vector<ScriptSpec>& script_library();

const ScriptSpec* find_script(const std::string& name);
const ScriptSpec* find_script(Algorithm algorithm, bool dense, PlanMode mode);

}  // namespace fusedml::ml
