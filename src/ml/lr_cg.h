// Linear Regression via Conjugate Gradient — Listing 1 of the paper,
// line for line. The hot operation per iteration is
//   q = X^T * (X * p) + eps * p
// i.e. the X^T*(X*y) + beta*z instantiation of the generic pattern, plus a
// handful of BLAS-1 calls (dot, axpy, nrm2). Solves the normal equations
// (X^T X + eps I) w = X^T y.
#pragma once

#include <span>
#include <vector>

#include "la/csr_matrix.h"
#include "la/dense_matrix.h"
#include "ml/solver_stats.h"
#include "patterns/executor.h"

namespace fusedml::ml {

struct LrCgConfig {
  int max_iterations = 100;
  real eps = 0.001;          ///< ridge term (Listing 1 line 2)
  real tolerance = 0.000001; ///< relative residual tolerance (line 2)
};

struct LrCgResult {
  std::vector<real> weights;
  SolverStats stats;
  real initial_norm2 = 0;  ///< nr2_init of Listing 1
  real final_norm2 = 0;
  bool converged = false;
};

/// Runs Listing 1 on sparse data through the given backend.
LrCgResult lr_cg(patterns::PatternExecutor& exec, const la::CsrMatrix& X,
                 std::span<const real> labels, LrCgConfig config = {});

/// Dense variant (the HIGGS experiments).
LrCgResult lr_cg(patterns::PatternExecutor& exec, const la::DenseMatrix& X,
                 std::span<const real> labels, LrCgConfig config = {});

}  // namespace fusedml::ml
