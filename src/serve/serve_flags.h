// Standard serving-observability flags shared by the serving bench and the
// serving example:
//
//   --slo-report                  print the ServerStatus snapshot (per-class
//                                 SLO percentiles, deadline-hit ratio,
//                                 latency buckets) after the run
//   --flight-recorder <path>      enable the flight recorder and write the
//                                 incident bundle JSON to <path> at the end
//                                 of the run ("-" = stdout)
//   --request-trace               build a per-request span tree for every
//                                 submission (ServeOptions::request_tracing)
//
// Call apply_serving_flags(cli) after constructing the Cli and before
// cli.finish(); then apply_to(opts) to arm the matching ServeOptions and
// report(server, os) once the server has drained.
#pragma once

#include <iosfwd>
#include <string>

namespace fusedml {
class Cli;
}

namespace fusedml::serve {

struct ServeOptions;
class Server;

struct ServingFlags {
  bool slo_report = false;
  bool request_trace = false;
  std::string flight_recorder_path;  ///< empty = recorder off

  bool flight_recorder() const { return !flight_recorder_path.empty(); }

  /// Arms the matching ServeOptions knobs (request_tracing,
  /// flight_recorder) on a server about to be built.
  void apply_to(ServeOptions& opts) const;

  /// Emits whatever was requested: the SLO report to `os`, the incident
  /// bundle to its path (or `os` for "-"). No-op when nothing was asked.
  void report(const Server& server, std::ostream& os) const;
};

/// Declares and parses the serving flags on `cli`.
ServingFlags apply_serving_flags(Cli& cli);

}  // namespace fusedml::serve
