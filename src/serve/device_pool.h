// Worker sessions and the bounded device pool behind the serving layer.
//
// Nothing below the serve layer is thread-safe by design — vgpu::Device
// keeps plain session counters, FaultInjector is a seeded RNG stream, and
// PatternExecutor/sysml::Runtime mutate their owner's state freely. The
// pool therefore gives each worker thread a WorkerSession that OWNS a
// private Device, fault injector, and PatternExecutor; nothing below the
// serve layer is ever shared across threads. What IS shared — the breaker
// board, the admission queue, the metrics registry — is explicitly
// thread-safe.
//
// The pool models a bounded aggregate device memory: options name the total
// modeled bytes across all virtual devices, and each session is budgeted an
// equal slice. Admission control rejects (kOverCapacity) any request whose
// modeled working set cannot fit a single session's slice.
#pragma once

#include <memory>
#include <vector>

#include "common/resilience.h"
#include "common/types.h"
#include "kernels/op_registry.h"
#include "patterns/executor.h"
#include "serve/circuit_breaker.h"
#include "serve/device_health.h"
#include "vgpu/device.h"
#include "vgpu/fault_injector.h"

namespace fusedml::serve {

/// Pool- and policy-level configuration for a Server.
struct ServeOptions {
  int workers = 4;
  usize queue_capacity = 32;
  /// Aggregate modeled device memory across the pool; each worker session
  /// is budgeted pool_memory_bytes / workers.
  usize pool_memory_bytes = usize{4} << 30;
  kernels::Backend preferred_backend = kernels::Backend::kFused;
  /// Per-dispatch fault handling (attempts, backoff, retry budget) applied
  /// to every request; a request deadline further clamps the budget.
  RetryPolicy retry;
  BreakerConfig breaker;
  int cpu_threads = 8;
  /// Fault schedule armed on every worker at start (worker w reseeds with
  /// seed + w so streams differ); all-zero rates = clean devices.
  vgpu::FaultConfig faults;
  /// Applied to requests submitted with deadline_ms == 0 (0 = no deadline).
  double default_deadline_ms = 0.0;
  /// ABFT verification coverage per scheduling class (kernels/abft.h) —
  /// interactive traffic can afford full checks, batch usually runs spot
  /// or off. Defaults keep verification out of existing deployments.
  kernels::VerifyPolicy verify_interactive = kernels::VerifyPolicy::kOff;
  kernels::VerifyPolicy verify_normal = kernels::VerifyPolicy::kOff;
  kernels::VerifyPolicy verify_batch = kernels::VerifyPolicy::kOff;
  /// Device quarantine on accumulated confirmed silent corruptions.
  QuarantineConfig quarantine;
  /// Failed (tier-exhausted) requests with deadline headroom are pushed
  /// back into the queue for another worker this many times before the
  /// failure is delivered (0 disables re-admission).
  int max_readmissions = 1;
  /// Per-request span trees (serve/request_trace.h): every outcome carries
  /// a sealed tree whose root duration equals the reported modeled latency.
  /// A pure observer — modeled numbers are bit-identical either way — but
  /// it allocates per request, so it stays opt-in.
  bool request_tracing = false;
  /// Flight recorder (serve/flight_recorder.h): bounded ring of recent
  /// request summaries, frozen into incident bundles when an anomaly fires
  /// (deadline miss, breaker open, quarantine, SDC, tier-exhausted
  /// failure). Off by default; the ring/incident caps bound the memory.
  bool flight_recorder = false;
  usize flight_recorder_capacity = 128;
  usize flight_recorder_max_incidents = 8;
};

/// One worker thread's private execution stack. Only its owning thread may
/// touch it after start() (construction happens before threads exist).
class WorkerSession {
 public:
  WorkerSession(int id, const ServeOptions& opts, usize memory_bytes);

  int id() const { return id_; }
  usize memory_bytes() const { return memory_bytes_; }
  vgpu::Device& device() { return device_; }
  patterns::PatternExecutor& executor() { return executor_; }

  /// Swaps this session's fault schedule (worker thread only, between
  /// requests). The seed is offset by the worker id so the pool's injector
  /// streams stay distinct but the storm as a whole replays from one seed.
  void apply_faults(vgpu::FaultConfig cfg);

  const vgpu::FaultLog* fault_log() const {
    return injector_ ? &injector_->log() : nullptr;
  }

 private:
  int id_;
  usize memory_bytes_;
  vgpu::Device device_;
  std::unique_ptr<vgpu::FaultInjector> injector_;
  patterns::PatternExecutor executor_;
};

/// Fixed-size collection of worker sessions with an aggregate memory bound.
class DevicePool {
 public:
  explicit DevicePool(const ServeOptions& opts);

  int workers() const { return static_cast<int>(sessions_.size()); }
  usize session_memory_bytes() const { return session_memory_bytes_; }
  WorkerSession& session(int worker) { return *sessions_[(usize)worker]; }
  const WorkerSession& session(int worker) const {
    return *sessions_[(usize)worker];
  }

 private:
  usize session_memory_bytes_;
  std::vector<std::unique_ptr<WorkerSession>> sessions_;
};

}  // namespace fusedml::serve
