#include "serve/device_pool.h"

#include "common/error.h"

namespace fusedml::serve {

WorkerSession::WorkerSession(int id, const ServeOptions& opts,
                             usize memory_bytes)
    : id_(id),
      memory_bytes_(memory_bytes),
      executor_(device_, opts.preferred_backend, opts.cpu_threads) {
  executor_.retry_policy() = opts.retry;
  apply_faults(opts.faults);
}

void WorkerSession::apply_faults(vgpu::FaultConfig cfg) {
  cfg.seed += static_cast<std::uint64_t>(id_);
  if (!cfg.armed()) {
    device_.set_fault_injector(nullptr);
    injector_.reset();
    return;
  }
  auto fresh = std::make_unique<vgpu::FaultInjector>(cfg);
  device_.set_fault_injector(fresh.get());
  injector_ = std::move(fresh);
}

DevicePool::DevicePool(const ServeOptions& opts) {
  FUSEDML_CHECK(opts.workers > 0, "pool needs at least one worker");
  session_memory_bytes_ =
      opts.pool_memory_bytes / static_cast<usize>(opts.workers);
  FUSEDML_CHECK(session_memory_bytes_ > 0, "pool memory too small to split");
  sessions_.reserve(static_cast<usize>(opts.workers));
  for (int w = 0; w < opts.workers; ++w) {
    sessions_.push_back(
        std::make_unique<WorkerSession>(w, opts, session_memory_bytes_));
  }
}

}  // namespace fusedml::serve
