#include "serve/circuit_breaker.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace fusedml::serve {

const char* to_string(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half_open";
  }
  return "?";
}

int BreakerBoard::cell_index(kernels::Backend backend) {
  switch (backend) {
    case kernels::Backend::kFused: return 0;
    case kernels::Backend::kCusparse: return 1;
    case kernels::Backend::kBidmatGpu: return 2;
    case kernels::Backend::kCpu: return -1;
  }
  return -1;
}

namespace {
void record_transition(kernels::Backend backend, const char* transition) {
  if (obs::recorder().enabled()) {
    obs::TraceEvent ev;
    ev.name = "breaker_" + std::string(transition) + ":" +
              kernels::to_string(backend);
    ev.cat = "breaker";
    ev.track = obs::Track::kServe;
    ev.ts_ms = obs::recorder().now_ms();
    obs::recorder().record(std::move(ev));
  }
  if (obs::metrics().enabled()) {
    obs::metrics()
        .counter("serve.breaker_" + std::string(transition))
        .add();
  }
}
}  // namespace

bool BreakerBoard::allow(kernels::Backend backend) {
  const int i = cell_index(backend);
  if (i < 0 || !cfg_.enabled) return true;
  std::lock_guard lock(mutex_);
  Cell& c = cells_[i];
  switch (c.state) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (now_() - c.opened_at_ms >= cfg_.cooldown_ms) {
        c.state = BreakerState::kHalfOpen;
        c.probe_inflight = true;  // this caller is the probe
        record_transition(backend, "half_open");
        return true;
      }
      ++c.stats.skips;
      return false;
    case BreakerState::kHalfOpen:
      if (c.probe_inflight) {
        // Liveness guard: if the outstanding probe never reported back
        // (its dispatch died on a non-fault error), admit a fresh probe
        // after a second cooldown instead of skipping this tier forever.
        if (now_() - c.opened_at_ms >= 2.0 * cfg_.cooldown_ms) return true;
        ++c.stats.skips;
        return false;
      }
      c.probe_inflight = true;
      return true;
  }
  return true;
}

void BreakerBoard::on_success(kernels::Backend backend) {
  const int i = cell_index(backend);
  if (i < 0) return;
  std::lock_guard lock(mutex_);
  Cell& c = cells_[i];
  c.consecutive_failures = 0;
  if (c.state == BreakerState::kHalfOpen) {
    c.state = BreakerState::kClosed;
    c.probe_inflight = false;
    ++c.stats.closes;
    record_transition(backend, "close");
  }
}

void BreakerBoard::on_failure(kernels::Backend backend) {
  const int i = cell_index(backend);
  if (i < 0) return;
  std::lock_guard lock(mutex_);
  Cell& c = cells_[i];
  ++c.stats.failures;
  switch (c.state) {
    case BreakerState::kHalfOpen:
      c.state = BreakerState::kOpen;
      c.opened_at_ms = now_();
      c.probe_inflight = false;
      ++c.stats.reopens;
      record_transition(backend, "reopen");
      break;
    case BreakerState::kClosed:
      if (++c.consecutive_failures >= cfg_.failure_threshold) {
        c.state = BreakerState::kOpen;
        c.opened_at_ms = now_();
        c.consecutive_failures = 0;
        ++c.stats.opens;
        record_transition(backend, "open");
      }
      break;
    case BreakerState::kOpen:
      // Late failure from a request admitted before the trip; re-arm the
      // cooldown so a stream of stragglers cannot half-open early.
      c.opened_at_ms = now_();
      break;
  }
}

BreakerState BreakerBoard::state(kernels::Backend backend) const {
  const int i = cell_index(backend);
  if (i < 0) return BreakerState::kClosed;
  std::lock_guard lock(mutex_);
  return cells_[i].state;
}

BreakerBoard::Stats BreakerBoard::stats(kernels::Backend backend) const {
  const int i = cell_index(backend);
  if (i < 0) return {};
  std::lock_guard lock(mutex_);
  return cells_[i].stats;
}

std::uint64_t BreakerBoard::total_opens() const {
  std::lock_guard lock(mutex_);
  std::uint64_t n = 0;
  for (const Cell& c : cells_) n += c.stats.opens + c.stats.reopens;
  return n;
}

std::uint64_t BreakerBoard::total_skips() const {
  std::lock_guard lock(mutex_);
  std::uint64_t n = 0;
  for (const Cell& c : cells_) n += c.stats.skips;
  return n;
}

}  // namespace fusedml::serve
