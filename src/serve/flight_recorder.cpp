#include "serve/flight_recorder.h"

#include <algorithm>
#include <ostream>

#include "common/json.h"

namespace fusedml::serve {

const char* to_string(AnomalyKind kind) {
  switch (kind) {
    case AnomalyKind::kDeadlineMiss: return "deadline_miss";
    case AnomalyKind::kBreakerOpen: return "breaker_open";
    case AnomalyKind::kQuarantine: return "quarantine";
    case AnomalyKind::kSdcDetected: return "sdc_detected";
    case AnomalyKind::kFailure: return "failure";
  }
  return "?";
}

FlightRecord FlightRecord::from_outcome(const ServeOutcome& o) {
  FlightRecord r;
  r.tag = o.tag;
  r.kind = o.kind;
  r.priority = o.priority;
  r.worker = o.worker;
  r.queue_wait_ms = o.queue_wait_ms;
  r.modeled_ms = o.modeled_ms;
  r.deadline_ms = o.deadline_ms;
  r.plan_host_ms = o.plan_host_ms;
  r.faults_seen = o.resilience.faults_seen;
  r.retries = o.resilience.retries;
  r.fallbacks = o.resilience.fallbacks;
  r.sdc_detected = o.resilience.sdc_detected;
  r.error = o.error;
  return r;
}

FlightRecorder::FlightRecorder(usize capacity, usize max_incidents)
    : capacity_(std::max<usize>(capacity, 1)),
      max_incidents_(max_incidents) {
  ring_.reserve(capacity_);
}

void FlightRecorder::record(const FlightRecord& record) {
  std::lock_guard lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(record);
  } else {
    ring_[recorded_ % capacity_] = record;
  }
  ++recorded_;
}

std::vector<FlightRecord> FlightRecorder::snapshot_locked() const {
  std::vector<FlightRecord> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    // recorded_ % capacity_ is the oldest slot (the next overwrite target).
    const usize start = recorded_ % capacity_;
    for (usize i = 0; i < capacity_; ++i) {
      out.push_back(ring_[(start + i) % capacity_]);
    }
  }
  return out;
}

bool FlightRecorder::fire(AnomalyKind kind, const FlightRecord& trigger,
                          double modeled_now_ms) {
  std::lock_guard lock(mutex_);
  ++fires_;
  if (incidents_.size() >= max_incidents_) return false;
  Incident inc;
  inc.kind = kind;
  inc.modeled_now_ms = modeled_now_ms;
  inc.trigger = trigger;
  inc.recent = snapshot_locked();
  incidents_.push_back(std::move(inc));
  return true;
}

std::vector<FlightRecord> FlightRecorder::recent() const {
  std::lock_guard lock(mutex_);
  return snapshot_locked();
}

std::vector<Incident> FlightRecorder::incidents() const {
  std::lock_guard lock(mutex_);
  return incidents_;
}

std::uint64_t FlightRecorder::recorded() const {
  std::lock_guard lock(mutex_);
  return recorded_;
}

std::uint64_t FlightRecorder::fires() const {
  std::lock_guard lock(mutex_);
  return fires_;
}

namespace {
void write_record(JsonWriter& json, const FlightRecord& r) {
  json.begin_object();
  json.member("tag", r.tag);
  json.member("kind", to_string(r.kind));
  json.member("priority", to_string(r.priority));
  json.member("worker", r.worker);
  json.member("queue_wait_ms", r.queue_wait_ms);
  json.member("modeled_ms", r.modeled_ms);
  json.member("deadline_ms", r.deadline_ms);
  json.member("plan_host_ms", r.plan_host_ms);
  json.member("faults_seen", r.faults_seen);
  json.member("retries", r.retries);
  json.member("fallbacks", r.fallbacks);
  json.member("sdc_detected", r.sdc_detected);
  if (!r.error.empty()) json.member("error", r.error);
  json.end_object();
}
}  // namespace

void FlightRecorder::write_incidents_json(std::ostream& os) const {
  const auto incidents = this->incidents();
  const std::uint64_t total_fires = fires();
  JsonWriter json(os);
  json.begin_object();
  json.member("fires", total_fires);
  json.member("captured", static_cast<std::uint64_t>(incidents.size()));
  json.key("incidents").begin_array();
  for (const Incident& inc : incidents) {
    json.begin_object();
    json.member("kind", to_string(inc.kind));
    json.member("modeled_now_ms", inc.modeled_now_ms);
    json.key("trigger");
    write_record(json, inc.trigger);
    json.key("recent").begin_array();
    for (const FlightRecord& r : inc.recent) write_record(json, r);
    json.end_array();
    json.end_object();
  }
  json.end_array();
  json.end_object();
}

}  // namespace fusedml::serve
