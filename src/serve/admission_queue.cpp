#include "serve/admission_queue.h"

#include <utility>

namespace fusedml::serve {

AdmissionQueue::Admit AdmissionQueue::push(PendingPtr p,
                                           PendingPtr* shed_victim) {
  const int band = static_cast<int>(p->request.priority);
  {
    std::lock_guard lock(mutex_);
    if (closed_) return Admit::kClosed;
    if (depth_ < capacity_) {
      bands_[static_cast<usize>(band)].push_back(std::move(p));
      ++depth_;
      if (depth_ > high_water_) high_water_ = depth_;
      cv_.notify_one();
      return Admit::kAdmitted;
    }
    // Full: shed the newest entry of the lowest occupied band, but only if
    // the newcomer strictly outranks it — equal priority waits its turn and
    // is rejected instead.
    for (int b = 0; b < kNumPriorities; ++b) {
      auto& victims = bands_[static_cast<usize>(b)];
      if (victims.empty()) continue;
      if (b >= band) return Admit::kRejectedFull;
      *shed_victim = std::move(victims.back());
      victims.pop_back();
      bands_[static_cast<usize>(band)].push_back(std::move(p));
      cv_.notify_one();
      return Admit::kAdmittedAfterShed;
    }
    return Admit::kRejectedFull;  // capacity == 0
  }
}

PendingPtr AdmissionQueue::pop_blocking() {
  std::unique_lock lock(mutex_);
  cv_.wait(lock, [&] { return depth_ > 0 || closed_; });
  for (int b = kNumPriorities - 1; b >= 0; --b) {
    auto& band = bands_[static_cast<usize>(b)];
    if (band.empty()) continue;
    PendingPtr p = std::move(band.front());
    band.pop_front();
    --depth_;
    return p;
  }
  return nullptr;  // closed and empty
}

void AdmissionQueue::close() {
  {
    std::lock_guard lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool AdmissionQueue::closed() const {
  std::lock_guard lock(mutex_);
  return closed_;
}

usize AdmissionQueue::depth() const {
  std::lock_guard lock(mutex_);
  return depth_;
}

usize AdmissionQueue::high_water() const {
  std::lock_guard lock(mutex_);
  return high_water_;
}

}  // namespace fusedml::serve
