#include "serve/server.h"

#include <algorithm>
#include <ostream>
#include <string>
#include <utility>

#include "common/error.h"
#include "common/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "ml/script_library.h"
#include "serve/request_trace.h"
#include "sysml/runtime.h"

namespace fusedml::serve {

void ServeStats::print(std::ostream& os) const {
  os << "serve: " << submitted << " submitted, " << resolved()
     << " resolved\n"
     << "  completed " << completed << "  deadline-exceeded "
     << deadline_exceeded << "  failed " << failed << "  cancelled "
     << cancelled << "\n"
     << "  rejected: queue-full " << rejected_queue_full << "  over-capacity "
     << rejected_over_capacity << "  shed " << shed << "\n"
     << "  queue high-water " << queue_high_water << "  modeled busy "
     << modeled_busy_ms << " ms  (server clock " << modeled_now_ms << " ms)\n"
     << "  breakers: opens " << breaker_opens << "  skips " << breaker_skips
     << "\n";
  if (resilience.any()) {
    os << "  faults absorbed " << resilience.faults_seen << "  retries "
       << resilience.retries << "  fallbacks " << resilience.fallbacks
       << " (gpu " << resilience.fallbacks_to_baseline << ", cpu "
       << resilience.fallbacks_to_cpu << ")  overhead "
       << resilience.overhead_ms() << " ms\n";
  }
  if (sdc_detected > 0 || quarantines > 0 || readmissions > 0) {
    os << "  sdc: detected " << sdc_detected << "  rollbacks " << rollbacks
       << "  verify " << resilience.verify_launches << " launches ("
       << resilience.verify_ms << " ms)  quarantines " << quarantines
       << " (re-entries " << quarantine_reentries << ")  readmissions "
       << readmissions << "\n";
  }
}

Server::Server(ServeOptions opts)
    : opts_(opts),
      breakers_(opts.breaker, [this] { return now_ms(); }),
      device_health_(opts.quarantine, opts.workers,
                     [this] { return now_ms(); }),
      pool_(opts_),
      queue_(opts_.queue_capacity),
      flight_(opts_.flight_recorder_capacity,
              opts_.flight_recorder_max_incidents) {
  for (int w = 0; w < pool_.workers(); ++w) {
    pool_.session(w).executor().registry().set_health(&breakers_);
  }
  std::lock_guard lock(faults_mutex_);
  pending_faults_ = opts_.faults;
}

Server::~Server() { drain(); }

DatasetId Server::add_dataset(la::CsrMatrix X) {
  FUSEDML_CHECK(!running(), "add_dataset must precede start()");
  datasets_.push_back(std::move(X));
  return static_cast<DatasetId>(datasets_.size() - 1);
}

const la::CsrMatrix& Server::dataset(DatasetId id) const {
  FUSEDML_CHECK(static_cast<usize>(id) < datasets_.size(), "unknown dataset");
  return datasets_[id];
}

void Server::start() {
  FUSEDML_CHECK(threads_.empty() && !drained_.load(),
                "server already started or drained");
  running_.store(true, std::memory_order_release);
  threads_.reserve(static_cast<usize>(pool_.workers()));
  for (int w = 0; w < pool_.workers(); ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
  }
}

double Server::now_ms() const {
  return executed_ms_.load(std::memory_order_relaxed) / pool_.workers();
}

void Server::advance_clock(double executed_ms) {
  double cur = executed_ms_.load(std::memory_order_relaxed);
  while (!executed_ms_.compare_exchange_weak(cur, cur + executed_ms,
                                             std::memory_order_relaxed)) {
  }
}

namespace {
ml::Algorithm to_algorithm(ScriptKind kind) {
  switch (kind) {
    case ScriptKind::kLrCg: return ml::Algorithm::kLrCg;
    case ScriptKind::kLogregGd: return ml::Algorithm::kLogregGd;
    case ScriptKind::kGlm: return ml::Algorithm::kGlm;
    case ScriptKind::kSvm: return ml::Algorithm::kSvm;
    case ScriptKind::kHits: return ml::Algorithm::kHits;
    case ScriptKind::kAls: return ml::Algorithm::kAls;
    case ScriptKind::kKmeans: return ml::Algorithm::kKmeans;
    case ScriptKind::kPagerank: return ml::Algorithm::kPagerank;
    case ScriptKind::kMinibatchLogreg:
      return ml::Algorithm::kMinibatchLogreg;
  }
  return ml::Algorithm::kLrCg;
}
}  // namespace

usize Server::estimate_bytes(const ServeRequest& req) const {
  const auto vec = [](usize n) { return n * sizeof(real); };
  if (const auto* p = std::get_if<PatternEval>(&req.work)) {
    const la::CsrMatrix& X = dataset(p->dataset);
    // Inputs plus the intermediate X*y and the output.
    return X.bytes() + vec(p->y.size()) + vec(p->v.size()) +
           vec(p->z.size()) + vec(static_cast<usize>(X.rows())) +
           vec(static_cast<usize>(X.cols()));
  }
  const auto& s = std::get<ScriptEval>(req.work);
  const la::CsrMatrix& X = dataset(s.dataset);
  // Labels plus the solver's working vectors: a handful of length-n
  // iterates (w, p, q, r, trials) and, for the row-space algorithms (glm /
  // svm / hits / logreg / the new workloads), a few length-m intermediates
  // (eta, margins, residuals). ALS additionally holds the transposed
  // ratings and both orientations of the observation mask as matrix
  // leaves; PageRank holds the transposed normalized walk.
  const usize matrix_copies = s.kind == ScriptKind::kAls      ? usize{4}
                              : s.kind == ScriptKind::kPagerank ? usize{2}
                                                                : usize{1};
  return matrix_copies * X.bytes() + vec(s.labels.size()) +
         usize{6} * vec(static_cast<usize>(X.cols())) +
         (s.kind == ScriptKind::kLrCg
              ? usize{0}
              : usize{3} * vec(static_cast<usize>(X.rows())));
}

void Server::reject(const PendingRequest& pending, RejectReason reason,
                    const char* detail) {
  ServeOutcome o;
  o.kind = OutcomeKind::kRejected;
  o.reject_reason = reason;
  o.error = detail;
  pending.state->resolve(std::move(o));
}

void Server::deliver(const PendingRequest& pending, ServeOutcome outcome) {
  pending.state->resolve(std::move(outcome));
}

ServeHandle Server::submit(ServeRequest req) {
  if (req.deadline_ms <= 0.0) req.deadline_ms = opts_.default_deadline_ms;
  auto state = std::make_shared<RequestState>();
  state->set_tag(req.tag);
  state->set_priority(req.priority);
  state->set_deadline(req.deadline_ms);
  state->set_on_resolve(
      [this](const ServeOutcome& o) { count_outcome(o); });
  auto pending = std::make_shared<PendingRequest>();
  pending->request = std::move(req);
  pending->state = state;
  pending->submit_ms = now_ms();
  pending->seq = seq_.fetch_add(1, std::memory_order_relaxed);
  if (opts_.request_tracing) {
    state->set_tracer(std::make_shared<RequestTracer>(
        pending->request.tag, pending->seq, pending->request.priority,
        pending->submit_ms, [this] { return now_ms(); }));
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  if (obs::metrics().enabled()) {
    obs::metrics().counter("serve.submitted").add();
  }
  ServeHandle handle(state);

  if (estimate_bytes(pending->request) > pool_.session_memory_bytes()) {
    reject(*pending, RejectReason::kOverCapacity,
           "modeled working set exceeds a worker session's device memory");
    return handle;
  }
  PendingPtr victim;
  switch (queue_.push(pending, &victim)) {
    case AdmissionQueue::Admit::kAdmitted:
      break;
    case AdmissionQueue::Admit::kAdmittedAfterShed:
      reject(*victim, RejectReason::kShedding,
             "shed from the queue for higher-priority work");
      break;
    case AdmissionQueue::Admit::kRejectedFull:
      reject(*pending, RejectReason::kQueueFull, "admission queue full");
      break;
    case AdmissionQueue::Admit::kClosed:
      reject(*pending, RejectReason::kQueueFull, "server draining");
      break;
  }
  return handle;
}

void Server::inject_faults(const vgpu::FaultConfig& cfg) {
  {
    std::lock_guard lock(faults_mutex_);
    pending_faults_ = cfg;
  }
  fault_generation_.fetch_add(1, std::memory_order_release);
  if (obs::recorder().enabled()) {
    obs::TraceEvent ev;
    ev.name = cfg.armed() ? "fault_storm_armed" : "fault_storm_cleared";
    ev.cat = "serve";
    ev.track = obs::Track::kServe;
    ev.ts_ms = obs::recorder().now_ms();
    obs::recorder().record(std::move(ev));
  }
}

bool Server::requeue(const PendingPtr& p) {
  PendingPtr victim;
  switch (queue_.push(p, &victim)) {
    case AdmissionQueue::Admit::kAdmitted:
      return true;
    case AdmissionQueue::Admit::kAdmittedAfterShed:
      if (victim != nullptr && victim != p) {
        reject(*victim, RejectReason::kShedding,
               "shed from the queue for higher-priority work");
        return true;
      }
      return victim == nullptr;
    case AdmissionQueue::Admit::kRejectedFull:
    case AdmissionQueue::Admit::kClosed:
      return false;
  }
  return false;
}

void Server::worker_loop(int worker_id) {
  WorkerSession& session = pool_.session(worker_id);
  std::uint64_t faults_seen = 0;
  for (;;) {
    PendingPtr p = queue_.pop_blocking();
    if (p == nullptr) break;  // closed and fully drained
    const std::uint64_t gen =
        fault_generation_.load(std::memory_order_acquire);
    if (gen != faults_seen) {
      vgpu::FaultConfig cfg;
      {
        std::lock_guard lock(faults_mutex_);
        cfg = pending_faults_;
      }
      session.apply_faults(cfg);
      faults_seen = gen;
    }
    if (p->state->resolved()) continue;  // cancelled while queued
    RequestTracer* tracer = p->state->tracer().get();
    // Quarantined device: hand the request back so a healthy worker takes
    // it. If the queue refuses (draining), execute here anyway — a suspect
    // answer the checks can still vet beats a lost request.
    if (device_health_.quarantined(worker_id) && requeue(p)) {
      if (tracer != nullptr) tracer->note_requeue("quarantine");
      std::this_thread::yield();
      continue;
    }
    const double wait_ms = std::max(0.0, now_ms() - p->submit_ms);
    if (tracer != nullptr) {
      tracer->note_pickup(worker_id, p->attempts + 1, wait_ms);
    }
    ServeOutcome o;
    if (p->request.deadline_ms > 0.0 && wait_ms >= p->request.deadline_ms) {
      o.kind = OutcomeKind::kDeadlineExceeded;
      o.error = "deadline expired while queued";
      o.queue_wait_ms = wait_ms;
      o.worker = worker_id;
    } else {
      o = execute(session, *p, wait_ms);
      device_health_.report_sdc(worker_id, o.resilience.sdc_detected);
      // Deadline-aware re-admission: a tier-exhausted failure with enough
      // headroom left goes back to the queue for another device instead of
      // surfacing — bounded so a doomed request cannot cycle forever.
      if (o.kind == OutcomeKind::kFailed &&
          p->attempts < opts_.max_readmissions &&
          (p->request.deadline_ms <= 0.0 ||
           now_ms() - p->submit_ms < p->request.deadline_ms)) {
        ++p->attempts;
        if (requeue(p)) {
          readmissions_.fetch_add(1, std::memory_order_relaxed);
          if (tracer != nullptr) tracer->note_requeue("readmission");
          if (obs::metrics().enabled()) {
            obs::metrics().counter("serve.readmissions").add();
          }
          continue;  // outcome intentionally not delivered yet
        }
      }
    }
    deliver(*p, std::move(o));
  }
}

ServeOutcome Server::execute(WorkerSession& session,
                             const PendingRequest& pending, double wait_ms) {
  obs::TraceSpan span("serve:request", "serve", obs::Track::kServe);
  const double deadline = pending.request.deadline_ms;
  const double budget_ms = deadline > 0.0 ? deadline - wait_ms : 0.0;
  const kernels::VerifyPolicy verify = verify_for(pending.request.priority);
  RequestTracer* tracer = pending.state->tracer().get();
  ServeOutcome o =
      std::holds_alternative<PatternEval>(pending.request.work)
          ? run_pattern(session, std::get<PatternEval>(pending.request.work),
                        budget_ms, verify, tracer)
          : run_script(session, std::get<ScriptEval>(pending.request.work),
                       budget_ms, verify, tracer);
  o.worker = session.id();
  o.queue_wait_ms = wait_ms;
  advance_clock(o.modeled_ms);
  // A late answer is no answer: the value is dropped so clients cannot
  // mistake it for a within-deadline result.
  if (o.kind == OutcomeKind::kCompleted && deadline > 0.0 &&
      wait_ms + o.modeled_ms > deadline) {
    o.kind = OutcomeKind::kDeadlineExceeded;
    o.value.clear();
    o.error = "completed past deadline";
  }
  if (span.active()) {
    span.set_name(std::string("serve:") + to_string(o.kind));
    span.arg("priority", to_string(pending.request.priority));
    span.arg("worker", static_cast<double>(session.id()));
    span.cover_modeled_ms(o.modeled_ms);
  }
  return o;
}

kernels::VerifyPolicy Server::verify_for(Priority priority) const {
  switch (priority) {
    case Priority::kInteractive: return opts_.verify_interactive;
    case Priority::kNormal: return opts_.verify_normal;
    case Priority::kBatch: return opts_.verify_batch;
  }
  return kernels::VerifyPolicy::kOff;
}

ServeOutcome Server::run_pattern(WorkerSession& session,
                                 const PatternEval& eval, double budget_ms,
                                 kernels::VerifyPolicy verify,
                                 RequestTracer* tracer) {
  ServeOutcome o;
  auto& ex = session.executor();
  ex.retry_policy() = opts_.retry;
  ex.reset_resilience();
  ex.reset_session_clock();
  ex.set_modeled_deadline(budget_ms);
  ex.registry().set_verify_policy(verify);
  // The session's registry outlives this request — observe for the run only.
  ex.registry().set_dispatch_observer(tracer);
  const la::CsrMatrix& X = dataset(eval.dataset);
  try {
    auto r = ex.pattern(eval.alpha, X, eval.v, eval.y, eval.beta, eval.z);
    o.kind = OutcomeKind::kCompleted;
    o.value = std::move(r.value);
    o.modeled_ms = r.modeled_ms;
    o.backend_used = r.backend_used;
  } catch (const DeadlineError& e) {
    o.kind = OutcomeKind::kDeadlineExceeded;
    o.error = e.what();
    o.modeled_ms = ex.session_modeled_ms();
  } catch (const Error& e) {
    o.kind = OutcomeKind::kFailed;
    o.error = e.what();
    o.modeled_ms = ex.session_modeled_ms();
  }
  o.resilience = ex.resilience();
  ex.set_modeled_deadline(0.0);
  ex.registry().set_dispatch_observer(nullptr);
  return o;
}

ServeOutcome Server::run_script(WorkerSession& session, const ScriptEval& eval,
                                double budget_ms,
                                kernels::VerifyPolicy verify,
                                RequestTracer* tracer) {
  ServeOutcome o;
  const la::CsrMatrix& X = dataset(eval.dataset);
  sysml::RuntimeOptions ro;
  ro.device_capacity = session.memory_bytes();
  sysml::Runtime rt(session.device(), ro);
  rt.retry_policy() = opts_.retry;
  rt.registry().set_health(&breakers_);
  rt.registry().set_dispatch_observer(tracer);
  rt.set_modeled_deadline(budget_ms);
  rt.set_verify_policy(verify);
  std::uint64_t plans_built = 0;
  try {
    const ml::ScriptSpec* spec =
        ml::find_script(to_algorithm(eval.kind), /*dense=*/false, eval.plan);
    FUSEDML_CHECK(spec != nullptr && spec->run_sparse != nullptr,
                  "script library has no entry for this request");
    sysml::ScriptResult r =
        spec->run_sparse(rt, X, eval.labels, eval.iterations);
    plans_built = r.plans_built;
    o.kind = OutcomeKind::kCompleted;
    o.value = std::move(r.weights);
    o.modeled_ms = r.runtime_stats.total_ms();
    o.backend_used = r.runtime_stats.gpu_ops > 0 ? opts_.preferred_backend
                                                 : kernels::Backend::kCpu;
  } catch (const DeadlineError& e) {
    o.kind = OutcomeKind::kDeadlineExceeded;
    o.error = e.what();
    o.modeled_ms = rt.stats().total_ms();
  } catch (const Error& e) {
    o.kind = OutcomeKind::kFailed;
    o.error = e.what();
    o.modeled_ms = rt.stats().total_ms();
  }
  o.resilience = rt.resilience();
  o.plan_host_ms = rt.stats().plan_host_ms;
  if (tracer != nullptr && o.plan_host_ms > 0.0) {
    tracer->note_plan(o.plan_host_ms, /*cache_hit=*/plans_built == 0);
  }
  return o;
}

void Server::count_outcome(const ServeOutcome& o) {
  switch (o.kind) {
    case OutcomeKind::kCompleted:
      completed_.fetch_add(1, std::memory_order_relaxed);
      break;
    case OutcomeKind::kRejected:
      switch (o.reject_reason) {
        case RejectReason::kQueueFull:
          rejected_queue_full_.fetch_add(1, std::memory_order_relaxed);
          break;
        case RejectReason::kOverCapacity:
          rejected_over_capacity_.fetch_add(1, std::memory_order_relaxed);
          break;
        case RejectReason::kShedding:
          shed_.fetch_add(1, std::memory_order_relaxed);
          break;
      }
      break;
    case OutcomeKind::kDeadlineExceeded:
      deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
      break;
    case OutcomeKind::kCancelled:
      cancelled_.fetch_add(1, std::memory_order_relaxed);
      break;
    case OutcomeKind::kFailed:
      failed_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  if (o.worker >= 0) {
    std::lock_guard lock(agg_mutex_);
    resilience_total_ += o.resilience;
    latency_samples_.push_back(o.queue_wait_ms + o.modeled_ms);
  }
  slo_.record(o);
  if (opts_.flight_recorder) {
    const FlightRecord rec = FlightRecord::from_outcome(o);
    flight_.record(rec);
    const double now = now_ms();
    if (o.kind == OutcomeKind::kDeadlineExceeded) {
      flight_.fire(AnomalyKind::kDeadlineMiss, rec, now);
    }
    if (o.kind == OutcomeKind::kFailed) {
      flight_.fire(AnomalyKind::kFailure, rec, now);
    }
    if (o.resilience.sdc_detected > 0) {
      flight_.fire(AnomalyKind::kSdcDetected, rec, now);
    }
    // Board-level anomalies surface as deltas of monotonic counters; the
    // resolving request is the closest witness, so it becomes the trigger.
    const std::uint64_t opens = breakers_.total_opens();
    if (opens > last_breaker_opens_.exchange(opens)) {
      flight_.fire(AnomalyKind::kBreakerOpen, rec, now);
    }
    const std::uint64_t quarantines = device_health_.quarantines();
    if (quarantines > last_quarantines_.exchange(quarantines)) {
      flight_.fire(AnomalyKind::kQuarantine, rec, now);
    }
  }
  if (obs::metrics().enabled()) {
    auto& m = obs::metrics();
    m.counter(std::string("serve.") + to_string(o.kind)).add();
    if (o.worker >= 0) {
      m.histogram("serve.latency_ms").observe(o.queue_wait_ms + o.modeled_ms);
    }
  }
}

ServeStats Server::drain() {
  std::lock_guard drain_lock(drain_mutex_);
  if (!drained_.load(std::memory_order_acquire)) {
    queue_.close();
    if (threads_.empty()) {
      // Never started: nobody will pop, so resolve the queued entries here.
      while (PendingPtr p = queue_.pop_blocking()) {
        reject(*p, RejectReason::kQueueFull, "server drained before start");
      }
    } else {
      for (auto& t : threads_) t.join();
      threads_.clear();
    }
    running_.store(false, std::memory_order_release);
    drained_.store(true, std::memory_order_release);
  }
  return stats();
}

ServeStats Server::stats() const {
  ServeStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.rejected_queue_full = rejected_queue_full_.load(std::memory_order_relaxed);
  s.rejected_over_capacity =
      rejected_over_capacity_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  s.cancelled = cancelled_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.queue_high_water = queue_.high_water();
  s.modeled_busy_ms = executed_ms_.load(std::memory_order_relaxed);
  s.modeled_now_ms = now_ms();
  {
    std::lock_guard lock(agg_mutex_);
    s.resilience = resilience_total_;
  }
  s.breaker_opens = breakers_.total_opens();
  s.breaker_skips = breakers_.total_skips();
  s.sdc_detected = s.resilience.sdc_detected;
  s.rollbacks = s.resilience.rollbacks;
  s.quarantines = device_health_.quarantines();
  s.quarantine_reentries = device_health_.reentries();
  s.readmissions = readmissions_.load(std::memory_order_relaxed);
  return s;
}

std::vector<double> Server::latency_samples() const {
  std::lock_guard lock(agg_mutex_);
  return latency_samples_;
}

ServerStatus Server::status() const {
  ServerStatus s;
  s.totals = stats();
  for (int c = 0; c < kNumPriorities; ++c) {
    s.classes[c] = slo_.snapshot(static_cast<Priority>(c));
  }
  s.flight_recorded = flight_.recorded();
  s.anomalies_fired = flight_.fires();
  s.incidents_captured =
      static_cast<std::uint64_t>(flight_.incidents().size());
  return s;
}

void Server::write_incident_bundle(std::ostream& os) const {
  // One self-contained document: server-wide context first, then the
  // recorder's frozen incidents. Assembled as two streamed JSON values
  // stitched into one object (both writers emit complete values).
  os << "{\"status\":";
  status().write_json(os);
  os << ",\"incident_bundles\":";
  flight_.write_incidents_json(os);
  os << "}\n";
}

void ServerStatus::print(std::ostream& os) const {
  totals.print(os);
  for (int c = kNumPriorities - 1; c >= 0; --c) {
    const SloClassSnapshot& s = classes[c];
    const auto priority = static_cast<Priority>(c);
    if (s.completed + s.deadline_exceeded + s.failed + s.cancelled +
            s.rejected + s.shed ==
        0) {
      continue;
    }
    os << "  [" << to_string(priority) << "] completed " << s.completed
       << "  deadline-x " << s.deadline_exceeded << "  failed " << s.failed
       << "  cancelled " << s.cancelled << "  rejected " << s.rejected
       << "  shed " << s.shed << "\n"
       << "    latency p50 " << s.p50_ms << "  p95 " << s.p95_ms << "  p99 "
       << s.p99_ms << "  max " << s.max_ms << " ms  (" << s.latency_count
       << " samples)  deadline-hit " << s.deadline_hit_ratio() << "\n"
       << "    buckets: queue " << s.queue_ms << "  exec " << s.exec_ms
       << "  verify " << s.verify_ms << "  resilience " << s.resilience_ms
       << " ms  (plan host " << s.plan_host_ms << " ms)\n";
  }
  if (anomalies_fired > 0) {
    os << "  flight recorder: " << flight_recorded << " recorded, "
       << anomalies_fired << " anomalies (" << incidents_captured
       << " incident bundle(s) captured)\n";
  }
}

void ServerStatus::write_json(std::ostream& os) const {
  JsonWriter json(os);
  json.begin_object();
  json.member("submitted", totals.submitted);
  json.member("resolved", totals.resolved());
  json.member("completed", totals.completed);
  json.member("deadline_exceeded", totals.deadline_exceeded);
  json.member("failed", totals.failed);
  json.member("cancelled", totals.cancelled);
  json.member("rejected_queue_full", totals.rejected_queue_full);
  json.member("rejected_over_capacity", totals.rejected_over_capacity);
  json.member("shed", totals.shed);
  json.member("modeled_now_ms", totals.modeled_now_ms);
  json.member("breaker_opens", totals.breaker_opens);
  json.member("breaker_skips", totals.breaker_skips);
  json.member("sdc_detected", totals.sdc_detected);
  json.member("quarantines", totals.quarantines);
  json.member("readmissions", totals.readmissions);
  json.key("classes").begin_object();
  for (int c = 0; c < kNumPriorities; ++c) {
    const SloClassSnapshot& s = classes[c];
    json.key(to_string(static_cast<Priority>(c))).begin_object();
    json.member("completed", s.completed);
    json.member("deadline_exceeded", s.deadline_exceeded);
    json.member("failed", s.failed);
    json.member("cancelled", s.cancelled);
    json.member("rejected", s.rejected);
    json.member("shed", s.shed);
    json.member("latency_count", s.latency_count);
    json.member("latency_mean_ms", s.latency_mean_ms);
    json.member("p50_ms", s.p50_ms);
    json.member("p95_ms", s.p95_ms);
    json.member("p99_ms", s.p99_ms);
    json.member("max_ms", s.max_ms);
    json.member("deadline_hits", s.deadline_hits);
    json.member("deadline_total", s.deadline_total);
    json.member("deadline_hit_ratio", s.deadline_hit_ratio());
    json.member("queue_ms", s.queue_ms);
    json.member("exec_ms", s.exec_ms);
    json.member("verify_ms", s.verify_ms);
    json.member("resilience_ms", s.resilience_ms);
    json.member("plan_host_ms", s.plan_host_ms);
    json.end_object();
  }
  json.end_object();
  json.key("flight").begin_object();
  json.member("recorded", flight_recorded);
  json.member("anomalies_fired", anomalies_fired);
  json.member("incidents_captured", incidents_captured);
  json.end_object();
  json.end_object();
  os << "\n";
}

}  // namespace fusedml::serve
