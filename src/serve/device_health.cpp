#include "serve/device_health.h"

#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace fusedml::serve {

DeviceHealthBoard::DeviceHealthBoard(QuarantineConfig cfg, int workers,
                                     std::function<double()> now_fn)
    : cfg_(cfg), now_(std::move(now_fn)),
      entries_(static_cast<usize>(workers)) {}

int DeviceHealthBoard::healthy_count_locked() const {
  int healthy = 0;
  for (const Entry& e : entries_) {
    if (!e.quarantined) ++healthy;
  }
  return healthy;
}

void DeviceHealthBoard::report_sdc(int worker, std::uint64_t count) {
  if (count == 0 || !cfg_.enabled) return;
  std::lock_guard lock(mutex_);
  Entry& e = entries_[static_cast<usize>(worker)];
  e.sdc += count;
  if (e.quarantined || e.sdc < cfg_.sdc_threshold) return;
  if (healthy_count_locked() <= 1) return;  // never drain the last device
  e.quarantined = true;
  e.release_ms = now_() + cfg_.probation_ms;
  e.sdc = 0;  // probation re-enters with a clean slate
  ++quarantines_;
  if (obs::metrics().enabled()) {
    obs::metrics().counter("serve.quarantines").add();
  }
  if (obs::recorder().enabled()) {
    obs::TraceEvent ev;
    ev.name = "device_quarantined";
    ev.cat = "serve";
    ev.track = obs::Track::kServe;
    ev.ts_ms = obs::recorder().now_ms();
    ev.num_args.emplace_back("worker", static_cast<double>(worker));
    obs::recorder().record(std::move(ev));
  }
}

bool DeviceHealthBoard::quarantined(int worker) {
  std::lock_guard lock(mutex_);
  Entry& e = entries_[static_cast<usize>(worker)];
  if (!e.quarantined) return false;
  if (now_() < e.release_ms) return true;
  // Probation served: back into rotation.
  e.quarantined = false;
  e.release_ms = 0.0;
  ++reentries_;
  if (obs::metrics().enabled()) {
    obs::metrics().counter("serve.quarantine_reentries").add();
  }
  return false;
}

std::uint64_t DeviceHealthBoard::sdc_count(int worker) const {
  std::lock_guard lock(mutex_);
  return entries_[static_cast<usize>(worker)].sdc;
}

std::uint64_t DeviceHealthBoard::quarantines() const {
  std::lock_guard lock(mutex_);
  return quarantines_;
}

std::uint64_t DeviceHealthBoard::reentries() const {
  std::lock_guard lock(mutex_);
  return reentries_;
}

}  // namespace fusedml::serve
