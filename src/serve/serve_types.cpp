#include "serve/serve_types.h"

#include "serve/request_trace.h"

namespace fusedml::serve {

const char* to_string(Priority priority) {
  switch (priority) {
    case Priority::kBatch: return "batch";
    case Priority::kNormal: return "normal";
    case Priority::kInteractive: return "interactive";
  }
  return "?";
}

const char* to_string(OutcomeKind kind) {
  switch (kind) {
    case OutcomeKind::kCompleted: return "completed";
    case OutcomeKind::kRejected: return "rejected";
    case OutcomeKind::kDeadlineExceeded: return "deadline_exceeded";
    case OutcomeKind::kCancelled: return "cancelled";
    case OutcomeKind::kFailed: return "failed";
  }
  return "?";
}

const char* to_string(ScriptKind kind) {
  switch (kind) {
    case ScriptKind::kLrCg: return "lr_cg";
    case ScriptKind::kLogregGd: return "logreg_gd";
    case ScriptKind::kGlm: return "glm";
    case ScriptKind::kSvm: return "svm";
    case ScriptKind::kHits: return "hits";
    case ScriptKind::kAls: return "als";
    case ScriptKind::kKmeans: return "kmeans";
    case ScriptKind::kPagerank: return "pagerank";
    case ScriptKind::kMinibatchLogreg: return "minibatch_logreg";
  }
  return "?";
}

const char* to_string(RejectReason reason) {
  switch (reason) {
    case RejectReason::kQueueFull: return "queue_full";
    case RejectReason::kOverCapacity: return "over_capacity";
    case RejectReason::kShedding: return "shedding";
  }
  return "?";
}

bool RequestState::resolve(ServeOutcome outcome) {
  std::function<void(const ServeOutcome&)> cb;
  {
    std::lock_guard lock(mutex_);
    if (resolved_) return false;
    outcome.tag = tag_;
    outcome.priority = priority_;
    outcome.deadline_ms = deadline_ms_;
    // Seal the request's span tree from the SAME numbers the client reads:
    // the root span's duration is queue_wait_ms + modeled_ms by
    // construction, which is the bit-match the trace oracle asserts. The
    // winner seals, so exactly one tree exists per resolved request — even
    // when a client-side cancellation wins the race.
    if (tracer_ != nullptr) outcome.trace = tracer_->seal(outcome);
    outcome_ = std::move(outcome);
    resolved_ = true;
    wins_.fetch_add(1, std::memory_order_relaxed);
    cb = on_resolve_;
  }
  cv_.notify_all();
  if (cb) cb(outcome_);
  return true;
}

const ServeOutcome& RequestState::wait() {
  std::unique_lock lock(mutex_);
  cv_.wait(lock, [&] { return resolved_; });
  return outcome_;
}

bool RequestState::resolved() const {
  std::lock_guard lock(mutex_);
  return resolved_;
}

void ServeHandle::cancel() const {
  state_->request_cancel();
  ServeOutcome o;
  o.kind = OutcomeKind::kCancelled;
  state_->resolve(std::move(o));
}

}  // namespace fusedml::serve
