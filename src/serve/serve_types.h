// Vocabulary of the concurrent serving layer: what a request asks for, what
// its submission resolves to, and the handle a client holds while the pool
// works.
//
// The contract the chaos harness asserts is EXACTLY-ONE-OUTCOME: every
// submit() returns a handle whose RequestState resolves to precisely one
// ServeOutcome — completed, rejected at admission (queue full / over
// capacity / shed for a higher priority), deadline-exceeded, cancelled, or
// failed. No outcome is ever lost and none is delivered twice, no matter
// how clients, workers, cancellations, and fault storms interleave.
//
// Deadlines are MODELED milliseconds on the server's modeled clock (see
// server.h), consistent with the rest of the stack: backoff, kernel time,
// and queue wait are all the same currency, so a deadline bounds the total
// modeled latency of a request rather than host wall-clock.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "common/resilience.h"
#include "common/types.h"
#include "kernels/op_registry.h"
#include "sysml/expr.h"

namespace fusedml::serve {

/// Scheduling classes, lowest to highest. Admission sheds from the lowest
/// band first; workers always pop the highest non-empty band (FIFO within a
/// band).
enum class Priority : int { kBatch = 0, kNormal = 1, kInteractive = 2 };
constexpr int kNumPriorities = 3;
const char* to_string(Priority priority);

/// How one submitted request ended.
enum class OutcomeKind {
  kCompleted,         ///< executed; value holds the result
  kRejected,          ///< never executed — admission control turned it away
  kDeadlineExceeded,  ///< modeled deadline spent (queued or mid-execution)
  kCancelled,         ///< client cancelled before a result was delivered
  kFailed,            ///< executed but every backend tier was exhausted
};
const char* to_string(OutcomeKind kind);

/// Why admission control rejected (valid when kind == kRejected).
enum class RejectReason {
  kQueueFull,     ///< bounded queue full of equal-or-higher priority work
                  ///< (also used for submits during/after drain)
  kOverCapacity,  ///< modeled working set exceeds a worker session's memory
  kShedding,      ///< evicted from the queue to admit higher-priority work
};
const char* to_string(RejectReason reason);

/// Index of a matrix registered with Server::add_dataset. Datasets are
/// shared read-only across all workers — requests reference them by id
/// instead of carrying a matrix copy.
using DatasetId = std::uint32_t;

/// Pattern-evaluation workload: w = alpha * X^T (v ⊙ (X y)) + beta*z on a
/// registered dataset (v / z optional, as in PatternExecutor::pattern).
struct PatternEval {
  DatasetId dataset = 0;
  real alpha = 1;
  real beta = 0;
  std::vector<real> y;
  std::vector<real> v;
  std::vector<real> z;
};

/// Declarative-script workload executed on a per-request sysml::Runtime
/// bound to the worker's device. Every algorithm in the generated
/// ScriptLibrary (ml/script_library.h) is servable; requests pick the plan
/// mode the library prepares the program with.
enum class ScriptKind {
  kLrCg,
  kLogregGd,
  kGlm,
  kSvm,
  kHits,
  kAls,
  kKmeans,
  kPagerank,
  kMinibatchLogreg,
};
const char* to_string(ScriptKind kind);
struct ScriptEval {
  DatasetId dataset = 0;
  ScriptKind kind = ScriptKind::kLrCg;
  int iterations = 3;        ///< outer-loop cap (0 = algorithm default)
  sysml::PlanMode plan = sysml::PlanMode::kPlanner;
  std::vector<real> labels;  ///< ignored by kHits
};

using Workload = std::variant<PatternEval, ScriptEval>;

struct ServeRequest {
  Workload work;
  Priority priority = Priority::kNormal;
  /// Modeled deadline for queue wait + execution (0 = none). Threaded into
  /// the executing layer's retry budget so a doomed request stops retrying
  /// instead of completing six backoffs per backend tier.
  double deadline_ms = 0.0;
  /// Caller-owned tag carried through to the outcome (chaos bookkeeping).
  std::uint64_t tag = 0;
};

struct RequestTraceTree;  // request_trace.h — per-request span tree
class RequestTracer;

/// Everything the client learns from one resolved request.
struct ServeOutcome {
  OutcomeKind kind = OutcomeKind::kFailed;
  RejectReason reject_reason = RejectReason::kQueueFull;
  std::uint64_t tag = 0;
  std::vector<real> value;      ///< kCompleted only
  double modeled_ms = 0.0;      ///< modeled execution time incl. overheads
  double queue_wait_ms = 0.0;   ///< modeled wait before execution started
  kernels::Backend backend_used = kernels::Backend::kCpu;
  ResilienceStats resilience;   ///< faults absorbed producing this outcome
  std::string error;            ///< kFailed / kDeadlineExceeded detail
  int worker = -1;              ///< executing worker (-1: never executed)
  Priority priority = Priority::kNormal;  ///< stamped from the request
  double deadline_ms = 0.0;     ///< the request's effective deadline
  /// Host wall-clock ms the fusion planner spent on this request (script
  /// workloads; 0 on plan-cache hits and pattern evals). Host work — NOT
  /// part of modeled_ms; see sysml::RuntimeStats::plan_host_ms.
  double plan_host_ms = 0.0;
  /// The request's sealed span tree — present iff the server was built
  /// with ServeOptions::request_tracing. Immutable and shareable.
  std::shared_ptr<const RequestTraceTree> trace;
};

/// Shared resolution slot behind a ServeHandle. resolve() is exactly-once:
/// the first caller wins, every later attempt is a no-op returning false —
/// this is what makes cancellation racing completion safe.
class RequestState {
 public:
  /// Delivers the outcome if none was delivered yet. Returns true iff this
  /// call won; the winner also runs the on_resolve callback (outside the
  /// lock) and wakes every waiter.
  bool resolve(ServeOutcome outcome);

  /// Blocks until resolved; the reference stays valid for the state's life.
  const ServeOutcome& wait();

  bool resolved() const;
  /// How many resolve() calls won — the exactly-one-outcome invariant says
  /// this is 1 for every submitted request after drain.
  int resolutions() const { return wins_.load(std::memory_order_relaxed); }

  void request_cancel() { cancel_.store(true, std::memory_order_relaxed); }
  bool cancel_requested() const {
    return cancel_.load(std::memory_order_relaxed);
  }

  /// Installed by the server before the state is visible to any resolver;
  /// invoked exactly once, by the winning resolve().
  void set_on_resolve(std::function<void(const ServeOutcome&)> cb) {
    on_resolve_ = std::move(cb);
  }

  /// Stamped at submit; copied onto whichever outcome wins, so even a
  /// cancellation resolved by the client thread carries the request's tag.
  void set_tag(std::uint64_t tag) { tag_ = tag; }
  /// Stamped at submit like the tag: the winning outcome carries the
  /// request's class and effective deadline, which is what lets the SLO
  /// tracker bucket EVERY outcome kind per priority class — including
  /// client-side cancellations that never saw the server again.
  void set_priority(Priority priority) { priority_ = priority; }
  void set_deadline(double deadline_ms) { deadline_ms_ = deadline_ms; }

  /// Installs the request's tracer (submit only, before the state is
  /// visible to resolvers). The winning resolve seals it onto the outcome,
  /// so exactly one tree exists per resolved request.
  void set_tracer(std::shared_ptr<RequestTracer> tracer) {
    tracer_ = std::move(tracer);
  }
  const std::shared_ptr<RequestTracer>& tracer() const { return tracer_; }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool resolved_ = false;
  ServeOutcome outcome_;
  std::atomic<bool> cancel_{false};
  std::atomic<int> wins_{0};
  std::uint64_t tag_ = 0;
  Priority priority_ = Priority::kNormal;
  double deadline_ms_ = 0.0;
  std::shared_ptr<RequestTracer> tracer_;
  std::function<void(const ServeOutcome&)> on_resolve_;
};

/// What a client holds after submit(). Copyable; all copies share one
/// RequestState.
class ServeHandle {
 public:
  ServeHandle() = default;
  explicit ServeHandle(std::shared_ptr<RequestState> state)
      : state_(std::move(state)) {}

  bool valid() const { return state_ != nullptr; }
  const ServeOutcome& wait() const { return state_->wait(); }
  bool resolved() const { return state_->resolved(); }

  /// Requests cancellation and immediately resolves kCancelled if the
  /// request has not resolved yet. A request already executing keeps
  /// running on its worker, but its result is abandoned (the worker's
  /// resolve loses the race).
  void cancel() const;

  const std::shared_ptr<RequestState>& state() const { return state_; }

 private:
  std::shared_ptr<RequestState> state_;
};

/// One queued submission: the request plus its resolution slot and its
/// position on the modeled clock.
struct PendingRequest {
  ServeRequest request;
  std::shared_ptr<RequestState> state;
  double submit_ms = 0.0;  ///< server modeled clock at submit
  std::uint64_t seq = 0;   ///< global submission order
  /// Times a worker failed this request and handed it back to the queue
  /// (deadline-aware re-admission). Only the executing worker mutates it,
  /// and the queue hand-off orders those accesses.
  int attempts = 0;
};
using PendingPtr = std::shared_ptr<PendingRequest>;

}  // namespace fusedml::serve
