#include "serve/slo.h"

#include <algorithm>
#include <string>

namespace fusedml::serve {

void SloTracker::record(const ServeOutcome& o) {
  const int idx = std::clamp(static_cast<int>(o.priority), 0,
                             kNumPriorities - 1);
  ClassState& c = classes_[idx];
  const bool executed = o.worker >= 0;
  const double latency = o.queue_wait_ms + o.modeled_ms;
  {
    std::lock_guard lock(mutex_);
    switch (o.kind) {
      case OutcomeKind::kCompleted: ++c.completed; break;
      case OutcomeKind::kDeadlineExceeded: ++c.deadline_exceeded; break;
      case OutcomeKind::kFailed: ++c.failed; break;
      case OutcomeKind::kCancelled: ++c.cancelled; break;
      case OutcomeKind::kRejected:
        if (o.reject_reason == RejectReason::kShedding) {
          ++c.shed;
        } else {
          ++c.rejected;
        }
        break;
    }
    if (executed) {
      if (o.deadline_ms > 0.0) {
        ++c.deadline_total;
        if (o.kind == OutcomeKind::kCompleted && latency <= o.deadline_ms) {
          ++c.deadline_hits;
        }
      }
      const double verify = o.resilience.verify_ms;
      const double overhead = o.resilience.overhead_ms();
      c.queue_ms += o.queue_wait_ms;
      c.exec_ms += std::max(0.0, o.modeled_ms - verify - overhead);
      c.verify_ms += verify;
      c.resilience_ms += overhead;
      c.plan_host_ms += o.plan_host_ms;
    }
  }
  if (executed) c.latency.observe(latency);

  if (obs::metrics().enabled()) {
    auto& m = obs::metrics();
    const std::string prefix = std::string("serve.") + to_string(o.priority);
    m.counter(prefix + "." + to_string(o.kind)).add();
    if (executed) {
      m.histogram(prefix + ".latency_ms").observe(latency);
      if (o.deadline_ms > 0.0) {
        m.counter(prefix + ".deadline_total").add();
        if (o.kind == OutcomeKind::kCompleted && latency <= o.deadline_ms) {
          m.counter(prefix + ".deadline_hits").add();
        }
      }
    }
  }
}

SloClassSnapshot SloTracker::snapshot(Priority priority) const {
  const int idx = std::clamp(static_cast<int>(priority), 0,
                             kNumPriorities - 1);
  const ClassState& c = classes_[idx];
  SloClassSnapshot s;
  {
    std::lock_guard lock(mutex_);
    s.completed = c.completed;
    s.deadline_exceeded = c.deadline_exceeded;
    s.failed = c.failed;
    s.cancelled = c.cancelled;
    s.rejected = c.rejected;
    s.shed = c.shed;
    s.deadline_hits = c.deadline_hits;
    s.deadline_total = c.deadline_total;
    s.queue_ms = c.queue_ms;
    s.exec_ms = c.exec_ms;
    s.verify_ms = c.verify_ms;
    s.resilience_ms = c.resilience_ms;
    s.plan_host_ms = c.plan_host_ms;
  }
  s.latency_count = c.latency.count();
  s.latency_mean_ms = c.latency.mean();
  s.p50_ms = c.latency.percentile(50.0);
  s.p95_ms = c.latency.percentile(95.0);
  s.p99_ms = c.latency.percentile(99.0);
  s.max_ms = c.latency.max();
  return s;
}

}  // namespace fusedml::serve
