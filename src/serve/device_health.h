// Device quarantine for silent-data-corruption offenders.
//
// ECC errors and launch faults announce themselves; silent corruption is
// only ever seen because an ABFT check caught it — and a device that keeps
// producing confirmed SDCs is suspect hardware, not bad luck. The board
// counts confirmed detections per worker device; at the configured
// threshold the device is QUARANTINED: its worker stops executing and
// hands popped requests back to the queue, so the pool schedules around
// it. Quarantine is timed probation on the server's MODELED clock — after
// probation_ms the device re-enters rotation with a cleared count (real
// fleets re-run burn-in; the modeled equivalent is time out of rotation).
//
// The board never quarantines the last healthy device: serving degraded
// beats not serving at all.
//
// Thread-safe: workers report and consult concurrently under one mutex
// (a handful of integer updates per request — never on the op hot path).
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "common/types.h"

namespace fusedml::serve {

struct QuarantineConfig {
  bool enabled = true;
  /// Confirmed SDC detections on one device before it is quarantined.
  std::uint64_t sdc_threshold = 3;
  /// Modeled ms a quarantined device sits out before re-entering rotation.
  double probation_ms = 500.0;
};

class DeviceHealthBoard {
 public:
  /// `now_fn` supplies the modeled clock (Server::now_ms).
  DeviceHealthBoard(QuarantineConfig cfg, int workers,
                    std::function<double()> now_fn);

  /// Books `count` confirmed SDC detections against `worker`'s device and
  /// quarantines it when the threshold is reached (unless it is the last
  /// healthy device).
  void report_sdc(int worker, std::uint64_t count);

  /// True while `worker`'s device is quarantined. Checks probation expiry
  /// on the way: an expired quarantine is released here (the device
  /// re-enters with a cleared SDC count).
  bool quarantined(int worker);

  std::uint64_t sdc_count(int worker) const;
  std::uint64_t quarantines() const;
  std::uint64_t reentries() const;

 private:
  struct Entry {
    std::uint64_t sdc = 0;
    bool quarantined = false;
    double release_ms = 0.0;
  };

  int healthy_count_locked() const;

  QuarantineConfig cfg_;
  std::function<double()> now_;
  mutable std::mutex mutex_;
  std::vector<Entry> entries_;
  std::uint64_t quarantines_ = 0;
  std::uint64_t reentries_ = 0;
};

}  // namespace fusedml::serve
