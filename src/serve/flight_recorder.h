// Flight recorder: a bounded ring of recent per-request summaries plus a
// bounded list of incident bundles captured when an anomaly fires.
//
// The serving layer books one FlightRecord per resolved request (cheap:
// plain fields, one mutex). When the server detects an anomaly — deadline
// miss, breaker open, device quarantine, SDC detection, or a
// tier-exhausted failure — it fires the recorder, which freezes the
// current ring into an Incident: the black-box readout of what the system
// was doing in the moments leading up to the event. Incidents are
// budgeted (first-N) so a storm of misses cannot turn the recorder into
// an unbounded log; fires past the budget are still counted.
//
// Server::write_incident_bundle wraps the incidents with the server-wide
// context (ServerStatus: SLO snapshots, breaker and health-board state)
// into one JSON document — the artifact an operator or the CI harness
// pulls when something went wrong.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.h"
#include "serve/serve_types.h"

namespace fusedml::serve {

/// What can trip the recorder.
enum class AnomalyKind {
  kDeadlineMiss,     ///< a request resolved kDeadlineExceeded
  kBreakerOpen,      ///< the breaker board opened (or reopened) a backend
  kQuarantine,       ///< the health board drained a device
  kSdcDetected,      ///< ABFT caught silent corruption on this request
  kFailure,          ///< a request exhausted every backend tier (kFailed)
};
const char* to_string(AnomalyKind kind);

/// One request's black-box summary — everything needed to reconstruct what
/// it asked for and what it cost, without holding the value or the trace.
struct FlightRecord {
  std::uint64_t tag = 0;
  OutcomeKind kind = OutcomeKind::kFailed;
  Priority priority = Priority::kNormal;
  int worker = -1;
  double queue_wait_ms = 0.0;
  double modeled_ms = 0.0;
  double deadline_ms = 0.0;
  double plan_host_ms = 0.0;
  std::uint64_t faults_seen = 0;
  std::uint64_t retries = 0;
  std::uint64_t fallbacks = 0;
  std::uint64_t sdc_detected = 0;
  std::string error;

  /// Builds the summary straight off a resolved outcome.
  static FlightRecord from_outcome(const ServeOutcome& outcome);
};

/// A frozen ring snapshot taken when an anomaly fired.
struct Incident {
  AnomalyKind kind = AnomalyKind::kFailure;
  double modeled_now_ms = 0.0;
  FlightRecord trigger;
  std::vector<FlightRecord> recent;  ///< ring contents, oldest first
};

class FlightRecorder {
 public:
  explicit FlightRecorder(usize capacity = 128, usize max_incidents = 8);

  /// Books one resolved request into the ring (overwrites the oldest).
  void record(const FlightRecord& record);

  /// Freezes the ring into an Incident if the budget allows; always counts
  /// the fire. Returns true when an Incident was captured.
  bool fire(AnomalyKind kind, const FlightRecord& trigger,
            double modeled_now_ms);

  /// Ring contents, oldest first.
  std::vector<FlightRecord> recent() const;
  std::vector<Incident> incidents() const;
  std::uint64_t recorded() const;
  /// Total fires, including those past the incident budget.
  std::uint64_t fires() const;

  /// [{"kind":..,"modeled_now_ms":..,"trigger":{...},"recent":[...]}, ...].
  void write_incidents_json(std::ostream& os) const;

 private:
  const usize capacity_;
  const usize max_incidents_;
  mutable std::mutex mutex_;
  std::vector<FlightRecord> ring_;  ///< ring_[recorded_ % capacity_] is next
  std::uint64_t recorded_ = 0;
  std::uint64_t fires_ = 0;
  std::vector<Incident> incidents_;

  std::vector<FlightRecord> snapshot_locked() const;
};

}  // namespace fusedml::serve
