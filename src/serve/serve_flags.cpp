#include "serve/serve_flags.h"

#include <fstream>
#include <ostream>

#include "common/cli.h"
#include "common/log.h"
#include "serve/server.h"

namespace fusedml::serve {

ServingFlags apply_serving_flags(Cli& cli) {
  ServingFlags flags;
  flags.slo_report = cli.get_bool(
      "slo-report", false,
      "print the per-class SLO snapshot (ServerStatus) after the run");
  flags.request_trace = cli.get_bool(
      "request-trace", false,
      "build a span tree for every request (implied by --flight-recorder)");
  flags.flight_recorder_path = cli.get_string(
      "flight-recorder", "",
      "enable the flight recorder; write the incident bundle JSON here "
      "('-' = stdout)");
  return flags;
}

void ServingFlags::apply_to(ServeOptions& opts) const {
  if (request_trace || flight_recorder()) opts.request_tracing = true;
  if (flight_recorder()) opts.flight_recorder = true;
}

void ServingFlags::report(const Server& server, std::ostream& os) const {
  if (slo_report) server.status().print(os);
  if (!flight_recorder()) return;
  if (flight_recorder_path == "-") {
    server.write_incident_bundle(os);
    return;
  }
  std::ofstream out(flight_recorder_path);
  if (!out) {
    FUSEDML_LOG_ERROR << "cannot open incident bundle output: "
                      << flight_recorder_path;
    return;
  }
  server.write_incident_bundle(out);
}

}  // namespace fusedml::serve
