// Bounded multi-priority admission queue — the server's backpressure valve.
//
// Capacity bounds the TOTAL queued depth across all priority bands; the
// chaos harness asserts high_water() never exceeds it. When the queue is
// full, an incoming request either sheds the NEWEST entry of the LOWEST
// occupied band (if the newcomer outranks it — interactive work displaces
// batch work, never the reverse) or is rejected outright. Workers pop the
// highest non-empty band, FIFO within a band, so a burst of batch work
// cannot starve interactive traffic.
//
// close() starts the drain: further pushes report kClosed (the server
// resolves them Rejected) while already-queued entries keep draining;
// pop_blocking() returns null only once the queue is closed AND empty, so a
// worker that sees null can exit knowing nothing was left behind.
#pragma once

#include <array>
#include <condition_variable>
#include <deque>
#include <mutex>

#include "common/types.h"
#include "serve/serve_types.h"

namespace fusedml::serve {

class AdmissionQueue {
 public:
  explicit AdmissionQueue(usize capacity) : capacity_(capacity) {}

  enum class Admit {
    kAdmitted,           ///< queued
    kAdmittedAfterShed,  ///< queued; *shed_victim was evicted to make room
    kRejectedFull,       ///< full of equal-or-higher priority work
    kClosed,             ///< close() was called; nothing is admitted
  };

  /// Tries to enqueue `p`. On kAdmittedAfterShed the evicted entry is
  /// returned through `shed_victim` and the CALLER must resolve it
  /// (Rejected/kShedding) — the queue never resolves requests itself.
  Admit push(PendingPtr p, PendingPtr* shed_victim);

  /// Blocks for the next entry, highest priority band first. Returns null
  /// once closed and fully drained.
  PendingPtr pop_blocking();

  /// Stops admission; queued entries continue to drain. Idempotent.
  void close();

  bool closed() const;
  usize depth() const;
  /// Highest depth ever observed — bounded-queue invariant for the harness.
  usize high_water() const;
  usize capacity() const { return capacity_; }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::array<std::deque<PendingPtr>, kNumPriorities> bands_;
  usize capacity_;
  usize depth_ = 0;
  usize high_water_ = 0;
  bool closed_ = false;
};

}  // namespace fusedml::serve
